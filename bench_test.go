package parsched

// The benchmark harness: one benchmark per experiment table (E1–E10)
// regenerating the paper's evaluation programme at quick scale, plus
// micro-benchmarks for the load-bearing substrates (SWF codec, workload
// generation, the DES core, the backfilling profile, and the two
// WARMstones fidelities). Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benches report the wall time of a full table
// regeneration; EXPERIMENTS.md records the default-scale outputs.

import (
	"strings"
	"testing"

	"parsched/internal/des"
	"parsched/internal/experiments"
	"parsched/internal/graph"
	"parsched/internal/model/lublin"
	"parsched/internal/sched"
	"parsched/internal/sim"
	"parsched/internal/swf"
	"parsched/internal/warmstones"
)

// benchExperiment runs one experiment battery entry per iteration.
func benchExperiment(b *testing.B, id string) {
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := experiments.QuickConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := r.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkE1SchedulerComparison(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkE2MetricConflict(b *testing.B)      { benchExperiment(b, "E2") }
func BenchmarkE3ObjectiveWeights(b *testing.B)    { benchExperiment(b, "E3") }
func BenchmarkE4Feedback(b *testing.B)            { benchExperiment(b, "E4") }
func BenchmarkE5Outages(b *testing.B)             { benchExperiment(b, "E5") }
func BenchmarkE6Reservations(b *testing.B)        { benchExperiment(b, "E6") }
func BenchmarkE7Prediction(b *testing.B)          { benchExperiment(b, "E7") }
func BenchmarkE8CoAllocation(b *testing.B)        { benchExperiment(b, "E8") }
func BenchmarkE9ModelFidelity(b *testing.B)       { benchExperiment(b, "E9") }
func BenchmarkE10Warmstones(b *testing.B)         { benchExperiment(b, "E10") }

// ---------------------------------------------------------------------
// substrate micro-benchmarks

func benchWorkload(n int) *Workload {
	return lublin.Default().Generate(ModelConfig{
		MaxNodes: 128, Jobs: n, Seed: 42, Load: 0.8, EstimateFactor: 2,
	})
}

func BenchmarkSWFParseRecord(b *testing.B) {
	line := "123 86400 120 3600 64 3500 2048 64 7200 4096 1 17 3 9 2 1 120 30"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := swf.ParseRecord(line); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSWFRoundTrip1kJobs(b *testing.B) {
	log := WorkloadToSWF(benchWorkload(1000))
	text := log.String()
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parsed, err := swf.Read(strings.NewReader(text))
		if err != nil {
			b.Fatal(err)
		}
		if len(parsed.Records) != 1000 {
			b.Fatal("lost records")
		}
	}
}

func BenchmarkSWFValidate1kJobs(b *testing.B) {
	log := WorkloadToSWF(benchWorkload(1000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		swf.Validate(log)
	}
}

func BenchmarkLublinGenerate1k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := benchWorkload(1000)
		if len(w.Jobs) != 1000 {
			b.Fatal("short workload")
		}
	}
}

func BenchmarkDESEngine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var e des.Engine
		for k := 0; k < 10000; k++ {
			e.At(int64(k%997), des.PriorityArrival, func() {})
		}
		e.Run()
	}
}

// BenchmarkDESSteadyState measures the per-event cost of the engine in
// steady state — a standing population of pending events, one scheduled
// for each one fired — which is the regime a long simulation lives in.
// The allocs/op figure here is the "allocation-free per event" contract.
func BenchmarkDESSteadyState(b *testing.B) {
	var e des.Engine
	nop := func() {}
	for k := 0; k < 1024; k++ {
		e.At(int64(k), des.PriorityArrival, nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
		e.After(1024, des.PriorityArrival, nop)
	}
}

func benchSim(b *testing.B, scheduler string, jobs int) {
	w := benchWorkload(jobs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _ := sched.New(scheduler)
		res, err := sim.Run(w, s, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Report(128).Finished == 0 {
			b.Fatal("nothing finished")
		}
	}
}

func BenchmarkSimFCFS2k(b *testing.B)         { benchSim(b, "fcfs", 2000) }
func BenchmarkSimEASY2k(b *testing.B)         { benchSim(b, "easy", 2000) }
func BenchmarkSimConservative2k(b *testing.B) { benchSim(b, "cons", 2000) }
func BenchmarkSimGang2k(b *testing.B)         { benchSim(b, "gang", 2000) }

func BenchmarkProfileEarliestFit(b *testing.B) {
	p := sched.NewProfile(0, 512)
	for i := int64(0); i < 200; i++ {
		p.Take(i*100, i*100+5000, int(i%64)+1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.EarliestFit(int64(i%10000), 3600, 128)
	}
}

func BenchmarkWarmstonesSimulate(b *testing.B) {
	sys := warmstones.StandardSystems()[1]
	g := graph.MasterWorkers(64, 20, 90, 10e6, 20e6)
	mapping, err := warmstones.LoadBalance{}.Map(g, sys)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := warmstones.Simulate(g, sys, mapping); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWarmstonesEstimate(b *testing.B) {
	sys := warmstones.StandardSystems()[1]
	g := graph.MasterWorkers(64, 20, 90, 10e6, 20e6)
	mapping, _ := warmstones.LoadBalance{}.Map(g, sys)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warmstones.Estimate(g, sys, mapping)
	}
}
