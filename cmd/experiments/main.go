// Command experiments regenerates the paper's evaluation programme:
// every table of experiments E1–E10 (see DESIGN.md for the index and
// EXPERIMENTS.md for recorded results), optionally sharded across a
// worker pool and replicated over derived seeds.
//
//	experiments                    # run everything at default scale, serially
//	experiments -run E5            # one experiment
//	experiments -quick             # seconds-scale versions
//	experiments -parallel 8        # shard the battery over 8 workers
//	experiments -reps 5            # 5 replications, mean ± 95% CI summaries
//	experiments -sched easy,cons   # restrict the scheduler comparisons
//	experiments -json out.json     # machine-readable batch result
//	experiments -csv results/      # long-form metric and summary CSVs
//	experiments -warmup 500        # steady state: drop the first 500 jobs
//	experiments -warmup 2h         # ... or everything before 2 simulated hours
//	experiments -bsld-tau 60       # bounded-slowdown runtime floor (default 10s)
//	experiments -percentiles       # add P50/P99 wait columns to E1 (and the
//	                               # typed metric stream -json/-csv export)
//
// -sched takes scheduler specs in the internal/sched grammar
// (family(param, key=value); run -h for the derived catalogue) and
// restricts which schedulers the comparison experiments E1–E3, E5,
// and E6 run; specs match canonically, so -sched 'easy(window)'
// selects the legacy name easy+win.
//
// The battery also runs on real logs in the Standard Workload Format:
//
//	experiments -trace log.swf                          # replay a real trace
//	experiments -trace log.swf -scale-load 0.5,0.7,0.9  # rescaled load points
//	experiments -trace log.swf -reps 5                  # resampled replications
//
// With a trace, the machine size follows the log's header, each
// experiment rescales the trace to its load points by interarrival
// scaling, and replications beyond the first resample the trace's
// interarrival gaps (deterministically from the seed), so -reps N
// produces real confidence intervals.
//
// With -parallel 1 -reps 1 the output is byte-identical to the classic
// serial path. With -reps > 1 per-replication tables are summarised
// into mean ± CI rows (use -tables to also print every replication).
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"parsched/internal/experiments"
	"parsched/internal/sched"
	"parsched/internal/workload/trace"
)

func main() {
	runID := flag.String("run", "", "run a single experiment (E1..E10); empty = all")
	quick := flag.Bool("quick", false, "seconds-scale configuration")
	parallel := flag.Int("parallel", 1, "worker-pool size; 0 = NumCPU")
	reps := flag.Int("reps", 1, "replications per experiment (deterministic derived seeds)")
	seed := flag.Int64("seed", 0, "override the base seed (0 = configuration default)")
	tracePath := flag.String("trace", "", "run the battery on this SWF log instead of the synthetic models")
	scaleLoad := flag.String("scale-load", "", "comma-separated offered loads overriding each experiment's load points, e.g. 0.5,0.7,0.9")
	schedFilter := flag.String("sched", "", "comma-separated scheduler specs restricting the comparison experiments (E1-E3, E5, E6), e.g. 'easy,cons' or 'easy(window)'; run -h for the grammar")
	jsonOut := flag.String("json", "", "write the full batch result as JSON to this file")
	csvOut := flag.String("csv", "", "write metrics.csv/cells.csv (and summary.csv) into this directory")
	showTables := flag.Bool("tables", false, "print per-replication tables even when -reps > 1")
	warmup := flag.String("warmup", "", "steady-state truncation: drop the first N finished jobs (e.g. 500) or everything before a duration (e.g. 3600s, 2h)")
	bsldTau := flag.Int64("bsld-tau", 0, "bounded-slowdown runtime floor in seconds (0 = default 10)")
	percentiles := flag.Bool("percentiles", false, "add P50/P99 wait columns to the scheduler-comparison tables")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: experiments [flags]")
		flag.PrintDefaults()
		fmt.Fprint(os.Stderr, sched.Usage())
	}
	flag.Parse()

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *tracePath != "" {
		// Load once up front: a bad path fails fast, and the clean
		// report is surfaced before any cell output scrolls it away.
		src, err := trace.Cached(*tracePath)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "experiments: trace %s (%d jobs, %d nodes, offered load %.3f): %s\n",
			src.Name, src.JobCount(), src.MaxNodes(), src.OfferedLoad(), src.CleanSummary())
		cfg.Source = "trace:" + *tracePath
	}
	if *scaleLoad != "" {
		loads, err := parseLoads(*scaleLoad)
		if err != nil {
			fatal(err)
		}
		cfg.Loads = loads
	}
	if *schedFilter != "" {
		specs := sched.SplitList(*schedFilter)
		if len(specs) == 0 {
			fatal(fmt.Errorf("-sched names no schedulers"))
		}
		// Validate up front so a typo or out-of-range parameter fails
		// fast, not per cell (New = Parse + Build, so factory-level
		// rejections like reserve=0 surface here too).
		for _, s := range specs {
			if _, err := sched.New(s); err != nil {
				fatal(err)
			}
		}
		cfg.Scheds = specs
	}
	if *warmup != "" {
		jobs, secs, err := experiments.ParseWarmup(*warmup)
		if err != nil {
			fatal(err)
		}
		cfg.Metrics.WarmupJobs, cfg.Metrics.WarmupTime = jobs, secs
	}
	if *bsldTau < 0 {
		fatal(fmt.Errorf("-bsld-tau: %d is not a positive duration", *bsldTau))
	}
	cfg.Metrics.Tau = *bsldTau
	cfg.Percentiles = *percentiles

	runners := experiments.All()
	if *runID != "" {
		r, ok := experiments.ByID(*runID)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown ID %q\n", *runID)
			os.Exit(2)
		}
		runners = []experiments.Runner{r}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		// Restore default signal handling after the first interrupt:
		// in-flight cells drain gracefully, a second Ctrl-C kills.
		<-ctx.Done()
		stop()
	}()

	workers := *parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	effectiveReps := max(*reps, 1)
	total := len(runners) * effectiveReps
	progress := workers > 1 || *reps > 1

	// Per-cell tables stream to stdout in deterministic cell order as
	// soon as every earlier cell is done (immediately, for the serial
	// path), keeping the classic format — and exact bytes — when
	// -reps 1. Progress goes to stderr only for parallel/replicated
	// runs so the classic stdout stays byte-identical.
	printCell := func(c experiments.CellResult) {
		if c.Err != "" {
			return
		}
		if effectiveReps == 1 {
			fmt.Printf("== %s: %s (%.1fs) ==\n\n", c.ID, c.Title, c.Elapsed.Seconds())
		} else if *showTables {
			// Reps are 0-based everywhere they appear — headers,
			// progress, failures, CSV, JSON — so lines cross-reference.
			fmt.Printf("== %s rep %d of 0..%d (seed %d): %s (%.1fs) ==\n\n",
				c.ID, c.Rep, effectiveReps-1, c.Seed, c.Title, c.Elapsed.Seconds())
		} else {
			return
		}
		for _, tb := range c.Tables {
			fmt.Println(tb.String())
		}
	}
	var mu sync.Mutex
	next := 0
	pending := map[int]experiments.CellResult{}
	var done atomic.Int64
	opt := experiments.BatchOptions{
		Parallel: workers,
		Reps:     *reps,
		OnCell: func(c experiments.CellResult) {
			if progress {
				n := done.Add(1)
				status := "ok"
				if c.Err != "" {
					status = "FAIL: " + c.Err
				}
				fmt.Fprintf(os.Stderr, "[%d/%d] %s rep %d seed %d (%.1fs) %s\n",
					n, total, c.ID, c.Rep, c.Seed, c.Elapsed.Seconds(), status)
			}
			mu.Lock()
			defer mu.Unlock()
			pending[c.Index] = c
			for {
				ready, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				printCell(ready)
			}
		},
	}
	res := experiments.RunBatch(ctx, runners, cfg, opt)

	for _, tb := range experiments.SummaryTables(res.Summaries) {
		fmt.Println(tb.String())
	}

	// Report failed cells before attempting exports, so an unwritable
	// -json/-csv target cannot hide which experiments failed.
	failed := res.Failed()
	for _, c := range failed {
		fmt.Fprintf(os.Stderr, "experiments: %s rep %d failed: %s\n", c.ID, c.Rep, c.Err)
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, res); err != nil {
			fatal(err)
		}
	}
	if *csvOut != "" {
		if err := writeCSVs(*csvOut, res); err != nil {
			fatal(err)
		}
	}
	if len(failed) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
	os.Exit(1)
}

// parseLoads parses the -scale-load list.
func parseLoads(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		// !(v > 0) also rejects NaN, which compares false to everything.
		if err != nil || !(v > 0) || math.IsInf(v, 1) {
			return nil, fmt.Errorf("-scale-load: %q is not a positive load", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-scale-load: no load values in %q", s)
	}
	return out, nil
}

func writeJSON(path string, res *experiments.BatchResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeCSVs emits long-form metric rows (one per typed observation),
// per-cell timing, and — for multi-rep runs — the aggregated summary.
func writeCSVs(dir string, res *experiments.BatchResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	metrics := [][]string{{"experiment", "table", "rep", "seed", "labels", "metric", "value"}}
	cells := [][]string{{"experiment", "rep", "seed", "elapsed_s", "error"}}
	for _, c := range res.Cells {
		cells = append(cells, []string{
			c.ID, strconv.Itoa(c.Rep), strconv.FormatInt(c.Seed, 10),
			strconv.FormatFloat(c.Elapsed.Seconds(), 'f', 3, 64), c.Err,
		})
		for _, tb := range c.Tables {
			for _, m := range tb.Metrics {
				metrics = append(metrics, []string{
					c.ID, tb.ID, strconv.Itoa(c.Rep), strconv.FormatInt(c.Seed, 10),
					m.LabelKey(), m.Name, strconv.FormatFloat(m.Value, 'g', -1, 64),
				})
			}
		}
	}
	if err := writeCSV(filepath.Join(dir, "metrics.csv"), metrics); err != nil {
		return err
	}
	if err := writeCSV(filepath.Join(dir, "cells.csv"), cells); err != nil {
		return err
	}
	if len(res.Summaries) == 0 {
		return nil
	}
	summary := [][]string{{"experiment", "table", "labels", "metric", "n", "mean", "std", "ci95"}}
	for _, s := range res.Summaries {
		summary = append(summary, []string{
			s.Experiment, s.Table, experiments.Metric{Labels: s.Labels}.LabelKey(), s.Name,
			strconv.Itoa(s.N),
			strconv.FormatFloat(s.Mean, 'g', -1, 64),
			strconv.FormatFloat(s.Std, 'g', -1, 64),
			strconv.FormatFloat(s.CI95, 'g', -1, 64),
		})
	}
	return writeCSV(filepath.Join(dir, "summary.csv"), summary)
}

func writeCSV(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
