// Command experiments regenerates the paper's evaluation programme:
// every table of experiments E1–E10 (see DESIGN.md for the index and
// EXPERIMENTS.md for recorded results).
//
//	experiments            # run everything at default scale
//	experiments -run E5    # one experiment
//	experiments -quick     # seconds-scale versions
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"parsched/internal/experiments"
)

func main() {
	runID := flag.String("run", "", "run a single experiment (E1..E10); empty = all")
	quick := flag.Bool("quick", false, "seconds-scale configuration")
	flag.Parse()

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.QuickConfig()
	}

	runners := experiments.All()
	if *runID != "" {
		r, ok := experiments.ByID(*runID)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown ID %q\n", *runID)
			os.Exit(2)
		}
		runners = []experiments.Runner{r}
	}

	for _, r := range runners {
		start := time.Now()
		tables := r.Run(cfg)
		elapsed := time.Since(start)
		fmt.Printf("== %s: %s (%.1fs) ==\n\n", r.ID, r.Title, elapsed.Seconds())
		for _, tb := range tables {
			fmt.Println(tb.String())
		}
	}
}
