// Command swfgen generates synthetic workloads in the Standard
// Workload Format from the statistical models the paper cites.
//
//	swfgen -model lublin99 -jobs 10000 -nodes 128 -load 0.7 -seed 1 > out.swf
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"parsched/internal/core"
	"parsched/internal/model"
	"parsched/internal/model/registry"
	"parsched/internal/outage"
	"parsched/internal/stats"
	"parsched/internal/swf"
)

func main() {
	modelName := flag.String("model", "lublin99", "workload model: "+strings.Join(registry.Names(), ", "))
	jobs := flag.Int("jobs", 10000, "number of jobs")
	nodes := flag.Int("nodes", 128, "machine size")
	load := flag.Float64("load", 0.7, "target offered load (0 = model default)")
	seed := flag.Int64("seed", 1, "random seed")
	estimates := flag.Float64("estimates", 2, "estimate overestimation factor (0 = no estimates)")
	feedback := flag.Int64("feedback", 0, "infer think-time chains with this window in seconds (0 = off)")
	outages := flag.Bool("outages", false, "also emit an outage log on stderr-adjacent file <out>.outages")
	flag.Parse()

	m, err := registry.New(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swfgen:", err)
		os.Exit(2)
	}
	w := m.Generate(model.Config{
		MaxNodes: *nodes, Jobs: *jobs, Seed: *seed,
		Load: *load, EstimateFactor: *estimates,
	})
	if *feedback > 0 {
		rep := core.InferFeedback(w, *feedback)
		fmt.Fprintf(os.Stderr, "swfgen: linked %d jobs into feedback chains\n", rep.LinkedJobs)
	}
	log := core.ToSWF(w)
	log.Header.Installation = "parsched synthetic workload"
	log.Header.Conversion = fmt.Sprintf("swfgen -model %s -seed %d", *modelName, *seed)
	if err := swf.Write(os.Stdout, log); err != nil {
		fmt.Fprintln(os.Stderr, "swfgen:", err)
		os.Exit(1)
	}

	if *outages {
		horizon := w.Span() + 86400
		olog := outage.Generate(outage.GeneratorConfig{
			Nodes:             int64(*nodes),
			Horizon:           horizon,
			MTBF:              stats.Exponential{Lambda: 1.0 / (48 * 3600)},
			Repair:            stats.LogNormal{Mu: 7.5, Sigma: 0.7},
			MaintenanceEvery:  7 * 86400,
			MaintenanceLength: 4 * 3600,
			MaintenanceLead:   86400,
		}, *seed+1)
		f, err := os.Create("out.outages")
		if err != nil {
			fmt.Fprintln(os.Stderr, "swfgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := outage.Write(f, olog); err != nil {
			fmt.Fprintln(os.Stderr, "swfgen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "swfgen: wrote %d outages to out.outages\n", len(olog.Records))
	}
}
