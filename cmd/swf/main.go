// Command swf is the Standard Workload Format toolchain: validate,
// summarize, clean, and convert workload files.
//
// Usage:
//
//	swf validate file.swf            check the standard's consistency rules
//	swf stats    file.swf            print workload statistics
//	swf clean    in.swf out.swf      produce the canonical cleaned log
//	swf convert  raw.log out.swf     convert a raw accounting log (anonymizing)
//	swf feedback in.swf out.swf      insert inferred think-time dependencies
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"parsched/internal/core"
	"parsched/internal/model"
	"parsched/internal/stats"
	"parsched/internal/swf"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch args[0] {
	case "validate":
		err = validate(args[1])
	case "stats":
		err = printStats(args[1])
	case "clean":
		err = clean(args[1], arg(args, 2))
	case "convert":
		err = convert(args[1], arg(args, 2))
	case "feedback":
		err = feedback(args[1], arg(args, 2))
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "swf:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  swf validate file.swf
  swf stats    file.swf
  swf clean    in.swf out.swf
  swf convert  raw.log out.swf
  swf feedback in.swf out.swf`)
}

func arg(args []string, i int) string {
	if i < len(args) {
		return args[i]
	}
	fmt.Fprintln(os.Stderr, "swf: missing output file")
	os.Exit(2)
	return ""
}

func validate(path string) error {
	log, err := swf.ReadFile(path)
	if err != nil {
		return err
	}
	findings := swf.Validate(log)
	errs := swf.Errors(findings)
	for _, v := range findings {
		fmt.Println(v)
	}
	fmt.Printf("%d records, %d errors, %d warnings\n",
		len(log.Records), len(errs), len(findings)-len(errs))
	if len(errs) > 0 {
		return fmt.Errorf("log violates the standard")
	}
	return nil
}

func printStats(path string) error {
	log, err := swf.ReadFile(path)
	if err != nil {
		return err
	}
	w, err := core.FromSWF(log)
	if err != nil {
		return fmt.Errorf("%v (run `swf clean` first?)", err)
	}
	gaps, sizes, rts := model.Marginals(w)
	fmt.Printf("computer:      %s\n", log.Header.Computer)
	fmt.Printf("jobs:          %d\n", len(w.Jobs))
	fmt.Printf("users:         %d\n", len(w.Users()))
	fmt.Printf("max nodes:     %d\n", w.MaxNodes)
	fmt.Printf("span:          %.1f days\n", float64(w.Span())/86400)
	fmt.Printf("offered load:  %.3f\n", w.OfferedLoad())
	fmt.Printf("pow2 sizes:    %.1f%%\n", 100*model.Pow2Fraction(w))
	fmt.Printf("serial jobs:   %.1f%%\n", 100*model.SerialFraction(w))
	// Iterate the named series in sorted-name order: ranging the map
	// directly printed the three lines in a different order per run.
	series := map[string][]float64{
		"interarrival": gaps, "size": sizes, "runtime": rts,
	}
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := stats.Summarize(series[name])
		fmt.Printf("%-13s mean %.1f  median %.1f  p90 %.1f  max %.0f\n",
			name+":", s.Mean, s.Median, s.P90, s.Max)
	}
	return nil
}

func clean(in, out string) error {
	log, err := swf.ReadFile(in)
	if err != nil {
		return err
	}
	cleaned, rep := swf.Clean(log)
	if err := swf.WriteFile(out, cleaned); err != nil {
		return err
	}
	fmt.Printf("%d records in, %d out (%d partials, %d no-runtime, %d no-procs dropped, %d CPU clamps, shifted %ds)\n",
		rep.Input, rep.Output, rep.DroppedPartials, rep.DroppedNoRuntime,
		rep.DroppedNoProcs, rep.ClampedCPU, rep.ShiftedBy)
	return nil
}

func convert(in, out string) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	raws, err := swf.ParseRawLog(f)
	if err != nil {
		return err
	}
	c := swf.NewConverter()
	for _, r := range raws {
		c.Add(r)
	}
	log := c.Convert(swf.Header{
		Conversion: "parsched swf convert",
	})
	users, groups, apps, queues, parts := c.Counts()
	if err := swf.WriteFile(out, log); err != nil {
		return err
	}
	fmt.Printf("converted %d jobs (%d users, %d groups, %d apps, %d queues, %d partitions anonymized)\n",
		len(log.Records), users, groups, apps, queues, parts)
	return nil
}

func feedback(in, out string) error {
	window := int64(3600)
	log, err := swf.ReadFile(in)
	if err != nil {
		return err
	}
	w, err := core.FromSWF(log)
	if err != nil {
		return err
	}
	rep := core.InferFeedback(w, window)
	if err := swf.WriteFile(out, core.ToSWF(w)); err != nil {
		return err
	}
	fmt.Printf("linked %d jobs into %d chains (max length %d, mean think %.0fs, window %ds)\n",
		rep.LinkedJobs, rep.Chains, rep.MaxChainLen, rep.MeanThink, window)
	return nil
}
