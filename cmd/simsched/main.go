// Command simsched replays a standard workload file through one or
// more machine schedulers and prints the metric battery.
//
//	simsched -sched easy,cons,fcfs -outages machine.outages trace.swf
//	swfgen -model lublin99 -jobs 500 | simsched -sched easy
//
// The trace is loaded through the shared trace-workload source
// (internal/workload/trace): cleaned with swf.Clean — the clean report
// is printed on stderr so a mutilated trace is never silent — and
// optionally rescaled to a target offered load by interarrival
// scaling. "-" or no argument reads the log from stdin.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"parsched/internal/metrics"
	"parsched/internal/outage"
	"parsched/internal/sched"
	"parsched/internal/sim"
	"parsched/internal/swf"
	"parsched/internal/workload/trace"
)

func main() {
	schedList := flag.String("sched", "fcfs,easy,cons", "comma-separated schedulers: "+strings.Join(sched.Names(), ", "))
	outagePath := flag.String("outages", "", "outage log file (standard outage format)")
	feedback := flag.Bool("feedback", false, "honour preceding-job/think-time fields (closed loop)")
	perfect := flag.Bool("perfect-estimates", false, "schedulers see true runtimes")
	load := flag.Float64("scale-load", 0, "rescale offered load to this value before simulating (0 = as recorded)")
	jobs := flag.Int("jobs", 0, "replay only the first N jobs (0 = all)")
	flag.Parse()

	var src *trace.Source
	var err error
	switch {
	case flag.NArg() == 0 || (flag.NArg() == 1 && flag.Arg(0) == "-"):
		var log *swf.Log
		log, err = swf.Read(os.Stdin)
		if err == nil {
			name := log.Header.Computer
			if name == "" {
				name = "stdin"
			}
			src, err = trace.FromLog(name, log)
		}
	case flag.NArg() == 1:
		src, err = trace.Open(flag.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "usage: simsched [flags] trace.swf   ('-' or no argument reads stdin)")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "simsched: cleaned %s: %s\n", src.Name, src.CleanSummary())

	w := src.Workload(trace.Options{Load: *load, Jobs: *jobs})

	opts := sim.Options{Feedback: *feedback, PerfectEstimates: *perfect}
	if *outagePath != "" {
		f, err := os.Open(*outagePath)
		if err != nil {
			fail(err)
		}
		olog, err := outage.Read(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		opts.Outages = olog
	}

	fmt.Printf("workload: %s (%d jobs, %d nodes, offered load %.3f)\n",
		w.Name, len(w.Jobs), w.MaxNodes, w.OfferedLoad())
	fmt.Println(metrics.TableHeader())
	for _, name := range strings.Split(*schedList, ",") {
		name = strings.TrimSpace(name)
		s, err := sched.New(name)
		if err != nil {
			fail(err)
		}
		res, err := sim.Run(w, s, opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Report(w.MaxNodes).TableRow())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "simsched:", err)
	os.Exit(1)
}
