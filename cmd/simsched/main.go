// Command simsched replays a standard workload file through one or
// more machine schedulers and prints the metric battery.
//
//	simsched -sched easy,cons,fcfs -outages machine.outages trace.swf
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"parsched/internal/core"
	"parsched/internal/metrics"
	"parsched/internal/outage"
	"parsched/internal/sched"
	"parsched/internal/sim"
	"parsched/internal/swf"
)

func main() {
	schedList := flag.String("sched", "fcfs,easy,cons", "comma-separated schedulers: "+strings.Join(sched.Names(), ", "))
	outagePath := flag.String("outages", "", "outage log file (standard outage format)")
	feedback := flag.Bool("feedback", false, "honour preceding-job/think-time fields (closed loop)")
	perfect := flag.Bool("perfect-estimates", false, "schedulers see true runtimes")
	load := flag.Float64("scale-load", 0, "rescale offered load to this value before simulating (0 = as recorded)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: simsched [flags] trace.swf")
		flag.PrintDefaults()
		os.Exit(2)
	}
	log, err := swf.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	clean, _ := swf.Clean(log)
	w, err := core.FromSWF(clean)
	if err != nil {
		fail(err)
	}
	if *load > 0 {
		base := w.OfferedLoad()
		if base > 0 {
			w.ScaleLoad(*load / base)
		}
	}

	opts := sim.Options{Feedback: *feedback, PerfectEstimates: *perfect}
	if *outagePath != "" {
		f, err := os.Open(*outagePath)
		if err != nil {
			fail(err)
		}
		olog, err := outage.Read(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		opts.Outages = olog
	}

	fmt.Printf("workload: %s (%d jobs, %d nodes, offered load %.3f)\n",
		w.Name, len(w.Jobs), w.MaxNodes, w.OfferedLoad())
	fmt.Println(metrics.TableHeader())
	for _, name := range strings.Split(*schedList, ",") {
		name = strings.TrimSpace(name)
		s, err := sched.New(name)
		if err != nil {
			fail(err)
		}
		res, err := sim.Run(w, s, opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Report(w.MaxNodes).TableRow())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "simsched:", err)
	os.Exit(1)
}
