// Command simsched replays a standard workload file through one or
// more machine schedulers and prints the metric battery.
//
//	simsched -sched easy,cons,fcfs -outages machine.outages trace.swf
//	simsched -sched 'easy(reserve=2, window),gang(mpl=5)' trace.swf
//	swfgen -model lublin99 -jobs 500 | simsched -sched easy
//	simsched -sched easy -warmup 500 -bsld-tau 60 trace.swf   # steady state
//	simsched -sched easy -sample 3600 trace.swf               # utilization series
//
// Metrics are streamed: each run feeds a metrics.Collector one
// completion at a time (wait percentiles appear in the table), -warmup
// truncates the transient (N jobs, or 3600s/2h of simulated time),
// -bsld-tau sets the bounded-slowdown floor, -sketch switches to
// O(1)-memory quantile sketches for huge logs, and -sample prints a
// utilization/queue-length/backlog time series per scheduler.
//
// Schedulers are named in the spec grammar (family(param, key=value));
// run with -h for the full catalogue of families, parameters, and
// legacy names — the help text is derived from the scheduler registry,
// so it cannot go stale.
//
// The trace is loaded through the shared trace-workload source
// (internal/workload/trace): cleaned with swf.Clean — the clean report
// is printed on stderr so a mutilated trace is never silent — and
// optionally rescaled to a target offered load by interarrival
// scaling. "-" or no argument reads the log from stdin. Each
// scheduler run is a RunSpec (internal/experiments), the same unified
// run configuration the experiment battery and the library facade use.
package main

import (
	"flag"
	"fmt"
	"os"

	"parsched/internal/experiments"
	"parsched/internal/metrics"
	"parsched/internal/sched"
	"parsched/internal/swf"
	"parsched/internal/workload/trace"
)

func main() {
	schedList := flag.String("sched", "fcfs,easy,cons",
		"comma-separated scheduler specs, e.g. 'easy,cons' or 'easy(reserve=2, window)'")
	outagePath := flag.String("outages", "", "outage log file (standard outage format)")
	feedback := flag.Bool("feedback", false, "honour preceding-job/think-time fields (closed loop)")
	perfect := flag.Bool("perfect-estimates", false, "schedulers see true runtimes")
	load := flag.Float64("scale-load", 0, "rescale offered load to this value before simulating (0 = as recorded)")
	jobs := flag.Int("jobs", 0, "replay only the first N jobs (0 = all)")
	warmup := flag.String("warmup", "", "steady-state truncation: drop the first N finished jobs (e.g. 500) or everything before a duration (e.g. 3600s, 2h)")
	bsldTau := flag.Int64("bsld-tau", 0, "bounded-slowdown runtime floor in seconds (0 = default 10)")
	sketch := flag.Bool("sketch", false, "O(1)-memory quantile sketches instead of exact percentiles")
	sample := flag.Int64("sample", 0, "print a utilization/queue/backlog time series sampled every N seconds (0 = off)")
	stream := flag.Bool("stream", false, "replay a trace file through the O(1)-memory streaming pipeline (faithful replay only: sorted feedback-free log, no -scale-load/-feedback/-jobs rescaling beyond truncation)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: simsched [flags] trace.swf   ('-' or no argument reads stdin)")
		flag.PrintDefaults()
		fmt.Fprint(os.Stderr, sched.Usage())
	}
	flag.Parse()

	var src *trace.Source
	var ssrc *trace.StreamSource
	var err error
	switch {
	case *stream:
		// Streaming needs two passes over the file (statistics, then
		// replay), so it cannot read stdin.
		if flag.NArg() != 1 || flag.Arg(0) == "-" {
			fail(fmt.Errorf("-stream needs a trace file argument"))
		}
		ssrc, err = trace.OpenStream(flag.Arg(0))
	case flag.NArg() == 0 || (flag.NArg() == 1 && flag.Arg(0) == "-"):
		var log *swf.Log
		log, err = swf.Read(os.Stdin)
		if err == nil {
			name := log.Header.Computer
			if name == "" {
				name = "stdin"
			}
			src, err = trace.FromLog(name, log)
		}
	case flag.NArg() == 1:
		src, err = trace.Open(flag.Arg(0))
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fail(err)
	}
	if ssrc != nil {
		fmt.Fprintf(os.Stderr, "simsched: scanned %s: %s\n", ssrc.Name, ssrc.CleanSummary())
	} else {
		fmt.Fprintf(os.Stderr, "simsched: cleaned %s: %s\n", src.Name, src.CleanSummary())
	}

	if *bsldTau < 0 {
		fail(fmt.Errorf("-bsld-tau: %d is not a positive duration", *bsldTau))
	}
	metricsSpec := experiments.MetricsSpec{
		Tau:         *bsldTau,
		Sketch:      *sketch,
		SampleEvery: *sample,
	}
	if *warmup != "" {
		j, secs, err := experiments.ParseWarmup(*warmup)
		if err != nil {
			fail(err)
		}
		metricsSpec.WarmupJobs, metricsSpec.WarmupTime = j, secs
	}

	// One RunSpec per scheduler: scheduler spec × source × options ×
	// load point, exactly the run configuration the battery uses.
	base := experiments.RunSpec{
		Jobs:  *jobs,
		Loads: []float64{*load},
		Sim: experiments.SimSpec{
			Feedback:         *feedback,
			PerfectEstimates: *perfect,
			OutagePath:       *outagePath,
		},
		Metrics: metricsSpec,
	}

	// Fail fast on a bad outage file, before any scheduler runs.
	if _, err := base.Sim.Options(); err != nil {
		fail(err)
	}

	specs := sched.SplitList(*schedList)
	if len(specs) == 0 {
		fail(fmt.Errorf("-sched names no schedulers"))
	}
	first := true
	for _, name := range specs {
		sp, err := sched.Parse(name)
		if err != nil {
			fail(err)
		}
		rs := base
		rs.Scheduler = sp
		var results []experiments.RunResult
		if ssrc != nil {
			results, err = experiments.ExecuteStream(ssrc, rs)
		} else {
			results, err = experiments.ExecuteSource(src, rs)
		}
		if err != nil {
			fail(err)
		}
		r := results[0]
		if first {
			fmt.Printf("workload: %s (%d jobs, %d nodes, offered load %.3f)\n",
				r.Workload.Name, r.Workload.Jobs, r.Workload.Nodes, r.Workload.OfferedLoad)
			if metricsSpec.WarmupJobs > 0 || metricsSpec.WarmupTime > 0 || metricsSpec.Tau > 0 {
				fmt.Printf("metrics: tau %ds, warmup %s\n",
					r.Report.Tau, warmupLabel(metricsSpec))
			}
			fmt.Println(metrics.TableHeader())
			first = false
		}
		fmt.Println(r.Report.TableRow())
		if r.Series != nil {
			printSeries(r.Report.Scheduler, r.Series)
		}
	}
}

// warmupLabel renders the active truncation policy.
func warmupLabel(ms experiments.MetricsSpec) string {
	switch {
	case ms.WarmupJobs > 0:
		return fmt.Sprintf("first %d jobs", ms.WarmupJobs)
	case ms.WarmupTime > 0:
		return fmt.Sprintf("first %ds", ms.WarmupTime)
	default:
		return "none"
	}
}

// printSeries renders the sampled time series under a run's table row.
func printSeries(sched string, ts *metrics.TimeSeries) {
	fmt.Printf("time-series for %s (every %ds):\n", sched, ts.Interval)
	fmt.Printf("  %10s %6s %6s %8s %14s\n", "t(s)", "util", "queue", "running", "backlog(ps)")
	for _, s := range ts.Samples {
		fmt.Printf("  %10d %6.3f %6d %8d %14d\n", s.Time, s.Utilization, s.Queued, s.Running, s.Backlog)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "simsched:", err)
	os.Exit(1)
}
