// Command schedlint runs the repository's custom static-analysis
// suite — the determinism contracts every reported result depends on,
// and the allocgate performance contracts guarding the
// //schedlint:hotpath kernels — over the given packages.
//
// Usage:
//
//	schedlint [-list] [-only check,...] [-json] [-baseline file] [-update-baseline] [-hotpaths] [packages]
//
// Packages default to ./... relative to the current directory. The
// exit status is 1 when any finding survives the //schedlint:allow
// directives, 2 on usage or load errors, so CI fails on findings.
//
// -hotpaths switches to the audit mode: instead of linting, print the
// whole-program propagated hot set, one function per line with the
// full cross-package Via chain from its root, plus the roots the
// propagation makes redundant (annotated functions already reachable
// from other roots). With -json each hot function is one JSON object
// (package, func, root, chain, root/redundant flags). Baseline and
// annotation audits read this instead of the graph code.
//
// The escape analyzer checks the compiler's -m diagnostics against the
// sanctioned-escapes baseline (-baseline; defaults to ESCAPES.baseline
// at the module root). New hot-path escapes are findings; escapes the
// baseline sanctions but the compiler no longer emits are stale
// findings too, so the ratchet only tightens — run -update-baseline to
// rewrite the baseline to the current state after benchmarking the
// change. -json emits one finding per line as JSON (analyzer, pos,
// message, suppressed), including the //schedlint:allow-suppressed
// findings machine consumers may want to audit.
//
// The suite is built on internal/analysis/framework, a stdlib-only
// mirror of golang.org/x/tools/go/analysis (the build environment is
// hermetic: no module proxy, no vendored x/tools). Each analyzer's doc
// string describes the contract it enforces; see README "Static
// analysis & invariants".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"parsched/internal/analysis"
	"parsched/internal/analysis/callgraph"
	"parsched/internal/analysis/escape"
	"parsched/internal/analysis/framework"
	"parsched/internal/analysis/load"
)

func main() {
	listFlag := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated subset of checks to run")
	jsonFlag := flag.Bool("json", false, "emit findings as JSON, one object per line (includes suppressed findings)")
	baseline := flag.String("baseline", "", "sanctioned-escapes baseline file (default: ESCAPES.baseline at the module root)")
	update := flag.Bool("update-baseline", false, "rewrite the baseline to the current escape findings instead of failing on them")
	hotpaths := flag.Bool("hotpaths", false, "print the whole-program propagated hot set with cross-package Via chains and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: schedlint [-list] [-only check,...] [-json] [-baseline file] [-update-baseline] [-hotpaths] [packages]\n\nchecks:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers := analysis.Analyzers()
	if *listFlag {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*framework.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var subset []*framework.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "schedlint: unknown check %q\n", name)
				os.Exit(2)
			}
			subset = append(subset, a)
		}
		analyzers = subset
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}
	escape.BaselinePath = *baseline
	if escape.BaselinePath == "" {
		escape.BaselinePath = defaultBaseline(cwd)
	}
	pkgs, err := load.Packages(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "schedlint: %s: type error: %v\n", p.Path, terr)
		}
	}
	if *hotpaths {
		printHotpaths(pkgs, *jsonFlag)
		return
	}
	diags, fset, err := framework.RunAll(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}

	if *update {
		if escape.BaselinePath == "" {
			fmt.Fprintln(os.Stderr, "schedlint: -update-baseline: no baseline path (outside a module?); pass -baseline")
			os.Exit(2)
		}
		stale := len(escape.Stale())
		if err := escape.WriteBaseline(escape.BaselinePath, escape.MergedBaseline()); err != nil {
			fmt.Fprintln(os.Stderr, "schedlint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "schedlint: wrote %s (%d sanctioned escapes, %d stale removed)\n",
			escape.BaselinePath, len(escape.Collected()), stale)
	}

	// Stale baseline entries are findings too: an escape that was fixed
	// must be ratcheted out of the baseline, or the contract loosens.
	var staleCount int
	if !*update {
		for _, k := range escape.Stale() {
			staleCount++
			fmt.Printf("%s: escape: baseline sanctions %q in %s.%s but the compiler no longer reports it; run -update-baseline to ratchet\n",
				escape.BaselinePath, k.Reason, k.Pkg, k.Func)
		}
	}

	failing := 0
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		isEscape := d.Check == escape.Analyzer.Name
		sanctioned := d.Suppressed || (*update && isEscape)
		if !sanctioned {
			failing++
		}
		if *jsonFlag {
			enc.Encode(jsonFinding{
				Analyzer:   d.Check,
				Pos:        fset.Position(d.Pos).String(),
				Message:    d.Message,
				Suppressed: sanctioned,
			})
			continue
		}
		switch {
		case d.Suppressed:
			continue // plain output keeps the historical suppressed-free shape
		case *update && isEscape:
			fmt.Printf("%s: %s: %s (now sanctioned in baseline)\n", fset.Position(d.Pos), d.Check, d.Message)
		default:
			fmt.Printf("%s: %s: %s\n", fset.Position(d.Pos), d.Check, d.Message)
		}
	}
	failing += staleCount
	if failing > 0 {
		fmt.Fprintf(os.Stderr, "schedlint: %d finding(s)\n", failing)
		os.Exit(1)
	}
}

// jsonFinding is the -json line format.
type jsonFinding struct {
	Analyzer   string `json:"analyzer"`
	Pos        string `json:"pos"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// jsonHotpath is the -hotpaths -json line format.
type jsonHotpath struct {
	Package   string   `json:"package"`
	Func      string   `json:"func"`
	Root      string   `json:"root"`
	IsRoot    bool     `json:"is_root,omitempty"`
	Redundant bool     `json:"redundant_root,omitempty"`
	Chain     []string `json:"chain"`
}

// printHotpaths is the -hotpaths audit: the whole-program hot set with
// full cross-package Via chains, then the redundant roots — annotated
// entry points the propagation already reaches from other roots, which
// can lose their directive without shrinking the hot set.
func printHotpaths(pkgs []*load.Package, asJSON bool) {
	pg := callgraph.BuildProgram(pkgs)
	redundant := map[*callgraph.Node]bool{}
	for _, n := range pg.RedundantRoots() {
		redundant[n] = true
	}
	enc := json.NewEncoder(os.Stdout)
	hot, roots := 0, 0
	for _, g := range pg.Graphs() {
		for _, n := range g.Nodes() {
			if !n.Hot {
				continue
			}
			hot++
			if n.Root {
				roots++
			}
			if asJSON {
				enc.Encode(jsonHotpath{
					Package:   g.Path(),
					Func:      n.Name(),
					Root:      n.Via,
					IsRoot:    n.Root,
					Redundant: redundant[n],
					Chain:     n.Chain(),
				})
				continue
			}
			mark := " "
			switch {
			case redundant[n]:
				mark = "!" // annotated root that other roots already reach
			case n.Root:
				mark = "*"
			}
			fmt.Printf("%s %-42s %-28s via %s\n", mark, g.Path(), n.Name(), strings.Join(n.Chain(), " -> "))
		}
	}
	if asJSON {
		return
	}
	fmt.Printf("\n%d hot functions, %d roots (* root, ! redundant root)\n", hot, roots)
	if len(redundant) > 0 {
		fmt.Printf("redundant roots (reachable from other roots; the directive can be dropped):\n")
		for _, n := range pg.RedundantRoots() {
			fmt.Printf("  %s\n", n.Qualified())
		}
	}
}

// defaultBaseline resolves ESCAPES.baseline at the enclosing module's
// root, or "" outside a module.
func defaultBaseline(cwd string) string {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = cwd
	out, err := cmd.Output()
	if err != nil {
		return ""
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return ""
	}
	return filepath.Join(filepath.Dir(gomod), "ESCAPES.baseline")
}
