// Command schedlint runs the repository's custom static-analysis
// suite — the determinism and invariant contracts every reported
// result depends on — over the given packages.
//
// Usage:
//
//	schedlint [-list] [-only check,...] [packages]
//
// Packages default to ./... relative to the current directory. The
// exit status is 1 when any finding survives the //schedlint:allow
// directives, 2 on usage or load errors, so CI fails on findings.
//
// The suite is built on internal/analysis/framework, a stdlib-only
// mirror of golang.org/x/tools/go/analysis (the build environment is
// hermetic: no module proxy, no vendored x/tools). Each analyzer's doc
// string describes the contract it enforces; see README "Static
// analysis & invariants".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"parsched/internal/analysis"
	"parsched/internal/analysis/framework"
	"parsched/internal/analysis/load"
)

func main() {
	listFlag := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated subset of checks to run")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: schedlint [-list] [-only check,...] [packages]\n\nchecks:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers := analysis.Analyzers()
	if *listFlag {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*framework.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var subset []*framework.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "schedlint: unknown check %q\n", name)
				os.Exit(2)
			}
			subset = append(subset, a)
		}
		analyzers = subset
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}
	pkgs, err := load.Packages(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "schedlint: %s: type error: %v\n", p.Path, terr)
		}
	}
	diags, fset, err := framework.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", fset.Position(d.Pos), d.Check, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "schedlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
