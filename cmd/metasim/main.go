// Command metasim simulates a metacomputing grid: several machines with
// their own schedulers and local workloads, a stream of meta jobs
// routed by a meta-scheduler policy, and optional co-allocation
// requests — the Figure 1 architecture end to end.
//
//	metasim -sites 4 -nodes 64 -policy predicted-wait -meta-jobs 200
package main

import (
	"flag"
	"fmt"
	"os"

	"parsched/internal/core"
	"parsched/internal/meta"
	"parsched/internal/metrics"
	"parsched/internal/model"
	"parsched/internal/model/lublin"
	"parsched/internal/predict"
	"parsched/internal/sched"
	"parsched/internal/stats"
)

func main() {
	sites := flag.Int("sites", 4, "number of sites")
	nodes := flag.Int("nodes", 64, "nodes per site")
	localJobs := flag.Int("local-jobs", 1000, "local jobs per site")
	policyName := flag.String("policy", "least-work", "meta policy: random, least-work, predicted-wait")
	metaJobs := flag.Int("meta-jobs", 200, "number of meta jobs")
	coalloc := flag.Int("coalloc", 0, "number of co-allocation requests (2-part)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var specs []meta.SiteSpec
	for i := 0; i < *sites; i++ {
		load := 0.3 + 0.3*float64(i) // skewed loads across sites
		lw := lublin.Default().Generate(model.Config{
			MaxNodes: *nodes, Jobs: *localJobs, Seed: *seed + int64(i),
			Load: load, EstimateFactor: 2,
		})
		lw.Name = fmt.Sprintf("local-%d", i)
		specs = append(specs, meta.SiteSpec{
			Name:      fmt.Sprintf("site%d", i),
			Nodes:     *nodes,
			Scheduler: sched.NewEASYWindows(),
			Local:     lw,
			Predictor: predict.NewRecent(25),
		})
	}
	g, err := meta.NewGrid(specs)
	if err != nil {
		fail(err)
	}

	var policy meta.Policy
	switch *policyName {
	case "random":
		policy = meta.NewRandomPolicy(*seed)
	case "least-work":
		policy = meta.LeastWorkPolicy{}
	case "predicted-wait":
		policy = meta.PredictedWaitPolicy{}
	default:
		fail(fmt.Errorf("unknown policy %q", *policyName))
	}

	rng := stats.NewRNG(*seed + 1000)
	var jobs []*core.Job
	t := int64(3600)
	for i := 0; i < *metaJobs; i++ {
		t += int64(rng.Intn(1800)) + 60
		rt := int64(300 + rng.Intn(7200))
		jobs = append(jobs, &core.Job{
			ID: int64(i + 1), Submit: t, Size: 1 << rng.Intn(5),
			Runtime: rt, Estimate: 2 * rt, User: 1 + int64(rng.Intn(16)),
		})
	}
	g.SubmitMeta(jobs, policy)

	if *coalloc > 0 {
		var reqs []meta.CoAllocRequest
		ct := int64(7200)
		for i := 0; i < *coalloc; i++ {
			ct += int64(rng.Intn(3600)) + 600
			reqs = append(reqs, meta.CoAllocRequest{
				ID: int64(i + 1), Submit: ct,
				Procs: *nodes / 2, Duration: int64(1800 + rng.Intn(3600)), Parts: 2,
			})
		}
		g.SubmitCoAlloc(reqs)
	}

	g.Run(0)

	outs, lost := g.MetaOutcomes()
	r := metrics.Compute(policy.Name(), "grid", outs, g.TotalNodes())
	fmt.Printf("grid: %d sites x %d nodes, policy %s\n", *sites, *nodes, policy.Name())
	fmt.Printf("meta jobs: %d dispatched, %d infeasible\n", len(outs), lost)

	// The meta report and the per-site local reports share the metrics
	// table renderer, so every column the Report grows (percentiles)
	// shows up here without bespoke formatting.
	fmt.Println(metrics.TableHeader())
	fmt.Println(r.TableRow())
	for _, row := range metrics.SortedTableRows("local", g.LocalOutcomes(), *nodes) {
		fmt.Println(row)
	}

	if *coalloc > 0 {
		cas := g.CoAllocations()
		granted := 0
		var delays []float64
		for _, ca := range cas {
			if ca.Granted {
				granted++
			}
			if d := ca.Delay(); d >= 0 {
				delays = append(delays, float64(d))
			}
		}
		ds := stats.Summarize(delays)
		fmt.Printf("co-allocation: %d/%d granted, mean delay %.0fs, p90 %.0fs\n",
			granted, len(cas), ds.Mean, ds.P90)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "metasim:", err)
	os.Exit(1)
}
