package parsched

// Streaming-replay benchmarks: a synthesized million-job SWF log
// replayed through the pull-based pipeline (trace.OpenStream →
// sim.RunStream) with sketch-mode metrics. Each op covers the whole
// pipeline — statistics pass, cleaning scan, simulation — so ns/op is
// end-to-end trace-to-report latency. B/op and allocs/op are the
// memory story: the pipeline allocates a small constant per job
// (job struct, outcome entry, arrival event) and retains none of it,
// so allocs/op stays a few multiples of the job count however long
// the trace is, and peak residency is bounded by the jobs in flight.

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"parsched/internal/metrics"
	"parsched/internal/sched"
	"parsched/internal/sim"
	"parsched/internal/workload/trace"
)

// streamBenchJobs is sized so one op replays a full million-job log —
// the scale the streaming pipeline exists for.
const streamBenchJobs = 1_000_000

// writeSyntheticSWF generates a clean, sorted, feedback-free SWF log:
// the shape ScanStats certifies streamable. Sizes and runtimes come
// from a fixed LCG so every run benchmarks the same log; the arrival
// spacing targets a moderate offered load on 128 nodes so the queue
// stays realistic rather than degenerate.
func writeSyntheticSWF(path string, jobs int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	fmt.Fprintln(w, ";Computer: stream-bench")
	fmt.Fprintln(w, ";MaxNodes: 128")
	rng := uint64(0x9e3779b97f4a7c15)
	next := func(n uint64) uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return (rng >> 33) % n
	}
	var submit int64
	for i := 1; i <= jobs; i++ {
		size := 1 + next(32)
		runtime := 60 + next(1200)
		estimate := runtime + next(runtime+1)
		// Mean job area is ~16.5 procs × ~660 s ≈ 10.9k proc·s; a mean
		// gap of ~122 s puts the offered load near 0.7 on 128 nodes —
		// busy, but not a queue that grows with the trace.
		submit += int64(60 + next(125))
		fmt.Fprintf(w, "%d %d -1 %d %d -1 -1 %d %d -1 1 %d 1 1 1 1 -1 -1\n",
			i, submit, runtime, size, size, estimate, 1+next(40))
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// streamBenchLog synthesizes the benchmark log once per benchmark
// process, outside any timer.
var streamBenchPath string

func streamBenchLog(b *testing.B) string {
	b.Helper()
	if streamBenchPath != "" {
		return streamBenchPath
	}
	dir, err := os.MkdirTemp("", "parsched-stream-bench")
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(dir, "million.swf")
	if err := writeSyntheticSWF(path, streamBenchJobs); err != nil {
		b.Fatal(err)
	}
	streamBenchPath = path
	return path
}

// replayStream runs the full streaming pipeline once.
func replayStream(b *testing.B, path string, s sched.Scheduler) {
	b.Helper()
	src, err := trace.OpenStream(path)
	if err != nil {
		b.Fatal(err)
	}
	if !src.Streamable() {
		b.Fatal("synthetic log must be streamable")
	}
	jr, err := src.Stream(0)
	if err != nil {
		b.Fatal(err)
	}
	defer jr.Close()
	col := metrics.NewCollector(metrics.CollectorOptions{
		Scheduler: s.Name(), Workload: src.Name, Procs: src.MaxNodes(),
		Sketch: true, // O(1) metric state; exact mode would retain 3 floats/job
	})
	res, err := sim.RunStream(src.Name, src.MaxNodes(), jr, s, sim.Options{
		DiscardOutcomes: true,
		Observers:       []sim.Observer{col},
	})
	if err != nil {
		b.Fatal(err)
	}
	rep := col.Report()
	if rep.Jobs != streamBenchJobs || res.NeverSubmitted != 0 {
		b.Fatalf("replay lost jobs: reported %d, never-submitted %d", rep.Jobs, res.NeverSubmitted)
	}
}

// BenchmarkStreamReplay1M is the headline number: one million jobs,
// EASY backfilling, full pipeline per op. Divide allocs/op by 1e6 for
// the per-job allocation constant.
func BenchmarkStreamReplay1M(b *testing.B) {
	path := streamBenchLog(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replayStream(b, path, sched.NewEASY())
	}
}

// BenchmarkStreamReplay1MCons replays the same log through
// conservative backfilling (every queued job holds a reservation — the
// heavier profile workload).
func BenchmarkStreamReplay1MCons(b *testing.B) {
	path := streamBenchLog(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replayStream(b, path, sched.NewConservative())
	}
}
