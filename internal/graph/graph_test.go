package graph

import (
	"testing"
	"testing/quick"
)

func TestValidateGoodGraphs(t *testing.T) {
	for _, g := range []*Graph{
		ComputeIntensive(10, 100, 1),
		CommunicationIntensive(8, 10, 1e6, 2),
		DeviceBound([]string{"tape", "viz"}, 50, 1e6),
		MasterWorkers(5, 10, 50, 1e5, 2e5),
	} {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	g := &Graph{Name: "cyc", Modules: []Module{{ID: 0, Work: 1}, {ID: 1, Work: 1}},
		Edges: []Edge{{From: 0, To: 1}, {From: 1, To: 0}}}
	if err := g.Validate(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestValidateCatchesBadEdges(t *testing.T) {
	g := &Graph{Name: "bad", Modules: []Module{{ID: 0, Work: 1}},
		Edges: []Edge{{From: 0, To: 5}}}
	if err := g.Validate(); err == nil {
		t.Fatal("out-of-range edge not detected")
	}
	g2 := &Graph{Name: "self", Modules: []Module{{ID: 0, Work: 1}},
		Edges: []Edge{{From: 0, To: 0}}}
	if err := g2.Validate(); err == nil {
		t.Fatal("self loop not detected")
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	g := MasterWorkers(4, 10, 50, 1, 1)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("edge %d->%d violated in order %v", e.From, e.To, order)
		}
	}
}

func TestCriticalPathPipeline(t *testing.T) {
	// Pipeline of 5 stages, 10s each: critical path is the sum.
	g := CommunicationIntensive(5, 10, 1e6, 3)
	cp := g.CriticalPath()
	total := g.TotalWork()
	if cp != total {
		t.Fatalf("pipeline critical path %v should equal total work %v", cp, total)
	}
}

func TestCriticalPathParallel(t *testing.T) {
	// Independent modules: critical path is the largest single module.
	g := ComputeIntensive(20, 100, 4)
	cp := g.CriticalPath()
	var maxW float64
	for _, m := range g.Modules {
		if m.Work > maxW {
			maxW = m.Work
		}
	}
	if cp != maxW {
		t.Fatalf("cp = %v, want max module %v", cp, maxW)
	}
}

func TestMasterWorkersShape(t *testing.T) {
	g := MasterWorkers(8, 10, 50, 1e6, 2e6)
	if len(g.Modules) != 10 { // master + 8 workers + gather
		t.Fatalf("modules = %d", len(g.Modules))
	}
	if len(g.Edges) != 16 {
		t.Fatalf("edges = %d", len(g.Edges))
	}
	// Critical path: master -> worker -> gather.
	want := 10.0 + 50 + 5
	if cp := g.CriticalPath(); cp != want {
		t.Fatalf("cp = %v, want %v", cp, want)
	}
}

func TestCCRSeparatesClasses(t *testing.T) {
	compute := ComputeIntensive(32, 120, 5)
	comm := CommunicationIntensive(16, 30, 200e6, 6)
	if compute.CCR() != 0 {
		t.Fatalf("compute-intensive CCR = %v, want 0", compute.CCR())
	}
	if comm.CCR() < 1e5 {
		t.Fatalf("communication-intensive CCR = %v, too small", comm.CCR())
	}
}

func TestDeviceBoundDevices(t *testing.T) {
	g := DeviceBound([]string{"a", "b"}, 10, 1e3)
	if g.Modules[0].Device != "a" || g.Modules[1].Device != "b" || g.Modules[2].Device != "" {
		t.Fatalf("devices wrong: %+v", g.Modules)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := ComputeIntensive(10, 100, 42)
	b := ComputeIntensive(10, 100, 42)
	for i := range a.Modules {
		if a.Modules[i].Work != b.Modules[i].Work {
			t.Fatal("same seed differs")
		}
	}
}

func TestTopoOrderProperty(t *testing.T) {
	// Property: every generated micro-benchmark is a valid DAG whose
	// topological order covers all modules exactly once.
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		for _, g := range []*Graph{
			ComputeIntensive(n, 50, seed),
			CommunicationIntensive(n, 20, 1e6, seed),
			MasterWorkers(n, 5, 25, 1e3, 1e3),
		} {
			order, err := g.TopoOrder()
			if err != nil || len(order) != len(g.Modules) {
				return false
			}
			seen := map[int]bool{}
			for _, id := range order {
				if seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
