// Package graph implements annotated program graphs in the style of
// Legion program graphs [33], which Section 4.3 of the paper selects as
// the application representation for the WARMstones evaluation
// environment: "Rather than executing these applications directly, we
// will represent them using annotated graphs, and simulate the
// execution by interpreting the graphs."
//
// A Graph is a DAG of modules annotated with compute work, memory and
// device requirements; edges are annotated with communication volume.
// The package also provides the micro-benchmark generators of Section
// 3.2: compute-intensive, communication-intensive, and device-bound
// meta-applications, plus the master-workers structure Section 1.2
// mentions as the typical flexible application.
package graph

import (
	"fmt"

	"parsched/internal/stats"
)

// Module is one schedulable unit of a meta-application.
type Module struct {
	// ID indexes the module within its graph (0-based, dense).
	ID int
	// Work is the compute demand in seconds on a unit-speed processor.
	Work float64
	// MemKB is the memory requirement per module.
	MemKB int64
	// Device names a required special resource ("" = none); device-
	// bound modules can only run on machines advertising the device.
	Device string
}

// Edge is a data dependency with communication volume.
type Edge struct {
	From, To int
	// Bytes transferred from From to To when From completes.
	Bytes float64
}

// Graph is an annotated DAG of modules.
type Graph struct {
	Name    string
	Modules []Module
	Edges   []Edge
}

// Validate checks structural sanity: dense IDs, edges in range, no
// self-loops, acyclic.
func (g *Graph) Validate() error {
	for i, m := range g.Modules {
		if m.ID != i {
			return fmt.Errorf("graph %s: module %d has ID %d", g.Name, i, m.ID)
		}
		if m.Work < 0 {
			return fmt.Errorf("graph %s: module %d has negative work", g.Name, i)
		}
	}
	n := len(g.Modules)
	for _, e := range g.Edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return fmt.Errorf("graph %s: edge %d->%d out of range", g.Name, e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("graph %s: self loop on %d", g.Name, e.From)
		}
		if e.Bytes < 0 {
			return fmt.Errorf("graph %s: negative bytes on %d->%d", g.Name, e.From, e.To)
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns a deterministic topological order (Kahn's algorithm
// with smallest-ID-first tie breaking) or an error if the graph has a
// cycle.
func (g *Graph) TopoOrder() ([]int, error) {
	n := len(g.Modules)
	indeg := make([]int, n)
	succ := make([][]int, n)
	for _, e := range g.Edges {
		indeg[e.To]++
		succ[e.From] = append(succ[e.From], e.To)
	}
	// Min-heap behaviour via a simple sorted frontier (n is small).
	var frontier []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			frontier = append(frontier, i)
		}
	}
	var order []int
	for len(frontier) > 0 {
		// Pick the smallest ID for determinism.
		mi := 0
		for k := 1; k < len(frontier); k++ {
			if frontier[k] < frontier[mi] {
				mi = k
			}
		}
		m := frontier[mi]
		frontier = append(frontier[:mi], frontier[mi+1:]...)
		order = append(order, m)
		for _, s := range succ[m] {
			indeg[s]--
			if indeg[s] == 0 {
				frontier = append(frontier, s)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("graph %s: cycle detected", g.Name)
	}
	return order, nil
}

// Preds returns each module's predecessor lists (with edge bytes).
func (g *Graph) Preds() map[int][]Edge {
	preds := map[int][]Edge{}
	for _, e := range g.Edges {
		preds[e.To] = append(preds[e.To], e)
	}
	return preds
}

// TotalWork sums module work.
func (g *Graph) TotalWork() float64 {
	var w stats.Moments
	for _, m := range g.Modules {
		w.Add(m.Work)
	}
	return w.Sum()
}

// TotalBytes sums edge volumes.
func (g *Graph) TotalBytes() float64 {
	var b stats.Moments
	for _, e := range g.Edges {
		b.Add(e.Bytes)
	}
	return b.Sum()
}

// CriticalPath returns the longest compute-only path length in seconds
// (unit speed, zero communication): the makespan lower bound with
// unlimited processors.
func (g *Graph) CriticalPath() float64 {
	order, err := g.TopoOrder()
	if err != nil {
		return 0
	}
	finish := make([]float64, len(g.Modules))
	preds := g.Preds()
	var cp float64
	for _, id := range order {
		start := 0.0
		for _, e := range preds[id] {
			if finish[e.From] > start {
				start = finish[e.From]
			}
		}
		finish[id] = start + g.Modules[id].Work
		if finish[id] > cp {
			cp = finish[id]
		}
	}
	return cp
}

// CCR returns the communication-to-computation ratio in bytes per
// work-second — the axis separating the micro-benchmark classes.
func (g *Graph) CCR() float64 {
	w := g.TotalWork()
	if w == 0 {
		return 0
	}
	return g.TotalBytes() / w
}

// ---------------------------------------------------------------------
// Micro-benchmark generators (Section 3.2)

// ComputeIntensive builds "a compute-intensive meta-application that
// can use all the cycles from all the machines it can get": n
// independent modules of meanWork seconds each (perturbed ±25%), no
// communication.
func ComputeIntensive(n int, meanWork float64, seed int64) *Graph {
	rng := stats.NewRNG(seed)
	g := &Graph{Name: fmt.Sprintf("compute-%d", n)}
	for i := 0; i < n; i++ {
		w := meanWork * (0.75 + 0.5*rng.Float64())
		g.Modules = append(g.Modules, Module{ID: i, Work: w, MemKB: 1 << 16})
	}
	return g
}

// CommunicationIntensive builds "a communication-intensive meta
// application that requires extensive data transfers between its
// parts": a pipeline of n stages moving bytesPerEdge each hop, with
// modest compute per stage.
func CommunicationIntensive(n int, work float64, bytesPerEdge float64, seed int64) *Graph {
	rng := stats.NewRNG(seed)
	g := &Graph{Name: fmt.Sprintf("comm-%d", n)}
	for i := 0; i < n; i++ {
		w := work * (0.9 + 0.2*rng.Float64())
		g.Modules = append(g.Modules, Module{ID: i, Work: w, MemKB: 1 << 18})
		if i > 0 {
			g.Edges = append(g.Edges, Edge{From: i - 1, To: i, Bytes: bytesPerEdge})
		}
	}
	return g
}

// DeviceBound builds "a meta-application that requires a specific set
// of devices from different locations": k device stages (each pinned to
// a named device) feeding a merge module.
func DeviceBound(devices []string, work float64, bytesPerEdge float64) *Graph {
	g := &Graph{Name: fmt.Sprintf("device-%d", len(devices))}
	for i, d := range devices {
		g.Modules = append(g.Modules, Module{ID: i, Work: work, Device: d, MemKB: 1 << 16})
	}
	merge := len(devices)
	g.Modules = append(g.Modules, Module{ID: merge, Work: work / 2, MemKB: 1 << 16})
	for i := range devices {
		g.Edges = append(g.Edges, Edge{From: i, To: merge, Bytes: bytesPerEdge})
	}
	return g
}

// MasterWorkers builds the master-workers structure of Section 1.2:
// a master module scatters to n workers and gathers their results.
func MasterWorkers(n int, masterWork, workerWork, scatterBytes, gatherBytes float64) *Graph {
	g := &Graph{Name: fmt.Sprintf("master-workers-%d", n)}
	g.Modules = append(g.Modules, Module{ID: 0, Work: masterWork, MemKB: 1 << 17})
	for i := 1; i <= n; i++ {
		g.Modules = append(g.Modules, Module{ID: i, Work: workerWork, MemKB: 1 << 16})
		g.Edges = append(g.Edges, Edge{From: 0, To: i, Bytes: scatterBytes})
	}
	gather := n + 1
	g.Modules = append(g.Modules, Module{ID: gather, Work: masterWork / 2, MemKB: 1 << 17})
	for i := 1; i <= n; i++ {
		g.Edges = append(g.Edges, Edge{From: i, To: gather, Bytes: gatherBytes})
	}
	return g
}
