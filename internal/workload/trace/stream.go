package trace

// Streaming trace replay: a StreamSource answers the same questions a
// materialized Source does (machine size, job count, offered load,
// clean report) from one O(1)-memory statistics pass, then hands out
// core.JobStream readers that pull cleaned jobs off the file on demand.
// Combined with sim.RunStream this replays million-job archive logs
// without ever holding the workload in memory.
//
// The job sequence a reader yields is byte-identical to
// Source.Workload's Jobs for the same file (the property tests in
// stream_test.go pin this): both funnel every record through
// swf.cleanOne and core.JobFromRecord, and streamability guarantees the
// file order already is the cleaned order.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"parsched/internal/core"
	"parsched/internal/swf"
)

// StreamSource is the pull-based view of one SWF log on disk. It is
// immutable after OpenStream and safe for concurrent use; each Stream
// call opens its own reader.
type StreamSource struct {
	// Name identifies the trace in reports (header Computer field, or
	// the file's base name when the header does not state one).
	Name string
	// Path is the file the source reads from.
	Path string
	// Stats is the outcome of the statistics pass.
	Stats *swf.StreamStats

	maxNodes int
}

// OpenStream runs the statistics pass over the log at path. It never
// materializes the log; check Streamable before calling Stream — a
// non-streamable log (records out of order, or feedback references
// that need the full ID map to remap) must fall back to Open.
func OpenStream(path string) (*StreamSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	stats, err := swf.ScanStats(f)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	name := stats.Header.Computer
	if name == "" {
		name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	src := &StreamSource{Name: name, Path: path, Stats: stats}
	// Same machine-size rule as FromLog: the header's claim, widened to
	// the widest replayable job so every job fits.
	src.maxNodes = int(stats.Header.MaxNodes)
	if int(stats.MaxJobSize) > src.maxNodes {
		src.maxNodes = int(stats.MaxJobSize)
	}
	return src, nil
}

// Streamable reports whether Stream reproduces the materialized
// pipeline for this log.
func (s *StreamSource) Streamable() bool { return s.Stats.Streamable }

// MaxNodes is the machine size the trace targets.
func (s *StreamSource) MaxNodes() int { return s.maxNodes }

// JobCount is the number of replayable jobs in the log.
func (s *StreamSource) JobCount() int { return s.Stats.Jobs }

// OfferedLoad is the offered load of the trace as recorded, computed
// the same way core.Workload.OfferedLoad computes it.
func (s *StreamSource) OfferedLoad() float64 {
	span := s.Stats.LastEnd - s.Stats.FirstSubmit
	if span <= 0 || s.maxNodes == 0 {
		return 0
	}
	return float64(s.Stats.TotalArea) / (float64(span) * float64(s.maxNodes))
}

// Stream opens a reader over the first limit replayable jobs (0 = all).
// The caller owns the reader and must Close it. Only valid when
// Streamable reports true.
func (s *StreamSource) Stream(limit int) (*JobReader, error) {
	if !s.Stats.Streamable {
		return nil, fmt.Errorf("trace %s: log is not streamable; use trace.Open", s.Name)
	}
	f, err := os.Open(s.Path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return &JobReader{
		f:     f,
		cs:    swf.NewCleanStream(f, s.Stats),
		limit: limit,
	}, nil
}

// JobReader pulls cleaned jobs off an open trace file one at a time. It
// implements core.JobStream and io.Closer.
type JobReader struct {
	f     *os.File
	cs    *swf.CleanStream
	limit int
	n     int
	prev  int64
}

// Next implements core.JobStream: jobs with IDs 1, 2, ... in
// non-decreasing submit order, (nil, nil) at end of trace.
func (r *JobReader) Next() (*core.Job, error) {
	if r.limit > 0 && r.n >= r.limit {
		return nil, nil
	}
	if !r.cs.Scan() {
		if err := r.cs.Err(); err != nil {
			return nil, err
		}
		return nil, nil
	}
	rec := r.cs.Record()
	if rec.Submit < r.prev {
		// The file changed (or was mis-scanned) between the statistics
		// pass and the replay; refuse to feed an invalid arrival order
		// into the simulator.
		return nil, fmt.Errorf("trace: job %d: submit %d before predecessor's %d; file not streamable", //schedlint:allow allocfree error path: a failed read aborts the replay
			rec.JobID, rec.Submit, r.prev)
	}
	r.prev = rec.Submit
	r.n++
	return core.JobFromRecord(rec), nil
}

// Close releases the underlying file.
func (r *JobReader) Close() error { return r.f.Close() }

// CleanSummary renders what the statistics pass found, the streaming
// analogue of Source.CleanSummary.
func (s *StreamSource) CleanSummary() string {
	r := s.Stats.Report
	return fmt.Sprintf("%d records in, %d replayable: dropped %d partial-execution, %d no-runtime, %d no-procs, %d no-submit; clamped %d CPU fields; renumbered %d job IDs; shifted submittals by %ds; streamable=%v",
		r.Input, s.Stats.Jobs, r.DroppedPartials, r.DroppedNoRuntime,
		r.DroppedNoProcs, s.Stats.DroppedNoSubmit, r.ClampedCPU, r.Renumbered,
		r.ShiftedBy, s.Stats.Streamable)
}
