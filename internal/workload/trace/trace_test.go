package trace

import (
	"math"
	"os"
	"strings"
	"sync"
	"testing"

	"parsched/internal/core"
	"parsched/internal/sched"
	"parsched/internal/sim"
	"parsched/internal/swf"
)

const fixture = "testdata/mini.swf"

func openFixture(t *testing.T) *Source {
	t.Helper()
	s, err := Open(fixture)
	if err != nil {
		t.Fatalf("Open(%s): %v", fixture, err)
	}
	return s
}

func TestOpenCleansTheGoldenFixture(t *testing.T) {
	s := openFixture(t)
	// The fixture is a synthetic log deliberately dirtied with every
	// anomaly Clean handles: epoch-based submits, one unknown-submit
	// line, one unknown-runtime line, one procs-fallback line, one
	// CPU-overrun line, two partial-execution lines, unsorted records.
	if s.Report.Input != 90 {
		t.Fatalf("Input = %d, want 90", s.Report.Input)
	}
	if s.Report.DroppedPartials != 2 || s.Report.DroppedNoRuntime != 1 || s.Report.DroppedNoProcs != 0 {
		t.Fatalf("drop counts wrong: %+v", s.Report)
	}
	if s.Report.ClampedCPU != 1 {
		t.Fatalf("ClampedCPU = %d, want 1", s.Report.ClampedCPU)
	}
	if !s.Report.ResortedRecords {
		t.Fatal("fixture is unsorted; Clean must resort")
	}
	if s.Report.ShiftedBy != 915176221 {
		t.Fatalf("ShiftedBy = %d, want 915176221 (epoch of first known submit)", s.Report.ShiftedBy)
	}
	if s.DroppedNoSubmit != 1 {
		t.Fatalf("DroppedNoSubmit = %d, want 1", s.DroppedNoSubmit)
	}
	if s.JobCount() != 86 {
		t.Fatalf("JobCount = %d, want 86", s.JobCount())
	}
	if s.Name != "mini-cluster" || s.MaxNodes() != 32 {
		t.Fatalf("identity wrong: %q / %d nodes", s.Name, s.MaxNodes())
	}
	w := s.Workload(Options{})
	if w.Jobs[0].Submit != 0 {
		t.Fatalf("first submit = %d, want 0 (rebased)", w.Jobs[0].Submit)
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("base workload invalid: %v", err)
	}
}

// renderSWF is the byte-level artifact determinism is stated over.
func renderSWF(t *testing.T, w *core.Workload) string {
	t.Helper()
	var b strings.Builder
	if err := swf.Write(&b, core.ToSWF(w)); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestWorkloadIsDeterministicAndPrivate(t *testing.T) {
	s := openFixture(t)
	opts := Options{Load: 0.8, Jobs: 50, Variant: 3, Seed: 1999}
	a := s.Workload(opts)
	b := s.Workload(opts)
	if renderSWF(t, a) != renderSWF(t, b) {
		t.Fatal("same options must derive byte-identical workloads")
	}
	// Mutating a derived workload must not leak into the source.
	a.Jobs[0].Runtime = 999999
	c := s.Workload(opts)
	if c.Jobs[0].Runtime == 999999 {
		t.Fatal("derived workloads must be private clones")
	}
}

func TestVariantZeroIsFaithfulReplay(t *testing.T) {
	s := openFixture(t)
	for _, seed := range []int64{0, 1, 1999} {
		w := s.Workload(Options{Variant: 0, Seed: seed})
		base := s.Workload(Options{})
		if renderSWF(t, w) != renderSWF(t, base) {
			t.Fatalf("variant 0 with seed %d must be the faithful replay", seed)
		}
	}
}

func TestVariantsResampleArrivals(t *testing.T) {
	s := openFixture(t)
	base := s.Workload(Options{})
	v1 := s.Workload(Options{Variant: 1, Seed: 1999})
	v2 := s.Workload(Options{Variant: 2, Seed: 1999})
	otherSeed := s.Workload(Options{Variant: 1, Seed: 2000})

	differs := func(a, b *core.Workload) bool {
		for i := range a.Jobs {
			if a.Jobs[i].Submit != b.Jobs[i].Submit {
				return true
			}
		}
		return false
	}
	if !differs(base, v1) || !differs(v1, v2) || !differs(v1, otherSeed) {
		t.Fatal("variants must produce distinct arrival patterns")
	}

	// Resampling permutes the gaps: span, total area, job attributes,
	// and therefore offered load are all preserved.
	if base.TotalArea() != v1.TotalArea() {
		t.Fatal("resampling must not change work")
	}
	last := func(w *core.Workload) int64 { return w.Jobs[len(w.Jobs)-1].Submit }
	if last(base) != last(v1) {
		t.Fatalf("gap shuffle must preserve the submit span: %d vs %d", last(base), last(v1))
	}
	for i := range base.Jobs {
		b, v := base.Jobs[i], v1.Jobs[i]
		if b.Size != v.Size || b.Runtime != v.Runtime || b.User != v.User || b.ID != v.ID {
			t.Fatal("resampling must keep per-job attributes in place")
		}
	}
	if err := v1.Validate(); err != nil {
		t.Fatalf("resampled workload invalid: %v", err)
	}
}

func TestLoadRescaling(t *testing.T) {
	s := openFixture(t)
	for _, target := range []float64{0.5, 0.7, 0.9} {
		w := s.Workload(Options{Load: target})
		got := w.OfferedLoad()
		if math.Abs(got-target) > 0.02*target {
			t.Fatalf("rescaled load = %.4f, want within 2%% of %.2f", got, target)
		}
		if w.TotalArea() != s.Workload(Options{}).TotalArea() {
			t.Fatal("load rescaling must change arrivals, never work")
		}
	}
}

func TestTruncation(t *testing.T) {
	s := openFixture(t)
	w := s.Workload(Options{Jobs: 10})
	if len(w.Jobs) != 10 {
		t.Fatalf("jobs = %d, want 10", len(w.Jobs))
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("truncated workload invalid: %v", err)
	}
	if got := s.Workload(Options{Jobs: 10000}); len(got.Jobs) != s.JobCount() {
		t.Fatal("oversized truncation must keep every job")
	}
}

// TestRoundTripSimDeterminism is the trace round-trip contract: Read →
// Clean → trace workload → sim.Run is byte-identical for the same seed
// and variant, and a different replication variant actually changes
// the simulation.
func TestRoundTripSimDeterminism(t *testing.T) {
	s := openFixture(t)
	run := func(variant int, seed int64) string {
		w := s.Workload(Options{Load: 0.9, Variant: variant, Seed: seed})
		res, err := sim.Run(w, sched.NewEASY(), sim.Options{})
		if err != nil {
			t.Fatalf("sim.Run: %v", err)
		}
		return res.Report(w.MaxNodes).TableRow()
	}
	if a, b := run(0, 1999), run(0, 1999); a != b {
		t.Fatalf("same seed must be byte-identical:\n%s\n%s", a, b)
	}
	if a, b := run(1, 1999), run(1, 1999); a != b {
		t.Fatalf("same (variant, seed) must be byte-identical:\n%s\n%s", a, b)
	}
	if a, b := run(0, 1999), run(1, 1999); a == b {
		t.Fatalf("different variant produced an identical report row: %s", a)
	}
}

func TestFromLogAndMaxNodesInference(t *testing.T) {
	log := &swf.Log{}
	log.Records = []swf.Record{
		{JobID: 1, Submit: 0, Wait: 0, RunTime: 100, Procs: 48, ReqProcs: 48,
			Status: swf.StatusCompleted, User: 1, Group: 1, App: 1, Queue: 1,
			Partition: 1, PrecedingJob: swf.Missing, ThinkTime: swf.Missing,
			AvgCPU: swf.Missing, UsedMem: swf.Missing, ReqTime: 200, ReqMem: swf.Missing},
		{JobID: 2, Submit: 60, Wait: 0, RunTime: 50, Procs: 4, ReqProcs: 4,
			Status: swf.StatusCompleted, User: 1, Group: 1, App: 1, Queue: 1,
			Partition: 1, PrecedingJob: swf.Missing, ThinkTime: swf.Missing,
			AvgCPU: swf.Missing, UsedMem: swf.Missing, ReqTime: 100, ReqMem: swf.Missing},
	}
	s, err := FromLog("", log)
	if err != nil {
		t.Fatalf("FromLog: %v", err)
	}
	if s.Name != "trace" {
		t.Fatalf("Name = %q, want fallback \"trace\"", s.Name)
	}
	// No MaxNodes header: inferred from the widest job.
	if s.MaxNodes() != 48 {
		t.Fatalf("MaxNodes = %d, want 48 (inferred)", s.MaxNodes())
	}
}

func TestFromLogRejectsUnreplayableLogs(t *testing.T) {
	// A log whose every record is dropped by cleaning must error here,
	// not panic downstream when an experiment indexes Jobs[len-1].
	log := &swf.Log{Records: []swf.Record{
		{JobID: 1, Submit: 0, Wait: 10, RunTime: -1, Procs: 4, ReqProcs: 4,
			Status: swf.StatusCompleted, User: 1, Group: 1, App: 1, Queue: 1,
			Partition: 1, PrecedingJob: swf.Missing, ThinkTime: swf.Missing,
			AvgCPU: swf.Missing, UsedMem: swf.Missing, ReqTime: 100, ReqMem: swf.Missing},
	}}
	if _, err := FromLog("empty", log); err == nil {
		t.Fatal("log with no replayable jobs must be rejected")
	}
	if _, err := FromLog("empty", &swf.Log{}); err == nil {
		t.Fatal("empty log must be rejected")
	}
}

func TestCachedSharesOneSource(t *testing.T) {
	a, err := Cached(fixture)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cached(fixture)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Cached must return the shared source")
	}
	if _, err := Cached("testdata/does-not-exist.swf"); err == nil {
		t.Fatal("Cached must propagate open errors")
	}
	if _, err := os.Stat(fixture); err != nil {
		t.Fatalf("fixture missing: %v", err)
	}

	// Concurrent derivation from the shared source must be race-free
	// and deterministic (checked under -race in CI).
	var wg sync.WaitGroup
	rows := make([]string, 8)
	for i := range rows {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := a.Workload(Options{Load: 0.7, Variant: 1 + i%2, Seed: 1999})
			res, err := sim.Run(w, sched.NewEASY(), sim.Options{})
			if err != nil {
				t.Errorf("sim.Run: %v", err)
				return
			}
			rows[i] = res.Report(w.MaxNodes).TableRow()
		}(i)
	}
	wg.Wait()
	for i := 2; i < len(rows); i++ {
		if rows[i] != rows[i-2] {
			t.Fatalf("concurrent derivation not deterministic:\n%s\n%s", rows[i-2], rows[i])
		}
	}
}
