package trace

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"parsched/internal/core"
	"parsched/internal/metrics"
	"parsched/internal/sched"
	"parsched/internal/sim"
	"parsched/internal/swf"
)

// streamableFixture writes the cleaned form of mini.swf to a temp file:
// sorted, rebased, renumbered — the shape archive ".cln.swf" files ship
// in, and the shape the streaming pipeline accepts.
func streamableFixture(t *testing.T) string {
	t.Helper()
	log, err := swf.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := swf.Clean(log)
	path := filepath.Join(t.TempDir(), "mini.cln.swf")
	if err := swf.WriteFile(path, clean); err != nil {
		t.Fatal(err)
	}
	return path
}

func openBoth(t *testing.T, path string) (*Source, *StreamSource) {
	t.Helper()
	src, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ss, err := OpenStream(path)
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	if !ss.Streamable() {
		t.Fatalf("cleaned fixture must be streamable; stats %+v", ss.Stats)
	}
	return src, ss
}

// drain pulls every job off a stream.
func drain(t *testing.T, js core.JobStream) []*core.Job {
	t.Helper()
	var out []*core.Job
	for {
		j, err := js.Next()
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		if j == nil {
			return out
		}
		out = append(out, j)
	}
}

func TestStreamedJobsAreByteIdenticalToMaterialized(t *testing.T) {
	path := streamableFixture(t)
	src, ss := openBoth(t, path)

	for _, limit := range []int{0, 1, 10, 10000} {
		want := src.Workload(Options{Jobs: limit}).Jobs
		jr, err := ss.Stream(limit)
		if err != nil {
			t.Fatalf("Stream(%d): %v", limit, err)
		}
		got := drain(t, jr)
		jr.Close()
		if len(got) != len(want) {
			t.Fatalf("limit %d: streamed %d jobs, materialized %d", limit, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(*got[i], *want[i]) {
				t.Fatalf("limit %d: job %d differs:\nstream      %+v\nmaterialize %+v",
					limit, i, *got[i], *want[i])
			}
		}
	}
}

func TestStreamSourceAgreesWithSource(t *testing.T) {
	path := streamableFixture(t)
	src, ss := openBoth(t, path)

	if ss.Name != src.Name {
		t.Fatalf("Name: %q vs %q", ss.Name, src.Name)
	}
	if ss.JobCount() != src.JobCount() {
		t.Fatalf("JobCount: %d vs %d", ss.JobCount(), src.JobCount())
	}
	if ss.MaxNodes() != src.MaxNodes() {
		t.Fatalf("MaxNodes: %d vs %d", ss.MaxNodes(), src.MaxNodes())
	}
	if d := math.Abs(ss.OfferedLoad() - src.OfferedLoad()); d > 1e-12 {
		t.Fatalf("OfferedLoad: %g vs %g", ss.OfferedLoad(), src.OfferedLoad())
	}
	// The statistics pass must reproduce the clean report the
	// materialized open computes (the cleaned fixture re-cleans as a
	// near-identity, so most counters are zero — the point is they are
	// the SAME zeros and the same totals).
	if ss.Stats.Report != src.Report {
		t.Fatalf("CleanReport diverges:\nstream      %+v\nmaterialize %+v", ss.Stats.Report, src.Report)
	}
	if ss.Stats.DroppedNoSubmit != src.DroppedNoSubmit {
		t.Fatalf("DroppedNoSubmit: %d vs %d", ss.Stats.DroppedNoSubmit, src.DroppedNoSubmit)
	}
}

func TestStreamRefusesRescaledOrResampledShapes(t *testing.T) {
	// The raw (unsorted) fixture must be rejected at the source level.
	ss, err := OpenStream(fixture)
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	if ss.Streamable() {
		t.Fatal("raw mini.swf is unsorted; must not be streamable")
	}
	if _, err := ss.Stream(0); err == nil {
		t.Fatal("Stream on a non-streamable source must error")
	}
}

// runBoth replays the fixture through scheduler spec both ways and
// returns the two metric reports plus event counts.
func runBoth(t *testing.T, path, spec string, opts sim.Options) (mat, str metrics.Report, matEv, strEv uint64) {
	t.Helper()
	src, ss := openBoth(t, path)

	s1, err := sched.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	w := src.Workload(Options{})
	col1 := metrics.NewCollector(metrics.CollectorOptions{
		Scheduler: s1.Name(), Workload: w.Name, Procs: w.MaxNodes})
	o1 := opts
	o1.Observers = []sim.Observer{col1}
	o1.DiscardOutcomes = true
	res1, err := sim.Run(w, s1, o1)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	s2, err := sched.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	col2 := metrics.NewCollector(metrics.CollectorOptions{
		Scheduler: s2.Name(), Workload: ss.Name, Procs: ss.MaxNodes()})
	o2 := opts
	o2.Observers = []sim.Observer{col2}
	o2.DiscardOutcomes = true
	jr, err := ss.Stream(0)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	res2, err := sim.RunStream(ss.Name, ss.MaxNodes(), jr, s2, o2)
	if err != nil {
		t.Fatalf("RunStream: %v", err)
	}
	return col1.Report(), col2.Report(), res1.Events, res2.Events
}

func TestRunStreamMatchesRun(t *testing.T) {
	path := streamableFixture(t)
	for _, spec := range []string{"easy", "cons", "fcfs"} {
		t.Run(spec, func(t *testing.T) {
			mat, str, matEv, strEv := runBoth(t, path, spec, sim.Options{})
			if !reflect.DeepEqual(mat, str) {
				t.Fatalf("reports diverge:\nmaterialized %+v\nstreamed     %+v", mat, str)
			}
			if matEv != strEv {
				t.Fatalf("event counts diverge: %d vs %d", matEv, strEv)
			}
		})
	}
}

func TestRunStreamMatchesRunUnderHorizon(t *testing.T) {
	path := streamableFixture(t)
	// A horizon that cuts the replay mid-flight exercises the residual
	// flush and the never-submitted tail accounting.
	mat, str, _, _ := runBoth(t, path, "easy", sim.Options{Horizon: 200000})
	if !reflect.DeepEqual(mat, str) {
		t.Fatalf("horizon reports diverge:\nmaterialized %+v\nstreamed     %+v", mat, str)
	}
}

func TestRunStreamRejectsFeedback(t *testing.T) {
	if _, err := sim.RunStream("x", 4, core.NewSliceStream(nil), sched.NewFCFS(), sim.Options{Feedback: true}); err == nil {
		t.Fatal("RunStream must reject feedback mode")
	}
}

func TestRunStreamPrunesOutcomeMap(t *testing.T) {
	// Indirect but load-bearing: with DiscardOutcomes the streaming
	// replay must not accumulate per-job state. We can't measure the map
	// from outside, so replay a stream larger than any plausible
	// in-flight population and check allocations stay modest via the
	// equivalence benchmark instead; here we at least pin that final
	// outcomes really are emitted exactly once to observers.
	path := streamableFixture(t)
	_, ss := openBoth(t, path)
	s, err := sched.New("easy")
	if err != nil {
		t.Fatal(err)
	}
	var n int
	jr, err := ss.Stream(0)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	_, err = sim.RunStream(ss.Name, ss.MaxNodes(), jr, s, sim.Options{
		DiscardOutcomes: true,
		Observers:       []sim.Observer{observerFunc(func(metrics.Outcome) { n++ })},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != ss.JobCount() {
		t.Fatalf("observers saw %d outcomes for %d jobs", n, ss.JobCount())
	}
}

type observerFunc func(metrics.Outcome)

func (f observerFunc) Observe(o metrics.Outcome) { f(o) }

func TestCachedKeysByAbsolutePath(t *testing.T) {
	// "testdata/mini.swf" and its absolute form must share one entry.
	s1, err := Cached(fixture)
	if err != nil {
		t.Fatal(err)
	}
	abs, err := filepath.Abs(fixture)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Cached(abs)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("relative and absolute paths loaded separate Sources")
	}
	if _, err := os.Stat(abs); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadTruncatesBeforeCloning(t *testing.T) {
	src := openFixture(t)
	w := src.Workload(Options{Jobs: 5})
	if len(w.Jobs) != 5 {
		t.Fatalf("got %d jobs, want 5", len(w.Jobs))
	}
	// Equivalent to the old clone-then-truncate order.
	full := src.Workload(Options{})
	full.Truncate(5)
	for i := range w.Jobs {
		if !reflect.DeepEqual(*w.Jobs[i], *full.Jobs[i]) {
			t.Fatalf("job %d differs from clone-then-truncate: %+v vs %+v", i, *w.Jobs[i], *full.Jobs[i])
		}
	}
}
