// Package trace makes real Standard Workload Format logs first-class
// experiment substrates, the counterpart of the statistical models in
// internal/model. The paper's central methodological claim is that
// schedulers must be compared on standard workloads — both models and
// real logs — yet replaying a raw log verbatim answers only one
// question at one recorded load. This package turns a log into a
// workload *source* that can be:
//
//   - cleaned (swf.Clean: summary lines only, sorted, rebased,
//     renumbered) and converted to an operational core.Workload;
//   - rescaled to a target offered load by interarrival scaling, the
//     archive practice the paper codifies (change the arrival rate,
//     never the work);
//   - resampled into per-replication variants, deterministically from a
//     seed: the interarrival gaps are shuffled by a seeded permutation,
//     preserving the gap marginal, the total span, and every per-job
//     attribute, so N replications yield real confidence intervals
//     instead of N identical runs.
//
// Variant 0 is the faithful replay: byte-identical on every call, for
// any seed, which is what keeps single-replication output reproducible.
package trace

import (
	"fmt"
	"math"
	"path/filepath"
	"strings"
	"sync"

	"parsched/internal/core"
	"parsched/internal/stats"
	"parsched/internal/swf"
)

// Source is a cleaned, replay-ready view of one SWF log. It is
// immutable after construction and safe for concurrent use: Workload
// always derives from a private clone of the base workload.
type Source struct {
	// Name identifies the trace in reports (header Computer field, or
	// the file's base name when the header does not state one).
	Name string
	// Path is the file the source was loaded from ("" for in-memory
	// logs).
	Path string
	// Report is what swf.Clean did to the raw log.
	Report swf.CleanReport
	// DroppedNoSubmit counts summary lines without a submit time.
	// swf.Clean sinks them to the back of the log; they cannot be
	// placed on the arrival axis, so replay drops them here.
	DroppedNoSubmit int

	base *core.Workload
}

// Open loads, cleans, and converts the SWF log at path.
func Open(path string) (*Source, error) {
	log, err := swf.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	name := log.Header.Computer
	if name == "" {
		name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	src, err := FromLog(name, log)
	if err != nil {
		return nil, err
	}
	src.Path = path
	return src, nil
}

// FromLog builds a source from an already-parsed log (stdin pipes,
// tests, in-memory conversion). The input log is not modified.
func FromLog(name string, log *swf.Log) (*Source, error) {
	if name == "" {
		name = "trace"
	}
	clean, rep := swf.Clean(log)
	src := &Source{Name: name, Report: rep}

	// Clean keeps unknown-submit summary lines (sunk to the back);
	// replay cannot place them, so drop them before conversion.
	records := make([]swf.Record, 0, len(clean.Records))
	for _, r := range clean.Records {
		if r.Submit < 0 {
			src.DroppedNoSubmit++
			continue
		}
		records = append(records, r)
	}
	clean.Records = records

	w, err := core.FromSWF(clean)
	if err != nil {
		return nil, fmt.Errorf("trace %s: %w", name, err)
	}
	if len(w.Jobs) == 0 {
		return nil, fmt.Errorf("trace %s: no replayable jobs after cleaning (%d records in: %d partial-execution, %d no-runtime, %d no-procs, %d no-submit)",
			name, rep.Input, rep.DroppedPartials, rep.DroppedNoRuntime, rep.DroppedNoProcs, src.DroppedNoSubmit)
	}
	w.Name = name
	// Logs without a MaxNodes header (or with jobs larger than the
	// stated machine) still replay: infer the machine from the widest
	// job so the workload validates.
	for _, j := range w.Jobs {
		if j.Size > w.MaxNodes {
			w.MaxNodes = j.Size
		}
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("trace %s: cleaned log not replayable: %w", name, err)
	}
	src.base = w
	return src, nil
}

// Cached returns a process-wide shared Source for path, loading it on
// first use. Experiment batteries call Workload once per (experiment ×
// replication × load) cell; caching keeps the file read and clean pass
// out of that inner loop. The returned Source is shared — treat it as
// read-only (it is, for every method here).
//
// Entries are keyed by absolute path, so "./t.swf" and "t.swf" (or the
// same file reached from different working directories within one
// process) share one entry. The cache grows without bound and is never
// invalidated — it assumes a typical batch process replaying a fixed
// set of logs that do not change underneath it. Long-lived processes
// cycling through many distinct or mutating files should call Open
// directly and manage their own lifetimes.
func Cached(path string) (*Source, error) {
	key := path
	if abs, err := filepath.Abs(path); err == nil {
		key = abs
	}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if s, ok := cache[key]; ok {
		return s, nil
	}
	s, err := Open(path)
	if err != nil {
		return nil, err
	}
	cache[key] = s
	return s, nil
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*Source{}
)

// MaxNodes is the machine size the trace targets.
func (s *Source) MaxNodes() int { return s.base.MaxNodes }

// JobCount is the number of replayable jobs in the cleaned trace.
func (s *Source) JobCount() int { return len(s.base.Jobs) }

// OfferedLoad is the offered load of the trace as recorded.
func (s *Source) OfferedLoad() float64 { return s.base.OfferedLoad() }

// Options select the derived workload Workload returns.
type Options struct {
	// Load is the target offered load the trace is rescaled to by
	// interarrival scaling (runtimes and sizes untouched). 0 replays
	// the load as recorded.
	Load float64
	// Jobs truncates the trace to its first Jobs jobs before rescaling
	// (0 = all). Truncation precedes rescaling so the load target holds
	// over the replayed prefix, not the whole log.
	Jobs int
	// Variant derives a replication variant: 0 is the faithful replay;
	// any other value shuffles the interarrival gaps with a permutation
	// drawn deterministically from (Seed, Variant).
	Variant int
	// Seed seeds the resampling permutation. Ignored when Variant is 0.
	Seed int64
}

// Workload derives a simulation-ready workload from the trace. The
// result is private to the caller: mutating it never affects the
// source or other derived workloads. Same options ⇒ byte-identical
// workload; different Variant (or Seed, for Variant != 0) ⇒ a
// different, equally-plausible arrival pattern over the same jobs.
func (s *Source) Workload(opts Options) *core.Workload {
	// Truncate before cloning: a 10-job prefix of a million-job trace
	// should copy 10 jobs, not a million.
	n := len(s.base.Jobs)
	if opts.Jobs > 0 && opts.Jobs < n {
		n = opts.Jobs
	}
	w := s.base.ClonePrefix(n)
	if opts.Variant != 0 {
		resampleGaps(w, opts.Seed, opts.Variant)
	}
	if opts.Load > 0 {
		// A single interarrival scaling undershoots the target: the
		// span includes the runtime tail after the last submittal,
		// which does not compress. Iterate the calibration to a fixed
		// point (the same reason internal/model calibrates against a
		// pre-sampled mean area rather than trusting one division).
		// The fixed point may sit below an overload target — offered
		// load is bounded by area/(tail*nodes) however tightly the
		// gaps compress — so callers that label results by requested
		// load should compare against OfferedLoad (the experiment
		// tables note the shortfall).
		for iter := 0; iter < 8; iter++ {
			base := w.OfferedLoad()
			if base <= 0 {
				break
			}
			ratio := opts.Load / base
			if math.Abs(ratio-1) < 0.005 {
				break
			}
			w.ScaleLoad(ratio)
		}
	}
	return w
}

// resampleGaps applies shuffled-interarrival resampling: the n-1 gaps
// between consecutive submittals are permuted by a seeded shuffle and
// the submit times rebuilt cumulatively from the first submittal. Job
// order, identities, sizes, runtimes, estimates, and feedback links are
// untouched; submit times stay non-decreasing because gaps are
// non-negative, so the workload remains valid.
func resampleGaps(w *core.Workload, seed int64, variant int) {
	n := len(w.Jobs)
	if n < 3 {
		return
	}
	// Mix the variant into the seed with a splitmix64-style odd
	// constant so (seed, 1) and (seed+1, 0)-like combinations cannot
	// collide into the same stream.
	rng := stats.NewRNG(seed ^ (int64(variant) * -0x61c8864680b583eb))
	gaps := make([]int64, n-1)
	for i := 1; i < n; i++ {
		gaps[i-1] = w.Jobs[i].Submit - w.Jobs[i-1].Submit
	}
	perm := rng.Perm(len(gaps))
	t := w.Jobs[0].Submit
	for i := 1; i < n; i++ {
		t += gaps[perm[i-1]]
		w.Jobs[i].Submit = t
	}
}

// CleanSummary renders what loading did to the raw log, for CLIs that
// must surface trace mutilation instead of silently discarding the
// clean report.
func (s *Source) CleanSummary() string {
	r := s.Report
	return fmt.Sprintf("%d records in, %d replayable: dropped %d partial-execution, %d no-runtime, %d no-procs, %d no-submit; clamped %d CPU fields; renumbered %d job IDs; shifted submittals by %ds; resorted=%v",
		r.Input, r.Output-s.DroppedNoSubmit, r.DroppedPartials, r.DroppedNoRuntime,
		r.DroppedNoProcs, s.DroppedNoSubmit, r.ClampedCPU, r.Renumbered,
		r.ShiftedBy, r.ResortedRecords)
}
