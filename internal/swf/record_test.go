package swf

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseRecordBasic(t *testing.T) {
	line := "1 0 10 3600 64 3500 2048 64 7200 4096 1 3 2 5 1 1 -1 -1"
	r, err := ParseRecord(line)
	if err != nil {
		t.Fatal(err)
	}
	want := Record{
		JobID: 1, Submit: 0, Wait: 10, RunTime: 3600, Procs: 64,
		AvgCPU: 3500, UsedMem: 2048, ReqProcs: 64, ReqTime: 7200,
		ReqMem: 4096, Status: StatusCompleted, User: 3, Group: 2,
		App: 5, Queue: 1, Partition: 1, PrecedingJob: -1, ThinkTime: -1,
	}
	if r != want {
		t.Fatalf("parsed %+v, want %+v", r, want)
	}
}

func TestParseRecordFieldCount(t *testing.T) {
	if _, err := ParseRecord("1 2 3"); err == nil {
		t.Fatal("expected error for short line")
	}
	if _, err := ParseRecord(strings.Repeat("1 ", 19)); err == nil {
		t.Fatal("expected error for long line")
	}
}

func TestParseRecordNonInteger(t *testing.T) {
	line := "1 0 10 3600 64 3500 2048 64 7200 4096 done 3 2 5 1 1 -1 -1"
	if _, err := ParseRecord(line); err == nil {
		t.Fatal("expected error for non-integer field")
	}
}

func TestParseRecordTabsAndSpaces(t *testing.T) {
	line := "1\t0  10\t3600 64 3500 2048 64 7200 4096 1 3 2 5 1 1 -1 -1"
	if _, err := ParseRecord(line); err != nil {
		t.Fatalf("mixed whitespace should parse: %v", err)
	}
}

// genRecord builds a random but syntactically plausible record.
func genRecord(rng *rand.Rand, id int64) Record {
	maybe := func(v int64) int64 {
		if rng.Intn(5) == 0 {
			return Missing
		}
		return v
	}
	return Record{
		JobID:        id,
		Submit:       rng.Int63n(1 << 30),
		Wait:         maybe(rng.Int63n(100000)),
		RunTime:      maybe(rng.Int63n(1 << 20)),
		Procs:        maybe(1 + rng.Int63n(512)),
		AvgCPU:       maybe(rng.Int63n(1 << 20)),
		UsedMem:      maybe(rng.Int63n(1 << 22)),
		ReqProcs:     maybe(1 + rng.Int63n(512)),
		ReqTime:      maybe(rng.Int63n(1 << 20)),
		ReqMem:       maybe(rng.Int63n(1 << 22)),
		Status:       Status(rng.Int63n(2)),
		User:         1 + rng.Int63n(100),
		Group:        1 + rng.Int63n(10),
		App:          1 + rng.Int63n(50),
		Queue:        rng.Int63n(5),
		Partition:    1 + rng.Int63n(4),
		PrecedingJob: Missing,
		ThinkTime:    Missing,
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(_ uint8) bool {
		rec := genRecord(rng, 1+rng.Int63n(1e6))
		parsed, err := ParseRecord(rec.String())
		if err != nil {
			return false
		}
		return parsed == rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStatusPredicates(t *testing.T) {
	for _, s := range []Status{StatusUnknown, StatusKilled, StatusCompleted} {
		if !s.IsSummary() {
			t.Errorf("%v should be a summary status", s)
		}
		if !s.Valid() {
			t.Errorf("%v should be valid", s)
		}
	}
	for _, s := range []Status{StatusPartial, StatusPartialLastOK, StatusPartialLastKilled} {
		if s.IsSummary() {
			t.Errorf("%v should not be a summary status", s)
		}
	}
	if Status(9).Valid() {
		t.Error("status 9 should be invalid")
	}
	if Status(-2).Valid() {
		t.Error("status -2 should be invalid")
	}
}

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		StatusUnknown: "unknown", StatusKilled: "killed",
		StatusCompleted: "completed", StatusPartial: "partial",
		Status(42): "Status(42)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Status(%d).String() = %q, want %q", int64(s), got, want)
		}
	}
}

func TestRecordTimes(t *testing.T) {
	r := Record{Submit: 100, Wait: 20, RunTime: 300}
	if r.Start() != 120 {
		t.Errorf("Start = %d, want 120", r.Start())
	}
	if r.End() != 420 {
		t.Errorf("End = %d, want 420", r.End())
	}
	r.Wait = Missing
	if r.Start() != Missing || r.End() != Missing {
		t.Error("unknown wait should make start/end missing")
	}
}

func TestInteractiveConvention(t *testing.T) {
	if !(Record{Queue: 0}).Interactive() {
		t.Error("queue 0 should be interactive")
	}
	if (Record{Queue: 3}).Interactive() {
		t.Error("queue 3 should not be interactive")
	}
}

func TestFieldOrderMatchesStandard(t *testing.T) {
	// The serialization order is load-bearing: readers of the archive
	// depend on it. Lock it down field by field.
	r := Record{
		JobID: 1, Submit: 2, Wait: 3, RunTime: 4, Procs: 5, AvgCPU: 6,
		UsedMem: 7, ReqProcs: 8, ReqTime: 9, ReqMem: 10, Status: 1,
		User: 12, Group: 13, App: 14, Queue: 15, Partition: 16,
		PrecedingJob: 17, ThinkTime: 18,
	}
	want := "1 2 3 4 5 6 7 8 9 10 1 12 13 14 15 16 17 18"
	if got := r.String(); got != want {
		t.Fatalf("serialized %q, want %q", got, want)
	}
}

func TestSetFieldCoversAllFields(t *testing.T) {
	// Every field index must round-trip through setField/fields.
	var r Record
	for i := 0; i < NumFields; i++ {
		r.setField(i, int64(i+100))
	}
	got := r.fields()
	for i, v := range got {
		if v != int64(i+100) {
			t.Fatalf("field %d = %d, want %d", i, v, i+100)
		}
	}
	if reflect.DeepEqual(r, Record{}) {
		t.Fatal("record unchanged")
	}
}
