package swf

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

const miniFixture = "../workload/trace/testdata/mini.swf"

// renderLog round-trips a log through the textual format so the
// streaming scanners read exactly what the materialized reader reads.
func renderLog(t *testing.T, log *Log) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, log); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

func readFixture(t *testing.T) *Log {
	t.Helper()
	log, err := ReadFile(miniFixture)
	if err != nil {
		t.Fatalf("ReadFile(%s): %v", miniFixture, err)
	}
	return log
}

func TestScannerMatchesRead(t *testing.T) {
	raw, err := os.ReadFile(miniFixture)
	if err != nil {
		t.Fatal(err)
	}
	log, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScanner(bytes.NewReader(raw))
	var got []Record
	for sc.Scan() {
		got = append(got, sc.Record())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("Scanner: %v", err)
	}
	if len(got) != len(log.Records) {
		t.Fatalf("Scanner yielded %d records, Read %d", len(got), len(log.Records))
	}
	for i := range got {
		if got[i] != log.Records[i] {
			t.Fatalf("record %d differs:\nscan %+v\nread %+v", i, got[i], log.Records[i])
		}
	}
	if sc.Header().Computer != log.Header.Computer || sc.Header().MaxNodes != log.Header.MaxNodes {
		t.Fatalf("header differs: %+v vs %+v", sc.Header(), log.Header)
	}
}

// scanOf runs ScanStats over a rendered log.
func scanOf(t *testing.T, log *Log) *StreamStats {
	t.Helper()
	st, err := ScanStats(bytes.NewReader(renderLog(t, log)))
	if err != nil {
		t.Fatalf("ScanStats: %v", err)
	}
	return st
}

func TestScanStatsRejectsUnsortedFixture(t *testing.T) {
	st := scanOf(t, readFixture(t))
	if st.Streamable {
		t.Fatal("mini.swf is unsorted; ScanStats must mark it non-streamable")
	}
	// The per-record counters never depend on order; they must agree
	// with Clean even on the fallback verdict.
	_, rep := Clean(readFixture(t))
	if st.Report.Input != rep.Input ||
		st.Report.DroppedPartials != rep.DroppedPartials ||
		st.Report.DroppedNoRuntime != rep.DroppedNoRuntime ||
		st.Report.DroppedNoProcs != rep.DroppedNoProcs ||
		st.Report.ClampedCPU != rep.ClampedCPU ||
		st.Report.Output != rep.Output {
		t.Fatalf("per-record counters diverge:\nscan  %+v\nclean %+v", st.Report, rep)
	}
	if !st.Report.ResortedRecords {
		t.Fatal("ResortedRecords must be set for an unsorted log")
	}
}

func TestScanStatsRejectsFeedbackLogs(t *testing.T) {
	log := &Log{Records: []Record{
		{JobID: 1, Submit: 10, RunTime: 5, Procs: 2, AvgCPU: -1, Status: StatusCompleted, ThinkTime: -1, PrecedingJob: -1},
		{JobID: 2, Submit: 20, RunTime: 5, Procs: 2, AvgCPU: -1, Status: StatusCompleted, PrecedingJob: 1, ThinkTime: 3},
	}}
	st := scanOf(t, log)
	if !st.HasFeedback {
		t.Fatal("HasFeedback not detected")
	}
	if st.Streamable {
		t.Fatal("feedback references need the full ID map; must not be streamable")
	}
}

// cleanEquiv asserts ScanStats reproduces Clean's report on a
// streamable log and CleanStream reproduces its replayable records.
func cleanEquiv(t *testing.T, log *Log) {
	t.Helper()
	raw := renderLog(t, log)
	clean, rep := Clean(log)
	st, err := ScanStats(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ScanStats: %v", err)
	}
	if !st.Streamable {
		t.Fatalf("log should be streamable; stats %+v", st)
	}
	if st.Report != rep {
		t.Fatalf("CleanReport diverges:\nscan  %+v\nclean %+v", st.Report, rep)
	}

	// The materialized pipeline drops unknown-submit records after the
	// clean (they sink to the back); the stream never emits them.
	want := make([]Record, 0, len(clean.Records))
	for _, r := range clean.Records {
		if r.Submit >= 0 {
			want = append(want, r)
		}
	}
	if st.Jobs != len(want) {
		t.Fatalf("Jobs = %d, want %d", st.Jobs, len(want))
	}

	cs := NewCleanStream(bytes.NewReader(raw), st)
	var got []Record
	for cs.Scan() {
		got = append(got, cs.Record())
	}
	if err := cs.Err(); err != nil {
		t.Fatalf("CleanStream: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("CleanStream yielded %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d differs:\nstream %+v\nclean  %+v", i, got[i], want[i])
		}
	}
}

func TestStreamingCleanMatchesCleanOnCleanedFixture(t *testing.T) {
	// Clean's own output is sorted with unknown-submit records sunk to
	// the back — exactly the streamable shape — and it still contains
	// every anomaly class the per-record rules see on disk once
	// (epoch-shifted submits already rebased, so a second clean is a
	// near-identity pass).
	clean, _ := Clean(readFixture(t))
	cleanEquiv(t, clean)
}

func TestStreamingCleanMatchesCleanOnAdversarialLogs(t *testing.T) {
	rec := func(id, submit, runtime, procs int64) Record {
		return Record{JobID: id, Submit: submit, RunTime: runtime, Procs: procs,
			AvgCPU: -1, Status: StatusCompleted, PrecedingJob: -1, ThinkTime: -1}
	}
	cases := map[string]*Log{
		"epoch shift + sparse ids": {Records: []Record{
			rec(3, 915000000, 100, 4),
			rec(7, 915000050, 200, 8),
			rec(9, 915000050, 50, 1),
		}},
		"unknown submit in the middle": {Records: []Record{
			rec(1, 100, 10, 2),
			rec(2, -1, 10, 2), // sinks behind everything; replay drops it
			rec(3, 200, 10, 2),
			rec(4, 300, 10, 2),
		}},
		"partials and repairs interleaved": {Records: []Record{
			rec(1, 0, 10, 2),
			{JobID: 2, Submit: 5, RunTime: 10, Procs: 2, AvgCPU: -1, Status: StatusPartial, PrecedingJob: -1, ThinkTime: -1},
			{JobID: 2, Submit: 5, RunTime: 20, Procs: -1, ReqProcs: 6, AvgCPU: 999, Status: StatusKilled, PrecedingJob: -1, ThinkTime: -1},
			{JobID: 3, Submit: 9, RunTime: -1, Procs: 2, AvgCPU: -1, Status: StatusCompleted, PrecedingJob: -1, ThinkTime: -1},
			rec(4, 12, 10, 64), // oversize vs any header claim; survives cleaning
		}},
	}
	for name, log := range cases {
		t.Run(name, func(t *testing.T) { cleanEquiv(t, log) })
	}
}

func TestCleanStreamStopsOnParseError(t *testing.T) {
	raw := "1 0 -1 10 2 -1 -1 2 900 -1 1 1 1 1 1 1 -1 -1\nnot a record\n"
	st, err := ScanStats(strings.NewReader(raw))
	if err == nil {
		t.Fatalf("ScanStats accepted a malformed line: %+v", st)
	}
}
