package swf

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Version is the format version implemented by this package.
const Version = 2

// TimeLayout is the human-readable timestamp layout mandated by the
// standard for StartTime/EndTime header comments:
// "Tuesday, 1 Dec 1998, 22:00:00".
const TimeLayout = "Monday, 2 Jan 2006, 15:04:05"

// ReqTimeKind states what field 9 (Requested Time) means for a given
// log; the standard requires the meaning to be declared in a header
// comment.
type ReqTimeKind int

const (
	// ReqTimeWallclock means field 9 is a wall-clock runtime estimate.
	ReqTimeWallclock ReqTimeKind = iota
	// ReqTimeAvgCPU means field 9 is average CPU time per processor.
	ReqTimeAvgCPU
)

func (k ReqTimeKind) String() string {
	if k == ReqTimeAvgCPU {
		return "average CPU time per processor"
	}
	return "wallclock runtime"
}

// Header holds the fixed-format header comments of a standard workload
// file. Zero values / empty strings mean "not stated"; MaxNodes etc. use
// 0 as "not stated" because the standard requires positive values.
type Header struct {
	Computer     string    // brand and model of the computer
	Installation string    // location of installation and machine name
	Acknowledge  string    // person(s) to acknowledge
	Information  string    // web site or email with more information
	Conversion   string    // who converted the log to the standard format
	Version      int       // format version (2 for this package)
	StartTime    time.Time // log start, human-readable in the file
	EndTime      time.Time // log end
	MaxNodes     int64     // number of nodes in the computer
	MaxRuntime   int64     // maximum runtime allowed by the system, seconds
	MaxMemory    int64     // maximum memory allowed, KB
	AllowOveruse bool      // may a job use more than it requested?
	hasOveruse   bool      // was AllowOveruse stated?
	ReqTimeKind  ReqTimeKind
	Queues       string   // verbal description of the queues
	Partitions   string   // verbal description of the partitions
	Notes        []string // free-form notes, one per Note: line

	// Extra preserves non-standard comment lines (without the leading
	// semicolon) so that converting a file is lossless even when the
	// source contains commentary. They are re-emitted as plain comments.
	Extra []string
}

// HasOveruse reports whether the AllowOveruse header was present.
func (h *Header) HasOveruse() bool { return h.hasOveruse }

// SetAllowOveruse records an explicit AllowOveruse value.
func (h *Header) SetAllowOveruse(v bool) {
	h.AllowOveruse = v
	h.hasOveruse = true
}

// parseHeaderLine interprets one comment line (with the leading ';'
// stripped). It returns false if the line is not a recognized fixed-
// format header comment, in which case the caller records it as Extra.
func (h *Header) parseHeaderLine(line string) bool {
	colon := strings.Index(line, ":")
	if colon < 0 {
		return false
	}
	label := strings.TrimSpace(line[:colon])
	value := strings.TrimSpace(line[colon+1:])
	switch label {
	case "Computer":
		h.Computer = value
	case "Installation":
		h.Installation = value
	case "Acknowledge":
		h.Acknowledge = value
	case "Information":
		h.Information = value
	case "Conversion":
		h.Conversion = value
	case "Version":
		v, err := strconv.Atoi(value)
		if err != nil {
			return false
		}
		h.Version = v
	case "StartTime":
		t, err := time.Parse(TimeLayout, value)
		if err != nil {
			return false
		}
		h.StartTime = t
	case "EndTime":
		t, err := time.Parse(TimeLayout, value)
		if err != nil {
			return false
		}
		h.EndTime = t
	case "MaxNodes":
		// Partition sizes may follow in parentheses; ignore them here.
		numeric := value
		if i := strings.Index(value, "("); i >= 0 {
			numeric = strings.TrimSpace(value[:i])
		}
		v, err := strconv.ParseInt(numeric, 10, 64)
		if err != nil {
			return false
		}
		h.MaxNodes = v
	case "MaxRuntime":
		v, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return false
		}
		h.MaxRuntime = v
	case "MaxMemory":
		v, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return false
		}
		h.MaxMemory = v
	case "AllowOveruse":
		switch strings.ToLower(value) {
		case "yes", "true":
			h.SetAllowOveruse(true)
		case "no", "false":
			h.SetAllowOveruse(false)
		default:
			return false
		}
	case "ReqTime":
		// Declares the meaning of field 9, per the standard's requirement
		// that the exact meaning be determined by a header comment.
		if strings.Contains(strings.ToLower(value), "cpu") {
			h.ReqTimeKind = ReqTimeAvgCPU
		} else {
			h.ReqTimeKind = ReqTimeWallclock
		}
	case "Queues":
		h.Queues = value
	case "Partitions":
		h.Partitions = value
	case "Note":
		h.Notes = append(h.Notes, value)
	default:
		return false
	}
	return true
}

// writeTo emits the header comments in canonical order.
func (h *Header) writeTo(b *strings.Builder) {
	emit := func(label, value string) {
		if value != "" {
			fmt.Fprintf(b, ";%s: %s\n", label, value)
		}
	}
	emit("Computer", h.Computer)
	emit("Installation", h.Installation)
	emit("Acknowledge", h.Acknowledge)
	emit("Information", h.Information)
	emit("Conversion", h.Conversion)
	v := h.Version
	if v == 0 {
		v = Version
	}
	fmt.Fprintf(b, ";Version: %d\n", v)
	if !h.StartTime.IsZero() {
		emit("StartTime", h.StartTime.Format(TimeLayout))
	}
	if !h.EndTime.IsZero() {
		emit("EndTime", h.EndTime.Format(TimeLayout))
	}
	if h.MaxNodes > 0 {
		fmt.Fprintf(b, ";MaxNodes: %d\n", h.MaxNodes)
	}
	if h.MaxRuntime > 0 {
		fmt.Fprintf(b, ";MaxRuntime: %d\n", h.MaxRuntime)
	}
	if h.MaxMemory > 0 {
		fmt.Fprintf(b, ";MaxMemory: %d\n", h.MaxMemory)
	}
	if h.hasOveruse {
		if h.AllowOveruse {
			b.WriteString(";AllowOveruse: Yes\n")
		} else {
			b.WriteString(";AllowOveruse: No\n")
		}
	}
	fmt.Fprintf(b, ";ReqTime: %s\n", h.ReqTimeKind)
	emit("Queues", h.Queues)
	emit("Partitions", h.Partitions)
	for _, n := range h.Notes {
		emit("Note", n)
	}
	for _, e := range h.Extra {
		fmt.Fprintf(b, ";%s\n", e)
	}
}
