package swf

import (
	"strings"
	"testing"
)

// cleanFixture returns a log that passes validation.
func cleanFixture() *Log {
	h := Header{Version: 2, MaxNodes: 128, MaxRuntime: 100000, MaxMemory: 1 << 20}
	h.SetAllowOveruse(false)
	return &Log{
		Header: h,
		Records: []Record{
			{JobID: 1, Submit: 0, Wait: 5, RunTime: 100, Procs: 8, AvgCPU: 90,
				UsedMem: 512, ReqProcs: 8, ReqTime: 200, ReqMem: 1024,
				Status: StatusCompleted, User: 1, Group: 1, App: 1, Queue: 1,
				Partition: 1, PrecedingJob: Missing, ThinkTime: Missing},
			{JobID: 2, Submit: 50, Wait: 0, RunTime: 30, Procs: 4, AvgCPU: 20,
				UsedMem: 128, ReqProcs: 4, ReqTime: 60, ReqMem: 256,
				Status: StatusKilled, User: 2, Group: 1, App: 2, Queue: 0,
				Partition: 1, PrecedingJob: Missing, ThinkTime: Missing},
			{JobID: 3, Submit: 200, Wait: 10, RunTime: 500, Procs: 64, AvgCPU: 450,
				UsedMem: 2048, ReqProcs: 64, ReqTime: 1000, ReqMem: 4096,
				Status: StatusCompleted, User: 1, Group: 1, App: 1, Queue: 2,
				Partition: 1, PrecedingJob: 1, ThinkTime: 95},
		},
	}
}

func TestValidateCleanLog(t *testing.T) {
	vs := Validate(cleanFixture())
	if len(vs) != 0 {
		t.Fatalf("clean log should have no findings, got %v", vs)
	}
	if !Valid(cleanFixture()) {
		t.Fatal("Valid() should be true")
	}
}

// expectRule asserts that validating log yields a finding with the rule.
func expectRule(t *testing.T, log *Log, rule string, sev Severity) {
	t.Helper()
	for _, v := range Validate(log) {
		if v.Rule == rule && v.Severity == sev {
			return
		}
	}
	t.Fatalf("expected %v finding %q, got %v", sev, rule, Validate(log))
}

func TestValidateSubmitOrder(t *testing.T) {
	log := cleanFixture()
	log.Records[2].Submit = 10 // before record 2's submit of 50
	expectRule(t, log, "submit-order", Error)
}

func TestValidateNegativeField(t *testing.T) {
	log := cleanFixture()
	log.Records[0].UsedMem = -5
	expectRule(t, log, "negative-field", Error)
}

func TestValidateStatusRange(t *testing.T) {
	log := cleanFixture()
	log.Records[0].Status = 7
	expectRule(t, log, "status-range", Error)
}

func TestValidateJobIDSequence(t *testing.T) {
	log := cleanFixture()
	log.Records[1].JobID = 9
	expectRule(t, log, "jobid-sequential", Error)
}

func TestValidateProcsExceedMaxNodes(t *testing.T) {
	log := cleanFixture()
	log.Records[0].Procs = 500
	expectRule(t, log, "procs-maxnodes", Error)
}

func TestValidateReqProcsExceedMaxNodes(t *testing.T) {
	log := cleanFixture()
	log.Records[0].ReqProcs = 500
	expectRule(t, log, "reqprocs-maxnodes", Error)
}

func TestValidateRuntimeExceedsMax(t *testing.T) {
	log := cleanFixture()
	log.Records[0].RunTime = 200000
	expectRule(t, log, "runtime-max", Error)

	// With overuse allowed it is legal.
	log.Header.SetAllowOveruse(true)
	for _, v := range Validate(log) {
		if v.Rule == "runtime-max" {
			t.Fatal("runtime-max should not fire when overuse is allowed")
		}
	}
}

func TestValidateCPUVsRuntime(t *testing.T) {
	log := cleanFixture()
	log.Records[0].AvgCPU = 5000 // runtime is 100
	expectRule(t, log, "cpu-gt-runtime", Warning)
}

func TestValidateNaturalIDs(t *testing.T) {
	log := cleanFixture()
	log.Records[0].User = 0
	expectRule(t, log, "user-natural", Error)

	log = cleanFixture()
	log.Records[0].Group = 0
	expectRule(t, log, "group-natural", Error)

	log = cleanFixture()
	log.Records[0].App = 0
	expectRule(t, log, "app-natural", Error)

	log = cleanFixture()
	log.Records[0].Partition = 0
	expectRule(t, log, "partition-natural", Error)
}

func TestValidateQueueZeroIsLegal(t *testing.T) {
	// Queue 0 is the interactive convention, not an error.
	log := cleanFixture()
	for _, v := range Validate(log) {
		if strings.Contains(v.Rule, "queue") {
			t.Fatalf("unexpected queue finding: %v", v)
		}
	}
}

func TestValidatePrecedingJob(t *testing.T) {
	log := cleanFixture()
	log.Records[0].PrecedingJob = 5 // points forward
	expectRule(t, log, "preceding-earlier", Error)

	log = cleanFixture()
	log.Records[2].ThinkTime = 5
	log.Records[2].PrecedingJob = Missing
	expectRule(t, log, "thinktime-orphan", Warning)
}

func TestValidateMultiLineJob(t *testing.T) {
	// A checkpointed job: summary + two partials.
	h := Header{Version: 2, MaxNodes: 128}
	log := &Log{
		Header: h,
		Records: []Record{
			{JobID: 1, Submit: 0, Wait: 5, RunTime: 300, Procs: 8, AvgCPU: -1,
				UsedMem: -1, ReqProcs: 8, ReqTime: 500, ReqMem: -1,
				Status: StatusCompleted, User: 1, Group: 1, App: 1, Queue: 1,
				Partition: 1, PrecedingJob: -1, ThinkTime: -1},
			{JobID: 1, Submit: 0, Wait: 5, RunTime: 100, Procs: 8, AvgCPU: -1,
				UsedMem: -1, ReqProcs: 8, ReqTime: 500, ReqMem: -1,
				Status: StatusPartial, User: 1, Group: 1, App: 1, Queue: 1,
				Partition: 1, PrecedingJob: -1, ThinkTime: -1},
			{JobID: 1, Submit: -1, Wait: 50, RunTime: 200, Procs: 8, AvgCPU: -1,
				UsedMem: -1, ReqProcs: 8, ReqTime: 500, ReqMem: -1,
				Status: StatusPartialLastOK, User: 1, Group: 1, App: 1, Queue: 1,
				Partition: 1, PrecedingJob: -1, ThinkTime: -1},
		},
	}
	if vs := Errors(Validate(log)); len(vs) != 0 {
		t.Fatalf("legal multi-line job flagged: %v", vs)
	}

	// Wrong sum of partial runtimes.
	log.Records[0].RunTime = 999
	expectRule(t, log, "partial-runtime-sum", Error)
	log.Records[0].RunTime = 300

	// Wrong last code.
	log.Records[2].Status = StatusPartial
	expectRule(t, log, "partial-last-code", Error)
	log.Records[2].Status = StatusPartialLastOK

	// Summary/last disagreement.
	log.Records[2].Status = StatusPartialLastKilled
	expectRule(t, log, "partial-summary-agree", Error)
	log.Records[2].Status = StatusPartialLastOK

	// Partial without a summary.
	log2 := &Log{Header: h, Records: []Record{
		{JobID: 1, Submit: 0, Wait: 0, RunTime: 10, Procs: 1, AvgCPU: -1,
			UsedMem: -1, ReqProcs: 1, ReqTime: 10, ReqMem: -1,
			Status: StatusPartialLastOK, User: 1, Group: 1, App: 1,
			Queue: 1, Partition: 1, PrecedingJob: -1, ThinkTime: -1},
	}}
	expectRule(t, log2, "partial-no-summary", Error)
}

func TestValidateWarningsDoNotFailValid(t *testing.T) {
	log := cleanFixture()
	log.Records[0].RunTime = 0 // zero-runtime warning only
	if !Valid(log) {
		t.Fatal("warnings must not make the log invalid")
	}
	expectRule(t, log, "zero-runtime", Warning)
}

func TestValidateAllocGtRequest(t *testing.T) {
	log := cleanFixture()
	log.Records[0].Procs = 16
	log.Records[0].ReqProcs = 8
	expectRule(t, log, "alloc-gt-request", Warning)
}

func TestErrorsFilter(t *testing.T) {
	vs := []Violation{{Severity: Warning}, {Severity: Error}, {Severity: Warning}}
	if got := len(Errors(vs)); got != 1 {
		t.Fatalf("Errors filtered %d, want 1", got)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Severity: Error, Line: 3, JobID: 3, Rule: "submit-order", Message: "m"}
	s := v.String()
	if !strings.Contains(s, "submit-order") || !strings.Contains(s, "error") {
		t.Fatalf("violation string %q", s)
	}
}

func TestValidateErrorsSortedFirst(t *testing.T) {
	log := cleanFixture()
	log.Records[0].RunTime = 0 // warning
	log.Records[1].Status = 7  // error
	vs := Validate(log)
	if len(vs) < 2 {
		t.Fatalf("want >= 2 findings, got %v", vs)
	}
	if vs[0].Severity != Error {
		t.Fatal("errors must sort before warnings")
	}
}
