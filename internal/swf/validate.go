package swf

import (
	"fmt"
	"sort"
)

// Severity classifies a validation finding. Errors violate the letter of
// the standard; warnings flag data that is legal but suspicious (the
// kind of local anomaly the paper warns about when replaying raw logs).
type Severity int

const (
	// Warning marks suspicious but legal data.
	Warning Severity = iota
	// Error marks a violation of the standard's consistency rules.
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Violation is one finding of the validator.
type Violation struct {
	Severity Severity
	Line     int    // 1-based record index (not counting comments); 0 = whole file
	JobID    int64  // offending job, 0 if not applicable
	Rule     string // stable rule identifier, e.g. "submit-order"
	Message  string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s [%s] record %d job %d: %s", v.Severity, v.Rule, v.Line, v.JobID, v.Message)
}

// Validate checks the log against the consistency rules of the standard
// and returns all findings, errors first, each group in record order.
// A clean log returns an empty slice.
func Validate(log *Log) []Violation {
	var vs []Violation
	add := func(sev Severity, line int, job int64, rule, format string, args ...interface{}) {
		vs = append(vs, Violation{
			Severity: sev, Line: line, JobID: job, Rule: rule,
			Message: fmt.Sprintf(format, args...),
		})
	}

	h := &log.Header
	if h.Version != 0 && h.Version != Version {
		add(Warning, 0, 0, "version", "file declares version %d; this package implements version %d", h.Version, Version)
	}

	// Per-record field rules.
	var prevSubmit int64
	summaryCount := int64(0)
	summarySeen := map[int64]int{} // job id -> record index of summary line
	partialSeen := map[int64][]int{}
	for i := range log.Records {
		r := &log.Records[i]
		line := i + 1

		// Rule: all values are -1 (missing) or non-negative.
		for fi, val := range r.fields() {
			if val < -1 {
				add(Error, line, r.JobID, "negative-field", "field %d is %d; only -1 and non-negative values are allowed", fi+1, val)
			}
		}

		if !r.Status.Valid() {
			add(Error, line, r.JobID, "status-range", "completion code %d is not one of -1,0,1,2,3,4", int64(r.Status))
		}

		if r.JobID <= 0 {
			add(Error, line, r.JobID, "jobid-positive", "job number must be a counter starting from 1")
		}

		// Rule: sorted by ascending submit time (only lines that carry a
		// submit time participate; continuation lines may omit it).
		if r.Submit >= 0 {
			if r.Submit < prevSubmit {
				add(Error, line, r.JobID, "submit-order", "submit time %d precedes earlier record's %d; lines must be sorted by ascending submittal", r.Submit, prevSubmit)
			} else {
				prevSubmit = r.Submit
			}
		}

		if r.Status.IsSummary() {
			summaryCount++
			if r.JobID != summaryCount {
				add(Error, line, r.JobID, "jobid-sequential", "summary job numbers must be sequential from 1; want %d", summaryCount)
			}
			if prev, dup := summarySeen[r.JobID]; dup {
				add(Error, line, r.JobID, "jobid-duplicate", "job already has a summary line at record %d", prev)
			}
			summarySeen[r.JobID] = line
			// A summary line must carry a submit time.
			if r.Submit < 0 {
				add(Error, line, r.JobID, "summary-submit", "summary line lacks a submit time")
			}
		} else {
			partialSeen[r.JobID] = append(partialSeen[r.JobID], line)
		}

		if r.Procs == 0 {
			add(Error, line, r.JobID, "procs-positive", "allocated processors must be at least 1 when known")
		}
		if h.MaxNodes > 0 && r.Procs > h.MaxNodes {
			add(Error, line, r.JobID, "procs-maxnodes", "allocated processors %d exceed MaxNodes %d", r.Procs, h.MaxNodes)
		}
		if h.MaxNodes > 0 && r.ReqProcs > h.MaxNodes {
			add(Error, line, r.JobID, "reqprocs-maxnodes", "requested processors %d exceed MaxNodes %d", r.ReqProcs, h.MaxNodes)
		}
		if h.MaxRuntime > 0 && r.RunTime > h.MaxRuntime && !(h.hasOveruse && h.AllowOveruse) {
			add(Error, line, r.JobID, "runtime-max", "runtime %d exceeds MaxRuntime %d and overuse is not allowed", r.RunTime, h.MaxRuntime)
		}
		if h.MaxMemory > 0 && r.UsedMem > h.MaxMemory && !(h.hasOveruse && h.AllowOveruse) {
			add(Error, line, r.JobID, "memory-max", "used memory %d exceeds MaxMemory %d and overuse is not allowed", r.UsedMem, h.MaxMemory)
		}

		// Rule: average CPU time per processor cannot exceed wall-clock
		// runtime (it is an average over the allocated processors).
		if r.AvgCPU >= 0 && r.RunTime >= 0 && r.AvgCPU > r.RunTime {
			add(Warning, line, r.JobID, "cpu-gt-runtime", "average CPU time %d exceeds wall-clock runtime %d", r.AvgCPU, r.RunTime)
		}

		// Identity fields are natural numbers (queue may be 0 for
		// interactive jobs by convention).
		if r.User == 0 {
			add(Error, line, r.JobID, "user-natural", "user ID must be between 1 and the number of users")
		}
		if r.Group == 0 {
			add(Error, line, r.JobID, "group-natural", "group ID must be between 1 and the number of groups")
		}
		if r.App == 0 {
			add(Error, line, r.JobID, "app-natural", "executable number must be between 1 and the number of applications")
		}
		if r.Partition == 0 {
			add(Error, line, r.JobID, "partition-natural", "partition number must be between 1 and the number of partitions")
		}

		// Feedback fields: the preceding job must be an earlier job, and
		// think time is only meaningful with a preceding job.
		if r.PrecedingJob >= 0 {
			if r.PrecedingJob == 0 || r.PrecedingJob >= r.JobID {
				add(Error, line, r.JobID, "preceding-earlier", "preceding job %d must be an earlier job number", r.PrecedingJob)
			}
		}
		if r.ThinkTime >= 0 && r.PrecedingJob < 0 {
			add(Warning, line, r.JobID, "thinktime-orphan", "think time %d given without a preceding job", r.ThinkTime)
		}

		// Suspicious-but-legal conditions.
		if r.RunTime == 0 && r.Status == StatusCompleted {
			add(Warning, line, r.JobID, "zero-runtime", "job completed with zero runtime")
		}
		if r.ReqProcs >= 0 && r.Procs >= 0 && r.Procs > r.ReqProcs && !(h.hasOveruse && h.AllowOveruse) {
			add(Warning, line, r.JobID, "alloc-gt-request", "allocated %d processors but requested only %d", r.Procs, r.ReqProcs)
		}
	}

	// Multi-line (checkpointed) jobs: summary runtime equals the sum of
	// partial runtimes; the last partial carries code 3 or 4, earlier
	// ones code 2; partials must follow a summary with a matching job.
	for jobID, lines := range partialSeen {
		sumLine, ok := summarySeen[jobID]
		if !ok {
			add(Error, lines[0], jobID, "partial-no-summary", "partial-execution lines without a whole-job summary line")
			continue
		}
		var sum int64
		known := true
		for idx, ln := range lines {
			r := &log.Records[ln-1]
			last := idx == len(lines)-1
			if last {
				if r.Status != StatusPartialLastOK && r.Status != StatusPartialLastKilled {
					add(Error, ln, jobID, "partial-last-code", "last partial execution must have code 3 or 4, got %d", int64(r.Status))
				}
			} else if r.Status != StatusPartial {
				add(Error, ln, jobID, "partial-mid-code", "non-final partial execution must have code 2, got %d", int64(r.Status))
			}
			if r.RunTime < 0 {
				known = false
			} else {
				sum += r.RunTime
			}
			if idx == 0 && r.Submit < 0 {
				add(Warning, ln, jobID, "partial-first-submit", "first partial execution lacks a submit time")
			}
			if idx > 0 && r.Submit >= 0 {
				add(Warning, ln, jobID, "partial-later-submit", "later partial executions carry only a wait time since the previous burst")
			}
		}
		summary := &log.Records[sumLine-1]
		if known && summary.RunTime >= 0 && summary.RunTime != sum {
			add(Error, sumLine, jobID, "partial-runtime-sum", "summary runtime %d != sum of partial runtimes %d", summary.RunTime, sum)
		}
		// The summary code must agree with the final partial code.
		last := &log.Records[lines[len(lines)-1]-1]
		if last.Status == StatusPartialLastOK && summary.Status != StatusCompleted {
			add(Error, sumLine, jobID, "partial-summary-agree", "final partial completed but summary code is %d", int64(summary.Status))
		}
		if last.Status == StatusPartialLastKilled && summary.Status != StatusKilled {
			add(Error, sumLine, jobID, "partial-summary-agree", "final partial killed but summary code is %d", int64(summary.Status))
		}
	}

	sort.SliceStable(vs, func(i, j int) bool {
		if vs[i].Severity != vs[j].Severity {
			return vs[i].Severity > vs[j].Severity // errors first
		}
		return vs[i].Line < vs[j].Line
	})
	return vs
}

// Errors filters a finding list down to hard errors.
func Errors(vs []Violation) []Violation {
	var out []Violation
	for _, v := range vs {
		if v.Severity == Error {
			out = append(out, v)
		}
	}
	return out
}

// Valid reports whether the log has no hard errors.
func Valid(log *Log) bool {
	return len(Errors(Validate(log))) == 0
}
