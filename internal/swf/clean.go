package swf

import "sort"

// CleanReport describes what Clean did to a log.
type CleanReport struct {
	Input            int // records in
	Output           int // records out
	DroppedPartials  int // partial-execution lines removed
	DroppedNoRuntime int // summary lines without a usable runtime
	DroppedNoProcs   int // summary lines without a processor count
	ClampedCPU       int // AvgCPU clamped down to RunTime
	Renumbered       int // job IDs rewritten
	ShiftedBy        int64
	ResortedRecords  bool
	RepairedPrec     int // preceding-job references dropped or remapped
}

// cleanOne applies the per-record clean rules in place — the kernel
// shared by Clean and the streaming CleanStream so the two views cannot
// drift apart. It repairs the record (processor-count fallback, CPU
// clamp), tallies what it did into rep, and reports whether the record
// survives.
func cleanOne(r *Record, rep *CleanReport) bool {
	if !r.Status.IsSummary() {
		rep.DroppedPartials++
		return false
	}
	if r.RunTime < 0 {
		rep.DroppedNoRuntime++
		return false
	}
	if r.Procs <= 0 {
		if r.ReqProcs > 0 {
			// Fall back on the request when the allocation was not
			// recorded; this keeps the job replayable.
			r.Procs = r.ReqProcs
		} else {
			rep.DroppedNoProcs++
			return false
		}
	}
	if r.AvgCPU > r.RunTime && r.RunTime >= 0 {
		r.AvgCPU = r.RunTime
		rep.ClampedCPU++
	}
	return true
}

// Clean reduces a log to the canonical workload-study view, mirroring
// the archive practice of shipping ".cln.swf" files next to raw logs:
//
//   - keep only whole-job summary lines (status -1/0/1);
//   - drop jobs with unknown runtime or processor count (they cannot be
//     replayed through a scheduler);
//   - clamp average CPU time to the wall-clock runtime;
//   - re-sort by submit time and shift so the first submittal is 0;
//   - renumber jobs sequentially from 1, remapping preceding-job
//     references and dropping those that point at removed jobs.
//
// The input log is not modified.
func Clean(in *Log) (*Log, CleanReport) {
	var rep CleanReport
	rep.Input = len(in.Records)

	kept := make([]Record, 0, len(in.Records))
	for _, r := range in.Records {
		if !cleanOne(&r, &rep) {
			continue
		}
		kept = append(kept, r)
	}

	// Stable sort by submit time. Records with unknown submit (-1)
	// cannot be placed on the arrival axis, so they sink to the back of
	// the file (not the front, where a plain integer compare would put
	// them); stability keeps ties in file order.
	less := func(i, j int) bool {
		si, sj := kept[i].Submit, kept[j].Submit
		if si < 0 {
			return false // unknown sinks behind everything
		}
		if sj < 0 {
			return true
		}
		return si < sj
	}
	if !sort.SliceIsSorted(kept, less) {
		sort.SliceStable(kept, less)
		rep.ResortedRecords = true
	}

	// Shift so the earliest *known* submittal is zero. Unknown submits
	// stay unknown; they must not anchor the epoch (one -1 line would
	// otherwise leave the whole trace on its original epoch).
	if len(kept) > 0 && kept[0].Submit > 0 {
		rep.ShiftedBy = kept[0].Submit
		for i := range kept {
			if kept[i].Submit >= 0 {
				kept[i].Submit -= rep.ShiftedBy
			}
		}
	}

	// Renumber sequentially, remapping feedback references.
	idMap := make(map[int64]int64, len(kept))
	for i := range kept {
		newID := int64(i + 1)
		if kept[i].JobID != newID {
			rep.Renumbered++
		}
		idMap[kept[i].JobID] = newID
	}
	for i := range kept {
		kept[i].JobID = int64(i + 1)
		if kept[i].PrecedingJob > 0 {
			if mapped, ok := idMap[kept[i].PrecedingJob]; ok && mapped < kept[i].JobID {
				kept[i].PrecedingJob = mapped
			} else {
				kept[i].PrecedingJob = Missing
				kept[i].ThinkTime = Missing
				rep.RepairedPrec++
			}
		}
	}

	out := &Log{Header: in.Header, Records: kept}
	out.Header.Notes = append(append([]string(nil), in.Header.Notes...),
		"Cleaned: summary lines only, sorted, renumbered (parsched swf.Clean)")
	rep.Output = len(kept)
	return out, rep
}
