package swf

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const sampleLog = `;Computer: iPSC/860
;Installation: NASA Ames Research Center
;Acknowledge: Bill Nitzberg
;Information: http://www.cs.huji.ac.il/labs/parallel/workload/
;Conversion: parsched test fixture
;Version: 2
;StartTime: Tuesday, 1 Dec 1998, 22:00:00
;EndTime: Friday, 1 Jan 1999, 22:00:00
;MaxNodes: 128
;MaxRuntime: 86400
;MaxMemory: 32768
;AllowOveruse: No
;ReqTime: wallclock runtime
;Queues: queue 0 is interactive, 1-3 are batch
;Partitions: single partition
;Note: test fixture, not real data
; free-form comment that is not a header
1 0 5 100 8 90 512 8 200 1024 1 1 1 1 1 1 -1 -1
2 30 0 50 16 45 256 16 100 512 1 2 1 2 0 1 -1 -1
3 60 120 400 32 390 -1 32 500 -1 0 1 1 1 2 1 1 10
`

func TestReadSample(t *testing.T) {
	log, err := Read(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Records) != 3 {
		t.Fatalf("got %d records, want 3", len(log.Records))
	}
	h := log.Header
	if h.Computer != "iPSC/860" {
		t.Errorf("Computer = %q", h.Computer)
	}
	if h.MaxNodes != 128 || h.MaxRuntime != 86400 || h.MaxMemory != 32768 {
		t.Errorf("limits wrong: %+v", h)
	}
	if h.Version != 2 {
		t.Errorf("Version = %d", h.Version)
	}
	if h.AllowOveruse || !h.HasOveruse() {
		t.Error("AllowOveruse should be stated and false")
	}
	if h.StartTime.IsZero() || h.StartTime.Weekday() != time.Tuesday {
		t.Errorf("StartTime = %v", h.StartTime)
	}
	if len(h.Notes) != 1 {
		t.Errorf("Notes = %v", h.Notes)
	}
	if len(h.Extra) != 1 || !strings.Contains(h.Extra[0], "free-form") {
		t.Errorf("Extra = %v", h.Extra)
	}
	if log.Records[2].PrecedingJob != 1 || log.Records[2].ThinkTime != 10 {
		t.Errorf("feedback fields wrong: %+v", log.Records[2])
	}
}

func TestReadBadLine(t *testing.T) {
	_, err := Read(strings.NewReader("1 2 3\n"))
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("want line-numbered error, got %v", err)
	}
}

func TestLogRoundTrip(t *testing.T) {
	log1, err := Read(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	text := log1.String()
	log2, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatalf("re-read failed: %v\n%s", err, text)
	}
	if len(log2.Records) != len(log1.Records) {
		t.Fatalf("record count changed: %d -> %d", len(log1.Records), len(log2.Records))
	}
	for i := range log1.Records {
		if log1.Records[i] != log2.Records[i] {
			t.Fatalf("record %d changed: %+v -> %+v", i, log1.Records[i], log2.Records[i])
		}
	}
	if log2.Header.Computer != log1.Header.Computer ||
		log2.Header.MaxNodes != log1.Header.MaxNodes ||
		!log2.Header.StartTime.Equal(log1.Header.StartTime) {
		t.Fatal("header changed across round trip")
	}
}

func TestLogRoundTripLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	log1 := &Log{Header: Header{Computer: "synthetic", Version: 2, MaxNodes: 512}}
	submit := int64(0)
	for i := 1; i <= 2000; i++ {
		r := genRecord(rng, int64(i))
		submit += rng.Int63n(100)
		r.Submit = submit
		log1.Records = append(log1.Records, r)
	}
	log2, err := Read(strings.NewReader(log1.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(log2.Records) != 2000 {
		t.Fatalf("got %d records", len(log2.Records))
	}
	for i := range log1.Records {
		if log1.Records[i] != log2.Records[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.swf")
	log1, _ := Read(strings.NewReader(sampleLog))
	if err := WriteFile(path, log1); err != nil {
		t.Fatal(err)
	}
	log2, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(log2.Records) != len(log1.Records) {
		t.Fatal("file round trip lost records")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile("/nonexistent/file.swf"); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestSummariesAndPartials(t *testing.T) {
	log := &Log{Records: []Record{
		{JobID: 1, Status: StatusCompleted},
		{JobID: 1, Status: StatusPartial},
		{JobID: 1, Status: StatusPartialLastOK},
		{JobID: 2, Status: StatusKilled},
	}}
	if n := len(log.Summaries()); n != 2 {
		t.Errorf("Summaries = %d, want 2", n)
	}
	if n := len(log.Partials()); n != 2 {
		t.Errorf("Partials = %d, want 2", n)
	}
}

func TestMaxJobID(t *testing.T) {
	log := &Log{Records: []Record{{JobID: 5}, {JobID: 3}}}
	if log.MaxJobID() != 5 {
		t.Fatalf("MaxJobID = %d", log.MaxJobID())
	}
	if (&Log{}).MaxJobID() != 0 {
		t.Fatal("empty log MaxJobID should be 0")
	}
}

func TestEmptyLinesSkipped(t *testing.T) {
	log, err := Read(strings.NewReader("\n\n;Version: 2\n\n1 0 0 1 1 -1 -1 1 1 -1 1 1 1 1 1 1 -1 -1\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Records) != 1 {
		t.Fatalf("got %d records, want 1", len(log.Records))
	}
}

func TestHeaderMaxNodesWithPartitionSizes(t *testing.T) {
	log, err := Read(strings.NewReader(";MaxNodes: 430 (416 batch, 14 interactive)\n"))
	if err != nil {
		t.Fatal(err)
	}
	if log.Header.MaxNodes != 430 {
		t.Fatalf("MaxNodes = %d, want 430", log.Header.MaxNodes)
	}
}

func TestHeaderUnparsableBecomesExtra(t *testing.T) {
	log, err := Read(strings.NewReader(";MaxNodes: lots\n;StartTime: yesterday\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Header.Extra) != 2 {
		t.Fatalf("Extra = %v", log.Header.Extra)
	}
}

func TestReqTimeKindHeader(t *testing.T) {
	log, err := Read(strings.NewReader(";ReqTime: average CPU time per processor\n"))
	if err != nil {
		t.Fatal(err)
	}
	if log.Header.ReqTimeKind != ReqTimeAvgCPU {
		t.Fatal("ReqTime kind should be CPU")
	}
}
