package swf

import (
	"testing"
	"testing/quick"
)

func TestCleanDropsPartials(t *testing.T) {
	log := cleanFixture()
	log.Records = append(log.Records, Record{
		JobID: 3, Submit: -1, Wait: 10, RunTime: 100, Procs: 64,
		Status: StatusPartialLastOK, User: 1, Group: 1, App: 1, Queue: 1,
		Partition: 1, PrecedingJob: -1, ThinkTime: -1,
	})
	out, rep := Clean(log)
	if rep.DroppedPartials != 1 {
		t.Fatalf("DroppedPartials = %d", rep.DroppedPartials)
	}
	for _, r := range out.Records {
		if !r.Status.IsSummary() {
			t.Fatal("partial survived cleaning")
		}
	}
}

func TestCleanDropsUnusableJobs(t *testing.T) {
	log := cleanFixture()
	log.Records[0].RunTime = Missing
	out, rep := Clean(log)
	if rep.DroppedNoRuntime != 1 {
		t.Fatalf("DroppedNoRuntime = %d", rep.DroppedNoRuntime)
	}
	if len(out.Records) != 2 {
		t.Fatalf("kept %d records", len(out.Records))
	}
}

func TestCleanFallsBackToReqProcs(t *testing.T) {
	log := cleanFixture()
	log.Records[0].Procs = Missing // ReqProcs is 8
	out, rep := Clean(log)
	if rep.DroppedNoProcs != 0 {
		t.Fatal("job with known request should be kept")
	}
	if out.Records[0].Procs != 8 {
		t.Fatalf("Procs = %d, want fallback 8", out.Records[0].Procs)
	}
}

func TestCleanDropsNoProcsAtAll(t *testing.T) {
	log := cleanFixture()
	log.Records[0].Procs = Missing
	log.Records[0].ReqProcs = Missing
	_, rep := Clean(log)
	if rep.DroppedNoProcs != 1 {
		t.Fatalf("DroppedNoProcs = %d", rep.DroppedNoProcs)
	}
}

func TestCleanClampsCPU(t *testing.T) {
	log := cleanFixture()
	log.Records[0].AvgCPU = 10000 // runtime 100
	out, rep := Clean(log)
	if rep.ClampedCPU != 1 {
		t.Fatalf("ClampedCPU = %d", rep.ClampedCPU)
	}
	if out.Records[0].AvgCPU != out.Records[0].RunTime {
		t.Fatal("CPU not clamped to runtime")
	}
}

func TestCleanResortsAndRebases(t *testing.T) {
	log := cleanFixture()
	// Scramble submit order and offset the base.
	log.Records[0].Submit = 1000
	log.Records[1].Submit = 500
	log.Records[2].Submit = 700
	out, rep := Clean(log)
	if !rep.ResortedRecords {
		t.Fatal("expected resort")
	}
	if out.Records[0].Submit != 0 {
		t.Fatalf("first submit = %d, want 0 after rebase", out.Records[0].Submit)
	}
	prev := int64(-1)
	for _, r := range out.Records {
		if r.Submit < prev {
			t.Fatal("records not sorted after clean")
		}
		prev = r.Submit
	}
	if rep.ShiftedBy != 500 {
		t.Fatalf("ShiftedBy = %d, want 500", rep.ShiftedBy)
	}
}

func TestCleanSinksUnknownSubmits(t *testing.T) {
	// Regression: a record with unknown submit (-1) used to sort to the
	// front (plain integer compare), where the kept[0].Submit > 0 guard
	// then skipped the epoch shift entirely — one unknown-submit line
	// left the whole trace on its original epoch.
	log := cleanFixture()
	// Put the whole fixture on an epoch base and inject one
	// unknown-submit record in the middle of the file.
	for i := range log.Records {
		log.Records[i].Submit += 915148800
	}
	log.Records = append(log.Records, Record{
		JobID: 4, Submit: Missing, Wait: Missing, RunTime: 60, Procs: 2,
		AvgCPU: 50, UsedMem: 64, ReqProcs: 2, ReqTime: 120, ReqMem: 128,
		Status: StatusKilled, User: 3, Group: 1, App: 3, Queue: 1,
		Partition: 1, PrecedingJob: Missing, ThinkTime: Missing,
	})
	log.Records[2], log.Records[3] = log.Records[3], log.Records[2]

	out, rep := Clean(log)
	if rep.ShiftedBy != 915148800 {
		t.Fatalf("ShiftedBy = %d, want 915148800 (epoch of first known submit)", rep.ShiftedBy)
	}
	if out.Records[0].Submit != 0 {
		t.Fatalf("first known submit = %d, want 0 after rebase", out.Records[0].Submit)
	}
	last := out.Records[len(out.Records)-1]
	if last.Submit != Missing {
		t.Fatalf("unknown submit = %d, want sunk to the back and left Missing", last.Submit)
	}
	// Known submits stay sorted ascending ahead of the sunk record.
	prev := int64(0)
	for _, r := range out.Records[:len(out.Records)-1] {
		if r.Submit < prev {
			t.Fatalf("known submits out of order: %d after %d", r.Submit, prev)
		}
		prev = r.Submit
	}
}

func TestCleanAllUnknownSubmits(t *testing.T) {
	log := cleanFixture()
	for i := range log.Records {
		log.Records[i].Submit = Missing
		log.Records[i].PrecedingJob = Missing
		log.Records[i].ThinkTime = Missing
	}
	out, rep := Clean(log)
	if rep.ShiftedBy != 0 {
		t.Fatalf("ShiftedBy = %d, want 0 when no submit is known", rep.ShiftedBy)
	}
	for _, r := range out.Records {
		if r.Submit != Missing {
			t.Fatalf("submit = %d, want Missing preserved", r.Submit)
		}
	}
}

func TestCleanRenumbersAndRemapsFeedback(t *testing.T) {
	log := cleanFixture()
	// Drop job 1 (unknown runtime); job 3 depends on job 1 and must lose
	// its reference; job IDs must be renumbered 1..2.
	log.Records[0].RunTime = Missing
	out, rep := Clean(log)
	if len(out.Records) != 2 {
		t.Fatalf("kept %d", len(out.Records))
	}
	if out.Records[0].JobID != 1 || out.Records[1].JobID != 2 {
		t.Fatalf("renumbering wrong: %d, %d", out.Records[0].JobID, out.Records[1].JobID)
	}
	if out.Records[1].PrecedingJob != Missing {
		t.Fatalf("dangling preceding job kept: %d", out.Records[1].PrecedingJob)
	}
	if rep.RepairedPrec != 1 {
		t.Fatalf("RepairedPrec = %d", rep.RepairedPrec)
	}
}

func TestCleanKeepsValidFeedback(t *testing.T) {
	log := cleanFixture()
	out, _ := Clean(log)
	if out.Records[2].PrecedingJob != 1 {
		t.Fatalf("valid preceding-job link lost: %d", out.Records[2].PrecedingJob)
	}
}

func TestCleanOutputIsValid(t *testing.T) {
	// Property: cleaning any syntactically parseable log yields a log
	// with no hard validation errors.
	f := func(seed int64) bool {
		log := cleanFixture()
		// Inject representative dirt deterministically from the seed.
		switch seed % 5 {
		case 0:
			log.Records[0].RunTime = Missing
		case 1:
			log.Records[1].AvgCPU = 99999
		case 2:
			log.Records[0].Submit = 777
		case 3:
			log.Records[2].PrecedingJob = Missing
		case 4:
			log.Records[1].Procs = Missing
		}
		out, _ := Clean(log)
		return len(Errors(Validate(out))) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCleanDoesNotMutateInput(t *testing.T) {
	log := cleanFixture()
	before := append([]Record(nil), log.Records...)
	log.Records[0].AvgCPU = 10000
	before[0].AvgCPU = 10000
	Clean(log)
	for i := range before {
		if log.Records[i] != before[i] {
			t.Fatalf("Clean mutated input record %d", i)
		}
	}
}

func TestCleanAddsNote(t *testing.T) {
	out, _ := Clean(cleanFixture())
	found := false
	for _, n := range out.Header.Notes {
		if n != "" && len(n) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("clean log should carry a provenance note")
	}
}

func TestCleanEmptyLog(t *testing.T) {
	out, rep := Clean(&Log{})
	if rep.Input != 0 || rep.Output != 0 || len(out.Records) != 0 {
		t.Fatal("cleaning an empty log should be a no-op")
	}
}
