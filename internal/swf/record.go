// Package swf implements version 2 of the Standard Workload Format
// proposed in Chapin et al., "Benchmarks and Standards for the Evaluation
// of Parallel Job Schedulers" (JSSPP/IPPS 1999), the format adopted by
// the Parallel Workloads Archive.
//
// A standard workload file is an ASCII file with one line per job. Each
// line is a list of space-separated integers; missing values are -1 and
// all other values are non-negative. Lines beginning with a semicolon
// are comments; the file starts with fixed-format header comments
// (";Label: Value") describing the workload globally.
//
// The package provides the record and header types, a reader and writer,
// a strict consistency validator ("every datum must abide to strict
// consistency rules"), a cleaner that reduces a raw log to the job-level
// summary view used for workload studies, and a converter from raw
// accounting logs with string identities into the anonymized integer
// form the standard requires.
package swf

import (
	"fmt"
	"strconv"
	"strings"
)

// Status is the completion code of a record (field 11).
type Status int64

// Completion codes defined by the standard. Jobs that were checkpointed
// and swapped out appear as several lines: one whole-job summary line
// with code Killed or Completed, then one line per partial execution
// with code Partial ("to be continued"), the last of which carries
// PartialLastOK or PartialLastKilled. Workload studies must use only
// summary lines; studies of the logged system itself use only partial
// lines.
const (
	StatusUnknown           Status = -1 // meaningless, e.g. for models
	StatusKilled            Status = 0  // job was killed
	StatusCompleted         Status = 1  // job completed normally
	StatusPartial           Status = 2  // partial execution, to be continued
	StatusPartialLastOK     Status = 3  // last partial execution, completed
	StatusPartialLastKilled Status = 4  // last partial execution, killed
)

// Valid reports whether s is one of the defined completion codes.
func (s Status) Valid() bool {
	return s >= StatusUnknown && s <= StatusPartialLastKilled
}

// IsSummary reports whether a record with this status is a whole-job
// summary line (the view used for workload studies).
func (s Status) IsSummary() bool {
	return s == StatusUnknown || s == StatusKilled || s == StatusCompleted
}

func (s Status) String() string {
	switch s {
	case StatusUnknown:
		return "unknown"
	case StatusKilled:
		return "killed"
	case StatusCompleted:
		return "completed"
	case StatusPartial:
		return "partial"
	case StatusPartialLastOK:
		return "partial-last-completed"
	case StatusPartialLastKilled:
		return "partial-last-killed"
	default:
		return fmt.Sprintf("Status(%d)", int64(s))
	}
}

// Missing marks an unknown value in any field.
const Missing int64 = -1

// Record is one line of a standard workload file: the 18 fields of the
// version 2 format, in file order. All times are integer seconds, all
// memory figures are kilobytes per processor.
type Record struct {
	// JobID is field 1, a counter starting from 1. The unique job ID is
	// the line number in the file; partial-execution lines repeat the ID
	// of their job.
	JobID int64
	// Submit is field 2, seconds since the start of the log. The
	// earliest time the log refers to is zero; lines are sorted by
	// ascending submit time.
	Submit int64
	// Wait is field 3, seconds between submittal and start. Only
	// meaningful for real logs, not models.
	Wait int64
	// RunTime is field 4, wall-clock seconds between start and end.
	RunTime int64
	// Procs is field 5, the number of allocated processors.
	Procs int64
	// AvgCPU is field 6, average CPU seconds (user+system) used per
	// allocated processor; may be smaller than RunTime.
	AvgCPU int64
	// UsedMem is field 7, average used memory per processor in KB.
	UsedMem int64
	// ReqProcs is field 8, the requested number of processors.
	ReqProcs int64
	// ReqTime is field 9, the requested runtime (or average CPU time
	// per processor; which one is stated in a header comment).
	ReqTime int64
	// ReqMem is field 10, requested memory per processor in KB.
	ReqMem int64
	// Status is field 11, the completion code.
	Status Status
	// User is field 12, a natural number from 1 to the number of users.
	User int64
	// Group is field 13, a natural number from 1 to the number of groups.
	Group int64
	// App is field 14, the executable (application) number, from 1 to
	// the number of different applications.
	App int64
	// Queue is field 15, from 1 to the number of queues; by convention
	// interactive jobs are queue 0.
	Queue int64
	// Partition is field 16, from 1 to the number of partitions.
	Partition int64
	// PrecedingJob is field 17: the number of a previous job that must
	// terminate before this one can start. Together with ThinkTime it
	// encodes user feedback (Section 2.2 of the paper).
	PrecedingJob int64
	// ThinkTime is field 18: seconds between the termination of the
	// preceding job and the submittal of this one.
	ThinkTime int64
}

// NumFields is the number of data fields per line in version 2.
const NumFields = 18

// fields returns the record as an ordered array, the single source of
// truth for serialization order.
func (r *Record) fields() [NumFields]int64 {
	return [NumFields]int64{
		r.JobID, r.Submit, r.Wait, r.RunTime, r.Procs, r.AvgCPU,
		r.UsedMem, r.ReqProcs, r.ReqTime, r.ReqMem, int64(r.Status),
		r.User, r.Group, r.App, r.Queue, r.Partition,
		r.PrecedingJob, r.ThinkTime,
	}
}

// setField assigns field i (0-based, file order).
func (r *Record) setField(i int, v int64) {
	switch i {
	case 0:
		r.JobID = v
	case 1:
		r.Submit = v
	case 2:
		r.Wait = v
	case 3:
		r.RunTime = v
	case 4:
		r.Procs = v
	case 5:
		r.AvgCPU = v
	case 6:
		r.UsedMem = v
	case 7:
		r.ReqProcs = v
	case 8:
		r.ReqTime = v
	case 9:
		r.ReqMem = v
	case 10:
		r.Status = Status(v)
	case 11:
		r.User = v
	case 12:
		r.Group = v
	case 13:
		r.App = v
	case 14:
		r.Queue = v
	case 15:
		r.Partition = v
	case 16:
		r.PrecedingJob = v
	case 17:
		r.ThinkTime = v
	}
}

// ParseRecord parses a single data line. It requires exactly 18 integer
// fields separated by whitespace.
func ParseRecord(line string) (Record, error) {
	var r Record
	fields := strings.Fields(line)
	if len(fields) != NumFields {
		return r, fmt.Errorf("swf: record has %d fields, want %d", len(fields), NumFields) //schedlint:allow allocfree error path: a malformed record aborts the scan
	}
	for i, f := range fields {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return r, fmt.Errorf("swf: field %d %q: not an integer", i+1, f) //schedlint:allow allocfree error path: a malformed record aborts the scan
		}
		r.setField(i, v)
	}
	return r, nil
}

// String renders the record as a standard data line.
func (r Record) String() string {
	var b strings.Builder
	r.appendTo(&b)
	return b.String()
}

func (r *Record) appendTo(b *strings.Builder) {
	for i, v := range r.fields() {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatInt(v, 10))
	}
}

// End returns the completion time of the record (Submit+Wait+RunTime),
// or Missing if any component is unknown.
func (r Record) End() int64 {
	if r.Submit < 0 || r.Wait < 0 || r.RunTime < 0 {
		return Missing
	}
	return r.Submit + r.Wait + r.RunTime
}

// Start returns the start time (Submit+Wait), or Missing if unknown.
func (r Record) Start() int64 {
	if r.Submit < 0 || r.Wait < 0 {
		return Missing
	}
	return r.Submit + r.Wait
}

// Interactive reports whether the record uses the queue-0 convention for
// interactive jobs.
func (r Record) Interactive() bool { return r.Queue == 0 }
