package swf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// RawJob is one accounting record of a site-local log before conversion
// to the standard format. Identities are strings (user names, group
// names, executable paths, queue and partition names) and times are
// absolute Unix seconds — exactly the information a typical
// supercomputer accounting file holds, in whatever column order.
type RawJob struct {
	ID        string // site job ID; discarded on conversion (not always unique)
	User      string
	Group     string
	App       string
	Queue     string // empty or "interactive" maps to queue 0
	Partition string
	Submit    int64 // Unix seconds
	Start     int64 // Unix seconds; <0 if unknown
	End       int64 // Unix seconds; <0 if unknown
	Procs     int64
	AvgCPU    int64 // seconds per processor; <0 if unknown
	UsedMem   int64 // KB per processor; <0 if unknown
	ReqProcs  int64
	ReqTime   int64
	ReqMem    int64
	Completed bool
}

// Converter builds a standard workload log from raw accounting records.
// It implements the anonymization scheme of the standard: users,
// groups, executables, queues and partitions are replaced by incremental
// numbers in order of first appearance, which "hides administrative
// issues and hides sensitive information".
type Converter struct {
	users      *interner
	groups     *interner
	apps       *interner
	queues     *interner
	partitions *interner
	jobs       []RawJob
}

// NewConverter returns an empty converter.
func NewConverter() *Converter {
	return &Converter{
		users:      newInterner(),
		groups:     newInterner(),
		apps:       newInterner(),
		queues:     newInterner(),
		partitions: newInterner(),
	}
}

// Add records one raw job for later conversion.
func (c *Converter) Add(j RawJob) { c.jobs = append(c.jobs, j) }

// Len returns the number of jobs added so far.
func (c *Converter) Len() int { return len(c.jobs) }

// Convert produces a standard log: jobs sorted by submit time, submit
// times rebased to zero, string identities replaced by incremental
// numbers, and job IDs assigned from 1 by line order (the original site
// IDs are discarded, as the standard requires).
func (c *Converter) Convert(hdr Header) *Log {
	jobs := append([]RawJob(nil), c.jobs...)
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Submit < jobs[j].Submit })

	var base int64
	if len(jobs) > 0 {
		base = jobs[0].Submit
	}

	log := &Log{Header: hdr}
	if log.Header.Version == 0 {
		log.Header.Version = Version
	}
	for i, j := range jobs {
		rec := Record{
			JobID:        int64(i + 1),
			Submit:       j.Submit - base,
			Wait:         Missing,
			RunTime:      Missing,
			Procs:        orMissing(j.Procs),
			AvgCPU:       orMissing(j.AvgCPU),
			UsedMem:      orMissing(j.UsedMem),
			ReqProcs:     orMissing(j.ReqProcs),
			ReqTime:      orMissing(j.ReqTime),
			ReqMem:       orMissing(j.ReqMem),
			Status:       StatusKilled,
			User:         c.users.id(j.User),
			Group:        c.groups.id(j.Group),
			App:          c.apps.id(j.App),
			Queue:        c.queueID(j.Queue),
			Partition:    c.partitions.id(j.Partition),
			PrecedingJob: Missing,
			ThinkTime:    Missing,
		}
		if j.Completed {
			rec.Status = StatusCompleted
		}
		if j.Start >= j.Submit && j.Start >= 0 {
			rec.Wait = j.Start - j.Submit
			if j.End >= j.Start {
				rec.RunTime = j.End - j.Start
			}
		}
		log.Records = append(log.Records, rec)
	}
	return log
}

// queueID maps queue names to numbers, honouring the convention that
// interactive jobs are queue 0.
func (c *Converter) queueID(name string) int64 {
	if name == "" {
		return Missing
	}
	if strings.EqualFold(name, "interactive") {
		return 0
	}
	return c.queues.id(name)
}

// orMissing normalizes "unknown" raw values (anything negative) to -1.
func orMissing(v int64) int64 {
	if v < 0 {
		return Missing
	}
	return v
}

// interner assigns incremental IDs (from 1) to strings in order of
// first appearance. Empty strings map to Missing.
type interner struct {
	ids  map[string]int64
	next int64
}

func newInterner() *interner { return &interner{ids: map[string]int64{}, next: 1} }

func (in *interner) id(s string) int64 {
	if s == "" {
		return Missing
	}
	if id, ok := in.ids[s]; ok {
		return id
	}
	id := in.next
	in.next++
	in.ids[s] = id
	return id
}

// count returns how many distinct strings were interned.
func (in *interner) count() int64 { return in.next - 1 }

// Counts reports the number of distinct users, groups, applications,
// queues, and partitions seen by the converter.
func (c *Converter) Counts() (users, groups, apps, queues, partitions int64) {
	return c.users.count(), c.groups.count(), c.apps.count(),
		c.queues.count(), c.partitions.count()
}

// ParseRawLog reads a site accounting log in the simple colon-separated
// layout used by this repository's synthetic raw logs:
//
//	id:user:group:app:queue:partition:submit:start:end:procs:cpu:mem:reqprocs:reqtime:reqmem:status
//
// with one job per line, '#' comments, and "-" for unknown values.
// status is "ok" for completed jobs, anything else means killed. This is
// a stand-in for the heterogeneous per-site formats the paper complains
// about — the point of the exercise is converting it to the standard.
func ParseRawLog(r io.Reader) ([]RawJob, error) {
	var jobs []RawJob
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ":")
		if len(parts) != 16 {
			return nil, fmt.Errorf("raw log line %d: %d fields, want 16", lineNo, len(parts))
		}
		num := func(idx int) (int64, error) {
			s := strings.TrimSpace(parts[idx])
			if s == "-" || s == "" {
				return -1, nil
			}
			return strconv.ParseInt(s, 10, 64)
		}
		var j RawJob
		j.ID = strings.TrimSpace(parts[0])
		j.User = strings.TrimSpace(parts[1])
		j.Group = strings.TrimSpace(parts[2])
		j.App = strings.TrimSpace(parts[3])
		j.Queue = strings.TrimSpace(parts[4])
		j.Partition = strings.TrimSpace(parts[5])
		var err error
		if j.Submit, err = num(6); err != nil {
			return nil, fmt.Errorf("raw log line %d submit: %v", lineNo, err)
		}
		if j.Start, err = num(7); err != nil {
			return nil, fmt.Errorf("raw log line %d start: %v", lineNo, err)
		}
		if j.End, err = num(8); err != nil {
			return nil, fmt.Errorf("raw log line %d end: %v", lineNo, err)
		}
		if j.Procs, err = num(9); err != nil {
			return nil, fmt.Errorf("raw log line %d procs: %v", lineNo, err)
		}
		if j.AvgCPU, err = num(10); err != nil {
			return nil, fmt.Errorf("raw log line %d cpu: %v", lineNo, err)
		}
		if j.UsedMem, err = num(11); err != nil {
			return nil, fmt.Errorf("raw log line %d mem: %v", lineNo, err)
		}
		if j.ReqProcs, err = num(12); err != nil {
			return nil, fmt.Errorf("raw log line %d reqprocs: %v", lineNo, err)
		}
		if j.ReqTime, err = num(13); err != nil {
			return nil, fmt.Errorf("raw log line %d reqtime: %v", lineNo, err)
		}
		if j.ReqMem, err = num(14); err != nil {
			return nil, fmt.Errorf("raw log line %d reqmem: %v", lineNo, err)
		}
		j.Completed = strings.TrimSpace(parts[15]) == "ok"
		jobs = append(jobs, j)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return jobs, nil
}
