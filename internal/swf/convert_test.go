package swf

import (
	"strings"
	"testing"
)

func sampleRaw() []RawJob {
	return []RawJob{
		{ID: "88.a", User: "alice", Group: "physics", App: "/bin/lsdyna",
			Queue: "batch", Partition: "main", Submit: 1000, Start: 1010,
			End: 1110, Procs: 8, AvgCPU: 95, UsedMem: 512, ReqProcs: 8,
			ReqTime: 200, ReqMem: 1024, Completed: true},
		{ID: "89.a", User: "bob", Group: "chem", App: "gauss",
			Queue: "interactive", Partition: "main", Submit: 900, Start: 905,
			End: 955, Procs: 2, AvgCPU: 40, UsedMem: 128, ReqProcs: 2,
			ReqTime: 100, ReqMem: 256, Completed: false},
		{ID: "90.a", User: "alice", Group: "physics", App: "gauss",
			Queue: "batch", Partition: "aux", Submit: 1200, Start: -1,
			End: -1, Procs: 4, AvgCPU: -1, UsedMem: -1, ReqProcs: 4,
			ReqTime: 300, ReqMem: -1, Completed: false},
	}
}

func TestConvertAnonymizesAndSorts(t *testing.T) {
	c := NewConverter()
	for _, j := range sampleRaw() {
		c.Add(j)
	}
	log := c.Convert(Header{Computer: "TestBox", MaxNodes: 64})

	if len(log.Records) != 3 {
		t.Fatalf("got %d records", len(log.Records))
	}
	// Sorted by submit: bob(900), alice(1000), alice(1200); rebased to 0.
	if log.Records[0].Submit != 0 || log.Records[1].Submit != 100 || log.Records[2].Submit != 300 {
		t.Fatalf("submit times wrong: %d %d %d",
			log.Records[0].Submit, log.Records[1].Submit, log.Records[2].Submit)
	}
	// Job IDs sequential.
	for i, r := range log.Records {
		if r.JobID != int64(i+1) {
			t.Fatalf("job %d has ID %d", i, r.JobID)
		}
	}
	// bob interned as user 1 (first by submit), alice as 2.
	if log.Records[0].User != 1 || log.Records[1].User != 2 || log.Records[2].User != 2 {
		t.Fatalf("user interning wrong: %d %d %d",
			log.Records[0].User, log.Records[1].User, log.Records[2].User)
	}
	// No string leaks anywhere: the log serializes to integers only.
	text := log.String()
	for _, leak := range []string{"alice", "bob", "physics", "gauss", "lsdyna"} {
		if strings.Contains(text, leak) {
			t.Fatalf("sensitive string %q leaked into the standard log", leak)
		}
	}
}

func TestConvertQueueConvention(t *testing.T) {
	c := NewConverter()
	for _, j := range sampleRaw() {
		c.Add(j)
	}
	log := c.Convert(Header{})
	if log.Records[0].Queue != 0 {
		t.Fatalf("interactive queue = %d, want 0", log.Records[0].Queue)
	}
	if log.Records[1].Queue == 0 {
		t.Fatal("batch queue must not be 0")
	}
}

func TestConvertDerivedTimes(t *testing.T) {
	c := NewConverter()
	for _, j := range sampleRaw() {
		c.Add(j)
	}
	log := c.Convert(Header{})
	// bob: wait 5, runtime 50.
	if log.Records[0].Wait != 5 || log.Records[0].RunTime != 50 {
		t.Fatalf("derived times wrong: %+v", log.Records[0])
	}
	// Unknown start/end -> missing wait/runtime.
	if log.Records[2].Wait != Missing || log.Records[2].RunTime != Missing {
		t.Fatalf("unknown start should yield missing: %+v", log.Records[2])
	}
}

func TestConvertStatus(t *testing.T) {
	c := NewConverter()
	for _, j := range sampleRaw() {
		c.Add(j)
	}
	log := c.Convert(Header{})
	if log.Records[1].Status != StatusCompleted {
		t.Fatal("completed job should map to status 1")
	}
	if log.Records[0].Status != StatusKilled {
		t.Fatal("killed job should map to status 0")
	}
}

func TestConvertCounts(t *testing.T) {
	c := NewConverter()
	for _, j := range sampleRaw() {
		c.Add(j)
	}
	c.Convert(Header{})
	users, groups, apps, queues, _ := c.Counts()
	if users != 2 || groups != 2 || apps != 2 {
		t.Fatalf("counts = %d users %d groups %d apps", users, groups, apps)
	}
	if queues != 1 { // "batch" only; "interactive" is the 0 convention
		t.Fatalf("queues = %d, want 1", queues)
	}
}

func TestConvertRoundTripValid(t *testing.T) {
	c := NewConverter()
	for _, j := range sampleRaw() {
		c.Add(j)
	}
	log := c.Convert(Header{Computer: "X", MaxNodes: 64})
	// The raw conversion keeps jobs with unknown runtimes; cleaning must
	// produce a fully valid log.
	clean, _ := Clean(log)
	if vs := Errors(Validate(clean)); len(vs) != 0 {
		t.Fatalf("converted+cleaned log invalid: %v", vs)
	}
}

const rawFixture = `# synthetic accounting log
88.a:alice:physics:lsdyna:batch:main:1000:1010:1110:8:95:512:8:200:1024:ok
89.a:bob:chem:gauss:interactive:main:900:905:955:2:40:128:2:100:256:killed
90.a:alice:physics:gauss:batch:aux:1200:-:-:4:-:-:4:300:-:killed
`

func TestParseRawLog(t *testing.T) {
	jobs, err := ParseRawLog(strings.NewReader(rawFixture))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("got %d jobs", len(jobs))
	}
	if jobs[0].User != "alice" || !jobs[0].Completed {
		t.Fatalf("job 0 wrong: %+v", jobs[0])
	}
	if jobs[2].Start != -1 || jobs[2].AvgCPU != -1 {
		t.Fatalf("missing values wrong: %+v", jobs[2])
	}
}

func TestParseRawLogErrors(t *testing.T) {
	if _, err := ParseRawLog(strings.NewReader("a:b:c\n")); err == nil {
		t.Fatal("expected field-count error")
	}
	bad := "88.a:alice:g:a:q:p:xxx:1010:1110:8:95:512:8:200:1024:ok\n"
	if _, err := ParseRawLog(strings.NewReader(bad)); err == nil {
		t.Fatal("expected integer parse error")
	}
}

func TestConvertEmpty(t *testing.T) {
	log := NewConverter().Convert(Header{})
	if len(log.Records) != 0 {
		t.Fatal("empty converter should yield empty log")
	}
	if log.Header.Version != Version {
		t.Fatal("version should default")
	}
}
