package swf

// Streaming counterpart of Read + Clean: a Scanner that yields records
// one at a time from any io.Reader, a single-pass StreamStats scan that
// decides whether a log can be cleaned on the fly, and a CleanStream
// that emits the replayable records swf.Clean would produce without
// ever materializing the log. Together they are the swf half of the
// O(1)-memory trace replay pipeline (internal/workload/trace,
// internal/sim.RunStream).

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Scanner incrementally parses a standard workload file. Usage mirrors
// bufio.Scanner:
//
//	sc := swf.NewScanner(r)
//	for sc.Scan() {
//		r := sc.Record()
//		...
//	}
//	if err := sc.Err(); err != nil { ... }
//
// Header comments are folded into Header() as they are encountered; the
// standard puts all of them before the first data record, so Header()
// is complete once the first Scan returns (and in any case once Scan
// returns false).
type Scanner struct {
	sc     *bufio.Scanner
	header Header
	rec    Record
	err    error
	lineNo int
}

// NewScanner returns a scanner reading from r.
func NewScanner(r io.Reader) *Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &Scanner{sc: sc}
}

// Scan advances to the next data record, consuming any comment lines on
// the way. It returns false at end of input or on error (check Err).
func (s *Scanner) Scan() bool {
	if s.err != nil {
		return false
	}
	for s.sc.Scan() {
		s.lineNo++
		line := strings.TrimSpace(s.sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			body := strings.TrimPrefix(line, ";")
			if !s.header.parseHeaderLine(body) {
				s.header.Extra = append(s.header.Extra, strings.TrimSpace(body))
			}
			continue
		}
		rec, err := ParseRecord(line)
		if err != nil {
			s.err = fmt.Errorf("line %d: %w", s.lineNo, err) //schedlint:allow allocfree error path: a malformed header aborts the scan
			return false
		}
		s.rec = rec
		return true
	}
	if err := s.sc.Err(); err != nil {
		s.err = fmt.Errorf("swf: read: %w", err) //schedlint:allow allocfree error path: a malformed record aborts the scan
	}
	return false
}

// Record returns the record produced by the last successful Scan.
func (s *Scanner) Record() Record { return s.rec }

// Header returns the header comments parsed so far.
func (s *Scanner) Header() Header { return s.header }

// Err returns the first error encountered.
func (s *Scanner) Err() error { return s.err }

// StreamStats is the outcome of a single statistics pass over a log
// (pass 1 of the streaming clean). It decides streamability and carries
// everything the replay pipeline needs to know up front: the clean
// report Clean would produce, the replayable job count, and the
// aggregate size/area figures that place the log on a machine.
//
// When Streamable is false only Header, HasFeedback, Streamable, and
// the drop counters of Report are meaningful — a non-streamable log
// must go through the materialized swf.Clean path, which computes the
// rest itself.
type StreamStats struct {
	Header Header
	// Report is what swf.Clean would report for this log.
	Report CleanReport
	// DroppedNoSubmit counts kept summary records with unknown submit
	// times: Clean sinks them to the back, replay drops them.
	DroppedNoSubmit int
	// Streamable reports that CleanStream reproduces Clean's output for
	// this log on the fly: the replayable records already appear in
	// submit order and no record carries a preceding-job reference
	// (remapping references needs the full old-to-new ID map, which is
	// exactly the O(jobs) state streaming exists to avoid).
	Streamable bool
	// HasFeedback reports a kept record with a preceding-job reference.
	HasFeedback bool
	// Jobs is the replayable job count (Report.Output minus the
	// unknown-submit records).
	Jobs int
	// MaxJobSize is the widest replayable job (machine-size inference).
	MaxJobSize int64
	// TotalArea is the processor-seconds demanded by replayable jobs.
	TotalArea int64
	// FirstSubmit/LastEnd bound the replayable jobs on the shifted time
	// axis (FirstSubmit is 0 whenever the epoch was rebased).
	FirstSubmit int64
	LastEnd     int64
}

// ScanStats runs the statistics pass over one log. Memory is O(1) plus
// one old job ID per unknown-submit record (needed to reproduce Clean's
// renumbering count; archive-grade logs have none).
func ScanStats(r io.Reader) (*StreamStats, error) {
	st := &StreamStats{}
	sc := NewScanner(r)

	knownsSorted := true // replayable records in submit order
	lessSorted := true   // the full kept sequence in Clean's sort order
	var prevKnown int64 = -1 << 62
	seenUnknown := false
	var minKnown, maxRawEnd int64
	var unknownOldIDs []int64

	for sc.Scan() {
		rec := sc.Record()
		st.Report.Input++
		if !cleanOne(&rec, &st.Report) {
			continue
		}
		st.Report.Output++
		if rec.PrecedingJob > 0 {
			st.HasFeedback = true
		}
		if rec.Submit < 0 {
			st.DroppedNoSubmit++
			unknownOldIDs = append(unknownOldIDs, rec.JobID)
			seenUnknown = true
			continue
		}
		if rec.Submit < prevKnown {
			knownsSorted = false
			lessSorted = false
		}
		if seenUnknown {
			// A known-submit record behind an unknown one: Clean's sort
			// moves it forward, so the file order is not the sorted order.
			lessSorted = false
		}
		prevKnown = rec.Submit
		if st.Jobs == 0 || rec.Submit < minKnown {
			minKnown = rec.Submit
		}
		st.Jobs++
		if int64(st.Jobs) != rec.JobID {
			st.Report.Renumbered++
		}
		if rec.Procs > st.MaxJobSize {
			st.MaxJobSize = rec.Procs
		}
		st.TotalArea += rec.Procs * rec.RunTime
		if end := rec.Submit + rec.RunTime; end > maxRawEnd {
			maxRawEnd = end
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	st.Header = sc.Header()
	st.Report.ResortedRecords = !lessSorted
	if st.Jobs > 0 && minKnown > 0 {
		st.Report.ShiftedBy = minKnown
	}
	st.FirstSubmit = minKnown - st.Report.ShiftedBy
	st.LastEnd = maxRawEnd - st.Report.ShiftedBy
	// Unknown-submit records are renumbered after every known one, in
	// file order (the sort is stable and they all sink together).
	for i, old := range unknownOldIDs {
		if int64(st.Jobs+i+1) != old {
			st.Report.Renumbered++
		}
	}
	st.Streamable = st.Jobs > 0 && knownsSorted && !st.HasFeedback
	return st, nil
}

// CleanStream yields the replayable records of a log exactly as the
// materialized pipeline (Clean, then dropping unknown-submit records)
// would produce them, one record at a time: summary lines only, repair
// and clamp applied, job IDs renumbered from 1 in order, submit times
// rebased by shift. It is only correct for logs ScanStats marked
// Streamable — construct one from the stats of the same log.
type CleanStream struct {
	sc    *Scanner
	shift int64
	next  int64
	rec   Record
	err   error
}

// NewCleanStream returns a cleaning stream over r, rebasing submit
// times by stats.Report.ShiftedBy. The caller must have verified
// stats.Streamable.
func NewCleanStream(r io.Reader, stats *StreamStats) *CleanStream {
	return &CleanStream{sc: NewScanner(r), shift: stats.Report.ShiftedBy}
}

// Scan advances to the next replayable record; false at end or error.
func (c *CleanStream) Scan() bool {
	if c.err != nil {
		return false
	}
	var rep CleanReport // per-record tallies discarded; pass 1 reported them
	for c.sc.Scan() {
		rec := c.sc.Record()
		if !cleanOne(&rec, &rep) || rec.Submit < 0 {
			continue
		}
		c.next++
		rec.JobID = c.next
		rec.Submit -= c.shift
		c.rec = rec
		return true
	}
	c.err = c.sc.Err()
	return false
}

// Record returns the record produced by the last successful Scan.
func (c *CleanStream) Record() Record { return c.rec }

// Err returns the first error encountered.
func (c *CleanStream) Err() error { return c.err }
