package swf

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// Log is a parsed standard workload file: the global header plus all
// data records in file order.
type Log struct {
	Header  Header
	Records []Record
}

// Summaries returns only the whole-job summary records (status -1/0/1),
// the view the standard mandates for workload studies. Partial-execution
// lines (status 2/3/4) are excluded.
func (l *Log) Summaries() []Record {
	out := make([]Record, 0, len(l.Records))
	for _, r := range l.Records {
		if r.Status.IsSummary() {
			out = append(out, r)
		}
	}
	return out
}

// Partials returns only partial-execution records (status 2/3/4), the
// view used for studying the behaviour of the logged system itself.
func (l *Log) Partials() []Record {
	var out []Record
	for _, r := range l.Records {
		if !r.Status.IsSummary() {
			out = append(out, r)
		}
	}
	return out
}

// MaxJobID returns the largest job number in the log (0 if empty).
func (l *Log) MaxJobID() int64 {
	var maxID int64
	for _, r := range l.Records {
		if r.JobID > maxID {
			maxID = r.JobID
		}
	}
	return maxID
}

// Read parses a standard workload file. Header comments at the top of
// the file populate Header; unknown comments are preserved in
// Header.Extra. Data lines must contain exactly 18 integer fields.
// Read performs only syntactic checks; use Validate for the standard's
// consistency rules.
func Read(r io.Reader) (*Log, error) {
	log := &Log{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			body := strings.TrimPrefix(line, ";")
			if !log.Header.parseHeaderLine(body) {
				log.Header.Extra = append(log.Header.Extra, strings.TrimSpace(body))
			}
			continue
		}
		rec, err := ParseRecord(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		log.Records = append(log.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("swf: read: %w", err)
	}
	return log, nil
}

// ReadFile parses the standard workload file at path.
func ReadFile(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Write serializes the log: header comments first, then one line per
// record in slice order.
func Write(w io.Writer, log *Log) error {
	var b strings.Builder
	log.Header.writeTo(&b)
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	var line strings.Builder
	for i := range log.Records {
		line.Reset()
		log.Records[i].appendTo(&line)
		line.WriteByte('\n')
		if _, err := bw.WriteString(line.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes the log to path, creating or truncating it.
func WriteFile(path string, log *Log) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, log); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// String renders the whole log as a standard workload file.
func (l *Log) String() string {
	var b strings.Builder
	l.Header.writeTo(&b)
	for i := range l.Records {
		l.Records[i].appendTo(&b)
		b.WriteByte('\n')
	}
	return b.String()
}
