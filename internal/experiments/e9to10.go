package experiments

import (
	"fmt"
	"math"

	"parsched/internal/core"
	"parsched/internal/graph"
	"parsched/internal/model"
	"parsched/internal/model/lublin"
	"parsched/internal/model/registry"
	"parsched/internal/stats"
	"parsched/internal/warmstones"
	"parsched/internal/workload/trace"
)

// E9ModelFidelity reproduces the model-versus-log comparison the paper
// cites from Talby et al. [58] ("the one proposed by Lublin is
// relatively representative of multiple workloads"), reduced from the
// co-plot method to per-marginal Kolmogorov-Smirnov distances. The
// reference log is a large sample from the Lublin model under a
// *different seed and different load*, standing in for an archive
// trace whose invariants that model was fitted to (substitution
// recorded in DESIGN.md); each model's marginals are compared against
// it. By construction the Lublin model should rank best and the naive
// guesswork baseline worst — the paper's point that measurement-based
// models beat guesswork.
func E9ModelFidelity(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	title := "model fidelity vs reference log " +
		"(K-S distances on three marginals + structural attribute gaps; lower = closer)"
	var ref *core.Workload
	if kind, _ := cfg.sourceSpec(); kind == sourceTrace {
		// With a real log configured, the substitution recorded in
		// DESIGN.md ends: the models are compared against the trace
		// itself, as recorded (no rescaling, no resampling) — the
		// co-plot comparison the paper actually describes.
		src, err := cfg.traceSource()
		if err != nil {
			return nil, err
		}
		ref = src.Workload(trace.Options{})
		title = fmt.Sprintf("model fidelity vs real log %s "+
			"(K-S distances on three marginals + structural attribute gaps; lower = closer)", src.Name)
	} else {
		ref = lublin.Default().Generate(model.Config{
			MaxNodes: cfg.Nodes, Jobs: cfg.Jobs * 2, Seed: cfg.Seed + 10007, Load: 0.65,
		})
	}
	refGaps, refSizes, refRTs := model.Marginals(ref)
	refPow2 := model.Pow2Fraction(ref)
	refSerial := model.SerialFraction(ref)

	t := Table{
		ID:     "E9",
		Title:  title,
		Header: []string{"model", "KS(arrival)", "KS(size)", "KS(runtime)", "d(pow2)", "d(serial)", "composite"},
	}
	type scored struct {
		name string
		d    float64
	}
	var scores []scored
	for _, name := range []string{"lublin99", "feitelson96", "jann97", "downey97", "naive"} {
		m, err := registry.New(name)
		if err != nil {
			return nil, fmt.Errorf("workload model %q: %w", name, err)
		}
		w := m.Generate(model.Config{MaxNodes: cfg.Nodes, Jobs: cfg.Jobs, Seed: cfg.Seed, Load: cfg.fixedLoad(0.7)})
		gaps, sizes, rts := model.Marginals(w)
		kg := stats.KSStatistic(refGaps, gaps)
		ks := stats.KSStatistic(refSizes, sizes)
		kr := stats.KSStatistic(refRTs, rts)
		dp := math.Abs(model.Pow2Fraction(w) - refPow2)
		dn := math.Abs(model.SerialFraction(w) - refSerial)
		// Composite distance: equal-weight mean over the five attribute
		// distances, the scalar reduction of the multi-attribute co-plot.
		composite := (kg + ks + kr + dp + dn) / 5
		scores = append(scores, scored{name, composite})
		t.AddRow(name, f3(kg), f3(ks), f3(kr), f3(dp), f3(dn), f3(composite))
		t.Observe(map[string]string{"model": name}, map[string]float64{
			"ksArrival": kg, "ksSize": ks, "ksRuntime": kr,
			"dPow2": dp, "dSerial": dn, "composite": composite,
		})
	}
	best, worst := scores[0], scores[0]
	for _, s := range scores {
		if s.d < best.d {
			best = s
		}
		if s.d > worst.d {
			worst = s
		}
	}
	t.Note("closest model: %s (composite %.3f); farthest: %s (%.3f)", best.name, best.d, worst.name, worst.d)
	t.Note("expected shape: lublin99 closest (the [58] finding); naive guesswork farthest (no power-of-two or serial structure)")
	return []Table{t}, nil
}

// E10Warmstones runs the WARMstones evaluation environment of Section
// 4.3: the micro-benchmark suite (Section 3.2) across the three
// canonical metasystem configurations under three mapping policies,
// reporting event-driven makespans; a second table quantifies the
// agreement between the two simulation fidelities.
func E10Warmstones(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	suite := warmstones.StandardSuite(cfg.Seed)
	mappers := []warmstones.Mapper{
		warmstones.RoundRobin{}, warmstones.LoadBalance{}, warmstones.CommAware{},
	}

	board := Table{
		ID:     "E10/scoreboard",
		Title:  "WARMstones makespans (seconds, event-driven engine)",
		Header: []string{"system", "graph", "round-robin", "load-balance", "comm-aware"},
	}
	fidelity := Table{
		ID:     "E10/fidelity",
		Title:  "multi-fidelity agreement (estimate vs simulation)",
		Header: []string{"system", "distinctPairs", "agreement%", "meanAbsRelErr"},
	}

	for _, sys := range warmstones.StandardSystems() {
		// Device-bound graphs only run on the system that has devices.
		graphs := append([]*graph.Graph(nil), suite[0], suite[1], suite[3])
		if sys.Name == "super+workstations" {
			graphs = append(graphs, suite[2])
		}
		scores, err := warmstones.Evaluate(graphs, sys, mappers)
		if err != nil {
			return nil, fmt.Errorf("evaluating %q: %w", sys.Name, err)
		}
		// Scoreboard rows: one per graph, columns per mapper.
		byGraph := map[string]map[string]warmstones.Score{}
		for _, s := range scores {
			if byGraph[s.Graph] == nil {
				byGraph[s.Graph] = map[string]warmstones.Score{}
			}
			byGraph[s.Graph][s.Mapper] = s
		}
		for _, g := range graphs {
			row := byGraph[g.Name]
			board.AddRow(sys.Name, g.Name,
				f(row["round-robin"].Makespan),
				f(row["load-balance"].Makespan),
				f(row["comm-aware"].Makespan))
			for _, mn := range []string{"round-robin", "load-balance", "comm-aware"} {
				board.Observe(map[string]string{"system": sys.Name, "graph": g.Name, "mapper": mn},
					map[string]float64{"makespan": row[mn].Makespan})
			}
		}
		// Fidelity agreement: among same-graph mapper pairs whose
		// event-driven makespans differ by more than 10%, how often does
		// the cheap estimate order them the same way? (Near-ties are
		// excluded: either answer is acceptable there.)
		distinct, agree := 0, 0
		var relErr float64
		for i := range scores {
			if scores[i].Makespan > 0 {
				d := scores[i].Estimate - scores[i].Makespan
				if d < 0 {
					d = -d
				}
				relErr += d / scores[i].Makespan //schedlint:allow floatsum mean relative error over a handful of mapper scores; golden-locked arithmetic
			}
			for k := i + 1; k < len(scores); k++ {
				if scores[i].Graph != scores[k].Graph {
					continue
				}
				lo, hi := scores[i].Makespan, scores[k].Makespan
				if lo > hi {
					lo, hi = hi, lo
				}
				if lo <= 0 || (hi-lo)/lo < 0.10 {
					continue
				}
				distinct++
				simOrder := scores[i].Makespan < scores[k].Makespan
				estOrder := scores[i].Estimate < scores[k].Estimate
				if simOrder == estOrder {
					agree++
				}
			}
		}
		agreement := "-"
		vals := map[string]float64{
			"distinctPairs": float64(distinct),
			"meanAbsRelErr": relErr / float64(len(scores)),
		}
		if distinct > 0 {
			agreement = f(100 * float64(agree) / float64(distinct))
			vals["agreementPct"] = 100 * float64(agree) / float64(distinct)
		}
		fidelity.AddRow(sys.Name, fmt.Sprintf("%d", distinct), agreement, f3(relErr/float64(len(scores))))
		fidelity.Observe(map[string]string{"system": sys.Name}, vals)
	}
	board.Note("expected shape: load-balance wins compute-intensive; comm-aware wins communication-intensive on slow links; device-bound pins to device machines")
	fidelity.Note("expected shape: positive rank agreement — the cheap estimate usually picks the same winner as the event-driven engine")
	return []Table{board, fidelity}, nil
}
