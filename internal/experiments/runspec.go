package experiments

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"sync"

	"parsched/internal/core"
	"parsched/internal/metrics"
	"parsched/internal/model"
	"parsched/internal/model/registry"
	"parsched/internal/outage"
	"parsched/internal/sched"
	"parsched/internal/sim"
	"parsched/internal/workload/trace"
)

// RunSpec is the unified, JSON-serializable run configuration: a
// scheduler spec × a workload source spec × simulation options × load
// points. It is the single vocabulary the facade, the experiment
// grids, and both CLIs use to name a run: a RunSpec written to disk
// today names the same run tomorrow.
type RunSpec struct {
	// Scheduler names the system under test in the spec grammar
	// (internal/sched): "easy", "gang(mpl=5)", "easy(reserve=2, window)".
	Scheduler sched.Spec `json:"scheduler"`
	// Source selects the workload substrate.
	Source Source `json:"source"`
	// Jobs truncates the workload (0 = source default / whole trace).
	Jobs int `json:"jobs,omitempty"`
	// Nodes is the machine size for model sources (0 = default; trace
	// sources follow the trace's own machine).
	Nodes int `json:"nodes,omitempty"`
	// Seed is the base RNG seed (0 = the battery default).
	Seed int64 `json:"seed,omitempty"`
	// Rep is the replication variant (trace sources resample
	// interarrivals for Rep > 0; model sources vary by seed).
	Rep int `json:"rep,omitempty"`
	// Loads are the offered-load points to run, one result per point.
	// Empty means one run at the source's recorded/default load.
	Loads []float64 `json:"loads,omitempty"`
	// Sim carries the serializable simulation options.
	Sim SimSpec `json:"sim,omitempty"`
	// Metrics configures the streaming collector each run reports
	// through: tau override, warmup/cooldown truncation, quantile
	// sketches, time-series sampling. The zero value reproduces the
	// classic full-population batch report bit for bit.
	Metrics MetricsSpec `json:"metrics,omitempty"`
}

// MetricsSpec is the serializable configuration of the streaming
// metrics collector a run reports through.
type MetricsSpec struct {
	// Tau is the bounded-slowdown runtime floor in seconds (0 = the
	// default 10 s).
	Tau int64 `json:"tau,omitempty"`
	// WarmupJobs drops the first K finished jobs from the statistics.
	WarmupJobs int `json:"warmupJobs,omitempty"`
	// CooldownJobs drops the last K finished jobs.
	CooldownJobs int `json:"cooldownJobs,omitempty"`
	// WarmupTime drops completions before this simulation time (s).
	WarmupTime int64 `json:"warmupTime,omitempty"`
	// CooldownTime drops completions after this simulation time (s).
	CooldownTime int64 `json:"cooldownTime,omitempty"`
	// Sketch switches to O(1)-memory quantile sketches (P²) instead of
	// exact retained samples.
	Sketch bool `json:"sketch,omitempty"`
	// SampleEvery records a utilization/queue/backlog sample every
	// this many seconds (0 = no time series).
	SampleEvery int64 `json:"sampleEvery,omitempty"`
}

// ParseWarmup parses a -warmup CLI argument shared by cmd/experiments
// and cmd/simsched: a bare integer is a finished-job count; a value
// with an s/m/h suffix is a simulation-time threshold in seconds.
func ParseWarmup(s string) (jobs int, secs int64, err error) {
	s = strings.TrimSpace(s)
	unit := int64(0)
	switch {
	case strings.HasSuffix(s, "h"):
		unit = 3600
	case strings.HasSuffix(s, "m"):
		unit = 60
	case strings.HasSuffix(s, "s"):
		unit = 1
	}
	if unit > 0 {
		v, perr := strconv.ParseFloat(strings.TrimSpace(s[:len(s)-1]), 64)
		// The bounds reject durations whose int64 conversion would
		// overflow (implementation-defined) or truncate to zero — both
		// would silently disable the truncation the user asked for.
		if perr != nil || !(v > 0) || v*float64(unit) >= math.MaxInt64 {
			return 0, 0, fmt.Errorf("-warmup: %q is not a positive duration", s)
		}
		secs = int64(v * float64(unit))
		if secs <= 0 {
			return 0, 0, fmt.Errorf("-warmup: %q is shorter than one second", s)
		}
		return 0, secs, nil
	}
	n, perr := strconv.Atoi(s)
	if perr != nil || n <= 0 {
		return 0, 0, fmt.Errorf("-warmup: %q is neither a job count nor a duration (500, 3600s, 2h)", s)
	}
	return n, 0, nil
}

// collectorOptions materializes the spec for a labelled run.
func (ms MetricsSpec) collectorOptions(scheduler, workload string, procs int) metrics.CollectorOptions {
	return metrics.CollectorOptions{
		Scheduler: scheduler, Workload: workload, Procs: procs,
		Tau:        ms.Tau,
		WarmupJobs: ms.WarmupJobs, CooldownJobs: ms.CooldownJobs,
		WarmupTime: ms.WarmupTime, CooldownTime: ms.CooldownTime,
		Sketch:      ms.Sketch,
		SampleEvery: ms.SampleEvery,
	}
}

// Source names a workload substrate: a statistical model
// ("model:lublin99") or a cleaned real trace ("trace:path.swf").
type Source struct {
	Kind string `json:"kind"` // sourceModel or sourceTrace
	Arg  string `json:"arg"`  // model name or trace path
}

// ParseSource parses the textual source spec Config.Source carries:
// "", "model:<name>", "trace:<path>", or a bare model name.
func ParseSource(s string) Source {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return Source{Kind: sourceModel, Arg: defaultSubstrate}
	case strings.HasPrefix(s, sourceTrace+":"):
		return Source{Kind: sourceTrace, Arg: strings.TrimPrefix(s, sourceTrace+":")}
	case strings.HasPrefix(s, sourceModel+":"):
		return Source{Kind: sourceModel, Arg: strings.TrimPrefix(s, sourceModel+":")}
	default:
		// A bare name reads as a model, the common shorthand.
		return Source{Kind: sourceModel, Arg: s}
	}
}

// String renders the canonical textual form ParseSource accepts.
func (s Source) String() string {
	if s.Kind == "" {
		return s.Arg
	}
	return s.Kind + ":" + s.Arg
}

// SimSpec is the serializable subset of sim.Options. Injected
// in-memory streams (generated outage logs, reservation requests) have
// no file form and ride alongside a RunSpec instead — see Execute's
// extra parameter.
type SimSpec struct {
	// Feedback replays preceding-job/think-time chains (closed loop).
	Feedback bool `json:"feedback,omitempty"`
	// PerfectEstimates lets schedulers see true runtimes.
	PerfectEstimates bool `json:"perfectEstimates,omitempty"`
	// DropKilled abandons outage-killed jobs instead of restarting.
	DropKilled bool `json:"dropKilled,omitempty"`
	// Horizon stops the simulation at this time (0 = run to drain).
	Horizon int64 `json:"horizon,omitempty"`
	// OutagePath loads an outage log (standard outage format) from
	// this file.
	OutagePath string `json:"outagePath,omitempty"`
}

// Options materializes the sim options, loading OutagePath if set.
func (s SimSpec) Options() (sim.Options, error) {
	opts := sim.Options{
		Feedback:         s.Feedback,
		PerfectEstimates: s.PerfectEstimates,
		DropKilled:       s.DropKilled,
		Horizon:          s.Horizon,
	}
	if s.OutagePath != "" {
		olog, err := cachedOutages(s.OutagePath)
		if err != nil {
			return sim.Options{}, err
		}
		opts.Outages = olog
	}
	return opts, nil
}

// outageCache memoizes parsed outage logs by path — the outage-log
// analogue of trace.Cached. The simulator treats the log as read-only
// (it builds its own event timeline), so one parsed log is safely
// shared by every scheduler of a multi-spec run and every cell of a
// battery.
var outageCache sync.Map // path → *outage.Log

func cachedOutages(path string) (*outage.Log, error) {
	if v, ok := outageCache.Load(path); ok {
		return v.(*outage.Log), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("runspec: outage log: %w", err)
	}
	defer f.Close()
	olog, err := outage.Read(f)
	if err != nil {
		return nil, fmt.Errorf("runspec: outage log %s: %w", path, err)
	}
	outageCache.Store(path, olog)
	return olog, nil
}

// RunResult is the outcome of one (load point × scheduler) run.
type RunResult struct {
	// Load is the requested offered load (0 = source default).
	Load float64 `json:"load"`
	// Workload describes the substrate the run actually simulated.
	Workload WorkloadInfo `json:"workload"`
	// Report is the full metric battery, streamed through the run's
	// collector (so it honours the RunSpec's MetricsSpec).
	Report metrics.Report `json:"report"`
	// Series is the sampled utilization/queue/backlog time series
	// (nil unless Metrics.SampleEvery was set).
	Series *metrics.TimeSeries `json:"series,omitempty"`
}

// WorkloadInfo identifies the simulated workload.
type WorkloadInfo struct {
	Name        string  `json:"name"`
	Jobs        int     `json:"jobs"`
	Nodes       int     `json:"nodes"`
	OfferedLoad float64 `json:"offeredLoad"`
}

// config translates the RunSpec into the experiment Config vocabulary
// so workload resolution shares one code path with the battery.
func (rs RunSpec) config() Config {
	return Config{
		Seed:   rs.Seed,
		Jobs:   rs.Jobs,
		Nodes:  rs.Nodes,
		Source: rs.Source.String(),
		Rep:    rs.Rep,
	}.withDefaults()
}

// Validate reports whether the RunSpec names a constructible run
// without executing it: the scheduler builds and the source resolves.
func (rs RunSpec) Validate() error {
	if _, err := sched.Build(rs.Scheduler); err != nil {
		return err
	}
	switch rs.Source.Kind {
	case sourceModel:
		if _, err := registry.New(rs.Source.Arg); err != nil {
			return fmt.Errorf("runspec: workload model %q: %w", rs.Source.Arg, err)
		}
	case sourceTrace:
		if _, err := trace.Cached(rs.Source.Arg); err != nil {
			return fmt.Errorf("runspec: trace %q: %w", rs.Source.Arg, err)
		}
	default:
		return fmt.Errorf("runspec: unknown source kind %q (have %s, %s)",
			rs.Source.Kind, sourceModel, sourceTrace)
	}
	return nil
}

// Execute resolves and runs the RunSpec: one result per load point
// (or a single default-load run when Loads is empty).
//
// Faithful replays of large trace files (recorded load, variant 0,
// open loop) run through the streaming pipeline automatically: the log
// is never materialized, so memory stays bounded by the jobs in flight
// rather than the trace length. The results are identical either way —
// the gate is purely a memory/speed decision (see stream.go).
func Execute(rs RunSpec) ([]RunResult, error) {
	if src, ok := rs.streamSource(); ok {
		return executeStream(rs, src)
	}
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	return execute(rs, rs.workload)
}

// ExecuteSource runs the RunSpec against an already-resolved trace
// source (stdin-fed logs have no path for Execute to reopen); the
// RunSpec's own Source field is used only for labeling. Seed and Rep
// default exactly as in Execute, so the same RunSpec resolves to the
// same workload through either entry point.
func ExecuteSource(src *trace.Source, rs RunSpec) ([]RunResult, error) {
	cfg := rs.config()
	return execute(rs, func(load float64) (*core.Workload, error) {
		return src.Workload(trace.Options{
			Load: load, Jobs: rs.Jobs, Variant: cfg.Rep, Seed: cfg.Seed,
		}), nil
	})
}

// execute runs the spec's load points through the streaming pipeline:
// each run attaches a fresh metrics.Collector as a sim observer, the
// simulator feeds it one completion at a time (and time-series samples
// at the configured cadence), and the RunResult's Report comes from
// the collector — no post-hoc pass over the outcome slice.
func execute(rs RunSpec, workload func(load float64) (*core.Workload, error)) ([]RunResult, error) {
	opts, err := rs.Sim.Options()
	if err != nil {
		return nil, err
	}
	loads := rs.Loads
	if len(loads) == 0 {
		loads = []float64{0}
	}
	out := make([]RunResult, 0, len(loads))
	for _, load := range loads {
		w, err := workload(load)
		if err != nil {
			return nil, err
		}
		s, err := sched.Build(rs.Scheduler)
		if err != nil {
			return nil, err
		}
		col := metrics.NewCollector(rs.Metrics.collectorOptions(s.Name(), w.Name, w.MaxNodes))
		runOpts := opts
		runOpts.Observers = []sim.Observer{col}
		runOpts.SampleEvery = rs.Metrics.SampleEvery
		// The collector is the only consumer: skip retaining the
		// per-job outcome slice. Metric state is then three float64s
		// per finished job (exact percentiles), or O(1) total when the
		// spec selects sketch mode — either way far below O(jobs)
		// Outcome structs.
		runOpts.DiscardOutcomes = true
		if _, err := sim.Run(w, s, runOpts); err != nil {
			return nil, fmt.Errorf("runspec: simulating %s: %w", rs.Scheduler, err)
		}
		out = append(out, RunResult{
			Load: load,
			Workload: WorkloadInfo{
				Name: w.Name, Jobs: len(w.Jobs), Nodes: w.MaxNodes,
				OfferedLoad: w.OfferedLoad(),
			},
			Report: col.Report(),
			Series: col.Series(),
		})
	}
	return out, nil
}

// workload resolves one load point of the spec's source.
func (rs RunSpec) workload(load float64) (*core.Workload, error) {
	cfg := rs.config()
	if rs.Source.Kind == sourceTrace {
		src, err := trace.Cached(rs.Source.Arg)
		if err != nil {
			return nil, err
		}
		// rs.Jobs, not cfg.Jobs: for a trace, 0 means the whole log,
		// and the battery's 5000-job default must not truncate it.
		return src.Workload(trace.Options{
			Load: load, Jobs: rs.Jobs, Variant: cfg.Rep, Seed: cfg.Seed,
		}), nil
	}
	if load == 0 {
		// Model sources have no "recorded" load; use the battery's
		// representative default.
		load = 0.7
	}
	m, err := registry.New(rs.Source.Arg)
	if err != nil {
		return nil, err
	}
	return m.Generate(model.Config{
		MaxNodes: cfg.Nodes, Jobs: cfg.Jobs, Seed: cfg.Seed,
		Load: load, EstimateFactor: 2,
	}), nil
}
