package experiments

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"parsched/internal/stats"
)

// The batch layer shards the battery into (experiment × replication)
// cells and runs them on a bounded worker pool. Each cell derives its
// own seed from the base configuration — workers never share RNG
// state — so a parallel run is bit-identical to the serial run of the
// same cells, in any worker order.

// SeedStride separates replication seeds. It is a prime far larger
// than any intra-experiment seed offset (experiments derive site and
// stream seeds as cfg.Seed plus small constants), so replication seed
// spaces cannot collide.
const SeedStride int64 = 1_000_003

// RepSeed derives the deterministic seed for replication rep of a
// battery based at seed base. Replication 0 keeps the base seed, which
// is what makes `-reps 1` output identical to the classic serial path.
func RepSeed(base int64, rep int) int64 { return base + int64(rep)*SeedStride }

// Cell is one schedulable unit: a single experiment at a single
// replication seed.
type Cell struct {
	Runner Runner
	Rep    int
	Seed   int64
}

// CellResult is the outcome of one cell. Index is the cell's position
// in the deterministic cell order (see Cells), which lets consumers of
// the completion-order OnCell callback reassemble in-order streams.
type CellResult struct {
	Index   int           `json:"index"`
	ID      string        `json:"id"`
	Title   string        `json:"title"`
	Rep     int           `json:"rep"`
	Seed    int64         `json:"seed"`
	Tables  []Table       `json:"tables,omitempty"`
	Err     string        `json:"error,omitempty"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// SummaryRow aggregates one typed metric across replications.
type SummaryRow struct {
	Experiment string            `json:"experiment"`
	Table      string            `json:"table"`
	Labels     map[string]string `json:"labels,omitempty"`
	Name       string            `json:"name"`
	N          int               `json:"n"`
	Mean       float64           `json:"mean"`
	Std        float64           `json:"std"`
	CI95       float64           `json:"ci95"` // Student-t 95% half-width
}

// BatchResult is the structured outcome of a battery run.
type BatchResult struct {
	Config    Config        `json:"config"`
	Parallel  int           `json:"parallel"`
	Reps      int           `json:"reps"`
	Cells     []CellResult  `json:"cells"`
	Summaries []SummaryRow  `json:"summaries,omitempty"`
	Elapsed   time.Duration `json:"elapsed_ns"`
}

// Failed returns the cells that ended in an error.
func (b *BatchResult) Failed() []CellResult {
	var out []CellResult
	for _, c := range b.Cells {
		if c.Err != "" {
			out = append(out, c)
		}
	}
	return out
}

// BatchOptions configures a battery run.
type BatchOptions struct {
	// Parallel is the worker-pool size; <= 0 means runtime.NumCPU().
	Parallel int
	// Reps is the number of replications per experiment; < 1 means 1.
	Reps int
	// OnCell, when set, is called once per finished cell, from worker
	// goroutines in completion order (not cell order). It must be
	// safe for concurrent use when Parallel > 1.
	OnCell func(CellResult)
}

func (o BatchOptions) withDefaults() BatchOptions {
	if o.Parallel <= 0 {
		o.Parallel = runtime.NumCPU()
	}
	if o.Reps < 1 {
		o.Reps = 1
	}
	return o
}

// Cells expands runners × replications into the deterministic cell
// list: experiment-major, replications in order, so Cells[i] always
// names the same work regardless of worker count.
func Cells(runners []Runner, cfg Config, reps int) []Cell {
	base := cfg.withDefaults().Seed
	if reps < 1 {
		reps = 1
	}
	out := make([]Cell, 0, len(runners)*reps)
	for _, r := range runners {
		for rep := 0; rep < reps; rep++ {
			out = append(out, Cell{Runner: r, Rep: rep, Seed: RepSeed(base, rep)})
		}
	}
	return out
}

// RunBatch executes the battery over a bounded worker pool and returns
// results in cell order (experiment-major, then replication), whatever
// order workers finished in. A cell that fails — by returned error or
// recovered panic — is recorded and does not stop the rest of the
// battery. Cancelling ctx stops un-started cells, which are recorded
// with the context error; cells already running finish normally.
func RunBatch(ctx context.Context, runners []Runner, cfg Config, opt BatchOptions) *BatchResult {
	opt = opt.withDefaults()
	cells := Cells(runners, cfg, opt.Reps)
	// Wall-clock here times the batch for the human reading the
	// report; nothing simulated observes it.
	start := time.Now() //schedlint:allow determinism batch elapsed time is diagnostic output, not simulation state

	results := make([]CellResult, len(cells))
	idxCh := make(chan int)
	var wg sync.WaitGroup
	workers := opt.Parallel
	if workers > len(cells) {
		workers = len(cells)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//schedlint:shared worker pool: results is index-partitioned (one cell per slot), cells and cfg are read-only after launch, and wg.Wait() is the reuse barrier
		go func() {
			defer wg.Done()
			for i := range idxCh {
				results[i] = runCell(ctx, cells[i], cfg)
				results[i].Index = i
				if opt.OnCell != nil {
					opt.OnCell(results[i])
				}
			}
		}()
	}
	for i := range cells {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	br := &BatchResult{
		Config:   cfg.withDefaults(),
		Parallel: opt.Parallel,
		Reps:     opt.Reps,
		Cells:    results,
		Elapsed:  time.Since(start), //schedlint:allow determinism batch elapsed time is diagnostic output, not simulation state
	}
	if opt.Reps > 1 {
		br.Summaries = summarize(results)
	}
	return br
}

// runCell executes one cell, converting panics to errors so a broken
// experiment cannot take down the pool.
func runCell(ctx context.Context, c Cell, cfg Config) (out CellResult) {
	out = CellResult{ID: c.Runner.ID, Title: c.Runner.Title, Rep: c.Rep, Seed: c.Seed}
	if err := ctx.Err(); err != nil {
		out.Err = err.Error()
		return out
	}
	start := time.Now() //schedlint:allow determinism per-cell wall-clock timing is diagnostic output, not simulation state
	defer func() {
		out.Elapsed = time.Since(start) //schedlint:allow determinism per-cell wall-clock timing is diagnostic output, not simulation state
		if r := recover(); r != nil {
			out.Err = fmt.Sprintf("panic: %v", r)
			out.Tables = nil
		}
	}()
	cellCfg := cfg
	cellCfg.Seed = c.Seed
	// Trace sources replay rep 0 faithfully and resample arrivals for
	// later reps; model sources ignore Rep (the derived seed varies).
	cellCfg.Rep = c.Rep
	tables, err := c.Runner.Run(cellCfg)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	out.Tables = tables
	return out
}

// summarize groups typed metrics by (experiment, table, labels, name)
// across replications and reduces each group to mean, std, and a
// Student-t 95% confidence half-width (replications use independent
// derived seeds, so plain i.i.d. intervals apply — no batch means
// needed). Groups appear in first-seen cell order, so the summary is
// deterministic for a deterministic cell list.
func summarize(cells []CellResult) []SummaryRow {
	type group struct {
		row  SummaryRow
		vals []float64
	}
	var order []string
	groups := map[string]*group{}
	for _, c := range cells {
		if c.Err != "" {
			continue
		}
		for _, tb := range c.Tables {
			for _, m := range tb.Metrics {
				key := c.ID + "\x00" + tb.ID + "\x00" + m.LabelKey() + "\x00" + m.Name
				g, ok := groups[key]
				if !ok {
					g = &group{row: SummaryRow{
						Experiment: c.ID, Table: tb.ID, Labels: m.Labels, Name: m.Name,
					}}
					groups[key] = g
					order = append(order, key)
				}
				g.vals = append(g.vals, m.Value)
			}
		}
	}
	out := make([]SummaryRow, 0, len(order))
	for _, key := range order {
		g := groups[key]
		s := stats.Summarize(g.vals)
		g.row.N = s.N
		g.row.Mean = s.Mean
		g.row.Std = s.Std
		if s.N > 1 {
			g.row.CI95 = stats.TQuantile95(s.N-1) * s.Std / math.Sqrt(float64(s.N))
		}
		out = append(out, g.row)
	}
	return out
}

// SummaryTables renders the aggregated rows as one table per
// experiment, for human-readable multi-rep output.
func SummaryTables(rows []SummaryRow) []Table {
	var order []string
	byExp := map[string]*Table{}
	for _, r := range rows {
		t, ok := byExp[r.Experiment]
		if !ok {
			t = &Table{
				ID:     r.Experiment + "/summary",
				Title:  "replication summary (mean ± 95% CI)",
				Header: []string{"table", "labels", "metric", "n", "mean", "ci95", "std"},
			}
			byExp[r.Experiment] = t
			order = append(order, r.Experiment)
		}
		// n is per-row: a metric observed only under some seeds (e.g.
		// E10's agreementPct) aggregates over fewer replications.
		t.AddRow(r.Table, Metric{Labels: r.Labels}.LabelKey(), r.Name,
			fmt.Sprintf("%d", r.N), f(r.Mean), f(r.CI95), f(r.Std))
	}
	out := make([]Table, 0, len(order))
	for _, id := range order {
		out = append(out, *byExp[id])
	}
	return out
}
