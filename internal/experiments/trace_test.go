package experiments

import (
	"context"
	"testing"
)

// miniTrace is the dirty golden fixture shared with the trace package.
const miniTrace = "trace:../workload/trace/testdata/mini.swf"

func traceQuickConfig() Config {
	cfg := QuickConfig()
	cfg.Source = miniTrace
	return cfg
}

// TestBatteryRunsOnTrace is the scenario-diversity contract of the
// trace source: every experiment must run on a real SWF log, not only
// on the synthetic models.
func TestBatteryRunsOnTrace(t *testing.T) {
	cfg := traceQuickConfig()
	for _, r := range All() {
		tables, err := r.Run(cfg)
		if err != nil {
			t.Fatalf("%s on trace: %v", r.ID, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s on trace: no tables", r.ID)
		}
	}
}

func TestTraceConfigAdoptsTraceMachine(t *testing.T) {
	cfg := traceQuickConfig().withDefaults()
	if cfg.Nodes != 32 {
		t.Fatalf("Nodes = %d, want 32 (the traced machine)", cfg.Nodes)
	}
}

func TestTraceBatteryDeterministicAndRepSensitive(t *testing.T) {
	r, _ := ByID("E2")
	cfg := traceQuickConfig()

	first, err := r.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if renderAll(first) != renderAll(second) {
		t.Fatal("same config must yield byte-identical trace tables")
	}

	rep1 := cfg
	rep1.Rep = 1
	rep1.Seed = RepSeed(cfg.Seed, 1)
	other, err := r.Run(rep1)
	if err != nil {
		t.Fatal(err)
	}
	if renderAll(first) == renderAll(other) {
		t.Fatal("a different replication must resample the trace, not repeat it")
	}
}

// TestModelPathIgnoresRep locks in the compatibility contract: the Rep
// field the batch layer now threads through must not perturb
// model-based runs (classic output stays byte-identical).
func TestModelPathIgnoresRep(t *testing.T) {
	r, _ := ByID("E2")
	base, err := r.Run(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	withRep := QuickConfig()
	withRep.Rep = 3
	again, err := r.Run(withRep)
	if err != nil {
		t.Fatal(err)
	}
	if renderAll(base) != renderAll(again) {
		t.Fatal("Rep must be inert for model substrates")
	}
}

// TestTraceReplicationsGiveRealCIs is the acceptance criterion: -reps N
// on a trace yields non-degenerate confidence intervals, because each
// replication resamples the trace's interarrival gaps.
func TestTraceReplicationsGiveRealCIs(t *testing.T) {
	r, _ := ByID("E2")
	cfg := traceQuickConfig()
	res := RunBatch(context.Background(), []Runner{r}, cfg,
		BatchOptions{Parallel: 2, Reps: 3})
	if failed := res.Failed(); len(failed) != 0 {
		t.Fatalf("failed cells: %+v", failed)
	}
	if len(res.Summaries) == 0 {
		t.Fatal("no summaries for a multi-rep run")
	}
	nonzero := 0
	for _, s := range res.Summaries {
		if s.N != 3 {
			t.Fatalf("summary %s/%s aggregated %d reps, want 3", s.Table, s.Name, s.N)
		}
		if s.CI95 > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("every CI is zero: replications did not vary the trace")
	}
}

func TestSourceSpecParsing(t *testing.T) {
	cases := []struct {
		in        string
		kind, arg string
	}{
		{"", sourceModel, "lublin99"},
		{"model:jann97", sourceModel, "jann97"},
		{"jann97", sourceModel, "jann97"},
		{"trace:/some/log.swf", sourceTrace, "/some/log.swf"},
		{"  trace:x.swf  ", sourceTrace, "x.swf"},
	}
	for _, c := range cases {
		k, a := Config{Source: c.in}.sourceSpec()
		if k != c.kind || a != c.arg {
			t.Errorf("sourceSpec(%q) = (%s, %s), want (%s, %s)", c.in, k, a, c.kind, c.arg)
		}
	}
}

func TestLoadOverrides(t *testing.T) {
	c := Config{}
	if got := c.fixedLoad(0.7); got != 0.7 {
		t.Fatalf("fixedLoad default = %v", got)
	}
	c.Loads = []float64{0.5, 0.7, 0.9}
	if got := c.fixedLoad(0.85); got != 0.9 {
		t.Fatalf("fixedLoad(0.85) = %v, want closest override 0.9", got)
	}
	if got := c.fixedLoad(0.6); got != 0.5 {
		t.Fatalf("fixedLoad(0.6) = %v, want closest override 0.5", got)
	}
	sweep := c.sweepLoads([]float64{0.6, 0.8})
	if len(sweep) != 3 || sweep[0] != 0.5 || sweep[2] != 0.9 {
		t.Fatalf("sweepLoads override wrong: %v", sweep)
	}
	if def := (Config{}).sweepLoads([]float64{0.6, 0.8}); len(def) != 2 || def[0] != 0.6 {
		t.Fatalf("sweepLoads default wrong: %v", def)
	}
}

func TestTraceSourceErrorsFlowThroughRunner(t *testing.T) {
	cfg := QuickConfig()
	cfg.Source = "trace:does-not-exist.swf"
	r, _ := ByID("E1")
	if _, err := r.Run(cfg); err == nil {
		t.Fatal("missing trace file must error, not panic")
	}
}
