package experiments

import (
	"fmt"

	"parsched/internal/core"
	"parsched/internal/meta"
	"parsched/internal/outage"
	"parsched/internal/predict"
	"parsched/internal/sched"
	"parsched/internal/sim"
	"parsched/internal/stats"
)

// E5Outages reproduces Section 2.2 "Including outage information": the
// same workload and outage log run under an outage-oblivious scheduler
// (classic EASY, which restarts killed jobs) and the outage-aware
// variant (easy+win, which drains before announced windows). Failures
// are sudden; maintenance is announced a day ahead, exactly the two
// announcement modes of the proposed outage format.
func E5Outages(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	w, err := substrateWorkload(cfg, cfg.fixedLoad(0.7))
	if err != nil {
		return nil, err
	}
	horizon := w.Jobs[len(w.Jobs)-1].Submit + 7*86400

	t := Table{
		ID:     "E5",
		Title:  "outage impact: oblivious (easy) vs aware (easy+win)",
		Header: []string{"mtbf", "sched", "meanWait(s)", "meanBSLD", "restarts", "lostWork(proc-h)", "unfinished"},
	}
	noteLoadShortfall(&t, cfg, w, cfg.fixedLoad(0.7))
	type scenario struct {
		name string
		mtbf float64 // machine-level mean time between node failures; 0 = none
	}
	scenarios := []scenario{{"none", 0}, {"48h", 48 * 3600}, {"12h", 12 * 3600}}
	if cfg.Quick {
		scenarios = []scenario{{"none", 0}, {"12h", 12 * 3600}}
	}
	scheds, err := cfg.schedList([]string{"easy", "easy+win"})
	if err != nil {
		return nil, err
	}
	for _, sc := range scenarios {
		gcfg := outage.GeneratorConfig{
			Nodes:             int64(cfg.Nodes),
			Horizon:           horizon,
			MaintenanceEvery:  7 * 86400,
			MaintenanceLength: 4 * 3600,
			MaintenanceLead:   86400,
		}
		if sc.mtbf > 0 {
			gcfg.MTBF = stats.Exponential{Lambda: 1 / sc.mtbf}
			gcfg.Repair = stats.LogNormal{Mu: 7.5, Sigma: 0.7} // ~30 min repairs
		}
		olog := outage.Generate(gcfg, cfg.Seed+7)
		for _, sn := range scheds {
			r, err := runOn(cfg, w, sn, sim.Options{Outages: olog})
			if err != nil {
				return nil, err
			}
			t.AddRow(sc.name, sn, f0(r.Wait.Mean), f(r.BSLD.Mean),
				fmt.Sprintf("%d", r.Restarts),
				f(float64(r.LostWork)/3600),
				fmt.Sprintf("%d", r.Unfinished))
			t.Observe(map[string]string{"mtbf": sc.name, "sched": sn}, map[string]float64{
				"meanWait": r.Wait.Mean, "meanBSLD": r.BSLD.Mean,
				"restarts": float64(r.Restarts), "lostWorkProcH": float64(r.LostWork) / 3600,
				"unfinished": float64(r.Unfinished),
			})
		}
	}
	t.Note("expected shape: with announced maintenance only (mtbf none) the aware scheduler eliminates kills entirely; sudden failures remain unavoidable for both")
	return []Table{t}, nil
}

// E6Reservations reproduces Section 3's "simple approach may be an
// extension of backfilling": advance reservations consume a growing
// fraction of the machine, and the local jobs are scheduled either by
// a reservation-aware backfiller (easy+win) or an oblivious one. The
// aware scheduler keeps reservations feasible (high grant rate) at
// some cost in local slowdown; the oblivious one tramples them.
func E6Reservations(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	load := cfg.fixedLoad(0.6)
	w, err := substrateWorkload(cfg, load)
	if err != nil {
		return nil, err
	}
	span := w.Jobs[len(w.Jobs)-1].Submit

	t := Table{
		ID:     "E6",
		Title:  fmt.Sprintf("reservation load vs backfilling (%s, load %.2g)", substrateLabel(cfg), load),
		Header: []string{"resvFrac", "sched", "grant%", "localBSLD", "util"},
	}
	noteLoadShortfall(&t, cfg, w, load)
	fracs := []float64{0, 0.1, 0.2, 0.4}
	if cfg.Quick {
		fracs = []float64{0.2}
	}
	scheds, err := cfg.schedList([]string{"easy", "easy+win"})
	if err != nil {
		return nil, err
	}
	for _, frac := range fracs {
		resvs := periodicReservations(frac, cfg.Nodes, span, 4*3600)
		for _, sn := range scheds {
			s, err := sched.New(sn)
			if err != nil {
				return nil, fmt.Errorf("scheduler %q: %w", sn, err)
			}
			res, err := sim.Run(w, s, sim.Options{Reservations: resvs})
			if err != nil {
				return nil, fmt.Errorf("simulating %q: %w", sn, err)
			}
			r := cfg.report(res.Scheduler, res.Workload, res.Outcomes, w.MaxNodes)
			granted := 0
			for _, ro := range res.Reservations {
				if ro.Granted {
					granted++
				}
			}
			grantPct := 100.0
			if len(res.Reservations) > 0 {
				grantPct = 100 * float64(granted) / float64(len(res.Reservations))
			}
			t.AddRow(f(frac), sn, f(grantPct), f(r.BSLD.Mean), f3(r.Utilization))
			t.Observe(map[string]string{"resvFrac": f(frac), "sched": sn}, map[string]float64{
				"grantPct": grantPct, "localBSLD": r.BSLD.Mean, "util": r.Utilization,
			})
		}
	}
	t.Note("expected shape: easy+win grants ~all reservations; oblivious easy fails grants as resvFrac grows; local slowdown rises with resvFrac")
	return []Table{t}, nil
}

// periodicReservations builds a reservation stream consuming roughly
// frac of machine capacity: every `period` seconds, a reservation for
// frac*nodes processors lasting half the period, announced a period in
// advance.
func periodicReservations(frac float64, nodes int, span int64, period int64) []sched.Reservation {
	if frac <= 0 {
		return nil
	}
	procs := int(frac * float64(nodes))
	if procs < 1 {
		procs = 1
	}
	var out []sched.Reservation
	id := int64(1)
	for start := period; start+period/2 < span; start += period {
		// The reservation calendar is published upfront (Announced 0),
		// like a maintenance calendar: the aware scheduler can plan
		// around every window.
		out = append(out, sched.Reservation{
			ID: id, Procs: procs, Start: start, End: start + period/2,
		})
		id++
	}
	return out
}

// E7Prediction reproduces Section 3.1: queue-wait predictors are
// evaluated on a real scheduling trace (accuracy table), then a 4-site
// grid compares meta-scheduler policies that use no information
// (random), queue state (least-work), and predictions (predicted-wait).
func E7Prediction(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()

	// Part 1: predictor accuracy on a single busy machine.
	accLoad := cfg.fixedLoad(0.95)
	w, err := substrateWorkload(cfg, accLoad)
	if err != nil {
		return nil, err
	}
	s, err := sched.New("easy")
	if err != nil {
		return nil, fmt.Errorf("scheduler easy: %w", err)
	}
	res, err := sim.Run(w, s, sim.Options{})
	if err != nil {
		return nil, fmt.Errorf("simulating easy: %w", err)
	}
	jobsByID := map[int64]*core.Job{}
	for _, j := range w.Jobs {
		jobsByID[j.ID] = j
	}
	acc := Table{
		ID:     "E7/accuracy",
		Title:  fmt.Sprintf("wait-time predictor accuracy (easy, %s, load %.2g)", substrateLabel(cfg), accLoad),
		Header: []string{"predictor", "MAE(s)", "RMSE(s)", "MAE/meanWait"},
	}
	noteLoadShortfall(&acc, cfg, w, accLoad)
	preds := []predict.Predictor{
		predict.Zero{}, predict.NewRecent(25), predict.NewEWMA(0.2), predict.NewCategory(),
	}
	for _, p := range preds {
		ev := predict.NewEvaluator(p)
		for _, o := range res.Outcomes {
			if o.Start < 0 {
				continue
			}
			ev.Feed(jobsByID[o.JobID], o.Submit, o.Wait())
		}
		acc.AddRow(p.Name(), f0(ev.MAE()), f0(ev.RMSE()), f3(ev.NormalizedMAE()))
		acc.Observe(map[string]string{"predictor": p.Name()}, map[string]float64{
			"mae": ev.MAE(), "rmse": ev.RMSE(), "normMAE": ev.NormalizedMAE(),
		})
	}
	acc.Note("expected shape: category templates beat the no-information baseline; global averages barely help — queue waits are 'still relatively inaccurate' to predict (Section 3.1)")

	// Part 2: meta-scheduling gain from information.
	gain := Table{
		ID:     "E7/meta",
		Title:  "meta-scheduler policies on a 4-site grid (meta jobs' waits)",
		Header: []string{"policy", "meanWait(s)", "p90Wait(s)", "lost"},
	}
	metaJobs := metaJobStream(cfg, 200)
	for _, pol := range []func() meta.Policy{
		func() meta.Policy { return meta.NewRandomPolicy(cfg.Seed) },
		func() meta.Policy { return meta.LeastWorkPolicy{} },
		func() meta.Policy { return meta.PredictedWaitPolicy{} },
	} {
		g, err := buildGrid(cfg)
		if err != nil {
			return nil, err
		}
		policy := pol()
		g.SubmitMeta(metaJobs, policy)
		g.Run(0)
		outs, lost := g.MetaOutcomes()
		r := cfg.report(policy.Name(), "grid", outs, g.TotalNodes())
		gain.AddRow(policy.Name(), f0(r.Wait.Mean), f0(r.Wait.P90), fmt.Sprintf("%d", lost))
		gain.Observe(map[string]string{"policy": policy.Name()}, map[string]float64{
			"meanWait": r.Wait.Mean, "p90Wait": r.Wait.P90, "lost": float64(lost),
		})
	}
	gain.Note("expected shape: least-work and predicted-wait cut meta-job waits versus random")
	return []Table{acc, gain}, nil
}

// buildGrid assembles the standard 4-site grid with skewed local loads.
func buildGrid(cfg Config) (*meta.Grid, error) {
	jobsPerSite := cfg.Jobs / 4
	loads := []float64{0.3, 0.6, 0.9, 1.2}
	var specs []meta.SiteSpec
	for i, load := range loads {
		lw, nodes, err := siteWorkload(cfg, i, jobsPerSite, cfg.Nodes/2, load)
		if err != nil {
			return nil, err
		}
		specs = append(specs, meta.SiteSpec{
			Name:      fmt.Sprintf("site%d", i),
			Nodes:     nodes,
			Scheduler: sched.NewEASY(),
			Local:     lw,
			Predictor: predict.NewRecent(25),
		})
	}
	g, err := meta.NewGrid(specs)
	if err != nil {
		return nil, fmt.Errorf("building grid: %w", err)
	}
	return g, nil
}

// metaJobStream builds n meta jobs spread over the grid's active span.
func metaJobStream(cfg Config, n int) []*core.Job {
	if cfg.Quick {
		n /= 4
	}
	rng := stats.NewRNG(cfg.Seed + 99)
	var jobs []*core.Job
	t := int64(3600)
	for i := 0; i < n; i++ {
		t += int64(rng.Intn(1200)) + 60
		size := 1 << rng.Intn(5) // 1..16
		rt := int64(300 + rng.Intn(5400))
		jobs = append(jobs, &core.Job{
			ID: int64(i + 1), Submit: t, Size: size, Runtime: rt,
			Estimate: rt * 2, User: 1 + int64(rng.Intn(8)),
		})
	}
	return jobs
}

// E8CoAllocation reproduces Section 3.1's co-allocation requirement:
// requests for simultaneous capacity across 1, 2, or 4 sites are
// negotiated via advance reservations on reservation-aware locals.
// More parts mean more negotiation constraints: later common starts,
// but the grant rate stays high because the locals honour windows.
func E8CoAllocation(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:     "E8",
		Title:  "co-allocation across sites (easy+win locals)",
		Header: []string{"parts", "granted%", "meanDelay(s)", "p90Delay(s)", "localBSLD"},
	}
	nReq := 40
	if cfg.Quick {
		nReq = 10
	}
	for _, parts := range []int{1, 2, 4} {
		g, err := buildCoAllocGrid(cfg)
		if err != nil {
			return nil, err
		}
		reqs := coAllocStream(cfg, nReq, parts)
		g.SubmitCoAlloc(reqs)
		g.Run(0)

		cas := g.CoAllocations()
		granted := 0
		var delays []float64
		for _, ca := range cas {
			if ca.Granted {
				granted++
			}
			if d := ca.Delay(); d >= 0 {
				delays = append(delays, float64(d))
			}
		}
		ds := stats.Summarize(delays)
		var localBSLD float64
		var localN int
		for _, outs := range g.LocalOutcomes() {
			r := cfg.report("", "", outs, cfg.Nodes/2)
			if r.Finished > 0 {
				localBSLD += r.BSLD.Mean * float64(r.Finished) //schedlint:allow floatsum finished-weighted recombination of per-site collector means; golden-locked arithmetic
				localN += r.Finished
			}
		}
		if localN > 0 {
			localBSLD /= float64(localN)
		}
		t.AddRow(fmt.Sprintf("%d", parts),
			f(100*float64(granted)/float64(len(cas))),
			f0(ds.Mean), f0(ds.P90), f(localBSLD))
		t.Observe(map[string]string{"parts": fmt.Sprintf("%d", parts)}, map[string]float64{
			"grantedPct": 100 * float64(granted) / float64(len(cas)),
			"meanDelay":  ds.Mean, "p90Delay": ds.P90, "localBSLD": localBSLD,
		})
	}
	t.Note("expected shape: grant rate stays high (aware locals); delay grows with parts (harder simultaneous holes); local slowdown rises with co-allocation pressure")
	return []Table{t}, nil
}

func buildCoAllocGrid(cfg Config) (*meta.Grid, error) {
	jobsPerSite := cfg.Jobs / 8
	var specs []meta.SiteSpec
	for i := 0; i < 4; i++ {
		lw, nodes, err := siteWorkload(cfg, i, jobsPerSite, cfg.Nodes/2, 0.5)
		if err != nil {
			return nil, err
		}
		specs = append(specs, meta.SiteSpec{
			Name:      fmt.Sprintf("site%d", i),
			Nodes:     nodes,
			Scheduler: sched.NewEASYWindows(),
			Local:     lw,
		})
	}
	g, err := meta.NewGrid(specs)
	if err != nil {
		return nil, fmt.Errorf("building co-allocation grid: %w", err)
	}
	return g, nil
}

func coAllocStream(cfg Config, n, parts int) []meta.CoAllocRequest {
	rng := stats.NewRNG(cfg.Seed + 123)
	var reqs []meta.CoAllocRequest
	t := int64(7200)
	for i := 0; i < n; i++ {
		t += int64(rng.Intn(3600)) + 300
		reqs = append(reqs, meta.CoAllocRequest{
			ID: int64(i + 1), Submit: t,
			Procs:    parts * (4 + rng.Intn(cfg.Nodes/8)),
			Duration: int64(600 + rng.Intn(3600)),
			Parts:    parts,
		})
	}
	return reqs
}
