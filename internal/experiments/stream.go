package experiments

// Auto-streaming: Execute silently switches a big faithful trace
// replay from the materialize-everything path to the pull-based
// pipeline (trace.StreamSource → sim.RunStream). The switch is
// behavior-preserving — the streamed job sequence is byte-identical to
// the materialized one (see the property tests in
// internal/workload/trace) — so it keys purely on profitability:
// the log is large enough that holding it in memory hurts, and the run
// asks for the faithful replay streaming can deliver.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"parsched/internal/core"
	"parsched/internal/metrics"
	"parsched/internal/sched"
	"parsched/internal/sim"
	"parsched/internal/workload/trace"
)

// autoStreamBytes is the trace-file size above which Execute prefers
// the streaming pipeline. Below it, materializing is cheap and keeps
// the (better-exercised) default path; above it, the O(jobs) workload
// clone per run starts to dominate memory. A var, not a const, so
// tests can lower it to exercise the auto path on small fixtures.
var autoStreamBytes int64 = 32 << 20

// streamSource decides whether the spec can and should run through the
// streaming pipeline, and opens the stream source if so. Streaming
// serves exactly the faithful replay: recorded load (no rescaling),
// variant 0 (no gap resampling), open loop (no feedback), on a log
// whose cleaned order is its file order.
func (rs RunSpec) streamSource() (*trace.StreamSource, bool) {
	if rs.Source.Kind != sourceTrace || rs.Rep != 0 || rs.Sim.Feedback {
		return nil, false
	}
	for _, l := range rs.Loads {
		if l != 0 {
			return nil, false
		}
	}
	fi, err := os.Stat(rs.Source.Arg)
	if err != nil || fi.Size() < autoStreamBytes {
		return nil, false
	}
	src, err := cachedStreamSource(rs.Source.Arg)
	if err != nil || !src.Streamable() {
		// Unreadable or non-streamable logs fall back to the
		// materialized path, which reports errors properly.
		return nil, false
	}
	return src, true
}

// streamCache memoizes the statistics pass per absolute path, the
// streaming analogue of trace.Cached (and with the same contract:
// unbounded, never invalidated, assumes logs that do not change under
// a running process).
var streamCache sync.Map // abs path → *trace.StreamSource

func cachedStreamSource(path string) (*trace.StreamSource, error) {
	key := path
	if abs, err := filepath.Abs(path); err == nil {
		key = abs
	}
	if v, ok := streamCache.Load(key); ok {
		return v.(*trace.StreamSource), nil
	}
	src, err := trace.OpenStream(path)
	if err != nil {
		return nil, err
	}
	streamCache.Store(key, src)
	return src, nil
}

// ExecuteStream runs the RunSpec against an already-opened stream
// source, the streaming sibling of ExecuteSource. Unlike Execute's
// automatic gate it is an explicit request, so incompatible specs are
// errors rather than silent fallbacks: streaming serves only the
// faithful replay (recorded load, variant 0, open loop) of a
// streamable log.
func ExecuteStream(src *trace.StreamSource, rs RunSpec) ([]RunResult, error) {
	if !src.Streamable() {
		return nil, fmt.Errorf("runspec: trace %s is not streamable (records out of order, or feedback references); use the materialized path", src.Path)
	}
	if rs.Rep != 0 {
		return nil, fmt.Errorf("runspec: streaming replay cannot resample variants (rep %d); use the materialized path", rs.Rep)
	}
	if rs.Sim.Feedback {
		return nil, fmt.Errorf("runspec: streaming replay cannot run the closed loop; use the materialized path")
	}
	for _, l := range rs.Loads {
		if l != 0 {
			return nil, fmt.Errorf("runspec: streaming replay cannot rescale load to %g; use the materialized path", l)
		}
	}
	return executeStream(rs, src)
}

// executeStream runs the spec's load points (all faithful-replay
// points, by streamSource's gate) through sim.RunStream.
func executeStream(rs RunSpec, src *trace.StreamSource) ([]RunResult, error) {
	opts, err := rs.Sim.Options()
	if err != nil {
		return nil, err
	}
	loads := rs.Loads
	if len(loads) == 0 {
		loads = []float64{0}
	}
	out := make([]RunResult, 0, len(loads))
	for _, load := range loads {
		s, err := sched.Build(rs.Scheduler)
		if err != nil {
			return nil, err
		}
		col := metrics.NewCollector(rs.Metrics.collectorOptions(s.Name(), src.Name, src.MaxNodes()))
		runOpts := opts
		runOpts.Observers = []sim.Observer{col}
		runOpts.SampleEvery = rs.Metrics.SampleEvery
		runOpts.DiscardOutcomes = true
		jr, err := src.Stream(rs.Jobs)
		if err != nil {
			return nil, err
		}
		// The counting wrapper recovers WorkloadInfo (job count, offered
		// load over the replayed prefix) from the jobs that actually flow
		// past, since no workload object exists to ask.
		cs := &countingStream{js: jr}
		_, err = sim.RunStream(src.Name, src.MaxNodes(), cs, s, runOpts)
		cerr := jr.Close()
		if err != nil {
			return nil, fmt.Errorf("runspec: simulating %s: %w", rs.Scheduler, err)
		}
		if cerr != nil {
			return nil, fmt.Errorf("runspec: trace %s: %w", src.Path, cerr)
		}
		out = append(out, RunResult{
			Load: load,
			Workload: WorkloadInfo{
				Name: src.Name, Jobs: cs.jobs, Nodes: src.MaxNodes(),
				OfferedLoad: cs.offeredLoad(src.MaxNodes()),
			},
			Report: col.Report(),
			Series: col.Series(),
		})
	}
	return out, nil
}

// countingStream passes jobs through while accumulating the aggregate
// figures WorkloadInfo reports, mirroring core.Workload.TotalArea/Span.
type countingStream struct {
	js    core.JobStream
	jobs  int
	area  int64
	first int64
	last  int64
}

func (c *countingStream) Next() (*core.Job, error) {
	j, err := c.js.Next()
	if j != nil {
		if c.jobs == 0 {
			c.first = j.Submit
		}
		c.jobs++
		c.area += int64(j.Size) * j.Runtime
		if end := j.Submit + j.Runtime; end > c.last {
			c.last = end
		}
	}
	return j, err
}

func (c *countingStream) offeredLoad(nodes int) float64 {
	span := c.last - c.first
	if span <= 0 || nodes == 0 {
		return 0
	}
	return float64(c.area) / (float64(span) * float64(nodes))
}
