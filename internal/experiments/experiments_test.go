package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

// runQuick executes one experiment in quick mode.
func runQuick(t *testing.T, id string) []Table {
	t.Helper()
	r, ok := ByID(id)
	if !ok {
		t.Fatalf("unknown experiment %s", id)
	}
	tables, err := r.Run(QuickConfig())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return tables
}

func TestAllRegistered(t *testing.T) {
	if len(All()) != 10 {
		t.Fatalf("experiments = %d, want 10", len(All()))
	}
	if _, ok := ByID("e3"); !ok {
		t.Fatal("ByID should be case-insensitive")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("unknown ID accepted")
	}
}

// renderAll renders a table list to one string, the byte-level
// artifact the determinism contract is stated over.
func renderAll(tables []Table) string {
	var b strings.Builder
	for _, tb := range tables {
		b.WriteString(tb.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestDeterminismSerialRerun locks in the internal/des reproducibility
// contract: the same Config must yield byte-identical tables on every
// run, for every experiment in the battery.
func TestDeterminismSerialRerun(t *testing.T) {
	for _, r := range All() {
		first, err := r.Run(QuickConfig())
		if err != nil {
			t.Fatalf("%s: %v", r.ID, err)
		}
		second, err := r.Run(QuickConfig())
		if err != nil {
			t.Fatalf("%s rerun: %v", r.ID, err)
		}
		if a, b := renderAll(first), renderAll(second); a != b {
			t.Errorf("%s: rerun with identical Config produced different tables", r.ID)
		}
	}
}

// TestDeterminismParallelMatchesSerial: the batch layer sharded over
// many workers must reproduce the serial path byte for byte — derived
// seeds and no shared RNG state make worker order irrelevant.
func TestDeterminismParallelMatchesSerial(t *testing.T) {
	cfg := QuickConfig()
	serial := map[string]string{}
	for _, r := range All() {
		tables, err := r.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", r.ID, err)
		}
		serial[r.ID] = renderAll(tables)
	}
	res := RunBatch(context.Background(), All(), cfg, BatchOptions{Parallel: 8, Reps: 1})
	if len(res.Cells) != len(All()) {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Err != "" {
			t.Fatalf("%s failed in batch: %s", c.ID, c.Err)
		}
		if got := renderAll(c.Tables); got != serial[c.ID] {
			t.Errorf("%s: parallel tables differ from serial run", c.ID)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{ID: "T", Title: "x", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.Note("hello %d", 7)
	s := tb.String()
	if !strings.Contains(s, "hello 7") || !strings.Contains(s, "bb") {
		t.Fatalf("render: %q", s)
	}
}

// cell parses a float cell.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func TestE1Shape(t *testing.T) {
	tables := runQuick(t, "E1")
	if len(tables) != 4 {
		t.Fatalf("E1 tables = %d (one per model)", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) != len(e1Schedulers) {
			t.Fatalf("%s rows = %d", tb.ID, len(tb.Rows))
		}
		byName := map[string][]string{}
		for _, row := range tb.Rows {
			byName[row[0]] = row
		}
		// Headline claim: EASY's mean wait beats FCFS on every model.
		if cell(t, byName["easy"][1]) > cell(t, byName["fcfs"][1]) {
			t.Errorf("%s: easy wait %s worse than fcfs %s", tb.ID, byName["easy"][1], byName["fcfs"][1])
		}
		// Utilization is a valid fraction everywhere.
		for _, row := range tb.Rows {
			u := cell(t, row[6])
			if u <= 0 || u > 1 {
				t.Errorf("%s: utilization %v out of range", tb.ID, u)
			}
		}
	}
}

func TestE2ProducesRankings(t *testing.T) {
	tables := runQuick(t, "E2")
	tb := tables[0]
	if len(tb.Rows) < 4 {
		t.Fatalf("E2 rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if !strings.Contains(row[2], ">") {
			t.Fatalf("ranking cell malformed: %q", row[2])
		}
	}
}

func TestE3TauColumn(t *testing.T) {
	tb := runQuick(t, "E3")[0]
	if len(tb.Rows) != 11 {
		t.Fatalf("E3 rows = %d, want 11 weights", len(tb.Rows))
	}
	// tau at w=0 must be exactly 1 (self comparison); some other w
	// should drop below 1 (the [41] reordering effect).
	if cell(t, tb.Rows[0][2]) != 1 {
		t.Fatalf("tau at w=0 = %s", tb.Rows[0][2])
	}
	dropped := false
	for _, row := range tb.Rows {
		if cell(t, row[2]) < 1 {
			dropped = true
		}
	}
	if !dropped {
		t.Error("no ranking change across weights; E3 effect absent")
	}
}

func TestE4FeedbackThrottles(t *testing.T) {
	tb := runQuick(t, "E4")[0]
	// At the highest load the closed-loop response must be lower than
	// the open-loop one.
	last := tb.Rows[len(tb.Rows)-1]
	open, closed := cell(t, last[1]), cell(t, last[2])
	if closed >= open {
		t.Errorf("closed-loop response %v should beat open-loop %v past saturation", closed, open)
	}
	// Some jobs must actually be linked.
	if cell(t, last[5]) <= 0 {
		t.Error("no jobs linked into feedback chains")
	}
}

func TestE5AwareCutsLostWork(t *testing.T) {
	tb := runQuick(t, "E5")[0]
	// Rows come in pairs (easy, easy+win) per scenario. The paper's
	// claim is about *announced* outages, so the assertion applies to
	// the maintenance-only scenario ("none" failures): the aware
	// scheduler must lose no work there.
	checked := false
	for i := 0; i+1 < len(tb.Rows); i += 2 {
		naive, aware := tb.Rows[i], tb.Rows[i+1]
		if naive[1] != "easy" || aware[1] != "easy+win" {
			t.Fatalf("row order: %v / %v", naive, aware)
		}
		if naive[0] != "none" {
			continue
		}
		checked = true
		if lost := cell(t, aware[5]); lost > 0 {
			t.Errorf("aware scheduler lost %v proc-h to announced maintenance", lost)
		}
		if cell(t, aware[5]) > cell(t, naive[5]) {
			t.Errorf("aware lost work %s exceeds naive %s", aware[5], naive[5])
		}
	}
	if !checked {
		t.Fatal("maintenance-only scenario missing")
	}
}

func TestE6AwareGrantsMore(t *testing.T) {
	tb := runQuick(t, "E6")[0]
	for i := 0; i+1 < len(tb.Rows); i += 2 {
		naive, aware := tb.Rows[i], tb.Rows[i+1]
		if cell(t, aware[2]) < cell(t, naive[2]) {
			t.Errorf("aware grant rate %s below oblivious %s", aware[2], naive[2])
		}
	}
}

func TestE7PredictorsBeatZero(t *testing.T) {
	tables := runQuick(t, "E7")
	acc := tables[0]
	var zeroMAE float64
	maes := map[string]float64{}
	for _, row := range acc.Rows {
		maes[row[0]] = cell(t, row[1])
		if row[0] == "zero" {
			zeroMAE = cell(t, row[1])
		}
	}
	if zeroMAE == 0 {
		t.Skip("no waiting in quick workload")
	}
	// The robust claim (and the paper's point): the category-template
	// predictor extracts real signal; global averages may not.
	if maes["category"] >= zeroMAE {
		t.Errorf("category MAE %v should beat zero %v", maes["category"], zeroMAE)
	}
	// Meta policy table: informed policies beat random on mean wait.
	gain := tables[1]
	waits := map[string]float64{}
	for _, row := range gain.Rows {
		waits[row[0]] = cell(t, row[1])
	}
	if waits["least-work"] > waits["random"] {
		t.Errorf("least-work %v should beat random %v", waits["least-work"], waits["random"])
	}
}

func TestE8GrantRateAndDelays(t *testing.T) {
	tb := runQuick(t, "E8")[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("E8 rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if g := cell(t, row[1]); g < 50 {
			t.Errorf("parts=%s grant rate %v too low for aware locals", row[0], g)
		}
	}
	// Delay grows (weakly) with parts.
	if cell(t, tb.Rows[2][2]) < cell(t, tb.Rows[0][2]) {
		t.Errorf("4-part mean delay %s below 1-part %s", tb.Rows[2][2], tb.Rows[0][2])
	}
}

func TestE9LublinClosestNaiveLacksStructure(t *testing.T) {
	tb := runQuick(t, "E9")[0]
	composite := map[string]float64{}
	dpow2 := map[string]float64{}
	for _, row := range tb.Rows {
		composite[row[0]] = cell(t, row[6])
		dpow2[row[0]] = cell(t, row[3])
	}
	for name, v := range composite {
		if name == "lublin99" {
			continue
		}
		if composite["lublin99"] > v {
			t.Errorf("lublin99 composite %v should be below %s's %v", composite["lublin99"], name, v)
		}
	}
	// The guesswork baseline misses the power-of-two structure worse
	// than every measurement-based model.
	for name, v := range dpow2 {
		if name == "naive" {
			continue
		}
		if dpow2["naive"] < v {
			t.Errorf("naive pow2 gap %v should exceed %s's %v", dpow2["naive"], name, v)
		}
	}
}

func TestE10ScoreboardShape(t *testing.T) {
	tables := runQuick(t, "E10")
	board, fid := tables[0], tables[1]
	if len(board.Rows) == 0 || len(fid.Rows) != 3 {
		t.Fatalf("scoreboard %d rows, fidelity %d rows", len(board.Rows), len(fid.Rows))
	}
	// comm-aware must beat round-robin on the comm-intensive graph on
	// the wide-area grid.
	for _, row := range board.Rows {
		if row[0] == "wide-area-grid" && strings.HasPrefix(row[1], "comm-") {
			if cell(t, row[4]) > cell(t, row[2]) {
				t.Errorf("comm-aware %s worse than round-robin %s on %s", row[4], row[2], row[1])
			}
		}
	}
	// Where the event-driven engine sees a clear difference, the
	// analytic estimate must agree most of the time.
	totalPairs, weightedAgree := 0.0, 0.0
	for _, row := range fid.Rows {
		pairs := cell(t, row[1])
		if row[2] == "-" {
			continue
		}
		totalPairs += pairs
		weightedAgree += pairs * cell(t, row[2])
	}
	if totalPairs == 0 {
		t.Fatal("no distinct pairs at all; fidelity comparison vacuous")
	}
	if weightedAgree/totalPairs < 60 {
		t.Errorf("overall fidelity agreement %.1f%% below 60%%", weightedAgree/totalPairs)
	}
}
