package experiments

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata goldens")

const batteryGolden = "testdata/battery_quick.golden"

// renderBattery runs the whole battery serially at quick scale with one
// replication and renders every table — exactly the stdout a
// `cmd/experiments -quick -parallel 1 -reps 1` run produces, minus the
// per-cell timing banners.
func renderBattery(t *testing.T) string {
	t.Helper()
	res := RunBatch(context.Background(), All(), QuickConfig(),
		BatchOptions{Parallel: 1, Reps: 1})
	var out string
	for _, c := range res.Cells {
		if c.Err != "" {
			t.Fatalf("%s failed: %s", c.ID, c.Err)
		}
		out += renderAll(c.Tables)
	}
	return out
}

// TestBatteryGolden pins the model-based E1–E10 battery output byte for
// byte against the committed golden. Canonical legacy scheduler names
// must keep building behaviorally identical schedulers across registry
// or spec-layer refactors; any intentional change must be reviewed by
// regenerating with `go test ./internal/experiments -run Golden -update`.
func TestBatteryGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick battery")
	}
	got := renderBattery(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(batteryGolden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(batteryGolden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", batteryGolden, len(got))
		return
	}
	want, err := os.ReadFile(batteryGolden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		// Find the first divergence for a readable failure.
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			i++
		}
		lo := i - 120
		if lo < 0 {
			lo = 0
		}
		hiG, hiW := i+120, i+120
		if hiG > len(got) {
			hiG = len(got)
		}
		if hiW > len(want) {
			hiW = len(want)
		}
		t.Fatalf("battery output diverges from golden at byte %d\n got: ...%q...\nwant: ...%q...",
			i, got[lo:hiG], want[lo:hiW])
	}
}
