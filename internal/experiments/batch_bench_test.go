package experiments

import (
	"context"
	"fmt"
	"runtime"
	"testing"
)

// benchBattery runs the full quick E1–E10 battery per iteration at the
// given pool size; compare parallel=1 against parallel=NumCPU to see
// the orchestrator's scaling on the current machine.
func benchBattery(b *testing.B, parallel, reps int) {
	cfg := QuickConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := RunBatch(context.Background(), All(), cfg,
			BatchOptions{Parallel: parallel, Reps: reps})
		if n := len(res.Failed()); n > 0 {
			b.Fatalf("%d cells failed", n)
		}
	}
}

func BenchmarkBatterySerial(b *testing.B)   { benchBattery(b, 1, 1) }
func BenchmarkBatteryParallel(b *testing.B) { benchBattery(b, runtime.NumCPU(), 1) }

func BenchmarkBatteryParallelReps(b *testing.B) {
	for _, reps := range []int{2, 4} {
		b.Run(fmt.Sprintf("reps=%d", reps), func(b *testing.B) {
			benchBattery(b, runtime.NumCPU(), reps)
		})
	}
}
