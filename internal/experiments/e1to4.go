package experiments

import (
	"fmt"
	"strings"

	"parsched/internal/core"
	"parsched/internal/metrics"
	"parsched/internal/model/registry"
	"parsched/internal/sim"
	"parsched/internal/stats"
)

// e1Schedulers is the scheduler family compared throughout.
var e1Schedulers = []string{"fcfs", "firstfit", "sjf", "lxf", "easy", "cons"}

// E1SchedulerComparison reproduces the community's standard evaluation:
// the scheduler family on each cited workload model at a fixed offered
// load, reporting the full metric battery (paper Section 2.1: "now
// practically all evaluations of parallel job schedulers rely on real
// data" — here, on the models fitted to that data).
func E1SchedulerComparison(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	load := cfg.fixedLoad(0.7)
	// On a trace substrate the per-model loop collapses to the one real
	// log: there is a single recorded workload to rescale, and its name
	// labels the table where the model name otherwise would.
	substrates := []string{"feitelson96", "jann97", "lublin99", "downey97"}
	if kind, _ := cfg.sourceSpec(); kind == sourceTrace {
		substrates = []string{substrateLabel(cfg)}
	}
	scheds, err := cfg.schedList(e1Schedulers)
	if err != nil {
		return nil, err
	}
	var tables []Table
	for _, modelName := range substrates {
		w, err := genWorkload(modelName, cfg, load)
		if err != nil {
			return nil, err
		}
		header := []string{"sched", "meanWait(s)", "meanResp(s)", "meanBSLD", "geoBSLD", "p95Wait", "util"}
		if cfg.Percentiles {
			header = append(header, "p50Wait", "p99Wait")
		}
		t := Table{
			ID:     "E1/" + modelName,
			Title:  fmt.Sprintf("schedulers on %s (load %.2g, %d jobs, %d nodes)", modelName, load, cfg.Jobs, cfg.Nodes),
			Header: header,
		}
		noteLoadShortfall(&t, cfg, w, load)
		for _, sn := range scheds {
			r, err := runOn(cfg, w, sn, sim.Options{})
			if err != nil {
				return nil, err
			}
			row := []string{sn, f0(r.Wait.Mean), f0(r.Response.Mean), f(r.BSLD.Mean),
				f(r.GeoBSLD), f0(r.Wait.P90), f3(r.Utilization)}
			if cfg.Percentiles {
				row = append(row, f0(r.Wait.Median), f0(r.Wait.P99))
			}
			t.AddRow(row...)
			// The rendered header says "p95Wait" (kept verbatim for
			// output compatibility) but the value is the 90th
			// percentile; the typed metric carries the truthful name.
			values := map[string]float64{
				"meanWait": r.Wait.Mean, "meanResp": r.Response.Mean,
				"meanBSLD": r.BSLD.Mean, "geoBSLD": r.GeoBSLD,
				"p90Wait": r.Wait.P90, "util": r.Utilization,
			}
			if cfg.Percentiles {
				values["p50Wait"] = r.Wait.Median
				values["p99Wait"] = r.Wait.P99
			}
			t.Observe(map[string]string{"model": modelName, "sched": sn}, values)
		}
		t.Note("expected shape: easy/cons dominate fcfs on wait and slowdown; firstfit best raw wait but starves large jobs")
		tables = append(tables, t)
	}
	return tables, nil
}

// E2MetricConflict reproduces the observation of Ghare & Leutenegger
// [30] cited in Section 1.2: comparing two schedulers can yield
// contradicting results depending on whether response time or slowdown
// is used. The experiment computes rankings of the scheduler family
// under four metrics across a load sweep and reports every pairwise
// flip it finds.
func E2MetricConflict(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:     "E2",
		Title:  fmt.Sprintf("scheduler rankings per metric (%s workload)", substrateLabel(cfg)),
		Header: []string{"load", "metric", "ranking (best to worst)"},
	}
	flips := map[string]bool{}
	loads := []float64{0.6, 0.8, 0.95}
	if cfg.Quick {
		loads = []float64{0.8}
	}
	loads = cfg.sweepLoads(loads)
	filtered, err := cfg.schedList(e1Schedulers)
	if err != nil {
		return nil, err
	}
	for _, load := range loads {
		w, err := substrateWorkload(cfg, load)
		if err != nil {
			return nil, err
		}
		noteLoadShortfall(&t, cfg, w, load)
		names := filtered
		var reports []metrics.Report
		for _, sn := range names {
			r, err := runOn(cfg, w, sn, sim.Options{})
			if err != nil {
				return nil, err
			}
			reports = append(reports, r)
		}
		// name is the rendered label (kept verbatim, including the
		// legacy "p95Wait" misnomer, for output compatibility); label
		// is the truthful name the typed metric stream exports.
		metricSet := []struct {
			name  string
			label string
			score func(metrics.Report) float64
		}{
			{"meanResponse", "meanResponse", func(r metrics.Report) float64 { return r.Response.Mean }},
			{"meanBSLD", "meanBSLD", func(r metrics.Report) float64 { return r.BSLD.Mean }},
			{"geoBSLD", "geoBSLD", func(r metrics.Report) float64 { return r.GeoBSLD }},
			{"p95Wait", "p90Wait", func(r metrics.Report) float64 { return r.Wait.P90 }},
		}
		rankings := map[string][]string{}
		for _, ms := range metricSet {
			scores := make([]float64, len(reports))
			for i, r := range reports {
				scores[i] = ms.score(r)
			}
			ranking := rankOf(names, scores)
			rankings[ms.name] = ranking
			t.AddRow(f(load), ms.name, strings.Join(ranking, " > "))
			for i, sn := range names {
				t.Observe(map[string]string{"load": f(load), "metric": ms.label, "sched": sn},
					map[string]float64{"score": scores[i]})
			}
		}
		// Find pairwise flips between meanResponse and meanBSLD.
		pos := func(ranking []string, n string) int {
			for i, x := range ranking {
				if x == n {
					return i
				}
			}
			return -1
		}
		for i := 0; i < len(names); i++ {
			for k := i + 1; k < len(names); k++ {
				a, b := names[i], names[k]
				d1 := pos(rankings["meanResponse"], a) - pos(rankings["meanResponse"], b)
				d2 := pos(rankings["meanBSLD"], a) - pos(rankings["meanBSLD"], b)
				if d1*d2 < 0 {
					flips[fmt.Sprintf("%s vs %s flips between meanResponse and meanBSLD at load %.2f", a, b, load)] = true
				}
			}
		}
	}
	if len(flips) == 0 {
		t.Note("no ranking conflicts found at these loads (unexpected; see EXPERIMENTS.md)")
	}
	for msg := range flips {
		t.Notes = append(t.Notes, msg)
	}
	sortStrings(t.Notes)
	return []Table{t}, nil
}

// E3ObjectiveWeights reproduces Krallmann/Schwiegelshohn/Yahyapour [41]
// cited in Section 1.2: "significant differences in the ranking of
// various scheduling algorithms if applied to objective functions that
// only differ in the selection of a weight". The composite objective
// mixes the two user-centric measures the workshop's own results show
// disagreeing (E2): score = w·(mean wait) + (1−w)·(mean bounded
// slowdown), each normalized by the FCFS baseline so the weight is
// scale-free.
func E3ObjectiveWeights(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	load := cfg.fixedLoad(0.85)
	w, err := substrateWorkload(cfg, load)
	if err != nil {
		return nil, err
	}
	names, err := cfg.schedList(e1Schedulers)
	if err != nil {
		return nil, err
	}
	var reports []metrics.Report
	for _, sn := range names {
		r, err := runOn(cfg, w, sn, sim.Options{})
		if err != nil {
			return nil, err
		}
		reports = append(reports, r)
	}
	// Normalize against the FCFS baseline.
	var baseWait, baseBSLD float64
	for _, r := range reports {
		if r.Scheduler == "fcfs" {
			baseWait, baseBSLD = r.Wait.Mean, r.BSLD.Mean
		}
	}
	if baseWait <= 0 {
		baseWait = 1
	}
	if baseBSLD <= 0 {
		baseBSLD = 1
	}
	t := Table{
		ID:     "E3",
		Title:  fmt.Sprintf("ranking under weighted objective w*wait + (1-w)*bsld (FCFS-normalized), %s load %.2g", substrateLabel(cfg), load),
		Header: []string{"w", "ranking (best to worst)", "tau vs w=0"},
	}
	noteLoadShortfall(&t, cfg, w, load)
	var basePos []float64
	for wgt := 0.0; wgt <= 1.001; wgt += 0.1 {
		scores := make([]float64, len(reports))
		for i, r := range reports {
			scores[i] = wgt*(r.Wait.Mean/baseWait) + (1-wgt)*(r.BSLD.Mean/baseBSLD)
		}
		ranking := rankOf(names, scores)
		pos := positions(names, ranking)
		if wgt == 0 {
			basePos = pos
		}
		// Rank correlation on positions (ties already broken
		// deterministically by rankOf): tau = 1 iff identical order.
		tau := stats.KendallTau(negateF(basePos), negateF(pos))
		t.AddRow(f(wgt), strings.Join(ranking, " > "), f3(tau))
		t.Observe(map[string]string{"w": f(wgt)}, map[string]float64{"tau": tau})
	}
	t.Note("tau < 1 at any w confirms the [41] effect: the metric weight alone reorders schedulers")
	return []Table{t}, nil
}

// positions maps each name to its index in the ranking.
func positions(names, ranking []string) []float64 {
	out := make([]float64, len(names))
	for i, n := range names {
		for k, r := range ranking {
			if r == n {
				out[i] = float64(k)
				break
			}
		}
	}
	return out
}

func negateF(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = -v
	}
	return out
}

// E4Feedback reproduces Section 2.2 "Including feedback": the same
// workload replayed open loop versus closed loop (preceding-job +
// think-time dependencies inferred with the same-user heuristic the
// paper describes). The feedback run self-throttles: as the machine
// saturates, dependent submittals shift later, so response times grow
// far more slowly than the open-loop replay suggests.
func E4Feedback(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:     "E4",
		Title:  fmt.Sprintf("open vs closed loop (%s + inferred think-time chains, easy)", substrateLabel(cfg)),
		Header: []string{"load", "openMeanResp", "closedMeanResp", "openBSLD", "closedBSLD", "linked%"},
	}
	loads := []float64{0.7, 0.9, 1.1, 1.3}
	if cfg.Quick {
		loads = []float64{0.9, 1.3}
	}
	loads = cfg.sweepLoads(loads)
	for _, load := range loads {
		w, err := substrateWorkload(cfg, load)
		if err != nil {
			return nil, err
		}
		noteLoadShortfall(&t, cfg, w, load)
		rep := core.InferFeedback(w, 3600)
		open, err := runOn(cfg, w, "easy", sim.Options{})
		if err != nil {
			return nil, err
		}
		closed, err := runOn(cfg, w, "easy", sim.Options{Feedback: true})
		if err != nil {
			return nil, err
		}
		linked := 100 * float64(rep.LinkedJobs) / float64(len(w.Jobs))
		t.AddRow(f(load), f0(open.Response.Mean), f0(closed.Response.Mean),
			f(open.BSLD.Mean), f(closed.BSLD.Mean), f(linked))
		t.Observe(map[string]string{"load": f(load)}, map[string]float64{
			"openMeanResp": open.Response.Mean, "closedMeanResp": closed.Response.Mean,
			"openBSLD": open.BSLD.Mean, "closedBSLD": closed.BSLD.Mean, "linkedPct": linked,
		})
	}
	t.Note("expected shape: closed-loop response and slowdown sit below the open-loop replay past saturation, by a margin that grows with the linked fraction (feedback throttles arrivals)")
	return []Table{t}, nil
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for k := i; k > 0 && xs[k-1] > xs[k]; k-- {
			xs[k-1], xs[k] = xs[k], xs[k-1]
		}
	}
}

// ensure registry import is used even if model lists change.
var _ = registry.Names
