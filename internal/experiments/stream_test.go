package experiments

import (
	"path/filepath"
	"reflect"
	"testing"

	"parsched/internal/sched"
	"parsched/internal/swf"
)

// cleanedTrace writes the cleaned (streamable) form of the trace
// fixture to a temp file.
func cleanedTrace(t *testing.T) string {
	t.Helper()
	log, err := swf.ReadFile("../workload/trace/testdata/mini.swf")
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := swf.Clean(log)
	path := filepath.Join(t.TempDir(), "mini.cln.swf")
	if err := swf.WriteFile(path, clean); err != nil {
		t.Fatal(err)
	}
	return path
}

func traceSpec(path string) RunSpec {
	return RunSpec{
		Scheduler: sched.Spec{Family: "easy"},
		Source:    Source{Kind: sourceTrace, Arg: path},
	}
}

func TestExecuteAutoStreamMatchesMaterialized(t *testing.T) {
	path := cleanedTrace(t)

	// Force the materialized path first (threshold far above the file),
	// then the streaming path (threshold at zero), and require identical
	// results — the auto-stream gate must be invisible in the output.
	saved := autoStreamBytes
	defer func() { autoStreamBytes = saved }()

	autoStreamBytes = 1 << 60
	if _, ok := traceSpec(path).streamSource(); ok {
		t.Fatal("small file must not trigger streaming")
	}
	mat, err := Execute(traceSpec(path))
	if err != nil {
		t.Fatalf("materialized Execute: %v", err)
	}

	autoStreamBytes = 0
	if _, ok := traceSpec(path).streamSource(); !ok {
		t.Fatal("streamable trace above threshold must trigger streaming")
	}
	str, err := Execute(traceSpec(path))
	if err != nil {
		t.Fatalf("streaming Execute: %v", err)
	}

	if !reflect.DeepEqual(mat, str) {
		t.Fatalf("results diverge:\nmaterialized %+v\nstreamed     %+v", mat, str)
	}
}

func TestAutoStreamGateRespectsRunShape(t *testing.T) {
	path := cleanedTrace(t)
	saved := autoStreamBytes
	defer func() { autoStreamBytes = saved }()
	autoStreamBytes = 0

	base := traceSpec(path)
	if _, ok := base.streamSource(); !ok {
		t.Fatal("baseline spec should stream")
	}

	cases := map[string]RunSpec{}
	loaded := base
	loaded.Loads = []float64{0.8} // rescaling needs the materialized workload
	cases["rescaled load"] = loaded
	rep := base
	rep.Rep = 2 // gap resampling needs the materialized workload
	cases["replication variant"] = rep
	fb := base
	fb.Sim.Feedback = true // closed loop is unsupported in streaming
	cases["feedback"] = fb
	model := base
	model.Source = Source{Kind: sourceModel, Arg: defaultSubstrate}
	cases["model source"] = model

	for name, rs := range cases {
		if _, ok := rs.streamSource(); ok {
			t.Errorf("%s: must fall back to the materialized path", name)
		}
	}

	// Truncation is compatible with streaming (a prefix of the stream).
	trunc := base
	trunc.Jobs = 5
	if _, ok := trunc.streamSource(); !ok {
		t.Error("truncated replay should still stream")
	}
	res, err := Execute(trunc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Workload.Jobs != 5 {
		t.Fatalf("truncated stream run reported %+v", res)
	}
}
