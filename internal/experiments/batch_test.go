package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeRunner builds a runner that records the seed it was called with
// into a one-row table with a typed metric.
func fakeRunner(id string, fn func(cfg Config) ([]Table, error)) Runner {
	return Runner{ID: id, Title: "fake " + id, Run: fn}
}

func seedEcho(id string) Runner {
	return fakeRunner(id, func(cfg Config) ([]Table, error) {
		t := Table{ID: id, Title: "seed echo", Header: []string{"seed"}}
		t.AddRow(fmt.Sprintf("%d", cfg.Seed))
		t.Observe(map[string]string{"runner": id}, map[string]float64{"seed": float64(cfg.Seed)})
		return []Table{t}, nil
	})
}

func TestRepSeedDerivation(t *testing.T) {
	if RepSeed(1999, 0) != 1999 {
		t.Fatalf("rep 0 must keep the base seed, got %d", RepSeed(1999, 0))
	}
	seen := map[int64]bool{}
	for rep := 0; rep < 100; rep++ {
		s := RepSeed(1999, rep)
		if seen[s] {
			t.Fatalf("seed collision at rep %d", rep)
		}
		seen[s] = true
	}
	// Intra-experiment offsets (cfg.Seed + small constants, site
	// indices, +10007) must not cross into the next replication's
	// seed space.
	if SeedStride <= 20000 {
		t.Fatalf("SeedStride %d too small to separate intra-experiment offsets", SeedStride)
	}
}

func TestCellsDeterministicOrder(t *testing.T) {
	runners := []Runner{seedEcho("A"), seedEcho("B")}
	cells := Cells(runners, Config{Seed: 7}, 3)
	if len(cells) != 6 {
		t.Fatalf("cells = %d, want 6", len(cells))
	}
	want := []struct {
		id  string
		rep int
	}{{"A", 0}, {"A", 1}, {"A", 2}, {"B", 0}, {"B", 1}, {"B", 2}}
	for i, w := range want {
		if cells[i].Runner.ID != w.id || cells[i].Rep != w.rep {
			t.Fatalf("cell %d = %s rep %d, want %s rep %d",
				i, cells[i].Runner.ID, cells[i].Rep, w.id, w.rep)
		}
		if cells[i].Seed != RepSeed(7, w.rep) {
			t.Fatalf("cell %d seed = %d", i, cells[i].Seed)
		}
	}
}

func TestBatchSeedPlumbing(t *testing.T) {
	res := RunBatch(context.Background(), []Runner{seedEcho("A")},
		Config{Seed: 42}, BatchOptions{Parallel: 3, Reps: 4})
	if len(res.Cells) != 4 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for rep, c := range res.Cells {
		want := fmt.Sprintf("%d", RepSeed(42, rep))
		if c.Tables[0].Rows[0][0] != want {
			t.Errorf("rep %d ran with seed %s, want %s", rep, c.Tables[0].Rows[0][0], want)
		}
	}
}

// TestBatchErrorIsolation: a failing runner — by error or by panic —
// is recorded on its own cell and does not stop the battery.
func TestBatchErrorIsolation(t *testing.T) {
	boom := fakeRunner("BOOM", func(cfg Config) ([]Table, error) {
		return nil, errors.New("bad model name")
	})
	panics := fakeRunner("PANIC", func(cfg Config) ([]Table, error) {
		panic("exploded")
	})
	res := RunBatch(context.Background(), []Runner{boom, seedEcho("OK"), panics},
		Config{Seed: 1}, BatchOptions{Parallel: 2, Reps: 1})
	if len(res.Cells) != 3 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	if !strings.Contains(res.Cells[0].Err, "bad model name") {
		t.Errorf("error cell: %q", res.Cells[0].Err)
	}
	if res.Cells[1].Err != "" || len(res.Cells[1].Tables) != 1 {
		t.Errorf("healthy cell damaged by neighbours: %+v", res.Cells[1])
	}
	if !strings.Contains(res.Cells[2].Err, "panic: exploded") {
		t.Errorf("panic not recovered into cell error: %q", res.Cells[2].Err)
	}
	if got := len(res.Failed()); got != 2 {
		t.Errorf("Failed() = %d, want 2", got)
	}
}

func TestBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	slow := fakeRunner("SLOW", func(cfg Config) ([]Table, error) {
		once.Do(func() { close(started) })
		<-release
		return []Table{{ID: "SLOW"}}, nil
	})
	go func() {
		<-started
		cancel()
		close(release)
	}()
	// One worker: the first cell blocks until cancel, the rest must be
	// skipped with the context error.
	res := RunBatch(ctx, []Runner{slow, seedEcho("NEVER1"), seedEcho("NEVER2")},
		Config{Seed: 1}, BatchOptions{Parallel: 1, Reps: 1})
	if res.Cells[0].Err != "" {
		t.Errorf("in-flight cell should finish normally, got %q", res.Cells[0].Err)
	}
	for _, c := range res.Cells[1:] {
		if !strings.Contains(c.Err, context.Canceled.Error()) {
			t.Errorf("cell %s: err %q, want context.Canceled", c.ID, c.Err)
		}
	}
}

func TestBatchBoundedConcurrency(t *testing.T) {
	const limit = 3
	var inFlight, peak atomic.Int64
	gate := make(chan struct{})
	var runners []Runner
	for i := 0; i < 12; i++ {
		runners = append(runners, fakeRunner(fmt.Sprintf("R%d", i),
			func(cfg Config) ([]Table, error) {
				n := inFlight.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				<-gate
				inFlight.Add(-1)
				return []Table{{ID: "x"}}, nil
			}))
	}
	go func() {
		// Release everyone once the pool has had time to saturate.
		for i := 0; i < 12; i++ {
			gate <- struct{}{}
		}
	}()
	RunBatch(context.Background(), runners, Config{Seed: 1}, BatchOptions{Parallel: limit, Reps: 1})
	if p := peak.Load(); p > limit {
		t.Errorf("peak concurrency %d exceeds pool size %d", p, limit)
	}
}

func TestSummaryAggregation(t *testing.T) {
	// The metric equals the replication index: rep r runs with seed
	// base + r*SeedStride, so value = (seed-base)/SeedStride.
	counter := fakeRunner("C", func(cfg Config) ([]Table, error) {
		t := Table{ID: "C", Header: []string{"v"}}
		rep := float64(cfg.Seed-100) / float64(SeedStride)
		t.AddRow(f(rep))
		t.Observe(map[string]string{"k": "x"}, map[string]float64{"v": rep})
		return []Table{t}, nil
	})
	res := RunBatch(context.Background(), []Runner{counter},
		Config{Seed: 100}, BatchOptions{Parallel: 2, Reps: 5})
	if len(res.Summaries) != 1 {
		t.Fatalf("summaries = %d, want 1", len(res.Summaries))
	}
	s := res.Summaries[0]
	if s.Experiment != "C" || s.Table != "C" || s.Name != "v" || s.Labels["k"] != "x" {
		t.Fatalf("summary identity wrong: %+v", s)
	}
	if s.N != 5 || s.Mean != 2 { // mean of 0..4
		t.Errorf("n=%d mean=%v, want n=5 mean=2", s.N, s.Mean)
	}
	if s.CI95 <= 0 || s.Std <= 0 {
		t.Errorf("dispersion missing: std=%v ci95=%v", s.Std, s.CI95)
	}
	// Failed cells must be excluded from aggregation, not zero-filled.
	flaky := fakeRunner("F", func(cfg Config) ([]Table, error) {
		if cfg.Seed != 100 {
			return nil, errors.New("down")
		}
		t := Table{ID: "F"}
		t.Observe(nil, map[string]float64{"v": 7})
		return []Table{t}, nil
	})
	res = RunBatch(context.Background(), []Runner{flaky},
		Config{Seed: 100}, BatchOptions{Parallel: 1, Reps: 3})
	if len(res.Summaries) != 1 || res.Summaries[0].N != 1 || res.Summaries[0].Mean != 7 {
		t.Errorf("failed reps leaked into summary: %+v", res.Summaries)
	}
}

func TestSummaryTablesRender(t *testing.T) {
	rows := []SummaryRow{
		{Experiment: "E1", Table: "E1/x", Labels: map[string]string{"sched": "easy"}, Name: "meanWait", N: 3, Mean: 10, Std: 1, CI95: 1.13},
		{Experiment: "E2", Table: "E2", Name: "tau", N: 3, Mean: 0.9},
	}
	tables := SummaryTables(rows)
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	if tables[0].ID != "E1/summary" || tables[1].ID != "E2/summary" {
		t.Fatalf("order: %s, %s", tables[0].ID, tables[1].ID)
	}
	if !strings.Contains(tables[0].String(), "sched=easy") {
		t.Errorf("labels missing from render:\n%s", tables[0].String())
	}
}

func TestGenWorkloadBadModel(t *testing.T) {
	if _, err := genWorkload("no-such-model", QuickConfig(), 0.7); err == nil {
		t.Fatal("bad model name must return an error, not panic")
	}
}

// TestOnCellCallback: every cell is reported exactly once, concurrently.
func TestOnCellCallback(t *testing.T) {
	var calls atomic.Int64
	RunBatch(context.Background(), []Runner{seedEcho("A"), seedEcho("B")},
		Config{Seed: 1}, BatchOptions{Parallel: 4, Reps: 3,
			OnCell: func(c CellResult) { calls.Add(1) }})
	if calls.Load() != 6 {
		t.Errorf("OnCell calls = %d, want 6", calls.Load())
	}
}
