package experiments

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"parsched/internal/sched"
	"parsched/internal/sim"
)

func TestParseSourceForms(t *testing.T) {
	cases := []struct {
		in   string
		want Source
	}{
		{"", Source{Kind: "model", Arg: "lublin99"}},
		{"model:jann97", Source{Kind: "model", Arg: "jann97"}},
		{"trace:logs/kth.swf", Source{Kind: "trace", Arg: "logs/kth.swf"}},
		{"naive", Source{Kind: "model", Arg: "naive"}},
	}
	for _, c := range cases {
		if got := ParseSource(c.in); got != c.want {
			t.Errorf("ParseSource(%q) = %+v, want %+v", c.in, got, c.want)
		}
		// String round-trips through ParseSource.
		if back := ParseSource(c.want.String()); back != c.want {
			t.Errorf("source %v round-trips to %v", c.want, back)
		}
	}
}

// TestRunSpecJSONRoundTrip: a RunSpec serializes losslessly — the
// acceptance criterion that lets run configurations live in files.
func TestRunSpecJSONRoundTrip(t *testing.T) {
	rs := RunSpec{
		Scheduler: sched.MustParse("easy(reserve=2, window)"),
		Source:    ParseSource("model:lublin99"),
		Jobs:      1200,
		Nodes:     64,
		Seed:      42,
		Rep:       3,
		Loads:     []float64{0.5, 0.7, 0.9},
		Sim: SimSpec{
			Feedback:         true,
			PerfectEstimates: true,
			DropKilled:       true,
			Horizon:          86400,
			OutagePath:       "machine.outages",
		},
		Metrics: MetricsSpec{
			Tau:        60,
			WarmupJobs: 100, CooldownJobs: 50,
			WarmupTime: 3600, CooldownTime: 864000,
			Sketch:      true,
			SampleEvery: 600,
		},
	}
	data, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	// The scheduler rides as its canonical spec string.
	if !strings.Contains(string(data), `"easy(reserve=2, window)"`) {
		t.Fatalf("scheduler not serialized as spec string: %s", data)
	}
	var back RunSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, rs) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", back, rs)
	}
}

func TestRunSpecValidate(t *testing.T) {
	good := RunSpec{Scheduler: sched.MustParse("easy"), Source: ParseSource("model:naive")}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := RunSpec{Scheduler: sched.Spec{Family: "nope"}, Source: ParseSource("")}
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown scheduler family accepted")
	}
	badModel := RunSpec{Scheduler: sched.MustParse("easy"), Source: ParseSource("model:nope")}
	if err := badModel.Validate(); err == nil {
		t.Fatal("unknown model accepted")
	}
	badKind := RunSpec{Scheduler: sched.MustParse("easy"), Source: Source{Kind: "ftp", Arg: "x"}}
	if err := badKind.Validate(); err == nil || !strings.Contains(err.Error(), "unknown source kind") {
		t.Fatalf("unknown source kind: %v", err)
	}
}

func TestExecuteModelSource(t *testing.T) {
	rs := RunSpec{
		Scheduler: sched.MustParse("easy"),
		Source:    ParseSource("model:lublin99"),
		Jobs:      300, Nodes: 32, Seed: 5,
		Loads: []float64{0.6, 0.9},
	}
	results, err := Execute(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want one per load", len(results))
	}
	for _, r := range results {
		if r.Workload.Jobs != 300 || r.Workload.Nodes != 32 {
			t.Fatalf("workload info: %+v", r.Workload)
		}
		if r.Report.Finished != 300 {
			t.Fatalf("finished %d/300 at load %v", r.Report.Finished, r.Load)
		}
	}
	// Determinism: the same RunSpec is the same run.
	again, err := Execute(rs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(results, again) {
		t.Fatal("identical RunSpec produced different results")
	}
}

func TestExecuteTraceSource(t *testing.T) {
	rs := RunSpec{
		Scheduler: sched.MustParse("fcfs"),
		Source:    ParseSource("trace:../workload/trace/testdata/mini.swf"),
	}
	results, err := Execute(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Workload.Jobs == 0 {
		t.Fatal("empty trace workload")
	}
	if results[0].Load != 0 {
		t.Fatal("default load point should be 0 (as recorded)")
	}
}

// TestExecuteMetricsSpec: the RunSpec's metric options reach the
// streaming collector — tau is recorded, warmup truncates, and the
// sampler produces a time series.
func TestExecuteMetricsSpec(t *testing.T) {
	base := RunSpec{
		Scheduler: sched.MustParse("easy"),
		Source:    ParseSource("model:lublin99"),
		Jobs:      300, Nodes: 32, Seed: 5,
		Loads: []float64{0.8},
	}
	plain, err := Execute(base)
	if err != nil {
		t.Fatal(err)
	}
	r0 := plain[0].Report
	if r0.Tau != 10 || r0.Truncated != 0 {
		t.Fatalf("default metrics spec: %+v", r0)
	}
	if plain[0].Series != nil {
		t.Fatal("series without SampleEvery")
	}

	rich := base
	rich.Metrics = MetricsSpec{Tau: 60, WarmupJobs: 50, SampleEvery: 3600}
	got, err := Execute(rich)
	if err != nil {
		t.Fatal(err)
	}
	r := got[0].Report
	if r.Tau != 60 {
		t.Fatalf("tau not recorded: %+v", r)
	}
	if r.Truncated != 50 || r.Finished != r0.Finished-50 {
		t.Fatalf("warmup not applied: truncated %d, finished %d (full run %d)",
			r.Truncated, r.Finished, r0.Finished)
	}
	if got[0].Series == nil || len(got[0].Series.Samples) == 0 || got[0].Series.Interval != 3600 {
		t.Fatalf("series = %+v", got[0].Series)
	}
	// Determinism holds with the enriched pipeline too.
	again, err := Execute(rich)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, again) {
		t.Fatal("metrics-spec run not deterministic")
	}
}

func TestParseWarmup(t *testing.T) {
	cases := []struct {
		in   string
		jobs int
		secs int64
		ok   bool
	}{
		{"500", 500, 0, true},
		{" 42 ", 42, 0, true},
		{"3600s", 0, 3600, true},
		{"2h", 0, 7200, true},
		{"1.5h", 0, 5400, true},
		{"30m", 0, 1800, true},
		{"0", 0, 0, false},
		{"-5", 0, 0, false},
		{"abc", 0, 0, false},
		{"-2h", 0, 0, false},
		{"", 0, 0, false},
		{"1e19h", 0, 0, false}, // int64 overflow must error, not wrap
		{"0.5s", 0, 0, false},  // sub-second durations must error, not truncate to 0
	}
	for _, c := range cases {
		jobs, secs, err := ParseWarmup(c.in)
		if (err == nil) != c.ok || jobs != c.jobs || secs != c.secs {
			t.Errorf("ParseWarmup(%q) = (%d, %d, %v), want (%d, %d, ok=%v)",
				c.in, jobs, secs, err, c.jobs, c.secs, c.ok)
		}
	}
}

// TestConfigMetricOptionsReachRunOn: the battery-level -warmup and
// -bsld-tau knobs flow through the shared report funnel.
func TestConfigMetricOptionsReachRunOn(t *testing.T) {
	cfg := QuickConfig()
	w, err := substrateWorkload(cfg, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	def, err := runOn(cfg, w, "easy", sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm := cfg
	warm.Metrics.WarmupJobs = 100
	warm.Metrics.Tau = 3600
	r, err := runOn(warm, w, "easy", sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Truncated != 100 || r.Finished != def.Finished-100 {
		t.Fatalf("warmup not threaded: %+v", r)
	}
	if r.Tau != 3600 || r.BSLD.Mean >= def.BSLD.Mean {
		t.Fatalf("tau=3600 should shrink mean BSLD: %v -> %v", def.BSLD.Mean, r.BSLD.Mean)
	}
}

func TestSchedListFilter(t *testing.T) {
	def := []string{"fcfs", "sjf", "easy", "easy+win"}

	cfg := Config{}
	got, err := cfg.schedList(def)
	if err != nil || !reflect.DeepEqual(got, def) {
		t.Fatalf("no filter: %v, %v", got, err)
	}

	// Canonical matching: "easy(window)" selects the legacy "easy+win".
	cfg = Config{Scheds: []string{"easy(window)", "fcfs"}}
	got, err = cfg.schedList(def)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"fcfs", "easy+win"}) {
		t.Fatalf("filtered: %v", got)
	}

	cfg = Config{Scheds: []string{"gang"}}
	if _, err := cfg.schedList(def); err == nil {
		t.Fatal("empty intersection accepted")
	}
	cfg = Config{Scheds: []string{"not-a-sched"}}
	if _, err := cfg.schedList(def); err == nil {
		t.Fatal("malformed filter accepted")
	}
}

// TestE1HonoursSchedFilter: the restriction reaches the tables.
func TestE1HonoursSchedFilter(t *testing.T) {
	cfg := QuickConfig()
	cfg.Scheds = []string{"easy", "fcfs"}
	r, _ := ByID("E1")
	tables, err := r.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		if len(tb.Rows) != 2 {
			t.Fatalf("%s rows = %d, want 2 (filtered)", tb.ID, len(tb.Rows))
		}
	}
}
