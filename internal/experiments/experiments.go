// Package experiments implements the paper's evaluation programme as
// ten numbered, reproducible experiments (E1–E10), each mapped in
// DESIGN.md to the section of the paper that motivates it. Every
// experiment returns formatted tables; cmd/experiments prints them and
// EXPERIMENTS.md records the measured results against the paper's
// qualitative claims.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"parsched/internal/core"
	"parsched/internal/metrics"
	"parsched/internal/model"
	"parsched/internal/model/lublin"
	"parsched/internal/model/registry"
	"parsched/internal/sched"
	"parsched/internal/sim"
	"parsched/internal/workload/trace"
)

// Config scales the experiments. Quick shrinks workloads so the whole
// battery runs in seconds (used by tests and benchmarks); the default
// sizes match the tables recorded in EXPERIMENTS.md.
type Config struct {
	Seed  int64
	Jobs  int
	Nodes int
	Quick bool

	// Source selects the workload substrate the battery runs on:
	//
	//	""                 the per-experiment defaults (lublin99 et al.)
	//	"model:<name>"     a named statistical model as the substrate
	//	"trace:<path>"     a real SWF log, cleaned, rescaled to each
	//	                   experiment's load points, and resampled per
	//	                   replication (internal/workload/trace)
	//
	// With a trace source, Nodes follows the trace's machine size and
	// Jobs truncates the trace (0 or larger than the log = all jobs).
	Source string
	// Loads overrides the experiments' load points (-scale-load):
	// load sweeps run at exactly these values; experiments pinned to a
	// single load run at the override closest to their default. Empty
	// keeps the defaults, byte-identically.
	Loads []float64
	// Rep is the replication index of this run (0-based). The batch
	// layer sets it alongside the derived seed; trace sources replay
	// rep 0 faithfully and resample arrivals for rep > 0. Model
	// sources ignore it (the derived seed already varies).
	Rep int
	// Scheds restricts which schedulers the comparison experiments
	// (E1–E3, E5, E6) run, as spec strings in the internal/sched
	// grammar. Specs are matched canonically, so "easy(window)"
	// selects the default list's "easy+win". Empty runs every default
	// scheduler, byte-identically. A filter that empties an
	// experiment's list is an error — a comparison with no subjects is
	// not a run.
	Scheds []string
	// Metrics configures the collector every experiment reports
	// through: tau override (-bsld-tau), warmup/cooldown truncation
	// (-warmup), sketch mode. The zero value keeps full-population
	// default-tau measurement, byte-identically.
	Metrics MetricsSpec
	// Percentiles adds wait-percentile columns (P50/P99) to the
	// scheduler-comparison tables (-percentiles). Off keeps classic
	// output byte-identical.
	Percentiles bool
}

// Default returns the EXPERIMENTS.md configuration.
func Default() Config { return Config{Seed: 1999, Jobs: 5000, Nodes: 128} } //schedlint:allow seedflow committed default: the suite's published tables are produced from this exact seed

// QuickConfig returns a seconds-scale configuration.
func QuickConfig() Config { return Config{Seed: 1999, Jobs: 600, Nodes: 64, Quick: true} } //schedlint:allow seedflow committed default: the suite's published tables are produced from this exact seed

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1999 //schedlint:allow seedflow committed default: the suite's published tables are produced from this exact seed
	}
	if c.Jobs == 0 {
		c.Jobs = 5000
	}
	if c.Nodes == 0 {
		c.Nodes = 128
	}
	// A trace substrate dictates the machine size: experiment tables,
	// outage streams, and grids must all describe the traced machine,
	// not the synthetic default. Unreadable paths are left alone here;
	// the error surfaces from genWorkload with context.
	if kind, arg := c.sourceSpec(); kind == sourceTrace {
		if src, err := trace.Cached(arg); err == nil {
			c.Nodes = src.MaxNodes()
		}
	}
	return c
}

// Workload-source spec kinds (Config.Source).
const (
	sourceModel = "model"
	sourceTrace = "trace"
)

// defaultSubstrate is the model the paper calls relatively
// representative, used wherever an experiment needs "the" workload.
const defaultSubstrate = "lublin99"

// sourceSpec parses Config.Source into (kind, argument).
func (c Config) sourceSpec() (kind, arg string) {
	src := ParseSource(c.Source)
	return src.Kind, src.Arg
}

// schedList applies the -sched restriction to an experiment's default
// scheduler list. Specs are compared canonically (parsed through the
// spec grammar), so any legal spelling of a scheduler matches it.
func (c Config) schedList(def []string) ([]string, error) {
	if len(c.Scheds) == 0 {
		return def, nil
	}
	allowed := map[string]bool{}
	for _, s := range c.Scheds {
		sp, err := sched.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("experiments: -sched filter: %w", err)
		}
		// Parse alone admits specs whose factory rejects the values
		// (easy(reserve=0)); building surfaces the real diagnosis
		// instead of a misleading empty-filter error below.
		if _, err := sched.Build(sp); err != nil {
			return nil, fmt.Errorf("experiments: -sched filter: %w", err)
		}
		allowed[sp.String()] = true
	}
	var out []string
	for _, name := range def {
		sp, err := sched.Parse(name)
		if err != nil {
			return nil, fmt.Errorf("experiments: default scheduler %q: %w", name, err)
		}
		if allowed[sp.String()] {
			out = append(out, name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: scheduler filter %v excludes every scheduler of this experiment (%v)",
			c.Scheds, def)
	}
	return out, nil
}

// traceSource resolves the trace behind a trace-kind Source.
func (c Config) traceSource() (*trace.Source, error) {
	kind, arg := c.sourceSpec()
	if kind != sourceTrace {
		return nil, fmt.Errorf("experiments: source %q is not a trace", c.Source)
	}
	src, err := trace.Cached(arg)
	if err != nil {
		return nil, fmt.Errorf("experiments: workload source %q: %w", c.Source, err)
	}
	return src, nil
}

// sweepLoads returns an experiment's load sweep, honouring a -scale-load
// override. With no override the defaults pass through untouched, which
// keeps classic output byte-identical.
func (c Config) sweepLoads(def []float64) []float64 {
	if len(c.Loads) == 0 {
		return def
	}
	return append([]float64(nil), c.Loads...)
}

// fixedLoad returns the load of a single-load experiment: the default,
// or — under a -scale-load override — the override value closest to it,
// so every requested load point is exercised by the experiments whose
// regime it best matches.
func (c Config) fixedLoad(def float64) float64 {
	if len(c.Loads) == 0 {
		return def
	}
	best := c.Loads[0]
	for _, l := range c.Loads[1:] {
		if math.Abs(l-def) < math.Abs(best-def) {
			best = l
		}
	}
	return best
}

// Metric is one typed observation behind the formatted cells: a named
// value under a label set (e.g. {sched: easy, model: lublin99} →
// meanWait = 5362). Metrics are what the batch layer aggregates across
// replications and what -json/-csv export; the formatted rows remain
// the human-readable view.
type Metric struct {
	Labels map[string]string `json:"labels,omitempty"`
	Name   string            `json:"name"`
	Value  float64           `json:"value"`
}

// LabelKey renders the label set in sorted k=v form, the stable
// grouping key used by replication aggregation and CSV export.
func (m Metric) LabelKey() string {
	keys := make([]string, 0, len(m.Labels))
	for k := range m.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(m.Labels[k])
	}
	return b.String()
}

// Table is one experiment output table.
type Table struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Header  []string   `json:"header"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
	Metrics []Metric   `json:"metrics,omitempty"`
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Observe records typed metric values under a shared label set — the
// machine-readable counterpart of a formatted row. Names are appended
// in sorted order so the metric stream is deterministic.
func (t *Table) Observe(labels map[string]string, values map[string]float64) {
	names := make([]string, 0, len(values))
	for n := range values {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t.Metrics = append(t.Metrics, Metric{Labels: labels, Name: n, Value: values[n]})
	}
}

// Note appends a free-text note under the table.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner is one experiment. Run returns the experiment's tables (each
// carrying typed metric rows) or an error; a failing experiment must
// report, not panic, so one bad cell cannot kill a parallel battery.
type Runner struct {
	ID    string
	Title string
	Run   func(cfg Config) ([]Table, error)
}

// All returns the experiment battery in order.
func All() []Runner {
	return []Runner{
		{"E1", "Scheduler comparison across workload models", E1SchedulerComparison},
		{"E2", "Metric conflicts between response time and slowdown", E2MetricConflict},
		{"E3", "Objective-weight sensitivity of scheduler rankings", E3ObjectiveWeights},
		{"E4", "Open-loop versus closed-loop (feedback) evaluation", E4Feedback},
		{"E5", "Outage impact and outage-aware scheduling", E5Outages},
		{"E6", "Advance reservations versus backfilling", E6Reservations},
		{"E7", "Queue-wait prediction accuracy and meta-scheduling gain", E7Prediction},
		{"E8", "Co-allocation across machine schedulers", E8CoAllocation},
		{"E9", "Workload model fidelity (co-plot analogue)", E9ModelFidelity},
		{"E10", "WARMstones scoreboard and fidelity agreement", E10Warmstones},
	}
}

// ByID returns a single experiment runner.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if strings.EqualFold(r.ID, id) {
			return r, true
		}
	}
	return Runner{}, false
}

// ---------------------------------------------------------------------
// shared helpers

// genWorkload produces a workload at the given offered load. When the
// configuration selects a trace source, the trace is the substrate
// regardless of name (rescaled to the load, truncated to cfg.Jobs,
// resampled for replications > 0); otherwise name picks a statistical
// model. A bad name or path is reported, not panicked, so the error
// flows through the Runner result path instead of killing a battery.
func genWorkload(name string, cfg Config, load float64) (*core.Workload, error) {
	if kind, _ := cfg.sourceSpec(); kind == sourceTrace {
		src, err := cfg.traceSource()
		if err != nil {
			return nil, err
		}
		return src.Workload(trace.Options{
			Load: load, Jobs: cfg.Jobs, Variant: cfg.Rep, Seed: cfg.Seed,
		}), nil
	}
	m, err := registry.New(name)
	if err != nil {
		return nil, fmt.Errorf("workload model %q: %w", name, err)
	}
	return m.Generate(model.Config{
		MaxNodes: cfg.Nodes, Jobs: cfg.Jobs, Seed: cfg.Seed,
		Load: load, EstimateFactor: 2,
	}), nil
}

// substrateWorkload is "the" workload of an experiment: the configured
// trace when one is selected, else the substrate model named by the
// source spec (lublin99 by default — the model the paper calls
// relatively representative).
func substrateWorkload(cfg Config, load float64) (*core.Workload, error) {
	kind, arg := cfg.sourceSpec()
	if kind == sourceTrace {
		return genWorkload("", cfg, load)
	}
	if arg == defaultSubstrate {
		// Keep the exact lublin.Default() path (not the registry) so
		// classic output stays byte-identical.
		return lublin.Default().Generate(model.Config{
			MaxNodes: cfg.Nodes, Jobs: cfg.Jobs, Seed: cfg.Seed,
			Load: load, EstimateFactor: 2,
		}), nil
	}
	return genWorkload(arg, cfg, load)
}

// siteWorkload builds the local workload of grid site `site` and
// returns it with the site's machine size. Model substrates derive a
// per-site model workload on `nodes`; a trace substrate derives a
// per-site resampled variant of the trace (variants are offset so that
// sites differ from each other and from the main workload) on the
// traced machine — a trace cannot be re-fit to a half-size machine.
func siteWorkload(cfg Config, site, jobs, nodes int, load float64) (*core.Workload, int, error) {
	if kind, _ := cfg.sourceSpec(); kind == sourceTrace {
		src, err := cfg.traceSource()
		if err != nil {
			return nil, 0, err
		}
		w := src.Workload(trace.Options{
			Load: load, Jobs: jobs, Variant: site + 1, Seed: cfg.Seed,
		})
		w.Name = fmt.Sprintf("local-%d", site)
		return w, src.MaxNodes(), nil
	}
	w := lublin.Default().Generate(model.Config{
		MaxNodes: nodes, Jobs: jobs, Seed: cfg.Seed + int64(site),
		Load: load, EstimateFactor: 2,
	})
	w.Name = fmt.Sprintf("local-%d", site)
	return w, nodes, nil
}

// noteLoadShortfall records when a trace substrate could not reach the
// requested offered load: interarrival compression is bounded by the
// trace's runtime tail, so overload targets (e.g. E4's 1.1/1.3 sweep)
// may be unreachable. Without the note, the table's load axis would
// silently claim a regime the simulation never ran in. Model
// substrates calibrate generatively and need no note.
func noteLoadShortfall(t *Table, cfg Config, w *core.Workload, requested float64) {
	if requested <= 0 {
		return
	}
	if kind, _ := cfg.sourceSpec(); kind != sourceTrace {
		return
	}
	if got := w.OfferedLoad(); math.Abs(got-requested) > 0.05*requested {
		t.Note("trace substrate reached offered load %.3f of requested %.2f (runtime tail bounds interarrival compression)", got, requested)
	}
}

// substrateLabel names the substrate in table titles and metric labels.
func substrateLabel(cfg Config) string {
	kind, arg := cfg.sourceSpec()
	if kind == sourceTrace {
		if src, err := trace.Cached(arg); err == nil {
			return src.Name
		}
		return arg
	}
	return arg
}

// report aggregates outcomes under the configuration's metric options
// (tau override, warmup truncation) — the one funnel every experiment
// uses so a -warmup or -bsld-tau flag reaches all of them. The
// MetricsSpec→CollectorOptions mapping is shared with RunSpec
// execution, so the battery and the RunSpec path cannot drift.
//
// Count-based warmup/cooldown is defined over completion order ("the
// first/last K jobs to finish"), matching what a live collector fed by
// the simulator sees; retained outcome slices arrive in submission
// order, so they are re-sorted by completion before feeding whenever
// such a policy is active. Time-based truncation is order-independent.
func (c Config) report(scheduler, workload string, outs []metrics.Outcome, procs int) metrics.Report {
	if c.Metrics.WarmupJobs > 0 || c.Metrics.CooldownJobs > 0 {
		sorted := append([]metrics.Outcome(nil), outs...)
		sort.SliceStable(sorted, func(a, b int) bool {
			ea, eb := sorted[a].End, sorted[b].End
			if ea != eb {
				return ea < eb
			}
			return sorted[a].JobID < sorted[b].JobID
		})
		outs = sorted
	}
	return metrics.ComputeWith(outs, c.Metrics.collectorOptions(scheduler, workload, procs))
}

// runOn simulates a workload under a scheduler named by a spec string
// (or legacy name) in the internal/sched grammar — the in-memory form
// of a RunSpec whose workload is already resolved. The report honours
// the configuration's metric options.
func runOn(cfg Config, w *core.Workload, schedName string, opts sim.Options) (metrics.Report, error) {
	s, err := sched.New(schedName)
	if err != nil {
		return metrics.Report{}, fmt.Errorf("scheduler %q: %w", schedName, err)
	}
	res, err := sim.Run(w, s, opts)
	if err != nil {
		return metrics.Report{}, fmt.Errorf("simulating %q: %w", schedName, err)
	}
	return cfg.report(res.Scheduler, res.Workload, res.Outcomes, w.MaxNodes), nil
}

// f formats a float compactly.
func f(v float64) string { return fmt.Sprintf("%.2f", v) }

// f0 formats a float with no decimals.
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }

// f3 formats a float with 3 decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// rankOf converts scores (lower better) to a rank list of names.
func rankOf(names []string, scores []float64) []string {
	idx := make([]int, len(names))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] < scores[idx[b]]
		}
		return names[idx[a]] < names[idx[b]]
	})
	out := make([]string, len(idx))
	for i, k := range idx {
		out[i] = names[k]
	}
	return out
}
