//go:build !debugchecks

package debugchecks

const enabled = false
