// Package debugchecks gates the repository's expensive invariant
// assertions behind one build tag.
//
// Building (or testing) with -tags debugchecks turns Enabled into the
// constant true, compiling in the O(n) cross-validation passes that
// the hot simulation paths cannot afford by default: the event
// engine's full heap-order and handle-generation checks
// (internal/des), the running-set/runOrder mirror check
// (internal/sim), and the cluster's scan-based counter
// cross-validation (internal/cluster, whose runtime toggle defaults
// to this constant). Without the tag, Enabled is the constant false
// and every `if debugchecks.Enabled { ... }` block is eliminated at
// compile time — the assertions cost nothing in production builds.
//
// CI runs the tier-1 simulation packages under the tag (the
// "debugchecks" job), so every invariant is exercised by the full
// test load on every change.
package debugchecks

// Enabled reports whether the debugchecks build tag is set. It is a
// constant, so guarded assertion blocks compile away entirely in
// default builds.
const Enabled = enabled
