//go:build debugchecks

package debugchecks

const enabled = true
