package core

import (
	"fmt"
	"math"

	"parsched/internal/stats"
)

// Structure is the internal-structure "strawman" summary of a parallel
// application proposed by Feitelson & Rudolph [23] and discussed in
// Section 2.2 of the paper: "The main parameters were the number of
// processors, the number of barriers, the granularity, and the variance
// of these attributes."
//
// A job with a Structure alternates computation phases separated by
// barrier synchronizations. Each of the job's Processes performs
// approximately Granularity seconds of work per phase, perturbed by
// Variance; a barrier completes when the slowest process finishes its
// phase. This is the model gang-scheduling evaluations need: with
// coordinated (gang) scheduling a phase costs the max over processes,
// while uncoordinated time slicing additionally suffers a context
// penalty per barrier.
type Structure struct {
	// Processes is the number of processes (equals the job size for
	// rigid jobs).
	Processes int
	// Barriers is the number of barrier synchronizations over the
	// job's lifetime.
	Barriers int
	// Granularity is the mean computation time per process between
	// consecutive barriers, in seconds.
	Granularity float64
	// Variance is the coefficient of variation of per-process phase
	// times (0 = perfectly balanced).
	Variance float64
}

func (s *Structure) String() string {
	return fmt.Sprintf("Structure(p=%d,b=%d,g=%g,v=%g)", s.Processes, s.Barriers, s.Granularity, s.Variance)
}

// TotalWork returns the expected total CPU work of the job in
// processor-seconds.
func (s *Structure) TotalWork() float64 {
	return float64(s.Processes) * float64(s.Barriers) * s.Granularity
}

// GangRuntime estimates the wall-clock runtime when all processes are
// coscheduled: each phase costs the maximum of the per-process phase
// times, realized with the given RNG. With Variance = 0 this is exactly
// Barriers * Granularity.
func (s *Structure) GangRuntime(rng *stats.RNG) float64 {
	if s.Variance <= 0 {
		return float64(s.Barriers) * s.Granularity
	}
	total := 0.0
	for b := 0; b < s.Barriers; b++ {
		maxPhase := 0.0
		for p := 0; p < s.Processes; p++ {
			t := s.phaseTime(rng)
			if t > maxPhase {
				maxPhase = t
			}
		}
		total += maxPhase
	}
	return total
}

// UncoordinatedRuntime estimates the wall-clock runtime under
// uncoordinated time slicing: every barrier additionally pays
// ctxPenalty seconds of waiting for descheduled peers, modeling the
// synchronization cost that motivates gang scheduling [22,34]. The
// penalty applies per barrier on top of the gang runtime.
func (s *Structure) UncoordinatedRuntime(rng *stats.RNG, ctxPenalty float64) float64 {
	return s.GangRuntime(rng) + float64(s.Barriers)*ctxPenalty
}

// phaseTime draws one per-process phase duration: a gamma distribution
// with mean Granularity and CV Variance (gamma is non-negative and
// matches the strawman's two-moment description).
func (s *Structure) phaseTime(rng *stats.RNG) float64 {
	if s.Variance <= 0 {
		return s.Granularity
	}
	// For a gamma distribution CV = 1/sqrt(alpha).
	alpha := 1 / (s.Variance * s.Variance)
	beta := s.Granularity / alpha
	return stats.Gamma{Alpha: alpha, Beta: beta}.Sample(rng)
}

// SyntheticRuntime converts the structure into a deterministic nominal
// runtime (used when attaching a Structure to a workload job whose
// runtime must stay fixed): Barriers * Granularity * (1 + half the
// variance penalty of the expected maximum over processes).
func (s *Structure) SyntheticRuntime() int64 {
	// E[max of n iid] grows roughly with sqrt(2 ln n) stds for light
	// tails; we use that as a deterministic stand-in.
	imbalance := 1.0
	if s.Variance > 0 && s.Processes > 1 {
		// E[max of n iid] grows roughly with sqrt(2 ln n) standard
		// deviations for light-tailed phase times.
		imbalance = 1 + s.Variance*math.Sqrt(2*math.Log(float64(s.Processes)))
	}
	rt := float64(s.Barriers) * s.Granularity * imbalance
	if rt < 1 {
		rt = 1
	}
	return int64(rt)
}
