// Package core defines the domain model shared by every subsystem of
// this repository: jobs, workloads, the rigid/flexible job taxonomy of
// Section 1.2 of the paper (rigid, moldable, malleable), speedup models
// for flexible jobs, the internal-structure "strawman" of Feitelson &
// Rudolph [23] (processes, barriers, granularity, variance), and the
// feedback-insertion methodology of Section 2.2 (preceding job + think
// time inferred from same-user activity).
//
// core sits between the standard workload format (internal/swf) and the
// simulator (internal/sim): SWF records are the archival form, core.Job
// is the operational form schedulers consume.
package core

import (
	"fmt"
	"math"
	"sort"

	"parsched/internal/swf"
)

// Class is the application class taxonomy of the paper: rigid jobs
// (including moldable ones, which fix their size at start) versus
// flexible jobs (malleable/evolving, reconfigurable at runtime).
type Class int

const (
	// Rigid jobs run on exactly the number of processors requested.
	Rigid Class = iota
	// Moldable jobs can start on a range of sizes chosen by the
	// scheduler, but cannot change size afterwards.
	Moldable
	// Malleable jobs can grow and shrink during execution.
	Malleable
)

func (c Class) String() string {
	switch c {
	case Rigid:
		return "rigid"
	case Moldable:
		return "moldable"
	case Malleable:
		return "malleable"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Job is one unit of work submitted to a machine scheduler.
type Job struct {
	// ID is unique within a workload, assigned from 1 in submit order.
	ID int64
	// Submit is the submittal time in seconds from workload start.
	Submit int64
	// Size is the number of processors requested (and, for rigid jobs,
	// used).
	Size int
	// Runtime is the actual wall-clock runtime in seconds when run on
	// Size processors.
	Runtime int64
	// Estimate is the user's runtime estimate given to the scheduler
	// (SWF requested time). Backfilling relies on it. Zero means the
	// scheduler must fall back on a default.
	Estimate int64
	// AvgCPU is the average CPU seconds consumed per processor, if known.
	AvgCPU int64
	// MemPerProc and ReqMemPerProc are used/requested KB per processor.
	MemPerProc    int64
	ReqMemPerProc int64
	// User, Group, App, Queue, Partition are the anonymized identities
	// of the standard format.
	User, Group, App, Queue, Partition int64
	// Killed reports that the job did not complete normally in the
	// source log.
	Killed bool
	// PrecedingJob and ThinkTime encode feedback: this job is submitted
	// ThinkTime seconds after job PrecedingJob terminates. Zero
	// PrecedingJob means no dependency.
	PrecedingJob int64
	ThinkTime    int64
	// Class is the rigidity class; rigid unless a model says otherwise.
	Class Class
	// Speedup describes runtime scaling for moldable/malleable jobs.
	// nil for rigid jobs.
	Speedup SpeedupModel
	// MinSize/MaxSize bound the sizes a moldable job accepts (ignored
	// for rigid jobs).
	MinSize, MaxSize int
	// Structure optionally carries the internal-structure parameters of
	// the strawman model [23].
	Structure *Structure
}

// RuntimeOn returns the wall-clock runtime of the job when run on p
// processors. For rigid jobs this is Runtime regardless of p (a rigid
// job cannot use extra processors and cannot run on fewer). For
// moldable/malleable jobs the speedup model scales the sequential work.
func (j *Job) RuntimeOn(p int) int64 {
	if j.Class == Rigid || j.Speedup == nil || p == j.Size {
		return j.Runtime
	}
	if p < 1 {
		p = 1
	}
	// Sequential work implied by the recorded (Size, Runtime) pair.
	work := float64(j.Runtime) * j.Speedup.Speedup(j.Size)
	rt := work / j.Speedup.Speedup(p)
	if rt < 1 {
		rt = 1
	}
	return int64(math.Ceil(rt))
}

// Area returns processor-seconds consumed by the job (Size × Runtime),
// the quantity utilization accounting is built on.
func (j *Job) Area() int64 { return int64(j.Size) * j.Runtime }

// EstimateOrRuntime returns the user estimate if present, otherwise the
// actual runtime (perfect estimates), the standard fallback when a log
// lacks requested times.
func (j *Job) EstimateOrRuntime() int64 {
	if j.Estimate > 0 {
		return j.Estimate
	}
	return j.Runtime
}

// SpeedupModel maps a processor count to speedup relative to one
// processor. Implementations must be monotonically non-decreasing in n
// with Speedup(1) == 1.
type SpeedupModel interface {
	Speedup(n int) float64
	String() string
}

// AmdahlSpeedup is the classic Amdahl law with serial fraction F:
// S(n) = 1 / (F + (1-F)/n).
type AmdahlSpeedup struct{ F float64 }

// Speedup implements SpeedupModel.
func (a AmdahlSpeedup) Speedup(n int) float64 {
	if n < 1 {
		n = 1
	}
	return 1 / (a.F + (1-a.F)/float64(n))
}

func (a AmdahlSpeedup) String() string { return fmt.Sprintf("Amdahl(f=%g)", a.F) }

// DowneySpeedup is Downey's two-parameter speedup model ('97): A is the
// average parallelism and Sigma the coefficient of variance of
// parallelism. Sigma = 0 gives near-ideal speedup up to A then flat;
// larger Sigma bends the curve earlier. This is the model the paper
// cites for describing "how an application would perform with different
// resource allocations".
type DowneySpeedup struct {
	A     float64 // average parallelism (>= 1)
	Sigma float64 // variance of parallelism (>= 0)
}

// Speedup implements Downey's piecewise speedup function.
func (d DowneySpeedup) Speedup(nInt int) float64 {
	n := float64(nInt)
	if n < 1 {
		n = 1
	}
	A, s := d.A, d.Sigma
	if A <= 1 {
		return 1
	}
	if s <= 1 {
		// Low-variance regime.
		switch {
		case n < A:
			// S(n) = A*n / (A + s*(n-1)/2)   for 1 <= n <= A
			return A * n / (A + s*(n-1)/2)
		case n < 2*A-1:
			// S(n) = A*n / (s*(A-1/2) + n*(1-s/2))
			return A * n / (s*(A-0.5) + n*(1-s/2))
		default:
			return A
		}
	}
	// High-variance regime.
	limit := A + A*s - s
	if n < limit {
		// S(n) = n*A*(s+1) / (s*(n+A-1) + A)
		return n * A * (s + 1) / (s*(n+A-1) + A)
	}
	return A
}

func (d DowneySpeedup) String() string { return fmt.Sprintf("Downey(A=%g,sigma=%g)", d.A, d.Sigma) }

// Workload is an ordered collection of jobs plus the machine context
// needed to interpret them.
type Workload struct {
	// Name identifies the workload in reports.
	Name string
	// MaxNodes is the size of the machine the workload targets.
	MaxNodes int
	// Jobs are sorted by ascending submit time, IDs from 1.
	Jobs []*Job
}

// Clone returns a deep copy of the workload (job structs are copied;
// Speedup models and Structures are shared, as they are immutable).
func (w *Workload) Clone() *Workload {
	return w.ClonePrefix(len(w.Jobs))
}

// ClonePrefix deep-copies only the first n jobs (all of them when n is
// out of range), equivalent to Clone followed by Truncate(n) but
// without copying the jobs the truncation would discard. Feedback
// references pointing past the prefix are cleared, as in Truncate.
func (w *Workload) ClonePrefix(n int) *Workload {
	if n < 0 || n > len(w.Jobs) {
		n = len(w.Jobs)
	}
	out := &Workload{Name: w.Name, MaxNodes: w.MaxNodes, Jobs: make([]*Job, n)}
	// One backing block for all the copies: a 20k-job clone is two
	// allocations, not twenty thousand, and the jobs stay contiguous for
	// the replay cursor's sequential walk.
	block := make([]Job, n)
	for i, j := range w.Jobs[:n] {
		block[i] = *j
		if block[i].PrecedingJob > int64(n) {
			block[i].PrecedingJob = 0
			block[i].ThinkTime = 0
		}
		out.Jobs[i] = &block[i]
	}
	return out
}

// SortBySubmit stably sorts jobs by submit time and renumbers IDs from
// 1, remapping PrecedingJob references. References that would point
// forward after the sort are dropped.
func (w *Workload) SortBySubmit() {
	sort.SliceStable(w.Jobs, func(i, k int) bool { return w.Jobs[i].Submit < w.Jobs[k].Submit })
	remap := make(map[int64]int64, len(w.Jobs))
	for i, j := range w.Jobs {
		remap[j.ID] = int64(i + 1)
	}
	for i, j := range w.Jobs {
		j.ID = int64(i + 1)
		if j.PrecedingJob > 0 {
			if newID, ok := remap[j.PrecedingJob]; ok && newID < j.ID {
				j.PrecedingJob = newID
			} else {
				j.PrecedingJob = 0
				j.ThinkTime = 0
			}
		}
		_ = i
	}
}

// TotalArea returns the processor-seconds of all jobs.
func (w *Workload) TotalArea() int64 {
	var a int64
	for _, j := range w.Jobs {
		a += j.Area()
	}
	return a
}

// Span returns the time between the first submittal and the latest
// submit+runtime (a lower bound on makespan).
func (w *Workload) Span() int64 {
	if len(w.Jobs) == 0 {
		return 0
	}
	first := w.Jobs[0].Submit
	var last int64
	for _, j := range w.Jobs {
		if end := j.Submit + j.Runtime; end > last {
			last = end
		}
	}
	return last - first
}

// OfferedLoad estimates the offered load: total processor-seconds
// demanded divided by processor-seconds available over the submission
// span.
func (w *Workload) OfferedLoad() float64 {
	span := w.Span()
	if span <= 0 || w.MaxNodes == 0 {
		return 0
	}
	return float64(w.TotalArea()) / (float64(span) * float64(w.MaxNodes))
}

// ScaleLoad multiplies the offered load by factor by compressing (or
// stretching) interarrival gaps: new gaps = old gaps / factor. Runtime
// and size are untouched, which is the standard load-scaling method the
// modeling literature uses (changing the arrival rate, not the work).
// Think times are not scaled; feedback-driven jobs shift with their
// predecessors at replay time.
func (w *Workload) ScaleLoad(factor float64) {
	if factor <= 0 || len(w.Jobs) == 0 {
		return
	}
	prevOld := w.Jobs[0].Submit
	prevNew := w.Jobs[0].Submit
	for i := 1; i < len(w.Jobs); i++ {
		gap := float64(w.Jobs[i].Submit-prevOld) / factor
		prevOld = w.Jobs[i].Submit
		prevNew = prevNew + int64(math.Round(gap))
		w.Jobs[i].Submit = prevNew
	}
}

// Truncate keeps only the first n jobs (prefix order keeps IDs valid);
// dangling feedback references are cleared.
func (w *Workload) Truncate(n int) {
	if n >= len(w.Jobs) {
		return
	}
	w.Jobs = w.Jobs[:n]
	for _, j := range w.Jobs {
		if j.PrecedingJob > int64(n) {
			j.PrecedingJob = 0
			j.ThinkTime = 0
		}
	}
}

// Users returns the distinct user IDs in the workload, ascending.
func (w *Workload) Users() []int64 {
	seen := map[int64]bool{}
	for _, j := range w.Jobs {
		if j.User > 0 {
			seen[j.User] = true
		}
	}
	out := make([]int64, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Slice(out, func(i, k int) bool { return out[i] < out[k] })
	return out
}

// Validate checks operational invariants the simulator depends on:
// sorted submit times, positive sizes within the machine, non-negative
// runtimes, strictly-earlier feedback references.
func (w *Workload) Validate() error {
	var prev int64
	for i, j := range w.Jobs {
		if j.ID != int64(i+1) {
			return fmt.Errorf("job %d: ID %d, want %d", i, j.ID, i+1)
		}
		if j.Submit < prev {
			return fmt.Errorf("job %d: submit %d before previous %d", j.ID, j.Submit, prev)
		}
		prev = j.Submit
		if j.Size < 1 {
			return fmt.Errorf("job %d: size %d", j.ID, j.Size)
		}
		if w.MaxNodes > 0 && j.Size > w.MaxNodes {
			return fmt.Errorf("job %d: size %d exceeds machine %d", j.ID, j.Size, w.MaxNodes)
		}
		if j.Runtime < 0 {
			return fmt.Errorf("job %d: negative runtime", j.ID)
		}
		if j.PrecedingJob != 0 && (j.PrecedingJob < 0 || j.PrecedingJob >= j.ID) {
			return fmt.Errorf("job %d: preceding job %d not earlier", j.ID, j.PrecedingJob)
		}
	}
	return nil
}

// FromSWF converts the summary records of a standard log into a
// workload. Records must be clean (use swf.Clean first for raw logs);
// records without usable runtime or size are rejected.
func FromSWF(log *swf.Log) (*Workload, error) {
	w := &Workload{
		Name:     log.Header.Computer,
		MaxNodes: int(log.Header.MaxNodes),
	}
	for _, r := range log.Summaries() {
		if r.RunTime < 0 {
			return nil, fmt.Errorf("job %d: unknown runtime; run swf.Clean first", r.JobID)
		}
		if r.Procs <= 0 && r.ReqProcs <= 0 {
			return nil, fmt.Errorf("job %d: unknown size; run swf.Clean first", r.JobID)
		}
		w.Jobs = append(w.Jobs, JobFromRecord(r))
	}
	w.SortBySubmit()
	return w, nil
}

// ToSWF converts a workload into a standard log. Wait times are unknown
// (-1): they are an output of scheduling, not a property of the
// workload. Completion status is 1 unless the job is marked killed.
func ToSWF(w *Workload) *swf.Log {
	log := &swf.Log{Header: swf.Header{
		Computer: w.Name,
		Version:  swf.Version,
		MaxNodes: int64(w.MaxNodes),
	}}
	for _, j := range w.Jobs {
		status := swf.StatusCompleted
		if j.Killed {
			status = swf.StatusKilled
		}
		rec := swf.Record{
			JobID:        j.ID,
			Submit:       j.Submit,
			Wait:         swf.Missing,
			RunTime:      j.Runtime,
			Procs:        int64(j.Size),
			AvgCPU:       orMissing(j.AvgCPU),
			UsedMem:      orMissing(j.MemPerProc),
			ReqProcs:     int64(j.Size),
			ReqTime:      orMissing(j.Estimate),
			ReqMem:       orMissing(j.ReqMemPerProc),
			Status:       status,
			User:         orNatural(j.User),
			Group:        orNatural(j.Group),
			App:          orNatural(j.App),
			Queue:        j.Queue,
			Partition:    orNatural(j.Partition),
			PrecedingJob: swf.Missing,
			ThinkTime:    swf.Missing,
		}
		if j.PrecedingJob > 0 {
			rec.PrecedingJob = j.PrecedingJob
			rec.ThinkTime = j.ThinkTime
		}
		log.Records = append(log.Records, rec)
	}
	return log
}

func orMissing(v int64) int64 {
	if v <= 0 {
		return swf.Missing
	}
	return v
}

// orNatural maps zero identities to 1 so converted logs satisfy the
// "natural number" rules of the standard.
func orNatural(v int64) int64 {
	if v <= 0 {
		return 1
	}
	return v
}
