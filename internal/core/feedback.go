package core

import (
	"sort"

	"parsched/internal/stats"
)

// This file implements the feedback methodology of Section 2.2 of the
// paper: "we identify sequences of dependent jobs (e.g. all those
// submitted by the same user in rapid succession), and replace the
// absolute arrival times of jobs in the sequence with interarrival
// times relative to the previous job in the sequence."

// InferReport summarizes what InferFeedback did.
type InferReport struct {
	Chains      int // dependency chains found (>= 2 jobs each)
	LinkedJobs  int // jobs that received a PrecedingJob reference
	MeanThink   float64
	MaxChainLen int
}

// InferFeedback detects postulated dependencies in a workload and fills
// in PrecedingJob/ThinkTime. A job depends on the user's previous job
// when it was submitted within window seconds after that job's
// termination (termination = submit + wait + runtime; wait is unknown
// in a workload, so the offered termination is submit + runtime, the
// no-wait bound). Jobs submitted while the previous job was still
// running are treated as independent (pipelined submission, not edit-
// compile-run feedback).
//
// The workload is modified in place. Existing feedback references are
// preserved.
func InferFeedback(w *Workload, window int64) InferReport {
	var rep InferReport

	// Group job indices by user, keeping submit order.
	byUser := map[int64][]int{}
	for i, j := range w.Jobs {
		if j.User <= 0 {
			continue
		}
		byUser[j.User] = append(byUser[j.User], i)
	}
	users := make([]int64, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Slice(users, func(i, k int) bool { return users[i] < users[k] })

	var thinks stats.Moments
	for _, u := range users {
		idxs := byUser[u]
		chainLen := 1
		for k := 1; k < len(idxs); k++ {
			cur := w.Jobs[idxs[k]]
			prev := w.Jobs[idxs[k-1]]
			if cur.PrecedingJob > 0 {
				continue // already linked (e.g. from the log itself)
			}
			prevEnd := prev.Submit + prev.Runtime
			think := cur.Submit - prevEnd
			if think >= 0 && think <= window {
				cur.PrecedingJob = prev.ID
				cur.ThinkTime = think
				rep.LinkedJobs++
				thinks.Add(float64(cur.ThinkTime))
				chainLen++
				if chainLen == 2 {
					rep.Chains++
				}
				if chainLen > rep.MaxChainLen {
					rep.MaxChainLen = chainLen
				}
			} else {
				chainLen = 1
			}
		}
	}
	rep.MeanThink = thinks.Mean()
	return rep
}

// Session is a burst of activity by one user: consecutive jobs where
// each was submitted within the session gap of the previous one's
// submission or termination.
type Session struct {
	User  int64
	Jobs  []int64 // job IDs in submit order
	Start int64   // submit of the first job
	End   int64   // submit+runtime of the last job
}

// Sessions partitions a workload into user sessions using gap seconds
// as the inactivity threshold. It is the descriptive counterpart of
// InferFeedback, used to characterize a log before deciding on a think
// time distribution.
func Sessions(w *Workload, gap int64) []Session {
	byUser := map[int64][]*Job{}
	for _, j := range w.Jobs {
		if j.User <= 0 {
			continue
		}
		byUser[j.User] = append(byUser[j.User], j)
	}
	users := make([]int64, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Slice(users, func(i, k int) bool { return users[i] < users[k] })

	var out []Session
	for _, u := range users {
		jobs := byUser[u]
		var cur *Session
		for _, j := range jobs {
			end := j.Submit + j.Runtime
			if cur != nil && j.Submit-cur.End <= gap {
				cur.Jobs = append(cur.Jobs, j.ID)
				if end > cur.End {
					cur.End = end
				}
				continue
			}
			if cur != nil {
				out = append(out, *cur)
			}
			cur = &Session{User: u, Jobs: []int64{j.ID}, Start: j.Submit, End: end}
		}
		if cur != nil {
			out = append(out, *cur)
		}
	}
	return out
}

// DependencyChains extracts the explicit feedback chains of a workload:
// maximal sequences linked by PrecedingJob. Returned chains are job ID
// slices in dependency order, longest first (ties by first ID).
func DependencyChains(w *Workload) [][]int64 {
	next := map[int64]int64{} // predecessor -> successor
	hasPred := map[int64]bool{}
	for _, j := range w.Jobs {
		if j.PrecedingJob > 0 {
			next[j.PrecedingJob] = j.ID
			hasPred[j.ID] = true
		}
	}
	var chains [][]int64
	for _, j := range w.Jobs {
		if hasPred[j.ID] {
			continue // not a chain head
		}
		if _, ok := next[j.ID]; !ok {
			continue // isolated job
		}
		chain := []int64{j.ID}
		for id := j.ID; ; {
			succ, ok := next[id]
			if !ok {
				break
			}
			chain = append(chain, succ)
			id = succ
		}
		chains = append(chains, chain)
	}
	sort.SliceStable(chains, func(i, k int) bool {
		if len(chains[i]) != len(chains[k]) {
			return len(chains[i]) > len(chains[k])
		}
		return chains[i][0] < chains[k][0]
	})
	return chains
}
