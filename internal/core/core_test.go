package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"parsched/internal/swf"
)

// testWorkload builds a small well-formed workload.
func testWorkload() *Workload {
	return &Workload{
		Name:     "test",
		MaxNodes: 64,
		Jobs: []*Job{
			{ID: 1, Submit: 0, Size: 8, Runtime: 100, Estimate: 200, User: 1, Group: 1, App: 1, Partition: 1},
			{ID: 2, Submit: 50, Size: 16, Runtime: 300, Estimate: 400, User: 2, Group: 1, App: 2, Partition: 1},
			{ID: 3, Submit: 120, Size: 4, Runtime: 60, Estimate: 100, User: 1, Group: 1, App: 1, Partition: 1, PrecedingJob: 1, ThinkTime: 20},
		},
	}
}

func TestWorkloadValidate(t *testing.T) {
	if err := testWorkload().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadValidateCatches(t *testing.T) {
	w := testWorkload()
	w.Jobs[1].Submit = 500
	if err := w.Validate(); err == nil {
		t.Fatal("unsorted workload should fail")
	}

	w = testWorkload()
	w.Jobs[0].Size = 0
	if err := w.Validate(); err == nil {
		t.Fatal("zero size should fail")
	}

	w = testWorkload()
	w.Jobs[0].Size = 1000
	if err := w.Validate(); err == nil {
		t.Fatal("size > machine should fail")
	}

	w = testWorkload()
	w.Jobs[2].PrecedingJob = 3
	if err := w.Validate(); err == nil {
		t.Fatal("self-reference should fail")
	}

	w = testWorkload()
	w.Jobs[0].ID = 9
	if err := w.Validate(); err == nil {
		t.Fatal("non-sequential IDs should fail")
	}
}

func TestAreaAndTotals(t *testing.T) {
	w := testWorkload()
	if a := w.Jobs[0].Area(); a != 800 {
		t.Fatalf("area = %d, want 800", a)
	}
	if total := w.TotalArea(); total != 800+4800+240 {
		t.Fatalf("total area = %d", total)
	}
}

func TestOfferedLoad(t *testing.T) {
	w := testWorkload()
	// span = last end (2 submits 50 + 300 = 350) - first submit 0 = 350
	want := float64(5840) / (350.0 * 64.0)
	if got := w.OfferedLoad(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("offered load = %v, want %v", got, want)
	}
}

func TestScaleLoadCompressesGaps(t *testing.T) {
	w := testWorkload()
	w.ScaleLoad(2)
	// Gap compression: submits were 0,50,120; now 0,25,60.
	if w.Jobs[1].Submit != 25 || w.Jobs[2].Submit != 60 {
		t.Fatalf("submits after scale: %d, %d", w.Jobs[1].Submit, w.Jobs[2].Submit)
	}
}

func TestScaleLoadDoublesOfferedLoad(t *testing.T) {
	// On a long workload (arrival span >> tail runtime) scaling the
	// arrival process scales the offered load proportionally.
	w := &Workload{MaxNodes: 64}
	for i := 0; i < 2000; i++ {
		w.Jobs = append(w.Jobs, &Job{
			ID: int64(i + 1), Submit: int64(i * 100), Size: 8, Runtime: 50, User: 1,
		})
	}
	base := w.OfferedLoad()
	w.ScaleLoad(2)
	got := w.OfferedLoad()
	if math.Abs(got-2*base)/(2*base) > 0.01 {
		t.Fatalf("load after x2 scale = %v, want ~%v", got, 2*base)
	}
}

func TestScaleLoadNoOp(t *testing.T) {
	w := testWorkload()
	w.ScaleLoad(0) // invalid factor ignored
	if w.Jobs[1].Submit != 50 {
		t.Fatal("factor 0 must be a no-op")
	}
}

func TestClone(t *testing.T) {
	w := testWorkload()
	c := w.Clone()
	c.Jobs[0].Runtime = 9999
	if w.Jobs[0].Runtime == 9999 {
		t.Fatal("clone shares job structs")
	}
}

func TestSortBySubmitRemapsFeedback(t *testing.T) {
	w := &Workload{MaxNodes: 64, Jobs: []*Job{
		{ID: 1, Submit: 100, Size: 1, Runtime: 10, User: 1},
		{ID: 2, Submit: 0, Size: 1, Runtime: 10, User: 1},
		{ID: 3, Submit: 200, Size: 1, Runtime: 10, User: 1, PrecedingJob: 1, ThinkTime: 5},
	}}
	w.SortBySubmit()
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// Old job 1 is now job 2; job 3's reference must follow it.
	if w.Jobs[2].PrecedingJob != 2 {
		t.Fatalf("remap wrong: %d", w.Jobs[2].PrecedingJob)
	}
}

func TestTruncateClearsDangling(t *testing.T) {
	w := testWorkload()
	w.Jobs[2].PrecedingJob = 1 // fine
	w.Truncate(3)              // no-op
	if len(w.Jobs) != 3 {
		t.Fatal("truncate(3) changed length")
	}
	w2 := &Workload{MaxNodes: 8, Jobs: []*Job{
		{ID: 1, Submit: 0, Size: 1, Runtime: 1},
		{ID: 2, Submit: 1, Size: 1, Runtime: 1, PrecedingJob: 3}, // forward ref (invalid but tests clearing)
	}}
	w2.Truncate(2)
	_ = w2
}

func TestUsers(t *testing.T) {
	w := testWorkload()
	us := w.Users()
	if len(us) != 2 || us[0] != 1 || us[1] != 2 {
		t.Fatalf("users = %v", us)
	}
}

func TestRuntimeOnRigid(t *testing.T) {
	j := &Job{Size: 8, Runtime: 100, Class: Rigid}
	if j.RuntimeOn(16) != 100 || j.RuntimeOn(4) != 100 {
		t.Fatal("rigid job runtime must not depend on p")
	}
}

func TestRuntimeOnMoldable(t *testing.T) {
	j := &Job{Size: 8, Runtime: 100, Class: Moldable, Speedup: AmdahlSpeedup{F: 0}}
	// Perfect speedup: double the processors, halve the time.
	if rt := j.RuntimeOn(16); rt != 50 {
		t.Fatalf("runtime on 16 = %d, want 50", rt)
	}
	if rt := j.RuntimeOn(4); rt != 200 {
		t.Fatalf("runtime on 4 = %d, want 200", rt)
	}
	if rt := j.RuntimeOn(8); rt != 100 {
		t.Fatalf("runtime on own size = %d, want 100", rt)
	}
}

func TestAmdahlSpeedup(t *testing.T) {
	s := AmdahlSpeedup{F: 0.1}
	if got := s.Speedup(1); got != 1 {
		t.Fatalf("S(1) = %v", got)
	}
	// Limit is 1/F = 10.
	if got := s.Speedup(1 << 20); math.Abs(got-10) > 0.1 {
		t.Fatalf("S(inf) = %v, want ~10", got)
	}
	prev := 0.0
	for n := 1; n <= 1024; n *= 2 {
		v := s.Speedup(n)
		if v < prev {
			t.Fatal("Amdahl speedup must be non-decreasing")
		}
		prev = v
	}
}

func TestDowneySpeedupProperties(t *testing.T) {
	for _, d := range []DowneySpeedup{
		{A: 32, Sigma: 0.5}, {A: 32, Sigma: 1}, {A: 32, Sigma: 2}, {A: 64, Sigma: 0},
	} {
		if got := d.Speedup(1); math.Abs(got-1) > 1e-9 {
			t.Fatalf("%v: S(1) = %v, want 1", d, got)
		}
		prev := 0.0
		for n := 1; n <= 4096; n *= 2 {
			v := d.Speedup(n)
			if v < prev-1e-9 {
				t.Fatalf("%v: speedup decreasing at n=%d (%v < %v)", d, n, v, prev)
			}
			if v > d.A+1e-9 {
				t.Fatalf("%v: speedup %v exceeds average parallelism %v", d, v, d.A)
			}
			prev = v
		}
		// Asymptote is A.
		if v := d.Speedup(1 << 20); math.Abs(v-d.A) > 1e-6 {
			t.Fatalf("%v: S(inf) = %v, want %v", d, v, d.A)
		}
	}
}

func TestDowneySpeedupDegenerate(t *testing.T) {
	d := DowneySpeedup{A: 1, Sigma: 1}
	if d.Speedup(64) != 1 {
		t.Fatal("A=1 job has no speedup")
	}
}

func TestFromToSWFRoundTrip(t *testing.T) {
	w := testWorkload()
	log := ToSWF(w)
	if vs := swf.Errors(swf.Validate(log)); len(vs) != 0 {
		t.Fatalf("ToSWF produced invalid log: %v", vs)
	}
	back, err := FromSWF(log)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != len(w.Jobs) {
		t.Fatalf("job count changed: %d", len(back.Jobs))
	}
	for i := range w.Jobs {
		a, b := w.Jobs[i], back.Jobs[i]
		if a.Submit != b.Submit || a.Size != b.Size || a.Runtime != b.Runtime ||
			a.Estimate != b.Estimate || a.User != b.User ||
			a.PrecedingJob != b.PrecedingJob || a.ThinkTime != b.ThinkTime {
			t.Fatalf("job %d changed: %+v -> %+v", i, a, b)
		}
	}
}

func TestFromSWFRejectsDirty(t *testing.T) {
	log := &swf.Log{Records: []swf.Record{
		{JobID: 1, Submit: 0, RunTime: -1, Procs: 4, Status: swf.StatusCompleted, User: 1, Group: 1, App: 1, Partition: 1},
	}}
	if _, err := FromSWF(log); err == nil || !strings.Contains(err.Error(), "runtime") {
		t.Fatalf("want runtime error, got %v", err)
	}
	log = &swf.Log{Records: []swf.Record{
		{JobID: 1, Submit: 0, RunTime: 50, Procs: -1, ReqProcs: -1, Status: swf.StatusCompleted, User: 1, Group: 1, App: 1, Partition: 1},
	}}
	if _, err := FromSWF(log); err == nil || !strings.Contains(err.Error(), "size") {
		t.Fatalf("want size error, got %v", err)
	}
}

func TestFromSWFSkipsPartials(t *testing.T) {
	log := ToSWF(testWorkload())
	log.Records = append(log.Records, swf.Record{
		JobID: 3, Submit: -1, Wait: 10, RunTime: 30, Procs: 4,
		Status: swf.StatusPartialLastOK, User: 1, Group: 1, App: 1, Partition: 1,
		PrecedingJob: -1, ThinkTime: -1,
	})
	w, err := FromSWF(log)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 3 {
		t.Fatalf("partials leaked into workload: %d jobs", len(w.Jobs))
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: ToSWF ∘ FromSWF is the identity on key fields for any
	// valid workload permutation.
	f := func(seed int64) bool {
		w := testWorkload()
		w.Jobs[0].Submit = seed % 100
		if w.Jobs[0].Submit < 0 {
			w.Jobs[0].Submit = -w.Jobs[0].Submit
		}
		w.SortBySubmit()
		back, err := FromSWF(ToSWF(w))
		if err != nil {
			return false
		}
		return len(back.Jobs) == len(w.Jobs) && back.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateOrRuntime(t *testing.T) {
	j := &Job{Runtime: 100, Estimate: 500}
	if j.EstimateOrRuntime() != 500 {
		t.Fatal("estimate should win when present")
	}
	j.Estimate = 0
	if j.EstimateOrRuntime() != 100 {
		t.Fatal("runtime fallback wrong")
	}
}

func TestClassString(t *testing.T) {
	if Rigid.String() != "rigid" || Moldable.String() != "moldable" ||
		Malleable.String() != "malleable" || Class(9).String() == "" {
		t.Fatal("class strings wrong")
	}
}
