package core

import "parsched/internal/swf"

// JobStream is a pull-based job source: the streaming counterpart of
// Workload.Jobs. Next returns jobs in non-decreasing submit order with
// IDs assigned from 1, exactly as a materialized workload would hold
// them; it returns (nil, nil) when the stream is exhausted. Streams are
// single-use and not safe for concurrent use.
type JobStream interface {
	Next() (*Job, error)
}

// SliceStream adapts a job slice (a materialized workload's Jobs) to
// the JobStream interface. The jobs are handed out as-is, not cloned —
// wrap a private copy when the consumer may mutate them.
type SliceStream struct {
	jobs []*Job
	i    int
}

// NewSliceStream returns a stream over jobs.
func NewSliceStream(jobs []*Job) *SliceStream { return &SliceStream{jobs: jobs} }

// Next implements JobStream.
func (s *SliceStream) Next() (*Job, error) {
	if s.i >= len(s.jobs) {
		return nil, nil
	}
	j := s.jobs[s.i]
	s.i++
	return j, nil
}

// JobFromRecord converts one clean summary record into the operational
// job form, the per-record kernel shared by FromSWF and the streaming
// trace pipeline. The record must already be clean: summary status, a
// known runtime, and a usable processor count (swf.Clean guarantees
// all three).
func JobFromRecord(r swf.Record) *Job {
	size := r.Procs
	if size <= 0 {
		size = r.ReqProcs
	}
	j := &Job{
		ID:            r.JobID,
		Submit:        r.Submit,
		Size:          int(size),
		Runtime:       r.RunTime,
		AvgCPU:        r.AvgCPU,
		MemPerProc:    r.UsedMem,
		ReqMemPerProc: r.ReqMem,
		User:          r.User,
		Group:         r.Group,
		App:           r.App,
		Queue:         r.Queue,
		Partition:     r.Partition,
		Killed:        r.Status == swf.StatusKilled,
	}
	if r.ReqTime > 0 {
		j.Estimate = r.ReqTime
	}
	if r.PrecedingJob > 0 {
		j.PrecedingJob = r.PrecedingJob
		if r.ThinkTime >= 0 {
			j.ThinkTime = r.ThinkTime
		}
	}
	return j
}
