package core

import (
	"testing"

	"parsched/internal/stats"
)

// feedbackWorkload: user 1 submits an edit-compile-run chain, user 2
// submits independent jobs far apart.
func feedbackWorkload() *Workload {
	return &Workload{
		MaxNodes: 64,
		Jobs: []*Job{
			{ID: 1, Submit: 0, Size: 1, Runtime: 60, User: 1},
			{ID: 2, Submit: 100, Size: 1, Runtime: 60, User: 1},  // 40 s after job 1 ends
			{ID: 3, Submit: 200, Size: 1, Runtime: 60, User: 1},  // 40 s after job 2 ends
			{ID: 4, Submit: 300, Size: 8, Runtime: 600, User: 2}, // unrelated
			{ID: 5, Submit: 99999, Size: 1, Runtime: 60, User: 1},
		},
	}
}

func TestInferFeedbackLinksChains(t *testing.T) {
	w := feedbackWorkload()
	rep := InferFeedback(w, 300)
	if rep.LinkedJobs != 2 {
		t.Fatalf("linked %d jobs, want 2", rep.LinkedJobs)
	}
	if w.Jobs[1].PrecedingJob != 1 || w.Jobs[1].ThinkTime != 40 {
		t.Fatalf("job 2 link wrong: %+v", w.Jobs[1])
	}
	if w.Jobs[2].PrecedingJob != 2 || w.Jobs[2].ThinkTime != 40 {
		t.Fatalf("job 3 link wrong: %+v", w.Jobs[2])
	}
	if w.Jobs[4].PrecedingJob != 0 {
		t.Fatal("distant job must not be linked")
	}
	if rep.Chains != 1 || rep.MaxChainLen != 3 {
		t.Fatalf("chain stats wrong: %+v", rep)
	}
	if rep.MeanThink != 40 {
		t.Fatalf("mean think = %v", rep.MeanThink)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInferFeedbackSkipsOverlapping(t *testing.T) {
	// Job submitted while the previous is still running: pipelined, not
	// feedback.
	w := &Workload{MaxNodes: 8, Jobs: []*Job{
		{ID: 1, Submit: 0, Size: 1, Runtime: 1000, User: 1},
		{ID: 2, Submit: 100, Size: 1, Runtime: 10, User: 1},
	}}
	rep := InferFeedback(w, 300)
	if rep.LinkedJobs != 0 {
		t.Fatal("overlapping submission must not be linked")
	}
}

func TestInferFeedbackPreservesExisting(t *testing.T) {
	w := feedbackWorkload()
	w.Jobs[1].PrecedingJob = 1
	w.Jobs[1].ThinkTime = 7
	InferFeedback(w, 300)
	if w.Jobs[1].ThinkTime != 7 {
		t.Fatal("existing links must be preserved")
	}
}

func TestInferFeedbackWindowZero(t *testing.T) {
	w := feedbackWorkload()
	rep := InferFeedback(w, 0)
	// think times are 40 > 0, so nothing links.
	if rep.LinkedJobs != 0 {
		t.Fatalf("window 0 linked %d", rep.LinkedJobs)
	}
}

func TestSessions(t *testing.T) {
	w := feedbackWorkload()
	ss := Sessions(w, 300)
	// user 1: jobs 1,2,3 in one session; job 5 alone. user 2: job 4.
	if len(ss) != 3 {
		t.Fatalf("got %d sessions: %+v", len(ss), ss)
	}
	var u1First *Session
	for i := range ss {
		if ss[i].User == 1 && len(ss[i].Jobs) == 3 {
			u1First = &ss[i]
		}
	}
	if u1First == nil {
		t.Fatalf("no 3-job session for user 1: %+v", ss)
	}
	if u1First.Start != 0 || u1First.End != 260 {
		t.Fatalf("session bounds wrong: %+v", u1First)
	}
}

func TestDependencyChains(t *testing.T) {
	w := feedbackWorkload()
	InferFeedback(w, 300)
	chains := DependencyChains(w)
	if len(chains) != 1 {
		t.Fatalf("got %d chains", len(chains))
	}
	if len(chains[0]) != 3 || chains[0][0] != 1 || chains[0][2] != 3 {
		t.Fatalf("chain = %v", chains[0])
	}
}

func TestDependencyChainsEmpty(t *testing.T) {
	w := testWorkload()
	w.Jobs[2].PrecedingJob = 0
	if got := DependencyChains(w); len(got) != 0 {
		t.Fatalf("expected no chains, got %v", got)
	}
}

func TestStructureGangRuntime(t *testing.T) {
	s := &Structure{Processes: 16, Barriers: 10, Granularity: 5, Variance: 0}
	rng := stats.NewRNG(1)
	if rt := s.GangRuntime(rng); rt != 50 {
		t.Fatalf("balanced gang runtime = %v, want 50", rt)
	}
}

func TestStructureVarianceSlowsDown(t *testing.T) {
	rng := stats.NewRNG(2)
	balanced := &Structure{Processes: 32, Barriers: 20, Granularity: 5, Variance: 0}
	skewed := &Structure{Processes: 32, Barriers: 20, Granularity: 5, Variance: 0.5}
	b := balanced.GangRuntime(rng)
	s := skewed.GangRuntime(rng)
	if s <= b {
		t.Fatalf("variance should slow the job: %v <= %v", s, b)
	}
}

func TestStructureUncoordinatedPenalty(t *testing.T) {
	rng := stats.NewRNG(3)
	s := &Structure{Processes: 8, Barriers: 100, Granularity: 1, Variance: 0}
	gang := s.GangRuntime(rng)
	unco := s.UncoordinatedRuntime(rng, 0.5)
	if unco != gang+50 {
		t.Fatalf("uncoordinated = %v, want gang %v + 50", unco, gang)
	}
}

func TestStructureTotalWork(t *testing.T) {
	s := &Structure{Processes: 4, Barriers: 10, Granularity: 2.5}
	if w := s.TotalWork(); w != 100 {
		t.Fatalf("total work = %v, want 100", w)
	}
}

func TestStructureSyntheticRuntime(t *testing.T) {
	s := &Structure{Processes: 16, Barriers: 10, Granularity: 5, Variance: 0}
	if rt := s.SyntheticRuntime(); rt != 50 {
		t.Fatalf("synthetic runtime = %d, want 50", rt)
	}
	s.Variance = 0.5
	if rt := s.SyntheticRuntime(); rt <= 50 {
		t.Fatalf("variance must inflate synthetic runtime, got %d", rt)
	}
	tiny := &Structure{Processes: 1, Barriers: 1, Granularity: 0.1}
	if rt := tiny.SyntheticRuntime(); rt != 1 {
		t.Fatalf("runtime floor = %d, want 1", rt)
	}
}

func TestStructureString(t *testing.T) {
	s := &Structure{Processes: 2, Barriers: 3, Granularity: 4, Variance: 0.5}
	if s.String() == "" {
		t.Fatal("empty string")
	}
}
