package stats

import (
	"math"
	"sort"
)

// sortFloats ascending-sorts xs in place. For samples free of NaNs and
// negative zeros — every metric stream the simulator produces — it runs
// a byte-wise LSD radix sort: for such samples the sorted array is a
// pure function of the multiset of values, so the result is
// element-identical to sort.Float64s, at a fraction of the comparison
// cost on the tens-of-thousands-element samples a 20k-job replay
// summarizes. Samples containing NaN or -0.0 (possible for arbitrary
// library callers, never for simulator metrics) fall back to
// sort.Float64s so ordering semantics stay exactly the stdlib's.
func sortFloats(xs []float64) {
	if len(xs) < 128 {
		// Below this the O(n) passes cost more than comparison sort.
		sort.Float64s(xs)
		return
	}
	for _, x := range xs {
		if math.IsNaN(x) || (x == 0 && math.Signbit(x)) {
			sort.Float64s(xs)
			return
		}
	}
	// Flip the sign bit of non-negatives and all bits of negatives: the
	// resulting uint64s order identically to the floats.
	keys := make([]uint64, len(xs))
	for i, x := range xs {
		b := math.Float64bits(x)
		if b&(1<<63) != 0 {
			b = ^b
		} else {
			b ^= 1 << 63
		}
		keys[i] = b
	}
	tmp := make([]uint64, len(keys))
	var counts [256]int
	for shift := uint(0); shift < 64; shift += 8 {
		for i := range counts {
			counts[i] = 0
		}
		for _, k := range keys {
			counts[(k>>shift)&0xff]++
		}
		if counts[(keys[0]>>shift)&0xff] == len(keys) {
			// Every key shares this byte; the pass would be the identity.
			continue
		}
		total := 0
		for i, c := range counts {
			counts[i] = total
			total += c
		}
		for _, k := range keys {
			b := (k >> shift) & 0xff
			tmp[counts[b]] = k
			counts[b]++
		}
		keys, tmp = tmp, keys
	}
	for i, k := range keys {
		if k&(1<<63) != 0 {
			k ^= 1 << 63
		} else {
			k = ^k
		}
		xs[i] = math.Float64frombits(k)
	}
}
