package stats

import (
	"math"
	"testing"
)

// sampleMean draws n variates and returns their mean.
func sampleMean(d Dist, seed int64, n int) float64 {
	r := NewRNG(seed)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	return sum / float64(n)
}

// checkMean asserts that the empirical mean approaches the analytic mean
// within tol (relative).
func checkMean(t *testing.T, d Dist, tol float64) {
	t.Helper()
	want := d.Mean()
	got := sampleMean(d, 99, 200000)
	if want == 0 {
		if math.Abs(got) > tol {
			t.Errorf("%v: empirical mean %v, want ~0", d, got)
		}
		return
	}
	if math.Abs(got-want)/math.Abs(want) > tol {
		t.Errorf("%v: empirical mean %v, analytic %v", d, got, want)
	}
}

func TestConstant(t *testing.T) {
	d := Constant{C: 42}
	r := NewRNG(1)
	for i := 0; i < 10; i++ {
		if d.Sample(r) != 42 {
			t.Fatal("constant distribution not constant")
		}
	}
	checkMean(t, d, 1e-12)
}

func TestUniformMean(t *testing.T)     { checkMean(t, Uniform{Lo: 2, Hi: 10}, 0.01) }
func TestExponentialMean(t *testing.T) { checkMean(t, Exponential{Lambda: 0.25}, 0.02) }
func TestHyperExpMean(t *testing.T) {
	checkMean(t, HyperExp{P: 0.3, L1: 0.1, L2: 2}, 0.03)
}
func TestErlangMean(t *testing.T) { checkMean(t, Erlang{K: 4, Lambda: 2}, 0.02) }
func TestGammaMeanShapeAbove1(t *testing.T) {
	checkMean(t, Gamma{Alpha: 3.5, Beta: 2}, 0.02)
}
func TestGammaMeanShapeBelow1(t *testing.T) {
	checkMean(t, Gamma{Alpha: 0.45, Beta: 10}, 0.03)
}
func TestLogNormalMean(t *testing.T)  { checkMean(t, LogNormal{Mu: 1, Sigma: 0.5}, 0.02) }
func TestWeibullMean(t *testing.T)    { checkMean(t, Weibull{K: 1.5, Lambda: 100}, 0.02) }
func TestLogUniformMean(t *testing.T) { checkMean(t, LogUniform{Lo: 1, Hi: 10000}, 0.03) }
func TestTwoStageUniformMean(t *testing.T) {
	checkMean(t, TwoStageUniform{Lo: 0, Med: 4, Hi: 8, Prob: 0.7}, 0.02)
}

func TestHyperGammaMean(t *testing.T) {
	d := HyperGamma{P: 0.4, G1: Gamma{Alpha: 2, Beta: 3}, G2: Gamma{Alpha: 5, Beta: 10}}
	checkMean(t, d, 0.03)
}

func TestHyperErlangMean(t *testing.T) {
	d := HyperErlang{
		Branches: []Erlang{{K: 2, Lambda: 1}, {K: 3, Lambda: 0.1}},
		Probs:    []float64{0.6, 0.4},
	}
	checkMean(t, d, 0.03)
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(100, 1.2)
	r := NewRNG(3)
	counts := make([]int, 101)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[int(z.Sample(r))]++
	}
	if counts[1] <= counts[2] || counts[2] <= counts[5] {
		t.Fatalf("Zipf not skewed: c1=%d c2=%d c5=%d", counts[1], counts[2], counts[5])
	}
	checkMean(t, z, 0.05)
}

func TestZipfRange(t *testing.T) {
	z := NewZipf(10, 0.8)
	r := NewRNG(4)
	for i := 0; i < 10000; i++ {
		v := z.Sample(r)
		if v < 1 || v > 10 {
			t.Fatalf("Zipf sample %v out of range", v)
		}
	}
}

func TestEmpirical(t *testing.T) {
	d := Empirical{Values: []float64{1, 2, 3, 4}}
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		v := d.Sample(r)
		if v < 1 || v > 4 {
			t.Fatalf("empirical sample %v outside observed set", v)
		}
	}
	if d.Mean() != 2.5 {
		t.Fatalf("empirical mean = %v, want 2.5", d.Mean())
	}
}

func TestEmpiricalEmpty(t *testing.T) {
	d := Empirical{}
	if got := d.Sample(NewRNG(1)); got != 0 {
		t.Fatalf("empty empirical sample = %v, want 0", got)
	}
	if !math.IsNaN(d.Mean()) {
		t.Fatal("empty empirical mean should be NaN")
	}
}

func TestTruncatedBounds(t *testing.T) {
	d := Truncated{Base: Exponential{Lambda: 0.001}, Lo: 10, Hi: 100}
	r := NewRNG(6)
	for i := 0; i < 10000; i++ {
		v := d.Sample(r)
		if v < 10 || v > 100 {
			t.Fatalf("truncated sample %v outside [10,100]", v)
		}
	}
}

func TestScaled(t *testing.T) {
	d := Scaled{Base: Constant{C: 3}, Factor: 2.5}
	if got := d.Sample(NewRNG(1)); got != 7.5 {
		t.Fatalf("scaled sample = %v, want 7.5", got)
	}
	if d.Mean() != 7.5 {
		t.Fatalf("scaled mean = %v, want 7.5", d.Mean())
	}
}

func TestGammaPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive gamma shape")
		}
	}()
	Gamma{Alpha: 0, Beta: 1}.Sample(NewRNG(1))
}

func TestExponentialCV(t *testing.T) {
	// CV of an exponential is 1; of Erlang-4 is 0.5; of a hyper-exp > 1.
	r := NewRNG(8)
	cv := func(d Dist) float64 {
		xs := make([]float64, 50000)
		for i := range xs {
			xs[i] = d.Sample(r)
		}
		s := Summarize(xs)
		return s.CV
	}
	if v := cv(Exponential{Lambda: 1}); math.Abs(v-1) > 0.05 {
		t.Errorf("exp CV = %v, want ~1", v)
	}
	if v := cv(Erlang{K: 4, Lambda: 1}); math.Abs(v-0.5) > 0.05 {
		t.Errorf("erlang-4 CV = %v, want ~0.5", v)
	}
	if v := cv(HyperExp{P: 0.1, L1: 0.01, L2: 1}); v < 1.2 {
		t.Errorf("hyper-exp CV = %v, want > 1.2", v)
	}
}
