// Package stats provides the statistical substrate for workload modeling
// and scheduler evaluation: a reproducible random number generator, the
// distribution families used by the published workload models
// (exponential, hyper-exponential, gamma, hyper-gamma, log-normal,
// Weibull, log-uniform, two-stage uniform, Zipf), descriptive statistics,
// histograms, the two-sample Kolmogorov-Smirnov statistic, and
// batch-means confidence intervals.
//
// Everything is seeded explicitly; two runs with the same seed produce
// bit-identical streams, which makes every simulation in this repository
// reproducible.
package stats

import "math"

// RNG is a small, fast, explicitly seeded pseudo-random number generator
// (xorshift64* core with a splitmix64 seeder). It intentionally does not
// wrap math/rand so that the stream is fully under our control and stable
// across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Any seed, including zero,
// is valid: seeds are passed through splitmix64 so that similar seeds
// yield unrelated streams.
func NewRNG(seed int64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed.
func (r *RNG) Seed(seed int64) {
	// splitmix64 step to spread out the seed; guarantees nonzero state.
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	r.state = z
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits -> [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0,n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("stats: Int63n called with n <= 0")
	}
	return int64(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Fork derives an independent generator from the current one. Forked
// streams are used to give each workload attribute (arrivals, sizes,
// runtimes, ...) its own stream so that changing one model parameter
// does not perturb the others.
func (r *RNG) Fork() *RNG {
	return NewRNG(int64(r.Uint64()))
}

// NormFloat64 returns a standard normal variate (polar Marsaglia method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a pseudo-random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
