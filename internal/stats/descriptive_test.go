package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %v, want sqrt(2.5)", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary should be zero: %+v", s)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.Median != 7 || s.P99 != 7 {
		t.Fatalf("singleton summary wrong: %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize mutated its input")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct{ q, want float64 }{
		{0, 0}, {1, 100}, {0.5, 50}, {0.25, 25}, {0.9, 90},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileMonotone(t *testing.T) {
	r := NewRNG(1)
	f := func(seed int64) bool {
		rr := NewRNG(seed)
		n := rr.Intn(100) + 2
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		sort.Float64s(xs)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Fatalf("GeoMean(1,100) = %v, want 10", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("GeoMean(nil) = %v, want 0", g)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if c := Correlation(xs, ys); math.Abs(c-1) > 1e-12 {
		t.Fatalf("perfect positive correlation = %v", c)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if c := Correlation(xs, neg); math.Abs(c+1) > 1e-12 {
		t.Fatalf("perfect negative correlation = %v", c)
	}
	if c := Correlation(xs, []float64{3, 3, 3, 3, 3}); c != 0 {
		t.Fatalf("degenerate correlation = %v, want 0", c)
	}
	if c := Correlation(xs, []float64{1}); c != 0 {
		t.Fatalf("mismatched lengths should give 0, got %v", c)
	}
}

func TestKSIdentical(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if d := KSStatistic(xs, xs); d != 0 {
		t.Fatalf("K-S of identical samples = %v, want 0", d)
	}
}

func TestKSDisjoint(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 20, 30}
	if d := KSStatistic(a, b); math.Abs(d-1) > 1e-12 {
		t.Fatalf("K-S of disjoint samples = %v, want 1", d)
	}
}

func TestKSEmpty(t *testing.T) {
	if d := KSStatistic(nil, []float64{1}); d != 1 {
		t.Fatalf("K-S with empty sample = %v, want 1", d)
	}
}

func TestKSSameDistributionSmall(t *testing.T) {
	r1 := NewRNG(1)
	r2 := NewRNG(2)
	d := Exponential{Lambda: 1}
	a := make([]float64, 5000)
	b := make([]float64, 5000)
	for i := range a {
		a[i] = d.Sample(r1)
		b[i] = d.Sample(r2)
	}
	if ks := KSStatistic(a, b); ks > 0.05 {
		t.Fatalf("K-S between same-dist samples = %v, want < 0.05", ks)
	}
}

func TestKSDifferentDistributionLarge(t *testing.T) {
	r := NewRNG(3)
	a := make([]float64, 5000)
	b := make([]float64, 5000)
	for i := range a {
		a[i] = Exponential{Lambda: 1}.Sample(r)
		b[i] = Exponential{Lambda: 0.1}.Sample(r)
	}
	if ks := KSStatistic(a, b); ks < 0.3 {
		t.Fatalf("K-S between very different dists = %v, want > 0.3", ks)
	}
}

func TestKSSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(seed)
		a := make([]float64, 50+r.Intn(100))
		b := make([]float64, 50+r.Intn(100))
		for i := range a {
			a[i] = r.Float64()
		}
		for i := range b {
			b[i] = r.Float64() * 2
		}
		d1 := KSStatistic(a, b)
		d2 := KSStatistic(b, a)
		return math.Abs(d1-d2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestKendallTau(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if tau := KendallTau(a, a); tau != 1 {
		t.Fatalf("tau(identical) = %v, want 1", tau)
	}
	rev := []float64{4, 3, 2, 1}
	if tau := KendallTau(a, rev); tau != -1 {
		t.Fatalf("tau(reversed) = %v, want -1", tau)
	}
}

func TestKendallTauPartial(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 3, 2}
	// one discordant pair out of three -> (2-1)/3
	if tau := KendallTau(a, b); math.Abs(tau-1.0/3) > 1e-12 {
		t.Fatalf("tau = %v, want 1/3", tau)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1) // under
	h.Add(11) // over
	if h.Total() != 12 {
		t.Fatalf("total = %d, want 12", h.Total())
	}
	for i := 0; i < 10; i++ {
		if h.Counts[i] != 1 {
			t.Fatalf("bin %d = %d, want 1", i, h.Counts[i])
		}
		if math.Abs(h.Fraction(i)-1.0/12) > 1e-12 {
			t.Fatalf("fraction of bin %d = %v", i, h.Fraction(i))
		}
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestBatchMeansCI(t *testing.T) {
	r := NewRNG(9)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = 5 + r.NormFloat64()
	}
	mean, hw := BatchMeansCI(xs, 20)
	if math.Abs(mean-5) > 0.1 {
		t.Fatalf("batch mean = %v, want ~5", mean)
	}
	if hw <= 0 || hw > 0.5 {
		t.Fatalf("half width = %v, want small positive", hw)
	}
}

func TestTQuantile95(t *testing.T) {
	cases := map[int]float64{1: 12.706, 4: 2.776, 9: 2.262, 30: 2.042}
	for df, want := range cases {
		if got := TQuantile95(df); got != want {
			t.Errorf("TQuantile95(%d) = %v, want %v", df, got, want)
		}
	}
	// Past the table: the approximation must stay close to the true
	// quantile (2.040 at df=31, 2.000 at df=60, 1.980 at df=120) and
	// approach the normal value from above.
	approx := map[int]float64{31: 2.040, 60: 2.000, 120: 1.980}
	for df, want := range approx {
		if got := TQuantile95(df); math.Abs(got-want) > 0.01 {
			t.Errorf("TQuantile95(%d) = %v, want ~%v", df, got, want)
		}
	}
	if got := TQuantile95(1 << 20); got < 1.96 || got > 1.961 {
		t.Errorf("asymptote = %v, want ~1.96", got)
	}
	if TQuantile95(0) != 0 {
		t.Error("df=0 must return 0")
	}
	// Monotone non-increasing toward the normal limit.
	for df := 1; df < 40; df++ {
		if TQuantile95(df+1) > TQuantile95(df) {
			t.Fatalf("t-quantile not monotone at df=%d", df)
		}
	}
}

func TestBatchMeansCIEdge(t *testing.T) {
	if m, hw := BatchMeansCI(nil, 10); m != 0 || hw != 0 {
		t.Fatal("empty input should give zeros")
	}
	m, _ := BatchMeansCI([]float64{3}, 10)
	if m != 3 {
		t.Fatalf("singleton mean = %v", m)
	}
}

func TestMeanHelpers(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean wrong")
	}
}
