package stats

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N              int
	Mean, Std, CV  float64
	Min, Max       float64
	Median         float64
	P10, P90, P99  float64
	Sum            float64
	SecondMomentum float64 // E[X^2], used by slowdown-style ratios
}

// Summarize computes descriptive statistics of xs. An empty sample
// returns a zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sortFloats(sorted)
	s.Min = sorted[0]
	s.Max = sorted[s.N-1]
	for _, v := range sorted {
		s.Sum += v
		s.SecondMomentum += v * v
	}
	s.Mean = s.Sum / float64(s.N)
	s.SecondMomentum /= float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, v := range sorted {
			d := v - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	if s.Mean != 0 {
		s.CV = s.Std / s.Mean
	}
	s.Median = Quantile(sorted, 0.5)
	s.P10 = Quantile(sorted, 0.10)
	s.P90 = Quantile(sorted, 0.90)
	s.P99 = Quantile(sorted, 0.99)
	return s
}

// Quantile returns the q-quantile (0<=q<=1) of an ascending-sorted sample
// using linear interpolation between order statistics.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs; non-positive entries are
// clamped to tiny to keep the result finite (the convention used for
// geometric-mean slowdown).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		if v < 1e-12 {
			v = 1e-12
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(xs)))
}

// Correlation returns the Pearson correlation coefficient of (xs, ys).
// It returns 0 when either sample is degenerate.
func Correlation(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// KSStatistic returns the two-sample Kolmogorov-Smirnov statistic
// D = sup |F1(x) - F2(x)|. It is the distance used by experiment E9 to
// rank model fidelity (the paper cites the co-plot comparison of logs
// and models [58]; K-S distance is the scalar analogue).
func KSStatistic(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	var d float64
	i, j := 0, 0
	na, nb := float64(len(as)), float64(len(bs))
	for i < len(as) && j < len(bs) {
		// Advance past all observations equal to the smaller current value
		// in both samples, so ties do not inflate the statistic.
		v := as[i]
		if bs[j] < v {
			v = bs[j]
		}
		for i < len(as) && as[i] == v {
			i++
		}
		for j < len(bs) && bs[j] == v {
			j++
		}
		diff := math.Abs(float64(i)/na - float64(j)/nb)
		if diff > d {
			d = diff
		}
	}
	return d
}

// KendallTau computes Kendall's rank correlation between two orderings
// expressed as score slices (higher = better). It is used by E3 to
// quantify how much scheduler rankings shift as the objective weight
// changes.
func KendallTau(a, b []float64) float64 {
	n := len(a)
	if n != len(b) || n < 2 {
		return 1
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := a[i] - a[j]
			db := b[i] - b[j]
			p := da * db
			switch {
			case p > 0:
				concordant++
			case p < 0:
				discordant++
			}
		}
	}
	total := float64(n*(n-1)) / 2
	if total == 0 {
		return 1
	}
	return float64(concordant-discordant) / total
}

// Histogram is a fixed-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	under  int
	over   int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins on [lo,hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	h.total++
	switch {
	case v < h.Lo:
		h.under++
	case v >= h.Hi:
		h.over++
	default:
		idx := int(float64(len(h.Counts)) * (v - h.Lo) / (h.Hi - h.Lo))
		if idx >= len(h.Counts) {
			idx = len(h.Counts) - 1
		}
		h.Counts[idx]++
	}
}

// Total returns the number of observations added (including out-of-range).
func (h *Histogram) Total() int { return h.total }

// Fraction returns the fraction of observations that fell into bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// BatchMeansCI returns the mean and half-width of an approximate 95%
// confidence interval computed with the batch-means method over k batches.
// Simulation outputs are autocorrelated; batch means is the standard
// output-analysis technique for steady-state measures.
func BatchMeansCI(xs []float64, k int) (mean, halfWidth float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	batch := n / k
	if batch == 0 {
		batch = 1
		k = n
	}
	means := make([]float64, 0, k)
	for i := 0; i < k; i++ {
		lo := i * batch
		hi := lo + batch
		if i == k-1 {
			hi = n
		}
		means = append(means, Mean(xs[lo:hi]))
	}
	m := Mean(means)
	if len(means) < 2 {
		return m, 0
	}
	ss := 0.0
	for _, v := range means {
		d := v - m
		ss += d * d
	}
	se := math.Sqrt(ss/float64(len(means)-1)) / math.Sqrt(float64(len(means)))
	return m, TQuantile95(len(means)-1) * se
}

// tTable97p5 holds the two-sided 95% (one-sided 97.5%) Student-t
// critical values for 1..30 degrees of freedom.
var tTable97p5 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TQuantile95 returns the two-sided 95% Student-t critical value for
// df degrees of freedom — exact table for df ≤ 30, then the
// asymptotic approximation 1.96 + 2.4/df (within 0.3% of the true
// quantile for df > 30, continuous with the table at the boundary),
// the multiplier for confidence half-widths over small replication
// counts where 1.96 materially under-covers.
func TQuantile95(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= len(tTable97p5) {
		return tTable97p5[df-1]
	}
	return 1.96 + 2.4/float64(df)
}
