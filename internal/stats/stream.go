package stats

import (
	"math"
	"sort"
)

// This file holds the incremental (one-observation-at-a-time)
// counterparts of the batch descriptive statistics: Welford moments, a
// P² quantile estimator, a streaming log-mean, and a Stream that
// composes them into the same Summary a batch Summarize would produce.
// They are what lets the metrics layer report on million-job replays
// without materializing the sample.

// Moments is a Welford accumulator of running moments: mean and
// variance in one numerically stable pass, plus min/max/sum. The zero
// value is ready to use.
type Moments struct {
	n          int
	mean, m2   float64
	min, max   float64
	sum, sumSq float64
}

// Add folds one observation into the moments.
func (m *Moments) Add(v float64) {
	if m.n == 0 {
		m.min, m.max = v, v
	} else {
		if v < m.min {
			m.min = v
		}
		if v > m.max {
			m.max = v
		}
	}
	m.n++
	d := v - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (v - m.mean)
	m.sum += v
	m.sumSq += v * v
}

// N returns the number of observations.
func (m *Moments) N() int { return m.n }

// Mean returns the running mean (0 when empty).
func (m *Moments) Mean() float64 { return m.mean }

// Std returns the sample standard deviation (n-1 denominator).
func (m *Moments) Std() float64 {
	if m.n < 2 {
		return 0
	}
	return math.Sqrt(m.m2 / float64(m.n-1))
}

// Min returns the smallest observation (0 when empty).
func (m *Moments) Min() float64 { return m.min }

// Max returns the largest observation (0 when empty).
func (m *Moments) Max() float64 { return m.max }

// Sum returns the running sum.
func (m *Moments) Sum() float64 { return m.sum }

// SecondMoment returns E[X²] (0 when empty).
func (m *Moments) SecondMoment() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sumSq / float64(m.n)
}

// LogMean accumulates a geometric mean incrementally with the same
// non-positive clamping convention as the batch GeoMean.
type LogMean struct {
	n   int
	sum float64
}

// Add folds one observation into the log-sum.
func (g *LogMean) Add(v float64) {
	if v < 1e-12 {
		v = 1e-12
	}
	g.sum += math.Log(v)
	g.n++
}

// N returns the number of observations.
func (g *LogMean) N() int { return g.n }

// Mean returns the geometric mean (0 when empty).
func (g *LogMean) Mean() float64 {
	if g.n == 0 {
		return 0
	}
	return math.Exp(g.sum / float64(g.n))
}

// P2Quantile estimates a single quantile in O(1) memory with the P²
// algorithm of Jain & Chlamtac (CACM 1985): five markers whose heights
// approximate the quantile curve are nudged toward their ideal
// positions with parabolic interpolation as observations stream in.
// The estimate is exact for the first five observations and typically
// within a fraction of a percent of the true quantile for unimodal
// samples afterwards.
type P2Quantile struct {
	p     float64
	count int
	q     [5]float64 // marker heights
	n     [5]int     // actual marker positions (1-based)
	np    [5]float64 // desired marker positions
	dn    [5]float64 // desired position increments
}

// NewP2 returns an estimator for the p-quantile (0 < p < 1).
func NewP2(p float64) P2Quantile {
	return P2Quantile{p: p}
}

// Add folds one observation into the estimate.
func (e *P2Quantile) Add(v float64) {
	if e.count < 5 {
		e.q[e.count] = v
		e.count++
		if e.count == 5 {
			sort.Float64s(e.q[:])
			p := e.p
			e.n = [5]int{1, 2, 3, 4, 5}
			e.np = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
			e.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
		}
		return
	}
	e.count++

	// Locate the cell k containing v, extending the extremes.
	var k int
	switch {
	case v < e.q[0]:
		e.q[0] = v
		k = 0
	case v >= e.q[4]:
		e.q[4] = v
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if v < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := 0; i < 5; i++ {
		e.np[i] += e.dn[i]
	}

	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.np[i] - float64(e.n[i])
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			sign := 1
			if d < 0 {
				sign = -1
			}
			qn := e.parabolic(i, sign)
			if !(e.q[i-1] < qn && qn < e.q[i+1]) {
				qn = e.linear(i, sign)
			}
			e.q[i] = qn
			e.n[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic marker update.
func (e *P2Quantile) parabolic(i, d int) float64 {
	df := float64(d)
	ni, nm, npl := float64(e.n[i]), float64(e.n[i-1]), float64(e.n[i+1])
	return e.q[i] + df/(npl-nm)*
		((ni-nm+df)*(e.q[i+1]-e.q[i])/(npl-ni)+
			(npl-ni-df)*(e.q[i]-e.q[i-1])/(ni-nm))
}

// linear is the fallback update when the parabola is non-monotone.
func (e *P2Quantile) linear(i, d int) float64 {
	return e.q[i] + float64(d)*(e.q[i+d]-e.q[i])/float64(e.n[i+d]-e.n[i])
}

// N returns the number of observations.
func (e *P2Quantile) N() int { return e.count }

// Value returns the current quantile estimate. With fewer than five
// observations it is the exact interpolated quantile of what was seen.
func (e *P2Quantile) Value() float64 {
	if e.count == 0 {
		return 0
	}
	if e.count < 5 {
		var buf [5]float64
		copy(buf[:], e.q[:e.count])
		sorted := buf[:e.count]
		sort.Float64s(sorted)
		return Quantile(sorted, e.p)
	}
	return e.q[2]
}

// Stream accumulates one measure incrementally and yields a Summary.
//
// In exact mode (the default) it retains the observations — one
// float64 each — and Summary() defers to the batch Summarize, so the
// result is bit-identical to summarizing the same sample in any
// insertion order. In sketch mode it holds Welford moments plus P²
// estimators for the Summary's quantiles in O(1) memory, trading exact
// order statistics for constant footprint on unbounded streams.
type Stream struct {
	sketch             bool
	xs                 []float64
	mom                Moments
	q10, q50, q90, q99 P2Quantile
}

// NewStream returns a Stream; sketch selects the O(1)-memory mode.
func NewStream(sketch bool) *Stream {
	s := &Stream{sketch: sketch}
	if sketch {
		s.q10 = NewP2(0.10)
		s.q50 = NewP2(0.50)
		s.q90 = NewP2(0.90)
		s.q99 = NewP2(0.99)
	}
	return s
}

// Add folds one observation into the stream.
func (s *Stream) Add(v float64) {
	if !s.sketch {
		s.xs = append(s.xs, v)
		return
	}
	s.mom.Add(v)
	s.q10.Add(v)
	s.q50.Add(v)
	s.q90.Add(v)
	s.q99.Add(v)
}

// N returns the number of observations.
func (s *Stream) N() int {
	if !s.sketch {
		return len(s.xs)
	}
	return s.mom.N()
}

// Summary renders the accumulated sample as a Summary. Exact mode is
// bit-identical to Summarize over the same observations; sketch mode
// substitutes P² estimates for the order statistics (Min/Max stay
// exact via the moments).
func (s *Stream) Summary() Summary {
	if !s.sketch {
		return Summarize(s.xs)
	}
	var sum Summary
	sum.N = s.mom.N()
	if sum.N == 0 {
		return sum
	}
	sum.Mean = s.mom.Mean()
	sum.Std = s.mom.Std()
	if sum.Mean != 0 {
		sum.CV = sum.Std / sum.Mean
	}
	sum.Min = s.mom.Min()
	sum.Max = s.mom.Max()
	sum.Sum = s.mom.Sum()
	sum.SecondMomentum = s.mom.SecondMoment()
	sum.Median = s.q50.Value()
	sum.P10 = s.q10.Value()
	sum.P90 = s.q90.Value()
	sum.P99 = s.q99.Value()
	return sum
}
