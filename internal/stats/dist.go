package stats

import (
	"fmt"
	"math"
	"sort"
)

// Dist is a continuous or discrete distribution that can be sampled.
// All workload model components (interarrival times, runtimes, sizes,
// think times, memory demands) are expressed as Dists so models can be
// composed and swapped.
type Dist interface {
	// Sample draws one variate using rng.
	Sample(rng *RNG) float64
	// Mean returns the analytic mean of the distribution, or NaN if it
	// has no finite mean.
	Mean() float64
	// String describes the distribution and its parameters.
	String() string
}

// ---------------------------------------------------------------------------
// Constant

// Constant is a degenerate distribution that always returns C.
type Constant struct{ C float64 }

func (c Constant) Sample(*RNG) float64 { return c.C }
func (c Constant) Mean() float64       { return c.C }
func (c Constant) String() string      { return fmt.Sprintf("Constant(%g)", c.C) }

// ---------------------------------------------------------------------------
// Uniform

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

func (u Uniform) Sample(rng *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*rng.Float64() }
func (u Uniform) Mean() float64           { return (u.Lo + u.Hi) / 2 }
func (u Uniform) String() string          { return fmt.Sprintf("Uniform[%g,%g)", u.Lo, u.Hi) }

// ---------------------------------------------------------------------------
// Exponential

// Exponential has rate Lambda (mean 1/Lambda). It is the canonical
// interarrival model for Poisson job streams.
type Exponential struct{ Lambda float64 }

func (e Exponential) Sample(rng *RNG) float64 { return rng.ExpFloat64() / e.Lambda }
func (e Exponential) Mean() float64           { return 1 / e.Lambda }
func (e Exponential) String() string          { return fmt.Sprintf("Exp(lambda=%g)", e.Lambda) }

// ---------------------------------------------------------------------------
// Hyper-exponential

// HyperExp is a two-branch hyper-exponential: with probability P the
// variate is Exp(L1), otherwise Exp(L2). Used for bursty interarrivals
// and highly variable service demands (CV > 1).
type HyperExp struct {
	P      float64 // probability of branch 1
	L1, L2 float64 // rates of the two branches
}

func (h HyperExp) Sample(rng *RNG) float64 {
	if rng.Bool(h.P) {
		return rng.ExpFloat64() / h.L1
	}
	return rng.ExpFloat64() / h.L2
}

func (h HyperExp) Mean() float64 { return h.P/h.L1 + (1-h.P)/h.L2 }
func (h HyperExp) String() string {
	return fmt.Sprintf("HyperExp(p=%g,l1=%g,l2=%g)", h.P, h.L1, h.L2)
}

// ---------------------------------------------------------------------------
// Erlang and hyper-Erlang

// Erlang is the Erlang-K distribution: the sum of K exponentials of rate
// Lambda. CV = 1/sqrt(K) < 1, so it models low-variability stages.
type Erlang struct {
	K      int
	Lambda float64
}

func (e Erlang) Sample(rng *RNG) float64 {
	sum := 0.0
	for i := 0; i < e.K; i++ {
		sum += rng.ExpFloat64()
	}
	return sum / e.Lambda
}

func (e Erlang) Mean() float64  { return float64(e.K) / e.Lambda }
func (e Erlang) String() string { return fmt.Sprintf("Erlang(k=%d,lambda=%g)", e.K, e.Lambda) }

// HyperErlang is a probabilistic mixture of Erlang branches. Jann et al.
// (1997) model interarrival times and service demands of the Cornell SP2
// workload with hyper-Erlangs of common order; this type is the substrate
// for internal/model/jann.
type HyperErlang struct {
	Branches []Erlang
	Probs    []float64 // must sum to 1 and match len(Branches)
}

func (h HyperErlang) Sample(rng *RNG) float64 {
	u := rng.Float64()
	acc := 0.0
	for i, p := range h.Probs {
		acc += p
		if u < acc {
			return h.Branches[i].Sample(rng)
		}
	}
	return h.Branches[len(h.Branches)-1].Sample(rng)
}

func (h HyperErlang) Mean() float64 {
	m := 0.0
	for i, p := range h.Probs {
		m += p * h.Branches[i].Mean()
	}
	return m
}

func (h HyperErlang) String() string {
	return fmt.Sprintf("HyperErlang(%d branches)", len(h.Branches))
}

// ---------------------------------------------------------------------------
// Gamma and hyper-gamma

// Gamma is the gamma distribution with shape Alpha and scale Beta
// (mean Alpha*Beta). Lublin & Feitelson (2003; MS thesis 1999) model
// runtimes and per-process demands with hyper-gamma mixtures.
type Gamma struct {
	Alpha, Beta float64
}

func (g Gamma) Sample(rng *RNG) float64 {
	return g.Beta * sampleGammaShape(rng, g.Alpha)
}

func (g Gamma) Mean() float64  { return g.Alpha * g.Beta }
func (g Gamma) String() string { return fmt.Sprintf("Gamma(a=%g,b=%g)", g.Alpha, g.Beta) }

// sampleGammaShape draws Gamma(alpha, 1) via Marsaglia-Tsang, with the
// standard boost for alpha < 1.
func sampleGammaShape(rng *RNG, alpha float64) float64 {
	if alpha <= 0 {
		panic("stats: Gamma with non-positive shape")
	}
	if alpha < 1 {
		// Boost: G(a) = G(a+1) * U^(1/a)
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return sampleGammaShape(rng, alpha+1) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// HyperGamma is a two-branch gamma mixture: with probability P the
// variate comes from G1, otherwise from G2.
type HyperGamma struct {
	P      float64
	G1, G2 Gamma
}

func (h HyperGamma) Sample(rng *RNG) float64 {
	if rng.Bool(h.P) {
		return h.G1.Sample(rng)
	}
	return h.G2.Sample(rng)
}

func (h HyperGamma) Mean() float64 { return h.P*h.G1.Mean() + (1-h.P)*h.G2.Mean() }
func (h HyperGamma) String() string {
	return fmt.Sprintf("HyperGamma(p=%g,%v,%v)", h.P, h.G1, h.G2)
}

// ---------------------------------------------------------------------------
// Log-normal

// LogNormal has location Mu and scale Sigma of the underlying normal.
type LogNormal struct {
	Mu, Sigma float64
}

func (l LogNormal) Sample(rng *RNG) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }
func (l LogNormal) String() string {
	return fmt.Sprintf("LogNormal(mu=%g,sigma=%g)", l.Mu, l.Sigma)
}

// ---------------------------------------------------------------------------
// Weibull

// Weibull has shape K and scale Lambda. Used for time-between-failure in
// the outage generator.
type Weibull struct {
	K, Lambda float64
}

func (w Weibull) Sample(rng *RNG) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return w.Lambda * math.Pow(-math.Log(u), 1/w.K)
}

func (w Weibull) Mean() float64 {
	return w.Lambda * math.Gamma(1+1/w.K)
}

func (w Weibull) String() string { return fmt.Sprintf("Weibull(k=%g,lambda=%g)", w.K, w.Lambda) }

// ---------------------------------------------------------------------------
// Log-uniform (Downey)

// LogUniform is uniform in log space on [Lo, Hi], Lo > 0. Downey (1997)
// observed that cumulative runtime distributions of several workloads are
// approximately linear in log(t), i.e. runtimes are log-uniform.
type LogUniform struct {
	Lo, Hi float64
}

func (l LogUniform) Sample(rng *RNG) float64 {
	a, b := math.Log(l.Lo), math.Log(l.Hi)
	return math.Exp(a + (b-a)*rng.Float64())
}

func (l LogUniform) Mean() float64 {
	a, b := math.Log(l.Lo), math.Log(l.Hi)
	if b == a {
		return l.Lo
	}
	return (l.Hi - l.Lo) / (b - a)
}

func (l LogUniform) String() string { return fmt.Sprintf("LogUniform[%g,%g]", l.Lo, l.Hi) }

// ---------------------------------------------------------------------------
// Two-stage uniform (Lublin size model)

// TwoStageUniform is the two-stage log-uniform used by the Lublin model
// for job sizes: with probability Prob the value is uniform on [Med, Hi],
// otherwise uniform on [Lo, Med]. All in log2 space when used for sizes.
type TwoStageUniform struct {
	Lo, Med, Hi float64
	Prob        float64 // probability of the upper stage
}

func (t TwoStageUniform) Sample(rng *RNG) float64 {
	if rng.Bool(t.Prob) {
		return t.Med + (t.Hi-t.Med)*rng.Float64()
	}
	return t.Lo + (t.Med-t.Lo)*rng.Float64()
}

func (t TwoStageUniform) Mean() float64 {
	return t.Prob*(t.Med+t.Hi)/2 + (1-t.Prob)*(t.Lo+t.Med)/2
}

func (t TwoStageUniform) String() string {
	return fmt.Sprintf("TwoStageUniform[%g,%g,%g;p=%g]", t.Lo, t.Med, t.Hi, t.Prob)
}

// ---------------------------------------------------------------------------
// Zipf

// Zipf is a discrete Zipf distribution over {1..N} with exponent S >= 0.
// Used for user/application popularity (a few users dominate the log).
type Zipf struct {
	N int
	S float64

	cdf []float64 // lazily built cumulative weights
}

// NewZipf precomputes the CDF for sampling.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: Zipf with n <= 0")
	}
	z := &Zipf{N: n, S: s}
	z.cdf = make([]float64, n)
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), s)
		z.cdf[i-1] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

func (z *Zipf) Sample(rng *RNG) float64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= z.N {
		i = z.N - 1
	}
	return float64(i + 1)
}

func (z *Zipf) Mean() float64 {
	m := 0.0
	prev := 0.0
	for i, c := range z.cdf {
		m += float64(i+1) * (c - prev)
		prev = c
	}
	return m
}

func (z *Zipf) String() string { return fmt.Sprintf("Zipf(n=%d,s=%g)", z.N, z.S) }

// ---------------------------------------------------------------------------
// Empirical

// Empirical samples uniformly from a fixed set of observations. It is the
// bridge from a recorded log back into a generator ("resampling").
type Empirical struct {
	Values []float64
}

func (e Empirical) Sample(rng *RNG) float64 {
	if len(e.Values) == 0 {
		return 0
	}
	return e.Values[rng.Intn(len(e.Values))]
}

func (e Empirical) Mean() float64 {
	if len(e.Values) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range e.Values {
		s += v
	}
	return s / float64(len(e.Values))
}

func (e Empirical) String() string { return fmt.Sprintf("Empirical(n=%d)", len(e.Values)) }

// ---------------------------------------------------------------------------
// Transforms

// Truncated clamps samples of Base into [Lo, Hi] by resampling (up to 64
// attempts, then clamping). Workload fields are bounded (runtime limits,
// machine size), so every model distribution gets wrapped in one of these.
type Truncated struct {
	Base   Dist
	Lo, Hi float64
}

func (t Truncated) Sample(rng *RNG) float64 {
	for i := 0; i < 64; i++ {
		v := t.Base.Sample(rng)
		if v >= t.Lo && v <= t.Hi {
			return v
		}
	}
	v := t.Base.Sample(rng)
	return math.Min(math.Max(v, t.Lo), t.Hi)
}

func (t Truncated) Mean() float64  { return t.Base.Mean() } // approximation
func (t Truncated) String() string { return fmt.Sprintf("Truncated(%v,[%g,%g])", t.Base, t.Lo, t.Hi) }

// Scaled multiplies samples of Base by Factor. Used for load scaling:
// multiplying interarrival times by 1/f raises offered load by f.
type Scaled struct {
	Base   Dist
	Factor float64
}

func (s Scaled) Sample(rng *RNG) float64 { return s.Factor * s.Base.Sample(rng) }
func (s Scaled) Mean() float64           { return s.Factor * s.Base.Mean() }
func (s Scaled) String() string          { return fmt.Sprintf("Scaled(%v,%g)", s.Base, s.Factor) }
