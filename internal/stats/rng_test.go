package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedIndependence(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from different seeds collide too often: %d/1000", same)
	}
}

func TestRNGZeroSeedValid(t *testing.T) {
	r := NewRNG(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero-seed stream is degenerate: only %d distinct values", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	f := func(_ uint8) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64MeanNearHalf(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for n := 1; n < 64; n++ {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestForkIndependence(t *testing.T) {
	r := NewRNG(5)
	f1 := r.Fork()
	f2 := r.Fork()
	same := 0
	for i := 0; i < 1000; i++ {
		if f1.Uint64() == f2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked streams collide: %d/1000", same)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(17)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if math.Abs(sum/n-1) > 0.02 {
		t.Fatalf("exp mean = %v, want ~1", sum/n)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(23)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(29)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", frac)
	}
}
