package stats

import (
	"math"
	"reflect"
	"sort"
	"testing"
)

// lognormalish produces a deterministic heavy-tailed sample, the shape
// wait-time and slowdown distributions actually have.
func lognormalish(n int, seed int64) []float64 {
	rng := NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Exp(2 + 1.5*rng.NormFloat64())
	}
	return out
}

func TestMomentsMatchBatch(t *testing.T) {
	xs := lognormalish(500, 1)
	var m Moments
	for _, v := range xs {
		m.Add(v)
	}
	want := Summarize(xs)
	if m.N() != want.N {
		t.Fatalf("n = %d, want %d", m.N(), want.N)
	}
	close := func(got, want, tol float64, name string) {
		if math.Abs(got-want) > tol*math.Max(1, math.Abs(want)) {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	close(m.Mean(), want.Mean, 1e-12, "mean")
	close(m.Std(), want.Std, 1e-9, "std")
	close(m.Sum(), want.Sum, 1e-12, "sum")
	close(m.SecondMoment(), want.SecondMomentum, 1e-12, "second moment")
	if m.Min() != want.Min || m.Max() != want.Max {
		t.Errorf("min/max = %v/%v, want %v/%v", m.Min(), m.Max(), want.Min, want.Max)
	}
}

func TestMomentsEmpty(t *testing.T) {
	var m Moments
	if m.N() != 0 || m.Mean() != 0 || m.Std() != 0 || m.SecondMoment() != 0 {
		t.Fatal("empty moments should be all zero")
	}
}

func TestLogMeanMatchesGeoMean(t *testing.T) {
	xs := append(lognormalish(200, 2), 0, -3) // exercise the clamp
	var g LogMean
	for _, v := range xs {
		g.Add(v)
	}
	if want := GeoMean(xs); g.Mean() != want {
		t.Fatalf("log mean = %v, want %v (same fold order must be identical)", g.Mean(), want)
	}
	var empty LogMean
	if empty.Mean() != 0 {
		t.Fatal("empty log mean should be 0")
	}
}

func TestP2SmallSamplesExact(t *testing.T) {
	// Below five observations the estimator must be the exact
	// interpolated quantile of what it has seen.
	xs := []float64{5, 1, 4}
	e := NewP2(0.5)
	for _, v := range xs {
		e.Add(v)
	}
	sorted := []float64{1, 4, 5}
	if got, want := e.Value(), Quantile(sorted, 0.5); got != want {
		t.Fatalf("median of 3 = %v, want %v", got, want)
	}
	if empty := NewP2(0.9); empty.Value() != 0 {
		t.Fatal("empty estimator should report 0")
	}
}

func TestP2Accuracy(t *testing.T) {
	xs := lognormalish(20000, 3)
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		e := NewP2(p)
		for _, v := range xs {
			e.Add(v)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		exact := Quantile(sorted, p)
		// Heavy-tailed 20k sample: a few percent of relative error is
		// the documented regime for P².
		if rel := math.Abs(e.Value()-exact) / exact; rel > 0.05 {
			t.Errorf("p=%v: estimate %v vs exact %v (rel err %.3f)", p, e.Value(), exact, rel)
		}
	}
}

func TestP2MonotoneAcrossQuantiles(t *testing.T) {
	xs := lognormalish(5000, 4)
	e10, e50, e90 := NewP2(0.1), NewP2(0.5), NewP2(0.9)
	for _, v := range xs {
		e10.Add(v)
		e50.Add(v)
		e90.Add(v)
	}
	if !(e10.Value() < e50.Value() && e50.Value() < e90.Value()) {
		t.Fatalf("quantile estimates not monotone: %v %v %v", e10.Value(), e50.Value(), e90.Value())
	}
}

// TestStreamExactBitIdentical is the stats-layer half of the
// streaming ≡ batch guarantee: an exact-mode Stream yields the very
// Summary Summarize computes, regardless of insertion order.
func TestStreamExactBitIdentical(t *testing.T) {
	xs := lognormalish(777, 5)
	s := NewStream(false)
	for _, v := range xs {
		s.Add(v)
	}
	if got, want := s.Summary(), Summarize(xs); !reflect.DeepEqual(got, want) {
		t.Fatalf("exact stream summary diverges:\n got %+v\nwant %+v", got, want)
	}
	// Reversed insertion order: Summarize sorts, so still identical.
	r := NewStream(false)
	for i := len(xs) - 1; i >= 0; i-- {
		r.Add(xs[i])
	}
	if got, want := r.Summary(), Summarize(xs); !reflect.DeepEqual(got, want) {
		t.Fatal("exact stream summary is insertion-order dependent")
	}
}

func TestStreamSketchApproximates(t *testing.T) {
	xs := lognormalish(20000, 6)
	s := NewStream(true)
	for _, v := range xs {
		s.Add(v)
	}
	want := Summarize(xs)
	got := s.Summary()
	if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("sketch n/min/max should be exact: %+v vs %+v", got, want)
	}
	if math.Abs(got.Mean-want.Mean) > 1e-9*want.Mean {
		t.Fatalf("sketch mean %v vs %v", got.Mean, want.Mean)
	}
	relOK := func(g, w float64, name string) {
		if math.Abs(g-w) > 0.05*w {
			t.Errorf("sketch %s = %v, exact %v", name, g, w)
		}
	}
	relOK(got.Median, want.Median, "median")
	relOK(got.P90, want.P90, "p90")
	relOK(got.P99, want.P99, "p99")
	relOK(got.Std, want.Std, "std")
}

func TestStreamEmpty(t *testing.T) {
	for _, sketch := range []bool{false, true} {
		s := NewStream(sketch)
		if s.N() != 0 {
			t.Fatal("fresh stream not empty")
		}
		if got := s.Summary(); !reflect.DeepEqual(got, Summary{}) {
			t.Fatalf("empty summary (sketch=%v) = %+v", sketch, got)
		}
	}
}
