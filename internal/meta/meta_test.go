package meta

import (
	"testing"

	"parsched/internal/core"
	"parsched/internal/model"
	"parsched/internal/model/lublin"
	"parsched/internal/predict"
	"parsched/internal/sched"
)

// twoSiteGrid builds a 2-site grid: site A idle, site B loaded with a
// long local job.
func twoSiteGrid(t *testing.T) *Grid {
	t.Helper()
	busy := &core.Workload{Name: "local-b", MaxNodes: 16, Jobs: []*core.Job{
		{ID: 1, Submit: 0, Size: 16, Runtime: 10000, User: 1},
	}}
	g, err := NewGrid([]SiteSpec{
		{Name: "a", Nodes: 16, Scheduler: sched.NewEASY()},
		{Name: "b", Nodes: 16, Scheduler: sched.NewEASY(), Local: busy},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func metaJob(id int64, submit int64, size int, rt int64) *core.Job {
	return &core.Job{ID: id, Submit: submit, Size: size, Runtime: rt, User: 7}
}

func TestLeastWorkRoutesAroundLoad(t *testing.T) {
	g := twoSiteGrid(t)
	g.SubmitMeta([]*core.Job{metaJob(1, 100, 8, 60)}, LeastWorkPolicy{})
	g.Run(0)
	outs, lost := g.MetaOutcomes()
	if lost != 0 || len(outs) != 1 {
		t.Fatalf("outcomes: %v lost %d", outs, lost)
	}
	// Site a was idle: the job must have started immediately.
	if outs[0].Wait() != 0 {
		t.Fatalf("meta job waited %d; least-work should pick the idle site", outs[0].Wait())
	}
}

func TestRandomPolicyDeterministic(t *testing.T) {
	run := func() int64 {
		g := twoSiteGrid(t)
		g.SubmitMeta([]*core.Job{metaJob(1, 100, 8, 60)}, NewRandomPolicy(9))
		g.Run(0)
		outs, _ := g.MetaOutcomes()
		return outs[0].Wait()
	}
	if run() != run() {
		t.Fatal("random policy with fixed seed must be deterministic")
	}
}

func TestInfeasibleJobLost(t *testing.T) {
	g := twoSiteGrid(t)
	g.SubmitMeta([]*core.Job{metaJob(1, 0, 64, 60)}, LeastWorkPolicy{}) // bigger than any site
	g.Run(0)
	_, lost := g.MetaOutcomes()
	if lost != 1 {
		t.Fatalf("lost = %d, want 1", lost)
	}
}

func TestLocalOutcomesSeparated(t *testing.T) {
	g := twoSiteGrid(t)
	g.SubmitMeta([]*core.Job{metaJob(1, 100, 8, 60)}, LeastWorkPolicy{})
	g.Run(0)
	locals := g.LocalOutcomes()
	if len(locals["b"]) != 1 {
		t.Fatalf("site b locals: %v", locals["b"])
	}
	if len(locals["a"]) != 0 {
		t.Fatalf("site a should have no local jobs: %v", locals["a"])
	}
}

func TestPredictedWaitPolicyLearns(t *testing.T) {
	// Two sites; site b is persistently congested by local jobs. After
	// a few observations the predicted-wait policy should route meta
	// jobs to site a.
	localB := lublin.Default().Generate(model.Config{
		MaxNodes: 16, Jobs: 300, Seed: 31, Load: 1.4,
	})
	localB.Name = "local-b"
	g, err := NewGrid([]SiteSpec{
		{Name: "a", Nodes: 16, Scheduler: sched.NewEASY(), Predictor: predict.NewRecent(20)},
		{Name: "b", Nodes: 16, Scheduler: sched.NewEASY(), Local: localB, Predictor: predict.NewRecent(20)},
	})
	if err != nil {
		t.Fatal(err)
	}
	var jobs []*core.Job
	for i := 0; i < 20; i++ {
		jobs = append(jobs, metaJob(int64(i+1), int64(50000+i*5000), 4, 300))
	}
	g.SubmitMeta(jobs, PredictedWaitPolicy{})
	g.Run(0)
	outs, lost := g.MetaOutcomes()
	if lost != 0 {
		t.Fatalf("lost %d meta jobs", lost)
	}
	// Most late meta jobs should see near-zero waits (routed to a).
	short := 0
	for _, o := range outs[len(outs)/2:] {
		if o.Wait() == 0 {
			short++
		}
	}
	if short < len(outs)/4 {
		t.Fatalf("predicted-wait policy failed to learn: %d zero-wait of %d", short, len(outs))
	}
}

func TestGridTotalNodes(t *testing.T) {
	g := twoSiteGrid(t)
	if g.TotalNodes() != 32 {
		t.Fatalf("total nodes = %d", g.TotalNodes())
	}
}

func TestCoAllocationOnIdleGrid(t *testing.T) {
	g := twoSiteGrid(t) // site b busy 10000 s on all 16 nodes
	g.SubmitCoAlloc([]CoAllocRequest{
		{ID: 1, Submit: 100, Procs: 16, Duration: 600, Parts: 2},
	})
	g.Run(0)
	cas := g.CoAllocations()
	if len(cas) != 1 {
		t.Fatalf("co-allocations: %d", len(cas))
	}
	ca := cas[0]
	if ca.Start < 0 {
		t.Fatal("negotiation failed on a feasible grid")
	}
	// Site b is full until 10000, so the common start is >= 10000 when
	// using both sites (8 procs each).
	if ca.Start < 10000 {
		t.Fatalf("common start %d ignores site b's load", ca.Start)
	}
	if !ca.Granted {
		t.Fatalf("co-allocation not granted: %+v", ca)
	}
	if ca.Delay() != ca.Start-100 {
		t.Fatalf("delay = %d", ca.Delay())
	}
}

func TestCoAllocationTooManyParts(t *testing.T) {
	g := twoSiteGrid(t)
	g.SubmitCoAlloc([]CoAllocRequest{
		{ID: 1, Submit: 0, Procs: 8, Duration: 60, Parts: 5},
	})
	g.Run(0)
	if ca := g.CoAllocations()[0]; ca.Start >= 0 {
		t.Fatal("negotiation should fail with more parts than sites")
	}
}

func TestCoAllocationComponentsShareStart(t *testing.T) {
	// Property: all component reservations of a granted co-allocation
	// start at the same instant — verified via the reservation outcomes
	// on each chosen site.
	g := twoSiteGrid(t)
	g.SubmitCoAlloc([]CoAllocRequest{
		{ID: 1, Submit: 50, Procs: 8, Duration: 120, Parts: 2},
	})
	g.Run(0)
	ca := g.CoAllocations()[0]
	if !ca.Granted {
		t.Fatalf("not granted: %+v", ca)
	}
	for _, s := range g.Sites {
		for _, ro := range s.Instance.ReservationOutcomes() {
			if ro.Reservation.Start != ca.Start {
				t.Fatalf("component on %s starts at %d, want %d", s.Name, ro.Reservation.Start, ca.Start)
			}
		}
	}
}

func TestCoAllocationWithReservationAwareLocals(t *testing.T) {
	// With easy+win locals, local jobs drain around the reservation, so
	// the grant must succeed even with competing local load arriving
	// before the reservation start.
	local := &core.Workload{Name: "l", MaxNodes: 16, Jobs: []*core.Job{
		{ID: 1, Submit: 0, Size: 16, Runtime: 500, User: 1, Estimate: 500},
	}}
	g, err := NewGrid([]SiteSpec{
		{Name: "a", Nodes: 16, Scheduler: sched.NewEASYWindows(), Local: local},
		{Name: "b", Nodes: 16, Scheduler: sched.NewEASYWindows()},
	})
	if err != nil {
		t.Fatal(err)
	}
	g.SubmitCoAlloc([]CoAllocRequest{
		{ID: 1, Submit: 10, Procs: 32, Duration: 300, Parts: 2},
	})
	g.Run(0)
	ca := g.CoAllocations()[0]
	if !ca.Granted {
		t.Fatalf("reservation-aware locals should honour the co-allocation: %+v", ca)
	}
}
