package meta

import (
	"sort"

	"parsched/internal/des"
	"parsched/internal/sched"
)

// CoAllocRequest asks for Procs processors for Duration seconds split
// evenly across Parts sites, all starting at the same instant —
// the co-allocation problem of Section 3.1 ("meta applications may ask
// for simultaneous access to resources from several local schedulers").
type CoAllocRequest struct {
	ID       int64
	Submit   int64
	Procs    int
	Duration int64
	Parts    int
}

// CoAllocation records the result of a co-allocation attempt.
type CoAllocation struct {
	Request CoAllocRequest
	// Start is the negotiated common start time (-1 if negotiation
	// failed).
	Start int64
	// Sites are the chosen site names, one per part.
	Sites []string
	// Granted reports whether every component reservation was honoured
	// at start time.
	Granted bool

	pending int
	failed  bool
}

// Delay returns negotiated start minus submit (-1 if failed).
func (c *CoAllocation) Delay() int64 {
	if c.Start < 0 {
		return -1
	}
	return c.Start - c.Request.Submit
}

// SubmitCoAlloc schedules co-allocation requests: at each request's
// submit time the grid negotiates a common start across the Parts
// least-loaded feasible sites and places component reservations. The
// negotiation is the classic fixed-point iteration: take the max of the
// sites' earliest fits, re-check, repeat.
func (g *Grid) SubmitCoAlloc(reqs []CoAllocRequest) {
	for i := range reqs {
		req := reqs[i]
		g.Engine.At(req.Submit, des.PriorityArrival, func() { g.negotiate(req) })
	}
}

// negotiate finds the earliest common start and reserves.
func (g *Grid) negotiate(req CoAllocRequest) {
	now := g.Engine.Now()
	ca := CoAllocation{Request: req, Start: -1}
	defer func() { g.coalloc = append(g.coalloc, ca) }()

	if req.Parts < 1 || req.Parts > len(g.Sites) {
		return
	}
	part := req.Procs / req.Parts
	if part < 1 {
		part = 1
	}

	// Choose the Parts sites with the least queued work that can host a
	// component.
	type cand struct {
		site *Site
		load float64
	}
	var cands []cand
	for _, s := range g.Sites {
		if part <= s.Nodes {
			cands = append(cands, cand{s, float64(s.Instance.QueuedWork()) / float64(s.Nodes)})
		}
	}
	if len(cands) < req.Parts {
		return
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].load != cands[b].load {
			return cands[a].load < cands[b].load
		}
		return cands[a].site.Name < cands[b].site.Name
	})
	chosen := cands[:req.Parts]

	// Fixed-point negotiation of the common start time.
	start := now
	for iter := 0; iter < 64; iter++ {
		next := start
		for _, c := range chosen {
			p := sched.BuildProfile(c.site.Instance)
			fit := p.EarliestFit(start, req.Duration, part)
			if fit < 0 {
				return // component can never fit
			}
			if fit > next {
				next = fit
			}
		}
		if next == start {
			break
		}
		start = next
	}

	// Place the component reservations.
	ca.Start = start
	ca.pending = req.Parts
	caIdx := len(g.coalloc) // position this CoAllocation will occupy
	for _, c := range chosen {
		ca.Sites = append(ca.Sites, c.site.Name)
		site := c.site
		id := site.Instance.Reserve(sched.Reservation{
			Procs: part, Start: start, End: start + req.Duration,
		})
		// Check the grant after the claim fires at the start instant
		// (PrioritySchedule orders after PriorityOutage claims).
		g.Engine.At(start, des.PrioritySchedule, func() {
			g.checkGrant(caIdx, site, id)
		})
	}
	ca.Granted = false
}

// checkGrant verifies a component reservation was honoured; when all
// components of a co-allocation report, Granted is finalized.
func (g *Grid) checkGrant(idx int, site *Site, resvID int64) {
	if idx >= len(g.coalloc) {
		return
	}
	ca := &g.coalloc[idx]
	granted := false
	for _, ro := range site.Instance.ReservationOutcomes() {
		if ro.Reservation.ID == resvID && ro.Granted {
			granted = true
			break
		}
	}
	if !granted {
		ca.failed = true
	}
	ca.pending--
	if ca.pending == 0 {
		ca.Granted = !ca.failed
	}
}

// CoAllocations returns the results of all co-allocation attempts.
func (g *Grid) CoAllocations() []CoAllocation {
	return append([]CoAllocation(nil), g.coalloc...)
}
