// Package meta implements the metacomputing scheduling architecture of
// Section 3 and Figure 1 of the paper:
//
//	users --> meta scheduler --> machine schedulers --> node schedulers
//
// A Grid assembles several Sites (each a machine + machine scheduler
// simulated by a sim.Instance) on one shared event engine. Meta jobs
// flow through a meta-scheduler Policy that selects a site per job —
// using queue information and wait-time predictions, the information
// the paper says meta-schedulers need. Co-allocating jobs instead
// request simultaneous advance reservations on several sites, the
// mechanism Section 3.1 describes ("Reservations consist of a
// guarantee that a certain amount of resources is going to be
// available continuously starting at a pre-determined future time").
//
// The machine schedulers are full schedulers from internal/sched, not
// stubs, so local workloads and meta jobs contend exactly as the paper
// discusses ("local schedulers can dictate what resources are
// available to meta applications").
package meta

import (
	"fmt"
	"sort"

	"parsched/internal/core"
	"parsched/internal/des"
	"parsched/internal/metrics"
	"parsched/internal/predict"
	"parsched/internal/sched"
	"parsched/internal/sim"
	"parsched/internal/stats"
)

// metaIDBase offsets meta-job IDs so they never collide with local
// workload job IDs on any instance.
const metaIDBase int64 = 1 << 30

// Site is one machine in the grid.
type Site struct {
	Name     string
	Nodes    int
	Instance *sim.Instance
	// Predictor learns local queue waits and serves the meta-scheduler.
	Predictor predict.Predictor

	localJobs int
}

// PredictedWait returns the site's current wait prediction for job j.
func (s *Site) PredictedWait(j *core.Job, now int64) int64 {
	if s.Predictor == nil {
		return 0
	}
	return s.Predictor.Predict(j, now)
}

// Grid is a collection of sites plus the meta-scheduling state.
type Grid struct {
	Engine *des.Engine
	Sites  []*Site

	// routed records which site each meta job went to.
	routed map[int64]*Site
	// metaJobs keeps the dispatched meta jobs in submit order.
	metaJobs []*core.Job

	coalloc []CoAllocation
}

// SiteSpec configures one site for NewGrid.
type SiteSpec struct {
	Name      string
	Nodes     int
	Scheduler sched.Scheduler
	// Local is the site's own background workload (may be nil).
	Local *core.Workload
	// Predictor for this site's waits (nil = Zero).
	Predictor predict.Predictor
	// Options for the site's instance.
	Options sim.Options
}

// NewGrid assembles sites on a fresh engine and schedules their local
// workloads.
func NewGrid(specs []SiteSpec) (*Grid, error) {
	g := &Grid{Engine: &des.Engine{}, routed: map[int64]*Site{}}
	for _, spec := range specs {
		inst, err := sim.NewInstance(g.Engine, spec.Name, spec.Nodes, spec.Scheduler, spec.Options)
		if err != nil {
			return nil, err
		}
		site := &Site{Name: spec.Name, Nodes: spec.Nodes, Instance: inst, Predictor: spec.Predictor}
		if site.Predictor == nil {
			site.Predictor = predict.Zero{}
		}
		// Predictors learn from every start on the site (local or
		// meta): the same accounting data the cited predictors mine.
		inst.StartHook = func(j *core.Job, submit, start int64) {
			site.Predictor.Observe(j, start-submit)
		}
		if spec.Local != nil {
			if spec.Local.MaxNodes > spec.Nodes {
				return nil, fmt.Errorf("meta: site %s local workload needs %d nodes, site has %d",
					spec.Name, spec.Local.MaxNodes, spec.Nodes)
			}
			local := spec.Local.Clone()
			for _, j := range local.Jobs {
				inst.SubmitAt(j, j.Submit)
			}
			site.localJobs = len(local.Jobs)
		}
		g.Sites = append(g.Sites, site)
	}
	return g, nil
}

// Policy selects a site for a meta job.
type Policy interface {
	Name() string
	Select(g *Grid, j *core.Job, now int64) *Site
}

// RandomPolicy picks a site uniformly at random (seeded).
type RandomPolicy struct{ RNG *stats.RNG }

// NewRandomPolicy returns a seeded random policy.
func NewRandomPolicy(seed int64) *RandomPolicy {
	return &RandomPolicy{RNG: stats.NewRNG(seed)}
}

// Name implements Policy.
func (p *RandomPolicy) Name() string { return "random" }

// Select implements Policy.
func (p *RandomPolicy) Select(g *Grid, j *core.Job, _ int64) *Site {
	feasible := feasibleSites(g, j)
	if len(feasible) == 0 {
		return nil
	}
	return feasible[p.RNG.Intn(len(feasible))]
}

// LeastWorkPolicy picks the feasible site with the least queued+running
// processor-seconds per processor — the "current availability"
// information the paper notes is easily available.
type LeastWorkPolicy struct{}

// Name implements Policy.
func (LeastWorkPolicy) Name() string { return "least-work" }

// Select implements Policy.
func (LeastWorkPolicy) Select(g *Grid, j *core.Job, _ int64) *Site {
	feasible := feasibleSites(g, j)
	var best *Site
	var bestScore float64
	for _, s := range feasible {
		score := float64(s.Instance.QueuedWork()) / float64(s.Nodes)
		if best == nil || score < bestScore || (score == bestScore && s.Name < best.Name) {
			best, bestScore = s, score
		}
	}
	return best
}

// PredictedWaitPolicy picks the feasible site whose wait predictor
// promises the earliest start — the full Section 3.1 information loop.
type PredictedWaitPolicy struct{}

// Name implements Policy.
func (PredictedWaitPolicy) Name() string { return "predicted-wait" }

// Select implements Policy.
func (PredictedWaitPolicy) Select(g *Grid, j *core.Job, now int64) *Site {
	feasible := feasibleSites(g, j)
	var best *Site
	var bestWait int64
	for _, s := range feasible {
		w := s.PredictedWait(j, now)
		if best == nil || w < bestWait || (w == bestWait && s.Name < best.Name) {
			best, bestWait = s, w
		}
	}
	return best
}

// feasibleSites returns sites large enough for the job, name-ordered.
func feasibleSites(g *Grid, j *core.Job) []*Site {
	var out []*Site
	for _, s := range g.Sites {
		if j.Size <= s.Nodes {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// SubmitMeta schedules meta jobs for dispatch through the policy at
// their submit times. Job IDs are remapped into the meta ID space.
func (g *Grid) SubmitMeta(jobs []*core.Job, policy Policy) {
	for i, j := range jobs {
		jj := *j
		jj.ID = metaIDBase + int64(i+1)
		job := &jj
		g.metaJobs = append(g.metaJobs, job)
		g.Engine.At(job.Submit, des.PriorityArrival, func() {
			site := policy.Select(g, job, g.Engine.Now())
			if site == nil {
				return // no feasible site; job is lost (counted in results)
			}
			g.routed[job.ID] = site
			site.Instance.SubmitNow(job)
		})
	}
}

// Run drains the engine (or runs to the horizon if positive).
func (g *Grid) Run(horizon int64) {
	if horizon > 0 {
		g.Engine.RunUntil(horizon)
	} else {
		g.Engine.Run()
	}
}

// MetaOutcomes returns the outcomes of all dispatched meta jobs plus
// the count of jobs no site could run.
func (g *Grid) MetaOutcomes() ([]metrics.Outcome, int) {
	var outs []metrics.Outcome
	lost := 0
	for _, j := range g.metaJobs {
		site, ok := g.routed[j.ID]
		if !ok {
			lost++
			continue
		}
		if o, ok := site.Instance.Outcome(j.ID); ok {
			outs = append(outs, o)
		}
	}
	return outs, lost
}

// LocalOutcomes returns every site's local-job outcomes (meta jobs
// excluded), keyed by site name.
func (g *Grid) LocalOutcomes() map[string][]metrics.Outcome {
	out := map[string][]metrics.Outcome{}
	for _, s := range g.Sites {
		var locals []metrics.Outcome
		for _, o := range s.Instance.Outcomes() {
			if o.JobID < metaIDBase {
				locals = append(locals, o)
			}
		}
		out[s.Name] = locals
	}
	return out
}

// TotalNodes sums the grid's processors.
func (g *Grid) TotalNodes() int {
	n := 0
	for _, s := range g.Sites {
		n += s.Nodes
	}
	return n
}
