package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parse(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestDirectiveValidation(t *testing.T) {
	fset, f := parse(t, `package p

//schedlint:allow
var a int

//schedlint:allow nosuchcheck some reason
var b int

//schedlint:allow determinism
var c int

//schedlint:allow determinism a good reason
var d int
`)
	dirs := directives(fset, []*ast.File{f})
	if len(dirs) != 4 {
		t.Fatalf("parsed %d directives, want 4", len(dirs))
	}
	got := checkDirectives(dirs, map[string]bool{"determinism": true})
	if len(got) != 3 {
		t.Fatalf("got %d directive findings, want 3: %v", len(got), got)
	}
	for i, want := range []string{"needs a check name", "unknown check", "needs a reason"} {
		if !strings.Contains(got[i].Message, want) {
			t.Errorf("finding %d = %q, want substring %q", i, got[i].Message, want)
		}
	}
}

func TestSuppressLineRules(t *testing.T) {
	fset, f := parse(t, `package p

var a int //schedlint:allow x because reasons

//schedlint:allow x because reasons
var b int

var c int
`)
	dirs := directives(fset, []*ast.File{f})
	if len(dirs) != 2 {
		t.Fatalf("parsed %d directives, want 2", len(dirs))
	}
	if dirs[0].ownLine {
		t.Error("same-line directive classified as standalone")
	}
	if !dirs[1].ownLine {
		t.Error("standalone directive not classified as standalone")
	}

	// Synthesize one diagnostic per var declaration.
	var diags []Diagnostic
	for _, d := range f.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		diags = append(diags, Diagnostic{Check: "x", Pos: gd.Pos()})
	}
	if len(diags) != 3 {
		t.Fatalf("synthesized %d diagnostics, want 3", len(diags))
	}
	marked := suppress(fset, diags, dirs)
	var kept []Diagnostic
	for _, d := range marked {
		if !d.Suppressed {
			kept = append(kept, d)
		}
	}
	if len(kept) != 1 {
		t.Fatalf("kept %d diagnostics, want 1 (only the unannotated var): %v", len(kept), kept)
	}
	if line := fset.Position(kept[0].Pos).Line; line != 8 {
		t.Errorf("surviving diagnostic on line %d, want 8", line)
	}
}
