// Package framework is the repository's minimal, dependency-free
// counterpart of golang.org/x/tools/go/analysis: an Analyzer is a
// named Run function over a type-checked package, reporting positioned
// diagnostics. The API mirrors go/analysis deliberately — Analyzer,
// Pass, Diagnostic, Pass.Reportf — so the schedlint checkers could be
// ported onto the real vet framework by swapping imports, but the
// hermetic build environment (no module proxy) means the suite runs on
// the standard library alone.
//
// On top of the go/analysis shape it adds the one mechanism the
// repository's contracts need: source-level suppression directives.
// A comment of the form
//
//	//schedlint:allow <check> <reason>
//
// suppresses diagnostics from analyzer <check> on the directive's line
// (or, for a directive standing alone on its line, the line below).
// The reason is mandatory: an unexplained exemption is itself a
// finding.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"parsched/internal/analysis/load"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in output and in allow directives.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run inspects one package, reporting findings through the pass.
	Run func(*Pass) error
}

// Program is the whole-program view of one Run: every target package
// being analyzed, plus a cache shared by every pass of the run.
// Whole-program structures — the cross-package call graph, the
// seed-provenance summaries — are built once per run through
// Program.Cached, not once per package.
//
// The program is exactly the set of packages handed to Run. A partial
// run (`schedlint ./internal/des`) therefore sees a partial program:
// hot-path roots and taint sources in packages outside the target set
// do not propagate in. CI always runs the full `./...` set, which is
// the configuration the contracts are stated against.
type Program struct {
	// Packages holds the run's target packages in analysis order.
	Packages []*load.Package

	cache map[any]any
}

// NewProgram wraps the target package set for a run.
func NewProgram(pkgs []*load.Package) *Program {
	return &Program{Packages: pkgs, cache: map[any]any{}}
}

// Cached memoizes compute under key for the whole program, exactly as
// Pass.Cached does for one package.
func (p *Program) Cached(key any, compute func() any) any {
	if p.cache == nil {
		p.cache = map[any]any{}
	}
	if v, ok := p.cache[key]; ok {
		return v
	}
	v := compute()
	p.cache[key] = v
	return v
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	// Path is the package's import path as the tool sees it (fixture
	// packages keep their testdata-relative path).
	Path string
	// Dir is the directory holding the package's source files. Analyzers
	// that consult external tooling (the escape analyzer shells out to
	// the compiler) run it from here.
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Program is the whole-program view of the run. Nil for passes
	// constructed outside Run (direct analyzer tests), in which case
	// interprocedural analyzers fall back to package-local resolution.
	Program *Program

	diags *[]Diagnostic
	// cache is shared by every analyzer visiting the same package in one
	// Run, so interprocedural structures (the hot-path call graph) are
	// built once per package, not once per analyzer.
	cache map[any]any
}

// Cached memoizes compute under key for the current package: the first
// analyzer to ask pays for the computation, later analyzers in the same
// Run reuse the result. Analyzers use a private key type to avoid
// collisions, exactly like context keys.
func (p *Pass) Cached(key any, compute func() any) any {
	if p.cache == nil {
		// A pass constructed outside Run (direct analyzer tests): no
		// sharing, just compute.
		return compute()
	}
	if v, ok := p.cache[key]; ok {
		return v
	}
	v := compute()
	p.cache[key] = v
	return v
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Check:   p.Analyzer.Name,
		Pos:     pos,
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one positioned finding.
type Diagnostic struct {
	// Check names the analyzer (or the pseudo-check "directive" for
	// malformed suppression comments).
	Check   string
	Pos     token.Pos
	Message string
	// Suppressed marks a finding covered by a well-formed
	// //schedlint:allow directive. Run drops these; RunAll keeps them so
	// machine consumers (-json output) can audit the exemptions in play.
	Suppressed bool
}

// Run applies every analyzer to every package, filters suppressed
// findings through the allow directives, validates the directives
// themselves, and returns the surviving diagnostics sorted by
// position. The returned fset resolves their positions.
func Run(pkgs []*load.Package, analyzers []*Analyzer) ([]Diagnostic, *token.FileSet, error) {
	all, fset, err := RunAll(pkgs, analyzers)
	if err != nil {
		return nil, fset, err
	}
	kept := all[:0]
	for _, d := range all {
		if !d.Suppressed {
			kept = append(kept, d)
		}
	}
	return kept, fset, nil
}

// RunAll is Run keeping suppressed findings: every diagnostic covered
// by an allow directive is returned with Suppressed set instead of
// being dropped.
func RunAll(pkgs []*load.Package, analyzers []*Analyzer) ([]Diagnostic, *token.FileSet, error) {
	var diags []Diagnostic
	var fset *token.FileSet
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	prog := NewProgram(pkgs)
	for _, pkg := range pkgs {
		if fset == nil {
			fset = pkg.Fset
		}
		dirs := directives(pkg.Fset, pkg.Files)
		var pkgDiags []Diagnostic
		cache := map[any]any{}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Path:      pkg.Path,
				Dir:       pkg.Dir,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Program:   prog,
				diags:     &pkgDiags,
				cache:     cache,
			}
			if err := a.Run(pass); err != nil {
				return nil, fset, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		diags = append(diags, suppress(pkg.Fset, pkgDiags, dirs)...)
		diags = append(diags, checkDirectives(dirs, known)...)
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Check < diags[j].Check
	})
	return diags, fset, nil
}

// directive is one parsed //schedlint:allow comment.
type directive struct {
	check   string
	reason  string
	pos     token.Pos
	file    string
	line    int
	ownLine bool // the comment is the only thing on its line
}

const directivePrefix = "//schedlint:allow"

// directives extracts every schedlint directive from the files.
func directives(fset *token.FileSet, files []*ast.File) []directive {
	var out []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				fields := strings.Fields(rest)
				d := directive{pos: c.Pos()}
				if len(fields) > 0 {
					d.check = fields[0]
				}
				if len(fields) > 1 {
					d.reason = strings.Join(fields[1:], " ")
				}
				pos := fset.Position(c.Pos())
				d.file, d.line = pos.Filename, pos.Line
				d.ownLine = onlyCommentOnLine(fset, f, pos.Line)
				out = append(out, d)
			}
		}
	}
	return out
}

// onlyCommentOnLine reports whether no syntax (other than comments)
// starts or ends on the given line — i.e. a directive there stands
// alone and governs the line below rather than its own.
func onlyCommentOnLine(fset *token.FileSet, f *ast.File, l int) bool {
	only := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !only {
			return false
		}
		switch n.(type) {
		case *ast.File:
			return true
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		start := fset.Position(n.Pos()).Line
		end := fset.Position(n.End()).Line
		if end < l || start > l {
			return false // entirely above or below; so are its children
		}
		if start == l || end == l {
			only = false
			return false
		}
		return true // spans the line; a child may sit exactly on it
	})
	return only
}

// suppress marks diagnostics covered by a well-formed allow directive:
// same check, same file, and either the same line or the line directly
// below a standalone directive.
func suppress(fset *token.FileSet, diags []Diagnostic, dirs []directive) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	for i := range diags {
		pos := fset.Position(diags[i].Pos)
		for _, dir := range dirs {
			if dir.check != diags[i].Check || dir.reason == "" || dir.file != pos.Filename {
				continue
			}
			if dir.line == pos.Line || (dir.ownLine && dir.line+1 == pos.Line) {
				diags[i].Suppressed = true
				break
			}
		}
	}
	return diags
}

// checkDirectives reports malformed directives: unknown check names
// and missing reasons. These findings are not themselves suppressible.
func checkDirectives(dirs []directive, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range dirs {
		switch {
		case d.check == "":
			out = append(out, Diagnostic{Check: "directive", Pos: d.pos,
				Message: "schedlint:allow needs a check name and a reason: //schedlint:allow <check> <reason>"})
		case !known[d.check]:
			out = append(out, Diagnostic{Check: "directive", Pos: d.pos,
				Message: fmt.Sprintf("schedlint:allow names unknown check %q", d.check)})
		case d.reason == "":
			out = append(out, Diagnostic{Check: "directive", Pos: d.pos,
				Message: fmt.Sprintf("schedlint:allow %s needs a reason: an unexplained exemption is a finding", d.check)})
		}
	}
	return out
}

// PathMatches reports whether the package import path contains the
// given module-relative fragment ("internal/sim") on component
// boundaries. It is how analyzers scope themselves to subsystems while
// behaving identically on real packages ("parsched/internal/sim") and
// fixtures ("example.com/internal/sim").
func PathMatches(path, fragment string) bool {
	idx := 0
	for {
		i := strings.Index(path[idx:], fragment)
		if i < 0 {
			return false
		}
		start := idx + i
		end := start + len(fragment)
		startOK := start == 0 || path[start-1] == '/'
		endOK := end == len(path) || path[end] == '/'
		if startOK && endOK {
			return true
		}
		idx = start + 1
	}
}
