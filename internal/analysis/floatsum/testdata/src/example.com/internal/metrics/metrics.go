// Package metrics is the floatsum fixture: scalar float accumulation
// over ranged collections is flagged; integer reductions, indexed
// element updates, and annotated deliberate sums are not.
package metrics

func mean(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x // want "naive float accumulation"
	}
	return sum / float64(len(xs))
}

func total(by map[string]float64) float64 {
	t := 0.0
	for _, v := range by {
		t += v // want "naive float accumulation"
	}
	return t
}

// intSum reduces integers: not a float precision hazard.
func intSum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// histogram updates indexed elements — bin state, not a running sum:
// not flagged.
func histogram(xs []float64, bins []float64) {
	for _, x := range xs {
		i := int(x) % len(bins)
		bins[i] += x
	}
}

// outside accumulates but not over a ranged collection: not flagged.
func outside(a, b, c float64) float64 {
	s := a
	s += b
	s += c
	return s
}

func prefix(xs []float64) []float64 {
	out := make([]float64, len(xs))
	acc := 0.0
	for i, x := range xs {
		acc += x //schedlint:allow floatsum fixture: deliberate sequential prefix sum
		out[i] = acc
	}
	return out
}
