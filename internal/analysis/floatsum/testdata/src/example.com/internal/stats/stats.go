// Package stats is the floatsum fixture for the path exemption: the
// stats package is where the audited plain sums live, so the same loop
// that is flagged in internal/metrics passes here.
package stats

// Sum is the audited ordered sum.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
