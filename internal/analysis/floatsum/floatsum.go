// Package floatsum flags naive floating-point accumulation loops
// outside internal/stats.
//
// Summing a population of float64 job metrics with `sum += x` loses
// precision as the running sum dwarfs the increments — on million-job
// traces the error reaches the digits the paper's tables report. The
// stats package owns the numerically careful primitives: the Welford
// Moments accumulator, the P² quantile sketch, the Stream combinator,
// and the batch helpers (Mean, Summarize) that centralize even the
// plain-sum cases behind one audited implementation.
//
// The analyzer flags `+=` (and `-=`) of scalar float variables and
// fields inside `for range` loops over slices and maps in every
// package except internal/stats itself. Indexed element updates
// (load[i] += w — histogram and bin-packing state, not a population
// statistic) are not flagged. Accumulations that are deliberate —
// weighted partial sums feeding a ratio, prefix sums, golden-locked
// arithmetic that must not change — carry a //schedlint:allow
// floatsum <reason> directive.
package floatsum

import (
	"go/ast"
	"go/token"
	"go/types"

	"parsched/internal/analysis/framework"
)

// Analyzer is the float-accumulation check.
var Analyzer = &framework.Analyzer{
	Name: "floatsum",
	Doc: "flag naive float64 += accumulation over ranged collections outside " +
		"internal/stats; use the stats accumulators",
	Run: run,
}

func run(pass *framework.Pass) error {
	if framework.PathMatches(pass.Path, "internal/stats") {
		return nil // the stats package is where careful sums live
	}
	for _, f := range pass.Files {
		var rangeDepth int
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if isCollectionRange(pass, top) {
					rangeDepth--
				}
				return true
			}
			stack = append(stack, n)
			if isCollectionRange(pass, n) {
				rangeDepth++
				return true
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok || rangeDepth == 0 {
				return true
			}
			if as.Tok != token.ADD_ASSIGN && as.Tok != token.SUB_ASSIGN {
				return true
			}
			if _, indexed := as.Lhs[0].(*ast.IndexExpr); indexed {
				return true // vector/histogram element update, not a running sum
			}
			t := pass.TypesInfo.TypeOf(as.Lhs[0])
			if t == nil {
				return true
			}
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				pass.Reportf(as.TokPos,
					"naive float accumulation inside a range loop; use stats.Moments/stats.Stream or a stats batch helper (or annotate //schedlint:allow floatsum <reason>)")
			}
			return true
		})
	}
	return nil
}

// isCollectionRange reports whether n is a range statement over a
// slice, array, or map — a population, as opposed to range-over-int
// counters or channels.
func isCollectionRange(pass *framework.Pass, n ast.Node) bool {
	rs, ok := n.(*ast.RangeStmt)
	if !ok {
		return false
	}
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Array, *types.Pointer:
		return true
	}
	return false
}
