package floatsum_test

import (
	"testing"

	"parsched/internal/analysis/analysistest"
	"parsched/internal/analysis/floatsum"
)

func TestFloatSum(t *testing.T) {
	analysistest.Run(t, "testdata", floatsum.Analyzer,
		"example.com/internal/metrics", "example.com/internal/stats")
}
