// Package callgraph is the interprocedural layer of the schedlint
// framework: a package-level call graph over the loader's from-source
// type information, plus the hot-path reachability pass the
// performance-contract analyzers (escape, allocfree, locks) share.
//
// A function is a hot-path root when its declaration's doc comment
// carries the directive
//
//	//schedlint:hotpath
//
// (optionally followed by a note). Reachability propagates from the
// roots along three kinds of edges, all resolved from the package's
// type info:
//
//   - static calls and method calls to functions declared in the same
//     package (including method expressions);
//   - dynamic dispatch through interface method calls, resolved to
//     every same-package concrete type whose method set implements the
//     interface — the des.Handle/sched.Scheduler shape;
//   - function literals, whose bodies are attributed to the enclosing
//     declaration (the DES arrival pump and finish closures are part of
//     the function that creates them).
//
// Branches dead under a constant-false condition are pruned, so code
// guarded by `if debugchecks.Enabled { ... }` in an untagged build does
// not drag the debug assertions into the hot set.
//
// Cross-package edges are out of scope by design: the hermetic
// framework analyzes one package at a time, so each simulated
// subsystem annotates its own roots (sim annotates the event kernels
// it owns; the schedulers they dispatch to annotate their OnSubmit/
// OnFinish/OnChange entry points in internal/sched).
package callgraph

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"parsched/internal/analysis/framework"
)

// HotDirective marks a hot-path root function's doc comment.
const HotDirective = "//schedlint:hotpath"

// Node is one declared function or method of the package.
type Node struct {
	// Fn is the type-checker's object for the function.
	Fn *types.Func
	// Decl is its declaration.
	Decl *ast.FuncDecl
	// Root reports that the declaration carries the hotpath directive.
	Root bool
	// Hot reports that the function is a root or reachable from one.
	Hot bool
	// Via names the root whose traversal first reached this node (the
	// node's own name for roots). Empty for cold nodes.
	Via string
	// Callees lists the resolved same-package call targets, in first-
	// encounter order.
	Callees []*Node

	calleeSet map[*Node]bool
}

// Name returns the package-local function name, with a receiver prefix
// for methods: "Step" becomes "(*Engine).Step". It is the stable,
// line-number-free identity the escape baseline keys on.
func (n *Node) Name() string { return ShortName(n.Fn) }

// ShortName formats fn the way Node.Name does.
func ShortName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	ptr := ""
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
		ptr = "*"
	}
	if named, isNamed := t.(*types.Named); isNamed {
		return "(" + ptr + named.Obj().Name() + ")." + fn.Name()
	}
	return fn.Name()
}

// Graph is the package call graph.
type Graph struct {
	nodes map[*types.Func]*Node
	// order holds the nodes in declaration order, the iteration order
	// every deterministic consumer uses.
	order []*Node
	roots []*Node
}

type cacheKey struct{}

// Of returns the package's call graph, building it on first use and
// sharing it with every other analyzer in the same framework run.
func Of(pass *framework.Pass) *Graph {
	return pass.Cached(cacheKey{}, func() any {
		return Build(pass.Files, pass.Pkg, pass.TypesInfo)
	}).(*Graph)
}

// Build constructs the call graph and runs the reachability pass.
func Build(files []*ast.File, pkg *types.Package, info *types.Info) *Graph {
	g := &Graph{nodes: map[*types.Func]*Node{}}

	// Pass 1: one node per function declaration.
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &Node{Fn: fn, Decl: fd, Root: isHotDecl(fd), calleeSet: map[*Node]bool{}}
			g.nodes[fn] = n
			g.order = append(g.order, n)
			if n.Root {
				g.roots = append(g.roots, n)
			}
		}
	}

	// Receiver base types declared in this package, for interface
	// dispatch: named type -> method name -> node.
	methods := map[*types.TypeName]map[string]*Node{}
	for _, n := range g.order {
		sig := n.Fn.Type().(*types.Signature)
		recv := sig.Recv()
		if recv == nil {
			continue
		}
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		tn := named.Obj()
		if methods[tn] == nil {
			methods[tn] = map[string]*Node{}
		}
		methods[tn][n.Fn.Name()] = n
	}

	// Pass 2: edges.
	for _, n := range g.order {
		if n.Decl.Body == nil {
			continue
		}
		caller := n
		WalkLive(info, n.Decl.Body, func(node ast.Node) {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return
			}
			fn := calleeOf(info, call)
			if fn == nil {
				return
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return
			}
			if recv := sig.Recv(); recv != nil {
				if iface, ok := recv.Type().Underlying().(*types.Interface); ok {
					// Dynamic dispatch: every same-package implementation
					// of the interface may be the target.
					for tn, byName := range methods {
						target, ok := byName[fn.Name()]
						if !ok {
							continue
						}
						t := tn.Type()
						if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
							addEdge(caller, target)
						}
					}
					return
				}
			}
			if fn.Pkg() != pkg {
				return
			}
			if target, ok := g.nodes[fn]; ok {
				addEdge(caller, target)
			}
		})
	}

	// Pass 3: reachability, breadth-first from each root in declaration
	// order so Via attribution is deterministic.
	for _, root := range g.roots {
		if root.Hot {
			continue
		}
		root.Hot = true
		root.Via = root.Name()
		queue := []*Node{root}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, callee := range cur.Callees {
				if !callee.Hot {
					callee.Hot = true
					callee.Via = root.Name()
					queue = append(queue, callee)
				}
			}
		}
	}
	return g
}

func addEdge(from, to *Node) {
	if from.calleeSet[to] {
		return
	}
	from.calleeSet[to] = true
	from.Callees = append(from.Callees, to)
}

// HasRoots reports whether any function in the package carries the
// hotpath directive. Analyzers use it to skip cold packages entirely.
func (g *Graph) HasRoots() bool { return len(g.roots) > 0 }

// Nodes returns every function node in declaration order.
func (g *Graph) Nodes() []*Node { return g.order }

// Lookup returns the node for fn, or nil.
func (g *Graph) Lookup(fn *types.Func) *Node { return g.nodes[fn] }

// Enclosing returns the function node whose declaration contains pos,
// or nil when pos sits outside every declaration (package-level
// initializers).
func (g *Graph) Enclosing(pos token.Pos) *Node {
	for _, n := range g.order {
		if n.Decl.Pos() <= pos && pos <= n.Decl.End() {
			return n
		}
	}
	return nil
}

// isHotDecl reports whether the declaration's doc comment carries the
// hotpath directive.
func isHotDecl(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == HotDirective || strings.HasPrefix(c.Text, HotDirective+" ") {
			return true
		}
	}
	return false
}

// WalkLive walks the AST under n, pruning branches that are dead under
// a constant condition: `if debugchecks.Enabled { ... }` contributes no
// edges (and, for the analyzers that share this walker, no findings)
// when Enabled is the constant false of an untagged build.
func WalkLive(info *types.Info, n ast.Node, visit func(ast.Node)) {
	var walk func(ast.Node) bool
	walk = func(node ast.Node) bool {
		if node == nil {
			return false
		}
		if ifs, ok := node.(*ast.IfStmt); ok {
			if v, isConst := constBool(info, ifs.Cond); isConst {
				if ifs.Init != nil {
					ast.Inspect(ifs.Init, walk)
				}
				if v {
					ast.Inspect(ifs.Body, walk)
				} else if ifs.Else != nil {
					ast.Inspect(ifs.Else, walk)
				}
				return false
			}
		}
		visit(node)
		return true
	}
	ast.Inspect(n, walk)
}

// constBool evaluates expr as a compile-time boolean constant.
func constBool(info *types.Info, expr ast.Expr) (value, isConst bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Bool {
		return false, false
	}
	return constant.BoolVal(tv.Value), true
}

// calleeOf resolves the static callee of a call expression: a declared
// function, a method (possibly an interface method), or nil for
// builtins, conversions, and calls through function values.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
