// Package callgraph is the interprocedural layer of the schedlint
// framework: a whole-program call graph over the loader's from-source
// type information, plus the hot-path reachability pass the
// performance-contract analyzers (escape, allocfree, locks) and the
// dataflow analyzers (seedflow) share.
//
// A function is a hot-path root when its declaration's doc comment
// carries the directive
//
//	//schedlint:hotpath
//
// (optionally followed by a note). Reachability propagates from the
// roots along three kinds of edges, all resolved from the program's
// type info:
//
//   - static calls and method calls to functions declared in any
//     analyzed package (including method expressions) — a root on
//     sim.RunStream taints the des engine kernels and the sched
//     backfillers it calls without local re-annotation;
//   - dynamic dispatch through interface method calls, resolved to
//     every concrete type known to the program whose method set
//     implements the interface — the des.Handle/sched.Scheduler shape,
//     now crossing package boundaries;
//   - function literals, whose bodies are attributed to the enclosing
//     declaration (the DES arrival pump and finish closures are part of
//     the function that creates them).
//
// Branches dead under a constant-false condition are pruned, so code
// guarded by `if debugchecks.Enabled { ... }` in an untagged build does
// not drag the debug assertions into the hot set. The reverse boundary
// is //schedlint:coldpath: once-per-run setup and reporting a root
// happens to call (constructors, spec parsing behind Name()) carries
// the directive, and propagation stops at its door instead of pulling
// the whole setup tree into the allocation contract.
//
// The program is whatever package set the framework run was given:
// `schedlint ./...` builds the graph over the full module, which is
// the configuration the contracts are stated against. Each hot node
// remembers the BFS predecessor that first reached it, so Chain()
// names the full cross-package route from the root — the evidence the
// `schedlint -hotpaths` audit prints.
//
// Build (the package-local constructor) is retained for direct tests
// and as the regression reference: the whole-program hot set is by
// construction a superset of every per-package hot set, which
// TestWholeProgramSupersetOfPerPackage pins against the committed PR 8
// hot-set snapshot.
package callgraph

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"parsched/internal/analysis/framework"
	"parsched/internal/analysis/load"
)

// HotDirective marks a hot-path root function's doc comment.
const HotDirective = "//schedlint:hotpath"

// ColdDirective marks a propagation boundary: a function that hot-path
// reachability does not enter, because it runs outside the per-event
// regime the performance contracts are stated over — once-per-run
// constructors (cluster.New, des.NewEngine), spec parsing reached from
// result labeling, reporting. A root reaches its callers' other
// callees as usual; the cold function itself and everything reachable
// only through it stay out of the hot set. Like hotpath, the directive
// is a reviewed claim: annotating a per-event function cold disables
// its allocation contract, so `schedlint -hotpaths` is the audit that
// keeps the boundary honest.
const ColdDirective = "//schedlint:coldpath"

// Node is one declared function or method of the program.
type Node struct {
	// Fn is the type-checker's object for the function.
	Fn *types.Func
	// Decl is its declaration.
	Decl *ast.FuncDecl
	// Root reports that the declaration carries the hotpath directive.
	Root bool
	// Cold reports that the declaration carries the coldpath directive:
	// propagation does not enter this function.
	Cold bool
	// Hot reports that the function is a root or reachable from one.
	Hot bool
	// Via names the root whose traversal first reached this node (the
	// node's own name for roots). Empty for cold nodes. Whole-program
	// graphs qualify the name with its package ("sim.RunStream");
	// package-local graphs keep the bare name for local messages.
	Via string
	// Parent is the BFS predecessor through which the hot set first
	// reached this node; nil for roots and cold nodes. Chain() follows
	// it back to the root.
	Parent *Node
	// Callees lists the resolved call targets, in first-encounter
	// order. In a whole-program graph they may belong to other
	// packages.
	Callees []*Node

	calleeSet map[*Node]bool
}

// Name returns the package-local function name, with a receiver prefix
// for methods: "Step" becomes "(*Engine).Step". It is the stable,
// line-number-free identity the escape baseline keys on.
func (n *Node) Name() string { return ShortName(n.Fn) }

// Qualified returns the package-qualified name ("des.(*Engine).Step")
// used in cross-package Via chains.
func (n *Node) Qualified() string {
	if pkg := n.Fn.Pkg(); pkg != nil {
		return pkg.Name() + "." + n.Name()
	}
	return n.Name()
}

// Chain returns the qualified call route from the root that first
// reached this node down to the node itself, or nil for cold nodes.
func (n *Node) Chain() []string {
	if !n.Hot {
		return nil
	}
	var rev []*Node
	for cur := n; cur != nil; cur = cur.Parent {
		rev = append(rev, cur)
	}
	out := make([]string, len(rev))
	for i, cur := range rev {
		out[len(rev)-1-i] = cur.Qualified()
	}
	return out
}

// ShortName formats fn the way Node.Name does.
func ShortName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	ptr := ""
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
		ptr = "*"
	}
	if named, isNamed := t.(*types.Named); isNamed {
		return "(" + ptr + named.Obj().Name() + ")." + fn.Name()
	}
	return fn.Name()
}

// Graph is one package's slice of the call graph: the nodes declared
// in the package, with Hot/Via/Parent reflecting whichever propagation
// built it (whole-program when obtained through Of with a framework
// Program, package-local when built with Build).
type Graph struct {
	pkg  *types.Package
	path string
	info *types.Info
	// order holds the nodes in declaration order, the iteration order
	// every deterministic consumer uses.
	order  []*Node
	roots  []*Node
	hasHot bool
	// owner is the whole-program graph this view belongs to, nil for a
	// standalone per-package Build.
	owner *ProgramGraph
	// nodes and methods are the package-local resolution maps of a
	// standalone graph; views resolve through their owner instead.
	nodes   map[*types.Func]*Node
	methods methodIndex
}

// methodIndex maps receiver base types to their declared methods, for
// interface dispatch.
type methodIndex map[*types.TypeName]map[string]*Node

// ProgramGraph is the whole-program call graph: one Graph view per
// analyzed package, linked by cross-package static calls and
// program-wide interface dispatch, with hot-path reachability
// propagated across package edges.
type ProgramGraph struct {
	graphs  []*Graph
	byPkg   map[*types.Package]*Graph
	nodes   map[*types.Func]*Node
	methods methodIndex
	roots   []*Node
}

type cacheKey struct{}
type programKey struct{}

// Of returns the package's call-graph view. Inside a framework Run the
// view is sliced from the whole-program graph (built once per run and
// shared by every analyzer); outside one it falls back to the
// package-local graph, preserving the per-package contract direct
// tests rely on.
func Of(pass *framework.Pass) *Graph {
	if pass.Program != nil {
		if g := OfProgram(pass.Program).Package(pass.Pkg); g != nil {
			return g
		}
	}
	return pass.Cached(cacheKey{}, func() any {
		return Build(pass.Files, pass.Pkg, pass.TypesInfo)
	}).(*Graph)
}

// OfProgram returns the run's whole-program graph, building it on
// first use and sharing it across packages and analyzers.
func OfProgram(prog *framework.Program) *ProgramGraph {
	return prog.Cached(programKey{}, func() any {
		return BuildProgram(prog.Packages)
	}).(*ProgramGraph)
}

// Build constructs a standalone package-local call graph and runs the
// reachability pass over it. Cross-package edges are not resolved;
// BuildProgram is the whole-program constructor.
func Build(files []*ast.File, pkg *types.Package, info *types.Info) *Graph {
	g := newGraph(files, pkg, "", info)
	g.methods = buildMethodIndex([]*Graph{g})
	addEdges(g, g.methods, func(fn *types.Func) *Node {
		if fn.Pkg() != pkg {
			return nil
		}
		return g.nodes[fn]
	})
	propagate([]*Graph{g}, false)
	return g
}

// BuildProgram constructs the whole-program graph over the loaded
// target packages, in the order given (the loader returns them sorted
// by import path, which makes Via attribution deterministic).
func BuildProgram(pkgs []*load.Package) *ProgramGraph {
	pg := &ProgramGraph{
		byPkg: map[*types.Package]*Graph{},
		nodes: map[*types.Func]*Node{},
	}
	for _, p := range pkgs {
		if p.Types == nil || p.Info == nil {
			continue
		}
		g := newGraph(p.Files, p.Types, p.Path, p.Info)
		g.owner = pg
		pg.graphs = append(pg.graphs, g)
		pg.byPkg[p.Types] = g
		for fn, n := range g.nodes {
			pg.nodes[fn] = n
		}
	}
	pg.methods = buildMethodIndex(pg.graphs)
	for _, g := range pg.graphs {
		addEdges(g, pg.methods, func(fn *types.Func) *Node { return pg.nodes[fn] })
	}
	propagate(pg.graphs, true)
	for _, g := range pg.graphs {
		pg.roots = append(pg.roots, g.roots...)
	}
	return pg
}

// Package returns the view for pkg, or nil when pkg is not part of the
// program.
func (pg *ProgramGraph) Package(pkg *types.Package) *Graph { return pg.byPkg[pkg] }

// Graphs returns the per-package views in program order.
func (pg *ProgramGraph) Graphs() []*Graph { return pg.graphs }

// Roots returns every hotpath-annotated root in program order.
func (pg *ProgramGraph) Roots() []*Node { return pg.roots }

// Lookup returns the node for fn from any package of the program.
func (pg *ProgramGraph) Lookup(fn *types.Func) *Node { return pg.nodes[fn] }

// Resolve returns the possible targets of a call to fn: the single
// declared node for a static call, or every implementing method in the
// program for an interface method. Nil when the program declares no
// candidate (stdlib calls, function values).
func (pg *ProgramGraph) Resolve(fn *types.Func) []*Node {
	return resolve(fn, pg.methods, func(f *types.Func) *Node { return pg.nodes[f] })
}

// RedundantRoots returns the annotated roots that are themselves
// reachable from other roots — annotations cross-package propagation
// makes unnecessary, which `schedlint -hotpaths` reports so the manual
// root set can stay minimal.
func (pg *ProgramGraph) RedundantRoots() []*Node {
	var out []*Node
	for _, r := range pg.roots {
		if reachableFromOthers(pg.roots, r) {
			out = append(out, r)
		}
	}
	return out
}

// reachableFromOthers reports whether target can be reached by BFS
// from the root set excluding target itself.
func reachableFromOthers(roots []*Node, target *Node) bool {
	seen := map[*Node]bool{}
	var queue []*Node
	for _, r := range roots {
		if r != target && !seen[r] {
			seen[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, c := range cur.Callees {
			if c == target {
				return true
			}
			if !seen[c] && !c.Cold {
				seen[c] = true
				queue = append(queue, c)
			}
		}
	}
	return false
}

// newGraph builds the node set for one package (pass 1).
func newGraph(files []*ast.File, pkg *types.Package, path string, info *types.Info) *Graph {
	g := &Graph{pkg: pkg, path: path, info: info, nodes: map[*types.Func]*Node{}}
	if path == "" && pkg != nil {
		g.path = pkg.Path()
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &Node{Fn: fn, Decl: fd, Root: hasDirective(fd, HotDirective), Cold: hasDirective(fd, ColdDirective), calleeSet: map[*Node]bool{}}
			g.nodes[fn] = n
			g.order = append(g.order, n)
			if n.Root {
				g.roots = append(g.roots, n)
			}
		}
	}
	return g
}

// buildMethodIndex indexes receiver base types declared in the given
// graphs: named type -> method name -> node.
func buildMethodIndex(graphs []*Graph) methodIndex {
	idx := methodIndex{}
	for _, g := range graphs {
		for _, n := range g.order {
			sig := n.Fn.Type().(*types.Signature)
			recv := sig.Recv()
			if recv == nil {
				continue
			}
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				continue
			}
			tn := named.Obj()
			if idx[tn] == nil {
				idx[tn] = map[string]*Node{}
			}
			idx[tn][n.Fn.Name()] = n
		}
	}
	return idx
}

// resolve returns the call targets for fn: interface methods dispatch
// to every implementing method in the index, everything else resolves
// through lookup.
func resolve(fn *types.Func, idx methodIndex, lookup func(*types.Func) *Node) []*Node {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if recv := sig.Recv(); recv != nil {
		if iface, ok := recv.Type().Underlying().(*types.Interface); ok {
			var out []*Node
			for tn, byName := range idx {
				target, ok := byName[fn.Name()]
				if !ok {
					continue
				}
				t := tn.Type()
				if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
					out = append(out, target)
				}
			}
			// The index is a map; order the fan-out by qualified name so
			// edge insertion (and with it Via attribution) is stable
			// across runs.
			sort.Slice(out, func(i, j int) bool { return out[i].Qualified() < out[j].Qualified() })
			return out
		}
	}
	if n := lookup(fn); n != nil {
		return []*Node{n}
	}
	return nil
}

// addEdges resolves the calls in g's function bodies (pass 2). lookup
// bounds the static-call horizon: package-local for standalone graphs,
// program-wide for whole-program ones.
func addEdges(g *Graph, idx methodIndex, lookup func(*types.Func) *Node) {
	for _, n := range g.order {
		if n.Decl.Body == nil {
			continue
		}
		caller := n
		WalkLive(g.info, n.Decl.Body, func(node ast.Node) {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return
			}
			fn := calleeOf(g.info, call)
			if fn == nil {
				return
			}
			for _, target := range resolve(fn, idx, lookup) {
				addEdge(caller, target)
			}
		})
	}
}

// propagate runs reachability breadth-first from each root, in graph
// order then declaration order, so Via attribution is deterministic.
// Whole-program propagation (qualified) records package-qualified Via
// names and BFS parents so Chain() can print the cross-package route;
// interface fan-out lands in Callees sorted by qualified name (resolve
// orders it) and deduplicated by addEdge.
func propagate(graphs []*Graph, qualified bool) {
	name := func(n *Node) string {
		if qualified {
			return n.Qualified()
		}
		return n.Name()
	}
	for _, g := range graphs {
		for _, root := range g.roots {
			if root.Hot {
				continue
			}
			root.Hot = true
			root.Via = name(root)
			queue := []*Node{root}
			for len(queue) > 0 {
				cur := queue[0]
				queue = queue[1:]
				for _, callee := range cur.Callees {
					if !callee.Hot && !callee.Cold {
						callee.Hot = true
						callee.Via = name(root)
						callee.Parent = cur
						queue = append(queue, callee)
					}
				}
			}
		}
	}
	for _, g := range graphs {
		for _, n := range g.order {
			if n.Hot {
				g.hasHot = true
				break
			}
		}
	}
}

func addEdge(from, to *Node) {
	if from.calleeSet[to] {
		return
	}
	from.calleeSet[to] = true
	from.Callees = append(from.Callees, to)
}

// HasRoots reports whether any function declared in this package
// carries the hotpath directive.
func (g *Graph) HasRoots() bool { return len(g.roots) > 0 }

// HasHot reports whether any function declared in this package is hot
// — annotated locally or reached from a root in another package. The
// hot-code analyzers use it to skip cold packages entirely.
func (g *Graph) HasHot() bool { return g.hasHot }

// Path returns the package's import path as the loader saw it.
func (g *Graph) Path() string { return g.path }

// Nodes returns the package's function nodes in declaration order.
func (g *Graph) Nodes() []*Node { return g.order }

// Lookup returns the node for fn. A whole-program view resolves
// program-wide; a standalone graph knows only its own package.
func (g *Graph) Lookup(fn *types.Func) *Node {
	if g.owner != nil {
		return g.owner.nodes[fn]
	}
	return g.nodes[fn]
}

// Resolve returns the possible targets of a call to fn, like
// ProgramGraph.Resolve but scoped to the package for standalone
// graphs.
func (g *Graph) Resolve(fn *types.Func) []*Node {
	if g.owner != nil {
		return g.owner.Resolve(fn)
	}
	return resolve(fn, g.methods, func(f *types.Func) *Node {
		if f.Pkg() != g.pkg {
			return nil
		}
		return g.nodes[f]
	})
}

// Enclosing returns the function node whose declaration contains pos,
// or nil when pos sits outside every declaration (package-level
// initializers).
func (g *Graph) Enclosing(pos token.Pos) *Node {
	for _, n := range g.order {
		if n.Decl.Pos() <= pos && pos <= n.Decl.End() {
			return n
		}
	}
	return nil
}

// hasDirective reports whether the declaration's doc comment carries
// the given //schedlint directive (optionally followed by a note).
func hasDirective(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// WalkLive walks the AST under n, pruning branches that are dead under
// a constant condition: `if debugchecks.Enabled { ... }` contributes no
// edges (and, for the analyzers that share this walker, no findings)
// when Enabled is the constant false of an untagged build.
func WalkLive(info *types.Info, n ast.Node, visit func(ast.Node)) {
	var walk func(ast.Node) bool
	walk = func(node ast.Node) bool {
		if node == nil {
			return false
		}
		if ifs, ok := node.(*ast.IfStmt); ok {
			if v, isConst := constBool(info, ifs.Cond); isConst {
				if ifs.Init != nil {
					ast.Inspect(ifs.Init, walk)
				}
				if v {
					ast.Inspect(ifs.Body, walk)
				} else if ifs.Else != nil {
					ast.Inspect(ifs.Else, walk)
				}
				return false
			}
		}
		visit(node)
		return true
	}
	ast.Inspect(n, walk)
}

// constBool evaluates expr as a compile-time boolean constant.
func constBool(info *types.Info, expr ast.Expr) (value, isConst bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Bool {
		return false, false
	}
	return constant.BoolVal(tv.Value), true
}

// calleeOf resolves the static callee of a call expression: a declared
// function, a method (possibly an interface method), or nil for
// builtins, conversions, and calls through function values.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
