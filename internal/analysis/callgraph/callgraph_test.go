package callgraph

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parsched/internal/analysis/load"
)

// TestHotpathPropagation pins the reachability contract on the fixture:
// the hot set crosses static calls, closure bodies, and an interface
// method dispatch, and stops at constant-false branches, non-matching
// method sets, and cold callers of hot code.
func TestHotpathPropagation(t *testing.T) {
	fl := load.NewFixtureLoader("testdata")
	p, err := fl.Load("example.com/internal/hotgraph")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	for _, terr := range p.TypeErrors {
		t.Fatalf("fixture type error: %v", terr)
	}
	g := Build(p.Files, p.Types, p.Info)

	if !g.HasRoots() {
		t.Fatalf("HasRoots() = false; the fixture annotates Root")
	}

	wantHot := map[string]bool{
		"Root":        true, // the annotated root itself
		"(*adder).Do": true, // via interface dispatch on doer
		"step":        true, // static call from Root
		"leaf":        true, // static call from the dispatched method
		"viaClosure":  true, // called from a closure defined in Root
		"(misfit).Do": false,
		"coldDebug":   false, // behind `if debug` with debug == false
		"coldOrphan":  false, // calls hot code but nothing hot calls it
	}
	seen := map[string]bool{}
	for _, n := range g.Nodes() {
		name := n.Name()
		seen[name] = true
		want, known := wantHot[name]
		if !known {
			t.Errorf("unexpected function %s in graph", name)
			continue
		}
		if n.Hot != want {
			t.Errorf("%s: Hot = %v, want %v", name, n.Hot, want)
		}
		if n.Hot && n.Via != "Root" {
			t.Errorf("%s: Via = %q, want %q", name, n.Via, "Root")
		}
		if !n.Hot && n.Via != "" {
			t.Errorf("%s: cold node carries Via %q", name, n.Via)
		}
	}
	for name := range wantHot {
		if !seen[name] {
			t.Errorf("function %s missing from graph", name)
		}
	}

	// The root's resolved callees include both the static call and the
	// dispatched implementation, deduplicated.
	root := findNode(t, g, "Root")
	var callees []string
	for _, c := range root.Callees {
		callees = append(callees, c.Name())
	}
	if len(callees) != 3 {
		t.Errorf("Root callees = %v, want step, viaClosure, (*adder).Do in some order", callees)
	}
}

func findNode(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes() {
		if n.Name() == name {
			return n
		}
	}
	t.Fatalf("node %s not found", name)
	return nil
}

// TestWholeProgramPropagation pins the cross-package contract on the
// two-package fixture: static calls and interface dispatch cross the
// package boundary, Via and Chain are package-qualified, a root the
// propagation already covers is reported redundant, and a coldpath
// constructor stops the traversal.
func TestWholeProgramPropagation(t *testing.T) {
	fl := load.NewFixtureLoader("testdata")
	pkgs, err := fl.LoadAll("example.com/internal/prog/a", "example.com/internal/prog/b")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Fatalf("fixture %s: type error: %v", p.Path, terr)
		}
	}
	pg := BuildProgram(pkgs)

	wantHot := map[string]bool{
		"a.Kernel":        true,  // the annotated root
		"b.(*Engine).Run": true,  // via cross-package interface dispatch
		"b.Step":          true,  // via cross-package static call; also a (redundant) root
		"b.leaf":          true,  // via both b entries
		"b.NewEngine":     false, // coldpath: propagation stops at the door
		"b.setupCost":     false, // reachable only through the coldpath constructor
		"b.(misfit).Run":  false, // wrong method shape: no dispatch edge
	}
	seen := map[string]bool{}
	for _, g := range pg.Graphs() {
		for _, n := range g.Nodes() {
			q := n.Qualified()
			seen[q] = true
			want, known := wantHot[q]
			if !known {
				t.Errorf("unexpected function %s in program graph", q)
				continue
			}
			if n.Hot != want {
				t.Errorf("%s: Hot = %v, want %v", q, n.Hot, want)
			}
		}
	}
	for q := range wantHot {
		if !seen[q] {
			t.Errorf("function %s missing from program graph", q)
		}
	}

	// Via names the qualified root, and Chain spells the cross-package
	// route the -hotpaths audit prints.
	run := findProgramNode(t, pg, "b.(*Engine).Run")
	if run.Via != "a.Kernel" {
		t.Errorf("b.(*Engine).Run: Via = %q, want %q", run.Via, "a.Kernel")
	}
	if got := strings.Join(run.Chain(), " -> "); got != "a.Kernel -> b.(*Engine).Run" {
		t.Errorf("b.(*Engine).Run: Chain = %q", got)
	}
	leaf := findProgramNode(t, pg, "b.leaf")
	if c := leaf.Chain(); len(c) != 3 || c[0] != "a.Kernel" {
		t.Errorf("b.leaf: Chain = %v, want a 3-hop route from a.Kernel", c)
	}

	// b.Step is annotated but already reachable from a.Kernel, so the
	// audit reports it redundant.
	red := pg.RedundantRoots()
	if len(red) != 1 || red[0].Qualified() != "b.Step" {
		names := make([]string, len(red))
		for i, n := range red {
			names[i] = n.Qualified()
		}
		t.Errorf("RedundantRoots = %v, want [b.Step]", names)
	}

	// The per-package views agree with the program: b has hot code and
	// its own (redundant) root.
	for _, g := range pg.Graphs() {
		if !g.HasHot() {
			t.Errorf("%s: HasHot() = false in program view", g.Path())
		}
	}
}

func findProgramNode(t *testing.T, pg *ProgramGraph, qualified string) *Node {
	t.Helper()
	for _, g := range pg.Graphs() {
		for _, n := range g.Nodes() {
			if n.Qualified() == qualified {
				return n
			}
		}
	}
	t.Fatalf("node %s not found in program graph", qualified)
	return nil
}

// TestWholeProgramSupersetOfPerPackage is the root-trim regression
// gate: every function the PR 8 per-package graphs marked hot (the
// committed testdata/hotset_pr8.tsv snapshot, taken before the manual
// root dedup) must still be hot in the whole-program graph built from
// today's trimmed root set. Propagation may only grow the hot set.
func TestWholeProgramSupersetOfPerPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	data, err := os.ReadFile(filepath.Join("testdata", "hotset_pr8.tsv"))
	if err != nil {
		t.Fatalf("reading golden hot set: %v", err)
	}
	type entry struct{ pkg, fn string }
	var golden []entry
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		pkg, fn, ok := strings.Cut(line, "\t")
		if !ok {
			t.Fatalf("malformed golden line %q", line)
		}
		golden = append(golden, entry{pkg, fn})
	}
	if len(golden) == 0 {
		t.Fatal("golden hot set is empty")
	}

	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := load.Packages(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	pg := BuildProgram(pkgs)

	hot := map[entry]bool{}
	for _, g := range pg.Graphs() {
		for _, n := range g.Nodes() {
			if n.Hot {
				hot[entry{g.Path(), n.Name()}] = true
			}
		}
	}
	var missing []string
	for _, e := range golden {
		if !hot[e] {
			missing = append(missing, e.pkg+"."+e.fn)
		}
	}
	if len(missing) > 0 {
		t.Errorf("whole-program hot set lost %d of %d PR 8 hot functions:\n  %s",
			len(missing), len(golden), strings.Join(missing, "\n  "))
	}
	if len(hot) < len(golden) {
		t.Errorf("hot set shrank: %d now vs %d in PR 8", len(hot), len(golden))
	}
}
