package callgraph

import (
	"testing"

	"parsched/internal/analysis/load"
)

// TestHotpathPropagation pins the reachability contract on the fixture:
// the hot set crosses static calls, closure bodies, and an interface
// method dispatch, and stops at constant-false branches, non-matching
// method sets, and cold callers of hot code.
func TestHotpathPropagation(t *testing.T) {
	fl := load.NewFixtureLoader("testdata")
	p, err := fl.Load("example.com/internal/hotgraph")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	for _, terr := range p.TypeErrors {
		t.Fatalf("fixture type error: %v", terr)
	}
	g := Build(p.Files, p.Types, p.Info)

	if !g.HasRoots() {
		t.Fatalf("HasRoots() = false; the fixture annotates Root")
	}

	wantHot := map[string]bool{
		"Root":        true, // the annotated root itself
		"(*adder).Do": true, // via interface dispatch on doer
		"step":        true, // static call from Root
		"leaf":        true, // static call from the dispatched method
		"viaClosure":  true, // called from a closure defined in Root
		"(misfit).Do": false,
		"coldDebug":   false, // behind `if debug` with debug == false
		"coldOrphan":  false, // calls hot code but nothing hot calls it
	}
	seen := map[string]bool{}
	for _, n := range g.Nodes() {
		name := n.Name()
		seen[name] = true
		want, known := wantHot[name]
		if !known {
			t.Errorf("unexpected function %s in graph", name)
			continue
		}
		if n.Hot != want {
			t.Errorf("%s: Hot = %v, want %v", name, n.Hot, want)
		}
		if n.Hot && n.Via != "Root" {
			t.Errorf("%s: Via = %q, want %q", name, n.Via, "Root")
		}
		if !n.Hot && n.Via != "" {
			t.Errorf("%s: cold node carries Via %q", name, n.Via)
		}
	}
	for name := range wantHot {
		if !seen[name] {
			t.Errorf("function %s missing from graph", name)
		}
	}

	// The root's resolved callees include both the static call and the
	// dispatched implementation, deduplicated.
	root := findNode(t, g, "Root")
	var callees []string
	for _, c := range root.Callees {
		callees = append(callees, c.Name())
	}
	if len(callees) != 3 {
		t.Errorf("Root callees = %v, want step, viaClosure, (*adder).Do in some order", callees)
	}
}

func findNode(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes() {
		if n.Name() == name {
			return n
		}
	}
	t.Fatalf("node %s not found", name)
	return nil
}
