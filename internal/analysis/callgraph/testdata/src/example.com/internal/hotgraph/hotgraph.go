// Package hotgraph is the reachability fixture: one annotated root
// whose hot set must include a statically called chain, a closure body,
// and an interface method resolved by dispatch — and must exclude code
// behind a constant-false guard, a method with the wrong signature, and
// a cold caller of hot code.
package hotgraph

type doer interface{ Do(n int) int }

type adder struct{ total int }

// Do is reached from Root through the interface dispatch on doer.
func (a *adder) Do(n int) int { return leaf(n) + a.total }

type misfit struct{}

// Do has the wrong signature for doer and stays cold.
func (misfit) Do(s string) string { return s }

const debug = false

// Root is the annotated hot-path entry point.
//
//schedlint:hotpath
func Root(d doer) int {
	if debug {
		coldDebug()
	}
	f := func(n int) int { return viaClosure(n) }
	return d.Do(step(1)) + f(2)
}

func step(n int) int { return n + 1 }

func leaf(n int) int { return 2 * n }

func viaClosure(n int) int { return n }

func coldDebug() {}

func coldOrphan() int { return step(3) }

var _ = coldOrphan
var _ doer = (*adder)(nil)
var _ = misfit{}
