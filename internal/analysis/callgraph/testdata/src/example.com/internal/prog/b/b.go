// Package b supplies the callee side of the whole-program fixture:
// the interface implementation a dispatches to, a redundant root the
// cross-package propagation already covers, and a coldpath
// constructor.
package b

// Engine implements a.runner.
type Engine struct{ bias int }

//schedlint:coldpath once-per-run constructor
func NewEngine(n int) *Engine { return &Engine{bias: setupCost(n)} }

// setupCost is reachable only through the coldpath constructor.
func setupCost(n int) int { return n * 2 }

// Run is reached by program-wide interface dispatch from a.Kernel.
func (e *Engine) Run(n int) int { return leaf(n) + e.bias }

//schedlint:hotpath redundant: a.Kernel already reaches this cross-package
func Step(n int) int { return leaf(n) }

func leaf(n int) int { return n + 1 }

// misfit has a Run of the wrong shape; it must not receive the
// dispatch edge.
type misfit struct{}

func (misfit) Run(n, extra int) int { return n }
