// Package a is the root package of the whole-program fixture: its
// kernel reaches package b through a static call, an interface
// dispatch the per-package graph cannot resolve, and a coldpath
// constructor the propagation must not enter.
package a

import "example.com/internal/prog/b"

// runner is satisfied by b.Engine; the concrete type is only known
// program-wide.
type runner interface{ Run(int) int }

//schedlint:hotpath fixture entry point
func Kernel(n int) int {
	e := b.NewEngine(n)
	var r runner = e
	return r.Run(n) + b.Step(n)
}
