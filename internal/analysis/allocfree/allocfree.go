// Package allocfree is the static side of the allocation contract: it
// flags the allocation idioms Go source spells out syntactically —
// map/slice composite literals, make, fmt calls, string<->[]byte/[]rune
// conversions, bound-method values, and appends to slices declared
// without capacity — inside //schedlint:hotpath-reachable functions.
//
// It complements the escape analyzer: escape reads what the compiler
// proved about this build, allocfree reads what the source promises on
// any build, and it names the idiomatic fix (hoist the buffer to
// setup, reuse a scratch slice, preallocate) rather than a compiler
// fact. Both scope themselves through the callgraph package, so cold
// code — setup, parsing, reporting — can allocate freely.
package allocfree

import (
	"go/ast"
	"go/types"

	"parsched/internal/analysis/callgraph"
	"parsched/internal/analysis/framework"
)

// Analyzer is the static allocation check.
var Analyzer = &framework.Analyzer{
	Name: "allocfree",
	Doc: "forbid allocation idioms (composite literals, make, fmt, string conversions, " +
		"method values, unpreallocated appends) in //schedlint:hotpath-reachable code",
	Run: run,
}

func run(pass *framework.Pass) error {
	g := callgraph.Of(pass)
	if !g.HasHot() {
		return nil
	}
	info := pass.TypesInfo
	for _, n := range g.Nodes() {
		if !n.Hot || n.Decl.Body == nil {
			continue
		}
		checkFunc(pass, info, n)
	}
	return nil
}

func checkFunc(pass *framework.Pass, info *types.Info, n *callgraph.Node) {
	body := n.Decl.Body

	// Pre-scan 1: expressions in call position — a selector used as
	// f.Method() dispatches without materializing a bound-method value.
	called := map[ast.Expr]bool{}
	// Pre-scan 2: local slice variables declared without a capacity
	// (`var s []T`, `s := []T{}`, `s := []T(nil)`) — appending to them
	// grows from zero, reallocating log(n) times.
	bare := map[types.Object]bool{}
	callgraph.WalkLive(info, body, func(node ast.Node) {
		switch s := node.(type) {
		case *ast.CallExpr:
			called[ast.Unparen(s.Fun)] = true
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok {
				return
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					if obj := info.Defs[name]; obj != nil && isSlice(obj.Type()) {
						bare[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(s.Rhs) {
					continue
				}
				obj := info.Defs[id]
				if obj == nil || !isSlice(obj.Type()) {
					continue
				}
				if isEmptySliceExpr(info, s.Rhs[i]) {
					bare[obj] = true
				}
			}
		}
	})

	via := n.Via
	callgraph.WalkLive(info, body, func(node ast.Node) {
		switch e := node.(type) {
		case *ast.CompositeLit:
			switch info.Types[e].Type.Underlying().(type) {
			case *types.Map:
				pass.Reportf(e.Pos(), "map literal allocates in hot path (via %s); hoist it to setup or reuse a scratch map", via)
			case *types.Slice:
				if len(e.Elts) > 0 { // empty literals are caught as bare appends instead
					pass.Reportf(e.Pos(), "slice literal allocates in hot path (via %s); hoist it to setup or reuse a scratch buffer", via)
				}
			}
		case *ast.CallExpr:
			checkCall(pass, info, e, bare, via)
		case *ast.SelectorExpr:
			if called[e] {
				return
			}
			if sel, ok := info.Selections[e]; ok && sel.Kind() == types.MethodVal {
				pass.Reportf(e.Pos(), "bound method value %s.%s allocates a closure in hot path (via %s); call it directly or use a method expression",
					exprString(e.X), e.Sel.Name, via)
			}
		}
	})
}

func checkCall(pass *framework.Pass, info *types.Info, call *ast.CallExpr, bare map[types.Object]bool, via string) {
	fun := ast.Unparen(call.Fun)

	// Type conversions between string and []byte/[]rune copy the data.
	if tv, ok := info.Types[fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := info.Types[call.Args[0]].Type
		if from != nil && isStringBytesConv(to, from) {
			pass.Reportf(call.Pos(), "%s conversion copies in hot path (via %s); keep one representation or use a reusable buffer",
				types.TypeString(to, nil), via)
		}
		return
	}

	switch f := fun.(type) {
	case *ast.Ident:
		switch info.Uses[f] {
		case types.Universe.Lookup("make"):
			pass.Reportf(call.Pos(), "make allocates in hot path (via %s); hoist the buffer to setup and reuse it", via)
		case types.Universe.Lookup("append"):
			if len(call.Args) == 0 {
				return
			}
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && bare[info.Uses[id]] {
				pass.Reportf(call.Pos(), "append to %s grows from zero capacity in hot path (via %s); preallocate or reuse a scratch buffer",
					id.Name, via)
			}
		}
	case *ast.SelectorExpr:
		if pkg, ok := info.Uses[f.Sel].(*types.Func); ok && pkg.Pkg() != nil && pkg.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s allocates (formats through interfaces) in hot path (via %s); use strconv or precomputed strings",
				f.Sel.Name, via)
		}
	}
}

func isSlice(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// isEmptySliceExpr matches `[]T{}` and `[]T(nil)`.
func isEmptySliceExpr(info *types.Info, e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return len(v.Elts) == 0 && isSlice(info.Types[v].Type)
	case *ast.CallExpr:
		tv, ok := info.Types[ast.Unparen(v.Fun)]
		if !ok || !tv.IsType() || len(v.Args) != 1 {
			return false
		}
		arg := info.Types[v.Args[0]]
		return isSlice(tv.Type) && arg.IsNil()
	}
	return false
}

// isStringBytesConv reports whether the conversion to<-from is one of
// the four copying string conversions.
func isStringBytesConv(to, from types.Type) bool {
	return (isStringType(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isStringType(from))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

// exprString renders a short receiver expression for messages.
func exprString(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	}
	return "receiver"
}
