package allocfree_test

import (
	"testing"

	"parsched/internal/analysis/allocfree"
	"parsched/internal/analysis/analysistest"
)

// TestAllocfreeFixtures pins the static allocation contract: each
// flagged idiom reports once in hot code, cold code and constant-false
// branches stay silent, and the allow directive suppresses in place.
func TestAllocfreeFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", allocfree.Analyzer, "example.com/internal/allochot")
}
