// Package allochot is the allocfree fixture: every flagged idiom once
// in hot code, the same idioms unflagged in cold code, a constant-false
// branch, and one sanctioned line.
package allochot

import "fmt"

type handle struct{ n int }

func (h handle) Close() error { return nil }

const debug = false

// Hot is the annotated root.
//
//schedlint:hotpath
func Hot(b []byte, words []string) int {
	m := map[string]int{}                     // want "map literal allocates"
	s := []int{1, 2}                          // want "slice literal allocates"
	buf := make([]byte, 0, 64)                // want "make allocates"
	var acc []int                             // declared without capacity ...
	acc = append(acc, len(b))                 // want "append to acc grows from zero capacity"
	name := fmt.Sprintf("job-%d", len(words)) // want "fmt\.Sprintf allocates"
	text := string(b)                         // want "string conversion copies"
	h := handle{n: 1}                         // struct literal: no finding
	f := h.Close                              // want "bound method value h\.Close allocates a closure"
	direct := h.Close() == nil                // direct call: no finding
	if debug {
		dead := map[int]int{} // constant-false branch: no finding
		_ = dead
	}
	scratch := make([]int, 0, len(words)) //schedlint:allow allocfree amortized by the caller's reuse, measured in BenchmarkHot
	_ = scratch
	n := len(m) + len(s) + len(buf) + len(acc) + len(name) + len(text)
	if direct && f() == nil {
		n++
	}
	return n
}

// Cold allocates freely: nothing hot reaches it, so the contract does
// not apply.
func Cold(words []string) string {
	m := map[string]int{}
	s := append([]string{}, words...)
	var acc []byte
	acc = append(acc, 'x')
	return fmt.Sprint(len(m), len(s), string(acc))
}
