// Package analysis aggregates the schedlint analyzer suite: the
// determinism contracts (determinism, maporder, handles, registry,
// floatsum) that keep the simulator's results reproducible, the
// allocgate performance contracts (escape, allocfree, locks) that keep
// its //schedlint:hotpath kernels allocation- and blocking-free, and
// the whole-program dataflow contracts (seedflow, ownership) that keep
// replication seeds explicit and goroutine handoffs owned. The
// cmd/schedlint multichecker and the per-analyzer tests both draw the
// canonical list from here.
package analysis

import (
	"parsched/internal/analysis/allocfree"
	"parsched/internal/analysis/determinism"
	"parsched/internal/analysis/escape"
	"parsched/internal/analysis/floatsum"
	"parsched/internal/analysis/framework"
	"parsched/internal/analysis/handles"
	"parsched/internal/analysis/locks"
	"parsched/internal/analysis/maporder"
	"parsched/internal/analysis/ownership"
	"parsched/internal/analysis/registry"
	"parsched/internal/analysis/seedflow"
)

// Analyzers returns the full schedlint suite in reporting order.
func Analyzers() []*framework.Analyzer {
	return []*framework.Analyzer{
		determinism.Analyzer,
		maporder.Analyzer,
		handles.Analyzer,
		registry.Analyzer,
		floatsum.Analyzer,
		seedflow.Analyzer,
		ownership.Analyzer,
		escape.Analyzer,
		allocfree.Analyzer,
		locks.Analyzer,
	}
}
