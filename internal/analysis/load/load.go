// Package load turns Go packages into type-checked syntax trees for
// the schedlint analyzers. It is the repository's stdlib-only stand-in
// for golang.org/x/tools/go/packages: package discovery goes through
// `go list`, and type information is reconstructed by checking every
// package — including standard-library dependencies — from source, so
// the analyzers run in a hermetic build environment with no module
// proxy and no pre-built export data.
//
// Two entry points exist. Packages loads module packages by build
// pattern ("./...") for the real lint run. NewFixtureLoader loads
// analysistest-style fixture trees rooted at testdata/src, where the
// directory below src is the package's import path and fixture imports
// shadow real packages — the same layout x/tools' analysistest uses.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	// Path is the import path the analyzers see. Fixture packages get
	// their testdata-relative path, so path-scoped analyzers behave
	// identically on fixtures and on the real tree.
	Path string
	// Dir is the directory holding the package's source files.
	Dir string
	// Fset is the file set all Files positions resolve through.
	Fset *token.FileSet
	// Files holds the parsed source files, with comments.
	Files []*ast.File
	// Types is the checked package object.
	Types *types.Package
	// Info carries the use/def/type maps for the package's syntax.
	Info *types.Info
	// TypeErrors collects soft type-check errors. Analysis proceeds on
	// a best-effort tree; callers decide whether errors are fatal.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	Error      *struct{ Err string }
}

// loader checks packages from source in dependency order, caching by
// import path so shared dependencies (fmt, sort, ...) are checked once
// per process.
type loader struct {
	fset    *token.FileSet
	dir     string // directory go list runs in (module root for real loads)
	listed  map[string]*listedPackage
	order   []string // listed packages in go list -deps (topological) order
	checked map[string]*Package
	// targets marks packages that need full checking (function bodies
	// and Info maps); everything else is checked export-shape only.
	targets map[string]bool
	sizes   types.Sizes
}

func newLoader(dir string) *loader {
	return &loader{
		fset:    token.NewFileSet(),
		dir:     dir,
		listed:  map[string]*listedPackage{},
		checked: map[string]*Package{},
		targets: map[string]bool{},
		sizes:   types.SizesFor("gc", runtime.GOARCH),
	}
}

// Packages loads and type-checks the packages matching the build
// patterns (run from dir; empty means the current directory), plus
// everything they transitively import. Only the matched packages are
// returned, sorted by import path; dependencies are checked with
// function bodies skipped, which is all their export shape needs.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	ld := newLoader(dir)
	if err := ld.list(patterns); err != nil {
		return nil, err
	}
	// A second, bare `go list` names the matched packages; -deps above
	// mixed them with their dependency closure. Targets must be known
	// before any checking starts: a target that is also a dependency of
	// another target would otherwise be cached body-less.
	out, err := ld.goList(append([]string{"list", "-e"}, patterns...))
	if err != nil {
		return nil, err
	}
	targets := strings.Fields(string(out))
	for _, path := range targets {
		ld.targets[path] = true
	}
	// Check in topological order so imports resolve from the cache.
	for _, path := range ld.order {
		if _, err := ld.check(path); err != nil {
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
	}
	var pkgs []*Package
	for _, path := range targets {
		p, err := ld.check(path)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// list populates the listed map with the dependency closure of the
// given patterns or import paths.
func (ld *loader) list(patterns []string) error {
	args := append([]string{"list", "-e", "-json", "-deps"}, patterns...)
	out, err := ld.goList(args)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return fmt.Errorf("go list output: %w", err)
		}
		if _, dup := ld.listed[lp.ImportPath]; !dup {
			p := lp
			ld.listed[lp.ImportPath] = &p
			ld.order = append(ld.order, lp.ImportPath)
		}
	}
	return nil
}

func (ld *loader) goList(args []string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = ld.dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0", "GOFLAGS=-mod=mod")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v: %s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

// check type-checks one listed package (and, recursively, its
// imports). Target packages get body checking and Info collection;
// transitive dependencies skip bodies, which is faster and sidesteps
// low-level runtime constructs the checker has no business revisiting.
func (ld *loader) check(path string) (*Package, error) {
	if p, ok := ld.checked[path]; ok {
		return p, nil
	}
	full := ld.targets[path]
	lp, ok := ld.listed[path]
	if !ok {
		// An import outside the already-listed closure (possible for
		// fixture imports of real packages): list it on demand.
		if err := ld.list([]string{path}); err != nil {
			return nil, err
		}
		if lp, ok = ld.listed[path]; !ok {
			return nil, fmt.Errorf("package %s not found by go list", path)
		}
	}
	if lp.Error != nil && len(lp.GoFiles) == 0 {
		return nil, fmt.Errorf("go list: %s", lp.Error.Err)
	}
	files := make([]string, len(lp.GoFiles))
	for i, f := range lp.GoFiles {
		files[i] = filepath.Join(lp.Dir, f)
	}
	return ld.checkFiles(path, lp.Dir, files, lp.ImportMap, full)
}

// checkFiles parses and type-checks one package from explicit file
// paths. importMap rewrites import paths (vendored std dependencies).
func (ld *loader) checkFiles(path, dir string, files []string, importMap map[string]string, full bool) (*Package, error) {
	p := &Package{Path: path, Dir: dir, Fset: ld.fset}
	// Install the entry before recursing so import cycles (which go
	// list would have rejected anyway) cannot hang the loader.
	ld.checked[path] = p
	for _, name := range files {
		f, err := parser.ParseFile(ld.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		p.Files = append(p.Files, f)
	}
	cfg := types.Config{
		Importer:         importerFunc(func(imp string) (*types.Package, error) { return ld.importPkg(imp, importMap) }),
		Sizes:            ld.sizes,
		IgnoreFuncBodies: !full,
		Error:            func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	if full {
		p.Info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
	}
	// Errors are soft: the checker recovers and the analyzers run on
	// whatever typed best-effort — the driver surfaces the errors.
	p.Types, _ = cfg.Check(path, ld.fset, p.Files, p.Info)
	return p, nil
}

// importPkg resolves one import for the type checker.
func (ld *loader) importPkg(path string, importMap map[string]string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := importMap[path]; ok {
		path = mapped
	}
	p, err := ld.check(path)
	if err != nil {
		return nil, err
	}
	if p.Types == nil {
		return nil, fmt.Errorf("package %s failed to check", path)
	}
	return p.Types, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// FixtureLoader loads analysistest-style fixture packages from a
// testdata/src tree. Import paths that exist under root/src resolve to
// the fixture (shadowing any real package of the same path); anything
// else falls back to the regular source loader, so fixtures import the
// standard library freely.
type FixtureLoader struct {
	root string // the testdata directory
	ld   *loader
	// full marks fixture paths that must be checked with bodies and
	// Info even when first reached as another fixture's import, so a
	// multi-package fixture module analyzes every listed package.
	full map[string]bool
}

// NewFixtureLoader returns a loader rooted at the given testdata
// directory.
func NewFixtureLoader(testdata string) *FixtureLoader {
	abs, err := filepath.Abs(testdata)
	if err != nil {
		abs = testdata
	}
	return &FixtureLoader{root: abs, ld: newLoader(abs), full: map[string]bool{}}
}

// Load type-checks the fixture package at root/src/<path> and returns
// it with Path set to <path>.
func (fl *FixtureLoader) Load(path string) (*Package, error) {
	fl.full[path] = true
	return fl.load(path, true)
}

// LoadAll loads a multi-package fixture: every path is marked as a
// full-analysis target before any checking starts, so a fixture that
// is imported by an earlier fixture in the list still gets function
// bodies and Info maps (mirroring how Packages pre-marks its targets).
// Packages are returned in the order given.
func (fl *FixtureLoader) LoadAll(paths ...string) ([]*Package, error) {
	for _, path := range paths {
		fl.full[path] = true
	}
	var pkgs []*Package
	for _, path := range paths {
		p, err := fl.load(path, true)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func (fl *FixtureLoader) load(path string, full bool) (*Package, error) {
	if p, ok := fl.ld.checked[path]; ok {
		return p, nil
	}
	dir := filepath.Join(fl.root, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %s: %w", path, err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %s: no Go files in %s", path, dir)
	}
	sort.Strings(files)
	p := &Package{Path: path, Dir: dir, Fset: fl.ld.fset}
	fl.ld.checked[path] = p
	for _, name := range files {
		f, err := parser.ParseFile(fl.ld.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		p.Files = append(p.Files, f)
	}
	cfg := types.Config{
		Importer:         importerFunc(fl.importPkg),
		Sizes:            fl.ld.sizes,
		IgnoreFuncBodies: !full,
		Error:            func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	if full {
		p.Info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
	}
	p.Types, _ = cfg.Check(path, fl.ld.fset, p.Files, p.Info)
	return p, nil
}

// importPkg prefers fixture packages, then real ones.
func (fl *FixtureLoader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := filepath.Join(fl.root, "src", filepath.FromSlash(path)); dirExists(dir) {
		p, err := fl.load(path, fl.full[path])
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return fl.ld.importPkg(path, nil)
}

func dirExists(dir string) bool {
	fi, err := os.Stat(dir)
	return err == nil && fi.IsDir()
}
