package load

import (
	"os"
	"path/filepath"
	"testing"
)

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

func TestPackagesLoadsAndChecksFromSource(t *testing.T) {
	pkgs, err := Packages(moduleRoot(t), "./internal/des", "./internal/sched")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	for _, p := range pkgs {
		if p.Types == nil || p.Info == nil {
			t.Fatalf("%s: missing type information", p.Path)
		}
		if len(p.Files) == 0 {
			t.Fatalf("%s: no files", p.Path)
		}
		for _, err := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.Path, err)
		}
	}
	if pkgs[0].Path != "parsched/internal/des" {
		t.Fatalf("unexpected first package %s", pkgs[0].Path)
	}
	// The handle type must be resolvable — the handles analyzer keys
	// off it.
	if obj := pkgs[0].Types.Scope().Lookup("Handle"); obj == nil {
		t.Fatal("des.Handle not found in checked package")
	}
}
