// Package seedflow is the seed-provenance taint analysis: every
// random-number generator the program constructs must derive its seed
// from an explicit seed parameter or from experiments.RepSeed, so that
// replications are reproducible and independently re-runnable from the
// committed configuration alone.
//
// The repository's generators are *stats.RNG (the xorshift64* core all
// simulated subsystems draw from) and the stdlib *rand.Rand/rand.Source
// family. The analyzer classifies the provenance of every expression
// that reaches a seed position:
//
//   - blessed: a seed parameter of the enclosing function, the result
//     of experiments.RepSeed, or a draw from an already-seeded
//     generator (stats.RNG.Split-style derivation);
//   - literal: an untyped constant — reproducible but frozen, the seed
//     cannot be varied per replication;
//   - time: wall-clock derived (time.Now().UnixNano() and friends) —
//     irreproducible by construction;
//   - global: drawn from the process-global math/rand generator, whose
//     state no experiment controls;
//   - unknown: everything else (flag values, struct fields of config
//     read from disk), which the analyzer trusts.
//
// Literal, time, and global provenance are findings. The analysis is
// interprocedural and field-sensitive over the whole program: a
// fixpoint first discovers which function parameters flow into seed
// positions (seed-sink parameters, including through helpers in other
// packages) and which struct fields feed seeds (seed fields), then
// every call argument bound to a sink parameter, every write to a seed
// field, and every direct constructor argument is checked. Interface
// method calls resolve through the whole-program call graph, so a seed
// laundered through an interface still reaches its implementations'
// sink parameters.
//
// Deliberately fixed seeds — the experiment suite's committed defaults
// — are sanctioned with //schedlint:allow seedflow <reason>.
package seedflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"parsched/internal/analysis/callgraph"
	"parsched/internal/analysis/framework"
	"parsched/internal/analysis/load"
)

// Analyzer is the seed-provenance check.
var Analyzer = &framework.Analyzer{
	Name: "seedflow",
	Doc: "require RNG seeds to derive from explicit seed parameters or experiments.RepSeed; " +
		"flag literal-, time-, and global-rand-seeded generators, including laundered ones",
	Run: run,
}

// class is the provenance lattice. Bad classes are ordered by severity
// so combine can pick the worst contributor.
type class int

const (
	clUnknown class = iota
	clBlessed
	clLiteral
	clGlobal
	clTime
)

// val is the classification of one expression: its provenance class,
// plus the enclosing function's parameters and the struct fields whose
// values contribute to it (the taint the fixpoint propagates).
type val struct {
	cls    class
	params map[int]bool
	fields map[*types.Var]bool
}

func (v val) withParam(i int) val {
	if v.params == nil {
		v.params = map[int]bool{}
	}
	v.params[i] = true
	return v
}

func (v val) withField(f *types.Var) val {
	if v.fields == nil {
		v.fields = map[*types.Var]bool{}
	}
	v.fields[f] = true
	return v
}

// combine joins the provenance of two contributing expressions
// (operands of arithmetic, alternative assignments to one variable).
// Wall-clock and global-rand taint dominates everything; a literal
// combined with a blessed value is blessed (seed+99 offsets an
// explicit seed), and a literal combined with an unknown is unknown
// (the analyzer cannot prove the literal decides the seed).
func combine(a, b val) val {
	out := val{params: a.params, fields: a.fields}
	for i := range b.params {
		out = out.withParam(i)
	}
	for f := range b.fields {
		out = out.withField(f)
	}
	switch {
	case a.cls == clTime || b.cls == clTime:
		out.cls = clTime
	case a.cls == clGlobal || b.cls == clGlobal:
		out.cls = clGlobal
	case a.cls == clLiteral && b.cls == clLiteral:
		out.cls = clLiteral
	case a.cls == clBlessed && (b.cls == clLiteral || b.cls == clBlessed):
		out.cls = clBlessed
	case b.cls == clBlessed && a.cls == clLiteral:
		out.cls = clBlessed
	default:
		out.cls = clUnknown
	}
	return out
}

// facts is the whole-program result of the discovery fixpoint.
type facts struct {
	// sinkParams maps a function to the parameter indices that flow
	// into a seed position (directly or through further sinks).
	sinkParams map[*types.Func]map[int]bool
	// seedFields marks struct fields whose values feed seed positions.
	seedFields map[*types.Var]bool
	// graph resolves interface dispatch, nil outside a program run.
	graph *callgraph.ProgramGraph
}

type factsKey struct{}

// of computes (once per run) the program facts, falling back to
// package-local facts for passes constructed outside a framework run.
func of(pass *framework.Pass) *facts {
	if pass.Program != nil {
		return pass.Program.Cached(factsKey{}, func() any {
			return discover(pass.Program.Packages, callgraph.OfProgram(pass.Program))
		}).(*facts)
	}
	return pass.Cached(factsKey{}, func() any {
		pkg := &load.Package{Path: pass.Path, Files: pass.Files, Types: pass.Pkg, Info: pass.TypesInfo}
		return discover([]*load.Package{pkg}, nil)
	}).(*facts)
}

// discover runs the sink-parameter/seed-field fixpoint over the
// program. Both sets only grow, so iteration terminates.
func discover(pkgs []*load.Package, pg *callgraph.ProgramGraph) *facts {
	f := &facts{
		sinkParams: map[*types.Func]map[int]bool{},
		seedFields: map[*types.Var]bool{},
		graph:      pg,
	}
	for changed := true; changed; {
		changed = false
		for _, p := range pkgs {
			if p.Types == nil || p.Info == nil {
				continue
			}
			walkFuncs(p, func(fc *funcCtx) {
				fc.eachSink(f, func(arg ast.Expr, _ sink) {
					v := fc.classify(arg, nil)
					// A parameter becomes a sink only when it decides the
					// seed by itself (pure pass-through, possibly offset
					// by literals). A parameter that merely perturbs an
					// unknown base (cfg.Seed + int64(site)) is a variation
					// index, not the seed.
					if v.cls == clBlessed {
						for i := range v.params {
							if f.addSinkParam(fc.fn, i) {
								changed = true
							}
						}
					}
					for fld := range v.fields {
						if !f.seedFields[fld] {
							f.seedFields[fld] = true
							changed = true
						}
					}
				})
			})
		}
	}
	return f
}

func (f *facts) addSinkParam(fn *types.Func, i int) bool {
	m := f.sinkParams[fn]
	if m == nil {
		m = map[int]bool{}
		f.sinkParams[fn] = m
	}
	if m[i] {
		return false
	}
	m[i] = true
	return true
}

func run(pass *framework.Pass) error {
	f := of(pass)
	pkg := &load.Package{Path: pass.Path, Files: pass.Files, Types: pass.Pkg, Info: pass.TypesInfo}
	walkFuncs(pkg, func(fc *funcCtx) {
		fc.eachSink(f, func(arg ast.Expr, s sink) {
			v := fc.classify(arg, nil)
			var what string
			switch v.cls {
			case clLiteral:
				what = "literal constant"
			case clTime:
				what = "wall-clock time"
			case clGlobal:
				what = "the global math/rand generator"
			default:
				return
			}
			pass.Reportf(arg.Pos(), "%s seeded from %s; derive seeds from an explicit seed parameter or experiments.RepSeed",
				s.describe(), what)
		})
	})
	return nil
}

// sink is one seed position: a constructor argument, an argument bound
// to a discovered sink parameter, or a write to a seed field.
type sink struct {
	kind  string // "constructor", "parameter", "field"
	name  string // the constructor, callee, or field name
	field string // parameter name or field name detail
}

func (s sink) describe() string {
	switch s.kind {
	case "constructor":
		return s.name
	case "parameter":
		return "seed parameter " + s.field + " of " + s.name
	default:
		return "seed field " + s.name
	}
}

// funcCtx is the per-function classification context.
type funcCtx struct {
	pkg     *load.Package
	fn      *types.Func
	decl    *ast.FuncDecl
	params  map[types.Object]int
	assigns map[types.Object][]ast.Expr
	// mutated marks loop counters and accumulators (x++, x += d):
	// their value varies at runtime, so they classify as unknown
	// rather than as their initial literal.
	mutated map[types.Object]bool
}

// walkFuncs visits every declared function of the package with its
// context prepared: parameter indices and the local single-assignment
// map classification chases variables through.
func walkFuncs(p *load.Package, visit func(*funcCtx)) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fc := &funcCtx{pkg: p, fn: fn, decl: fd, params: map[types.Object]int{}, assigns: map[types.Object][]ast.Expr{}, mutated: map[types.Object]bool{}}
			sig := fn.Type().(*types.Signature)
			for i := 0; i < sig.Params().Len(); i++ {
				fc.params[sig.Params().At(i)] = i
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.IncDecStmt:
					if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
						if obj := p.Info.Uses[id]; obj != nil {
							fc.mutated[obj] = true
						}
					}
				case *ast.AssignStmt:
					compound := n.Tok != token.ASSIGN && n.Tok != token.DEFINE
					if len(n.Lhs) != len(n.Rhs) && !compound {
						return true
					}
					for i, lhs := range n.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok {
							continue
						}
						obj := p.Info.Defs[id]
						if obj == nil {
							obj = p.Info.Uses[id]
						}
						if obj == nil {
							continue
						}
						if compound {
							fc.mutated[obj] = true
						} else if i < len(n.Rhs) {
							fc.assigns[obj] = append(fc.assigns[obj], n.Rhs[i])
						}
					}
				}
				return true
			})
			visit(fc)
		}
	}
}

// eachSink visits every seed position in the function body with the
// expression that flows into it.
func (fc *funcCtx) eachSink(f *facts, visit func(ast.Expr, sink)) {
	info := fc.pkg.Info
	ast.Inspect(fc.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callee := calleeOf(info, n)
			if callee == nil {
				return true
			}
			if idxs := constructorSeedArgs(callee); idxs != nil {
				for _, i := range idxs {
					if i < len(n.Args) {
						visit(n.Args[i], sink{kind: "constructor", name: callgraph.ShortName(callee)})
					}
				}
				return true
			}
			for _, target := range fc.resolveCallee(f, callee) {
				for i := range f.sinkParams[target] {
					if i < len(n.Args) {
						visit(n.Args[i], sink{kind: "parameter", name: callgraph.ShortName(target), field: paramName(target, i)})
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fld, ok := info.Uses[sel.Sel].(*types.Var); ok && fld.IsField() && f.seedFields[fld] {
					visit(n.Rhs[i], sink{kind: "field", name: fld.Name()})
				}
			}
		case *ast.CompositeLit:
			st, ok := info.Types[n].Type.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			for i, elt := range n.Elts {
				var fld *types.Var
				value := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						fld, _ = info.Uses[id].(*types.Var)
					}
					value = kv.Value
				} else if i < st.NumFields() {
					fld = st.Field(i)
				}
				if fld != nil && f.seedFields[fld] {
					visit(value, sink{kind: "field", name: fld.Name()})
				}
			}
		}
		return true
	})
}

// resolveCallee returns the functions a call may reach: the static
// callee, plus every program-known implementation for an interface
// method.
func (fc *funcCtx) resolveCallee(f *facts, callee *types.Func) []*types.Func {
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface && f.graph != nil {
			var out []*types.Func
			for _, n := range f.graph.Resolve(callee) {
				out = append(out, n.Fn)
			}
			return out
		}
	}
	return []*types.Func{callee}
}

// classify determines the provenance of expr within the function.
// visited guards recursion through the local assignment map.
func (fc *funcCtx) classify(expr ast.Expr, visited map[types.Object]bool) val {
	info := fc.pkg.Info
	if tv, ok := info.Types[expr]; ok && tv.Value != nil {
		return val{cls: clLiteral}
	}
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if _, ok := obj.(*types.Var); !ok {
			return val{}
		}
		if i, isParam := fc.params[obj]; isParam {
			return val{cls: clBlessed}.withParam(i)
		}
		if fc.mutated[obj] {
			return val{}
		}
		rhs := fc.assigns[obj]
		if len(rhs) == 0 || visited[obj] {
			return val{}
		}
		if visited == nil {
			visited = map[types.Object]bool{}
		}
		visited[obj] = true
		out := fc.classify(rhs[0], visited)
		for _, r := range rhs[1:] {
			out = combine(out, fc.classify(r, visited))
		}
		return out
	case *ast.SelectorExpr:
		if fld, ok := info.Uses[e.Sel].(*types.Var); ok && fld.IsField() {
			return val{}.withField(fld)
		}
		return val{}
	case *ast.BinaryExpr:
		return combine(fc.classify(e.X, visited), fc.classify(e.Y, visited))
	case *ast.UnaryExpr:
		return fc.classify(e.X, visited)
	case *ast.CallExpr:
		if tv, ok := info.Types[ast.Unparen(e.Fun)]; ok && tv.IsType() && len(e.Args) == 1 {
			return fc.classify(e.Args[0], visited)
		}
		return classifyCall(info, e, fc, visited)
	}
	return val{}
}

// classifyCall classifies the result of a call: wall-clock reads,
// global math/rand draws, RepSeed, and draws from an already-seeded
// generator.
func classifyCall(info *types.Info, call *ast.CallExpr, fc *funcCtx, visited map[types.Object]bool) val {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil {
		return val{}
	}
	path := fn.Pkg().Path()
	sig, _ := fn.Type().(*types.Signature)
	recv := sig != nil && sig.Recv() != nil

	switch {
	case path == "time" && !recv && wallClock[fn.Name()]:
		return val{cls: clTime}
	case path == "time" && recv:
		// t.UnixNano() etc.: the provenance is the receiver's.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return fc.classify(sel.X, visited)
		}
		return val{}
	case (path == "math/rand" || path == "math/rand/v2") && !recv && !randConstructors[fn.Name()]:
		return val{cls: clGlobal}
	case fn.Name() == "RepSeed" && framework.PathMatches(path, "internal/experiments"):
		return val{cls: clBlessed}
	case recv && seededGenerator(sig.Recv().Type()):
		// A draw from an existing generator derives a new stream from a
		// seeded one (the Split idiom).
		return val{cls: clBlessed}
	}
	return val{}
}

// wallClock lists package time's clock-observing functions.
var wallClock = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors lists the math/rand(/v2) package functions that
// build generators rather than draw from the global one. Their seed
// arguments are checked as constructor sinks instead.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// constructorSeedArgs returns the argument indices that seed a known
// generator constructor, or nil when fn is not one.
func constructorSeedArgs(fn *types.Func) []int {
	name := fn.Name()
	if fn.Pkg() == nil {
		return nil
	}
	path := fn.Pkg().Path()
	sig, _ := fn.Type().(*types.Signature)
	recv := sig != nil && sig.Recv() != nil

	if framework.PathMatches(path, "internal/stats") {
		if !recv && name == "NewRNG" {
			return []int{0}
		}
		if recv && name == "Seed" && seededGenerator(sig.Recv().Type()) {
			return []int{0}
		}
	}
	if path == "math/rand" || path == "math/rand/v2" {
		switch {
		case !recv && (name == "NewSource" || name == "Seed"):
			return []int{0}
		case !recv && name == "NewPCG":
			return []int{0, 1}
		case recv && name == "Seed":
			return []int{0}
		}
	}
	return nil
}

// seededGenerator reports whether t is one of the repository's
// explicitly seeded generator types (or the stdlib's).
func seededGenerator(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	name := named.Obj().Name()
	if framework.PathMatches(path, "internal/stats") && name == "RNG" {
		return true
	}
	if (path == "math/rand" || path == "math/rand/v2") && (name == "Rand" || name == "Source") {
		return true
	}
	return false
}

// paramName returns the declared name of parameter i of fn, or its
// index when unnamed.
func paramName(fn *types.Func, i int) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || i >= sig.Params().Len() {
		return "?"
	}
	if name := sig.Params().At(i).Name(); name != "" {
		return name
	}
	return "#" + string(rune('0'+i))
}

// calleeOf resolves the static callee, mirroring the callgraph helper
// (kept local: this package reports on argument positions, not nodes).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
