package seedflow_test

import (
	"testing"

	"parsched/internal/analysis/analysistest"
	"parsched/internal/analysis/seedflow"
)

// TestSeedflowFixtures pins the seed-provenance contract across
// packages: literal, wall-clock, and global-rand seeds report at the
// constructor, through a cross-package helper parameter, through a
// struct field, and through an interface edge; explicit-parameter,
// RepSeed, split, config, and allow-sanctioned seeds stay silent.
func TestSeedflowFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", seedflow.Analyzer,
		"example.com/internal/stats",
		"example.com/internal/experiments",
		"example.com/internal/prov/helper",
		"example.com/internal/prov/seeded",
	)
}
