// Package experiments mirrors the repository's replication-seed
// derivation so fixtures can bless values through RepSeed.
package experiments

// RepSeed derives the seed of replication rep from the base seed.
func RepSeed(base int64, rep int) int64 { return base + int64(rep)*1000003 }
