// Package stats mirrors the repository's seeded generator so the
// fixtures exercise the analyzer's stats.RNG recognition through the
// same internal/stats path suffix the real module has.
package stats

// RNG is the fixture twin of the repository's xorshift generator.
type RNG struct{ state uint64 }

// NewRNG builds a generator from an explicit seed.
func NewRNG(seed int64) *RNG { return &RNG{state: uint64(seed)} }

// Seed reseeds the generator in place.
func (r *RNG) Seed(seed int64) { r.state = uint64(seed) }

// Uint64 draws the next value.
func (r *RNG) Uint64() uint64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	return r.state
}

// Int63 draws a non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }
