// Package seeded exercises the seedflow contract end to end: direct
// constructor seeding, laundering through a cross-package helper, a
// struct field, and an interface edge, plus the blessed derivations
// that must stay silent.
package seeded

import (
	"math/rand"
	"time"

	"example.com/internal/experiments"
	"example.com/internal/prov/helper"
	"example.com/internal/stats"
)

// Direct seeds the repository generator every forbidden way.
func Direct() {
	a := stats.NewRNG(42) // want "NewRNG seeded from literal constant"
	_ = a
	b := stats.NewRNG(time.Now().UnixNano()) // want "NewRNG seeded from wall-clock time"
	_ = b
	c := stats.NewRNG(int64(rand.Int())) // want "NewRNG seeded from the global math/rand generator"
	_ = c
	a.Seed(7) // want "\(\*RNG\)\.Seed seeded from literal constant"
}

// Stdlib seeds the stdlib constructors the same ways.
func Stdlib() {
	src := rand.NewSource(2) // want "NewSource seeded from literal constant"
	r := rand.New(src)
	_ = r.Int63()
}

// Laundered routes bad seeds through helpers the fixpoint must have
// seen through.
func Laundered() {
	m := helper.Make(3) // want "seed parameter seed of Make seeded from literal constant"
	_ = m
	o := helper.MakeOffset(time.Now().UnixNano()) // want "seed parameter seed of MakeOffset seeded from wall-clock time"
	_ = o
	g := helper.Gen{Seed: 5, Bias: 1} // want "seed field Seed seeded from literal constant"
	g.Seed = time.Now().Unix()        // want "seed field Seed seeded from wall-clock time"
	_ = g.Build()
}

// Engine implements helper.Seeder; its Reseed parameter feeds the
// generator, so the fixpoint discovers it as a sink reachable through
// the interface.
type Engine struct{ rng *stats.RNG }

// Reseed reseeds the engine's generator from the explicit parameter.
func (e *Engine) Reseed(seed int64) { e.rng.Seed(seed) }

// ThroughInterface seeds via the interface method; whole-program
// dispatch resolution must land the literal on Engine.Reseed's sink.
func ThroughInterface(e *Engine) {
	var s helper.Seeder = e
	s.Reseed(1234) // want "seed parameter seed of \(\*Engine\)\.Reseed seeded from literal constant"
}

// Config stands in for options parsed from disk or flags: unknown
// provenance the analyzer trusts.
type Config struct {
	FromDisk int64
}

// Blessed collects the derivations that must stay silent.
func Blessed(seed int64, base int64, rep int, c Config) {
	direct := stats.NewRNG(seed)
	offset := stats.NewRNG(seed + 99)
	repd := stats.NewRNG(experiments.RepSeed(base, rep))
	split := stats.NewRNG(int64(direct.Uint64()))
	disk := stats.NewRNG(c.FromDisk)
	_, _, _, _ = offset, repd, split, disk

	// A loop counter varies at runtime; its initial literal does not
	// decide the seed.
	counter := int64(0)
	for i := 0; i < rep; i++ {
		counter++
	}
	varying := stats.NewRNG(counter)
	_ = varying

	// The escape hatch: a deliberate fixed seed with a reason.
	demo := stats.NewRNG(1999) //schedlint:allow seedflow fixture: committed demo default
	_ = demo
}
