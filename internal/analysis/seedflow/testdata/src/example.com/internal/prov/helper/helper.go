// Package helper supplies the laundering routes the seedflow fixpoint
// must see through: a cross-package pass-through function, a struct
// field that feeds a constructor, and an interface whose
// implementations reseed a generator.
package helper

import "example.com/internal/stats"

// Make passes its parameter straight into a seed position, so the
// discovery fixpoint must register seed as a sink parameter and check
// every cross-package call site of Make.
func Make(seed int64) *stats.RNG { return stats.NewRNG(seed) }

// MakeOffset offsets the explicit seed by a literal before seeding;
// the parameter still decides the seed and stays a sink.
func MakeOffset(seed int64) *stats.RNG { return stats.NewRNG(seed ^ 0x9e3779b9) }

// Gen launders a seed through a struct field: Build makes Gen.Seed a
// seed field, so composite literals and assignments that store
// literals into it are findings at the write site.
type Gen struct {
	Seed int64
	Bias int
}

// Build consumes the stored field as a seed.
func (g *Gen) Build() *stats.RNG { return stats.NewRNG(g.Seed) }

// Seeder launders a seed through an interface edge: calls through it
// must resolve to the program's implementations and check their sink
// parameters.
type Seeder interface {
	Reseed(seed int64)
}
