// Package analysistest runs a schedlint analyzer over fixture
// packages and matches its findings against expectations written in
// the fixture source — the same contract as
// golang.org/x/tools/go/analysis/analysistest, rebuilt on the
// repository's stdlib-only framework.
//
// Fixtures live under <testdata>/src/<import path>/, and a line that
// should be flagged carries a comment of the form
//
//	code() // want "regexp"
//
// (multiple quoted regexps for multiple findings on one line). Every
// finding must be matched by a want on its line, and every want must
// be matched by a finding: unexpected and missing findings both fail
// the test. Suppression directives are honored before matching, so a
// line with a violation, a well-formed //schedlint:allow comment, and
// no want is exactly how fixtures prove the escape hatch works.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"parsched/internal/analysis/framework"
	"parsched/internal/analysis/load"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads the fixture packages below testdata/src as one fixture
// module — every listed path is a full-analysis target, so fixtures
// may import each other and cross-package structures (the
// whole-program call graph, seed-provenance summaries) span the whole
// list — applies the analyzer, and matches findings against the
// // want comments.
func Run(t *testing.T, testdata string, a *framework.Analyzer, paths ...string) {
	t.Helper()
	fl := load.NewFixtureLoader(testdata)
	pkgs, err := fl.LoadAll(paths...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", paths, err)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Errorf("fixture %s: type error: %v", p.Path, terr)
		}
	}
	diags, fset, err := framework.Run(pkgs, []*framework.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	found := map[key][]string{}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		found[k] = append(found[k], fmt.Sprintf("%s: %s", d.Check, d.Message))
	}

	// Collect the want expectations from the fixture sources.
	wants := map[key][]*regexp.Regexp{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
						re, err := regexp.Compile(q[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, q[1], err)
						}
						wants[k] = append(wants[k], re)
					}
				}
			}
		}
	}

	for k, res := range wants {
		got := found[k]
		if len(got) != len(res) {
			t.Errorf("%s:%d: want %d finding(s), got %d: %s",
				k.file, k.line, len(res), len(got), strings.Join(got, "; "))
			continue
		}
		// Match greedily: each want regexp must match a distinct finding.
		used := make([]bool, len(got))
		for _, re := range res {
			ok := false
			for i, g := range got {
				if !used[i] && re.MatchString(g) {
					used[i] = true
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("%s:%d: no finding matches %q (got: %s)",
					k.file, k.line, re, strings.Join(got, "; "))
			}
		}
		delete(found, k)
	}
	for k, got := range found {
		t.Errorf("%s:%d: unexpected finding(s): %s", k.file, k.line, strings.Join(got, "; "))
	}
	_ = token.NoPos
}
