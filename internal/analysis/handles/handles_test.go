package handles_test

import (
	"testing"

	"parsched/internal/analysis/analysistest"
	"parsched/internal/analysis/handles"
)

func TestHandles(t *testing.T) {
	analysistest.Run(t, "testdata", handles.Analyzer, "example.com/internal/sim")
}
