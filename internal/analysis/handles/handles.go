// Package handles enforces the des.Handle usage contract.
//
// The event engine pools event structs and stamps each Handle with a
// generation number, so a stale handle is memory-safe — but only as an
// inert no-op. Code that keeps using a handle after cancelling it is
// confused about event lifetimes even when it happens to be harmless,
// and the confusion turns into real bugs the moment the pooled struct
// is recycled into a new event. Likewise, comparing two Handle values
// with == conflates (event, generation) identity across recycling —
// and across engines, where the comparison is meaningless.
//
// The analyzer flags, within a statement block:
//
//   - any use of a handle variable after it was passed to Cancel,
//     until the variable is reassigned (calling Cancelled() on it is
//     fine: that query is the documented way to inspect a dead handle);
//   - any ==/!= comparison of two des.Handle values (use Cancelled()
//     or track liveness explicitly).
package handles

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"parsched/internal/analysis/framework"
)

// Analyzer is the handle-lifetime check.
var Analyzer = &framework.Analyzer{
	Name: "handles",
	Doc:  "flag des.Handle reuse after Cancel and ==/!= comparison of handles",
	Run:  run,
}

// isHandle reports whether t is the des package's Handle type (real
// tree or fixture: any package whose path's last component is "des").
func isHandle(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Handle" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "des" || strings.HasSuffix(path, "/des")
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					tx, ty := pass.TypesInfo.TypeOf(n.X), pass.TypesInfo.TypeOf(n.Y)
					if tx != nil && ty != nil && isHandle(tx) && isHandle(ty) {
						pass.Reportf(n.OpPos,
							"des.Handle comparison conflates (event, generation) identity across recycling and engines; use Cancelled() or track liveness explicitly")
					}
				}
			case *ast.BlockStmt:
				checkBlock(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkBlock scans one statement list for handle uses after a Cancel
// of the same variable.
func checkBlock(pass *framework.Pass, block *ast.BlockStmt) {
	// cancelled maps a handle variable to the position of its Cancel.
	cancelled := map[types.Object]token.Pos{}
	for _, stmt := range block.List {
		// A reassignment of a cancelled handle revives the variable.
		if as, ok := stmt.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						delete(cancelled, obj)
					}
				}
			}
		}
		if len(cancelled) > 0 {
			reportUses(pass, stmt, cancelled)
		}
		// Record Cancels that happen in this statement (after scanning
		// it for uses, so the Cancel argument itself is not flagged).
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Cancel" || len(call.Args) != 1 {
				return true
			}
			arg, ok := call.Args[0].(*ast.Ident)
			if !ok {
				return true
			}
			if t := pass.TypesInfo.TypeOf(arg); t == nil || !isHandle(t) {
				return true
			}
			if obj := pass.TypesInfo.ObjectOf(arg); obj != nil {
				cancelled[obj] = call.Pos()
			}
			return true
		})
	}
}

// reportUses flags reads of cancelled handle variables inside stmt,
// excluding Cancelled() queries. If the statement reassigns the
// variable somewhere in a nested block, tracking stops conservatively.
func reportUses(pass *framework.Pass, stmt ast.Stmt, cancelled map[types.Object]token.Pos) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						delete(cancelled, obj)
					}
				}
			}
		case *ast.SelectorExpr:
			// h.Cancelled() is the sanctioned post-cancel query.
			if n.Sel.Name == "Cancelled" {
				if id, ok := n.X.(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						if _, dead := cancelled[obj]; dead {
							return false
						}
					}
				}
			}
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[n]
			if obj == nil {
				return true
			}
			if _, dead := cancelled[obj]; dead {
				pass.Reportf(n.Pos(),
					"handle %s used after Cancel; a cancelled handle is inert — drop it or reassign before reuse", n.Name)
				delete(cancelled, obj) // one report per cancellation
			}
		}
		return true
	})
}
