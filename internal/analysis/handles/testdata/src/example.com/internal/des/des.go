// Package des is a handles-fixture stub of the event engine: just
// enough surface (Handle, Cancelled, Engine.At/Cancel) for the
// analyzer's type-based matching, which accepts any package whose
// path ends in "/des".
package des

// Event is a pooled event record.
type Event struct{ gen uint64 }

// Handle names a scheduled event with a generation stamp.
type Handle struct {
	ev  *Event
	gen uint64
}

// Cancelled reports whether the handle no longer names a live event.
func (h Handle) Cancelled() bool { return h.ev == nil || h.ev.gen != h.gen }

// Engine is the event engine stub.
type Engine struct{ now int64 }

// Now returns virtual time.
func (e *Engine) Now() int64 { return e.now }

// At schedules fn and returns its handle.
func (e *Engine) At(t int64, fn func()) Handle { _ = t; _ = fn; return Handle{} }

// Cancel revokes the event named by h.
func (e *Engine) Cancel(h Handle) bool { return !h.Cancelled() }
