// Package sim is the handles fixture: use-after-Cancel and handle
// comparison are flagged; Cancelled() queries and reassignment are the
// sanctioned patterns.
package sim

import "example.com/internal/des"

func useAfterCancel(e *des.Engine) {
	h := e.At(10, func() {})
	e.Cancel(h)
	_ = h // want "handle h used after Cancel"
}

func compare(a, b des.Handle) bool {
	return a == b // want "des.Handle comparison"
}

func compareNeq(a, b des.Handle) bool {
	return a != b // want "des.Handle comparison"
}

// query uses the sanctioned post-cancel inspection: not flagged.
func query(e *des.Engine) bool {
	h := e.At(10, func() {})
	e.Cancel(h)
	return h.Cancelled()
}

// revive reassigns before reuse: not flagged.
func revive(e *des.Engine) des.Handle {
	h := e.At(5, func() {})
	e.Cancel(h)
	h = e.At(6, func() {})
	return h
}

func allowed(e *des.Engine) {
	h := e.At(7, func() {})
	e.Cancel(h)
	_ = h //schedlint:allow handles fixture: proves the escape hatch works
}
