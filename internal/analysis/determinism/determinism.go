// Package determinism forbids wall-clock time and the global
// math/rand generator inside the simulated subsystems.
//
// Every reported result — the committed battery golden, the
// streaming≡batch metrics equivalence, the derived-seed replication
// CIs — assumes two runs with the same inputs produce identical
// output. Wall-clock reads (time.Now, time.Since, time.Sleep) and the
// process-global math/rand functions break that silently: the code
// still works, the numbers just stop being reproducible. Inside the
// simulation packages, time comes from the event engine
// (des.Engine.Now) and randomness from an injected, seeded *rand.Rand.
//
// Sanctioned wall-clock uses (e.g. per-cell elapsed timing in the
// experiment batch layer, which is diagnostic output rather than
// simulation state) carry a //schedlint:allow determinism <reason>
// directive.
package determinism

import (
	"go/ast"
	"go/types"

	"parsched/internal/analysis/framework"
)

// Analyzer is the determinism check.
var Analyzer = &framework.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock time and global math/rand in simulated code; " +
		"use engine time and injected seeded *rand.Rand",
	Run: run,
}

// scope lists the module-relative subsystems where simulated time and
// seeded randomness are the law. Subpackages (internal/workload/trace)
// are covered by the component-boundary match.
var scope = []string{
	"internal/sim",
	"internal/des",
	"internal/sched",
	"internal/cluster",
	"internal/workload",
	"internal/metrics",
	"internal/stats",
	"internal/experiments",
}

// timeForbidden are the wall-clock entry points of package time. The
// pure-value helpers (time.Duration arithmetic, time.Unix, ...) are
// fine: they do not observe the host clock.
var timeForbidden = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTicker": true, "NewTimer": true,
}

// randAllowed are the math/rand package-level functions that construct
// generators rather than draw from the shared global one.
var randAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

func inScope(path string) bool {
	for _, s := range scope {
		if framework.PathMatches(path, s) {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass) error {
	if !inScope(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if timeForbidden[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"wall-clock time.%s in simulated code; use engine time (des.Engine.Now) or annotate //schedlint:allow determinism <reason>",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !randAllowed[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"global rand.%s breaks seeded replay; draw from an injected *rand.Rand",
						fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
