package determinism_test

import (
	"testing"

	"parsched/internal/analysis/analysistest"
	"parsched/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer,
		"example.com/internal/sim", "example.com/internal/model")
}
