// Package sim is a determinism fixture: it sits inside the simulated
// scope, so wall-clock and global-rand uses must be flagged while
// engine time and injected generators pass.
package sim

import (
	"math/rand"
	"time"
)

// Engine stands in for the event engine's virtual clock.
type Engine struct{ now int64 }

// Now returns virtual time.
func (e *Engine) Now() int64 { return e.now }

func stamp(e *Engine) int64 {
	return e.Now() // engine time: fine
}

func wall() int64 {
	return time.Now().Unix() // want "wall-clock time.Now"
}

func jitter() int {
	return rand.Intn(10) // want "global rand.Intn"
}

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10) // injected seeded generator: fine
}

func pause() {
	time.Sleep(time.Millisecond) // want "wall-clock time.Sleep"
}

func harness() int64 {
	return time.Now().Unix() //schedlint:allow determinism fixture: diagnostic timing outside simulation state
}
