// Package model is a determinism fixture outside the simulated scope:
// the same wall-clock read that is flagged in internal/sim is legal
// here, proving the analyzer's path scoping.
package model

import "time"

// Timestamp may read the wall clock: internal/model is not simulated.
func Timestamp() int64 { return time.Now().Unix() }
