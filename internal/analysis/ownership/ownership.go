// Package ownership enforces the goroutine-ownership contract: state
// that crosses a goroutine boundary — captured by a goroutine closure,
// passed to a goroutine call, or sent on a channel — must be owned by
// exactly one side. A transfer is clean when the value is
//
//   - a coordination primitive (channel, func value, context.Context,
//     sync/atomic type) whose whole job is to be shared;
//   - immutable data (basics, strings, time values, structs of those),
//     which cannot race however many goroutines read it;
//   - a fresh allocation handed off and never touched again by the
//     sender (ownership transfer: allocated locally, every use sits
//     before the transfer point, and the launch is not upstream of the
//     allocation in a loop).
//
// Anything else is deliberately shared mutable state and must say so:
//
//	//schedlint:shared <reason>
//
// on the launching/sending line (or standing alone on the line above).
// The reason is mandatory — the directive documents the protocol that
// makes the sharing safe (a WaitGroup barrier, an index-partitioned
// results slice), and an unexplained one is itself a finding. The
// simulator kernels are single-threaded by contract (the locks
// analyzer enforces that); this analyzer patrols the boundary code
// that is allowed to fan out: the batch experiment runner and the
// command-line drivers.
package ownership

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"parsched/internal/analysis/framework"
)

// Analyzer is the goroutine-ownership check.
var Analyzer = &framework.Analyzer{
	Name: "ownership",
	Doc: "require goroutine captures and channel sends of mutable state to be closure-allocated, " +
		"cloned, immutable, or annotated //schedlint:shared <reason>",
	Run: run,
}

// SharedDirective marks a reviewed shared-state handoff.
const SharedDirective = "//schedlint:shared"

func run(pass *framework.Pass) error {
	shared := sharedLines(pass)
	for _, f := range pass.Files {
		var stack []ast.Node // enclosing funcs and loops, innermost last
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			switch n := n.(type) {
			case *ast.FuncDecl, *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
				stack = append(stack, n)
				return true
			case *ast.GoStmt:
				checkGo(pass, n, append([]ast.Node(nil), stack...), shared)
			case *ast.SendStmt:
				checkSend(pass, n, append([]ast.Node(nil), stack...), shared)
			}
			stack = append(stack, n)
			return true
		})
	}
	return nil
}

// checkGo examines one goroutine launch: closure captures for a func
// literal, arguments for a named call.
func checkGo(pass *framework.Pass, g *ast.GoStmt, stack []ast.Node, shared map[int]string) {
	encl := enclosingFunc(stack)
	if encl == nil {
		return
	}
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		for _, cap := range captures(pass.TypesInfo, lit, encl) {
			if mutableShared(pass, cap.obj, cap.use, g, encl, stack) {
				report(pass, shared, g.Pos(), "goroutine closure captures %s (%s); clone it, hand it off fresh, or annotate //schedlint:shared <reason>",
					cap.obj.Name(), typeShort(cap.obj.Type()))
			}
		}
		return
	}
	for _, arg := range g.Call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			continue
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			continue
		}
		if mutableShared(pass, obj, id, g, encl, stack) {
			report(pass, shared, g.Pos(), "goroutine call receives %s (%s); clone it, hand it off fresh, or annotate //schedlint:shared <reason>",
				obj.Name(), typeShort(obj.Type()))
		}
	}
}

// checkSend examines one channel send: the sent value must not remain
// a live mutable alias on the sending side.
func checkSend(pass *framework.Pass, s *ast.SendStmt, stack []ast.Node, shared map[int]string) {
	encl := enclosingFunc(stack)
	if encl == nil {
		return
	}
	val := ast.Unparen(s.Value)
	// Sending a freshly built value (&T{...}, make(...), T{...}) is the
	// ownership-transfer idiom itself.
	if isAllocExpr(val) {
		return
	}
	id, ok := val.(*ast.Ident)
	if !ok {
		return
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || obj.IsField() {
		return
	}
	if mutableShared(pass, obj, id, s, encl, stack) {
		report(pass, shared, s.Arrow, "channel send of %s (%s) keeps a live mutable alias on the sender; clone it, send a fresh value, or annotate //schedlint:shared <reason>",
			obj.Name(), typeShort(obj.Type()))
	}
}

// capture is one variable a goroutine closure refers to from its
// enclosing function.
type capture struct {
	obj *types.Var
	use *ast.Ident
}

// captures returns the variables lit refers to that are declared in
// the enclosing function but outside the literal, each with its first
// use inside the literal.
func captures(info *types.Info, lit *ast.FuncLit, encl ast.Node) []capture {
	seen := map[*types.Var]bool{}
	var out []capture
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || seen[obj] {
			return true
		}
		pos := obj.Pos()
		declaredOutsideLit := pos < lit.Pos() || pos > lit.End()
		declaredInEncl := pos >= encl.Pos() && pos <= encl.End()
		if declaredOutsideLit && declaredInEncl {
			seen[obj] = true
			out = append(out, capture{obj: obj, use: id})
		}
		return true
	})
	return out
}

// mutableShared reports whether obj crossing the goroutine/channel
// boundary at stmt is a shared mutable value: mutable by type, and not
// a fresh local handoff.
func mutableShared(pass *framework.Pass, obj *types.Var, use *ast.Ident, stmt ast.Node, encl ast.Node, stack []ast.Node) bool {
	if !typeMutable(obj.Type(), nil) {
		return false
	}
	return !freshHandoff(pass, obj, stmt, encl, stack)
}

// freshHandoff reports the clean ownership-transfer shape: obj is
// declared inside the enclosing function, every value it ever holds is
// a fresh allocation, no use of it follows the transfer point, and the
// transfer is not upstream of the declaration in a loop (which would
// hand the same allocation out repeatedly).
func freshHandoff(pass *framework.Pass, obj *types.Var, stmt ast.Node, encl ast.Node, stack []ast.Node) bool {
	if obj.Pos() < encl.Pos() || obj.Pos() > encl.End() {
		return false // parameter of an outer scope or package-level
	}
	// The declaration must sit inside the innermost loop that contains
	// the transfer, so each trip hands off a distinct allocation.
	if loop := innermostLoop(stack); loop != nil && obj.Pos() < loop.Pos() {
		return false
	}
	var body *ast.BlockStmt
	switch e := encl.(type) {
	case *ast.FuncDecl:
		body = e.Body
	case *ast.FuncLit:
		body = e.Body
	}
	if body == nil {
		return false
	}
	if obj.Pos() < body.Pos() {
		return false // parameter or receiver: the caller may retain an alias
	}
	fresh := true
	ast.Inspect(body, func(n ast.Node) bool {
		if !fresh {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				def := pass.TypesInfo.Defs[id]
				if def == nil {
					def = pass.TypesInfo.Uses[id]
				}
				if def == obj && !isAllocExpr(ast.Unparen(n.Rhs[i])) {
					fresh = false
				}
			}
		case *ast.Ident:
			if pass.TypesInfo.Uses[n] == obj && n.Pos() > stmt.End() {
				fresh = false // the sender touches the value after the handoff
			}
		}
		return true
	})
	return fresh
}

// isAllocExpr matches expressions that produce a fresh value: composite
// literals, &composite, make, and new.
func isAllocExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			return id.Name == "make" || id.Name == "new"
		}
	}
	return false
}

// typeMutable reports whether values of t alias mutable state when
// copied across a goroutine boundary. Coordination primitives and
// deeply immutable data are safe; pointers, slices, maps, unknown
// interfaces, and structs containing any of those are not.
func typeMutable(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true

	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if pkg := obj.Pkg(); pkg != nil {
			switch pkg.Path() {
			case "sync", "sync/atomic":
				return false
			case "time":
				return false // time.Time, time.Duration: immutable values
			case "context":
				return false
			}
		}
		return typeMutable(named.Underlying(), seen)
	}
	switch t := t.(type) {
	case *types.Basic:
		return false
	case *types.Chan, *types.Signature:
		return false
	case *types.Pointer:
		if named, ok := t.Elem().(*types.Named); ok {
			if pkg := named.Obj().Pkg(); pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic") {
				return false
			}
		}
		return true
	case *types.Slice, *types.Map:
		return true
	case *types.Interface:
		// context.Context is handled above (named); a bare interface may
		// hold anything.
		return t.NumMethods() > 0 || t.Empty()
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if typeMutable(t.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	case *types.Array:
		return typeMutable(t.Elem(), seen)
	}
	return true
}

// report emits the finding unless a //schedlint:shared directive
// covers the line.
func report(pass *framework.Pass, shared map[int]string, pos token.Pos, format string, args ...any) {
	line := pass.Fset.Position(pos).Line
	if _, ok := shared[line]; ok {
		return
	}
	pass.Reportf(pos, format, args...)
}

// sharedLines collects the //schedlint:shared directives of the
// package: a map from governed line to reason. A directive on a code
// line governs that line; one standing alone governs the line below.
// A directive without a reason is itself reported — an unexplained
// shared-state handoff is exactly what the analyzer exists to prevent.
func sharedLines(pass *framework.Pass) map[int]string {
	out := map[int]string{}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if c.Text != SharedDirective && !strings.HasPrefix(c.Text, SharedDirective+" ") {
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(c.Text, SharedDirective))
				pos := pass.Fset.Position(c.Pos())
				if reason == "" {
					pass.Reportf(c.Pos(), "schedlint:shared needs a reason: the directive documents why the sharing is safe")
					continue
				}
				line := pos.Line
				if standsAlone(pass.Fset, f, line) {
					line++
				}
				out[line] = reason
			}
		}
	}
	return out
}

// standsAlone reports whether no syntax other than comments starts or
// ends on the line (mirroring the framework's allow-directive rule).
func standsAlone(fset *token.FileSet, f *ast.File, line int) bool {
	alone := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !alone {
			return false
		}
		switch n.(type) {
		case *ast.File:
			return true
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		if fset.Position(n.Pos()).Line == line || fset.Position(n.End()).Line == line {
			alone = false
			return false
		}
		return true
	})
	return alone
}

// enclosingFunc returns the innermost function declaration or literal
// on the stack.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// innermostLoop returns the innermost for/range statement inside the
// innermost enclosing function, or nil.
func innermostLoop(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return stack[i]
		case *ast.FuncDecl, *ast.FuncLit:
			return nil
		}
	}
	return nil
}

// typeShort renders a compact type for messages.
func typeShort(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
