// Package ownbare holds a //schedlint:shared directive with no
// reason: the directive itself must be reported and must not suppress
// the sharing finding it fails to explain.
package ownbare

func consume(jobs []int) { _ = jobs }

// Launch shares a retained slice under an unexplained directive.
func Launch(jobs []int) {
	//schedlint:shared
	go consume(jobs)
	jobs[0] = 1
}
