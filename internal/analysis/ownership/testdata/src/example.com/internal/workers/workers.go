// Package workers exercises the goroutine-ownership contract: live
// captures, retained goroutine-call arguments, aliasing channel sends,
// and repeated loop handoffs report; fresh handoffs, coordination
// primitives, immutable data, and annotated sharing stay silent.
package workers

import (
	"context"
	"sync"
)

// Job is a mutable payload handed between goroutines.
type Job struct{ N int }

// result is deeply immutable; any number of goroutines may read it.
type result struct {
	id   int
	cost float64
}

func consume(jobs []int) { _ = jobs }

// CaptureLive captures a slice the launcher keeps using after the
// goroutine starts.
func CaptureLive(n int) int {
	results := make([]int, n)
	go func() { // want "goroutine closure captures results"
		results[0] = 1
	}()
	return results[0]
}

// ArgLive launches a named call whose argument the launcher retains.
func ArgLive(jobs []int) {
	go consume(jobs) // want "goroutine call receives jobs"
	jobs[0] = 9
}

// ParamCapture captures a parameter: its value came from the caller,
// who may keep an alias, so it is never a fresh handoff.
func ParamCapture(j *Job) {
	go func() { // want "goroutine closure captures j"
		j.N++
	}()
}

// LoopHandoff hands the same pre-loop allocation out on every trip.
func LoopHandoff(n int) {
	j := &Job{}
	for i := 0; i < n; i++ {
		go func() { // want "goroutine closure captures j"
			j.N++
		}()
	}
}

// SendAlias keeps writing through the slice it already sent.
func SendAlias(ch chan []int) {
	buf := make([]int, 4)
	ch <- buf // want "channel send of buf"
	buf[0] = 1
}

// FreshGo hands closure-allocated state off and never touches it
// again: the ownership-transfer idiom.
func FreshGo() {
	m := make(map[string]int)
	go func() { m["a"] = 1 }()
}

// FreshSend allocates per loop trip, so each receiver owns its value.
func FreshSend(ch chan *Job, n int) {
	for i := 0; i < n; i++ {
		j := &Job{N: i}
		ch <- j
	}
	ch <- &Job{N: n}
}

// Primitives crosses the boundary with coordination primitives and
// immutable data only.
func Primitives(ctx context.Context, done chan int, stop func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	k := 7
	r := result{id: 1, cost: 2.5}
	go func() {
		defer wg.Done()
		<-ctx.Done()
		stop()
		done <- k
		_ = r
	}()
	wg.Wait()
}

// Annotated shares deliberately and says so on the launching line.
func Annotated(n int) []int {
	cells := make([]int, n)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() { //schedlint:shared cells is index-partitioned per worker; wg.Wait is the barrier
			defer wg.Done()
			cells[0]++
		}()
	}
	wg.Wait()
	return cells
}

// AnnotatedAbove uses the standalone form governing the line below.
func AnnotatedAbove(ch chan []int) {
	buf := make([]int, 2)
	//schedlint:shared the receiver treats the buffer as read-only
	ch <- buf
	buf[0] = 1
}
