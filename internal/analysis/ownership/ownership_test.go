package ownership_test

import (
	"strings"
	"testing"

	"parsched/internal/analysis/analysistest"
	"parsched/internal/analysis/framework"
	"parsched/internal/analysis/load"
	"parsched/internal/analysis/ownership"
)

// TestOwnershipFixtures pins the goroutine-ownership contract: live
// captures, retained call arguments, aliasing sends, and loop handoffs
// of pre-loop allocations report; fresh handoffs, coordination
// primitives, immutable structs, and //schedlint:shared-annotated
// lines stay silent.
func TestOwnershipFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", ownership.Analyzer, "example.com/internal/workers")
}

// TestSharedNeedsReason pins the directive hygiene rule: a bare
// //schedlint:shared is itself a finding and suppresses nothing, so
// the unexplained handoff under it still reports.
func TestSharedNeedsReason(t *testing.T) {
	fl := load.NewFixtureLoader("testdata")
	pkgs, err := fl.LoadAll("example.com/internal/ownbare")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, fset, err := framework.Run(pkgs, []*framework.Analyzer{ownership.Analyzer})
	if err != nil {
		t.Fatalf("running ownership: %v", err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Message)
		_ = fset
	}
	if len(got) != 2 {
		t.Fatalf("want 2 findings (directive hygiene + unsuppressed handoff), got %d: %v", len(got), got)
	}
	if !strings.Contains(got[0], "schedlint:shared needs a reason") && !strings.Contains(got[1], "schedlint:shared needs a reason") {
		t.Errorf("no finding mentions the missing reason: %v", got)
	}
	found := false
	for _, g := range got {
		if strings.Contains(g, "goroutine call receives jobs") {
			found = true
		}
	}
	if !found {
		t.Errorf("bare directive must not suppress the handoff finding: %v", got)
	}
}
