package registry_test

import (
	"testing"

	"parsched/internal/analysis/analysistest"
	"parsched/internal/analysis/registry"
)

func TestRegistry(t *testing.T) {
	analysistest.Run(t, "testdata", registry.Analyzer, "example.com/internal/sched")
}
