// Package registry enforces the scheduler registry's self-registration
// contract in internal/sched.
//
// PR 4 made the registry the single source of truth: every listing,
// usage text, and error message derives from what constructor files
// Register from their init functions, so the catalogue cannot drift
// from what Build constructs. That only holds if the registrations
// themselves follow the rules this analyzer checks:
//
//   - Register must be called from an init function, so the registry
//     is complete before any Parse/Build runs;
//   - a Family literal's Name must be a literal string that satisfies
//     the spec grammar's token rules, so the registered name is
//     statically known to round-trip sched.Parse;
//   - a file that defines a scheduler family constructor (a top-level
//     NewXxx returning a Scheduler, not a decorator consuming one)
//     must self-register a family in an init in that same file.
//
// The file declaring Register itself (the registry infrastructure) is
// exempt from the constructor rule.
package registry

import (
	"go/ast"
	"go/types"
	"strings"

	"parsched/internal/analysis/framework"
)

// Analyzer is the registry self-registration check.
var Analyzer = &framework.Analyzer{
	Name: "registry",
	Doc: "scheduler families must self-register from init with literal, " +
		"Parse-compatible names",
	Run: run,
}

func run(pass *framework.Pass) error {
	if !framework.PathMatches(pass.Path, "internal/sched") {
		return nil
	}
	// The Scheduler interface anchors constructor detection; without
	// it (e.g. a support file set) there is nothing to check.
	var schedIface *types.Interface
	if obj, ok := pass.Pkg.Scope().Lookup("Scheduler").(*types.TypeName); ok {
		schedIface, _ = obj.Type().Underlying().(*types.Interface)
	}
	for _, f := range pass.Files {
		checkFile(pass, f, schedIface)
	}
	return nil
}

func checkFile(pass *framework.Pass, f *ast.File, schedIface *types.Interface) {
	registersInInit := false
	infraFile := false // the file declaring Register itself
	var constructors []*ast.FuncDecl

	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if fd.Name.Name == "Register" && fd.Recv == nil {
			infraFile = true
		}
		isInit := fd.Name.Name == "init" && fd.Recv == nil
		// Find Register calls and Family literals inside this function.
		ast.Inspect(fd, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "Register" {
					if fn, ok := pass.TypesInfo.Uses[id].(*types.Func); ok && fn.Pkg() == pass.Pkg {
						if isInit {
							registersInInit = true
						} else {
							pass.Reportf(n.Pos(),
								"Register called outside init: the registry must be complete before any Parse/Build runs")
						}
					}
				}
			case *ast.CompositeLit:
				checkFamilyLit(pass, n)
			}
			return true
		})
		if fd.Recv == nil && strings.HasPrefix(fd.Name.Name, "New") &&
			isFamilyConstructor(pass, fd, schedIface) {
			constructors = append(constructors, fd)
		}
	}

	if infraFile || registersInInit {
		return
	}
	for _, fd := range constructors {
		pass.Reportf(fd.Pos(),
			"file defines scheduler constructor %s but no init here registers a family; "+
				"self-register (or annotate //schedlint:allow registry <reason> for decorators)",
			fd.Name.Name)
	}
}

// checkFamilyLit validates the Name field of a sched.Family composite
// literal: it must be a literal string that the spec grammar accepts,
// so the registered name round-trips sched.Parse by construction.
func checkFamilyLit(pass *framework.Pass, lit *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(lit)
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Family" || named.Obj().Pkg() != pass.Pkg {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Name" {
			continue
		}
		tv, ok := pass.TypesInfo.Types[kv.Value]
		if !ok || tv.Value == nil {
			pass.Reportf(kv.Value.Pos(),
				"family Name must be a constant string so schedlint can verify it round-trips sched.Parse")
			return
		}
		name := strings.Trim(tv.Value.String(), `"`)
		if !parseToken(name) {
			pass.Reportf(kv.Value.Pos(),
				"family name %q does not satisfy the spec grammar (lowercase letters, digits, '.', '_', '-'); it cannot round-trip sched.Parse", name)
		}
		return
	}
}

// parseToken mirrors the spec grammar's family-name rule: non-empty,
// lowercase letters and digits plus '.', '_', '-'. ('+' is legal in
// legacy aliases but not in family names: Parse canonicalizes specs
// through Family(...) rendering, and a '+' would re-parse as an
// alias.)
func parseToken(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
		case r == '.' || r == '_' || r == '-':
		default:
			return false
		}
	}
	return true
}

// isFamilyConstructor reports whether fd is a scheduler family
// constructor: no parameter implements Scheduler (those are
// decorators) and the first result does.
func isFamilyConstructor(pass *framework.Pass, fd *ast.FuncDecl, iface *types.Interface) bool {
	if iface == nil || fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
		return false
	}
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if implementsScheduler(sig.Params().At(i).Type(), iface) {
			return false // consumes a Scheduler: a decorator, exempt
		}
	}
	if sig.Results().Len() == 0 {
		return false
	}
	return implementsScheduler(sig.Results().At(0).Type(), iface)
}

func implementsScheduler(t types.Type, iface *types.Interface) bool {
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}
