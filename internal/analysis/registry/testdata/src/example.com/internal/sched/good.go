package sched

// fcfs is a well-behaved family: its constructor file registers it
// from init with a literal, grammar-clean name. Nothing here is
// flagged.
type fcfs struct{}

// Name implements Scheduler.
func (f *fcfs) Name() string { return "fcfs" }

// NewFCFS constructs the family; the init below registers it.
func NewFCFS() *fcfs { return &fcfs{} }

func init() {
	Register(Family{Name: "fcfs", Doc: "first-come first-served",
		New: func() Scheduler { return NewFCFS() }})
}
