package sched

// filter decorates another scheduler. Constructors that consume a
// Scheduler are decorators, exempt from the self-registration rule by
// construction: not flagged.
type filter struct{ inner Scheduler }

// Name implements Scheduler.
func (f *filter) Name() string { return f.inner.Name() }

// NewFilter wraps inner.
func NewFilter(inner Scheduler) *filter { return &filter{inner: inner} }
