package sched

// greedy exercises the misuse cases: Register outside init, a name the
// spec grammar rejects, and a non-constant name.
type greedy struct{}

// Name implements Scheduler.
func (g *greedy) Name() string { return "greedy" }

var badName = "greedy"

func setup() {
	Register(Family{Name: "Greedy+Bad"}) // want "outside init" "does not satisfy the spec grammar"
}

func init() {
	_ = setup
	Register(Family{Name: badName}) // want "must be a constant string"
}
