// Package sched is the registry fixture: a miniature of the real
// scheduler registry (Family, Scheduler, Register) plus well-behaved,
// misbehaving, and suppressed constructor files.
//
// This file declares Register, which exempts it from the
// constructor-must-self-register rule (it is the infrastructure).
package sched

// Scheduler is the minimal scheduling interface.
type Scheduler interface {
	Name() string
}

// Family describes one scheduler family.
type Family struct {
	Name string
	Doc  string
	New  func() Scheduler
}

var families = map[string]Family{}

// Register records a family in the catalogue.
func Register(f Family) { families[f.Name] = f }
