package sched

// orphan implements Scheduler but its constructor file never
// registers a family: the drift the analyzer exists to catch.
type orphan struct{}

// Name implements Scheduler.
func (o *orphan) Name() string { return "orphan" }

// NewOrphan constructs the family but nothing registers it.
func NewOrphan() *orphan { return &orphan{} } // want "no init here registers"
