package sched

// mold is a shared decorator configuration whose alias is registered
// elsewhere; the directive suppresses the constructor finding.
type mold struct{}

// Name implements Scheduler.
func (m *mold) Name() string { return "mold" }

//schedlint:allow registry fixture: shared configuration, alias registered elsewhere
func NewMold() *mold { return &mold{} }
