package escape_test

import (
	"path/filepath"
	"testing"

	"parsched/internal/analysis/analysistest"
	"parsched/internal/analysis/escape"
	"parsched/internal/analysis/framework"
	"parsched/internal/analysis/load"
)

// TestEscapeFixtures pins the finding surface: escapes and inlining
// losses in hot-path-reachable functions are reported, cold code and
// allow-sanctioned lines are not.
func TestEscapeFixtures(t *testing.T) {
	escape.ResetCollection()
	escape.BaselinePath = ""
	analysistest.Run(t, "testdata", escape.Analyzer, "example.com/internal/hot")
}

// TestBaselineRatchet pins the sanction/ratchet cycle on the base
// fixture: findings without a baseline, silence once sanctioned, and a
// stale report once the baseline over-sanctions.
func TestBaselineRatchet(t *testing.T) {
	fl := load.NewFixtureLoader("testdata")
	pkg, err := fl.Load("example.com/internal/base")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("fixture type error: %v", terr)
	}
	pkgs := []*load.Package{pkg}
	analyzers := []*framework.Analyzer{escape.Analyzer}

	path := filepath.Join(t.TempDir(), "ESCAPES.baseline")
	escape.BaselinePath = path
	defer func() { escape.BaselinePath = "" }()

	// Round 1: the baseline file does not exist yet — every hot escape
	// is a finding and lands in the collected set.
	escape.ResetCollection()
	diags, _, err := framework.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("round 1: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("round 1: %d findings, want 2 (moved + escapes for x): %v", len(diags), diags)
	}
	collected := escape.Collected()
	if len(collected) != 2 {
		t.Fatalf("round 1: Collected() = %v, want 2 keys", collected)
	}
	for _, k := range collected {
		if k.Pkg != "example.com/internal/base" || k.Func != "Sanctioned" {
			t.Errorf("round 1: unexpected key %+v", k)
		}
	}

	// Sanction: -update-baseline writes the collected set.
	if err := escape.WriteBaseline(path, collected); err != nil {
		t.Fatalf("writing baseline: %v", err)
	}

	// Round 2: clean tree — findings matched by the baseline are
	// silent, and nothing is stale.
	escape.ResetCollection()
	diags, _, err = framework.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("round 2: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("round 2: %d findings, want 0 (all sanctioned): %v", len(diags), diags)
	}
	if stale := escape.Stale(); len(stale) != 0 {
		t.Fatalf("round 2: Stale() = %v, want none", stale)
	}

	// Round 3: the baseline sanctions an escape that no longer exists —
	// it shows up as stale so -update-baseline can shrink it away.
	gone := escape.Key{Pkg: "example.com/internal/base", Func: "Gone", Reason: "moved to heap: y"}
	if err := escape.WriteBaseline(path, append(collected, gone)); err != nil {
		t.Fatalf("rewriting baseline: %v", err)
	}
	escape.ResetCollection()
	diags, _, err = framework.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("round 3: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("round 3: %d findings, want 0: %v", len(diags), diags)
	}
	stale := escape.Stale()
	if len(stale) != 1 || stale[0] != gone {
		t.Fatalf("round 3: Stale() = %v, want exactly %+v", stale, gone)
	}
}
