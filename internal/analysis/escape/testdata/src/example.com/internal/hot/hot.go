// Package hot is the escape-analyzer fixture: an annotated root whose
// reachable helpers leak a pointer and allocate a closure (reported), a
// cold function with the same escape (ignored), a go:noinline root
// (reported as an inlining loss), and a sanctioned escape behind an
// allow directive (suppressed).
package hot

// Hot is the annotated root.
//
//schedlint:hotpath
func Hot(n int) int { // want "cannot inline: function too complex"
	p := leakPtr(n)
	c := counter()
	return *p + c()
}

func leakPtr(n int) *int {
	x := n // want "moved to heap: x" "escapes to heap: x"
	return &x
}

func counter() func() int {
	n := 0                              // want "moved to heap: n" "escapes to heap: n"
	return func() int { n++; return n } // want "escapes to heap: func literal"
}

//go:noinline
//schedlint:hotpath
func Pinned(n int) int { return n + 1 } // want "cannot inline: marked go:noinline"

// Exempt carries a line-local sanction: same escape as leakPtr, no
// finding.
//
//schedlint:hotpath
func Exempt(n int) *int {
	x := n //schedlint:allow escape benchmarked, single allocation per call is sanctioned
	return &x
}

// Cold has the same escape as leakPtr but is unreachable from any
// hot-path root, so the analyzer says nothing about it.
func Cold(n int) *int {
	x := n
	return &x
}
