// Package base is the baseline-ratchet fixture: one hot escape whose
// findings the test sanctions by writing a baseline, then ratchets.
package base

// Sanctioned is the annotated root with one leaking local.
//
//schedlint:hotpath
func Sanctioned(n int) *int {
	x := n
	return &x
}
