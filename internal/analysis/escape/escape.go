// Package escape turns the compiler's own escape analysis into a
// machine-checked performance contract. For every package containing a
// //schedlint:hotpath root it runs `go build -gcflags=-m=2`, parses the
// escape and inlining diagnostics, and reports every heap escape,
// closure allocation, and inlining loss attributed to a hot-path-
// reachable function (per the callgraph package's reachability pass).
//
// The repository's allocation victories — the 0 allocs/event DES
// engine, the ~9 allocs/job streaming replay — are invisible to the
// type system: one innocent closure capture or interface boxing
// silently reverts them, and the benchmark gate only notices after the
// fact, noisily, on one machine. The compiler knows at build time;
// this analyzer makes it say so in review.
//
// Ratchet semantics: the committed ESCAPES.baseline snapshot sanctions
// the current, benchmarked set of escapes under stable keys
// (package, function, normalized reason — no line numbers, no costs),
// so the tree is clean today, a *new* escape in hot code fails CI, and
// a removed one shows up as a stale entry that
// `schedlint -update-baseline` shrinks away. Line-local, temporary
// exemptions can use //schedlint:allow escape <reason> instead; the
// baseline is the canonical store for sanctioned escapes.
package escape

import (
	"bufio"
	"bytes"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"parsched/internal/analysis/callgraph"
	"parsched/internal/analysis/framework"
)

// Analyzer is the escape-diagnostics check.
var Analyzer = &framework.Analyzer{
	Name: "escape",
	Doc: "forbid unsanctioned heap escapes, closure allocations, and inlining " +
		"losses in //schedlint:hotpath-reachable code (compiler -m diagnostics vs ESCAPES.baseline)",
	Run: run,
}

// BaselinePath names the sanctioned-escapes snapshot. Empty disables
// baseline filtering (every hot-path diagnostic is reported), which is
// what the fixture tests use. cmd/schedlint points it at the module's
// committed ESCAPES.baseline.
var BaselinePath string

// Key identifies one sanctioned escape independent of line numbers:
// the same function re-ordered or re-indented keeps its key, a new
// escape in it does not.
type Key struct {
	Pkg    string
	Func   string
	Reason string
}

// collection accumulates the raw (pre-baseline) findings and baseline
// matches of the current process, for -update-baseline and stale-entry
// reporting. The framework driver is single-threaded.
var (
	collected    []Key
	collectedSet map[Key]bool
	analyzed     map[string]bool
	matchedKeys  map[Key]bool
)

// ResetCollection clears the accumulated findings (tests).
func ResetCollection() {
	collected, collectedSet, analyzed, matchedKeys = nil, nil, nil, nil
}

// Collected returns every raw hot-path escape key seen by the analyzer
// in this process, sorted — the content -update-baseline writes.
func Collected() []Key {
	out := append([]Key(nil), collected...)
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// Stale returns the baseline entries that belong to packages this
// process analyzed but that no current finding matched: escapes that
// were fixed and can be ratcheted out with -update-baseline.
func Stale() []Key {
	if BaselinePath == "" {
		return nil
	}
	base, err := ReadBaseline(BaselinePath)
	if err != nil {
		return nil
	}
	var out []Key
	for _, k := range base {
		if analyzed[k.Pkg] && !matchedKeys[k] {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// MergedBaseline returns what an -update-baseline run should write:
// the current findings for every package this process analyzed, plus
// the existing baseline's entries for packages outside the run's scope
// (a partial `schedlint ./internal/sim` must not drop the rest of the
// tree's sanctions).
func MergedBaseline() []Key {
	out := append([]Key(nil), collected...)
	if BaselinePath != "" {
		if base, err := ReadBaseline(BaselinePath); err == nil {
			for _, k := range base {
				if !analyzed[k.Pkg] {
					out = append(out, k)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

func (k Key) less(o Key) bool {
	if k.Pkg != o.Pkg {
		return k.Pkg < o.Pkg
	}
	if k.Func != o.Func {
		return k.Func < o.Func
	}
	return k.Reason < o.Reason
}

// ReadBaseline parses a baseline file: one tab-separated
// pkg/func/reason triple per line, '#' comments and blanks ignored.
func ReadBaseline(path string) ([]Key, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var keys []Key
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("escape baseline %s: malformed line %q (want pkg<TAB>func<TAB>reason)", path, line)
		}
		keys = append(keys, Key{Pkg: parts[0], Func: parts[1], Reason: parts[2]})
	}
	return keys, sc.Err()
}

// WriteBaseline writes keys as a baseline file, sorted and
// deduplicated, with a header documenting the ratchet.
func WriteBaseline(path string, keys []Key) error {
	sorted := append([]Key(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].less(sorted[j]) })
	var b strings.Builder
	b.WriteString("# ESCAPES.baseline — sanctioned compiler escape/inline diagnostics in\n")
	b.WriteString("# //schedlint:hotpath-reachable code. One tab-separated entry per line:\n")
	b.WriteString("#   package<TAB>function<TAB>normalized reason\n")
	b.WriteString("# Keys carry no line numbers or costs, so they survive refactors that\n")
	b.WriteString("# do not change the escape itself. Regenerate with:\n")
	b.WriteString("#   go run ./cmd/schedlint -update-baseline ./...\n")
	b.WriteString("# New entries appearing in a diff are new heap work on a hot path —\n")
	b.WriteString("# review them against a benchmark, do not wave them through.\n")
	var prev Key
	for i, k := range sorted {
		if i > 0 && k == prev {
			continue
		}
		prev = k
		fmt.Fprintf(&b, "%s\t%s\t%s\n", k.Pkg, k.Func, k.Reason)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func record(k Key) {
	if collectedSet == nil {
		collectedSet = map[Key]bool{}
	}
	if !collectedSet[k] {
		collectedSet[k] = true
		collected = append(collected, k)
	}
}

// diag is one parsed top-level compiler diagnostic.
type diag struct {
	file   string
	line   int
	col    int
	reason string // normalized
}

var posRE = regexp.MustCompile(`^(.*\.go):(\d+):(\d+): (.*)$`)
var digitsRE = regexp.MustCompile(`[0-9]+`)

const subjectMax = 48

// normalize classifies one compiler message into a stable finding
// reason, or "" for messages the contract does not cover (negative
// results, inlining successes, parameter leaks).
func normalize(msg string) string {
	switch {
	case strings.HasPrefix(msg, "moved to heap: "):
		return "moved to heap: " + clampSubject(strings.TrimPrefix(msg, "moved to heap: "))
	case strings.HasPrefix(msg, "cannot inline "):
		rest := strings.TrimPrefix(msg, "cannot inline ")
		// Drop the function name (the key's Func field carries the
		// attribution) and scrub costs/budgets, which move across
		// compiler versions.
		if i := strings.Index(rest, ": "); i >= 0 {
			rest = rest[i+2:]
		}
		return "cannot inline: " + digitsRE.ReplaceAllString(rest, "N")
	}
	// "<subject> escapes to heap" (with a trailing colon under -m=2,
	// where the flow trace follows). Exclude the negatives.
	trimmed := strings.TrimSuffix(msg, ":")
	if strings.HasSuffix(trimmed, " escapes to heap") && !strings.Contains(trimmed, "does not escape") {
		subject := strings.TrimSuffix(trimmed, " escapes to heap")
		return "escapes to heap: " + clampSubject(subject)
	}
	return ""
}

// clampSubject bounds a diagnostic subject (which can embed whole
// expressions) so baseline keys stay short and stable, and keeps them
// tab-free to preserve the file format.
func clampSubject(s string) string {
	s = strings.ReplaceAll(s, "\t", " ")
	if len(s) > subjectMax {
		s = s[:subjectMax] + "..."
	}
	return s
}

// compile runs the compiler over the package rooted at dir and returns
// its parsed -m=2 diagnostics. The package must sit inside some module
// (the repository's own, or a fixture module committed under
// testdata/src); go's build cache replays diagnostics on repeat runs,
// so warm runs cost a cache lookup, not a compile.
func compile(dir string, isMain bool) ([]diag, error) {
	args := []string{"build", "-gcflags=-m=2"}
	if isMain {
		// A main package would drop its binary into the source tree.
		out := filepath.Join(os.TempDir(), fmt.Sprintf("schedlint-escape-%d", os.Getpid()))
		defer os.Remove(out)
		args = append(args, "-o", out)
	}
	args = append(args, ".")
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0", "GOFLAGS=-mod=mod")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m=2 in %s: %v: %s", dir, err, stderr.String())
	}
	var out []diag
	sc := bufio.NewScanner(&stderr)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		m := posRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue // "# pkg" banners and malformed lines
		}
		msg := m[4]
		if strings.HasPrefix(msg, " ") {
			continue // -m=2 flow-trace continuation, indented after the position
		}
		reason := normalize(msg)
		if reason == "" {
			continue
		}
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		out = append(out, diag{file: m[1], line: line, col: col, reason: reason})
	}
	return out, sc.Err()
}

func run(pass *framework.Pass) error {
	g := callgraph.Of(pass)
	if !g.HasHot() {
		return nil // cold package: no contract, no compile
	}
	if analyzed == nil {
		analyzed = map[string]bool{}
	}
	analyzed[pass.Path] = true

	diags, err := compile(pass.Dir, pass.Pkg != nil && pass.Pkg.Name() == "main")
	if err != nil {
		return err
	}

	// The compiler may print positions absolute, module-relative, or
	// ./-relative depending on how the cached compile was first invoked;
	// within one package basenames are unique, so resolve through them.
	// Absolute paths outside the package directory (generic shape
	// instantiations reported against library sources) are discarded.
	fileByBase := map[string]*token.File{}
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf != nil {
			fileByBase[filepath.Base(tf.Name())] = tf
		}
	}

	var baseline map[Key]bool
	if BaselinePath != "" {
		keys, err := ReadBaseline(BaselinePath)
		if err != nil && !os.IsNotExist(err) {
			return err
		}
		baseline = map[Key]bool{}
		for _, k := range keys {
			baseline[k] = true
		}
	}
	if matchedKeys == nil {
		matchedKeys = map[Key]bool{}
	}

	// -m=2 can state the same fact twice (once bare, once introducing
	// its flow trace); report each (position, reason) once.
	type site struct {
		pos    token.Pos
		reason string
	}
	seen := map[site]bool{}

	for _, d := range diags {
		if filepath.IsAbs(d.file) && filepath.Dir(filepath.Clean(d.file)) != filepath.Clean(pass.Dir) {
			continue
		}
		tf, ok := fileByBase[filepath.Base(d.file)]
		if !ok || d.line < 1 || d.line > tf.LineCount() {
			continue
		}
		pos := tf.LineStart(d.line) + token.Pos(d.col-1)
		if seen[site{pos, d.reason}] {
			continue
		}
		seen[site{pos, d.reason}] = true
		n := g.Enclosing(pos)
		if n == nil || !n.Hot {
			continue
		}
		key := Key{Pkg: pass.Path, Func: n.Name(), Reason: d.reason}
		record(key)
		if baseline != nil && baseline[key] {
			matchedKeys[key] = true
			continue
		}
		pass.Reportf(pos, "%s in hot path (via %s); benchmark it, then sanction with -update-baseline or //schedlint:allow escape <reason>",
			d.reason, n.Via)
	}
	return nil
}
