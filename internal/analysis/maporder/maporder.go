// Package maporder flags map iterations whose nondeterministic order
// can leak into rendered output or ordered data.
//
// Go randomizes map iteration order on purpose, so a `for range` over
// a map that appends to a slice, prints, writes, or sends on a channel
// produces a different sequence on every run. In this repository that
// is not a cosmetic problem: scheduler decision paths and every
// rendered table feed committed goldens and byte-identity tests. The
// fix is the sorted-keys idiom — collect the keys, sort them, range
// over the sorted slice — which the analyzer recognizes and does not
// flag: an append of the keys (or values) is sanctioned when the
// enclosing function later passes the accumulated slice to a
// sort/slices call.
//
// Order-independent uses of map ranges (counting, summing, building
// another map) are not flagged.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"parsched/internal/analysis/framework"
)

// Analyzer is the map-iteration-order check.
var Analyzer = &framework.Analyzer{
	Name: "maporder",
	Doc: "flag map ranges that feed ordered sinks (appends, writers, channel sends) " +
		"without the sorted-keys idiom",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		// Track the enclosing function body so the sorted-later idiom
		// can be recognized.
		var funcBodies []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case nil:
				return false
			case *ast.FuncDecl:
				if n.Body != nil {
					funcBodies = append(funcBodies, n.Body)
				}
			case *ast.FuncLit:
				funcBodies = append(funcBodies, n.Body)
			case *ast.RangeStmt:
				t := pass.TypesInfo.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				var encl *ast.BlockStmt
				for i := len(funcBodies) - 1; i >= 0; i-- {
					if funcBodies[i].Pos() <= n.Pos() && n.End() <= funcBodies[i].End() {
						encl = funcBodies[i]
						break
					}
				}
				checkMapRange(pass, n, encl)
			}
			return true
		})
	}
	return nil
}

// checkMapRange inspects one map range for ordered sinks.
func checkMapRange(pass *framework.Pass, rng *ast.RangeStmt, encl *ast.BlockStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside map iteration: receive order depends on map order; iterate sorted keys")
		case *ast.CallExpr:
			checkCall(pass, n, rng, encl)
		}
		return true
	})
}

func checkCall(pass *framework.Pass, call *ast.CallExpr, rng *ast.RangeStmt, encl *ast.BlockStmt) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok && b.Name() == "append" {
			checkAppend(pass, call, rng, encl)
		}
	case *ast.SelectorExpr:
		obj := pass.TypesInfo.Uses[fun.Sel]
		fn, ok := obj.(*types.Func)
		if !ok {
			return
		}
		if fn.Pkg() != nil && fn.Type().(*types.Signature).Recv() == nil {
			switch fn.Pkg().Path() {
			case "fmt":
				name := fn.Name()
				if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") {
					pass.Reportf(call.Pos(), "fmt.%s inside map iteration renders in nondeterministic order; iterate sorted keys", name)
				}
			case "io":
				if fn.Name() == "WriteString" {
					pass.Reportf(call.Pos(), "io.WriteString inside map iteration writes in nondeterministic order; iterate sorted keys")
				}
			}
			return
		}
		// Method calls that emit bytes in order: Write, WriteString,
		// WriteByte, WriteRune on any receiver (io.Writer,
		// strings.Builder, bufio.Writer, ...).
		if fn.Type().(*types.Signature).Recv() != nil {
			switch fn.Name() {
			case "Write", "WriteString", "WriteByte", "WriteRune":
				pass.Reportf(call.Pos(), "%s call inside map iteration writes in nondeterministic order; iterate sorted keys", fn.Name())
			}
		}
	}
}

// checkAppend flags appends inside a map range, except the two
// order-safe shapes: appending into a map element (m[k] = append(m[k],
// ...) — the destination is itself unordered) and the sorted-keys
// idiom (the accumulated slice is passed to sort/slices later in the
// enclosing function).
func checkAppend(pass *framework.Pass, call *ast.CallExpr, rng *ast.RangeStmt, encl *ast.BlockStmt) {
	var target ast.Expr
	mapInsert := false
	if encl != nil {
		// Find the assignment this append feeds, if any.
		done := false
		ast.Inspect(encl, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || done || len(as.Rhs) != 1 || as.Rhs[0] != call {
				return !done
			}
			done = true
			switch lhs := as.Lhs[0].(type) {
			case *ast.Ident, *ast.SelectorExpr:
				target = lhs
			case *ast.IndexExpr:
				if bt := pass.TypesInfo.TypeOf(lhs.X); bt != nil {
					if _, isMap := bt.Underlying().(*types.Map); isMap {
						// m[k] = append(m[k], ...): the destination is
						// itself unordered, so the append is order-free.
						mapInsert = true
					}
				}
			}
			return false
		})
	}
	if mapInsert {
		return
	}
	if target != nil && sortedLater(pass, encl, target, rng.End()) {
		return
	}
	pass.Reportf(call.Pos(),
		"append inside map iteration accumulates in nondeterministic order; sort the result or iterate sorted keys")
}

// sortedLater reports whether the enclosing function passes the
// accumulated slice to a sorting routine after the range loop ends —
// the tail half of the sorted-keys idiom. A sorting routine is any
// function of package sort or slices, or a helper whose name starts
// with "sort"/"Sort" (the repository's local sortIDs/sortStrings
// helpers).
func sortedLater(pass *framework.Pass, encl *ast.BlockStmt, target ast.Expr, after token.Pos) bool {
	if encl == nil {
		return false
	}
	targetStr := types.ExprString(target)
	sorted := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after || !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if e, ok := an.(ast.Expr); ok && types.ExprString(e) == targetStr {
					sorted = true
				}
				return !sorted
			})
			if sorted {
				break
			}
		}
		return !sorted
	})
	return sorted
}

// isSortCall recognizes sorting routines: package sort/slices
// functions and local sort* helpers.
func isSortCall(pass *framework.Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		if p := fn.Pkg().Path(); p == "sort" || p == "slices" {
			return true
		}
		return strings.HasPrefix(fun.Sel.Name, "Sort") || strings.HasPrefix(fun.Sel.Name, "sort")
	case *ast.Ident:
		return strings.HasPrefix(fun.Name, "sort") || strings.HasPrefix(fun.Name, "Sort")
	}
	return false
}
