// Package mapout is a maporder fixture: map ranges feeding ordered
// sinks are flagged; the sorted-keys idiom, map-to-map accumulation,
// and order-independent reductions are not.
package mapout

import (
	"fmt"
	"sort"
	"strings"
)

func printUnsorted(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt.Println inside map iteration"
	}
}

func appendUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append inside map iteration"
	}
	return out
}

func sendUnsorted(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want "channel send inside map iteration"
	}
}

func writeUnsorted(m map[string]int, sb *strings.Builder) {
	for k := range m {
		sb.WriteString(k) // want "WriteString call inside map iteration"
	}
}

// sortedKeys is the sanctioned idiom: the accumulated slice is sorted
// after the loop, so the append is order-free.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// invert appends into map elements: the destination is itself
// unordered, so nothing leaks.
func invert(m map[string]int) map[int][]string {
	inv := map[int][]string{}
	for k, v := range m {
		inv[v] = append(inv[v], k)
	}
	return inv
}

// total is an order-independent reduction: not flagged.
func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func printAllowed(m map[string]int) {
	for k := range m {
		fmt.Println(k) //schedlint:allow maporder fixture: order-insensitive debug dump
	}
}
