package maporder_test

import (
	"testing"

	"parsched/internal/analysis/analysistest"
	"parsched/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "example.com/mapout")
}
