// Package lockhot is the locks fixture: every blocking construct once
// in hot code, the same constructs unflagged in cold code, select comm
// operations folded into the select finding, and one sanctioned line.
package lockhot

import "sync"

const debug = false

// Hot is the annotated root.
//
//schedlint:hotpath
func Hot(mu *sync.Mutex, ch chan int, wg *sync.WaitGroup, once *sync.Once) int {
	mu.Lock()          // want "sync\.Mutex\.Lock acquisition in hot path"
	defer mu.Unlock()  // releases: no finding
	once.Do(func() {}) // want "sync\.Once\.Do acquisition in hot path"
	wg.Wait()          // want "sync\.WaitGroup\.Wait acquisition in hot path"
	ch <- 1            // want "channel send can block"
	v := <-ch          // want "channel receive can block"
	for range ch {     // want "range over channel blocks"
		v++
	}
	select { // want "select without default blocks"
	case w := <-ch: // comm op of the select: no separate finding
		v += w
	case ch <- v: // comm op of the select: no separate finding
	}
	select { // non-blocking: no finding
	case w := <-ch: // comm op of the select: no separate finding
		v += w
	default:
	}
	go spawned() // want "goroutine launch in hot path"
	if debug {
		mu.Lock() // constant-false branch: no finding
	}
	res := <-ch //schedlint:allow locks result is ready by construction, measured no stalls
	return v + res
}

func spawned() {}

// Cold blocks freely: nothing hot reaches it.
func Cold(mu *sync.Mutex, ch chan int) int {
	mu.Lock()
	defer mu.Unlock()
	ch <- 1
	return <-ch
}
