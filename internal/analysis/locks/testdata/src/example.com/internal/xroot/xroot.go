// Package xroot is the hot root of the cross-package locks fixture:
// its kernel carries heat into package xleaf through a static call and
// an interface dispatch only the whole-program graph can resolve.
package xroot

import (
	"sync"

	"example.com/internal/xleaf"
)

// ticker is satisfied by xleaf.Clock; the concrete type is known only
// program-wide.
type ticker interface{ Tick(int) int }

// Kernel is the annotated root.
//
//schedlint:hotpath
func Kernel(mu *sync.Mutex, n int) int {
	var t ticker = xleaf.NewClock()
	return xleaf.Spin(mu, n) + t.Tick(n)
}
