// Package xleaf declares no hotpath root of its own: every finding
// below exists only because the whole-program graph carries heat
// across the package boundary from xroot.Kernel, and the Via chain
// must say so.
package xleaf

import "sync"

// Spin is reached by a static cross-package call from the root.
func Spin(mu *sync.Mutex, n int) int {
	mu.Lock() // want "sync\.Mutex\.Lock acquisition in hot path \(via xroot\.Kernel\)"
	mu.Unlock()
	return n
}

// Clock implements xroot.ticker.
type Clock struct{ ch chan int }

// NewClock builds the dispatch target the root binds to its
// interface.
func NewClock() *Clock { return &Clock{ch: make(chan int, 1)} }

// Tick is reached only through the interface dispatch in xroot.Kernel.
func (c *Clock) Tick(n int) int {
	c.ch <- n     // want "channel send can block the hot path \(via xroot\.Kernel\)"
	return <-c.ch // want "channel receive can block the hot path \(via xroot\.Kernel\)"
}
