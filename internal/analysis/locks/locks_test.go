package locks_test

import (
	"testing"

	"parsched/internal/analysis/analysistest"
	"parsched/internal/analysis/locks"
)

// TestLocksFixtures pins the blocking contract: sync acquisitions,
// channel operations, blocking selects, and goroutine launches report
// in hot code; cold code, select comm clauses, releases, constant-false
// branches, and allow-sanctioned lines stay silent.
func TestLocksFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", locks.Analyzer, "example.com/internal/lockhot")
}
