package locks_test

import (
	"testing"

	"parsched/internal/analysis/analysistest"
	"parsched/internal/analysis/locks"
)

// TestLocksFixtures pins the blocking contract: sync acquisitions,
// channel operations, blocking selects, and goroutine launches report
// in hot code; cold code, select comm clauses, releases, constant-false
// branches, and allow-sanctioned lines stay silent.
func TestLocksFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", locks.Analyzer, "example.com/internal/lockhot")
}

// TestLocksCrossPackage pins whole-program heat: a hotpath root in
// xroot makes xleaf's blocking constructs findings — through a static
// cross-package call and through an interface dispatch — and the Via
// chain names the cross-package root.
func TestLocksCrossPackage(t *testing.T) {
	analysistest.Run(t, "testdata", locks.Analyzer,
		"example.com/internal/xroot", "example.com/internal/xleaf")
}
