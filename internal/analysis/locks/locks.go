// Package locks guards the hot path against blocking and
// synchronization: sync acquisitions (Mutex/RWMutex Lock, Once.Do,
// WaitGroup.Wait, Cond.Wait), channel sends, receives and ranges,
// selects without a default clause, and goroutine launches inside
// //schedlint:hotpath-reachable functions.
//
// The simulation kernels are single-threaded by construction — the DES
// engine dispatches events in virtual-time order and the schedulers it
// drives share no state across instances — so any synchronization
// reachable from a hot root is either dead weight (an uncontended
// atomic still costs a bus transaction per event) or, worse, an actual
// cross-goroutine dependency that can stall the event loop. Blocking
// belongs at the boundary: the trace reader feeding the replay, the
// experiment runner fanning instances out. Sanction deliberate
// exceptions with //schedlint:allow locks <reason>.
package locks

import (
	"go/ast"
	"go/token"
	"go/types"

	"parsched/internal/analysis/callgraph"
	"parsched/internal/analysis/framework"
)

// Analyzer is the hot-path blocking check.
var Analyzer = &framework.Analyzer{
	Name: "locks",
	Doc: "forbid sync acquisitions, blocking channel operations, and goroutine " +
		"launches in //schedlint:hotpath-reachable code",
	Run: run,
}

// blockingSyncMethods names the sync methods that acquire or wait.
var blockingSyncMethods = map[string]bool{
	"Lock":  true, // Mutex, RWMutex
	"RLock": true, // RWMutex
	"Wait":  true, // WaitGroup, Cond
	"Do":    true, // Once
}

func run(pass *framework.Pass) error {
	g := callgraph.Of(pass)
	if !g.HasHot() {
		return nil
	}
	info := pass.TypesInfo
	for _, n := range g.Nodes() {
		if !n.Hot || n.Decl.Body == nil {
			continue
		}
		via := n.Via
		// Send/receive operations that are a select clause's comm
		// statement are governed by the select finding, not their own.
		comm := map[ast.Node]bool{}
		callgraph.WalkLive(info, n.Decl.Body, func(node ast.Node) {
			sel, ok := node.(*ast.SelectStmt)
			if !ok {
				return
			}
			for _, clause := range sel.Body.List {
				cc, ok := clause.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				switch c := cc.Comm.(type) {
				case *ast.SendStmt:
					comm[c] = true
				case *ast.ExprStmt:
					comm[ast.Unparen(c.X)] = true
				case *ast.AssignStmt:
					for _, rhs := range c.Rhs {
						comm[ast.Unparen(rhs)] = true
					}
				}
			}
		})
		callgraph.WalkLive(info, n.Decl.Body, func(node ast.Node) {
			switch s := node.(type) {
			case *ast.SendStmt:
				if !comm[s] {
					pass.Reportf(s.Arrow, "channel send can block the hot path (via %s); hand off at the boundary or use a ring buffer", via)
				}
			case *ast.UnaryExpr:
				if s.Op == token.ARROW && !comm[s] {
					pass.Reportf(s.OpPos, "channel receive can block the hot path (via %s); hand off at the boundary", via)
				}
			case *ast.RangeStmt:
				if t := info.Types[s.X].Type; t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						pass.Reportf(s.For, "range over channel blocks the hot path (via %s); drain at the boundary", via)
					}
				}
			case *ast.SelectStmt:
				if !hasDefault(s) {
					pass.Reportf(s.Select, "select without default blocks the hot path (via %s); add a default or move the wait to the boundary", via)
				}
			case *ast.GoStmt:
				pass.Reportf(s.Go, "goroutine launch in hot path (via %s); the kernels are single-threaded — fan out per instance, not per event", via)
			case *ast.CallExpr:
				checkSyncCall(pass, info, s, via)
			}
		})
	}
	return nil
}

func checkSyncCall(pass *framework.Pass, info *types.Info, call *ast.CallExpr, via string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || !blockingSyncMethods[fn.Name()] {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	recv := sig.Recv().Type()
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	pass.Reportf(call.Pos(), "%s.%s acquisition in hot path (via %s); the kernels are single-threaded — synchronize at the boundary",
		types.TypeString(recv, types.RelativeTo(nil)), fn.Name(), via)
}

func hasDefault(s *ast.SelectStmt) bool {
	for _, clause := range s.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
