// Package warmstones implements the WARMstones evaluation environment
// proposed in Section 4.3 of the paper (WARM = Wide-Area Resource
// Management): a benchmark suite of annotated program graphs, a
// canonical representation of metasystems, an implementation toolkit
// for mapping policies ("schedulers"), and a simulation engine with
// multiple levels of detail — an analytic estimate and an event-driven
// interpreter, matching "depending on how much precision is required
// ... we could simulate every packet ... or we can simply assume a
// simple model and estimate the communication time".
package warmstones

import (
	"fmt"
	"sort"

	"parsched/internal/des"
	"parsched/internal/graph"
	"parsched/internal/stats"
)

// Machine is one computer in the canonical metasystem representation:
// "the representation will encapsulate both the local infrastructure
// (workstations, clusters, supercomputers) and the overall structure of
// the metasystem".
type Machine struct {
	Name string
	// Procs is the number of processors (module slots).
	Procs int
	// Speed is the relative processor speed (1.0 = reference).
	Speed float64
	// Devices lists special resources present at this machine.
	Devices []string
}

// HasDevice reports whether the machine advertises the device.
func (m *Machine) HasDevice(d string) bool {
	if d == "" {
		return true
	}
	for _, x := range m.Devices {
		if x == d {
			return true
		}
	}
	return false
}

// System is the canonical metasystem: machines plus a uniform wide-area
// interconnect model (bandwidth in bytes/second and latency in seconds
// between distinct machines; intra-machine communication is free).
type System struct {
	Name      string
	Machines  []Machine
	Bandwidth float64
	Latency   float64
}

// MachineIndex returns the index of a named machine, or -1.
func (s *System) MachineIndex(name string) int {
	for i := range s.Machines {
		if s.Machines[i].Name == name {
			return i
		}
	}
	return -1
}

// TotalProcs sums processors across machines.
func (s *System) TotalProcs() int {
	n := 0
	for i := range s.Machines {
		n += s.Machines[i].Procs
	}
	return n
}

// CommTime returns the transfer time for b bytes between machines a
// and bIdx (0 when they are the same machine).
func (s *System) CommTime(a, bIdx int, bytes float64) float64 {
	if a == bIdx || bytes <= 0 {
		return 0
	}
	if s.Bandwidth <= 0 {
		return s.Latency
	}
	return s.Latency + bytes/s.Bandwidth
}

// Mapping assigns each module (by ID) to a machine index.
type Mapping []int

// Mapper is the scheduler-implementation-toolkit interface: a mapping
// policy turns (graph, system) into a Mapping. "The implementation
// toolkit will allow users to implement particular scheduling
// algorithms for simulation and evaluation."
type Mapper interface {
	Name() string
	Map(g *graph.Graph, sys *System) (Mapping, error)
}

// Validate checks a mapping: every module placed on an existing machine
// that satisfies its device requirement.
func Validate(g *graph.Graph, sys *System, m Mapping) error {
	if len(m) != len(g.Modules) {
		return fmt.Errorf("warmstones: mapping covers %d of %d modules", len(m), len(g.Modules))
	}
	for id, mi := range m {
		if mi < 0 || mi >= len(sys.Machines) {
			return fmt.Errorf("warmstones: module %d mapped to machine %d of %d", id, mi, len(sys.Machines))
		}
		if d := g.Modules[id].Device; !sys.Machines[mi].HasDevice(d) {
			return fmt.Errorf("warmstones: module %d needs device %q, machine %s lacks it",
				id, d, sys.Machines[mi].Name)
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Mapping policies

// RoundRobin cycles modules over device-feasible machines.
type RoundRobin struct{}

// Name implements Mapper.
func (RoundRobin) Name() string { return "round-robin" }

// Map implements Mapper.
func (RoundRobin) Map(g *graph.Graph, sys *System) (Mapping, error) {
	m := make(Mapping, len(g.Modules))
	next := 0
	for id := range g.Modules {
		placed := false
		for try := 0; try < len(sys.Machines); try++ {
			mi := (next + try) % len(sys.Machines)
			if sys.Machines[mi].HasDevice(g.Modules[id].Device) {
				m[id] = mi
				next = mi + 1
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("warmstones: no machine offers device %q", g.Modules[id].Device)
		}
	}
	return m, nil
}

// LoadBalance places each module (heaviest first) on the feasible
// machine with the least accumulated work per unit of aggregate speed.
type LoadBalance struct{}

// Name implements Mapper.
func (LoadBalance) Name() string { return "load-balance" }

// Map implements Mapper.
func (LoadBalance) Map(g *graph.Graph, sys *System) (Mapping, error) {
	m := make(Mapping, len(g.Modules))
	order := make([]int, len(g.Modules))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return g.Modules[order[a]].Work > g.Modules[order[b]].Work
	})
	load := make([]float64, len(sys.Machines))
	for _, id := range order {
		best := -1
		var bestScore float64
		for mi := range sys.Machines {
			mach := &sys.Machines[mi]
			if !mach.HasDevice(g.Modules[id].Device) {
				continue
			}
			capacity := float64(mach.Procs) * mach.Speed
			score := (load[mi] + g.Modules[id].Work) / capacity
			if best < 0 || score < bestScore {
				best, bestScore = mi, score
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("warmstones: no machine offers device %q", g.Modules[id].Device)
		}
		m[id] = best
		load[best] += g.Modules[id].Work
	}
	return m, nil
}

// CommAware clusters communicating modules: it starts from LoadBalance
// and then greedily co-locates each module with the predecessor it
// exchanges the most bytes with, when the move does not overload the
// target machine by more than Slack (fraction of mean load).
type CommAware struct {
	// Slack bounds load imbalance introduced by co-location (default 0.5).
	Slack float64
}

// Name implements Mapper.
func (CommAware) Name() string { return "comm-aware" }

// Map implements Mapper.
func (c CommAware) Map(g *graph.Graph, sys *System) (Mapping, error) {
	slack := c.Slack
	if slack <= 0 {
		slack = 0.5
	}
	m, err := LoadBalance{}.Map(g, sys)
	if err != nil {
		return nil, err
	}
	load := make([]float64, len(sys.Machines))
	for id, mi := range m {
		load[mi] += g.Modules[id].Work
	}
	mean := g.TotalWork() / float64(len(sys.Machines))
	limit := mean * (1 + slack)

	// Heaviest edge first: co-locate endpoints when feasible.
	edges := append([]graph.Edge(nil), g.Edges...)
	sort.SliceStable(edges, func(a, b int) bool { return edges[a].Bytes > edges[b].Bytes })
	for _, e := range edges {
		src, dst := m[e.From], m[e.To]
		if src == dst {
			continue
		}
		mod := g.Modules[e.To]
		if !sys.Machines[src].HasDevice(mod.Device) {
			continue
		}
		if load[src]+mod.Work > limit {
			continue
		}
		load[dst] -= mod.Work
		load[src] += mod.Work
		m[e.To] = src
	}
	return m, nil
}

// ---------------------------------------------------------------------
// Simulation engine: two fidelities

// Estimate is the low-fidelity analytic model: makespan ≈ max of
// (per-machine work / effective speed) plus total inter-machine
// communication time serialized over the interconnect. Coarse, but
// instant — the "simple model" end of the fidelity spectrum.
func Estimate(g *graph.Graph, sys *System, m Mapping) float64 {
	if err := Validate(g, sys, m); err != nil {
		return -1
	}
	load := make([]float64, len(sys.Machines))
	for id, mi := range m {
		load[mi] += g.Modules[id].Work
	}
	var makespan float64
	for mi := range sys.Machines {
		mach := &sys.Machines[mi]
		t := load[mi] / (float64(mach.Procs) * mach.Speed)
		if t > makespan {
			makespan = t
		}
	}
	var comm stats.Moments
	for _, e := range g.Edges {
		comm.Add(sys.CommTime(m[e.From], m[e.To], e.Bytes))
	}
	return makespan + comm.Sum()
}

// Simulate is the high-fidelity event-driven interpreter: modules
// execute on their machine's processor slots when all predecessors
// have completed and their inbound transfers have arrived; transfers
// pay latency + bytes/bandwidth between distinct machines. Returns the
// makespan in seconds.
func Simulate(g *graph.Graph, sys *System, m Mapping) (float64, error) {
	if err := Validate(g, sys, m); err != nil {
		return 0, err
	}
	// Time quantization: milliseconds keep integer DES time while
	// resolving sub-second module work.
	const tick = 1000.0

	engine := &des.Engine{}
	preds := g.Preds()
	n := len(g.Modules)

	waiting := make([]int, n) // unmet dependency count
	ready := make([][]int, len(sys.Machines))
	freeSlots := make([]int, len(sys.Machines))
	for mi := range sys.Machines {
		freeSlots[mi] = sys.Machines[mi].Procs
	}
	var makespan int64

	var tryStart func(mi int)
	var moduleDone func(id int)

	start := func(id int) {
		mi := m[id]
		freeSlots[mi]--
		dur := int64(g.Modules[id].Work / sys.Machines[mi].Speed * tick)
		if dur < 1 {
			dur = 1
		}
		engine.After(dur, des.PriorityFinish, func() { moduleDone(id) })
	}

	tryStart = func(mi int) {
		for freeSlots[mi] > 0 && len(ready[mi]) > 0 {
			id := ready[mi][0]
			ready[mi] = ready[mi][1:]
			start(id)
		}
	}

	deliver := func(id int) {
		// One more dependency satisfied.
		waiting[id]--
		if waiting[id] == 0 {
			mi := m[id]
			ready[mi] = append(ready[mi], id)
			tryStart(mi)
		}
	}

	moduleDone = func(id int) {
		mi := m[id]
		freeSlots[mi]++
		if engine.Now() > makespan {
			makespan = engine.Now()
		}
		// Send outputs to successors.
		for _, e := range g.Edges {
			if e.From != id {
				continue
			}
			e := e
			ct := int64(sys.CommTime(m[e.From], m[e.To], e.Bytes) * tick)
			if ct < 0 {
				ct = 0
			}
			engine.After(ct, des.PriorityArrival, func() { deliver(e.To) })
		}
		tryStart(mi)
	}

	// Seed: count dependencies; modules with none are ready at t=0.
	for id := 0; id < n; id++ {
		waiting[id] = len(preds[id])
	}
	for id := 0; id < n; id++ {
		if waiting[id] == 0 {
			mi := m[id]
			ready[mi] = append(ready[mi], id)
		}
	}
	for mi := range sys.Machines {
		tryStart(mi)
	}
	engine.Run()

	return float64(makespan) / tick, nil
}

// Score is one scoreboard entry of the evaluation environment.
type Score struct {
	Graph    string
	System   string
	Mapper   string
	Makespan float64 // event-driven result, seconds
	Estimate float64 // analytic result, seconds
}

// Evaluate runs every (graph, mapper) pair on a system and returns the
// scoreboard, sorted by graph then mapper — the "apples-to-apples
// comparisons" table the paper wants.
func Evaluate(graphs []*graph.Graph, sys *System, mappers []Mapper) ([]Score, error) {
	var scores []Score
	for _, g := range graphs {
		for _, mp := range mappers {
			mapping, err := mp.Map(g, sys)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", mp.Name(), g.Name, err)
			}
			ms, err := Simulate(g, sys, mapping)
			if err != nil {
				return nil, err
			}
			scores = append(scores, Score{
				Graph: g.Name, System: sys.Name, Mapper: mp.Name(),
				Makespan: ms, Estimate: Estimate(g, sys, mapping),
			})
		}
	}
	sort.SliceStable(scores, func(a, b int) bool {
		if scores[a].Graph != scores[b].Graph {
			return scores[a].Graph < scores[b].Graph
		}
		return scores[a].Mapper < scores[b].Mapper
	})
	return scores, nil
}

// StandardSystems returns the three canonical metasystem configurations
// used by experiment E10: a homogeneous cluster-of-clusters, a
// heterogeneous wide-area grid with slow links, and a
// supercomputer-plus-workstations federation with devices.
func StandardSystems() []*System {
	return []*System{
		{
			Name: "cluster-federation",
			Machines: []Machine{
				{Name: "c1", Procs: 16, Speed: 1},
				{Name: "c2", Procs: 16, Speed: 1},
				{Name: "c3", Procs: 16, Speed: 1},
				{Name: "c4", Procs: 16, Speed: 1},
			},
			Bandwidth: 100e6, Latency: 0.005,
		},
		{
			Name: "wide-area-grid",
			Machines: []Machine{
				{Name: "east", Procs: 32, Speed: 1.2},
				{Name: "west", Procs: 24, Speed: 0.8},
				{Name: "south", Procs: 8, Speed: 1.5},
			},
			Bandwidth: 5e6, Latency: 0.08,
		},
		{
			Name: "super+workstations",
			Machines: []Machine{
				{Name: "super", Procs: 64, Speed: 2, Devices: []string{"tape", "viz"}},
				{Name: "lab1", Procs: 8, Speed: 0.5, Devices: []string{"microscope"}},
				{Name: "lab2", Procs: 8, Speed: 0.5},
			},
			Bandwidth: 20e6, Latency: 0.02,
		},
	}
}

// StandardSuite returns the micro-benchmark suite of Section 3.2 plus
// the master-workers application.
func StandardSuite(seed int64) []*graph.Graph {
	return []*graph.Graph{
		graph.ComputeIntensive(96, 120, seed),
		graph.CommunicationIntensive(24, 30, 200e6, seed+1),
		graph.DeviceBound([]string{"tape", "microscope", "viz"}, 60, 50e6),
		graph.MasterWorkers(32, 20, 90, 10e6, 20e6),
	}
}
