package warmstones

import (
	"math"
	"testing"

	"parsched/internal/graph"
)

func flatSystem(machines, procs int) *System {
	s := &System{Name: "flat", Bandwidth: 1e9, Latency: 0.001}
	for i := 0; i < machines; i++ {
		s.Machines = append(s.Machines, Machine{
			Name: string(rune('a' + i)), Procs: procs, Speed: 1,
		})
	}
	return s
}

func TestMappersProduceValidMappings(t *testing.T) {
	sys := StandardSystems()[2] // has devices
	suite := StandardSuite(1)
	for _, mp := range []Mapper{RoundRobin{}, LoadBalance{}, CommAware{}} {
		for _, g := range suite {
			m, err := mp.Map(g, sys)
			if err != nil {
				t.Fatalf("%s on %s: %v", mp.Name(), g.Name, err)
			}
			if err := Validate(g, sys, m); err != nil {
				t.Fatalf("%s on %s: %v", mp.Name(), g.Name, err)
			}
		}
	}
}

func TestDeviceConstraintsRespected(t *testing.T) {
	sys := &System{Name: "dev", Bandwidth: 1e8, Latency: 0.01, Machines: []Machine{
		{Name: "plain", Procs: 8, Speed: 1},
		{Name: "lab", Procs: 2, Speed: 1, Devices: []string{"microscope"}},
	}}
	g := graph.DeviceBound([]string{"microscope"}, 10, 1e6)
	for _, mp := range []Mapper{RoundRobin{}, LoadBalance{}, CommAware{}} {
		m, err := mp.Map(g, sys)
		if err != nil {
			t.Fatalf("%s: %v", mp.Name(), err)
		}
		if sys.Machines[m[0]].Name != "lab" {
			t.Fatalf("%s placed device module on %s", mp.Name(), sys.Machines[m[0]].Name)
		}
	}
}

func TestDeviceInfeasibleErrors(t *testing.T) {
	sys := flatSystem(2, 4)
	g := graph.DeviceBound([]string{"hubble"}, 10, 1e6)
	for _, mp := range []Mapper{RoundRobin{}, LoadBalance{}, CommAware{}} {
		if _, err := mp.Map(g, sys); err == nil {
			t.Fatalf("%s: missing device not reported", mp.Name())
		}
	}
}

func TestSimulateSingleModule(t *testing.T) {
	sys := flatSystem(1, 1)
	g := &graph.Graph{Name: "one", Modules: []graph.Module{{ID: 0, Work: 42}}}
	ms, err := Simulate(g, sys, Mapping{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ms-42) > 0.01 {
		t.Fatalf("makespan = %v, want 42", ms)
	}
}

func TestSimulateRespectsSpeed(t *testing.T) {
	sys := &System{Name: "fast", Bandwidth: 1e9, Machines: []Machine{
		{Name: "m", Procs: 1, Speed: 2},
	}}
	g := &graph.Graph{Name: "one", Modules: []graph.Module{{ID: 0, Work: 42}}}
	ms, _ := Simulate(g, sys, Mapping{0})
	if math.Abs(ms-21) > 0.01 {
		t.Fatalf("makespan = %v, want 21 at speed 2", ms)
	}
}

func TestSimulateSlotContention(t *testing.T) {
	// 4 independent 10s modules on 2 procs: makespan 20.
	sys := flatSystem(1, 2)
	g := &graph.Graph{Name: "par"}
	for i := 0; i < 4; i++ {
		g.Modules = append(g.Modules, graph.Module{ID: i, Work: 10})
	}
	ms, _ := Simulate(g, sys, Mapping{0, 0, 0, 0})
	if math.Abs(ms-20) > 0.01 {
		t.Fatalf("makespan = %v, want 20", ms)
	}
}

func TestSimulateDependencyAndComm(t *testing.T) {
	// Two modules in sequence on different machines: 10 + comm + 10.
	sys := &System{Name: "two", Bandwidth: 1e6, Latency: 0.5, Machines: []Machine{
		{Name: "a", Procs: 1, Speed: 1}, {Name: "b", Procs: 1, Speed: 1},
	}}
	g := &graph.Graph{Name: "seq",
		Modules: []graph.Module{{ID: 0, Work: 10}, {ID: 1, Work: 10}},
		Edges:   []graph.Edge{{From: 0, To: 1, Bytes: 1e6}},
	}
	ms, _ := Simulate(g, sys, Mapping{0, 1})
	want := 10 + 0.5 + 1.0 + 10 // work + latency + transfer + work
	if math.Abs(ms-want) > 0.01 {
		t.Fatalf("makespan = %v, want %v", ms, want)
	}
	// Same machine: no comm cost.
	ms2, _ := Simulate(g, sys, Mapping{0, 0})
	if math.Abs(ms2-20) > 0.01 {
		t.Fatalf("co-located makespan = %v, want 20", ms2)
	}
}

func TestCommAwareBeatsRoundRobinOnCommGraph(t *testing.T) {
	sys := StandardSystems()[1] // wide-area: slow links
	g := graph.CommunicationIntensive(24, 30, 200e6, 7)
	rr, err := RoundRobin{}.Map(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := CommAware{}.Map(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	msRR, _ := Simulate(g, sys, rr)
	msCA, _ := Simulate(g, sys, ca)
	if msCA >= msRR {
		t.Fatalf("comm-aware (%v) should beat round-robin (%v) on a pipeline over slow links", msCA, msRR)
	}
}

func TestLoadBalanceBeatsRoundRobinOnComputeGraph(t *testing.T) {
	// Heterogeneous speeds: load balancing by capacity wins on
	// independent compute.
	sys := StandardSystems()[1]
	g := graph.ComputeIntensive(96, 120, 8)
	rr, _ := RoundRobin{}.Map(g, sys)
	lb, _ := LoadBalance{}.Map(g, sys)
	msRR, _ := Simulate(g, sys, rr)
	msLB, _ := Simulate(g, sys, lb)
	if msLB >= msRR {
		t.Fatalf("load-balance (%v) should beat round-robin (%v)", msLB, msRR)
	}
}

func TestEstimateCorrelatesWithSimulation(t *testing.T) {
	// Multi-fidelity agreement: the analytic estimate must rank
	// mappings in the same order as the event-driven engine for the
	// compute-intensive case (its home turf).
	sys := StandardSystems()[0]
	g := graph.ComputeIntensive(64, 100, 9)
	rr, _ := RoundRobin{}.Map(g, sys)
	lb, _ := LoadBalance{}.Map(g, sys)
	simRR, _ := Simulate(g, sys, rr)
	simLB, _ := Simulate(g, sys, lb)
	estRR := Estimate(g, sys, rr)
	estLB := Estimate(g, sys, lb)
	if (simLB <= simRR) != (estLB <= estRR) {
		t.Fatalf("fidelity disagreement: sim %v/%v est %v/%v", simLB, simRR, estLB, estRR)
	}
}

func TestEvaluateScoreboard(t *testing.T) {
	sys := StandardSystems()[2]
	scores, err := Evaluate(StandardSuite(1), sys, []Mapper{RoundRobin{}, LoadBalance{}, CommAware{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 4*3 {
		t.Fatalf("scores = %d, want 12", len(scores))
	}
	for _, s := range scores {
		if s.Makespan <= 0 || s.Estimate <= 0 {
			t.Fatalf("non-positive score: %+v", s)
		}
	}
}

func TestValidateMapping(t *testing.T) {
	sys := flatSystem(2, 4)
	g := graph.ComputeIntensive(3, 10, 1)
	if err := Validate(g, sys, Mapping{0, 1}); err == nil {
		t.Fatal("short mapping accepted")
	}
	if err := Validate(g, sys, Mapping{0, 1, 5}); err == nil {
		t.Fatal("out-of-range machine accepted")
	}
}

func TestSystemHelpers(t *testing.T) {
	sys := StandardSystems()[0]
	if sys.MachineIndex("c3") != 2 || sys.MachineIndex("nope") != -1 {
		t.Fatal("MachineIndex wrong")
	}
	if sys.TotalProcs() != 64 {
		t.Fatalf("total procs = %d", sys.TotalProcs())
	}
	if sys.CommTime(0, 0, 1e9) != 0 {
		t.Fatal("intra-machine comm must be free")
	}
	if sys.CommTime(0, 1, 100e6) != 0.005+1 {
		t.Fatalf("comm time = %v", sys.CommTime(0, 1, 100e6))
	}
}
