package metrics

import (
	"parsched/internal/stats"
)

// Collector is the streaming counterpart of Compute: an observer fed
// one Outcome at a time (by the simulator, at event time) that
// maintains the whole metric battery incrementally. It is what makes
// percentiles, steady-state truncation, and utilization-over-time
// available without materializing an []Outcome per run — the batch
// Compute is now a thin adapter over it.
//
// Determinism: all integer aggregates (counts, makespan, useful work)
// and — in exact mode — every Summary are independent of feed order;
// GeoBSLD folds logarithms in feed order and so can differ in the last
// floating-point bits between orders.
type Collector struct {
	opts CollectorOptions
	tau  int64

	jobs, finished, unfinished int
	dropped, truncated         int
	restarts                   int
	lostWork                   int64

	firstSubmit, lastEnd int64
	usefulWork           int64

	wait, resp, bsld *stats.Stream
	geoBSLD          stats.LogMean

	// cooldown ring buffer: the last CooldownJobs finished outcomes are
	// held back and only committed once pushed out by a newer one, so
	// the trailing drain of a run can be excluded without knowing in
	// advance when the stream ends.
	cool     []Outcome
	coolN    int
	coolHead int

	// seenFinished counts finished outcomes observed, including ones
	// the warmup policy truncates.
	seenFinished int

	series TimeSeries
}

// CollectorOptions configure a Collector.
type CollectorOptions struct {
	// Scheduler and Workload label the resulting Report.
	Scheduler, Workload string
	// Procs is the machine size utilization is computed against.
	Procs int
	// Tau overrides the bounded-slowdown runtime floor in seconds
	// (<= 0 means DefaultBoundedSlowdownTau).
	Tau int64
	// WarmupJobs drops the first K finished outcomes observed — the
	// transient the paper's steady-state methodology excludes.
	WarmupJobs int
	// CooldownJobs drops the last K finished outcomes observed (the
	// drain at the end of a replay).
	CooldownJobs int
	// WarmupTime drops finished outcomes completing before this
	// simulation time (seconds; workloads are rebased to start at 0).
	WarmupTime int64
	// CooldownTime, when > 0, drops finished outcomes completing after
	// this simulation time.
	CooldownTime int64
	// Sketch switches the per-metric accumulators to O(1)-memory
	// Welford moments + P² quantile sketches instead of retained exact
	// samples. Means stay exact to ~1 ulp; quantiles become estimates.
	Sketch bool
	// SampleEvery declares the cadence (seconds) the feeder will call
	// ObserveSample at, so the recorded TimeSeries carries the right
	// Interval even when a short run yields a single sample. Unset,
	// the interval is inferred from the first two samples.
	SampleEvery int64
}

// NewCollector returns a Collector ready to observe outcomes.
func NewCollector(opts CollectorOptions) *Collector {
	c := &Collector{
		opts:        opts,
		tau:         opts.Tau,
		firstSubmit: 1<<62 - 1,
		wait:        stats.NewStream(opts.Sketch),
		resp:        stats.NewStream(opts.Sketch),
		bsld:        stats.NewStream(opts.Sketch),
	}
	if c.tau <= 0 {
		c.tau = DefaultBoundedSlowdownTau
	}
	if opts.CooldownJobs > 0 {
		c.cool = make([]Outcome, opts.CooldownJobs)
	}
	c.series.Interval = opts.SampleEvery
	return c
}

// Observe folds one job outcome into the collector. The simulator
// calls it at termination time; the batch adapter calls it per slice
// element.
func (c *Collector) Observe(o Outcome) {
	c.jobs++
	if o.Dropped {
		c.dropped++
	}
	c.restarts += o.Restarts
	c.lostWork += o.LostWork
	if !o.Finished() {
		c.unfinished++
		return
	}
	c.seenFinished++
	if c.seenFinished <= c.opts.WarmupJobs ||
		(c.opts.WarmupTime > 0 && o.End < c.opts.WarmupTime) ||
		(c.opts.CooldownTime > 0 && o.End > c.opts.CooldownTime) {
		c.truncated++
		return
	}
	if c.cool != nil {
		if c.coolN < len(c.cool) {
			c.cool[(c.coolHead+c.coolN)%len(c.cool)] = o
			c.coolN++
			return
		}
		o, c.cool[c.coolHead] = c.cool[c.coolHead], o
		c.coolHead = (c.coolHead + 1) % len(c.cool)
	}
	c.commit(o)
}

// commit accounts one finished outcome that survived truncation.
func (c *Collector) commit(o Outcome) {
	c.finished++
	if o.Submit < c.firstSubmit {
		c.firstSubmit = o.Submit
	}
	if o.End > c.lastEnd {
		c.lastEnd = o.End
	}
	c.usefulWork += int64(o.Size) * o.Runtime
	c.wait.Add(float64(o.Wait()))
	c.resp.Add(float64(o.Response()))
	b := o.BoundedSlowdownWith(c.tau)
	c.bsld.Add(b)
	c.geoBSLD.Add(b)
}

// ObserveSample records one time-series sample (the simulator emits
// them at its configured cadence).
func (c *Collector) ObserveSample(s Sample) {
	if c.series.Interval == 0 && len(c.series.Samples) == 1 {
		c.series.Interval = s.Time - c.series.Samples[0].Time
	}
	c.series.Samples = append(c.series.Samples, s)
}

// Series returns the recorded time series, or nil when no samples were
// fed (sampling disabled).
func (c *Collector) Series() *TimeSeries {
	if len(c.series.Samples) == 0 {
		return nil
	}
	return &c.series
}

// Report renders the current state as a Report. It can be called
// mid-stream (a progress snapshot) or at the end; it does not mutate
// the collector. Outcomes still held in the cooldown window count as
// truncated until newer completions push them out.
func (c *Collector) Report() Report {
	r := Report{
		Scheduler:  c.opts.Scheduler,
		Workload:   c.opts.Workload,
		Tau:        c.tau,
		Jobs:       c.jobs,
		Finished:   c.finished,
		Unfinished: c.unfinished,
		Dropped:    c.dropped,
		Truncated:  c.truncated + c.coolN,
		Restarts:   c.restarts,
		LostWork:   c.lostWork,
	}
	if c.finished == 0 {
		return r
	}
	r.Makespan = c.lastEnd - c.firstSubmit
	if r.Makespan > 0 && c.opts.Procs > 0 {
		r.Utilization = float64(c.usefulWork) / (float64(r.Makespan) * float64(c.opts.Procs))
		r.Throughput = float64(c.finished) / (float64(r.Makespan) / 3600)
	}
	r.Wait = c.wait.Summary()
	r.Response = c.resp.Summary()
	r.BSLD = c.bsld.Summary()
	r.GeoBSLD = c.geoBSLD.Mean()
	return r
}

// Sample is one instant of the machine-level time series: the
// utilization-over-time and backlog standards the paper asks
// evaluations to report alongside end-of-run aggregates.
type Sample struct {
	// Time is the simulation instant (seconds).
	Time int64 `json:"time"`
	// Utilization is in-use processors over up processors at Time.
	Utilization float64 `json:"utilization"`
	// Queued is the scheduler's backlog length.
	Queued int `json:"queued"`
	// Running is the number of jobs executing.
	Running int `json:"running"`
	// Backlog is the estimated processor-seconds of work waiting in
	// the queue plus remaining in running jobs.
	Backlog int64 `json:"backlog"`
}

// TimeSeries is a regularly sampled sequence of machine snapshots.
type TimeSeries struct {
	// Interval is the sampling cadence in seconds.
	Interval int64 `json:"interval"`
	// Samples are the snapshots in time order.
	Samples []Sample `json:"samples"`
}
