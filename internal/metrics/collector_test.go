package metrics

import (
	"math"
	"reflect"
	"testing"

	"parsched/internal/stats"
)

// syntheticOutcomes builds a deterministic mixed population: finished
// jobs with heavy-tailed waits, some unfinished, some dropped with
// restarts — the shapes a real replay produces.
func syntheticOutcomes(n int, seed int64) []Outcome {
	rng := stats.NewRNG(seed)
	outs := make([]Outcome, 0, n)
	t := int64(0)
	for i := 0; i < n; i++ {
		t += int64(rng.Intn(300))
		o := Outcome{
			JobID:  int64(i + 1),
			User:   int64(1 + rng.Intn(7)),
			Submit: t,
			Size:   1 << rng.Intn(7),
		}
		switch rng.Intn(12) {
		case 0: // never started
			o.Start, o.End = -1, -1
		case 1: // dropped after kills
			o.Start, o.End = -1, -1
			o.Dropped = true
			o.Restarts = 1 + rng.Intn(3)
			o.LostWork = int64(rng.Intn(5000))
		default:
			wait := int64(rng.Intn(20000))
			run := int64(1 + rng.Intn(7200))
			o.Start = t + wait
			o.Runtime = run
			o.End = o.Start + run
			if rng.Intn(10) == 0 {
				o.Restarts = 1
				o.LostWork = int64(rng.Intn(1000))
			}
		}
		outs = append(outs, o)
	}
	return outs
}

// TestStreamingBatchEquivalence is the tentpole guarantee: feeding a
// Collector one outcome at a time produces the identical Report —
// every field, bit for bit — that the batch Compute produces for the
// same outcome set at default settings.
func TestStreamingBatchEquivalence(t *testing.T) {
	outs := syntheticOutcomes(2000, 11)
	c := NewCollector(CollectorOptions{Scheduler: "easy", Workload: "synth", Procs: 128})
	for _, o := range outs {
		c.Observe(o)
	}
	streamed := c.Report()
	batch := Compute("easy", "synth", outs, 128)
	if !reflect.DeepEqual(streamed, batch) {
		t.Fatalf("streaming report diverges from batch:\n stream %+v\n batch  %+v", streamed, batch)
	}
}

// TestCollectorOrderInvariance: every aggregate except the geometric
// mean is independent of feed order (exact-mode summaries sort before
// folding); the geometric mean agrees to floating-point noise.
func TestCollectorOrderInvariance(t *testing.T) {
	outs := syntheticOutcomes(1500, 12)
	forward := NewCollector(CollectorOptions{Procs: 128})
	for _, o := range outs {
		forward.Observe(o)
	}
	backward := NewCollector(CollectorOptions{Procs: 128})
	for i := len(outs) - 1; i >= 0; i-- {
		backward.Observe(outs[i])
	}
	f, b := forward.Report(), backward.Report()
	if math.Abs(f.GeoBSLD-b.GeoBSLD) > 1e-9*f.GeoBSLD {
		t.Fatalf("geo BSLD order-sensitive beyond noise: %v vs %v", f.GeoBSLD, b.GeoBSLD)
	}
	f.GeoBSLD, b.GeoBSLD = 0, 0
	if !reflect.DeepEqual(f, b) {
		t.Fatalf("report depends on feed order:\n fwd %+v\n bwd %+v", f, b)
	}
}

func TestCollectorWarmupJobs(t *testing.T) {
	outs := syntheticOutcomes(400, 13)
	const k = 50
	c := NewCollector(CollectorOptions{Procs: 128, WarmupJobs: k})
	for _, o := range outs {
		c.Observe(o)
	}
	r := c.Report()
	if r.Truncated != k {
		t.Fatalf("truncated = %d, want %d", r.Truncated, k)
	}
	if r.Jobs != len(outs) {
		t.Fatalf("jobs = %d, want all %d observed", r.Jobs, len(outs))
	}
	// The measured population must equal a batch Compute over the
	// outcomes with the first k finished ones removed.
	var tail []Outcome
	finished := 0
	for _, o := range outs {
		if o.Finished() {
			finished++
			if finished <= k {
				continue
			}
		}
		tail = append(tail, o)
	}
	want := Compute("", "", tail, 128)
	if r.Finished != want.Finished || !reflect.DeepEqual(r.Wait, want.Wait) || r.Makespan != want.Makespan {
		t.Fatalf("warmup stats:\n got  %+v\n want %+v", r, want)
	}
}

func TestCollectorWarmupAndCooldownTime(t *testing.T) {
	outs := []Outcome{
		{JobID: 1, Submit: 0, Start: 0, End: 100, Size: 1, Runtime: 100},       // in warmup
		{JobID: 2, Submit: 500, Start: 500, End: 900, Size: 1, Runtime: 400},   // measured
		{JobID: 3, Submit: 800, Start: 900, End: 1500, Size: 1, Runtime: 600},  // measured
		{JobID: 4, Submit: 900, Start: 2000, End: 2500, Size: 1, Runtime: 500}, // past cooldown
	}
	c := NewCollector(CollectorOptions{Procs: 4, WarmupTime: 200, CooldownTime: 1800})
	for _, o := range outs {
		c.Observe(o)
	}
	r := c.Report()
	if r.Finished != 2 || r.Truncated != 2 {
		t.Fatalf("time truncation: %+v", r)
	}
	if r.Wait.N != 2 || r.Makespan != 1000 { // submits 500..end 1500
		t.Fatalf("measured window wrong: %+v", r)
	}
}

func TestCollectorCooldownJobs(t *testing.T) {
	outs := syntheticOutcomes(300, 14)
	const k = 40
	c := NewCollector(CollectorOptions{Procs: 128, CooldownJobs: k})
	for _, o := range outs {
		c.Observe(o)
	}
	r := c.Report()
	if r.Truncated != k {
		t.Fatalf("truncated = %d, want last %d held back", r.Truncated, k)
	}
	// Equivalent batch: drop the last k finished outcomes (in feed order).
	var finishedIdx []int
	for i, o := range outs {
		if o.Finished() {
			finishedIdx = append(finishedIdx, i)
		}
	}
	cut := map[int]bool{}
	for _, i := range finishedIdx[len(finishedIdx)-k:] {
		cut[i] = true
	}
	var kept []Outcome
	for i, o := range outs {
		if !cut[i] {
			kept = append(kept, o)
		}
	}
	want := Compute("", "", kept, 128)
	if r.Finished != want.Finished || !reflect.DeepEqual(r.BSLD, want.BSLD) {
		t.Fatalf("cooldown stats:\n got  %+v\n want %+v", r, want)
	}
	// Report is a snapshot: observing more outcomes afterwards commits
	// the held-back ones.
	more := syntheticOutcomes(100, 15)
	for _, o := range more {
		c.Observe(o)
	}
	if r2 := c.Report(); r2.Finished <= r.Finished {
		t.Fatalf("cooldown window did not slide: %d -> %d", r.Finished, r2.Finished)
	}
}

func TestCollectorTau(t *testing.T) {
	// A 5-second job with a 95-second response: bsld is 95/10 = 9.5 at
	// the default tau, 95/60 -> 1.58.. at tau=60.
	o := Outcome{Submit: 0, Start: 90, End: 95, Size: 1, Runtime: 5}
	def := NewCollector(CollectorOptions{Procs: 1})
	def.Observe(o)
	if r := def.Report(); r.Tau != DefaultBoundedSlowdownTau || r.BSLD.Mean != 9.5 {
		t.Fatalf("default tau report: %+v", r)
	}
	wide := NewCollector(CollectorOptions{Procs: 1, Tau: 60})
	wide.Observe(o)
	if r := wide.Report(); r.Tau != 60 || math.Abs(r.BSLD.Mean-95.0/60) > 1e-12 {
		t.Fatalf("tau=60 report: %+v", r)
	}
	// Everything but the slowdown family is tau-independent.
	rd, rw := def.Report(), wide.Report()
	if !reflect.DeepEqual(rd.Wait, rw.Wait) || rd.Utilization != rw.Utilization {
		t.Fatal("tau leaked into non-slowdown metrics")
	}
}

func TestCollectorSketchApproximatesExact(t *testing.T) {
	outs := syntheticOutcomes(20000, 16)
	exact := NewCollector(CollectorOptions{Procs: 128})
	sk := NewCollector(CollectorOptions{Procs: 128, Sketch: true})
	for _, o := range outs {
		exact.Observe(o)
		sk.Observe(o)
	}
	re, rs := exact.Report(), sk.Report()
	if re.Jobs != rs.Jobs || re.Finished != rs.Finished || re.Makespan != rs.Makespan {
		t.Fatalf("sketch counters diverge: %+v vs %+v", re, rs)
	}
	if re.Utilization != rs.Utilization {
		t.Fatalf("sketch utilization diverges: %v vs %v", re.Utilization, rs.Utilization)
	}
	if math.Abs(re.Wait.Mean-rs.Wait.Mean) > 1e-6*re.Wait.Mean {
		t.Fatalf("sketch mean wait: %v vs %v", rs.Wait.Mean, re.Wait.Mean)
	}
	for _, q := range []struct {
		name     string
		ex, sket float64
	}{
		{"p50 wait", re.Wait.Median, rs.Wait.Median},
		{"p90 wait", re.Wait.P90, rs.Wait.P90},
		{"p99 resp", re.Response.P99, rs.Response.P99},
	} {
		if math.Abs(q.ex-q.sket) > 0.05*q.ex {
			t.Errorf("%s: sketch %v vs exact %v", q.name, q.sket, q.ex)
		}
	}
}

// TestCollectorSketchSteadyStateAllocs proves the O(1)-memory claim:
// once warm, a sketch-mode collector performs zero allocations per
// observed outcome, so a Report never requires materializing the
// outcome stream.
func TestCollectorSketchSteadyStateAllocs(t *testing.T) {
	outs := syntheticOutcomes(1000, 17)
	c := NewCollector(CollectorOptions{Procs: 128, Sketch: true, CooldownJobs: 16})
	for _, o := range outs {
		c.Observe(o)
	}
	i := 0
	if avg := testing.AllocsPerRun(2000, func() {
		c.Observe(outs[i%len(outs)])
		i++
	}); avg != 0 {
		t.Fatalf("sketch-mode Observe allocates %.3f allocs/outcome in steady state", avg)
	}
}

func TestCollectorTimeSeries(t *testing.T) {
	c := NewCollector(CollectorOptions{Procs: 8})
	if c.Series() != nil {
		t.Fatal("series should be nil before any sample")
	}
	for i := int64(0); i < 5; i++ {
		c.ObserveSample(Sample{Time: i * 600, Utilization: 0.5, Queued: int(i)})
	}
	s := c.Series()
	if s == nil || len(s.Samples) != 5 || s.Interval != 600 {
		t.Fatalf("series = %+v", s)
	}
	if s.Samples[3].Queued != 3 {
		t.Fatalf("sample order lost: %+v", s.Samples)
	}
}

func TestCollectorEmptyMatchesCompute(t *testing.T) {
	c := NewCollector(CollectorOptions{Scheduler: "s", Workload: "w", Procs: 16})
	if got, want := c.Report(), Compute("s", "w", nil, 16); !reflect.DeepEqual(got, want) {
		t.Fatalf("empty collector %+v, batch %+v", got, want)
	}
	// Unfinished-only input: counts recorded, no time statistics.
	o := Outcome{Submit: 3, Start: -1, End: -1}
	c.Observe(o)
	if got, want := c.Report(), Compute("s", "w", []Outcome{o}, 16); !reflect.DeepEqual(got, want) {
		t.Fatalf("unfinished-only collector %+v, batch %+v", got, want)
	}
}
