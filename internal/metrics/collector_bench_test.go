package metrics

import (
	"testing"
)

// outcomeSynth generates a deterministic outcome stream on the fly —
// no []Outcome is ever materialized, which is the point: the streaming
// collector must produce a full Report from a 100k-job replay while
// the benchmark's working set stays O(1).
type outcomeSynth struct {
	state uint64
	t     int64
	id    int64
}

func (g *outcomeSynth) next() Outcome {
	// xorshift64* keeps the generator allocation- and branch-cheap.
	g.state ^= g.state << 13
	g.state ^= g.state >> 7
	g.state ^= g.state << 17
	r := g.state * 0x2545F4914F6CDD1D
	g.t += int64(r % 240)
	g.id++
	wait := int64((r >> 8) % 30000)
	run := int64(1 + (r>>24)%7200)
	return Outcome{
		JobID:   g.id,
		User:    int64(1 + (r>>40)%16),
		Submit:  g.t,
		Start:   g.t + wait,
		End:     g.t + wait + run,
		Size:    1 << ((r >> 56) % 7),
		Runtime: run,
	}
}

// streamWorkload is the benchmark's nominal replay size.
const streamWorkload = 100_000

// BenchmarkCollector measures the streaming metrics pipeline on a
// 100k-job workload. The sketch case is the O(1)-memory configuration
// (quantile sketches, warmup truncation, cooldown ring): steady-state
// cost must be ~0 B and ~0 allocs per outcome. The exact case retains
// one float64 per metric per outcome for exact order statistics —
// still far below materializing the outcomes themselves.
func BenchmarkCollector(b *testing.B) {
	bench := func(b *testing.B, opts CollectorOptions) {
		b.ReportAllocs()
		g := &outcomeSynth{state: 2026}
		c := NewCollector(opts)
		n := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Observe(g.next())
			n++
			if n == streamWorkload {
				// One full report per completed workload, so the
				// aggregate cost (including Report) is in the figure.
				if r := c.Report(); r.Finished == 0 {
					b.Fatal("degenerate report")
				}
				g = &outcomeSynth{state: 2026}
				c = NewCollector(opts)
				n = 0
			}
		}
	}
	b.Run("sketch", func(b *testing.B) {
		bench(b, CollectorOptions{Procs: 512, Sketch: true, WarmupJobs: 1000, CooldownJobs: 1000})
	})
	b.Run("exact", func(b *testing.B) {
		bench(b, CollectorOptions{Procs: 512})
	})
}
