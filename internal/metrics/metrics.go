// Package metrics computes the performance measures used to evaluate
// parallel job schedulers — the objective functions of Section 1.2 of
// the paper: response time, wait time, bounded slowdown (to minimize),
// utilization and throughput (to maximize), plus the weighted composite
// objectives of Krallmann/Schwiegelshohn/Yahyapour [41] whose weight
// sensitivity experiment E3 reproduces.
//
// The paper warns that "measurement using different metrics may lead to
// conflicting results" [30]; this package therefore computes the whole
// battery at once so experiments can compare rankings across metrics.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"parsched/internal/stats"
)

// BoundedSlowdownTau is the runtime floor (seconds) of the bounded
// slowdown metric, which prevents very short jobs from dominating the
// average. 10 seconds is the customary value.
const BoundedSlowdownTau = 10

// Outcome is the scheduling result of one job.
type Outcome struct {
	JobID   int64
	User    int64
	Submit  int64 // effective submittal (feedback shifts it)
	Start   int64 // -1 if never started
	End     int64 // -1 if never finished
	Size    int
	Runtime int64 // actual runtime of the final (successful) execution
	// Restarts counts executions killed by outages before the final one.
	Restarts int
	// LostWork is processor-seconds of killed partial executions.
	LostWork int64
	// Dropped marks jobs abandoned after exceeding the restart cap.
	Dropped bool
}

// Finished reports whether the job completed normally.
func (o Outcome) Finished() bool { return o.End >= 0 && !o.Dropped }

// Wait returns the queueing delay of the final execution's start.
func (o Outcome) Wait() int64 {
	if o.Start < 0 {
		return -1
	}
	return o.Start - o.Submit
}

// Response returns submit-to-completion time.
func (o Outcome) Response() int64 {
	if o.End < 0 {
		return -1
	}
	return o.End - o.Submit
}

// BoundedSlowdown returns max(1, response / max(runtime, tau)).
func (o Outcome) BoundedSlowdown() float64 {
	if o.End < 0 {
		return -1
	}
	rt := o.Runtime
	if rt < BoundedSlowdownTau {
		rt = BoundedSlowdownTau
	}
	s := float64(o.Response()) / float64(rt)
	if s < 1 {
		s = 1
	}
	return s
}

// Report aggregates outcomes into the standard battery of measures.
type Report struct {
	Scheduler string
	Workload  string

	Jobs       int // total outcomes
	Finished   int
	Unfinished int // never started or never finished within the horizon
	Dropped    int // abandoned after restart cap

	Makespan    int64   // last completion - first submittal
	Utilization float64 // useful processor-seconds / (procs * makespan)
	Throughput  float64 // finished jobs per hour of makespan

	Wait     stats.Summary // seconds, finished jobs only
	Response stats.Summary
	BSLD     stats.Summary // bounded slowdown
	GeoBSLD  float64       // geometric mean bounded slowdown

	Restarts int
	LostWork int64 // processor-seconds destroyed by kills
}

// Compute aggregates outcomes for a machine of procs processors.
// Unfinished jobs contribute to counts but not to time statistics —
// report them, don't hide them.
func Compute(scheduler, workload string, outs []Outcome, procs int) Report {
	r := Report{Scheduler: scheduler, Workload: workload, Jobs: len(outs)}
	if len(outs) == 0 {
		return r
	}

	var waits, resps, bslds []float64
	var firstSubmit, lastEnd int64 = 1<<62 - 1, 0
	var usefulWork int64
	for _, o := range outs {
		if o.Dropped {
			r.Dropped++
		}
		r.Restarts += o.Restarts
		r.LostWork += o.LostWork
		if !o.Finished() {
			r.Unfinished++
			continue
		}
		r.Finished++
		// Makespan spans the finished population only: firstSubmit and
		// lastEnd must cover the same jobs, otherwise an early-submitted
		// job that never finishes inflates the makespan and deflates
		// utilization and throughput on partially-completed runs.
		if o.Submit < firstSubmit {
			firstSubmit = o.Submit
		}
		if o.End > lastEnd {
			lastEnd = o.End
		}
		usefulWork += int64(o.Size) * o.Runtime
		waits = append(waits, float64(o.Wait()))
		resps = append(resps, float64(o.Response()))
		bslds = append(bslds, o.BoundedSlowdown())
	}
	if r.Finished == 0 {
		return r
	}
	r.Makespan = lastEnd - firstSubmit
	if r.Makespan > 0 && procs > 0 {
		r.Utilization = float64(usefulWork) / (float64(r.Makespan) * float64(procs))
		r.Throughput = float64(r.Finished) / (float64(r.Makespan) / 3600)
	}
	r.Wait = stats.Summarize(waits)
	r.Response = stats.Summarize(resps)
	r.BSLD = stats.Summarize(bslds)
	r.GeoBSLD = stats.GeoMean(bslds)
	return r
}

// PerUser splits outcomes by user and computes a report per user —
// the user-centric view meta-scheduling evaluation needs (Section 4.2:
// "metaschedulers ... are more focused on high-level, user-centric
// metrics").
func PerUser(scheduler, workload string, outs []Outcome, procs int) map[int64]Report {
	byUser := map[int64][]Outcome{}
	for _, o := range outs {
		byUser[o.User] = append(byUser[o.User], o)
	}
	reports := make(map[int64]Report, len(byUser))
	for u, os := range byUser {
		reports[u] = Compute(scheduler, workload, os, procs)
	}
	return reports
}

// SizeClass buckets job sizes for per-class breakdowns.
func SizeClass(size int) string {
	switch {
	case size == 1:
		return "serial"
	case size <= 8:
		return "small(2-8)"
	case size <= 64:
		return "medium(9-64)"
	default:
		return "large(>64)"
	}
}

// PerClass splits outcomes by size class.
func PerClass(scheduler, workload string, outs []Outcome, procs int) map[string]Report {
	byClass := map[string][]Outcome{}
	for _, o := range outs {
		byClass[SizeClass(o.Size)] = append(byClass[SizeClass(o.Size)], o)
	}
	reports := make(map[string]Report, len(byClass))
	for c, os := range byClass {
		reports[c] = Compute(scheduler, workload, os, procs)
	}
	return reports
}

// Objective is a weighted composite objective in the style of [41]:
// score = W·(normalized mean wait) + (1-W)·(1 - utilization), to be
// minimized. Normalization divides the mean wait by Scale seconds so
// the two terms share a [0, ~1] range.
type Objective struct {
	W     float64
	Scale float64 // seconds that count as "wait = 1.0"; default 3600
}

// Score evaluates the objective on a report (lower is better).
func (ob Objective) Score(r Report) float64 {
	scale := ob.Scale
	if scale <= 0 {
		scale = 3600
	}
	normWait := r.Wait.Mean / scale
	return ob.W*normWait + (1-ob.W)*(1-r.Utilization)
}

// Rank orders scheduler names by ascending score under the objective
// (best first). It is deterministic: ties break by name.
func (ob Objective) Rank(reports []Report) []string {
	idx := make([]int, len(reports))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		sa, sb := ob.Score(reports[idx[a]]), ob.Score(reports[idx[b]])
		if sa != sb {
			return sa < sb
		}
		return reports[idx[a]].Scheduler < reports[idx[b]].Scheduler
	})
	names := make([]string, len(idx))
	for i, k := range idx {
		names[i] = reports[k].Scheduler
	}
	return names
}

// TableRow renders the headline measures as a fixed-width row; Header
// gives the matching header. These feed the experiment harness tables.
func (r Report) TableRow() string {
	return fmt.Sprintf("%-10s %-12s %6d %6d %8.0f %8.0f %8.2f %8.2f %6.3f %9.1f",
		r.Scheduler, r.Workload, r.Jobs, r.Finished,
		r.Wait.Mean, r.Response.Mean, r.BSLD.Mean, r.GeoBSLD,
		r.Utilization, r.Throughput)
}

// TableHeader is the header matching TableRow.
func TableHeader() string {
	h := fmt.Sprintf("%-10s %-12s %6s %6s %8s %8s %8s %8s %6s %9s",
		"sched", "workload", "jobs", "done", "wait", "resp", "bsld", "gbsld", "util", "jobs/h")
	return h + "\n" + strings.Repeat("-", len(h))
}
