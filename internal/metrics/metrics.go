// Package metrics computes the performance measures used to evaluate
// parallel job schedulers — the objective functions of Section 1.2 of
// the paper: response time, wait time, bounded slowdown (to minimize),
// utilization and throughput (to maximize), plus the weighted composite
// objectives of Krallmann/Schwiegelshohn/Yahyapour [41] whose weight
// sensitivity experiment E3 reproduces.
//
// The paper warns that "measurement using different metrics may lead to
// conflicting results" [30]; this package therefore computes the whole
// battery at once so experiments can compare rankings across metrics.
// Collection is streaming: a Collector observes one outcome at a time
// (optionally truncating the warmup/cooldown transient and sampling a
// utilization time series), and the batch Compute is a thin adapter
// that feeds one.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"parsched/internal/stats"
)

// DefaultBoundedSlowdownTau is the default runtime floor (seconds) of
// the bounded slowdown metric, which prevents very short jobs from
// dominating the average. 10 seconds is the customary value; the
// community uses several thresholds, so collectors take tau as a
// parameter and every Report records the value it was computed with.
const DefaultBoundedSlowdownTau int64 = 10

// Outcome is the scheduling result of one job.
type Outcome struct {
	JobID   int64
	User    int64
	Submit  int64 // effective submittal (feedback shifts it)
	Start   int64 // -1 if never started
	End     int64 // -1 if never finished
	Size    int
	Runtime int64 // actual runtime of the final (successful) execution
	// Restarts counts executions killed by outages before the final one.
	Restarts int
	// LostWork is processor-seconds of killed partial executions.
	LostWork int64
	// Dropped marks jobs abandoned after exceeding the restart cap.
	Dropped bool
}

// Finished reports whether the job completed normally.
func (o Outcome) Finished() bool { return o.End >= 0 && !o.Dropped }

// Wait returns the queueing delay of the final execution's start.
func (o Outcome) Wait() int64 {
	if o.Start < 0 {
		return -1
	}
	return o.Start - o.Submit
}

// Response returns submit-to-completion time.
func (o Outcome) Response() int64 {
	if o.End < 0 {
		return -1
	}
	return o.End - o.Submit
}

// BoundedSlowdown returns max(1, response / max(runtime, tau)) at the
// default tau.
func (o Outcome) BoundedSlowdown() float64 {
	return o.BoundedSlowdownWith(DefaultBoundedSlowdownTau)
}

// BoundedSlowdownWith returns max(1, response / max(runtime, tau)) for
// an explicit runtime floor tau (<= 0 means the default).
func (o Outcome) BoundedSlowdownWith(tau int64) float64 {
	if o.End < 0 {
		return -1
	}
	if tau <= 0 {
		tau = DefaultBoundedSlowdownTau
	}
	rt := o.Runtime
	if rt < tau {
		rt = tau
	}
	s := float64(o.Response()) / float64(rt)
	if s < 1 {
		s = 1
	}
	return s
}

// Report aggregates outcomes into the standard battery of measures.
type Report struct {
	Scheduler string
	Workload  string

	// Tau is the bounded-slowdown runtime floor (seconds) this report
	// was computed with.
	Tau int64

	Jobs       int // total outcomes
	Finished   int // finished jobs inside the measured (post-truncation) population
	Unfinished int // never started or never finished within the horizon
	Dropped    int // abandoned after restart cap
	// Truncated counts finished jobs excluded from the statistics by
	// the warmup/cooldown truncation policy (steady-state measurement).
	Truncated int

	Makespan    int64   // last completion - first submittal
	Utilization float64 // useful processor-seconds / (procs * makespan)
	Throughput  float64 // finished jobs per hour of makespan

	Wait     stats.Summary // seconds, finished jobs only
	Response stats.Summary
	BSLD     stats.Summary // bounded slowdown
	GeoBSLD  float64       // geometric mean bounded slowdown

	Restarts int
	LostWork int64 // processor-seconds destroyed by kills
}

// Compute aggregates outcomes for a machine of procs processors.
// Unfinished jobs contribute to counts but not to time statistics —
// report them, don't hide them.
//
// Compute is a thin adapter over the streaming Collector: it feeds the
// outcomes one at a time and returns the collector's Report, so batch
// and streaming aggregation cannot drift. The makespan spans the
// finished population only: firstSubmit and lastEnd must cover the
// same jobs, otherwise an early-submitted job that never finishes
// inflates the makespan and deflates utilization and throughput on
// partially-completed runs.
func Compute(scheduler, workload string, outs []Outcome, procs int) Report {
	return ComputeWith(outs, CollectorOptions{
		Scheduler: scheduler, Workload: workload, Procs: procs,
	})
}

// ComputeWith aggregates outcomes under explicit collector options
// (tau override, warmup/cooldown truncation, sketch mode).
func ComputeWith(outs []Outcome, opts CollectorOptions) Report {
	c := NewCollector(opts)
	for _, o := range outs {
		c.Observe(o)
	}
	return c.Report()
}

// PerUser splits outcomes by user and computes a report per user —
// the user-centric view meta-scheduling evaluation needs (Section 4.2:
// "metaschedulers ... are more focused on high-level, user-centric
// metrics").
func PerUser(scheduler, workload string, outs []Outcome, procs int) map[int64]Report {
	byUser := map[int64][]Outcome{}
	for _, o := range outs {
		byUser[o.User] = append(byUser[o.User], o)
	}
	reports := make(map[int64]Report, len(byUser))
	for u, os := range byUser {
		reports[u] = Compute(scheduler, workload, os, procs)
	}
	return reports
}

// SizeClass buckets job sizes for per-class breakdowns.
func SizeClass(size int) string {
	switch {
	case size == 1:
		return "serial"
	case size <= 8:
		return "small(2-8)"
	case size <= 64:
		return "medium(9-64)"
	default:
		return "large(>64)"
	}
}

// PerClass splits outcomes by size class.
func PerClass(scheduler, workload string, outs []Outcome, procs int) map[string]Report {
	byClass := map[string][]Outcome{}
	for _, o := range outs {
		byClass[SizeClass(o.Size)] = append(byClass[SizeClass(o.Size)], o)
	}
	reports := make(map[string]Report, len(byClass))
	for c, os := range byClass {
		reports[c] = Compute(scheduler, workload, os, procs)
	}
	return reports
}

// Objective is a weighted composite objective in the style of [41]:
// score = W·(normalized mean wait) + (1-W)·(1 - utilization), to be
// minimized. Normalization divides the mean wait by Scale seconds so
// the two terms share a [0, ~1] range.
type Objective struct {
	W     float64
	Scale float64 // seconds that count as "wait = 1.0"; default 3600
}

// Score evaluates the objective on a report (lower is better). A
// report with no finished jobs scores +Inf: its zero mean wait and
// zero utilization describe a scheduler that ran nothing, not one that
// ran perfectly, so it must rank behind every report that finished work.
func (ob Objective) Score(r Report) float64 {
	if r.Finished == 0 {
		return math.Inf(1)
	}
	scale := ob.Scale
	if scale <= 0 {
		scale = 3600
	}
	normWait := r.Wait.Mean / scale
	return ob.W*normWait + (1-ob.W)*(1-r.Utilization)
}

// Rank orders scheduler names by ascending score under the objective
// (best first). It is deterministic: ties break by name.
func (ob Objective) Rank(reports []Report) []string {
	idx := make([]int, len(reports))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		sa, sb := ob.Score(reports[idx[a]]), ob.Score(reports[idx[b]])
		if sa != sb {
			return sa < sb
		}
		return reports[idx[a]].Scheduler < reports[idx[b]].Scheduler
	})
	names := make([]string, len(idx))
	for i, k := range idx {
		names[i] = reports[k].Scheduler
	}
	return names
}

// TableRow renders the headline measures as a fixed-width row; Header
// gives the matching header. The wait percentiles ride along so every
// consumer of the shared table (simsched, metasim, the examples) shows
// the distribution the paper warns means alone conceal.
func (r Report) TableRow() string {
	return fmt.Sprintf("%-10s %-12s %6d %6d %8.0f %8.0f %8.0f %8.0f %8.0f %8.2f %8.2f %6.3f %9.1f",
		r.Scheduler, r.Workload, r.Jobs, r.Finished,
		r.Wait.Mean, r.Wait.Median, r.Wait.P90, r.Wait.P99,
		r.Response.Mean, r.BSLD.Mean, r.GeoBSLD,
		r.Utilization, r.Throughput)
}

// SortedTableRows computes one report per entry of byName (outcomes
// grouped by workload/site name) and renders each as a TableRow in
// sorted-name order — the shared rendering the grid CLIs use for
// per-site tables, so they cannot drift from the main metrics table.
func SortedTableRows(scheduler string, byName map[string][]Outcome, procs int) []string {
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	rows := make([]string, 0, len(names))
	for _, name := range names {
		rows = append(rows, Compute(scheduler, name, byName[name], procs).TableRow())
	}
	return rows
}

// TableHeader is the header matching TableRow.
func TableHeader() string {
	h := fmt.Sprintf("%-10s %-12s %6s %6s %8s %8s %8s %8s %8s %8s %8s %6s %9s",
		"sched", "workload", "jobs", "done", "wait", "p50w", "p90w", "p99w", "resp", "bsld", "gbsld", "util", "jobs/h")
	return h + "\n" + strings.Repeat("-", len(h))
}
