package metrics

import (
	"math"
	"strings"
	"testing"
)

func sampleOutcomes() []Outcome {
	return []Outcome{
		{JobID: 1, User: 1, Submit: 0, Start: 0, End: 100, Size: 4, Runtime: 100},
		{JobID: 2, User: 1, Submit: 10, Start: 110, End: 210, Size: 8, Runtime: 100},
		{JobID: 3, User: 2, Submit: 20, Start: 20, End: 25, Size: 1, Runtime: 5},
	}
}

func TestOutcomeDerived(t *testing.T) {
	o := sampleOutcomes()[1]
	if o.Wait() != 100 {
		t.Fatalf("wait = %d", o.Wait())
	}
	if o.Response() != 200 {
		t.Fatalf("response = %d", o.Response())
	}
	if bsld := o.BoundedSlowdown(); bsld != 2 {
		t.Fatalf("bsld = %v", bsld)
	}
}

func TestBoundedSlowdownFloor(t *testing.T) {
	// A 5-second job with a 5-second response: bounded slowdown uses
	// tau=10, so 5/10 clamps to 1.
	o := Outcome{Submit: 20, Start: 20, End: 25, Runtime: 5}
	if b := o.BoundedSlowdown(); b != 1 {
		t.Fatalf("bsld = %v, want 1 (floor)", b)
	}
	// Short job with long wait: tau prevents explosion.
	o = Outcome{Submit: 0, Start: 100, End: 105, Runtime: 5}
	if b := o.BoundedSlowdown(); b != 10.5 {
		t.Fatalf("bsld = %v, want 105/10", b)
	}
}

func TestUnstartedOutcome(t *testing.T) {
	o := Outcome{Submit: 0, Start: -1, End: -1}
	if o.Finished() || o.Wait() != -1 || o.Response() != -1 || o.BoundedSlowdown() != -1 {
		t.Fatal("unstarted job should report sentinel values")
	}
}

func TestComputeBasics(t *testing.T) {
	r := Compute("easy", "test", sampleOutcomes(), 16)
	if r.Jobs != 3 || r.Finished != 3 || r.Unfinished != 0 {
		t.Fatalf("counts wrong: %+v", r)
	}
	if r.Makespan != 210 {
		t.Fatalf("makespan = %d", r.Makespan)
	}
	// useful work = 400 + 800 + 5 = 1205; util = 1205/(210*16)
	want := 1205.0 / (210 * 16)
	if math.Abs(r.Utilization-want) > 1e-12 {
		t.Fatalf("utilization = %v, want %v", r.Utilization, want)
	}
	if math.Abs(r.Wait.Mean-(0+100+0)/3.0) > 1e-12 {
		t.Fatalf("mean wait = %v", r.Wait.Mean)
	}
	if r.Throughput <= 0 {
		t.Fatal("throughput must be positive")
	}
}

func TestComputeEmptyAndUnfinished(t *testing.T) {
	r := Compute("s", "w", nil, 16)
	if r.Jobs != 0 {
		t.Fatal("empty compute wrong")
	}
	r = Compute("s", "w", []Outcome{{Submit: 0, Start: -1, End: -1}}, 16)
	if r.Unfinished != 1 || r.Finished != 0 {
		t.Fatalf("unfinished counting wrong: %+v", r)
	}
}

func TestComputeMakespanSpansFinishedOnly(t *testing.T) {
	// Regression: firstSubmit used to span all outcomes (including
	// dropped/unfinished) while lastEnd spanned only finished ones, so
	// an early-submitted job that never finished inflated the makespan
	// and deflated utilization/throughput on partially-completed runs.
	outs := []Outcome{
		{JobID: 1, Submit: 0, Start: -1, End: -1}, // never started
		{JobID: 2, Submit: 1000, Start: 1000, End: 1100, Size: 4, Runtime: 100},
		{JobID: 3, Submit: 1050, Start: 1100, End: 1200, Size: 4, Runtime: 100},
	}
	r := Compute("s", "w", outs, 8)
	if r.Finished != 2 || r.Unfinished != 1 {
		t.Fatalf("counts wrong: %+v", r)
	}
	if r.Makespan != 200 {
		t.Fatalf("makespan = %d, want 200 (finished population only)", r.Makespan)
	}
	wantUtil := 800.0 / (200 * 8)
	if math.Abs(r.Utilization-wantUtil) > 1e-12 {
		t.Fatalf("utilization = %v, want %v", r.Utilization, wantUtil)
	}
	wantTput := 2.0 / (200.0 / 3600)
	if math.Abs(r.Throughput-wantTput) > 1e-9 {
		t.Fatalf("throughput = %v, want %v", r.Throughput, wantTput)
	}
}

func TestComputeRestartsAndLoss(t *testing.T) {
	outs := []Outcome{
		{Submit: 0, Start: 50, End: 150, Size: 4, Runtime: 100, Restarts: 2, LostWork: 300},
		{Submit: 0, Start: -1, End: -1, Dropped: true},
	}
	r := Compute("s", "w", outs, 8)
	if r.Restarts != 2 || r.LostWork != 300 || r.Dropped != 1 {
		t.Fatalf("loss accounting wrong: %+v", r)
	}
}

func TestPerUser(t *testing.T) {
	rs := PerUser("s", "w", sampleOutcomes(), 16)
	if len(rs) != 2 {
		t.Fatalf("users = %d", len(rs))
	}
	if rs[1].Finished != 2 || rs[2].Finished != 1 {
		t.Fatalf("per-user split wrong: %+v", rs)
	}
	// Each sub-report is a full Compute over that user's outcomes:
	// labels carry through and statistics cover only that user.
	if rs[2].Scheduler != "s" || rs[2].Workload != "w" {
		t.Fatalf("labels lost: %+v", rs[2])
	}
	if rs[2].Wait.Mean != 0 || rs[2].Jobs != 1 {
		t.Fatalf("user 2 stats: %+v", rs[2])
	}
	if rs[1].Wait.Mean != 50 { // waits 0 and 100
		t.Fatalf("user 1 mean wait = %v", rs[1].Wait.Mean)
	}
}

func TestPerUserUnfinishedAndEmpty(t *testing.T) {
	if rs := PerUser("s", "w", nil, 16); len(rs) != 0 {
		t.Fatalf("empty outcomes should give no per-user reports: %+v", rs)
	}
	outs := []Outcome{
		{JobID: 1, User: 7, Submit: 0, Start: -1, End: -1},
		{JobID: 2, User: 7, Submit: 5, Start: 10, End: 20, Size: 2, Runtime: 10},
	}
	rs := PerUser("s", "w", outs, 16)
	if len(rs) != 1 || rs[7].Jobs != 2 || rs[7].Finished != 1 || rs[7].Unfinished != 1 {
		t.Fatalf("per-user unfinished accounting: %+v", rs)
	}
}

func TestPerClass(t *testing.T) {
	rs := PerClass("s", "w", sampleOutcomes(), 16)
	if rs["serial"].Finished != 1 {
		t.Fatalf("serial class wrong: %+v", rs)
	}
	if rs["small(2-8)"].Finished != 2 {
		t.Fatalf("small class wrong: %+v", rs)
	}
}

// TestPerClassBucketEdges pins the size-class boundaries (1, 8, 64):
// each boundary size must land in its own bucket and the per-class
// reports must partition the outcome set exactly.
func TestPerClassBucketEdges(t *testing.T) {
	mk := func(id int64, size int) Outcome {
		return Outcome{JobID: id, Submit: 0, Start: 0, End: 60, Size: size, Runtime: 60}
	}
	outs := []Outcome{
		mk(1, 1),           // serial
		mk(2, 2), mk(3, 8), // small
		mk(4, 9), mk(5, 64), // medium
		mk(6, 65), mk(7, 1024), // large
	}
	rs := PerClass("s", "w", outs, 2048)
	want := map[string]int{"serial": 1, "small(2-8)": 2, "medium(9-64)": 2, "large(>64)": 2}
	if len(rs) != len(want) {
		t.Fatalf("classes = %v", rs)
	}
	total := 0
	for class, n := range want {
		r, ok := rs[class]
		if !ok || r.Finished != n || r.Jobs != n {
			t.Fatalf("class %q: got %+v, want %d jobs", class, r, n)
		}
		total += r.Jobs
	}
	if total != len(outs) {
		t.Fatalf("classes cover %d of %d outcomes", total, len(outs))
	}
}

func TestPerClassEmpty(t *testing.T) {
	if rs := PerClass("s", "w", nil, 16); len(rs) != 0 {
		t.Fatalf("empty outcomes should give no per-class reports: %+v", rs)
	}
	if rs := PerClass("s", "w", []Outcome{}, 16); len(rs) != 0 {
		t.Fatalf("zero-length outcomes should give no per-class reports: %+v", rs)
	}
}

func TestSizeClass(t *testing.T) {
	cases := map[int]string{1: "serial", 2: "small(2-8)", 8: "small(2-8)",
		9: "medium(9-64)", 64: "medium(9-64)", 65: "large(>64)"}
	for in, want := range cases {
		if got := SizeClass(in); got != want {
			t.Errorf("SizeClass(%d) = %q", in, got)
		}
	}
}

func TestObjectiveScoreAndRank(t *testing.T) {
	// Scheduler A: low wait, low utilization. B: high wait, high util.
	a := Report{Scheduler: "A", Finished: 10}
	a.Wait.Mean = 360 // 0.1 normalized
	a.Utilization = 0.5
	b := Report{Scheduler: "B", Finished: 10}
	b.Wait.Mean = 7200 // 2.0 normalized
	b.Utilization = 0.95

	waitHeavy := Objective{W: 0.9}
	utilHeavy := Objective{W: 0.1}
	if waitHeavy.Score(a) >= waitHeavy.Score(b) {
		t.Fatal("wait-heavy objective should prefer A")
	}
	if utilHeavy.Score(a) <= utilHeavy.Score(b) {
		t.Fatal("util-heavy objective should prefer B")
	}
	// Ranking flips with the weight — the [41] effect.
	r1 := waitHeavy.Rank([]Report{a, b})
	r2 := utilHeavy.Rank([]Report{a, b})
	if r1[0] != "A" || r2[0] != "B" {
		t.Fatalf("rankings: %v vs %v", r1, r2)
	}
}

func TestObjectiveDefaultScale(t *testing.T) {
	r := Report{Finished: 1}
	r.Wait.Mean = 3600
	r.Utilization = 1
	if s := (Objective{W: 1}).Score(r); s != 1 {
		t.Fatalf("score = %v, want 1 (default scale)", s)
	}
}

// TestObjectiveRanksUnfinishedLast is the regression test for the
// degenerate-report bug: a report with zero finished jobs has
// Wait.Mean == 0 and used to score as the *best* scheduler. It must
// rank behind every scheduler that actually completed work.
func TestObjectiveRanksUnfinishedLast(t *testing.T) {
	dead := Report{Scheduler: "dead", Jobs: 50, Unfinished: 50}
	slow := Report{Scheduler: "slow", Finished: 50}
	slow.Wait.Mean = 20 * 3600 // dreadful, but it finished the work
	slow.Utilization = 0.2
	for _, ob := range []Objective{{W: 0}, {W: 0.5}, {W: 1}} {
		if !math.IsInf(ob.Score(dead), 1) {
			t.Fatalf("W=%v: unfinished-only report scored %v, want +Inf", ob.W, ob.Score(dead))
		}
		order := ob.Rank([]Report{dead, slow})
		if order[len(order)-1] != "dead" {
			t.Fatalf("W=%v: unfinished-only report not ranked last: %v", ob.W, order)
		}
	}
	// Two degenerate reports still order deterministically by name.
	dead2 := Report{Scheduler: "alsodead", Jobs: 5, Unfinished: 5}
	if order := (Objective{W: 0.5}).Rank([]Report{dead, dead2}); order[0] != "alsodead" {
		t.Fatalf("degenerate tie-break: %v", order)
	}
}

func TestTableRendering(t *testing.T) {
	r := Compute("easy", "lublin", sampleOutcomes(), 16)
	row := r.TableRow()
	if !strings.Contains(row, "easy") || !strings.Contains(row, "lublin") {
		t.Fatalf("row = %q", row)
	}
	header := TableHeader()
	for _, col := range []string{"bsld", "p50w", "p90w", "p99w"} {
		if !strings.Contains(header, col) {
			t.Fatalf("header missing %q: %s", col, header)
		}
	}
	// Header and row columns stay aligned: same field count.
	if h, rw := len(strings.Fields(strings.SplitN(header, "\n", 2)[0])), len(strings.Fields(row)); h != rw {
		t.Fatalf("header has %d columns, row has %d", h, rw)
	}
}

func TestSortedTableRows(t *testing.T) {
	byName := map[string][]Outcome{
		"site1": sampleOutcomes(),
		"site0": sampleOutcomes()[:1],
	}
	rows := SortedTableRows("local", byName, 16)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if !strings.Contains(rows[0], "site0") || !strings.Contains(rows[1], "site1") {
		t.Fatalf("rows not in sorted name order: %v", rows)
	}
	if rows[0] != Compute("local", "site0", byName["site0"], 16).TableRow() {
		t.Fatal("row diverges from the per-name Compute rendering")
	}
	if got := SortedTableRows("local", nil, 16); len(got) != 0 {
		t.Fatalf("empty map should render no rows: %v", got)
	}
}
