package metrics

import (
	"math"
	"strings"
	"testing"
)

func sampleOutcomes() []Outcome {
	return []Outcome{
		{JobID: 1, User: 1, Submit: 0, Start: 0, End: 100, Size: 4, Runtime: 100},
		{JobID: 2, User: 1, Submit: 10, Start: 110, End: 210, Size: 8, Runtime: 100},
		{JobID: 3, User: 2, Submit: 20, Start: 20, End: 25, Size: 1, Runtime: 5},
	}
}

func TestOutcomeDerived(t *testing.T) {
	o := sampleOutcomes()[1]
	if o.Wait() != 100 {
		t.Fatalf("wait = %d", o.Wait())
	}
	if o.Response() != 200 {
		t.Fatalf("response = %d", o.Response())
	}
	if bsld := o.BoundedSlowdown(); bsld != 2 {
		t.Fatalf("bsld = %v", bsld)
	}
}

func TestBoundedSlowdownFloor(t *testing.T) {
	// A 5-second job with a 5-second response: bounded slowdown uses
	// tau=10, so 5/10 clamps to 1.
	o := Outcome{Submit: 20, Start: 20, End: 25, Runtime: 5}
	if b := o.BoundedSlowdown(); b != 1 {
		t.Fatalf("bsld = %v, want 1 (floor)", b)
	}
	// Short job with long wait: tau prevents explosion.
	o = Outcome{Submit: 0, Start: 100, End: 105, Runtime: 5}
	if b := o.BoundedSlowdown(); b != 10.5 {
		t.Fatalf("bsld = %v, want 105/10", b)
	}
}

func TestUnstartedOutcome(t *testing.T) {
	o := Outcome{Submit: 0, Start: -1, End: -1}
	if o.Finished() || o.Wait() != -1 || o.Response() != -1 || o.BoundedSlowdown() != -1 {
		t.Fatal("unstarted job should report sentinel values")
	}
}

func TestComputeBasics(t *testing.T) {
	r := Compute("easy", "test", sampleOutcomes(), 16)
	if r.Jobs != 3 || r.Finished != 3 || r.Unfinished != 0 {
		t.Fatalf("counts wrong: %+v", r)
	}
	if r.Makespan != 210 {
		t.Fatalf("makespan = %d", r.Makespan)
	}
	// useful work = 400 + 800 + 5 = 1205; util = 1205/(210*16)
	want := 1205.0 / (210 * 16)
	if math.Abs(r.Utilization-want) > 1e-12 {
		t.Fatalf("utilization = %v, want %v", r.Utilization, want)
	}
	if math.Abs(r.Wait.Mean-(0+100+0)/3.0) > 1e-12 {
		t.Fatalf("mean wait = %v", r.Wait.Mean)
	}
	if r.Throughput <= 0 {
		t.Fatal("throughput must be positive")
	}
}

func TestComputeEmptyAndUnfinished(t *testing.T) {
	r := Compute("s", "w", nil, 16)
	if r.Jobs != 0 {
		t.Fatal("empty compute wrong")
	}
	r = Compute("s", "w", []Outcome{{Submit: 0, Start: -1, End: -1}}, 16)
	if r.Unfinished != 1 || r.Finished != 0 {
		t.Fatalf("unfinished counting wrong: %+v", r)
	}
}

func TestComputeMakespanSpansFinishedOnly(t *testing.T) {
	// Regression: firstSubmit used to span all outcomes (including
	// dropped/unfinished) while lastEnd spanned only finished ones, so
	// an early-submitted job that never finished inflated the makespan
	// and deflated utilization/throughput on partially-completed runs.
	outs := []Outcome{
		{JobID: 1, Submit: 0, Start: -1, End: -1}, // never started
		{JobID: 2, Submit: 1000, Start: 1000, End: 1100, Size: 4, Runtime: 100},
		{JobID: 3, Submit: 1050, Start: 1100, End: 1200, Size: 4, Runtime: 100},
	}
	r := Compute("s", "w", outs, 8)
	if r.Finished != 2 || r.Unfinished != 1 {
		t.Fatalf("counts wrong: %+v", r)
	}
	if r.Makespan != 200 {
		t.Fatalf("makespan = %d, want 200 (finished population only)", r.Makespan)
	}
	wantUtil := 800.0 / (200 * 8)
	if math.Abs(r.Utilization-wantUtil) > 1e-12 {
		t.Fatalf("utilization = %v, want %v", r.Utilization, wantUtil)
	}
	wantTput := 2.0 / (200.0 / 3600)
	if math.Abs(r.Throughput-wantTput) > 1e-9 {
		t.Fatalf("throughput = %v, want %v", r.Throughput, wantTput)
	}
}

func TestComputeRestartsAndLoss(t *testing.T) {
	outs := []Outcome{
		{Submit: 0, Start: 50, End: 150, Size: 4, Runtime: 100, Restarts: 2, LostWork: 300},
		{Submit: 0, Start: -1, End: -1, Dropped: true},
	}
	r := Compute("s", "w", outs, 8)
	if r.Restarts != 2 || r.LostWork != 300 || r.Dropped != 1 {
		t.Fatalf("loss accounting wrong: %+v", r)
	}
}

func TestPerUser(t *testing.T) {
	rs := PerUser("s", "w", sampleOutcomes(), 16)
	if len(rs) != 2 {
		t.Fatalf("users = %d", len(rs))
	}
	if rs[1].Finished != 2 || rs[2].Finished != 1 {
		t.Fatalf("per-user split wrong: %+v", rs)
	}
}

func TestPerClass(t *testing.T) {
	rs := PerClass("s", "w", sampleOutcomes(), 16)
	if rs["serial"].Finished != 1 {
		t.Fatalf("serial class wrong: %+v", rs)
	}
	if rs["small(2-8)"].Finished != 2 {
		t.Fatalf("small class wrong: %+v", rs)
	}
}

func TestSizeClass(t *testing.T) {
	cases := map[int]string{1: "serial", 2: "small(2-8)", 8: "small(2-8)",
		9: "medium(9-64)", 64: "medium(9-64)", 65: "large(>64)"}
	for in, want := range cases {
		if got := SizeClass(in); got != want {
			t.Errorf("SizeClass(%d) = %q", in, got)
		}
	}
}

func TestObjectiveScoreAndRank(t *testing.T) {
	// Scheduler A: low wait, low utilization. B: high wait, high util.
	a := Report{Scheduler: "A"}
	a.Wait.Mean = 360 // 0.1 normalized
	a.Utilization = 0.5
	b := Report{Scheduler: "B"}
	b.Wait.Mean = 7200 // 2.0 normalized
	b.Utilization = 0.95

	waitHeavy := Objective{W: 0.9}
	utilHeavy := Objective{W: 0.1}
	if waitHeavy.Score(a) >= waitHeavy.Score(b) {
		t.Fatal("wait-heavy objective should prefer A")
	}
	if utilHeavy.Score(a) <= utilHeavy.Score(b) {
		t.Fatal("util-heavy objective should prefer B")
	}
	// Ranking flips with the weight — the [41] effect.
	r1 := waitHeavy.Rank([]Report{a, b})
	r2 := utilHeavy.Rank([]Report{a, b})
	if r1[0] != "A" || r2[0] != "B" {
		t.Fatalf("rankings: %v vs %v", r1, r2)
	}
}

func TestObjectiveDefaultScale(t *testing.T) {
	r := Report{}
	r.Wait.Mean = 3600
	r.Utilization = 1
	if s := (Objective{W: 1}).Score(r); s != 1 {
		t.Fatalf("score = %v, want 1 (default scale)", s)
	}
}

func TestTableRendering(t *testing.T) {
	r := Compute("easy", "lublin", sampleOutcomes(), 16)
	row := r.TableRow()
	if !strings.Contains(row, "easy") || !strings.Contains(row, "lublin") {
		t.Fatalf("row = %q", row)
	}
	if !strings.Contains(TableHeader(), "bsld") {
		t.Fatal("header missing columns")
	}
}
