package des

import (
	"fmt"

	"parsched/internal/debugchecks"
)

// verifyHeap re-validates the complete binary-heap invariant on
// (time, priority, seq). It is called from every push and popHead
// when the debugchecks build tag is set; the O(n)-per-event cost is
// why it is not on by default.
func (e *Engine) verifyHeap() {
	for i := 1; i < len(e.queue); i++ {
		parent := (i - 1) / 2
		if less(e.queue[i], e.queue[parent]) {
			panic(fmt.Sprintf(
				"des: heap order violated at index %d: (%d,%d,%d) sorts before its parent (%d,%d,%d)",
				i,
				e.queue[i].time, e.queue[i].priority, e.queue[i].seq,
				e.queue[parent].time, e.queue[parent].priority, e.queue[parent].seq))
		}
	}
}

// verifyHandle checks that a handle's generation is not ahead of its
// event's: the engine only ever bumps generations on recycle, so a
// handle from the future means the handle crossed engines or its
// memory was corrupted. Stale handles (gen behind the event) are the
// normal, legal case and pass.
func verifyHandle(h Handle) {
	if h.ev != nil && h.gen > h.ev.gen {
		panic(fmt.Sprintf(
			"des: handle generation %d ahead of its event's %d (cross-engine or corrupted handle)",
			h.gen, h.ev.gen))
	}
}

// assertInvariants is the shared guard: a no-op unless the
// debugchecks build tag is set (Enabled is a constant, so the guarded
// calls compile away).
func (e *Engine) assertInvariants() {
	if debugchecks.Enabled {
		e.verifyHeap()
	}
}
