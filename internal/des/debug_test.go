//go:build debugchecks

package des

import (
	"strings"
	"testing"
)

// These tests only compile under -tags debugchecks: they corrupt
// internal state on purpose and require the invariant assertions to
// catch it. The CI debugchecks job runs them alongside the regular
// suite, which exercises the same assertions on the happy path.

func mustPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want one containing %q", substr)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v; want one containing %q", r, substr)
		}
	}()
	fn()
}

func TestDebugHeapOrderViolationCaught(t *testing.T) {
	e := NewEngine(0)
	for i := int64(1); i <= 7; i++ {
		e.At(i*10, PriorityArrival, func() {})
	}
	// Swap the root with a leaf: the next push must detect the
	// violated heap order.
	last := len(e.queue) - 1
	e.queue[0], e.queue[last] = e.queue[last], e.queue[0]
	mustPanic(t, "heap order violated", func() {
		e.At(100, PriorityArrival, func() {})
	})
}

func TestDebugForeignHandleCaught(t *testing.T) {
	e := NewEngine(0)
	h := e.At(10, PriorityArrival, func() {})
	// A generation from the future can only mean the handle crossed
	// engines or was corrupted; Cancel must refuse it loudly.
	h.gen = h.ev.gen + 5
	mustPanic(t, "handle generation", func() { e.Cancel(h) })
}

func TestDebugChecksPassOnHealthyEngine(t *testing.T) {
	e := NewEngine(4)
	fired := 0
	var hs []Handle
	for i := int64(20); i >= 1; i-- {
		hs = append(hs, e.At(i, PrioritySchedule, func() { fired++ }))
	}
	e.Cancel(hs[0]) // time 20, scheduled first
	e.Run()
	if fired != 19 {
		t.Fatalf("fired %d events, want 19", fired)
	}
}
