package des

import (
	"testing"
	"testing/quick"
)

func TestOrderingByTime(t *testing.T) {
	var e Engine
	var got []int
	e.At(30, PriorityArrival, func() { got = append(got, 3) })
	e.At(10, PriorityArrival, func() { got = append(got, 1) })
	e.At(20, PriorityArrival, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d", e.Now())
	}
}

func TestOrderingByPriority(t *testing.T) {
	var e Engine
	var got []string
	e.At(10, PriorityArrival, func() { got = append(got, "arrival") })
	e.At(10, PriorityFinish, func() { got = append(got, "finish") })
	e.At(10, PriorityOutage, func() { got = append(got, "outage") })
	e.At(10, PrioritySchedule, func() { got = append(got, "schedule") })
	e.Run()
	want := []string{"finish", "outage", "arrival", "schedule"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestOrderingBySeqWithinSameTimePriority(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, PriorityArrival, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("insertion order not preserved: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	var e Engine
	fired := false
	h := e.At(10, PriorityArrival, func() { fired = true })
	if h.Cancelled() {
		t.Fatal("fresh handle reports cancelled")
	}
	e.Cancel(h)
	if !h.Cancelled() {
		t.Fatal("cancel did not mark handle")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	var e Engine
	h := e.At(10, PriorityArrival, func() {})
	e.Cancel(h)
	e.Cancel(h) // no panic
	e.Cancel(Handle{})
	e.Run()
}

func TestScheduleFromWithinEvent(t *testing.T) {
	var e Engine
	var got []int64
	e.At(10, PriorityArrival, func() {
		got = append(got, e.Now())
		e.After(5, PriorityArrival, func() { got = append(got, e.Now()) })
	})
	e.Run()
	if len(got) != 2 || got[0] != 10 || got[1] != 15 {
		t.Fatalf("got %v", got)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	var e Engine
	e.At(100, PriorityArrival, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for past event")
			}
		}()
		e.At(50, PriorityArrival, func() {})
	})
	e.Run()
}

func TestNilActionPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil action")
		}
	}()
	e.At(1, PriorityArrival, nil)
}

func TestRunUntil(t *testing.T) {
	var e Engine
	var got []int64
	for _, tt := range []int64{10, 20, 30, 40} {
		tt := tt
		e.At(tt, PriorityArrival, func() { got = append(got, tt) })
	}
	e.RunUntil(25)
	if len(got) != 2 {
		t.Fatalf("fired %v", got)
	}
	if e.Now() != 25 {
		t.Fatalf("clock = %d, want 25", e.Now())
	}
	e.Run()
	if len(got) != 4 {
		t.Fatalf("remaining events lost: %v", got)
	}
}

func TestStop(t *testing.T) {
	var e Engine
	count := 0
	e.At(1, PriorityArrival, func() { count++; e.Stop() })
	e.At(2, PriorityArrival, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d after stop", count)
	}
	e.Run() // resumes
	if count != 2 {
		t.Fatalf("count = %d after resume", count)
	}
}

func TestProcessedCounter(t *testing.T) {
	var e Engine
	for i := 0; i < 5; i++ {
		e.At(int64(i), PriorityArrival, func() {})
	}
	h := e.At(9, PriorityArrival, func() {})
	e.Cancel(h)
	e.Run()
	if e.Processed != 5 {
		t.Fatalf("processed = %d, want 5 (cancelled events don't count)", e.Processed)
	}
}

func TestHeapProperty(t *testing.T) {
	// Property: any multiset of events fires in sorted (time, seq) order.
	f := func(times []uint16) bool {
		var e Engine
		var got []int64
		for _, tt := range times {
			tt := int64(tt)
			e.At(tt, PriorityArrival, func() { got = append(got, tt) })
		}
		e.Run()
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		return len(got) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPendingCount(t *testing.T) {
	var e Engine
	e.At(1, PriorityArrival, func() {})
	e.At(2, PriorityArrival, func() {})
	if e.Pending() != 2 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.Step()
	if e.Pending() != 1 {
		t.Fatalf("pending = %d after step", e.Pending())
	}
}

func TestRunUntilCancelledHead(t *testing.T) {
	// A cancelled event at the head of the queue must be drained, not
	// block RunUntil or count as the next timestamp.
	var e Engine
	var got []int64
	h1 := e.At(5, PriorityArrival, func() { got = append(got, 5) })
	e.At(10, PriorityArrival, func() { got = append(got, 10) })
	h3 := e.At(20, PriorityArrival, func() { got = append(got, 20) })
	e.Cancel(h1)
	e.Cancel(h3)
	e.RunUntil(15)
	if len(got) != 1 || got[0] != 10 {
		t.Fatalf("fired %v, want [10]", got)
	}
	if e.Now() != 15 {
		t.Fatalf("clock = %d, want 15", e.Now())
	}
	// The cancelled tail event must not fire either.
	e.Run()
	if len(got) != 1 {
		t.Fatalf("cancelled event fired late: %v", got)
	}
}

func TestRunUntilAllCancelled(t *testing.T) {
	var e Engine
	var hs []Handle
	for i := int64(1); i <= 4; i++ {
		hs = append(hs, e.At(i, PriorityArrival, func() { t.Error("cancelled event fired") }))
	}
	for _, h := range hs {
		e.Cancel(h)
	}
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("clock = %d, want 100", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d, want 0 (cancelled events drained)", e.Pending())
	}
}

func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	// After an event fires its struct may be recycled for a new event;
	// the old handle must become inert rather than cancel the newcomer.
	var e Engine
	h := e.At(1, PriorityArrival, func() {})
	e.Run()
	if !h.Cancelled() {
		t.Fatal("fired event's handle should report cancelled")
	}
	fired := false
	h2 := e.At(2, PriorityArrival, func() { fired = true })
	e.Cancel(h) // stale: must not touch the recycled struct
	if h2.Cancelled() {
		t.Fatal("stale cancel hit the recycled event")
	}
	e.Run()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

func TestStaleHandleAfterCancelledDrain(t *testing.T) {
	// Same as above, but the first event leaves the queue via the
	// cancelled-drain path instead of firing.
	var e Engine
	h := e.At(1, PriorityArrival, func() { t.Error("cancelled event fired") })
	e.Cancel(h)
	e.At(2, PriorityArrival, func() {})
	e.Run()
	count := 0
	h2 := e.At(3, PriorityArrival, func() { count++ })
	e.Cancel(h) // stale
	if h2.Cancelled() {
		t.Fatal("stale cancel hit the recycled event")
	}
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d", count)
	}
}

func TestNewEngineCapacityHint(t *testing.T) {
	e := NewEngine(64)
	var got []int64
	for i := int64(10); i > 0; i-- {
		i := i
		e.At(i, PriorityArrival, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != int64(i+1) {
			t.Fatalf("order = %v", got)
		}
	}
	if NewEngine(0).Step() {
		t.Fatal("empty engine stepped")
	}
}

func TestSteadyStateDoesNotAllocate(t *testing.T) {
	e := NewEngine(8)
	nop := func() {}
	for i := int64(0); i < 8; i++ {
		e.At(i, PriorityArrival, nop)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.Step()
		e.After(100, PriorityArrival, nop)
	})
	if allocs != 0 {
		t.Fatalf("steady-state allocs/op = %v, want 0", allocs)
	}
}
