// Package des is a small deterministic discrete-event simulation
// engine: a binary-heap event queue with integer-second timestamps and
// total, reproducible ordering. The calibration note for this
// reproduction observes there is no established DES framework in Go;
// this package is that substrate, sized for the job-scheduling
// simulations the paper's methodology requires (millions of events,
// no parallelism inside one simulation, bit-identical replays).
//
// Determinism contract: events fire in ascending (Time, Priority, Seq)
// order, where Seq is insertion order. Two runs that schedule the same
// events observe identical interleavings.
package des

import "container/heap"

// Priority classes order events that share a timestamp. Finishing jobs
// before processing arrivals at the same instant is the convention that
// lets a queued job start the moment another ends.
const (
	// PriorityFinish orders job completions first.
	PriorityFinish = 0
	// PriorityOutage orders resource changes after completions.
	PriorityOutage = 1
	// PriorityArrival orders job submissions after resource changes.
	PriorityArrival = 2
	// PrioritySchedule orders deferred scheduler passes last.
	PrioritySchedule = 3
)

// Handle identifies a scheduled event and allows cancellation.
type Handle struct {
	ev *event
}

// Cancelled reports whether the event was cancelled or already fired.
func (h Handle) Cancelled() bool { return h.ev == nil || h.ev.action == nil }

type event struct {
	time     int64
	priority int
	seq      uint64
	action   func()
	index    int // heap index, -1 once popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].priority != h[j].priority {
		return h[i].priority < h[j].priority
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x interface{}) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded event loop. The zero value is ready to
// use starting at time 0.
type Engine struct {
	now     int64
	seq     uint64
	queue   eventHeap
	stopped bool
	// Processed counts events fired since construction.
	Processed uint64
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() int64 { return e.now }

// At schedules action at time t with the given priority class.
// Scheduling in the past panics: that is always a simulation bug.
func (e *Engine) At(t int64, priority int, action func()) Handle {
	if t < e.now {
		panic("des: event scheduled in the past")
	}
	if action == nil {
		panic("des: nil action")
	}
	ev := &event{time: t, priority: priority, seq: e.seq, action: action}
	e.seq++
	heap.Push(&e.queue, ev)
	return Handle{ev: ev}
}

// After schedules action d seconds from now.
func (e *Engine) After(d int64, priority int, action func()) Handle {
	return e.At(e.now+d, priority, action)
}

// Cancel prevents a scheduled event from firing. Cancelling an already
// fired or cancelled event is a no-op.
func (e *Engine) Cancel(h Handle) {
	if h.ev != nil {
		h.ev.action = nil
	}
}

// Pending returns the number of events still queued (including
// cancelled events not yet drained).
func (e *Engine) Pending() int { return len(e.queue) }

// Step fires the next event. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.action == nil {
			continue // cancelled
		}
		e.now = ev.time
		action := ev.action
		ev.action = nil
		e.Processed++
		action()
		return true
	}
	return false
}

// Run fires events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil fires events with time <= t, then sets the clock to t.
func (e *Engine) RunUntil(t int64) {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 {
			break
		}
		// Peek.
		next := e.queue[0]
		if next.action == nil {
			heap.Pop(&e.queue)
			continue
		}
		if next.time > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Stop halts Run/RunUntil after the current event returns.
func (e *Engine) Stop() { e.stopped = true }
