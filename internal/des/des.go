// Package des is a small deterministic discrete-event simulation
// engine: a binary-heap event queue with integer-second timestamps and
// total, reproducible ordering. The calibration note for this
// reproduction observes there is no established DES framework in Go;
// this package is that substrate, sized for the job-scheduling
// simulations the paper's methodology requires (millions of events,
// no parallelism inside one simulation, bit-identical replays).
//
// Determinism contract: events fire in ascending (Time, Priority, Seq)
// order, where Seq is insertion order. Two runs that schedule the same
// events observe identical interleavings.
//
// The engine recycles event structs through a free list, so a
// simulation in steady state (one event scheduled per event fired)
// performs zero allocations per event. Handles carry a generation
// number so a stale handle can never cancel the recycled event's next
// occupant.
package des

import "parsched/internal/debugchecks"

// Priority classes order events that share a timestamp. Finishing jobs
// before processing arrivals at the same instant is the convention that
// lets a queued job start the moment another ends.
const (
	// PriorityFinish orders job completions first.
	PriorityFinish = 0
	// PriorityOutage orders resource changes after completions.
	PriorityOutage = 1
	// PriorityTraceArrival orders trace-driven job submissions after
	// resource changes but before reactive submissions. The replay
	// cursor (one self-rearming event walking the submit-sorted trace)
	// fires in this class so that a same-instant batch of trace
	// arrivals always precedes feedback resubmissions, exactly as the
	// old one-event-per-job materialization ordered them by insertion
	// sequence.
	PriorityTraceArrival = 2
	// PriorityArrival orders reactive job submissions (feedback
	// dependents, migrations) after trace arrivals.
	PriorityArrival = 3
	// PrioritySchedule orders deferred scheduler passes last.
	PrioritySchedule = 4
	// PrioritySample orders instrumentation snapshots after everything
	// else at the same instant, so a sample observes the post-event
	// state of the simulation.
	PrioritySample = 5
)

// Handle identifies a scheduled event and allows cancellation. A
// Handle remains safe to use after its event fires: the engine bumps
// the event's generation when recycling it, so stale handles become
// inert no-ops instead of touching whatever event reuses the struct.
type Handle struct {
	ev  *event
	gen uint64
}

// Cancelled reports whether the event was cancelled or already fired.
func (h Handle) Cancelled() bool {
	return h.ev == nil || h.gen != h.ev.gen || h.ev.action == nil
}

type event struct {
	time     int64
	priority int
	seq      uint64
	gen      uint64
	action   func()
}

// Engine is a single-threaded event loop. The zero value is ready to
// use starting at time 0; NewEngine pre-sizes the queue and event pool
// for a known event population.
type Engine struct {
	now     int64
	seq     uint64
	queue   []*event // binary min-heap on (time, priority, seq)
	pool    []*event // recycled event structs
	stopped bool
	// Processed counts events fired since construction.
	Processed uint64
}

// NewEngine returns an engine whose heap and event pool are pre-sized
// for capacityHint simultaneously pending events, so reaching that
// population performs no per-event allocation. A hint of 0 is the same
// as the zero value.
//
//schedlint:coldpath once-per-run constructor
func NewEngine(capacityHint int) *Engine {
	e := &Engine{}
	if capacityHint > 0 {
		e.queue = make([]*event, 0, capacityHint)
		block := make([]event, capacityHint)
		e.pool = make([]*event, capacityHint)
		for i := range block {
			e.pool[i] = &block[i]
		}
	}
	return e
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() int64 { return e.now }

// At schedules action at time t with the given priority class.
// Scheduling in the past panics: that is always a simulation bug.
func (e *Engine) At(t int64, priority int, action func()) Handle {
	if t < e.now {
		panic("des: event scheduled in the past")
	}
	if action == nil {
		panic("des: nil action")
	}
	ev := e.alloc()
	ev.time = t
	ev.priority = priority
	ev.seq = e.seq
	ev.action = action
	e.seq++
	e.push(ev)
	return Handle{ev: ev, gen: ev.gen}
}

// After schedules action d seconds from now.
func (e *Engine) After(d int64, priority int, action func()) Handle {
	return e.At(e.now+d, priority, action)
}

// Cancel prevents a scheduled event from firing. Cancelling an already
// fired or cancelled event is a no-op.
func (e *Engine) Cancel(h Handle) {
	if debugchecks.Enabled {
		verifyHandle(h)
	}
	if h.ev != nil && h.gen == h.ev.gen {
		h.ev.action = nil
	}
}

// Pending returns the number of events still queued (including
// cancelled events not yet drained).
func (e *Engine) Pending() int { return len(e.queue) }

// Live reports whether any uncancelled event is still queued. It
// drains cancelled events from the head of the queue as a side effect
// (the same funnel Step uses), so the answer is exact: recurring
// instrumentation events use it to decide whether to reschedule
// without keeping an otherwise-finished simulation alive.
func (e *Engine) Live() bool { return e.peek() != nil }

// Step fires the next event. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	ev := e.peek()
	if ev == nil {
		return false
	}
	e.popHead()
	e.now = ev.time
	action := ev.action
	e.recycle(ev)
	e.Processed++
	action()
	return true
}

// Run fires events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil fires events with time <= t, then sets the clock to t.
func (e *Engine) RunUntil(t int64) {
	e.stopped = false
	for !e.stopped {
		next := e.peek()
		if next == nil || next.time > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Stop halts Run/RunUntil after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// peek returns the next live event without removing it, draining (and
// recycling) cancelled events from the head of the queue. It is the
// single skip-cancelled funnel shared by Step and RunUntil.
func (e *Engine) peek() *event {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if ev.action != nil {
			return ev
		}
		e.popHead()
		e.recycle(ev)
	}
	return nil
}

// alloc takes an event struct from the pool, or allocates one.
func (e *Engine) alloc() *event {
	if n := len(e.pool); n > 0 {
		ev := e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
		return ev
	}
	return &event{}
}

// recycle returns a popped event to the pool. Bumping the generation
// invalidates every outstanding Handle to it.
func (e *Engine) recycle(ev *event) {
	ev.action = nil
	ev.gen++
	e.pool = append(e.pool, ev)
}

// ---------------------------------------------------------------------
// Hand-rolled binary min-heap on (time, priority, seq). Inlined rather
// than container/heap to keep the per-event path free of interface
// conversions and indirect calls.

func less(a, b *event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev *event) {
	e.queue = append(e.queue, ev)
	i := len(e.queue) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less(e.queue[i], e.queue[parent]) {
			break
		}
		e.queue[i], e.queue[parent] = e.queue[parent], e.queue[i]
		i = parent
	}
	e.assertInvariants()
}

// popHead removes the root of the heap.
func (e *Engine) popHead() {
	n := len(e.queue) - 1
	e.queue[0] = e.queue[n]
	e.queue[n] = nil
	e.queue = e.queue[:n]
	if n == 0 {
		return
	}
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && less(e.queue[right], e.queue[left]) {
			smallest = right
		}
		if !less(e.queue[smallest], e.queue[i]) {
			break
		}
		e.queue[i], e.queue[smallest] = e.queue[smallest], e.queue[i]
		i = smallest
	}
	e.assertInvariants()
}
