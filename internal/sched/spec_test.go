package sched

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

func TestParseCanonicalForms(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"easy", Spec{Family: "easy"}},
		{"  easy  ", Spec{Family: "easy"}},
		{"easy()", Spec{Family: "easy"}},
		{"easy(window)", Spec{Family: "easy", Params: map[string]string{"window": "true"}}},
		{"easy(window=true)", Spec{Family: "easy", Params: map[string]string{"window": "true"}}},
		{"easy(reserve=2, window)", Spec{Family: "easy",
			Params: map[string]string{"reserve": "2", "window": "true"}}},
		{"gang(mpl=5)", Spec{Family: "gang", Params: map[string]string{"mpl": "5"}}},
		{"fcfs(drain)", Spec{Family: "fcfs", Params: map[string]string{"drain": "true"}}},
		{"sjf(mold, moldmax=2.5)", Spec{Family: "sjf",
			Params: map[string]string{"mold": "true", "moldmax": "2.5"}}},
		// Legacy names resolve to canonical specs.
		{"easy+win", Spec{Family: "easy", Params: map[string]string{"window": "true"}}},
		{"easy+mold", Spec{Family: "easy", Params: map[string]string{"mold": "true"}}},
		{"cons+win", Spec{Family: "cons", Params: map[string]string{"window": "true"}}},
		{"gang2", Spec{Family: "gang", Params: map[string]string{"mpl": "2"}}},
		{"gang5", Spec{Family: "gang", Params: map[string]string{"mpl": "5"}}},
		// Legacy names compose with extra parameters.
		{"easy+win(mold)", Spec{Family: "easy",
			Params: map[string]string{"window": "true", "mold": "true"}}},
		{"gang5(mold)", Spec{Family: "gang",
			Params: map[string]string{"mpl": "5", "mold": "true"}}},
		// Normalization: default-valued parameters vanish and values
		// render canonically, so every spelling of the same scheduler
		// is one Spec.
		{"gang3", Spec{Family: "gang"}},
		{"gang(mpl=3)", Spec{Family: "gang"}},
		{"easy(reserve=1)", Spec{Family: "easy"}},
		{"fcfs(drain=0)", Spec{Family: "fcfs"}},
		{"easy(window=1)", Spec{Family: "easy", Params: map[string]string{"window": "true"}}},
		{"sjf(moldmax=4.0)", Spec{Family: "sjf"}},
		{"gang(mpl=05)", Spec{Family: "gang", Params: map[string]string{"mpl": "5"}}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in      string
		substrs []string
	}{
		{"", []string{"empty scheduler spec"}},
		{"bogus", []string{"unknown scheduler", "easy"}}, // lists the catalogue
		{"easy(frobnicate)", []string{`no parameter "frobnicate"`, "reserve"}},
		{"gang(mpl=abc)", []string{`"mpl"`, "int value required", `"abc"`}},
		{"easy(window=7q)", []string{`"window"`, "bool value required"}},
		{"gang(mpl=0.5)", []string{"int value required"}},
		{"sjf(moldmax=big)", []string{"float value required"}},
		{"easy(window", []string{"missing closing parenthesis"}},
		{"easy(window, window)", []string{"duplicate parameter"}},
		{"easy(reserve=1, reserve=1)", []string{"duplicate parameter"}},
		{"easy+win(window)", []string{"duplicate parameter"}},
		{"gang5(mpl=2)", []string{"duplicate parameter"}},
		{"easy(,)", []string{"empty parameter"}},
		{"easy(a b=c)", []string{"malformed parameter"}},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c.in)
			continue
		}
		for _, sub := range c.substrs {
			if !strings.Contains(err.Error(), sub) {
				t.Errorf("Parse(%q) error %q missing %q", c.in, err, sub)
			}
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Spec{Family: "nope"}); err == nil ||
		!strings.Contains(err.Error(), "unknown scheduler") {
		t.Errorf("Build(unknown family) = %v", err)
	}
	// Build re-validates hand-constructed specs.
	if _, err := Build(Spec{Family: "gang", Params: map[string]string{"mpl": "x"}}); err == nil {
		t.Error("Build with ill-typed param accepted")
	}
	if _, err := Build(Spec{Family: "easy", Params: map[string]string{"nope": "1"}}); err == nil {
		t.Error("Build with unknown param accepted")
	}
	if _, err := New("gang(mpl=0)"); err == nil || !strings.Contains(err.Error(), "mpl must be >= 1") {
		t.Errorf("gang(mpl=0) = %v", err)
	}
	if _, err := New("easy(reserve=0)"); err == nil || !strings.Contains(err.Error(), "reserve must be >= 1") {
		t.Errorf("easy(reserve=0) = %v", err)
	}
	if _, err := New("easy(moldmax=2)"); err == nil || !strings.Contains(err.Error(), "moldmax") {
		t.Errorf("moldmax without mold = %v", err)
	}
}

// TestRoundTripProperty: randomized well-formed spec strings — in any
// legal spelling, including default values and alternate bool/float
// renderings — parse to a Spec whose String() re-parses to the same
// Spec, with no parameter left at its declared default.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fams := Families()
	value := func(k ParamKind) string {
		switch k {
		case BoolParam:
			return []string{"true", "false", "1", "0", "T", "F"}[rng.Intn(6)]
		case IntParam:
			return strconv.Itoa(rng.Intn(9))
		default:
			return []string{"0.5", "2", "2.5", "4", "4.0"}[rng.Intn(5)]
		}
	}
	for i := 0; i < 500; i++ {
		f := fams[rng.Intn(len(fams))]
		var args []string
		for _, p := range f.Params {
			if rng.Intn(2) == 0 {
				continue
			}
			args = append(args, p.Name+"="+value(p.Kind))
		}
		in := f.Name
		if len(args) > 0 {
			in += "(" + strings.Join(args, ", ") + ")"
		}
		sp, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		// Normalization invariant: no stored parameter equals its
		// declared default.
		for name, raw := range sp.Params {
			canon, isDefault, err := f.param(name).canon(raw)
			if err != nil || isDefault || canon != raw {
				t.Fatalf("Parse(%q) stored non-canonical %s=%q (canon %q, default %v, err %v)",
					in, name, raw, canon, isDefault, err)
			}
		}
		back, err := Parse(sp.String())
		if err != nil {
			t.Fatalf("Parse(String(%q) = %q): %v", in, sp.String(), err)
		}
		if !reflect.DeepEqual(back, sp) {
			t.Fatalf("round trip %q via %q: got %+v, want %+v", in, sp.String(), back, sp)
		}
		if back.String() != sp.String() {
			t.Fatalf("String not stable: %q vs %q", back.String(), sp.String())
		}
	}
}

func TestSpecJSON(t *testing.T) {
	sp := MustParse("easy(reserve=2, window)")
	data, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `"easy(reserve=2, window)"` {
		t.Fatalf("marshal: %s", data)
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, sp) {
		t.Fatalf("json round trip: %+v != %+v", back, sp)
	}
	if err := json.Unmarshal([]byte(`"no-such-family"`), &back); err == nil {
		t.Error("unmarshal of unknown family accepted")
	}
	if _, err := json.Marshal(Spec{}); err == nil {
		t.Error("marshal of zero Spec accepted")
	}
}

func TestSplitList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"easy,cons", []string{"easy", "cons"}},
		{"easy(reserve=2, window),gang(mpl=5)", []string{"easy(reserve=2, window)", "gang(mpl=5)"}},
		{" easy , ,cons ", []string{"easy", "cons"}},
		{"", nil},
		{"gang3", []string{"gang3"}},
	}
	for _, c := range cases {
		if got := SplitList(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitList(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// FuzzParseSpec: anything that parses must render canonically and
// re-parse to the same Spec, and must never panic Parse or Build.
func FuzzParseSpec(f *testing.F) {
	for _, name := range Names() {
		f.Add(name)
	}
	f.Add("easy(reserve=2, window)")
	f.Add("gang(mpl=5)")
	f.Add("sjf(mold, moldmax=2.5)")
	f.Add("fcfs(drain)")
	f.Add("easy(window=false)")
	f.Fuzz(func(t *testing.T, in string) {
		sp, err := Parse(in)
		if err != nil {
			return
		}
		s := sp.String()
		back, err := Parse(s)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", s, in, err)
		}
		if !reflect.DeepEqual(back, sp) {
			t.Fatalf("round trip of %q via %q: %+v != %+v", in, s, back, sp)
		}
		// Build must never panic; family factories may still reject
		// out-of-range values (e.g. mpl=0) with an error.
		_, _ = Build(sp)
	})
}
