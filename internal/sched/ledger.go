package sched

import (
	"fmt"

	"parsched/internal/core"
	"parsched/internal/debugchecks"
)

// Ledger start sentinels. Real reservations record their start time
// (>= the pass's now); the sentinels record the two ways a walked job
// can end a pass without one.
const (
	// ledgerHeld marks a job EarliestFit rejected outright (bigger than
	// the possibly-degraded machine). EarliestFit returns -1 for these,
	// so recorded starts can be compared without translation.
	ledgerHeld = int64(-1)
	// ledgerSwept marks a job beyond the reservation depth that was
	// offered immediate backfill and rejected.
	ledgerSwept = int64(-2)
)

// ledgerEntry is one walked job's outcome: identity, the inputs the
// decision depended on (estimate and size — both frozen after submit;
// the moldable adapter molds before the job ever reaches a queue), and
// the start it was promised (or a sentinel).
type ledgerEntry struct {
	id    int64
	est   int64
	size  int
	start int64
}

// resvLedger makes conservative-style passes resumable. After a pass
// that started nothing, it persists the post-reservation profile
// (times/frees snapshot) and the per-job reservation records, keyed by
// the profile's build stamp. The next pass resumes the walk at the
// first unwalked queue position — typically just-submitted jobs at the
// tail — instead of re-deriving every reservation, when it can prove
// the recorded walk would replay bit-identically:
//
//   - the profile base is a cache hit (same Stamp(), unmutated): the
//     running set, free count, and window set are unchanged and no base
//     breakpoint has fallen due;
//   - no recorded reservation has fallen due (now < minStart): every
//     EarliestFit in the prefix re-answers identically over the aged
//     profile, because a larger `after` only tightens the initial-fit
//     condition and the scan past the first too-full segment is
//     identical — and the sentinels only harden (FitsAt and fits are
//     monotone false-ward as now advances over a fixed profile);
//   - the walked queue is a strict prefix of the current queue
//     (unchanged queueGen — the owning scheduler bumps it on every
//     removal — plus the submit-epoch length check, or an element-wise
//     ID comparison for contexts without the stamp).
//
// A pass that starts a job commits nothing: the start bumps the
// context's run epoch, so the next build re-stamps anyway and the walk
// re-derives from scratch. That also means a committed snapshot never
// contains a started job's Take — only base content (every breakpoint
// > now while the stamp holds) and reservation carves (>= minStart >
// now), so restoring it under a later now preserves the breakpoint
// ordering invariant.
type resvLedger struct {
	// ok is the committed-and-valid flag; any doubt clears it.
	ok bool
	// stamp is the profile build stamp the snapshot is keyed by.
	stamp uint64
	// mut mirrors the profile's mutated flag at commit, restored with
	// the snapshot so downstream stamp+mutated memos see the same state
	// a from-scratch pass would have left.
	mut bool
	// minStart is the earliest recorded reservation start; the ledger
	// self-invalidates once now reaches it.
	minStart int64
	// entries are the walked jobs, in queue (arrival) order.
	entries []ledgerEntry
	// times/frees snapshot the post-reservation profile.
	times []int64
	frees []int
	// queueGen mirrors the owning scheduler's removal counter.
	queueGen uint64
	// subEpoch/subOK record the context's submit stamp at commit, when
	// it offers one (QueueEpoch).
	subEpoch uint64
	subOK    bool
}

// beginPass resets the ledger for a from-scratch walk. The pass records
// entries as it goes and commits at the end (or poisons the ledger if
// it started anything).
func (l *resvLedger) beginPass() {
	l.ok = false
	l.entries = l.entries[:0]
	l.minStart = maxFuture
}

// add records one walked job's outcome.
func (l *resvLedger) add(j *core.Job, est int64, start int64) {
	l.entries = append(l.entries, ledgerEntry{id: j.ID, est: est, size: j.Size, start: start}) //schedlint:allow allocfree amortized doubling of the reused ledger entries, not a per-pass allocation
	if start >= 0 && start < l.minStart {
		l.minStart = start
	}
}

// commit persists the post-pass profile and stamps. Call only after a
// pass that started nothing (the caller checks its removal counter).
func (l *resvLedger) commit(ctx Context, p *Profile, queueGen uint64) {
	l.times = append(l.times[:0], p.times...) //schedlint:allow allocfree amortized doubling of the reused ledger snapshot, not a per-pass allocation
	l.frees = append(l.frees[:0], p.frees...) //schedlint:allow allocfree amortized doubling of the reused ledger snapshot, not a per-pass allocation
	l.stamp = p.Stamp()
	l.mut = p.Mutated()
	l.queueGen = queueGen
	if qe, hasEpoch := ctx.(QueueEpoch); hasEpoch {
		l.subEpoch, l.subOK = qe.SubmitEpoch(), true
	} else {
		l.subOK = false
	}
	l.ok = true
}

// resumable reports whether the recorded walk is provably a replay
// prefix of the pass about to run. p must be the profile the caller
// just built for this pass.
func (l *resvLedger) resumable(ctx Context, p *Profile, now int64, queue []*core.Job, queueGen uint64) bool {
	if !l.ok || l.stamp != p.Stamp() || p.Mutated() ||
		l.queueGen != queueGen || now >= l.minStart || len(queue) < len(l.entries) {
		return false
	}
	if qe, hasEpoch := ctx.(QueueEpoch); hasEpoch {
		// Every dispatch appended one job to the tail and the unchanged
		// queueGen says none were removed, so the prefix is intact iff
		// deliveries since commit account exactly for the length growth.
		return l.subOK && qe.SubmitEpoch()-l.subEpoch == uint64(len(queue)-len(l.entries))
	}
	if l.subOK {
		return false // stamped commit, unstamped context: never mix schemes
	}
	for i := range l.entries {
		if queue[i].ID != l.entries[i].id {
			return false
		}
	}
	return true
}

// restore overwrites p with the committed snapshot, re-anchored at now.
// Breakpoint ordering holds because every snapshot breakpoint is > now
// while the ledger is resumable (see the type comment).
func (l *resvLedger) restore(p *Profile, now int64) {
	p.times = append(p.times[:0], l.times...)
	p.frees = append(p.frees[:0], l.frees...)
	p.times[0] = now
	p.mutated = l.mut
	p.pmValid = false
}

// verifyResume is the debugchecks dual-run: before a resumed walk, it
// re-executes the recorded prefix from scratch against a fresh profile
// and panics on the first divergence — wrong job, wrong inputs, a
// reservation that would land elsewhere, a swept job that would now
// backfill, or a restored snapshot that differs from the replayed one.
// reserve is the depth boundary the recording pass used (len(entries)
// or more for conservative walks, the EASY depth for deep walks).
//
// The call sits behind debugchecks.Enabled at every call site, so
// release builds carry no trace of it.
func (l *resvLedger) verifyResume(ctx Context, windows bool, queue []*core.Job, reserve int, now int64) {
	if !debugchecks.Enabled {
		return
	}
	shadow := &Profile{}
	if windows {
		BuildProfileInto(shadow, ctx)
	} else {
		BuildRunningProfileInto(shadow, ctx)
	}
	for i, e := range l.entries {
		if i >= len(queue) || queue[i].ID != e.id {
			panic(fmt.Sprintf("sched: ledger dual-run: entry %d records job %d, queue disagrees", i, e.id))
		}
		j := queue[i]
		est := ctx.Estimate(j)
		if est != e.est || j.Size != e.size {
			panic(fmt.Sprintf("sched: ledger dual-run: job %d inputs changed (est %d->%d, size %d->%d)",
				e.id, e.est, est, e.size, j.Size))
		}
		if i < reserve {
			start := shadow.EarliestFit(now, est, j.Size)
			if start != e.start {
				panic(fmt.Sprintf("sched: ledger dual-run: job %d reservation diverged (recorded %d, from-scratch %d)",
					e.id, e.start, start))
			}
			if start == now && ctx.CanStart(j, j.Size) {
				panic(fmt.Sprintf("sched: ledger dual-run: job %d would start now on a from-scratch pass", e.id))
			}
			if start >= 0 {
				shadow.Take(start, start+est, j.Size)
			}
			continue
		}
		if e.start != ledgerSwept {
			panic(fmt.Sprintf("sched: ledger dual-run: job %d beyond depth %d records start %d, want swept",
				e.id, reserve, e.start))
		}
		if ctx.CanStart(j, j.Size) && shadow.FitsAt(now, est, j.Size) {
			panic(fmt.Sprintf("sched: ledger dual-run: swept job %d would backfill on a from-scratch pass", e.id))
		}
	}
	// The replayed prefix must land exactly on the snapshot the resumed
	// walk restores (snapshot index 0 is the commit-time now, re-anchored
	// by restore, so it is exempt).
	if len(shadow.times) != len(l.times) {
		panic(fmt.Sprintf("sched: ledger dual-run: snapshot has %d segments, from-scratch replay %d",
			len(l.times), len(shadow.times)))
	}
	for i := range shadow.times {
		if i > 0 && shadow.times[i] != l.times[i] {
			panic(fmt.Sprintf("sched: ledger dual-run: snapshot time[%d]=%d, from-scratch replay %d",
				i, l.times[i], shadow.times[i]))
		}
		if shadow.frees[i] != l.frees[i] {
			panic(fmt.Sprintf("sched: ledger dual-run: snapshot free[%d]=%d, from-scratch replay %d",
				i, l.frees[i], shadow.frees[i]))
		}
	}
}
