package sched

import (
	"testing"
	"testing/quick"

	"parsched/internal/stats"
)

func TestProfileFlat(t *testing.T) {
	p := NewProfile(0, 16)
	if p.FreeAt(0) != 16 || p.FreeAt(1000000) != 16 {
		t.Fatal("flat profile wrong")
	}
	if s := p.EarliestFit(0, 100, 16); s != 0 {
		t.Fatalf("fit = %d, want 0", s)
	}
	if s := p.EarliestFit(0, 100, 17); s != -1 {
		t.Fatalf("oversized fit = %d, want -1", s)
	}
}

func TestProfileTake(t *testing.T) {
	p := NewProfile(0, 16)
	p.Take(10, 20, 8)
	if p.FreeAt(5) != 16 || p.FreeAt(10) != 8 || p.FreeAt(19) != 8 || p.FreeAt(20) != 16 {
		t.Fatalf("take wrong: %v %v %v %v", p.FreeAt(5), p.FreeAt(10), p.FreeAt(19), p.FreeAt(20))
	}
}

func TestProfileRelease(t *testing.T) {
	p := NewProfile(0, 8)
	p.Release(100, 8)
	if p.FreeAt(50) != 8 || p.FreeAt(100) != 16 || p.FreeAt(1e9) != 16 {
		t.Fatal("release wrong")
	}
}

func TestProfileEarliestFitAroundHole(t *testing.T) {
	p := NewProfile(0, 16)
	p.Take(100, 200, 12) // only 4 free during [100,200)
	// An 8-proc 50s job fits now.
	if s := p.EarliestFit(0, 50, 8); s != 0 {
		t.Fatalf("fit = %d", s)
	}
	// An 8-proc job needing 150s starting at 0 would overlap the hole.
	if s := p.EarliestFit(0, 150, 8); s != 200 {
		t.Fatalf("fit = %d, want 200", s)
	}
	// A 4-proc job fits right through the hole.
	if s := p.EarliestFit(0, 500, 4); s != 0 {
		t.Fatalf("small fit = %d, want 0", s)
	}
	// After = 120: a 50s 8-proc job must wait for 200.
	if s := p.EarliestFit(120, 50, 8); s != 200 {
		t.Fatalf("fit after 120 = %d, want 200", s)
	}
}

func TestProfileAdjacentHoles(t *testing.T) {
	p := NewProfile(0, 16)
	p.Take(0, 100, 16)
	p.Take(100, 200, 8)
	if s := p.EarliestFit(0, 10, 8); s != 100 {
		t.Fatalf("fit = %d, want 100", s)
	}
	if s := p.EarliestFit(0, 10, 9); s != 200 {
		t.Fatalf("fit = %d, want 200", s)
	}
}

func TestProfileNegativeTransient(t *testing.T) {
	p := NewProfile(0, 4)
	p.Take(10, 20, 8) // more than capacity: fine, just no hole
	if p.FreeAt(15) != -4 {
		t.Fatalf("free = %d, want -4", p.FreeAt(15))
	}
	if s := p.EarliestFit(0, 100, 1); s != 20 {
		t.Fatalf("fit = %d, want 20", s)
	}
}

func TestProfileFitProperty(t *testing.T) {
	// Property: the returned start really is feasible, and no earlier
	// breakpoint start is.
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		p := NewProfile(0, 64)
		for i := 0; i < 10; i++ {
			s := int64(rng.Intn(1000))
			e := s + 1 + int64(rng.Intn(500))
			p.Take(s, e, 1+rng.Intn(40))
		}
		dur := int64(1 + rng.Intn(300))
		procs := 1 + rng.Intn(64)
		start := p.EarliestFit(0, dur, procs)
		if start < 0 {
			return procs > 64
		}
		// Feasibility at the returned start.
		if !p.fits(start, start+dur, procs) {
			return false
		}
		// No earlier feasible candidate (check a grid).
		for s := int64(0); s < start; s += 7 {
			if p.fits(s, s+dur, procs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildProfileFromContext(t *testing.T) {
	m := newMock(16)
	// A running job: 8 procs until t=100.
	m.free = 8
	m.running = []RunningJob{{Job: job(1, 0, 8, 100), Size: 8, Start: 0, ExpEnd: 100}}
	// A future outage takes 4 procs over [50, 150).
	m.windows = []Window{{Start: 50, End: 150, Procs: 4}}
	p := BuildProfile(m)
	if p.FreeAt(0) != 8 {
		t.Fatalf("free now = %d", p.FreeAt(0))
	}
	if p.FreeAt(60) != 4 {
		t.Fatalf("free at 60 = %d", p.FreeAt(60))
	}
	if p.FreeAt(120) != 12 { // job back (+8), outage still on (-4)
		t.Fatalf("free at 120 = %d", p.FreeAt(120))
	}
	if p.FreeAt(200) != 16 {
		t.Fatalf("free at 200 = %d", p.FreeAt(200))
	}
}

func TestBuildProfileOngoingOutage(t *testing.T) {
	m := newMock(16)
	m.now = 100
	m.free = 12 // 4 nodes already down
	m.windows = []Window{{Start: 50, End: 200, Procs: 4}}
	p := BuildProfile(m)
	if p.FreeAt(100) != 12 {
		t.Fatalf("free now = %d (must not double-count ongoing outage)", p.FreeAt(100))
	}
	if p.FreeAt(200) != 16 {
		t.Fatalf("free after outage = %d", p.FreeAt(200))
	}
}

func TestBuildProfileOverdueJob(t *testing.T) {
	m := newMock(8)
	m.now = 500
	m.free = 0
	m.running = []RunningJob{{Job: job(1, 0, 8, 100), Size: 8, Start: 0, ExpEnd: 100}}
	p := BuildProfile(m)
	// Overdue job treated as releasing at now+1.
	if p.FreeAt(500) != 0 || p.FreeAt(501) != 8 {
		t.Fatalf("overdue handling wrong: %d %d", p.FreeAt(500), p.FreeAt(501))
	}
}
