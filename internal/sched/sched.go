// Package sched implements the machine-scheduler families the paper's
// evaluation methodology targets: FCFS and priority-queue variants
// (SJF, LJF, LXF, first-fit), EASY and conservative backfilling,
// gang scheduling (time slicing with an Ousterhout matrix), plus
// reservation-aware and outage-aware variants of the backfillers and a
// moldable-job adapter.
//
// Schedulers are event-driven plugins: the simulator (internal/sim)
// owns time and resources and invokes a Scheduler on job submission,
// job completion, and node-availability changes. The Scheduler reacts
// by starting jobs through the Context. This mirrors the paper's
// machine-scheduler definition: "As input they receive characteristic
// data from a stream of independent jobs ... Machine schedulers must
// deal with the on-line character of job submission and with a
// potential inaccuracy of job submission data, like the estimated
// execution time of a job."
package sched

import "parsched/internal/core"

// RunningJob is the scheduler-visible state of a started job.
type RunningJob struct {
	Job *core.Job
	// Size is the allocated processor count (differs from Job.Size for
	// moldable starts).
	Size int
	// Start is when the job began.
	Start int64
	// ExpEnd is the expected completion (start + the estimate the
	// scheduler was given). The actual completion may be earlier; a
	// running job whose ExpEnd has passed is "overdue" and schedulers
	// must treat its release time as unknown-but-imminent.
	ExpEnd int64
}

// Window is a known future (or ongoing) capacity reduction: an
// announced outage or an accepted advance reservation.
type Window struct {
	Start, End int64
	Procs      int // processors unavailable during the window
}

// Reservation is an advance reservation request: Procs processors,
// dedicated, over [Start, End). Reservations arrive from co-allocating
// meta-schedulers (paper Section 3). Announced is when the request
// became known to the machine scheduler (0 = before the workload
// started).
type Reservation struct {
	ID         int64
	Procs      int
	Start, End int64
	Announced  int64
}

// Context is the machine abstraction a scheduler manipulates. All
// methods are non-blocking and valid only during a callback.
//
// Slices returned by Running, Outages, and Reservations are reused
// buffers owned by the Context: they are valid only until the next
// call of the same method, so schedulers must consume them within the
// current callback and never retain them.
type Context interface {
	// Now is the current time in seconds.
	Now() int64
	// TotalProcs is the number of currently functional processors.
	TotalProcs() int
	// FreeProcs is the number of free functional processors.
	FreeProcs() int
	// CanStart reports whether j could start right now on size
	// processors (capacity and per-node memory both satisfiable).
	CanStart(j *core.Job, size int) bool
	// Start begins j now on size processors. It panics if CanStart is
	// false — schedulers must check first.
	Start(j *core.Job, size int)
	// Running lists running jobs sorted by ascending ExpEnd. The
	// returned slice is only valid until the next Running call.
	Running() []RunningJob
	// Estimate returns the runtime estimate the scheduler is allowed
	// to see for j (the simulator may inject estimate error here).
	Estimate(j *core.Job) int64
	// Outages lists announced capacity-reduction windows that have not
	// ended (known maintenance, detected ongoing failures).
	Outages() []Window
	// Reservations lists accepted advance reservations that have not
	// ended.
	Reservations() []Window
	// StartShared begins j now in time-shared mode at the given rate
	// (fraction of full speed) without claiming dedicated processors.
	// Used by the gang scheduler, which does its own space accounting.
	StartShared(j *core.Job, rate float64)
	// SetRate changes the execution rate of a running shared job.
	SetRate(j *core.Job, rate float64)
}

// WindowEpoch is optionally implemented by Contexts that can stamp
// their window sets: the stamp advances whenever Outages() or
// Reservations() would return different contents, so equal stamps let
// profile builders reuse window-derived state without re-reading (or
// re-comparing) the sets. Contexts without it fall back to element-wise
// comparison.
type WindowEpoch interface {
	WindowsEpoch() uint64
}

// RunEpoch is the running-set analog of WindowEpoch: the stamp advances
// whenever Running() would return different contents (a job starts or
// terminates — the scheduler-visible ExpEnd is fixed at start time), so
// equal stamps let profile builders skip both the Running() read and the
// element-wise comparison against their snapshot.
type RunEpoch interface {
	RunningEpoch() uint64
}

// QueueEpoch is optionally implemented by Contexts that can stamp job
// deliveries: the stamp advances by exactly one for every OnSubmit the
// context dispatches (fresh submittals and kill-requeues alike). Since
// a scheduler appends each delivered job to its queue tail, a ledger
// that recorded the stamp alongside its queue length can verify "the
// queue I walked is a strict prefix of the queue I see" in O(1):
// deliveries-since-commit must equal the length growth, provided the
// scheduler separately knows nothing was removed (it owns removals —
// they only happen when it starts a job). Contexts without the stamp
// fall back to an element-wise ID comparison of the prefix.
type QueueEpoch interface {
	SubmitEpoch() uint64
}

// Scheduler is an online machine scheduler.
type Scheduler interface {
	// Name identifies the scheduler in tables.
	Name() string
	// OnSubmit is invoked when a job arrives.
	OnSubmit(ctx Context, j *core.Job)
	// OnFinish is invoked when a job completes or is killed.
	OnFinish(ctx Context, j *core.Job)
	// OnChange is invoked when capacity changes for any other reason:
	// nodes fail or recover, reservations are accepted, begin, or end.
	OnChange(ctx Context)
}

// QueueReporter is implemented by schedulers that expose their backlog
// (used by the simulator to detect never-started jobs and by metrics).
type QueueReporter interface {
	Queued() []*core.Job
}

// estimateOf returns the scheduler-visible expected end of a running
// job, clamped to be in the future (overdue jobs are treated as
// releasing one second from now — the standard handling for estimate
// overruns).
func overdueClamp(now, expEnd int64) int64 {
	if expEnd <= now {
		return now + 1
	}
	return expEnd
}
