package sched

import (
	"sort"

	"parsched/internal/core"
)

// Order is a queue-ordering policy for QueueScheduler: it returns true
// when a should run before b. now is the current time (dynamic
// priorities like expansion factor need it).
type Order func(ctx Context, now int64, a, b *core.Job) bool

// QueueScheduler is the family of non-backfilling queue schedulers:
// jobs wait in a queue ordered by a policy; the scheduler starts jobs
// from the head while they fit. With Bypass (first-fit), jobs behind a
// blocked head may start if they fit, which improves utilization at the
// cost of possible starvation.
type QueueScheduler struct {
	name   string
	order  Order
	bypass bool
	// DrainAware makes the scheduler refuse to start jobs whose
	// estimated end crosses the start of a known full-machine outage
	// (scheduling "such that the system is drained up to the outage").
	DrainAware bool

	queue []*core.Job
}

// The queue-scheduler families self-register: one family per ordering
// policy, each accepting the drain flag (plus the shared decorator
// parameters Register appends).
func init() {
	queueFamilies := []struct {
		name string
		doc  string
		make func() *QueueScheduler
	}{
		{"fcfs", "first-come first-served", NewFCFS},
		{"firstfit", "FCFS order with bypass: any queued job that fits may start", NewFirstFit},
		{"sjf", "shortest job first by runtime estimate", NewSJF},
		{"ljf", "longest job first by runtime estimate", NewLJF},
		{"smallest", "smallest job first by processor count", NewSmallestFirst},
		{"lxf", "largest expansion factor first (dynamic slowdown priority)", NewLXF},
	}
	for _, qf := range queueFamilies {
		ctor := qf.make
		Register(Family{
			Name: qf.name, //schedlint:allow registry names come from the literal queueFamilies table above; the registry round-trip test builds every listed name
			Doc:  qf.doc,
			Params: []Param{
				{Name: "drain", Kind: BoolParam,
					Doc: "refuse starts that would cross an announced full-machine outage"},
			},
			New: func(a Args) (Scheduler, error) {
				s := ctor()
				s.DrainAware = a.Bool("drain")
				return s, nil
			},
		})
	}
}

// NewFCFS returns first-come-first-served.
func NewFCFS() *QueueScheduler {
	return &QueueScheduler{name: "fcfs", order: nil}
}

// NewFirstFit returns FCFS order with bypass: any queued job that fits
// may start (no reservation for the head, starvation possible).
func NewFirstFit() *QueueScheduler {
	return &QueueScheduler{name: "firstfit", order: nil, bypass: true}
}

// NewSJF returns shortest-job-first by runtime estimate.
func NewSJF() *QueueScheduler {
	return &QueueScheduler{name: "sjf", order: func(ctx Context, _ int64, a, b *core.Job) bool {
		ea, eb := ctx.Estimate(a), ctx.Estimate(b)
		if ea != eb {
			return ea < eb
		}
		return a.ID < b.ID
	}}
}

// NewLJF returns longest-job-first by runtime estimate.
func NewLJF() *QueueScheduler {
	return &QueueScheduler{name: "ljf", order: func(ctx Context, _ int64, a, b *core.Job) bool {
		ea, eb := ctx.Estimate(a), ctx.Estimate(b)
		if ea != eb {
			return ea > eb
		}
		return a.ID < b.ID
	}}
}

// NewSmallestFirst orders by processor count ascending (small jobs slip
// in first), a classic utilization-friendly but large-job-hostile
// policy.
func NewSmallestFirst() *QueueScheduler {
	return &QueueScheduler{name: "smallest", order: func(_ Context, _ int64, a, b *core.Job) bool {
		if a.Size != b.Size {
			return a.Size < b.Size
		}
		return a.ID < b.ID
	}}
}

// NewLXF returns largest-expansion-factor-first: priority to the job
// whose (wait + estimate) / estimate is largest — a dynamic
// slowdown-oriented policy.
func NewLXF() *QueueScheduler {
	return &QueueScheduler{name: "lxf", order: func(ctx Context, now int64, a, b *core.Job) bool {
		xa := expansion(now, a, ctx.Estimate(a))
		xb := expansion(now, b, ctx.Estimate(b))
		if xa != xb {
			return xa > xb
		}
		return a.ID < b.ID
	}}
}

func expansion(now int64, j *core.Job, est int64) float64 {
	if est < 1 {
		est = 1
	}
	wait := now - j.Submit
	if wait < 0 {
		wait = 0
	}
	return float64(wait+est) / float64(est)
}

// Name implements Scheduler. The drain-aware variant names itself by
// its canonical spec so result tables distinguish it from the base
// policy.
//
//schedlint:coldpath reporting: result labeling, once per run
func (q *QueueScheduler) Name() string {
	if q.DrainAware {
		return q.name + "(drain)"
	}
	return q.name
}

// Queued implements QueueReporter.
func (q *QueueScheduler) Queued() []*core.Job {
	return append([]*core.Job(nil), q.queue...)
}

// OnSubmit implements Scheduler.
func (q *QueueScheduler) OnSubmit(ctx Context, j *core.Job) {
	q.queue = append(q.queue, j)
	q.schedule(ctx)
}

// OnFinish implements Scheduler.
func (q *QueueScheduler) OnFinish(ctx Context, _ *core.Job) { q.schedule(ctx) }

// OnChange implements Scheduler.
func (q *QueueScheduler) OnChange(ctx Context) { q.schedule(ctx) }

func (q *QueueScheduler) schedule(ctx Context) {
	now := ctx.Now()
	if q.order != nil {
		ord := q.order
		sort.SliceStable(q.queue, func(i, k int) bool { return ord(ctx, now, q.queue[i], q.queue[k]) })
	}
	for len(q.queue) > 0 {
		started := false
		for i, j := range q.queue {
			if i > 0 && !q.bypass {
				break
			}
			if !ctx.CanStart(j, j.Size) {
				continue
			}
			if q.DrainAware && crossesFullOutage(ctx, j) {
				continue
			}
			ctx.Start(j, j.Size)
			q.queue = append(q.queue[:i], q.queue[i+1:]...)
			started = true
			break
		}
		if !started {
			return
		}
	}
}

// crossesFullOutage reports whether starting j now would run into an
// announced outage that takes down (essentially) the whole machine
// before the job's estimated end — the drain condition.
func crossesFullOutage(ctx Context, j *core.Job) bool {
	now := ctx.Now()
	end := now + ctx.Estimate(j)
	for _, w := range ctx.Outages() {
		if w.Start <= now {
			continue // ongoing; capacity already reflects it
		}
		if w.Procs*10 >= ctx.TotalProcs()*9 && w.Start < end {
			return true
		}
	}
	return false
}
