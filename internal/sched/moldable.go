package sched

import "parsched/internal/core"

// MoldableEASY is EASY backfilling with moldable-job adaptation: when a
// moldable job reaches the head of the queue and cannot start at its
// requested size, the scheduler considers smaller power-of-two sizes
// (down to MinSize) and starts the job immediately at the largest size
// that fits, provided the resulting runtime still beats waiting for the
// requested size. This is the machine-side half of the "machine
// schedulers and application schedulers may cooperate" convergence the
// paper anticipates (Section 1.2), with the speedup model standing in
// for the application scheduler's knowledge.
type MoldableEASY struct {
	inner *EASY
}

// NewMoldableEASY returns the adapter.
func NewMoldableEASY() *MoldableEASY { return &MoldableEASY{inner: NewEASY()} }

// Name implements Scheduler.
func (m *MoldableEASY) Name() string { return "easy+mold" }

// Queued implements QueueReporter.
func (m *MoldableEASY) Queued() []*core.Job { return m.inner.Queued() }

// OnSubmit implements Scheduler.
func (m *MoldableEASY) OnSubmit(ctx Context, j *core.Job) {
	if j.Class == core.Moldable && j.Speedup != nil {
		if size, ok := m.adaptSize(ctx, j); ok && size != j.Size {
			// Molding happens once, at start: fix the size and scale
			// the runtime before the job enters the queue; the job is
			// rigid from here on (the definition of moldable).
			j.Runtime = j.RuntimeOn(size)
			if j.Estimate > 0 {
				// Scale the estimate by the same factor, conservatively
				// rounded up.
				j.Estimate = scaleEstimate(j, size)
			}
			j.Size = size
		}
	}
	m.inner.OnSubmit(ctx, j)
}

// OnFinish implements Scheduler.
func (m *MoldableEASY) OnFinish(ctx Context, j *core.Job) { m.inner.OnFinish(ctx, j) }

// OnChange implements Scheduler.
func (m *MoldableEASY) OnChange(ctx Context) { m.inner.OnChange(ctx) }

// adaptSize picks the size to start j at: if the requested size is free
// right now, keep it. Otherwise try successively smaller powers of two
// (>= MinSize): pick the largest that can start immediately and whose
// runtime inflation is tolerable (runtime at the smaller size no more
// than 4x the requested-size runtime).
func (m *MoldableEASY) adaptSize(ctx Context, j *core.Job) (int, bool) {
	if ctx.CanStart(j, j.Size) {
		return j.Size, true
	}
	minSize := j.MinSize
	if minSize < 1 {
		minSize = 1
	}
	baseRT := j.RuntimeOn(j.Size)
	for size := prevPow2(j.Size); size >= minSize; size /= 2 {
		if !ctx.CanStart(j, size) {
			continue
		}
		if j.RuntimeOn(size) <= 4*baseRT {
			return size, true
		}
		break // even smaller sizes only get slower
	}
	return j.Size, false
}

// scaleEstimate scales the user estimate proportionally to the runtime
// change caused by molding, never below the new runtime.
func scaleEstimate(j *core.Job, newSize int) int64 {
	newRT := j.RuntimeOn(newSize)
	if j.Runtime <= 0 {
		return newRT
	}
	est := j.Estimate * newRT / j.Runtime
	if est < newRT {
		est = newRT
	}
	return est
}

// prevPow2 returns the largest power of two strictly less than n (or 1).
func prevPow2(n int) int {
	p := 1
	for p*2 < n {
		p *= 2
	}
	return p
}
