package sched

import (
	"strconv"

	"parsched/internal/core"
)

// Moldable adapts moldable jobs for any machine scheduler: when a
// moldable job arrives and cannot start at its requested size, the
// adapter considers smaller power-of-two sizes (down to MinSize) and
// fixes the job at the largest size that starts immediately, provided
// the resulting runtime inflation stays within MaxStretch. This is the
// machine-side half of the "machine schedulers and application
// schedulers may cooperate" convergence the paper anticipates (Section
// 1.2), with the speedup model standing in for the application
// scheduler's knowledge. Built from specs like "easy(mold)" or
// "fcfs(mold, moldmax=2)"; the decorator composes with every family.
type Moldable struct {
	// Inner is the decorated scheduler.
	Inner Scheduler
	// MaxStretch bounds the molded runtime relative to the
	// requested-size runtime; <= 0 means the classic tolerance of 4.
	MaxStretch float64
}

// NewMoldable wraps inner with the moldable-job adapter.
func NewMoldable(inner Scheduler, maxStretch float64) *Moldable {
	return &Moldable{Inner: inner, MaxStretch: maxStretch}
}

// NewMoldableEASY returns moldable-adapted EASY backfilling (the
// legacy "easy+mold" scheduler).
//
//schedlint:allow registry moldable is the shared mold decorator, not a family; easy registers the alias that builds this configuration
func NewMoldableEASY() *Moldable { return NewMoldable(NewEASY(), 0) }

// Name implements Scheduler. The legacy configuration — EASY at the
// classic tolerance — keeps its legacy name "easy+mold"; every other
// configuration names itself by its canonical spec ("sjf(mold)",
// "easy(mold, reserve=2)"), derived by re-parsing the inner
// scheduler's name so the label always feeds back into Parse.
//
//schedlint:coldpath reporting: result labeling, once per run
func (m *Moldable) Name() string {
	inner := m.Inner.Name()
	classicStretch := m.MaxStretch <= 0 || m.MaxStretch == 4
	if inner == "easy" && classicStretch {
		return "easy+mold"
	}
	sp, err := Parse(inner)
	if err != nil {
		// An inner name outside the grammar (a custom scheduler):
		// fall back to the legacy suffix.
		return inner + "+mold"
	}
	if sp.Params == nil {
		sp.Params = map[string]string{}
	}
	sp.Params["mold"] = "true"
	if !classicStretch {
		sp.Params["moldmax"] = strconv.FormatFloat(m.MaxStretch, 'g', -1, 64)
	}
	return sp.String()
}

// Queued implements QueueReporter when the inner scheduler does.
func (m *Moldable) Queued() []*core.Job {
	if qr, ok := m.Inner.(QueueReporter); ok {
		return qr.Queued()
	}
	return nil
}

// OnSubmit implements Scheduler.
func (m *Moldable) OnSubmit(ctx Context, j *core.Job) {
	if j.Class == core.Moldable && j.Speedup != nil {
		if size, ok := m.adaptSize(ctx, j); ok && size != j.Size {
			// Molding happens once, at start: fix the size and scale
			// the runtime before the job enters the queue; the job is
			// rigid from here on (the definition of moldable).
			j.Runtime = j.RuntimeOn(size)
			if j.Estimate > 0 {
				// Scale the estimate by the same factor, conservatively
				// rounded up.
				j.Estimate = scaleEstimate(j, size)
			}
			j.Size = size
		}
	}
	m.Inner.OnSubmit(ctx, j)
}

// OnFinish implements Scheduler.
func (m *Moldable) OnFinish(ctx Context, j *core.Job) { m.Inner.OnFinish(ctx, j) }

// OnChange implements Scheduler.
func (m *Moldable) OnChange(ctx Context) { m.Inner.OnChange(ctx) }

// adaptSize picks the size to start j at: if the requested size is free
// right now, keep it. Otherwise try successively smaller powers of two
// (>= MinSize): pick the largest that can start immediately and whose
// runtime inflation is tolerable (runtime at the smaller size no more
// than MaxStretch times the requested-size runtime).
func (m *Moldable) adaptSize(ctx Context, j *core.Job) (int, bool) {
	if ctx.CanStart(j, j.Size) {
		return j.Size, true
	}
	stretch := m.MaxStretch
	if stretch <= 0 {
		stretch = 4
	}
	minSize := j.MinSize
	if minSize < 1 {
		minSize = 1
	}
	baseRT := j.RuntimeOn(j.Size)
	for size := prevPow2(j.Size); size >= minSize; size /= 2 {
		if !ctx.CanStart(j, size) {
			continue
		}
		if float64(j.RuntimeOn(size)) <= stretch*float64(baseRT) {
			return size, true
		}
		break // even smaller sizes only get slower
	}
	return j.Size, false
}

// scaleEstimate scales the user estimate proportionally to the runtime
// change caused by molding, never below the new runtime.
func scaleEstimate(j *core.Job, newSize int) int64 {
	newRT := j.RuntimeOn(newSize)
	if j.Runtime <= 0 {
		return newRT
	}
	est := j.Estimate * newRT / j.Runtime
	if est < newRT {
		est = newRT
	}
	return est
}

// prevPow2 returns the largest power of two strictly less than n (or 1).
func prevPow2(n int) int {
	p := 1
	for p*2 < n {
		p *= 2
	}
	return p
}
