package sched

import "testing"

func TestFCFSStartsInOrder(t *testing.T) {
	m := newMock(16)
	s := NewFCFS()
	s.OnSubmit(m, job(1, 0, 8, 100))
	s.OnSubmit(m, job(2, 0, 8, 100))
	s.OnSubmit(m, job(3, 0, 8, 100)) // blocked: only 0 free
	if len(m.started) != 2 || m.started[0] != 1 || m.started[1] != 2 {
		t.Fatalf("started = %v", m.started)
	}
	m.advance(100)
	m.finish(s, 1)
	if len(m.started) != 3 || m.started[2] != 3 {
		t.Fatalf("job 3 should start after a finish: %v", m.started)
	}
}

func TestFCFSHeadBlocksSmallerJobs(t *testing.T) {
	m := newMock(16)
	s := NewFCFS()
	s.OnSubmit(m, job(1, 0, 16, 1000))
	s.OnSubmit(m, job(2, 0, 16, 10)) // head of queue, machine busy
	s.OnSubmit(m, job(3, 0, 1, 10))  // would fit but FCFS blocks it
	if len(m.started) != 1 {
		t.Fatalf("FCFS let a job bypass the head: %v", m.started)
	}
	if got := len(s.Queued()); got != 2 {
		t.Fatalf("queue length = %d", got)
	}
}

func TestFirstFitBypasses(t *testing.T) {
	m := newMock(16)
	s := NewFirstFit()
	s.OnSubmit(m, job(1, 0, 12, 1000))
	s.OnSubmit(m, job(2, 0, 8, 10)) // blocked (only 4 free)
	s.OnSubmit(m, job(3, 0, 4, 10)) // fits: bypass
	if !m.startedSet()[3] {
		t.Fatalf("first-fit should start job 3: %v", m.started)
	}
	if m.startedSet()[2] {
		t.Fatal("job 2 cannot fit yet")
	}
}

func TestSJFOrdersByEstimate(t *testing.T) {
	m := newMock(8)
	s := NewSJF()
	s.OnSubmit(m, job(1, 0, 8, 1000)) // running
	s.OnSubmit(m, jobEst(2, 0, 8, 500, 500))
	s.OnSubmit(m, jobEst(3, 0, 8, 10, 10))
	m.advance(1000)
	m.finish(s, 1)
	// Job 3 (shorter) should start before job 2.
	if !m.startedSet()[3] || m.startedSet()[2] {
		t.Fatalf("SJF order wrong: %v", m.started)
	}
}

func TestLJFOrdersByEstimateDesc(t *testing.T) {
	m := newMock(8)
	s := NewLJF()
	s.OnSubmit(m, job(1, 0, 8, 1000))
	s.OnSubmit(m, jobEst(2, 0, 8, 500, 500))
	s.OnSubmit(m, jobEst(3, 0, 8, 10, 10))
	m.advance(1000)
	m.finish(s, 1)
	if !m.startedSet()[2] || m.startedSet()[3] {
		t.Fatalf("LJF order wrong: %v", m.started)
	}
}

func TestSmallestFirst(t *testing.T) {
	m := newMock(8)
	s := NewSmallestFirst()
	s.OnSubmit(m, job(1, 0, 8, 1000))
	s.OnSubmit(m, job(2, 0, 6, 10))
	s.OnSubmit(m, job(3, 0, 2, 10))
	m.advance(1000)
	m.finish(s, 1)
	// Smallest (job 3) first, then 6-proc job 2 fits alongside.
	if m.started[1] != 3 {
		t.Fatalf("smallest-first order wrong: %v", m.started)
	}
	if !m.startedSet()[2] {
		t.Fatal("job 2 should also start (6+2=8)")
	}
}

func TestLXFPrefersLongWaiters(t *testing.T) {
	m := newMock(8)
	s := NewLXF()
	s.OnSubmit(m, job(1, 0, 8, 1000))
	// Job 2: short, submitted early -> huge expansion factor by t=1000.
	s.OnSubmit(m, jobEst(2, 0, 8, 10, 10))
	m.advance(990)
	// Job 3: long, just submitted -> low expansion factor.
	s.OnSubmit(m, jobEst(3, 990, 8, 1000, 1000))
	m.advance(1000)
	m.finish(s, 1)
	if m.started[1] != 2 {
		t.Fatalf("LXF should prefer the starved short job: %v", m.started)
	}
}

func TestQueueDrainAware(t *testing.T) {
	m := newMock(16)
	// Full-machine outage at t=100 for 50 s, announced immediately.
	m.windows = []Window{{Start: 100, End: 150, Procs: 16}}
	s := NewFCFS()
	s.DrainAware = true
	s.OnSubmit(m, jobEst(1, 0, 4, 500, 500)) // would cross the outage
	if len(m.started) != 0 {
		t.Fatal("drain-aware FCFS must hold the long job")
	}
	s.OnSubmit(m, jobEst(2, 0, 4, 50, 50)) // ends before the outage
	// Job 2 is behind job 1 in FCFS order and job 1 is held; plain FCFS
	// would block, but the drain check applies per-job at the head only.
	// Job 1 stays head; nothing else starts.
	if len(m.started) != 0 {
		t.Fatalf("FCFS order must hold even when draining: %v", m.started)
	}
	// After the outage the held jobs go.
	m.advance(150)
	m.windows = nil
	s.OnChange(m)
	if len(m.started) != 2 {
		t.Fatalf("jobs should start after outage: %v", m.started)
	}
}

func TestQueueSchedulerNamesAndQueued(t *testing.T) {
	for _, s := range []*QueueScheduler{NewFCFS(), NewFirstFit(), NewSJF(), NewLJF(), NewSmallestFirst(), NewLXF()} {
		if s.Name() == "" {
			t.Fatal("empty name")
		}
		if len(s.Queued()) != 0 {
			t.Fatal("fresh scheduler has queue")
		}
	}
}

func TestRegistryNew(t *testing.T) {
	for _, n := range Names() {
		s, err := New(n)
		if err != nil || s == nil {
			t.Fatalf("New(%q): %v", n, err)
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if s, _ := New("gang5"); s.(*Gang).Slots != 5 {
		t.Fatal("gang5 suffix ignored")
	}
}
