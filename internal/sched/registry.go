package sched

import (
	"fmt"
	"sort"
)

// New constructs a scheduler by name. Recognized names:
//
//	fcfs, firstfit, sjf, ljf, smallest, lxf,
//	easy, easy+win, easy+mold, cons, cons+win, gang
//
// gang accepts an optional multiprogramming level suffix, e.g. "gang3".
func New(name string) (Scheduler, error) {
	switch name {
	case "fcfs":
		return NewFCFS(), nil
	case "firstfit":
		return NewFirstFit(), nil
	case "sjf":
		return NewSJF(), nil
	case "ljf":
		return NewLJF(), nil
	case "smallest":
		return NewSmallestFirst(), nil
	case "lxf":
		return NewLXF(), nil
	case "easy":
		return NewEASY(), nil
	case "easy+win":
		return NewEASYWindows(), nil
	case "easy+mold":
		return NewMoldableEASY(), nil
	case "cons":
		return NewConservative(), nil
	case "cons+win":
		return NewConservativeWindows(), nil
	case "gang":
		return NewGang(3), nil
	case "gang2":
		return NewGang(2), nil
	case "gang3":
		return NewGang(3), nil
	case "gang5":
		return NewGang(5), nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q (have %v)", name, Names())
	}
}

// Names lists the canonical scheduler names.
func Names() []string {
	names := []string{
		"fcfs", "firstfit", "sjf", "ljf", "smallest", "lxf",
		"easy", "easy+win", "easy+mold", "cons", "cons+win", "gang",
	}
	sort.Strings(names)
	return names
}
