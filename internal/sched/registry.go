package sched

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// The scheduler registry. Each constructor file self-registers its
// families (with typed parameter declarations and legacy-name aliases)
// from init, and every listing — Names, Families, Usage, error
// messages — is derived from the registered set, so the catalogue can
// never drift from what Build actually constructs.

// ParamKind types a family parameter.
type ParamKind int

const (
	// BoolParam accepts true/false (a bare flag in a spec means true).
	BoolParam ParamKind = iota
	// IntParam accepts a decimal integer.
	IntParam
	// FloatParam accepts a decimal floating-point number.
	FloatParam
)

func (k ParamKind) String() string {
	switch k {
	case BoolParam:
		return "bool"
	case IntParam:
		return "int"
	case FloatParam:
		return "float"
	}
	return "unknown"
}

// Param declares one typed family parameter.
type Param struct {
	Name string
	Kind ParamKind
	// Default is the rendered default value; empty means the kind's
	// zero ("false", "0").
	Default string
	Doc     string
}

func (p Param) defaultValue() string {
	if p.Default != "" {
		return p.Default
	}
	switch p.Kind {
	case BoolParam:
		return "false"
	default:
		return "0"
	}
}

// check validates a raw value against the parameter's kind.
func (p Param) check(val string) error {
	var err error
	switch p.Kind {
	case BoolParam:
		_, err = strconv.ParseBool(val)
	case IntParam:
		_, err = strconv.Atoi(val)
	case FloatParam:
		_, err = strconv.ParseFloat(val, 64)
	}
	if err != nil {
		return fmt.Errorf("sched: parameter %q: %s value required, got %q", p.Name, p.Kind, val)
	}
	return nil
}

// canon validates a raw value and returns its canonical typed
// rendering plus whether it equals the parameter's default — Parse
// uses it so every spelling of a value ("window=1", "window=T") lands
// on one canonical Spec and default-valued parameters vanish.
func (p Param) canon(val string) (canonical string, isDefault bool, err error) {
	if err := p.check(val); err != nil {
		return "", false, err
	}
	def := p.defaultValue()
	switch p.Kind {
	case BoolParam:
		v, _ := strconv.ParseBool(val)
		d, _ := strconv.ParseBool(def)
		return strconv.FormatBool(v), v == d, nil
	case IntParam:
		v, _ := strconv.Atoi(val)
		d, _ := strconv.Atoi(def)
		return strconv.Itoa(v), v == d, nil
	default:
		v, _ := strconv.ParseFloat(val, 64)
		d, _ := strconv.ParseFloat(def, 64)
		return strconv.FormatFloat(v, 'g', -1, 64), v == d, nil
	}
}

// Family is one registered scheduler family: a factory plus the typed
// parameters it accepts and the legacy names that alias into it.
type Family struct {
	Name string
	Doc  string
	// Params declares the family's own parameters; Register appends
	// the shared decorator parameters (mold, moldmax) automatically.
	Params []Param
	// Aliases maps legacy scheduler names to the canonical spec each
	// expands to, e.g. "easy+win" → "easy(window)". Alias names appear
	// in Names next to the family name.
	Aliases map[string]string
	// New constructs the base scheduler from validated arguments.
	// Decorators declared by shared parameters are applied on top by
	// Build.
	New func(args Args) (Scheduler, error)
}

func (f *Family) param(name string) *Param {
	for i := range f.Params {
		if f.Params[i].Name == name {
			return &f.Params[i]
		}
	}
	return nil
}

// checkParam validates one raw key=value against the declarations.
func (f *Family) checkParam(key, val string) error {
	p := f.param(key)
	if p == nil {
		have := make([]string, len(f.Params))
		for i, d := range f.Params {
			have[i] = d.Name
		}
		return fmt.Errorf("sched: %s has no parameter %q (have %v)", f.Name, key, have)
	}
	return p.check(val)
}

// Args is the validated parameter view a family factory reads. Lookups
// of undeclared parameters panic: that is a registration bug, not an
// input error.
type Args struct {
	family *Family
	vals   map[string]string
}

func (a Args) raw(name string) string {
	p := a.family.param(name)
	if p == nil {
		panic(fmt.Sprintf("sched: family %s reads undeclared parameter %q", a.family.Name, name))
	}
	if v, ok := a.vals[name]; ok {
		return v
	}
	return p.defaultValue()
}

// Set reports whether the spec gave the parameter explicitly.
func (a Args) Set(name string) bool { _, ok := a.vals[name]; return ok }

// Bool returns a boolean parameter (its default when unset).
func (a Args) Bool(name string) bool {
	v, _ := strconv.ParseBool(a.raw(name))
	return v
}

// Int returns an integer parameter (its default when unset).
func (a Args) Int(name string) int {
	v, _ := strconv.Atoi(a.raw(name))
	return v
}

// Float returns a floating-point parameter (its default when unset).
func (a Args) Float(name string) float64 {
	v, _ := strconv.ParseFloat(a.raw(name), 64)
	return v
}

var (
	families   = map[string]*Family{}
	aliasTable = map[string]string{}
)

// decoratorParams are shared by every family: they select and tune
// the decorators Build layers over the base scheduler.
var decoratorParams = []Param{
	{Name: "mold", Kind: BoolParam,
		Doc: "wrap with the moldable-job adapter (jobs shrink to start sooner)"},
	{Name: "moldmax", Kind: FloatParam, Default: "4",
		Doc: "moldable runtime-inflation tolerance (requires mold)"},
}

// Register adds a scheduler family to the registry. It panics on
// duplicate or malformed registrations — those are programming errors
// caught at init time, not runtime conditions.
func Register(f Family) {
	if !validToken(f.Name) {
		panic(fmt.Sprintf("sched: invalid family name %q", f.Name))
	}
	if f.New == nil {
		panic(fmt.Sprintf("sched: family %s has no factory", f.Name))
	}
	if _, dup := families[f.Name]; dup {
		panic(fmt.Sprintf("sched: family %s registered twice", f.Name))
	}
	if _, dup := aliasTable[f.Name]; dup {
		panic(fmt.Sprintf("sched: family %s collides with an alias", f.Name))
	}
	seen := map[string]bool{}
	for _, p := range f.Params {
		if seen[p.Name] {
			panic(fmt.Sprintf("sched: family %s declares parameter %q twice", f.Name, p.Name))
		}
		seen[p.Name] = true
	}
	for _, p := range decoratorParams {
		if !seen[p.Name] {
			f.Params = append(f.Params, p)
		}
	}
	families[f.Name] = &f
	for alias, target := range f.Aliases {
		if _, dup := aliasTable[alias]; dup {
			panic(fmt.Sprintf("sched: alias %s registered twice", alias))
		}
		if _, dup := families[alias]; dup {
			panic(fmt.Sprintf("sched: alias %s collides with a family", alias))
		}
		aliasTable[alias] = target
	}
}

// Build constructs the scheduler a spec names: the family factory
// runs on the validated parameters, then shared decorators (the
// moldable adapter) are layered on top.
func Build(sp Spec) (Scheduler, error) {
	f, ok := families[sp.Family]
	if !ok {
		return nil, fmt.Errorf("sched: unknown scheduler %q (have %v)", sp.Family, Names())
	}
	vals := map[string]string{}
	for k, v := range sp.Params {
		if err := f.checkParam(k, v); err != nil {
			return nil, err
		}
		vals[k] = v
	}
	args := Args{family: f, vals: vals}
	if args.Set("moldmax") && !args.Bool("mold") {
		return nil, fmt.Errorf("sched: %s: moldmax is only meaningful with mold", sp.Family)
	}
	s, err := f.New(args)
	if err != nil {
		return nil, fmt.Errorf("sched: %s: %w", sp.Family, err)
	}
	if args.Bool("mold") {
		s = NewMoldable(s, args.Float("moldmax"))
	}
	return s, nil
}

// New constructs a scheduler from a spec string or legacy name: it is
// Parse followed by Build. Canonical legacy names ("easy", "easy+win",
// "gang3", ...) construct exactly the schedulers they always did.
func New(name string) (Scheduler, error) {
	sp, err := Parse(name)
	if err != nil {
		return nil, err
	}
	return Build(sp)
}

// Names lists every canonical scheduler name — family names plus
// registered legacy aliases — sorted. The listing is derived from the
// registry, so every listed name builds and every buildable family is
// listed.
func Names() []string {
	names := make([]string, 0, len(families)+len(aliasTable))
	for n := range families {
		names = append(names, n)
	}
	for n := range aliasTable {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Families returns the registered families sorted by name. The slices
// inside are shared; callers must not mutate them.
func Families() []Family {
	out := make([]Family, 0, len(families))
	for _, f := range families {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Usage renders a help text describing the spec grammar, every
// registered family with its parameters, and the legacy aliases —
// derived from the registry so CLI help can never go stale.
func Usage() string {
	var b strings.Builder
	shared := map[string]bool{}
	for _, p := range decoratorParams {
		shared[p.Name] = true
	}
	b.WriteString("scheduler specs: family(param, key=value, ...); a bare param is a boolean flag\n")
	b.WriteString("families:\n")
	for _, f := range Families() {
		fmt.Fprintf(&b, "  %-10s %s\n", f.Name, f.Doc)
		for _, p := range f.Params {
			if shared[p.Name] {
				continue
			}
			fmt.Fprintf(&b, "    %-12s %-6s default %-6s %s\n", p.Name, p.Kind, p.defaultValue(), p.Doc)
		}
	}
	b.WriteString("shared parameters (every family):\n")
	for _, p := range decoratorParams {
		fmt.Fprintf(&b, "    %-12s %-6s default %-6s %s\n", p.Name, p.Kind, p.defaultValue(), p.Doc)
	}
	aliases := make([]string, 0, len(aliasTable))
	for a := range aliasTable {
		aliases = append(aliases, a)
	}
	sort.Strings(aliases)
	b.WriteString("legacy names:\n")
	for _, a := range aliases {
		fmt.Fprintf(&b, "  %-10s = %s\n", a, aliasTable[a])
	}
	return b.String()
}
