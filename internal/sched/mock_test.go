package sched

import (
	"fmt"
	"sort"

	"parsched/internal/core"
)

// mockContext is a hand-driven Context for unit-testing schedulers
// without the full simulator: the test controls time, finishes jobs
// explicitly, and the mock tracks capacity.
type mockContext struct {
	now     int64
	total   int
	free    int
	running []RunningJob
	started []int64 // IDs in start order
	shared  map[int64]float64
	windows []Window
	resv    []Window
}

func newMock(total int) *mockContext {
	return &mockContext{total: total, free: total, shared: map[int64]float64{}}
}

func (m *mockContext) Now() int64      { return m.now }
func (m *mockContext) TotalProcs() int { return m.total }
func (m *mockContext) FreeProcs() int  { return m.free }

func (m *mockContext) CanStart(j *core.Job, size int) bool {
	return size <= m.free
}

func (m *mockContext) Start(j *core.Job, size int) {
	if size > m.free {
		panic(fmt.Sprintf("mock: start job %d size %d with %d free", j.ID, size, m.free))
	}
	m.free -= size
	m.running = append(m.running, RunningJob{
		Job: j, Size: size, Start: m.now, ExpEnd: m.now + j.EstimateOrRuntime(),
	})
	sort.Slice(m.running, func(a, b int) bool { return m.running[a].ExpEnd < m.running[b].ExpEnd })
	m.started = append(m.started, j.ID)
}

func (m *mockContext) Running() []RunningJob { return append([]RunningJob(nil), m.running...) }

func (m *mockContext) Estimate(j *core.Job) int64 { return j.EstimateOrRuntime() }

func (m *mockContext) Outages() []Window      { return m.windows }
func (m *mockContext) Reservations() []Window { return m.resv }

func (m *mockContext) StartShared(j *core.Job, rate float64) {
	m.shared[j.ID] = rate
	m.started = append(m.started, j.ID)
}

func (m *mockContext) SetRate(j *core.Job, rate float64) { m.shared[j.ID] = rate }

// finish completes a running job and notifies the scheduler.
func (m *mockContext) finish(s Scheduler, id int64) {
	for i, r := range m.running {
		if r.Job.ID == id {
			m.free += r.Size
			m.running = append(m.running[:i], m.running[i+1:]...)
			s.OnFinish(m, r.Job)
			return
		}
	}
	panic(fmt.Sprintf("mock: finish unknown job %d", id))
}

// advance moves the clock.
func (m *mockContext) advance(t int64) {
	if t < m.now {
		panic("mock: time going backwards")
	}
	m.now = t
}

// job builds a rigid test job.
func job(id int64, submit int64, size int, runtime int64) *core.Job {
	return &core.Job{ID: id, Submit: submit, Size: size, Runtime: runtime, User: 1}
}

// jobEst builds a job with an explicit estimate.
func jobEst(id int64, submit int64, size int, runtime, est int64) *core.Job {
	j := job(id, submit, size, runtime)
	j.Estimate = est
	return j
}

// startedSet returns the IDs started so far as a set.
func (m *mockContext) startedSet() map[int64]bool {
	s := map[int64]bool{}
	for _, id := range m.started {
		s[id] = true
	}
	return s
}
