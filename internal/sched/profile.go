package sched

import "sort"

// Profile is a piecewise-constant availability profile: free processor
// count as a function of future time. Backfilling schedulers build one
// from the running jobs' expected completions (plus outage and
// reservation windows) and query it for the earliest hole that fits a
// job. This is the core data structure of conservative backfilling.
type Profile struct {
	// times[i] is the start of segment i; frees[i] is the free
	// processor count on [times[i], times[i+1]). The last segment
	// extends to infinity.
	times []int64
	frees []int

	// winT/winV are scratch buffers for BuildProfileInto's window
	// deltas, kept on the profile so a rebuild allocates nothing in
	// steady state.
	winT []int64
	winV []int

	// Window-delta cache: cw snapshots the window set winT/winV were
	// built from, valid while now < cwUntil (the earliest time any
	// window's ongoing/future classification changes). Window sets
	// change on announcements and expiries — thousands of scheduling
	// passes apart — so the sort above almost always amortizes to an
	// O(windows) equality check.
	cw      []Window
	cwUntil int64
	cwValid bool
	// cwOuts is how many leading cw entries came from Outages() (the
	// rest are Reservations()): spliceWindows diffs each section against
	// its successor independently, since the concatenation is not
	// Start-ordered across the seam.
	cwOuts int
	// cwEpoch mirrors the context's WindowEpoch stamp when it offers
	// one; equal stamps replace the element-wise cw comparison (and the
	// window-set reads) entirely.
	cwEpoch uint64
	// insBuf is spliceWindows' scratch for the inserted-window diff,
	// kept on the profile so a splice allocates nothing in steady state.
	insBuf []Window

	// mutated tracks whether times/frees were written since the last
	// BuildProfileInto (schedulers mirror the starts they make with
	// Take). An unmutated profile is still the snapshot below, so a
	// cache-hit rebuild is just re-stamping times[0].
	mutated bool
	// buildStamp counts full (non-cache-hit) builds. Schedulers use it
	// to key derived results — equal stamps plus an unmutated profile
	// mean every query would answer as it did last pass.
	buildStamp uint64
	// growStamp advances only on builds that may INCREASE capacity at
	// some t >= now: full merges (unknown delta) and finish absorptions
	// (capacity returns early). Shrink-only rebuilds — start absorption,
	// base aging, window splices — leave it alone, so a scheduler
	// holding a query result that is monotone under capacity loss (the
	// head's earliest fit can only move later) can resume from it across
	// those stamps instead of recomputing from scratch.
	growStamp uint64

	// Built-profile snapshot: baseT/baseF hold the pristine merge
	// result, baseRun/baseFree the running set and free count it was
	// built from. While those inputs are unchanged (most passes in a
	// congested run start nothing, so they are) and no breakpoint has
	// fallen due, a rebuild is a memcpy restore instead of a re-merge —
	// the scratch profile itself gets mutated by Take during the pass,
	// so the snapshot is what makes reuse possible at all.
	baseT    []int64
	baseF    []int
	baseRun  []RunningJob
	baseFree int
	// baseRunEpoch mirrors the context's RunEpoch stamp when it offers
	// one; equal stamps replace the baseRun comparison (and the
	// Running() read) entirely. baseEpochOK distinguishes which scheme
	// stamped the current snapshot.
	baseRunEpoch uint64
	baseEpochOK  bool

	// mode records which build arm produced the current snapshot
	// (windows-aware or running-only), so a scratch profile handed to
	// the other arm rebuilds instead of reusing a snapshot that was
	// merged from different inputs. Schedulers never switch arms, so in
	// practice this only guards tests and future composition.
	mode buildMode

	// winS holds the arrival sequence of each scratch window delta, the
	// tiebreak that keeps the batch sort stable at equal delta times
	// (matching the old insertion-sort apply order exactly).
	winS []int32

	// pm caches the prefix minimum of frees (pm[i] = min(frees[0..i])),
	// turning the from-the-front FitsAt scan — the backfill sweep's
	// per-candidate cost on window-heavy profiles — into one binary
	// search: procs fit over [times[0], e) iff pm[segmentAt(e-1)] >=
	// procs. Rebuilt lazily after any frees mutation; it survives
	// cache-hit restamps, so an unchanged base pays the O(n) build once
	// across passes.
	pm      []int
	pmValid bool
}

// buildMode distinguishes the two profile build arms.
type buildMode uint8

const (
	modeNone    buildMode = iota
	modeWindows           // running releases + outage/reservation windows
	modeRunning           // running releases only (classic backfilling)
)

// NewProfile creates a profile that is flat at free processors from
// time start onward.
func NewProfile(start int64, free int) *Profile {
	return &Profile{times: []int64{start}, frees: []int{free}}
}

// Reset re-initializes p to a flat profile of free processors from
// start onward, reusing its backing arrays. Callers that assemble a
// profile by hand (tests, one-off queries) Reset it instead of
// allocating; Reset also voids the build-arm snapshot, since whatever
// Release/Take sequence follows is not something buildProfile can vouch
// for on a later cache-hit restore.
func (p *Profile) Reset(start int64, free int) *Profile {
	p.times = append(p.times[:0], start)
	p.frees = append(p.frees[:0], free)
	p.mode = modeNone
	p.pmValid = false
	return p
}

// clone is used by tests.
func (p *Profile) clone() *Profile {
	return &Profile{
		times: append([]int64(nil), p.times...),
		frees: append([]int(nil), p.frees...),
	}
}

// segmentAt returns the index of the segment containing t (t must be >=
// p.times[0]): the last i with times[i] <= t. Hand-rolled binary search
// — this sits under every split/FreeAt/EarliestFit on the per-event
// path, where sort.Search's closure calls are measurable.
func (p *Profile) segmentAt(t int64) int {
	// Most queries anchor at the profile start (canStartNow, backfill
	// Take at now): answer those without the search.
	if len(p.times) == 1 || t < p.times[1] {
		return 0
	}
	lo, hi := 0, len(p.times) // invariant: times[lo-1] <= t < times[hi]
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.times[mid] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// split ensures a breakpoint exists at t and returns its index.
func (p *Profile) split(t int64) int {
	i := p.segmentAt(t)
	if p.times[i] == t {
		return i
	}
	// Insert after i.
	p.times = append(p.times, 0)
	p.frees = append(p.frees, 0)
	copy(p.times[i+2:], p.times[i+1:])
	copy(p.frees[i+2:], p.frees[i+1:])
	p.times[i+1] = t
	p.frees[i+1] = p.frees[i]
	return i + 1
}

// Take subtracts procs free processors over [start, end). Negative free
// values are allowed transiently (they simply mean "no hole here").
func (p *Profile) Take(start, end int64, procs int) {
	if end <= start || procs == 0 {
		return
	}
	if start < p.times[0] {
		start = p.times[0]
	}
	if end <= p.times[0] {
		return
	}
	p.mutated = true
	p.pmValid = false
	si := p.split(start)
	ei := p.split(end)
	for i := si; i < ei; i++ {
		p.frees[i] -= procs
	}
}

// TakeStarted is Take for a job the scheduler has just started via
// ctx.Start: it applies the capacity subtraction to the scratch profile
// AND absorbs it into the built-base snapshot, so the next pass's build
// is a cache hit instead of a full re-merge — in a congested run the
// start-driven half of all rebuilds disappears.
//
// Absorption is exact: the merge emits one breakpoint per distinct
// delta time unconditionally (it never coalesces equal-frees entries),
// and split() inserts at most one breakpoint at the job's end if none
// exists, so the absorbed arrays are element-identical to what a
// from-scratch merge over the grown running set would produce — the
// property the debugchecks dual-run and the resume ledger compare
// element-wise. The machine's free count dropped by exactly procs (the
// start claimed that many nodes) and the context's run epoch already
// advanced (ctx.Start inserted the running record), so the snapshot
// stamps are re-anchored to the post-start state. The build stamp
// advances: this is a new base, and every stamp-keyed memo must miss.
//
// Falls back to plain Take — next pass re-merges — when the scratch no
// longer mirrors the base (reservation carves this pass), the base is
// not epoch-stamped, or the span is degenerate (an estimate-zero job
// still joins the running set, which absorption cannot express).
func (p *Profile) TakeStarted(ctx Context, start, end int64, procs int) {
	re, hasEpoch := ctx.(RunEpoch)
	if !hasEpoch || p.mutated || !p.baseEpochOK || len(p.baseT) == 0 ||
		procs <= 0 || end <= start || start != p.times[0] {
		p.Take(start, end, procs)
		return
	}
	p.pmValid = false
	si := p.split(start)
	ei := p.split(end)
	for i := si; i < ei; i++ {
		p.frees[i] -= procs
	}
	p.baseT = append(p.baseT[:0], p.times...)
	p.baseF = append(p.baseF[:0], p.frees...)
	p.baseFree -= procs
	p.baseRunEpoch = re.RunningEpoch()
	p.buildStamp++
}

// AbsorbFinish folds a clean job completion into the built-base
// snapshot, so the pass that follows a finish — half of all scheduling
// passes in a draining run — rebuilds by cache-hit restore instead of a
// full re-merge. The finished job's processors are free from now on:
// every base segment before its release breakpoint gains size, and the
// breakpoint itself disappears unless another delta (a running job's
// expected end, a window edge) shares the instant — the merge emits one
// entry per distinct delta time and never coalesces equal-frees
// neighbours, so this surgery is element-identical to a from-scratch
// merge over the shrunk running set. Absorption declines (and the next
// build re-merges honestly) whenever exactness cannot be proven
// locally: an un-stamped base, a fallen-due breakpoint, an overdue
// running job (its clamp could alias any breakpoint), machine drift
// beyond this job's own release, or a release instant this base never
// recorded.
func (p *Profile) AbsorbFinish(ctx Context, expEnd int64, size int) {
	re, hasEpoch := ctx.(RunEpoch)
	if !hasEpoch || !p.baseEpochOK || len(p.baseT) == 0 || size <= 0 {
		return
	}
	now := ctx.Now()
	if expEnd <= now || (len(p.baseT) > 1 && p.baseT[1] <= now) {
		return
	}
	if ctx.FreeProcs() != p.baseFree+size {
		return // nodes moved beyond this job's release: rebuild honestly
	}
	i := sort.Search(len(p.baseT), func(k int) bool { return p.baseT[k] >= expEnd })
	if i >= len(p.baseT) || p.baseT[i] != expEnd {
		return
	}
	running := ctx.Running()
	if len(running) > 0 && running[0].ExpEnd <= now {
		return // an overdue clamp may alias any breakpoint: rebuild honestly
	}
	shared := false
	ri := sort.Search(len(running), func(k int) bool { return running[k].ExpEnd >= expEnd })
	if ri < len(running) && running[ri].ExpEnd == expEnd {
		shared = true
	}
	if !shared && len(p.winT) > 0 {
		wi := sort.Search(len(p.winT), func(k int) bool { return p.winT[k] >= expEnd })
		if wi < len(p.winT) && p.winT[wi] == expEnd {
			shared = true
		}
	}
	for k := 0; k < i; k++ {
		p.baseF[k] += size
	}
	if !shared {
		copy(p.baseT[i:], p.baseT[i+1:])
		copy(p.baseF[i:], p.baseF[i+1:])
		p.baseT = p.baseT[:len(p.baseT)-1]
		p.baseF = p.baseF[:len(p.baseF)-1]
	}
	p.baseFree += size
	p.baseRunEpoch = re.RunningEpoch()
	p.buildStamp++
	p.growStamp++
	// The scratch arrays still show the pre-finish profile; the next
	// build's cache hit restores them from the absorbed base.
	p.mutated = true
	p.pmValid = false
}

// advanceBase ages the built-base snapshot forward to now, popping the
// breakpoints that have fallen due, when the result is provably the
// profile a from-scratch merge would emit. The caller has established
// that the window set (by WindowEpoch stamp) and the running set (by
// RunEpoch stamp) are both unchanged since the snapshot was merged, so
// every breakpoint past now — one per distinct remaining delta time,
// never coalesced — and every suffix free count (free(now) plus the
// same deltas) is already exact; the only new information is the clock
// and the machine's free count. The free count is the proof obligation:
// it must equal what the snapshot predicted for now (the profile
// already modeled a reservation claim's capacity as a window, so the
// claim only realizes the prediction). Any drift the snapshot did not
// predict — nodes failing mid-segment, an overdue job about to be
// clamped — declines, and the caller re-merges honestly.
func (p *Profile) advanceBase(ctx Context, now int64, free int) bool {
	running := ctx.Running()
	if len(running) > 0 && running[0].ExpEnd <= now {
		return false // an overdue clamp is a breakpoint the base never held
	}
	idx := 0
	for idx+1 < len(p.baseT) && p.baseT[idx+1] <= now {
		idx++
	}
	if p.baseF[idx] != free {
		return false // the machine moved in a way the snapshot did not predict
	}
	if idx > 0 {
		n := len(p.baseT) - idx
		copy(p.baseT[1:n], p.baseT[idx+1:])
		copy(p.baseF[1:n], p.baseF[idx+1:])
		p.baseT = p.baseT[:n]
		p.baseF = p.baseF[:n]
	}
	p.baseT[0] = now
	p.baseF[0] = free
	p.baseFree = free
	// Age the window deltas the same way, so a later merge over this
	// cache sees only future edges, and re-derive the next
	// classification boundary: every remaining delta time is a future
	// window's Start or some window's End, and a future window's End is
	// dominated by its own Start, so the earliest delta IS the earliest
	// boundary.
	wk := 0
	for wk < len(p.winT) && p.winT[wk] <= now {
		wk++
	}
	if wk > 0 {
		copy(p.winT, p.winT[wk:])
		copy(p.winV, p.winV[wk:])
		p.winT = p.winT[:len(p.winT)-wk]
		p.winV = p.winV[:len(p.winV)-wk]
	}
	if len(p.winT) > 0 {
		p.cwUntil = p.winT[0]
	} else {
		p.cwUntil = maxFuture
	}
	return true
}

// spliceWindows absorbs a window-set change into the aged snapshot when
// the diff against the cached set is exactly: windows that expired (End
// <= now — their deltas have fallen due, so aging the base past now
// already removes every trace of them) plus windows that surfaced
// wholly in the future (an announcement or a planning-horizon crossing;
// Start > now). A surfaced window's effect on a merged profile is
// precisely a Take over its span — split() adds its two breakpoints if
// absent, the subtraction lowers every segment between, and the merge
// would have emitted exactly one breakpoint per distinct delta time —
// so carving it into the base is element-identical to the full re-merge
// (the same lemma TakeStarted rests on). Any other shape of change — an
// ongoing window appearing, a window mutating in place, a non-expired
// window vanishing — declines, and the caller re-merges honestly.
//
// Splices only remove capacity at t >= now, so growStamp is NOT
// advanced: query results that are monotone under capacity loss may be
// resumed across a splice.
func (p *Profile) spliceWindows(ctx Context, now int64, free int, outs, resvs []Window) bool {
	if p.cwOuts > len(p.cw) {
		return false // snapshot predates section tracking
	}
	ins := p.insBuf[:0]
	ok := false
	if ins, ok = diffWindowSection(p.cw[:p.cwOuts], outs, now, ins); !ok {
		p.insBuf = ins
		return false
	}
	if ins, ok = diffWindowSection(p.cw[p.cwOuts:], resvs, now, ins); !ok {
		p.insBuf = ins
		return false
	}
	p.insBuf = ins
	if !p.advanceBase(ctx, now, free) {
		return false
	}
	for _, w := range ins {
		si := p.baseSplit(w.Start)
		ei := p.baseSplit(w.End)
		for i := si; i < ei; i++ {
			p.baseF[i] -= w.Procs
		}
		p.insertDelta(w.Start, -w.Procs)
		p.insertDelta(w.End, w.Procs)
	}
	if len(p.winT) > 0 {
		p.cwUntil = p.winT[0]
	} else {
		p.cwUntil = maxFuture
	}
	p.cw = append(p.cw[:0], outs...) //schedlint:allow allocfree amortized doubling of the reused window snapshot, not a per-splice allocation
	p.cw = append(p.cw, resvs...)    //schedlint:allow allocfree amortized doubling of the reused window snapshot, not a per-splice allocation
	p.cwOuts = len(outs)
	return true
}

// diffWindowSection walks one window section (outages or reservations)
// against its cached predecessor and collects the surfaced windows. The
// greedy two-pointer is sound because the only way a window leaves the
// visible set is by expiring (End <= now), and an expired window can
// never equal a strictly-future insertion — so on a mismatch, dropping
// an expired cached entry is always the right move, and anything else
// unexplained means the diff is not splice-shaped. Surfaced windows
// must be strictly future with positive extent and non-negative size:
// Start > now keeps both deltas past the aged base head, End > Start
// keeps the carve's breakpoint order (a reversed pair would need the
// batch sort), and Procs >= 0 keeps the splice shrink-only.
func diffWindowSection(old, cur []Window, now int64, ins []Window) ([]Window, bool) {
	i, k := 0, 0
	for i < len(old) && k < len(cur) {
		if old[i] == cur[k] {
			i++
			k++
			continue
		}
		if old[i].End <= now {
			i++
			continue
		}
		w := cur[k]
		if now < w.Start && w.Start < w.End && w.Procs >= 0 {
			ins = append(ins, w) //schedlint:allow allocfree amortized doubling of the reused splice scratch, not a per-splice allocation
			k++
			continue
		}
		return ins, false
	}
	for ; i < len(old); i++ {
		if old[i].End > now {
			return ins, false
		}
	}
	for ; k < len(cur); k++ {
		w := cur[k]
		if !(now < w.Start && w.Start < w.End && w.Procs >= 0) {
			return ins, false
		}
		ins = append(ins, w) //schedlint:allow allocfree amortized doubling of the reused splice scratch, not a per-splice allocation
	}
	return ins, true
}

// baseSplit is split() for the snapshot arrays: it ensures a breakpoint
// exists at t (which must be > baseT[0]) and returns its index.
func (p *Profile) baseSplit(t int64) int {
	i := sort.Search(len(p.baseT), func(k int) bool { return p.baseT[k] > t }) - 1
	if p.baseT[i] == t {
		return i
	}
	p.baseT = append(p.baseT, 0) //schedlint:allow allocfree amortized doubling of the reused snapshot arrays, not a per-splice allocation
	p.baseF = append(p.baseF, 0) //schedlint:allow allocfree amortized doubling of the reused snapshot arrays, not a per-splice allocation
	copy(p.baseT[i+2:], p.baseT[i+1:])
	copy(p.baseF[i+2:], p.baseF[i+1:])
	p.baseT[i+1] = t
	p.baseF[i+1] = p.baseF[i]
	return i + 1
}

// insertDelta places one window edge into the sorted scratch delta
// buffers. Placement among equal times is free: the merge sums every
// delta at an instant into a single breakpoint, so only the multiset
// per time matters.
func (p *Profile) insertDelta(t int64, v int) {
	i := sort.Search(len(p.winT), func(k int) bool { return p.winT[k] > t })
	p.winT = append(p.winT, 0) //schedlint:allow allocfree amortized doubling of the reused delta buffers, not a per-splice allocation
	p.winV = append(p.winV, 0) //schedlint:allow allocfree amortized doubling of the reused delta buffers, not a per-splice allocation
	copy(p.winT[i+1:], p.winT[i:])
	copy(p.winV[i+1:], p.winV[i:])
	p.winT[i] = t
	p.winV[i] = v
}

// Release adds procs free processors from time `from` onward (a running
// job's expected completion, or nodes returning after an outage).
func (p *Profile) Release(from int64, procs int) {
	p.mutated = true
	p.pmValid = false
	p.growStamp++
	if from < p.times[0] {
		from = p.times[0]
	}
	i := p.split(from)
	for k := i; k < len(p.frees); k++ {
		p.frees[k] += procs
	}
}

// FreeAt returns the free processor count at time t.
func (p *Profile) FreeAt(t int64) int {
	if t < p.times[0] {
		t = p.times[0]
	}
	return p.frees[p.segmentAt(t)]
}

// NextCapacityRise returns the first breakpoint after the profile's
// start at which the free count rises above the preceding segment's, or
// maxFuture when capacity never rises again. Up to that horizon the
// free count is non-increasing segment to segment, so any "blocked"
// verdict (a failed FitsAt or CanStart) recorded at the profile's start
// stays false as now advances — the guard the swept-queue memo uses to
// outlive individual build stamps.
func (p *Profile) NextCapacityRise() int64 {
	for i := 1; i < len(p.frees); i++ {
		if p.frees[i] > p.frees[i-1] {
			return p.times[i]
		}
	}
	return maxFuture
}

// EarliestFit returns the earliest time >= after at which procs
// processors are continuously free for dur seconds.
//
// Single forward sweep over the segments: the candidate start is
// `after` until a too-full segment is met, then the breakpoint just
// past it — the optimal start is always one of those, so one O(n) scan
// replaces the old try-every-breakpoint O(n²) search with identical
// results. It returns -1 only if the request exceeds the machine (the
// infinite tail segment cannot fit it).
func (p *Profile) EarliestFit(after int64, dur int64, procs int) int64 {
	if after < p.times[0] {
		after = p.times[0]
	}
	if dur < 1 {
		dur = 1
	}
	n := len(p.times)
	start := after
	for i := p.segmentAt(start); i < n; i++ {
		if p.frees[i] < procs {
			if i+1 >= n {
				return -1 // the window would run into a too-full tail
			}
			start = p.times[i+1]
			continue
		}
		if i+1 >= n || p.times[i+1] >= start+dur {
			// Free through the end of the window (the last segment
			// extends forever).
			return start
		}
	}
	return -1
}

// FitsAt reports whether procs processors are continuously free for
// dur seconds starting exactly at start — the EarliestFit(start, ...)
// == start question answered without the full scan: a too-full segment
// fails immediately instead of sending EarliestFit hunting through the
// rest of the profile for a later hole nobody will use.
func (p *Profile) FitsAt(start, dur int64, procs int) bool {
	if start < p.times[0] {
		start = p.times[0]
	}
	if dur < 1 {
		dur = 1
	}
	return p.fits(start, start+dur, procs)
}

// fits reports whether procs are free over the whole window [s, e).
func (p *Profile) fits(s, e int64, procs int) bool {
	si := p.segmentAt(s)
	scanTo := si + fitsScanLimit
	for i := si; i < len(p.times); i++ {
		segStart := p.times[i]
		if segStart >= e {
			break
		}
		var segEnd int64
		if i+1 < len(p.times) {
			segEnd = p.times[i+1]
		} else {
			segEnd = e // last segment extends forever
		}
		if segEnd <= s {
			continue
		}
		if p.frees[i] < procs {
			return false
		}
		if i >= scanTo && s <= p.times[0] {
			// Long window over a start-anchored query (every canStartNow
			// and backfill-sweep check is): the undecided remainder is a
			// prefix-minimum lookup — min(frees[0..j]) for the last j
			// with times[j] < e — so finish in one binary search instead
			// of walking a window-heavy profile segment by segment. The
			// short scan above keeps the common case (a too-full segment
			// near now) at O(1), rejection order unchanged.
			if !p.pmValid {
				p.buildPrefixMin()
			}
			return p.pm[p.segmentAt(e-1)] >= procs
		}
	}
	return true
}

// fitsScanLimit is how many segments fits walks before escaping to the
// prefix-minimum cache: long enough that near-now rejections never pay
// for the cache, short enough that window-heavy sweeps do not walk
// hundreds of segments per candidate.
const fitsScanLimit = 8

// buildPrefixMin fills pm with the running minimum of frees.
func (p *Profile) buildPrefixMin() {
	if cap(p.pm) < len(p.frees) {
		p.pm = make([]int, len(p.frees)) //schedlint:allow allocfree amortized doubling of the reused prefix-min cache, not a per-query allocation
	}
	p.pm = p.pm[:len(p.frees)]
	m := p.frees[0]
	for i, f := range p.frees {
		if f < m {
			m = f
		}
		p.pm[i] = m
	}
	p.pmValid = true
}

// BuildProfile constructs the availability profile seen by a backfiller:
// current free capacity, plus the future releases of running jobs, minus
// known outage and reservation windows. Overdue running jobs (ExpEnd in
// the past) are treated as ending one second from now.
func BuildProfile(ctx Context) *Profile {
	return BuildProfileInto(&Profile{}, ctx)
}

// BuildProfileInto is BuildProfile writing into a caller-owned scratch
// profile (reusing its backing arrays across scheduling passes).
//
// The build is a single merge of two sorted delta streams: running-job
// releases (Running() is ordered by expected end, and overdueClamp is
// monotone, so their breakpoints arrive pre-sorted) and outage/
// reservation window edges (batch-sorted into scratch). Appending
// cumulative breakpoints replaces the old per-window split() inserts,
// whose memmoves dominated windows-on runs; the resulting times/frees
// arrays are element-identical to what the Release/Take sequence
// produced.
func BuildProfileInto(p *Profile, ctx Context) *Profile {
	return buildProfile(p, ctx, true)
}

// BuildRunningProfileInto builds the windowless profile — current free
// capacity plus running-job releases only — through the same sorted-
// merge kernel and snapshot machinery as BuildProfileInto. It replaces
// the classic per-running-job Release loop, whose split() memmoves made
// windowless builds quadratic in the running-set size, and gives the
// windowless schedulers the build stamps and cache-hit restores the
// windowed arm already had. The output is element-identical to the
// Release sequence: Running() is ExpEnd-ordered and overdueClamp is
// monotone, so the cumulative release breakpoints arrive pre-sorted
// with strictly increasing times and the merge appends exactly the
// breakpoints Release would have split in one by one.
func BuildRunningProfileInto(p *Profile, ctx Context) *Profile {
	return buildProfile(p, ctx, false)
}

func buildProfile(p *Profile, ctx Context, windows bool) *Profile {
	now := ctx.Now()
	free := ctx.FreeProcs()

	mode := modeRunning
	if windows {
		mode = modeWindows
	}
	modeOK := p.mode == mode

	// Window-set freshness: by stamp when the context offers one (no
	// window reads at all on a hit), by element comparison otherwise.
	// The running-only arm carries no window deltas at all: its scratch
	// buffers are empty and stay empty, so winsOK is trivially true once
	// the arm matches.
	var outs, resvs []Window
	winsOK := true
	winsSameSet := false
	hasWinEpoch := false
	if windows {
		if we, ok := ctx.(WindowEpoch); ok {
			hasWinEpoch = true
			ep := we.WindowsEpoch()
			winsSameSet = modeOK && p.cwValid && p.cwEpoch == ep
			winsOK = winsSameSet && now < p.cwUntil
			if !winsOK {
				outs, resvs = ctx.Outages(), ctx.Reservations()
				p.cwEpoch = ep
			}
		} else {
			outs, resvs = ctx.Outages(), ctx.Reservations()
			winsOK = modeOK && p.windowCacheValid(now, outs, resvs)
		}
	} else if !modeOK {
		// Entering running-only mode: drop whatever window deltas a
		// previous windowed build left in the scratch buffers.
		p.winT, p.winV, p.winS = p.winT[:0], p.winV[:0], p.winS[:0]
		p.cw = p.cw[:0]
		p.cwValid = false
	}

	// Base freshness: same build arm, same free count, no snapshot
	// breakpoint fallen due (breakpoints are strictly increasing, so
	// baseT[1] bounds them all and also catches overdue-job clamps going
	// stale — the clamp is always the earliest breakpoint), and an
	// unchanged running set — by stamp when the context offers one (no
	// Running() read at all on a hit), by element comparison otherwise.
	baseOK := modeOK && len(p.baseT) > 0 && p.baseFree == free &&
		!(len(p.baseT) > 1 && p.baseT[1] <= now)
	var running []RunningJob
	haveRunning := false
	runSame := false
	re, hasRunEpoch := ctx.(RunEpoch)
	if hasRunEpoch {
		ep := re.RunningEpoch()
		runSame = p.baseEpochOK && p.baseRunEpoch == ep
		baseOK = baseOK && runSame
		p.baseRunEpoch = ep
	} else {
		running = ctx.Running()
		haveRunning = true
		baseOK = baseOK && !p.baseEpochOK && p.runningUnchanged(running)
	}

	if winsOK && baseOK {
		if p.mutated {
			p.times = append(p.times[:0], p.baseT...)
			p.frees = append(p.frees[:0], p.baseF...)
			p.mutated = false
			p.pmValid = false
		}
		p.times[0] = now
		return p
	}

	// Same window set, same running set, but time moved past a base
	// breakpoint or the free count shifted — a reservation claim or an
	// outage taking nodes at a window edge, typically. Try aging the
	// snapshot forward instead of re-merging: the suffix past now is
	// already element-identical to what a from-scratch merge would emit
	// (see advanceBase).
	if hasWinEpoch && hasRunEpoch && winsSameSet && runSame && modeOK &&
		len(p.baseT) > 0 && p.advanceBase(ctx, now, free) {
		p.times = append(p.times[:0], p.baseT...)
		p.frees = append(p.frees[:0], p.baseF...)
		p.mutated = false
		p.pmValid = false
		p.buildStamp++
		return p
	}

	// The window set itself changed under an unchanged running set — a
	// window expired, or a future one surfaced (announcement or horizon
	// crossing). When the diff is exactly that, splice it into the aged
	// snapshot instead of re-merging everything (see spliceWindows).
	if hasWinEpoch && hasRunEpoch && !winsSameSet && runSame && modeOK &&
		p.cwValid && len(p.baseT) > 0 && p.spliceWindows(ctx, now, free, outs, resvs) {
		p.times = append(p.times[:0], p.baseT...)
		p.frees = append(p.frees[:0], p.baseF...)
		p.mutated = false
		p.pmValid = false
		p.buildStamp++
		return p
	}

	if !haveRunning {
		running = ctx.Running()
	}
	p.Reset(now, free)
	if !winsOK {
		p.rebuildWindowDeltas(now, outs, resvs)
	}

	// Two-pointer merge with cached stream heads, so each release is
	// clamped exactly once. The output is at most one breakpoint per
	// input delta, so the arrays are pre-sized once and written by index
	// — the per-element append bookkeeping is measurable at this call
	// rate.
	need := 1 + len(running) + len(p.winT)
	if cap(p.times) < need {
		p.times = append(p.times[:cap(p.times)], make([]int64, need-cap(p.times))...) //schedlint:allow allocfree amortized doubling of the reused profile arrays, not a per-pass allocation
		p.frees = append(p.frees[:cap(p.frees)], make([]int, need-cap(p.frees))...)   //schedlint:allow allocfree amortized doubling of the reused profile arrays, not a per-pass allocation
	}
	times, frees := p.times[:need], p.frees[:need]
	n := 1
	ri, wi := 0, 0
	rt, wt := int64(maxFuture), int64(maxFuture)
	if ri < len(running) {
		rt = overdueClamp(now, running[ri].ExpEnd)
	}
	if wi < len(p.winT) {
		wt = p.winT[wi]
	}
	cur := frees[0]
	for rt != maxFuture {
		t := rt
		if wt < t {
			t = wt
		}
		for rt == t {
			// The base profile (FreeProcs) already excludes the job's
			// processors; they come back at the expected end.
			cur += running[ri].Size
			ri++
			if ri < len(running) {
				rt = overdueClamp(now, running[ri].ExpEnd)
			} else {
				rt = maxFuture
			}
		}
		for wt == t {
			cur += p.winV[wi]
			wi++
			if wi < len(p.winT) {
				wt = p.winT[wi]
			} else {
				wt = maxFuture
			}
		}
		times[n], frees[n] = t, cur
		n++
	}
	// Running stream exhausted: every remaining window delta groups into
	// one breakpoint per distinct time, with no per-element stream-head
	// comparisons. On window-heavy profiles most deltas sit beyond the
	// last running job's end, so this tail is the bulk of the merge.
	for wi < len(p.winT) {
		t := p.winT[wi]
		for wi < len(p.winT) && p.winT[wi] == t {
			cur += p.winV[wi]
			wi++
		}
		times[n], frees[n] = t, cur
		n++
	}
	p.times, p.frees = times[:n], frees[:n]
	p.pmValid = false

	p.baseT = append(p.baseT[:0], p.times...)
	p.baseF = append(p.baseF[:0], p.frees...)
	if hasRunEpoch {
		p.baseRun = p.baseRun[:0]
		p.baseEpochOK = true
	} else {
		p.baseRun = append(p.baseRun[:0], running...)
		p.baseEpochOK = false
	}
	p.baseFree = free
	p.mode = mode
	p.mutated = false
	p.buildStamp++
	p.growStamp++
	return p
}

// Stamp identifies the profile's current base content: it changes on
// every full rebuild and is stable across cache-hit rebuilds. Combined
// with Mutated(), it tells a scheduler whether query results cached
// from an earlier pass are still exact.
func (p *Profile) Stamp() uint64 { return p.buildStamp }

// GrowStamp identifies the last build that may have increased capacity
// at any future instant. Equal GrowStamps across passes mean every
// intervening rebuild was shrink-only (start absorptions, base aging,
// window splices), so a cached result that is monotone under capacity
// loss — the head job's earliest fit can only have moved later — may be
// resumed from rather than recomputed.
func (p *Profile) GrowStamp() uint64 { return p.growStamp }

// Mutated reports whether the profile was written (Take/Release) since
// its last build.
func (p *Profile) Mutated() bool { return p.mutated }

// runningUnchanged reports whether the given running set equals the
// snapshot's (the element-comparison fallback for contexts without a
// RunEpoch stamp).
func (p *Profile) runningUnchanged(running []RunningJob) bool {
	if len(p.baseRun) != len(running) {
		return false
	}
	for i := range running {
		if p.baseRun[i] != running[i] {
			return false
		}
	}
	return true
}

// windowCacheValid reports whether the cached winT/winV deltas still
// describe the given window set at time now: same windows, in order,
// and no window has crossed a classification boundary (a future
// window's Start, an ongoing window's End) since they were built. All
// cached delta times sit at or past those boundaries, so while the
// check holds every delta time stays strictly after now and the merge
// invariant (breakpoints > times[0]) is preserved.
func (p *Profile) windowCacheValid(now int64, outs, resvs []Window) bool {
	if !p.cwValid || now >= p.cwUntil || len(p.cw) != len(outs)+len(resvs) {
		return false
	}
	for i, w := range outs {
		if p.cw[i] != w {
			return false
		}
	}
	for i, w := range resvs {
		if p.cw[len(outs)+i] != w {
			return false
		}
	}
	return true
}

// rebuildWindowDeltas refills the scratch delta buffers from the given
// window set. An ongoing window's processors are already unavailable
// (excluded from FreeProcs or held by the reservation's allocation) and
// simply return at End; a future window subtracts capacity over its
// span. The set is recorded in the cw snapshot — the element-wise
// freshness fallback for contexts without a WindowEpoch stamp, and the
// diff baseline spliceWindows ages incrementally for contexts with one.
//
// crossing re-derives the full delta set here before the merge.
//
//schedlint:hotpath every window-epoch bump and classification-boundary
func (p *Profile) rebuildWindowDeltas(now int64, outs, resvs []Window) {
	p.cw = append(p.cw[:0], outs...) //schedlint:allow allocfree amortized doubling of the reused window snapshot, not a per-rebuild allocation
	p.cw = append(p.cw, resvs...)    //schedlint:allow allocfree amortized doubling of the reused window snapshot, not a per-rebuild allocation
	p.cwOuts = len(outs)
	p.cwUntil = maxFuture
	need := 2 * (len(outs) + len(resvs))
	if cap(p.winT) < need || cap(p.winV) < need {
		c := 2 * cap(p.winT)
		if c < need {
			c = need
		}
		p.winT = make([]int64, c) //schedlint:allow allocfree amortized doubling of the reused delta buffers, not a per-rebuild allocation
		p.winV = make([]int, c)   //schedlint:allow allocfree amortized doubling of the reused delta buffers, not a per-rebuild allocation
	}
	winT, winV := p.winT[:need], p.winV[:need]
	n := 0
	for s := 0; s < 2; s++ {
		wins := outs
		if s == 1 {
			wins = resvs
		}
		for _, w := range wins {
			if w.End <= now {
				continue
			}
			if w.Start <= now {
				winT[n], winV[n] = w.End, w.Procs
				n++
				if w.End < p.cwUntil {
					p.cwUntil = w.End
				}
				continue
			}
			winT[n], winV[n] = w.Start, -w.Procs
			winT[n+1], winV[n+1] = w.End, w.Procs
			n += 2
			if w.Start < p.cwUntil {
				p.cwUntil = w.Start
			}
		}
	}
	p.winT, p.winV = winT[:n], winV[:n]
	p.winS = p.winS[:0]
	// Windows arrive roughly chronologically (outage logs and
	// reservation calendars are built in time order), so the written
	// deltas are usually already sorted; a linear scan beats paying
	// sort.Sort's indirect calls on every rebuild. The arrival-sequence
	// tiebreak (winS) is only materialized when a sort is actually
	// needed: equal times keep write order either way, which is exactly
	// the apply order the old per-edge insertion sort produced.
	for i := 1; i < n; i++ {
		if winT[i] < winT[i-1] {
			for k := 0; k < n; k++ {
				p.winS = append(p.winS, int32(k)) //schedlint:allow allocfree amortized doubling of the reused tiebreak buffer, not a per-rebuild allocation
			}
			sort.Sort((*deltaOrder)(p))
			p.winS = p.winS[:0]
			break
		}
	}
	p.cwValid = true
}

// deltaOrder views a Profile's scratch window deltas as a sort.Interface
// keyed by (time, arrival sequence). The conversion is pointer-only, so
// sorting through it allocates nothing.
type deltaOrder Profile

func (d *deltaOrder) Len() int { return len(d.winT) }

func (d *deltaOrder) Less(i, j int) bool {
	return d.winT[i] < d.winT[j] || (d.winT[i] == d.winT[j] && d.winS[i] < d.winS[j])
}

func (d *deltaOrder) Swap(i, j int) {
	d.winT[i], d.winT[j] = d.winT[j], d.winT[i]
	d.winV[i], d.winV[j] = d.winV[j], d.winV[i]
	d.winS[i], d.winS[j] = d.winS[j], d.winS[i]
}
