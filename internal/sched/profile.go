package sched

// Profile is a piecewise-constant availability profile: free processor
// count as a function of future time. Backfilling schedulers build one
// from the running jobs' expected completions (plus outage and
// reservation windows) and query it for the earliest hole that fits a
// job. This is the core data structure of conservative backfilling.
type Profile struct {
	// times[i] is the start of segment i; frees[i] is the free
	// processor count on [times[i], times[i+1]). The last segment
	// extends to infinity.
	times []int64
	frees []int
}

// NewProfile creates a profile that is flat at free processors from
// time start onward.
func NewProfile(start int64, free int) *Profile {
	return &Profile{times: []int64{start}, frees: []int{free}}
}

// Reset re-initializes p to a flat profile of free processors from
// start onward, reusing its backing arrays. Schedulers keep one scratch
// Profile and Reset it each scheduling pass instead of allocating.
func (p *Profile) Reset(start int64, free int) *Profile {
	p.times = append(p.times[:0], start)
	p.frees = append(p.frees[:0], free)
	return p
}

// clone is used by tests.
func (p *Profile) clone() *Profile {
	return &Profile{
		times: append([]int64(nil), p.times...),
		frees: append([]int(nil), p.frees...),
	}
}

// segmentAt returns the index of the segment containing t (t must be >=
// p.times[0]): the last i with times[i] <= t. Hand-rolled binary search
// — this sits under every split/FreeAt/EarliestFit on the per-event
// path, where sort.Search's closure calls are measurable.
func (p *Profile) segmentAt(t int64) int {
	lo, hi := 0, len(p.times) // invariant: times[lo-1] <= t < times[hi]
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.times[mid] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// split ensures a breakpoint exists at t and returns its index.
func (p *Profile) split(t int64) int {
	i := p.segmentAt(t)
	if p.times[i] == t {
		return i
	}
	// Insert after i.
	p.times = append(p.times, 0)
	p.frees = append(p.frees, 0)
	copy(p.times[i+2:], p.times[i+1:])
	copy(p.frees[i+2:], p.frees[i+1:])
	p.times[i+1] = t
	p.frees[i+1] = p.frees[i]
	return i + 1
}

// Take subtracts procs free processors over [start, end). Negative free
// values are allowed transiently (they simply mean "no hole here").
func (p *Profile) Take(start, end int64, procs int) {
	if end <= start || procs == 0 {
		return
	}
	if start < p.times[0] {
		start = p.times[0]
	}
	if end <= p.times[0] {
		return
	}
	si := p.split(start)
	ei := p.split(end)
	for i := si; i < ei; i++ {
		p.frees[i] -= procs
	}
}

// Release adds procs free processors from time `from` onward (a running
// job's expected completion, or nodes returning after an outage).
func (p *Profile) Release(from int64, procs int) {
	if from < p.times[0] {
		from = p.times[0]
	}
	i := p.split(from)
	for k := i; k < len(p.frees); k++ {
		p.frees[k] += procs
	}
}

// FreeAt returns the free processor count at time t.
func (p *Profile) FreeAt(t int64) int {
	if t < p.times[0] {
		t = p.times[0]
	}
	return p.frees[p.segmentAt(t)]
}

// EarliestFit returns the earliest time >= after at which procs
// processors are continuously free for dur seconds.
//
// Single forward sweep over the segments: the candidate start is
// `after` until a too-full segment is met, then the breakpoint just
// past it — the optimal start is always one of those, so one O(n) scan
// replaces the old try-every-breakpoint O(n²) search with identical
// results. It returns -1 only if the request exceeds the machine (the
// infinite tail segment cannot fit it).
func (p *Profile) EarliestFit(after int64, dur int64, procs int) int64 {
	if after < p.times[0] {
		after = p.times[0]
	}
	if dur < 1 {
		dur = 1
	}
	n := len(p.times)
	start := after
	for i := p.segmentAt(start); i < n; i++ {
		if p.frees[i] < procs {
			if i+1 >= n {
				return -1 // the window would run into a too-full tail
			}
			start = p.times[i+1]
			continue
		}
		if i+1 >= n || p.times[i+1] >= start+dur {
			// Free through the end of the window (the last segment
			// extends forever).
			return start
		}
	}
	return -1
}

// fits reports whether procs are free over the whole window [s, e).
func (p *Profile) fits(s, e int64, procs int) bool {
	si := p.segmentAt(s)
	for i := si; i < len(p.times); i++ {
		segStart := p.times[i]
		if segStart >= e {
			break
		}
		var segEnd int64
		if i+1 < len(p.times) {
			segEnd = p.times[i+1]
		} else {
			segEnd = e // last segment extends forever
		}
		if segEnd <= s {
			continue
		}
		if p.frees[i] < procs {
			return false
		}
	}
	return true
}

// BuildProfile constructs the availability profile seen by a backfiller:
// current free capacity, plus the future releases of running jobs, minus
// known outage and reservation windows. Overdue running jobs (ExpEnd in
// the past) are treated as ending one second from now.
func BuildProfile(ctx Context) *Profile {
	return BuildProfileInto(&Profile{}, ctx)
}

// BuildProfileInto is BuildProfile writing into a caller-owned scratch
// profile (reusing its backing arrays across scheduling passes).
func BuildProfileInto(p *Profile, ctx Context) *Profile {
	now := ctx.Now()
	p.Reset(now, ctx.FreeProcs())
	for _, r := range ctx.Running() {
		// The base profile (FreeProcs) already excludes the job's
		// processors; they come back at the expected end.
		p.Release(overdueClamp(now, r.ExpEnd), r.Size)
	}
	for _, w := range ctx.Outages() {
		applyWindow(p, now, w)
	}
	for _, w := range ctx.Reservations() {
		applyWindow(p, now, w)
	}
	return p
}

// applyWindow folds a capacity-reduction window into the profile. An
// ongoing window's processors are already unavailable (excluded from
// FreeProcs or held by the reservation's allocation) and simply return
// at End; a future window subtracts capacity over its span.
func applyWindow(p *Profile, now int64, w Window) {
	if w.End <= now {
		return
	}
	if w.Start <= now {
		p.Release(w.End, w.Procs)
		return
	}
	p.Take(w.Start, w.End, w.Procs)
}
