package sched

// Profile is a piecewise-constant availability profile: free processor
// count as a function of future time. Backfilling schedulers build one
// from the running jobs' expected completions (plus outage and
// reservation windows) and query it for the earliest hole that fits a
// job. This is the core data structure of conservative backfilling.
type Profile struct {
	// times[i] is the start of segment i; frees[i] is the free
	// processor count on [times[i], times[i+1]). The last segment
	// extends to infinity.
	times []int64
	frees []int

	// winT/winV are scratch buffers for BuildProfileInto's window
	// deltas, kept on the profile so a rebuild allocates nothing in
	// steady state.
	winT []int64
	winV []int

	// Window-delta cache: cw snapshots the window set winT/winV were
	// built from, valid while now < cwUntil (the earliest time any
	// window's ongoing/future classification changes). Window sets
	// change on announcements and expiries — thousands of scheduling
	// passes apart — so the sort above almost always amortizes to an
	// O(windows) equality check.
	cw      []Window
	cwUntil int64
	cwValid bool
	// cwEpoch mirrors the context's WindowEpoch stamp when it offers
	// one; equal stamps replace the element-wise cw comparison (and the
	// window-set reads) entirely.
	cwEpoch uint64

	// mutated tracks whether times/frees were written since the last
	// BuildProfileInto (schedulers mirror the starts they make with
	// Take). An unmutated profile is still the snapshot below, so a
	// cache-hit rebuild is just re-stamping times[0].
	mutated bool
	// buildStamp counts full (non-cache-hit) builds. Schedulers use it
	// to key derived results — equal stamps plus an unmutated profile
	// mean every query would answer as it did last pass.
	buildStamp uint64

	// Built-profile snapshot: baseT/baseF hold the pristine merge
	// result, baseRun/baseFree the running set and free count it was
	// built from. While those inputs are unchanged (most passes in a
	// congested run start nothing, so they are) and no breakpoint has
	// fallen due, a rebuild is a memcpy restore instead of a re-merge —
	// the scratch profile itself gets mutated by Take during the pass,
	// so the snapshot is what makes reuse possible at all.
	baseT    []int64
	baseF    []int
	baseRun  []RunningJob
	baseFree int
	// baseRunEpoch mirrors the context's RunEpoch stamp when it offers
	// one; equal stamps replace the baseRun comparison (and the
	// Running() read) entirely. baseEpochOK distinguishes which scheme
	// stamped the current snapshot.
	baseRunEpoch uint64
	baseEpochOK  bool
}

// NewProfile creates a profile that is flat at free processors from
// time start onward.
func NewProfile(start int64, free int) *Profile {
	return &Profile{times: []int64{start}, frees: []int{free}}
}

// Reset re-initializes p to a flat profile of free processors from
// start onward, reusing its backing arrays. Schedulers keep one scratch
// Profile and Reset it each scheduling pass instead of allocating.
func (p *Profile) Reset(start int64, free int) *Profile {
	p.times = append(p.times[:0], start)
	p.frees = append(p.frees[:0], free)
	return p
}

// clone is used by tests.
func (p *Profile) clone() *Profile {
	return &Profile{
		times: append([]int64(nil), p.times...),
		frees: append([]int(nil), p.frees...),
	}
}

// segmentAt returns the index of the segment containing t (t must be >=
// p.times[0]): the last i with times[i] <= t. Hand-rolled binary search
// — this sits under every split/FreeAt/EarliestFit on the per-event
// path, where sort.Search's closure calls are measurable.
func (p *Profile) segmentAt(t int64) int {
	// Most queries anchor at the profile start (canStartNow, backfill
	// Take at now): answer those without the search.
	if len(p.times) == 1 || t < p.times[1] {
		return 0
	}
	lo, hi := 0, len(p.times) // invariant: times[lo-1] <= t < times[hi]
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.times[mid] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// split ensures a breakpoint exists at t and returns its index.
func (p *Profile) split(t int64) int {
	i := p.segmentAt(t)
	if p.times[i] == t {
		return i
	}
	// Insert after i.
	p.times = append(p.times, 0)
	p.frees = append(p.frees, 0)
	copy(p.times[i+2:], p.times[i+1:])
	copy(p.frees[i+2:], p.frees[i+1:])
	p.times[i+1] = t
	p.frees[i+1] = p.frees[i]
	return i + 1
}

// Take subtracts procs free processors over [start, end). Negative free
// values are allowed transiently (they simply mean "no hole here").
func (p *Profile) Take(start, end int64, procs int) {
	if end <= start || procs == 0 {
		return
	}
	if start < p.times[0] {
		start = p.times[0]
	}
	if end <= p.times[0] {
		return
	}
	p.mutated = true
	si := p.split(start)
	ei := p.split(end)
	for i := si; i < ei; i++ {
		p.frees[i] -= procs
	}
}

// Release adds procs free processors from time `from` onward (a running
// job's expected completion, or nodes returning after an outage).
func (p *Profile) Release(from int64, procs int) {
	p.mutated = true
	if from < p.times[0] {
		from = p.times[0]
	}
	i := p.split(from)
	for k := i; k < len(p.frees); k++ {
		p.frees[k] += procs
	}
}

// FreeAt returns the free processor count at time t.
func (p *Profile) FreeAt(t int64) int {
	if t < p.times[0] {
		t = p.times[0]
	}
	return p.frees[p.segmentAt(t)]
}

// EarliestFit returns the earliest time >= after at which procs
// processors are continuously free for dur seconds.
//
// Single forward sweep over the segments: the candidate start is
// `after` until a too-full segment is met, then the breakpoint just
// past it — the optimal start is always one of those, so one O(n) scan
// replaces the old try-every-breakpoint O(n²) search with identical
// results. It returns -1 only if the request exceeds the machine (the
// infinite tail segment cannot fit it).
func (p *Profile) EarliestFit(after int64, dur int64, procs int) int64 {
	if after < p.times[0] {
		after = p.times[0]
	}
	if dur < 1 {
		dur = 1
	}
	n := len(p.times)
	start := after
	for i := p.segmentAt(start); i < n; i++ {
		if p.frees[i] < procs {
			if i+1 >= n {
				return -1 // the window would run into a too-full tail
			}
			start = p.times[i+1]
			continue
		}
		if i+1 >= n || p.times[i+1] >= start+dur {
			// Free through the end of the window (the last segment
			// extends forever).
			return start
		}
	}
	return -1
}

// FitsAt reports whether procs processors are continuously free for
// dur seconds starting exactly at start — the EarliestFit(start, ...)
// == start question answered without the full scan: a too-full segment
// fails immediately instead of sending EarliestFit hunting through the
// rest of the profile for a later hole nobody will use.
func (p *Profile) FitsAt(start, dur int64, procs int) bool {
	if start < p.times[0] {
		start = p.times[0]
	}
	if dur < 1 {
		dur = 1
	}
	return p.fits(start, start+dur, procs)
}

// fits reports whether procs are free over the whole window [s, e).
func (p *Profile) fits(s, e int64, procs int) bool {
	si := p.segmentAt(s)
	for i := si; i < len(p.times); i++ {
		segStart := p.times[i]
		if segStart >= e {
			break
		}
		var segEnd int64
		if i+1 < len(p.times) {
			segEnd = p.times[i+1]
		} else {
			segEnd = e // last segment extends forever
		}
		if segEnd <= s {
			continue
		}
		if p.frees[i] < procs {
			return false
		}
	}
	return true
}

// BuildProfile constructs the availability profile seen by a backfiller:
// current free capacity, plus the future releases of running jobs, minus
// known outage and reservation windows. Overdue running jobs (ExpEnd in
// the past) are treated as ending one second from now.
func BuildProfile(ctx Context) *Profile {
	return BuildProfileInto(&Profile{}, ctx)
}

// BuildProfileInto is BuildProfile writing into a caller-owned scratch
// profile (reusing its backing arrays across scheduling passes).
//
// The build is a single merge of two sorted delta streams: running-job
// releases (Running() is ordered by expected end, and overdueClamp is
// monotone, so their breakpoints arrive pre-sorted) and outage/
// reservation window edges (insertion-sorted into scratch — window
// counts are small). Appending cumulative breakpoints replaces the old
// per-window split() inserts, whose memmoves dominated windows-on runs;
// the resulting times/frees arrays are element-identical to what the
// Release/Take sequence produced.
func BuildProfileInto(p *Profile, ctx Context) *Profile {
	now := ctx.Now()
	free := ctx.FreeProcs()

	// Window-set freshness: by stamp when the context offers one (no
	// window reads at all on a hit), by element comparison otherwise.
	var outs, resvs []Window
	var winsOK bool
	if we, ok := ctx.(WindowEpoch); ok {
		ep := we.WindowsEpoch()
		winsOK = p.cwValid && p.cwEpoch == ep && now < p.cwUntil
		if !winsOK {
			outs, resvs = ctx.Outages(), ctx.Reservations()
			p.cwEpoch = ep
		}
	} else {
		outs, resvs = ctx.Outages(), ctx.Reservations()
		winsOK = p.windowCacheValid(now, outs, resvs)
	}

	// Base freshness: same free count, no snapshot breakpoint fallen due
	// (breakpoints are strictly increasing, so baseT[1] bounds them all
	// and also catches overdue-job clamps going stale — the clamp is
	// always the earliest breakpoint), and an unchanged running set — by
	// stamp when the context offers one (no Running() read at all on a
	// hit), by element comparison otherwise.
	baseOK := len(p.baseT) > 0 && p.baseFree == free &&
		!(len(p.baseT) > 1 && p.baseT[1] <= now)
	var running []RunningJob
	haveRunning := false
	re, hasRunEpoch := ctx.(RunEpoch)
	if hasRunEpoch {
		ep := re.RunningEpoch()
		baseOK = baseOK && p.baseEpochOK && p.baseRunEpoch == ep
		p.baseRunEpoch = ep
	} else {
		running = ctx.Running()
		haveRunning = true
		baseOK = baseOK && !p.baseEpochOK && p.runningUnchanged(running)
	}

	if winsOK && baseOK {
		if p.mutated {
			p.times = append(p.times[:0], p.baseT...)
			p.frees = append(p.frees[:0], p.baseF...)
			p.mutated = false
		}
		p.times[0] = now
		return p
	}

	if !haveRunning {
		running = ctx.Running()
	}
	p.Reset(now, free)
	if !winsOK {
		p.winT = p.winT[:0]
		p.winV = p.winV[:0]
		p.cw = p.cw[:0]
		p.cwUntil = maxFuture
		for _, w := range outs {
			p.addWindow(now, w)
		}
		for _, w := range resvs {
			p.addWindow(now, w)
		}
		p.cwValid = true
	}

	// Two-pointer merge with cached stream heads, so each release is
	// clamped exactly once. The output is at most one breakpoint per
	// input delta, so the arrays are pre-sized once and written by index
	// — the per-element append bookkeeping is measurable at this call
	// rate.
	need := 1 + len(running) + len(p.winT)
	if cap(p.times) < need {
		p.times = append(p.times[:cap(p.times)], make([]int64, need-cap(p.times))...) //schedlint:allow allocfree amortized doubling of the reused profile arrays, not a per-pass allocation
		p.frees = append(p.frees[:cap(p.frees)], make([]int, need-cap(p.frees))...)   //schedlint:allow allocfree amortized doubling of the reused profile arrays, not a per-pass allocation
	}
	times, frees := p.times[:need], p.frees[:need]
	n := 1
	ri, wi := 0, 0
	rt, wt := int64(maxFuture), int64(maxFuture)
	if ri < len(running) {
		rt = overdueClamp(now, running[ri].ExpEnd)
	}
	if wi < len(p.winT) {
		wt = p.winT[wi]
	}
	cur := frees[0]
	for rt != maxFuture || wt != maxFuture {
		t := rt
		if wt < t {
			t = wt
		}
		for rt == t {
			// The base profile (FreeProcs) already excludes the job's
			// processors; they come back at the expected end.
			cur += running[ri].Size
			ri++
			if ri < len(running) {
				rt = overdueClamp(now, running[ri].ExpEnd)
			} else {
				rt = maxFuture
			}
		}
		for wt == t {
			cur += p.winV[wi]
			wi++
			if wi < len(p.winT) {
				wt = p.winT[wi]
			} else {
				wt = maxFuture
			}
		}
		times[n], frees[n] = t, cur
		n++
	}
	p.times, p.frees = times[:n], frees[:n]

	p.baseT = append(p.baseT[:0], p.times...)
	p.baseF = append(p.baseF[:0], p.frees...)
	if hasRunEpoch {
		p.baseRun = p.baseRun[:0]
		p.baseEpochOK = true
	} else {
		p.baseRun = append(p.baseRun[:0], running...)
		p.baseEpochOK = false
	}
	p.baseFree = free
	p.mutated = false
	p.buildStamp++
	return p
}

// Stamp identifies the profile's current base content: it changes on
// every full rebuild and is stable across cache-hit rebuilds. Combined
// with Mutated(), it tells a scheduler whether query results cached
// from an earlier pass are still exact.
func (p *Profile) Stamp() uint64 { return p.buildStamp }

// Mutated reports whether the profile was written (Take/Release) since
// its last build.
func (p *Profile) Mutated() bool { return p.mutated }

// runningUnchanged reports whether the given running set equals the
// snapshot's (the element-comparison fallback for contexts without a
// RunEpoch stamp).
func (p *Profile) runningUnchanged(running []RunningJob) bool {
	if len(p.baseRun) != len(running) {
		return false
	}
	for i := range running {
		if p.baseRun[i] != running[i] {
			return false
		}
	}
	return true
}

// windowCacheValid reports whether the cached winT/winV deltas still
// describe the given window set at time now: same windows, in order,
// and no window has crossed a classification boundary (a future
// window's Start, an ongoing window's End) since they were built. All
// cached delta times sit at or past those boundaries, so while the
// check holds every delta time stays strictly after now and the merge
// invariant (breakpoints > times[0]) is preserved.
func (p *Profile) windowCacheValid(now int64, outs, resvs []Window) bool {
	if !p.cwValid || now >= p.cwUntil || len(p.cw) != len(outs)+len(resvs) {
		return false
	}
	for i, w := range outs {
		if p.cw[i] != w {
			return false
		}
	}
	for i, w := range resvs {
		if p.cw[len(outs)+i] != w {
			return false
		}
	}
	return true
}

// addWindow folds a capacity-reduction window into the scratch delta
// buffers and records it in the cache snapshot. An ongoing window's
// processors are already unavailable (excluded from FreeProcs or held
// by the reservation's allocation) and simply return at End; a future
// window subtracts capacity over its span.
func (p *Profile) addWindow(now int64, w Window) {
	p.cw = append(p.cw, w)
	if w.End <= now {
		return
	}
	if w.Start <= now {
		p.addDelta(w.End, w.Procs)
		if w.End < p.cwUntil {
			p.cwUntil = w.End
		}
		return
	}
	p.addDelta(w.Start, -w.Procs)
	p.addDelta(w.End, w.Procs)
	if w.Start < p.cwUntil {
		p.cwUntil = w.Start
	}
}

// addDelta insertion-sorts one (time, delta) edge into the scratch
// buffers. Insertion keeps equal-time edges in arrival order, matching
// the old apply order exactly.
func (p *Profile) addDelta(t int64, v int) {
	p.winT = append(p.winT, t)
	p.winV = append(p.winV, v)
	for i := len(p.winT) - 1; i > 0 && p.winT[i-1] > t; i-- {
		p.winT[i], p.winT[i-1] = p.winT[i-1], p.winT[i]
		p.winV[i], p.winV[i-1] = p.winV[i-1], p.winV[i]
	}
}
