package sched

import (
	"fmt"
	"sort"

	"parsched/internal/core"
)

func init() {
	Register(Family{
		Name: "gang",
		Doc:  "gang scheduling (Ousterhout matrix, rate-shared rows)",
		Params: []Param{
			{Name: "mpl", Kind: IntParam, Default: "3",
				Doc: "multiprogramming level: maximum matrix rows"},
		},
		Aliases: map[string]string{
			"gang2": "gang(mpl=2)",
			"gang3": "gang(mpl=3)",
			"gang5": "gang(mpl=5)",
		},
		New: func(a Args) (Scheduler, error) {
			mpl := a.Int("mpl")
			if mpl < 1 {
				return nil, fmt.Errorf("mpl must be >= 1, got %d", mpl)
			}
			return NewGang(mpl), nil
		},
	})
}

// Gang is a gang scheduler with an Ousterhout matrix: the machine's
// processors are time-sliced across up to Slots rows; all processes of
// a job occupy one row (coscheduled), and rows execute round-robin.
// A job assigned to a matrix with k occupied rows runs at rate 1/k.
//
// The paper discusses gang scheduling both as the space/time-slicing
// comparison in the sigmetrics community (Section 2.2) and as the
// intellectual ancestor of co-allocation ("similar to the idea of gang
// scheduling on parallel machines [21]"). The event-driven simulation
// abstracts quantum rotation by execution rates, which is exact in the
// limit of quanta much shorter than runtimes.
type Gang struct {
	// Slots is the maximum multiprogramming level (matrix rows).
	Slots int
	// CtxPenalty is an optional per-rate-change overhead knob kept at
	// zero by default (rates already capture slice sharing).
	CtxPenalty float64

	rows  []*gangRow
	queue []*core.Job
}

type gangRow struct {
	used int
	jobs []*core.Job
}

// NewGang returns a gang scheduler with the given multiprogramming
// level (a typical value is 2–5 rows).
func NewGang(slots int) *Gang {
	if slots < 1 {
		slots = 1
	}
	return &Gang{Slots: slots}
}

// Name implements Scheduler. The default multiprogramming level keeps
// the legacy label; other levels name themselves by their canonical
// spec, so "gang(mpl=2),gang(mpl=5)" rows stay distinguishable and
// every label feeds back into Parse.
func (g *Gang) Name() string {
	if g.Slots == 3 {
		return "gang"
	}
	return fmt.Sprintf("gang(mpl=%d)", g.Slots)
}

// Queued implements QueueReporter.
func (g *Gang) Queued() []*core.Job { return append([]*core.Job(nil), g.queue...) }

// OnSubmit implements Scheduler.
func (g *Gang) OnSubmit(ctx Context, j *core.Job) {
	g.queue = append(g.queue, j)
	g.schedule(ctx)
}

// OnFinish implements Scheduler.
func (g *Gang) OnFinish(ctx Context, j *core.Job) {
	g.removeJob(j)
	g.schedule(ctx)
}

// OnChange implements Scheduler.
func (g *Gang) OnChange(ctx Context) { g.schedule(ctx) }

func (g *Gang) removeJob(j *core.Job) {
	for ri, row := range g.rows {
		for k, jj := range row.jobs {
			if jj.ID == j.ID {
				row.jobs = append(row.jobs[:k], row.jobs[k+1:]...)
				row.used -= j.Size
				if len(row.jobs) == 0 {
					g.rows = append(g.rows[:ri], g.rows[ri+1:]...)
				}
				return
			}
		}
	}
}

// schedule packs queued jobs into rows (first fit, smallest-remaining
// row first to reduce fragmentation), then rebalances rates.
func (g *Gang) schedule(ctx Context) {
	total := ctx.TotalProcs()
	kept := g.queue[:0]
	for _, j := range g.queue {
		if j.Size > total {
			kept = append(kept, j) // cannot fit at all right now
			continue
		}
		row := g.pickRow(j.Size, total)
		if row == nil {
			kept = append(kept, j)
			continue
		}
		row.jobs = append(row.jobs, j)
		row.used += j.Size
		ctx.StartShared(j, 0) // rate set by rebalance below
	}
	g.queue = kept
	g.rebalance(ctx)
}

// pickRow returns the fullest row with room for size procs, or a new
// row if allowed.
func (g *Gang) pickRow(size, total int) *gangRow {
	var best *gangRow
	for _, r := range g.rows {
		if total-r.used >= size {
			if best == nil || r.used > best.used {
				best = r
			}
		}
	}
	if best != nil {
		return best
	}
	if len(g.rows) < g.Slots {
		r := &gangRow{}
		g.rows = append(g.rows, r)
		return r
	}
	return nil
}

// rebalance sets every running job's rate to 1/rows.
func (g *Gang) rebalance(ctx Context) {
	k := len(g.rows)
	if k == 0 {
		return
	}
	rate := 1 / float64(k)
	// Deterministic order: by job ID.
	var all []*core.Job
	for _, r := range g.rows {
		all = append(all, r.jobs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	for _, j := range all {
		ctx.SetRate(j, rate)
	}
}

// Rows reports the current multiprogramming level (for tests).
func (g *Gang) Rows() int { return len(g.rows) }
