package sched

import (
	"fmt"

	"parsched/internal/core"
)

func init() {
	Register(Family{
		Name: "gang",
		Doc:  "gang scheduling (Ousterhout matrix, rate-shared rows)",
		Params: []Param{
			{Name: "mpl", Kind: IntParam, Default: "3",
				Doc: "multiprogramming level: maximum matrix rows"},
		},
		Aliases: map[string]string{
			"gang2": "gang(mpl=2)",
			"gang3": "gang(mpl=3)",
			"gang5": "gang(mpl=5)",
		},
		New: func(a Args) (Scheduler, error) {
			mpl := a.Int("mpl")
			if mpl < 1 {
				return nil, fmt.Errorf("mpl must be >= 1, got %d", mpl)
			}
			return NewGang(mpl), nil
		},
	})
}

// Gang is a gang scheduler with an Ousterhout matrix: the machine's
// processors are time-sliced across up to Slots rows; all processes of
// a job occupy one row (coscheduled), and rows execute round-robin.
// A job assigned to a matrix with k occupied rows runs at rate 1/k.
//
// The paper discusses gang scheduling both as the space/time-slicing
// comparison in the sigmetrics community (Section 2.2) and as the
// intellectual ancestor of co-allocation ("similar to the idea of gang
// scheduling on parallel machines [21]"). The event-driven simulation
// abstracts quantum rotation by execution rates, which is exact in the
// limit of quanta much shorter than runtimes.
type Gang struct {
	// Slots is the maximum multiprogramming level (matrix rows).
	Slots int
	// CtxPenalty is an optional per-rate-change overhead knob kept at
	// zero by default (rates already capture slice sharing).
	CtxPenalty float64

	rows  []*gangRow
	queue []*core.Job
	// members mirrors every job in the matrix, kept sorted by job ID:
	// the deterministic order rebalance applies rates in. Maintained
	// incrementally on place/remove so a rebalance allocates nothing.
	members []*core.Job
	// rowPool recycles emptied rows (their jobs backing arrays included)
	// so reopening a row costs no allocation in steady state.
	rowPool []*gangRow
}

type gangRow struct {
	used int
	jobs []*core.Job
}

// NewGang returns a gang scheduler with the given multiprogramming
// level (a typical value is 2–5 rows).
func NewGang(slots int) *Gang {
	if slots < 1 {
		slots = 1
	}
	return &Gang{Slots: slots}
}

// Name implements Scheduler. The default multiprogramming level keeps
// the legacy label; other levels name themselves by their canonical
// spec, so "gang(mpl=2),gang(mpl=5)" rows stay distinguishable and
// every label feeds back into Parse.
//
//schedlint:coldpath reporting: result labeling, once per run
func (g *Gang) Name() string {
	if g.Slots == 3 {
		return "gang"
	}
	return fmt.Sprintf("gang(mpl=%d)", g.Slots)
}

// Queued implements QueueReporter.
func (g *Gang) Queued() []*core.Job { return append([]*core.Job(nil), g.queue...) }

// OnSubmit implements Scheduler.
func (g *Gang) OnSubmit(ctx Context, j *core.Job) {
	g.queue = append(g.queue, j)
	g.schedule(ctx)
}

// OnFinish implements Scheduler.
func (g *Gang) OnFinish(ctx Context, j *core.Job) {
	g.removeJob(j)
	g.schedule(ctx)
}

// OnChange implements Scheduler.
func (g *Gang) OnChange(ctx Context) { g.schedule(ctx) }

func (g *Gang) removeJob(j *core.Job) {
	for ri, row := range g.rows {
		for k, jj := range row.jobs {
			if jj.ID == j.ID {
				copy(row.jobs[k:], row.jobs[k+1:])
				row.jobs[len(row.jobs)-1] = nil
				row.jobs = row.jobs[:len(row.jobs)-1]
				row.used -= j.Size
				if len(row.jobs) == 0 {
					g.rows = append(g.rows[:ri], g.rows[ri+1:]...)
					g.rowPool = append(g.rowPool, row)
				}
				g.removeMember(j.ID)
				return
			}
		}
	}
}

// memberIndex returns the position of id in the sorted member list (or
// the insertion point if absent).
func (g *Gang) memberIndex(id int64) int {
	lo, hi := 0, len(g.members)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if g.members[mid].ID < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (g *Gang) addMember(j *core.Job) {
	i := g.memberIndex(j.ID)
	g.members = append(g.members, nil)
	copy(g.members[i+1:], g.members[i:])
	g.members[i] = j
}

func (g *Gang) removeMember(id int64) {
	i := g.memberIndex(id)
	if i < len(g.members) && g.members[i].ID == id {
		copy(g.members[i:], g.members[i+1:])
		g.members[len(g.members)-1] = nil
		g.members = g.members[:len(g.members)-1]
	}
}

// schedule packs queued jobs into rows (first fit, smallest-remaining
// row first to reduce fragmentation), then rebalances rates.
func (g *Gang) schedule(ctx Context) {
	total := ctx.TotalProcs()
	kept := g.queue[:0]
	for _, j := range g.queue {
		if j.Size > total {
			kept = append(kept, j) // cannot fit at all right now
			continue
		}
		row := g.pickRow(j.Size, total)
		if row == nil {
			kept = append(kept, j)
			continue
		}
		row.jobs = append(row.jobs, j)
		row.used += j.Size
		g.addMember(j)
		ctx.StartShared(j, 0) // rate set by rebalance below
	}
	g.queue = kept
	g.rebalance(ctx)
}

// pickRow returns the fullest row with room for size procs, or a new
// row if allowed.
func (g *Gang) pickRow(size, total int) *gangRow {
	var best *gangRow
	for _, r := range g.rows {
		if total-r.used >= size {
			if best == nil || r.used > best.used {
				best = r
			}
		}
	}
	if best != nil {
		return best
	}
	if len(g.rows) < g.Slots {
		var r *gangRow
		if n := len(g.rowPool); n > 0 {
			r = g.rowPool[n-1]
			g.rowPool[n-1] = nil
			g.rowPool = g.rowPool[:n-1]
			r.used = 0
			r.jobs = r.jobs[:0]
		} else {
			r = &gangRow{}
		}
		g.rows = append(g.rows, r)
		return r
	}
	return nil
}

// rebalance sets every running job's rate to 1/rows, in ascending job
// ID order (the member list is maintained sorted, so this is a plain
// sweep rather than a per-pass sort).
func (g *Gang) rebalance(ctx Context) {
	k := len(g.rows)
	if k == 0 {
		return
	}
	rate := 1 / float64(k)
	for _, j := range g.members {
		ctx.SetRate(j, rate)
	}
}

// Rows reports the current multiprogramming level (for tests).
func (g *Gang) Rows() int { return len(g.rows) }
