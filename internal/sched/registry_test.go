package sched

import (
	"strings"
	"testing"
)

// legacyNames is the scheduler catalogue as it stood before the spec
// grammar: every one of these must keep building, forever.
var legacyNames = []string{
	"fcfs", "firstfit", "sjf", "ljf", "smallest", "lxf",
	"easy", "easy+win", "easy+mold", "cons", "cons+win",
	"gang", "gang2", "gang3", "gang5",
}

// TestNamesCannotDrift is the structural anti-drift regression: every
// name Names() lists must build, every registered family must be
// listed, and every legacy name must still be accepted and listed.
// Before the registry, gang2/gang5 were accepted by New but absent
// from Names(); a derived listing makes that class of bug impossible.
func TestNamesCannotDrift(t *testing.T) {
	listed := map[string]bool{}
	for _, name := range Names() {
		listed[name] = true
		s, err := New(name)
		if err != nil {
			t.Errorf("listed name %q does not build: %v", name, err)
			continue
		}
		if s.Name() == "" {
			t.Errorf("%q builds a scheduler with an empty Name", name)
		}
	}
	for _, f := range Families() {
		if !listed[f.Name] {
			t.Errorf("family %q not in Names()", f.Name)
		}
		for alias := range f.Aliases {
			if !listed[alias] {
				t.Errorf("alias %q of family %q not in Names()", alias, f.Name)
			}
		}
	}
	for _, name := range legacyNames {
		if !listed[name] {
			t.Errorf("legacy name %q missing from Names()", name)
		}
	}
}

// TestLegacyNamesBuildIdentically: each legacy name and its canonical
// spec construct the same scheduler configuration.
func TestLegacyNamesBuildIdentically(t *testing.T) {
	mustNew := func(name string) Scheduler {
		t.Helper()
		s, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		return s
	}

	if e := mustNew("easy").(*EASY); e.Windows || e.Reserve != 1 {
		t.Errorf("easy = %+v", e)
	}
	for _, spec := range []string{"easy+win", "easy(window)"} {
		if e := mustNew(spec).(*EASY); !e.Windows {
			t.Errorf("%s did not set Windows", spec)
		}
	}
	for _, spec := range []string{"cons+win", "cons(window)"} {
		if c := mustNew(spec).(*Conservative); !c.Windows {
			t.Errorf("%s did not set Windows", spec)
		}
	}
	for _, c := range []struct {
		spec string
		mpl  int
	}{{"gang", 3}, {"gang2", 2}, {"gang3", 3}, {"gang5", 5}, {"gang(mpl=7)", 7}} {
		if g := mustNew(c.spec).(*Gang); g.Slots != c.mpl {
			t.Errorf("%s: slots = %d, want %d", c.spec, g.Slots, c.mpl)
		}
	}
	for _, spec := range []string{"easy+mold", "easy(mold)"} {
		m := mustNew(spec).(*Moldable)
		if _, ok := m.Inner.(*EASY); !ok {
			t.Errorf("%s inner = %T", spec, m.Inner)
		}
		if m.Name() != "easy+mold" {
			t.Errorf("%s name = %q", spec, m.Name())
		}
	}
	if m := mustNew("fcfs(mold, moldmax=2)").(*Moldable); m.MaxStretch != 2 {
		t.Errorf("moldmax not applied: %+v", m)
	}
	if q := mustNew("fcfs(drain)").(*QueueScheduler); !q.DrainAware {
		t.Error("fcfs(drain) did not set DrainAware")
	}
	// Legacy display names are preserved (result tables depend on them).
	for name, want := range map[string]string{
		"easy": "easy", "easy+win": "easy+win", "easy+mold": "easy+mold",
		"cons": "cons", "cons+win": "cons+win",
		"gang": "gang", "gang3": "gang", "gang5": "gang(mpl=5)",
		"fcfs": "fcfs", "lxf": "lxf",
		"easy(reserve=2)":         "easy(reserve=2)",
		"easy(reserve=2, window)": "easy(reserve=2, window)",
		"fcfs(drain)":             "fcfs(drain)",
		// Decorated schedulers label themselves by canonical spec too,
		// so any table label feeds back into Parse.
		"sjf(mold)":               "sjf(mold)",
		"easy(mold, reserve=2)":   "easy(mold, reserve=2)",
		"fcfs(mold, moldmax=2)":   "fcfs(mold, moldmax=2)",
		"easy(mold, moldmax=4.0)": "easy+mold",
	} {
		if got := mustNew(name).Name(); got != want {
			t.Errorf("New(%q).Name() = %q, want %q", name, got, want)
		}
	}
}

func TestUsageDerivedFromRegistry(t *testing.T) {
	u := Usage()
	for _, f := range Families() {
		if !strings.Contains(u, f.Name) {
			t.Errorf("usage missing family %q", f.Name)
		}
	}
	for _, want := range []string{"mpl", "reserve", "window", "drain", "mold", "easy+win", "gang3"} {
		if !strings.Contains(u, want) {
			t.Errorf("usage missing %q", want)
		}
	}
}
