package sched

import (
	"testing"

	"parsched/internal/core"
)

func TestEASYBackfillsShortJob(t *testing.T) {
	m := newMock(16)
	s := NewEASY()
	s.OnSubmit(m, jobEst(1, 0, 12, 1000, 1000)) // running; ends ~1000
	s.OnSubmit(m, jobEst(2, 0, 8, 100, 100))    // head, blocked (4 free)
	s.OnSubmit(m, jobEst(3, 0, 4, 500, 500))    // fits now; ends at 500 < shadow 1000
	if !m.startedSet()[3] {
		t.Fatalf("EASY should backfill job 3: %v", m.started)
	}
	if m.startedSet()[2] {
		t.Fatal("blocked head started")
	}
}

func TestEASYDoesNotDelayHead(t *testing.T) {
	m := newMock(16)
	s := NewEASY()
	s.OnSubmit(m, jobEst(1, 0, 12, 1000, 1000)) // ends 1000, shadow for head
	s.OnSubmit(m, jobEst(2, 0, 8, 100, 100))    // head, needs 8, free at 1000
	s.OnSubmit(m, jobEst(3, 0, 4, 2000, 2000))  // fits now (4 free), ends 2000 > shadow
	// Job 3 uses 4 procs; at shadow (1000) free = 16-4(job3 still running)
	// = 12, head needs 8, extra = 12-8 = 4 >= job3's 4... careful: job 3
	// IS the candidate. extra at shadow = profile.FreeAt(1000) - 8 =
	// (16-12[job1 gone]-... ) Let's just assert the invariant: if job 3
	// started, the head must still be able to start at time 1000.
	if m.startedSet()[3] {
		// Simulate to the shadow: finish job 1 at 1000.
		m.advance(1000)
		m.finish(s, 1)
		if !m.startedSet()[2] {
			t.Fatal("backfilled job delayed the head beyond its shadow")
		}
	}
}

func TestEASYBesideBackfill(t *testing.T) {
	// A long backfill job is allowed if it fits beside the head at the
	// shadow time.
	m := newMock(16)
	s := NewEASY()
	s.OnSubmit(m, jobEst(1, 0, 12, 1000, 1000))
	s.OnSubmit(m, jobEst(2, 0, 12, 100, 100)) // head: needs 12 at t=1000, extra = 16-12 = 4
	s.OnSubmit(m, jobEst(3, 0, 4, 9999, 9999))
	if !m.startedSet()[3] {
		t.Fatalf("4-proc job fits beside the 12-proc head forever: %v", m.started)
	}
}

func TestEASYFCFSWhenFits(t *testing.T) {
	m := newMock(16)
	s := NewEASY()
	s.OnSubmit(m, job(1, 0, 8, 100))
	s.OnSubmit(m, job(2, 0, 8, 100))
	if len(m.started) != 2 {
		t.Fatalf("both fit: %v", m.started)
	}
}

func TestEASYQueued(t *testing.T) {
	m := newMock(4)
	s := NewEASY()
	s.OnSubmit(m, job(1, 0, 4, 100))
	s.OnSubmit(m, job(2, 0, 4, 100))
	if q := s.Queued(); len(q) != 1 || q[0].ID != 2 {
		t.Fatalf("queued = %v", q)
	}
}

func TestEASYWindowsDrains(t *testing.T) {
	m := newMock(16)
	m.windows = []Window{{Start: 100, End: 200, Procs: 16}} // full outage
	s := NewEASYWindows()
	s.OnSubmit(m, jobEst(1, 0, 4, 500, 500)) // would cross the outage
	if len(m.started) != 0 {
		t.Fatal("easy+win must drain before a full outage")
	}
	s.OnSubmit(m, jobEst(2, 0, 4, 50, 50)) // ends before outage: backfill
	if !m.startedSet()[2] {
		t.Fatalf("short job should run before the outage: %v", m.started)
	}
}

func TestEASYPlainIgnoresWindows(t *testing.T) {
	m := newMock(16)
	m.windows = []Window{{Start: 100, End: 200, Procs: 16}}
	s := NewEASY()
	s.OnSubmit(m, jobEst(1, 0, 4, 500, 500))
	if len(m.started) != 1 {
		t.Fatal("plain EASY should ignore announced outages")
	}
}

func TestEASYWindowsRespectsReservations(t *testing.T) {
	m := newMock(16)
	m.resv = []Window{{Start: 50, End: 150, Procs: 12}}
	s := NewEASYWindows()
	// 8-proc job for 100s would overlap the reservation (only 4 free then).
	s.OnSubmit(m, jobEst(1, 0, 8, 100, 100))
	if len(m.started) != 0 {
		t.Fatal("job collides with reservation window")
	}
	// 4-proc job fits under the reservation.
	s.OnSubmit(m, jobEst(2, 0, 4, 100, 100))
	if !m.startedSet()[2] {
		t.Fatal("4-proc job fits beside the reservation")
	}
}

func TestConservativeBackfill(t *testing.T) {
	m := newMock(16)
	s := NewConservative()
	s.OnSubmit(m, jobEst(1, 0, 12, 1000, 1000))
	s.OnSubmit(m, jobEst(2, 0, 8, 100, 100))   // reserved at 1000
	s.OnSubmit(m, jobEst(3, 0, 4, 500, 500))   // ends 500 < 1000: backfill
	s.OnSubmit(m, jobEst(4, 0, 4, 2000, 2000)) // would delay job 2's reservation? 4 procs: at 1000 free=16-12(job1 done? job1 ends 1000)...
	if !m.startedSet()[3] {
		t.Fatalf("conservative should backfill job 3: %v", m.started)
	}
	if m.startedSet()[2] {
		t.Fatal("blocked job 2 must wait")
	}
}

func TestConservativeNeverDelaysEarlierJob(t *testing.T) {
	// The defining property: job 2's actual start must not exceed the
	// promise implied by estimates at its submittal.
	m := newMock(16)
	s := NewConservative()
	s.OnSubmit(m, jobEst(1, 0, 16, 1000, 1000)) // machine full until 1000
	s.OnSubmit(m, jobEst(2, 0, 16, 100, 100))   // promise: start at 1000
	s.OnSubmit(m, jobEst(3, 0, 1, 5000, 5000))  // must NOT start (would hold 1 proc past 1000)
	if m.startedSet()[3] {
		t.Fatal("conservative allowed a backfill that delays job 2")
	}
	m.advance(1000)
	m.finish(s, 1)
	if !m.startedSet()[2] {
		t.Fatalf("job 2 should start at its promised time: %v", m.started)
	}
	// Now job 3 can start beside job 2? Job 2 uses 16; no.
	if m.startedSet()[3] {
		t.Fatal("no room for job 3 yet")
	}
}

func TestConservativeWindowsDrains(t *testing.T) {
	m := newMock(16)
	m.windows = []Window{{Start: 100, End: 200, Procs: 16}}
	s := NewConservativeWindows()
	s.OnSubmit(m, jobEst(1, 0, 4, 500, 500))
	if len(m.started) != 0 {
		t.Fatal("cons+win must drain")
	}
	s.OnSubmit(m, jobEst(2, 0, 4, 100, 100))
	if !m.startedSet()[2] {
		t.Fatal("job ending exactly at outage start should run")
	}
}

func TestGangTimeShares(t *testing.T) {
	m := newMock(16)
	g := NewGang(2)
	j1, j2, j3 := job(1, 0, 16, 100), job(2, 0, 16, 100), job(3, 0, 16, 100)
	g.OnSubmit(m, j1)
	if m.shared[1] != 1 {
		t.Fatalf("single job should run at rate 1, got %v", m.shared[1])
	}
	g.OnSubmit(m, j2)
	if m.shared[1] != 0.5 || m.shared[2] != 0.5 {
		t.Fatalf("two rows should run at 0.5: %v", m.shared)
	}
	g.OnSubmit(m, j3) // exceeds 2 slots: queued
	if len(g.Queued()) != 1 {
		t.Fatalf("queue = %v", g.Queued())
	}
	g.OnFinish(m, j1)
	if m.shared[3] != 0.5 {
		t.Fatalf("queued job should enter the freed row: %v", m.shared)
	}
	g.OnFinish(m, j2)
	g.OnFinish(m, j3)
	if g.Rows() != 0 {
		t.Fatalf("rows = %d after all finish", g.Rows())
	}
}

func TestGangPacksSameRow(t *testing.T) {
	m := newMock(16)
	g := NewGang(3)
	g.OnSubmit(m, job(1, 0, 8, 100))
	g.OnSubmit(m, job(2, 0, 8, 100))
	// Both fit in one row: rate must stay 1.
	if g.Rows() != 1 {
		t.Fatalf("rows = %d, want 1 (packed)", g.Rows())
	}
	if m.shared[1] != 1 || m.shared[2] != 1 {
		t.Fatalf("rates = %v", m.shared)
	}
}

func TestGangPrefersFullestRow(t *testing.T) {
	m := newMock(16)
	g := NewGang(3)
	g.OnSubmit(m, job(1, 0, 10, 100)) // row A used 10
	g.OnSubmit(m, job(2, 0, 10, 100)) // row B used 10
	g.OnSubmit(m, job(3, 0, 4, 100))  // fits both; must join the fullest
	if g.Rows() != 2 {
		t.Fatalf("rows = %d, want 2", g.Rows())
	}
}

func TestMoldableEASYShrinksToStart(t *testing.T) {
	m := newMock(16)
	s := NewMoldableEASY()
	// Fill 12 procs.
	blocker := job(1, 0, 12, 1000)
	s.OnSubmit(m, blocker)
	// Moldable job wants 8 (blocked), but 4 are free and speedup is
	// perfect: should start at 4 procs with doubled runtime.
	mj := jobEst(2, 0, 8, 100, 200)
	mj.Class = core.Moldable
	mj.Speedup = perfectSpeedup{}
	mj.MinSize = 1
	mj.MaxSize = 16
	s.OnSubmit(m, mj)
	if !m.startedSet()[2] {
		t.Fatalf("moldable job should shrink and start: %v", m.started)
	}
	if mj.Size != 4 {
		t.Fatalf("molded size = %d, want 4", mj.Size)
	}
	if mj.Runtime != 200 {
		t.Fatalf("molded runtime = %d, want 200", mj.Runtime)
	}
}

func TestMoldableEASYKeepsSizeWhenFits(t *testing.T) {
	m := newMock(16)
	s := NewMoldableEASY()
	mj := jobEst(1, 0, 8, 100, 100)
	mj.Class = core.Moldable
	mj.Speedup = perfectSpeedup{}
	s.OnSubmit(m, mj)
	if mj.Size != 8 {
		t.Fatalf("size changed needlessly: %d", mj.Size)
	}
}

// perfectSpeedup is linear speedup for tests.
type perfectSpeedup struct{}

func (perfectSpeedup) Speedup(n int) float64 { return float64(n) }
func (perfectSpeedup) String() string        { return "perfect" }

// TestEASYReserveDepthProtectsSecondJob: with reserve=1 (classic EASY)
// a long backfill may delay the second queued job; with reserve=2 the
// second job holds a reservation the backfill must fit around.
func TestEASYReserveDepthProtectsSecondJob(t *testing.T) {
	run := func(reserve int) (*mockContext, *EASY) {
		m := newMock(10)
		s := &EASY{Reserve: reserve}
		s.OnSubmit(m, job(1, 0, 8, 100))  // fills most of the machine
		s.OnSubmit(m, job(2, 0, 4, 100))  // head: blocked until job 1 ends
		s.OnSubmit(m, job(3, 0, 6, 50))   // second: wants the post-head leftovers
		s.OnSubmit(m, job(4, 0, 2, 1000)) // long candidate backfill
		return m, s
	}

	// Classic EASY: job 4 fits beside the head's shadow reservation and
	// starts immediately — occupying processors job 3 needs until t=1000.
	m, _ := run(1)
	if !m.startedSet()[4] {
		t.Fatal("reserve=1: long job should backfill beside the head")
	}

	// reserve=2: job 3's slot at the head release is protected, so the
	// long job may not start now.
	m, s := run(2)
	if m.startedSet()[4] {
		t.Fatal("reserve=2: long backfill delays the protected second job")
	}
	m.advance(100)
	m.finish(s, 1)
	if !m.startedSet()[2] || !m.startedSet()[3] {
		t.Fatalf("protected jobs should start at the head release: %v", m.started)
	}
}

// TestEASYDeepReserveMatchesConservative: with the reservation depth
// covering the whole queue, the EASY pass reduces to conservative
// backfilling on this scenario.
func TestEASYDeepReserveMatchesConservative(t *testing.T) {
	drive := func(s Scheduler) []int64 {
		m := newMock(8)
		jobs := []*core.Job{
			job(1, 0, 6, 100), job(2, 0, 4, 200), job(3, 0, 2, 50),
			job(4, 0, 2, 400), job(5, 0, 8, 30),
		}
		for _, j := range jobs {
			s.OnSubmit(m, j)
		}
		m.advance(100)
		m.finish(s, 1)
		return append([]int64(nil), m.started...)
	}
	deep := drive(&EASY{Reserve: 100})
	cons := drive(NewConservative())
	if len(deep) != len(cons) {
		t.Fatalf("starts differ: deep=%v cons=%v", deep, cons)
	}
	for i := range deep {
		if deep[i] != cons[i] {
			t.Fatalf("start order differs: deep=%v cons=%v", deep, cons)
		}
	}
}
