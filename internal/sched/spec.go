package sched

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the scheduler spec grammar — the standard,
// parameterized way to name a system under test that the paper's
// methodology calls for. A spec is
//
//	spec   = family | family "(" args ")" | legacy-name
//	args   = arg { "," arg }
//	arg    = param | param "=" value
//
// e.g. "easy", "gang(mpl=5)", "easy(reserve=2, window)". A bare param
// is a boolean flag (equivalent to param=true). Legacy names such as
// "easy+win" or "gang3" are aliases registered by their family and
// resolve to canonical specs during Parse. Families, their parameters,
// and their aliases live in the registry (registry.go); Parse and
// Build both validate against it, so a Spec that parses is a Spec
// that names a constructible scheduler.

// Spec is a parsed scheduler specification: a registered family name
// plus raw parameter values (validated against the family's typed
// parameter declarations). The zero Spec is invalid.
type Spec struct {
	Family string
	// Params maps parameter name to its raw value; boolean flags given
	// bare parse as "true". Nil when the spec has no parameters.
	Params map[string]string
}

// Parse parses a scheduler spec (or a legacy scheduler name) into its
// canonical Spec: aliases are expanded, values are rendered in their
// canonical typed form, and parameters equal to their declared default
// are dropped — so every spelling of the same scheduler parses to the
// same Spec ("easy(reserve=1)" ≡ "easy", "gang3" ≡ "gang(mpl=3)" ≡
// "gang"). The result round-trips: Parse(sp.String()) yields an equal
// Spec.
func Parse(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Spec{}, fmt.Errorf("sched: empty scheduler spec")
	}
	name, argstr, hasArgs := s, "", false
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return Spec{}, fmt.Errorf("sched: spec %q: missing closing parenthesis", s)
		}
		name, argstr, hasArgs = strings.TrimSpace(s[:i]), s[i+1:len(s)-1], true
	}
	var sp Spec
	if target, ok := aliasTable[name]; ok {
		// Aliases expand to canonical specs ("easy+win" →
		// "easy(window)"), registered next to their family; extra
		// parameters compose on top ("easy+win(mold)").
		base, err := Parse(target)
		if err != nil {
			return Spec{}, fmt.Errorf("sched: legacy name %q: %w", name, err)
		}
		sp = base
	} else {
		fam, ok := families[name]
		if !ok {
			return Spec{}, fmt.Errorf("sched: unknown scheduler %q (have %v)", name, Names())
		}
		sp = Spec{Family: fam.Name}
	}
	if !hasArgs || strings.TrimSpace(argstr) == "" {
		return sp, nil
	}
	fam := families[sp.Family]
	seen := map[string]bool{}
	for _, arg := range strings.Split(argstr, ",") {
		arg = strings.TrimSpace(arg)
		if arg == "" {
			return Spec{}, fmt.Errorf("sched: spec %q: empty parameter", s)
		}
		key, val := arg, "true"
		if j := strings.IndexByte(arg, '='); j >= 0 {
			key, val = strings.TrimSpace(arg[:j]), strings.TrimSpace(arg[j+1:])
		}
		if !validToken(key) || !validToken(val) {
			return Spec{}, fmt.Errorf("sched: spec %q: malformed parameter %q", s, arg)
		}
		if _, set := sp.Params[key]; set || seen[key] {
			return Spec{}, fmt.Errorf("sched: spec %q: duplicate parameter %q", s, key)
		}
		seen[key] = true
		p := fam.param(key)
		if p == nil {
			return Spec{}, fam.checkParam(key, val) // unknown-parameter error
		}
		canon, isDefault, err := p.canon(val)
		if err != nil {
			return Spec{}, err
		}
		if isDefault {
			continue
		}
		if sp.Params == nil {
			sp.Params = map[string]string{}
		}
		sp.Params[key] = canon
	}
	return sp, nil
}

// MustParse is Parse for specs known good at compile time; it panics
// on error (tests, examples, default tables).
func MustParse(s string) Spec {
	sp, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return sp
}

// String renders the canonical spelling of the spec: the bare family
// name, or family(p1, k=v, ...) with parameters in sorted order and
// boolean "true" values rendered as bare flags. Parse(sp.String())
// round-trips for any spec Parse produced.
func (s Spec) String() string {
	if len(s.Params) == 0 {
		return s.Family
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		if v := s.Params[k]; v == "true" {
			parts[i] = k
		} else {
			parts[i] = k + "=" + v
		}
	}
	return s.Family + "(" + strings.Join(parts, ", ") + ")"
}

// MarshalText makes a Spec serialize as its canonical string — JSON
// run configurations carry "easy(window)" rather than a nested object.
func (s Spec) MarshalText() ([]byte, error) {
	if s.Family == "" {
		return nil, fmt.Errorf("sched: cannot marshal zero Spec")
	}
	return []byte(s.String()), nil
}

// UnmarshalText parses the canonical (or legacy) spelling.
func (s *Spec) UnmarshalText(text []byte) error {
	sp, err := Parse(string(text))
	if err != nil {
		return err
	}
	*s = sp
	return nil
}

// SplitList splits a comma-separated list of specs, respecting
// parentheses: "easy(reserve=2, window),gang(mpl=5)" is two specs.
// Empty elements are dropped.
func SplitList(s string) []string {
	var out []string
	depth, start := 0, 0
	flush := func(end int) {
		if part := strings.TrimSpace(s[start:end]); part != "" {
			out = append(out, part)
		}
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			if depth > 0 {
				depth--
			}
		case ',':
			if depth == 0 {
				flush(i)
				start = i + 1
			}
		}
	}
	flush(len(s))
	return out
}

// validToken reports whether s is a well-formed parameter key or
// value: nonempty, made of letters, digits, and . + - _ only.
func validToken(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.' || r == '+' || r == '-' || r == '_':
		default:
			return false
		}
	}
	return true
}
