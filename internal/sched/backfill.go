package sched

import (
	"fmt"

	"parsched/internal/core"
	"parsched/internal/debugchecks"
)

func init() {
	Register(Family{
		Name: "easy",
		Doc:  "EASY (aggressive) backfilling",
		Params: []Param{
			{Name: "window", Kind: BoolParam,
				Doc: "respect announced outages and accepted advance reservations"},
			{Name: "reserve", Kind: IntParam, Default: "1",
				Doc: "reservation depth: blocked queue-head jobs guaranteed not to be delayed (1 = classic EASY; large = conservative)"},
		},
		Aliases: map[string]string{
			"easy+win":  "easy(window)",
			"easy+mold": "easy(mold)",
		},
		New: func(a Args) (Scheduler, error) {
			r := a.Int("reserve")
			if r < 1 {
				return nil, fmt.Errorf("reserve must be >= 1, got %d", r)
			}
			return &EASY{Windows: a.Bool("window"), Reserve: r}, nil
		},
	})
	Register(Family{
		Name: "cons",
		Doc:  "conservative backfilling (every queued job gets a reservation)",
		Params: []Param{
			{Name: "window", Kind: BoolParam,
				Doc: "respect announced outages and accepted advance reservations"},
		},
		Aliases: map[string]string{"cons+win": "cons(window)"},
		New: func(a Args) (Scheduler, error) {
			return &Conservative{Windows: a.Bool("window")}, nil
		},
	})
}

// EASY is aggressive backfilling as introduced on the Argonne SP-1
// (EASY) and analyzed by Feitelson & Weil: jobs run FCFS, but when the
// head of the queue cannot start, a reservation ("shadow time") is
// computed for it from the running jobs' expected completions, and any
// later job may start immediately if it does not delay that
// reservation — either because it ends before the shadow time or
// because it fits in the processors left over at the shadow time.
//
// The paper's Section 3 singles out backfilling as the scheduler family
// that reservations for metacomputing extend ("A simple approach may be
// an extension of backfilling"): with Windows=true, announced outages
// and accepted reservations become capacity reductions in the shadow
// computation, giving the reservation-aware/outage-aware variant.
type EASY struct {
	// Windows folds Outages() and Reservations() into the availability
	// profile, making the scheduler drain for known capacity holes.
	Windows bool
	// Reserve is the reservation depth: how many blocked jobs at the
	// head of the queue are guaranteed not to be delayed by backfill.
	// 0 or 1 is classic EASY (only the head is protected); a depth of
	// the whole queue reproduces conservative backfilling. Built from
	// specs like "easy(reserve=2)".
	Reserve int
	// DisableLedger turns off the resumable-pass reservation ledger the
	// deep-reserve walk keeps (Reserve > 1), forcing every pass to
	// re-derive every reservation from scratch. Decisions are identical
	// either way — the ledger resumes the exact deterministic walk — so
	// the switch exists only for the equivalence property tests and the
	// quadratic-vs-incremental ablation benchmarks.
	DisableLedger bool

	queue []*core.Job
	// estq caches ctx.Estimate per queued job, index-aligned with queue.
	// Estimates are frozen once a job is submitted (a requeued kill goes
	// back through OnSubmit), and the sweep reads one per candidate per
	// pass — an interface call worth paying once per arrival instead.
	estq []int64
	// ledger records the deep-reserve walk for resumption; queueGen
	// counts queue removals (starts), the ledger's proof that the queue
	// it walked is still a prefix of the one it sees.
	ledger   resvLedger
	queueGen uint64
	// scratch is the per-pass working profile, reused across scheduling
	// passes so a pass costs no profile allocations.
	scratch Profile
	// Shadow-time cache: the head's reservation recomputes identically
	// while the profile base is unchanged (same build stamp, no Take
	// mirrored into it), the head job is the same, and the cached start
	// has not fallen due. EarliestFit found no earlier hole last pass,
	// and the profile has only aged, so none can have appeared.
	shadowOK    bool
	shadowStamp uint64
	shadowHead  int64
	shadowEst   int64
	shadowSize  int
	shadowVal   int64
	// Swept-queue memo: after a phase-2 sweep that started nothing, a
	// later pass over the same profile base (same stamp, no Take
	// mirrored into it — a start anywhere would have changed the running
	// set and forced a new stamp) re-rejects every job it already swept:
	// now only advances, so now+est <= shadow only gets falser; FitsAt
	// over an unchanged profile can flip true to false but never back;
	// and the machine state cannot change without a rebuild. Only jobs
	// queued behind sweepLen need evaluation.
	//
	// The memo also survives shrink-only rebuilds (same grow stamp:
	// every intervening build was an aging, a window splice, or a
	// TakeStarted — all leave the profile pointwise <= the recorded one
	// from now on) provided the sweep gates are unchanged (same shadow
	// and extra) and no capacity rise has fallen due (now < sweepUntil,
	// the recorded profile's first free-count increase): under those
	// guards a swept job's rejection only hardens — the interval FitsAt
	// tests slides right over non-increasing capacity, and the free
	// count a CanStart rejection saw cannot have grown back without
	// crossing the rise boundary or bumping the grow stamp.
	sweepOK     bool
	sweepStamp  uint64
	sweepLen    int
	sweepGrow   uint64
	sweepShadow int64
	sweepExtra  int
	sweepUntil  int64
	// shadowGrow mirrors the profile's grow stamp at shadow-cache fill.
	// When the full stamp has moved but the grow stamp has not, every
	// intervening rebuild was shrink-only, so the head's earliest fit
	// cannot have moved earlier — the search resumes at the cached value
	// instead of rescanning from now.
	shadowGrow uint64
	// started maps running job ID -> the expected end this scheduler
	// mirrored into the profile at start, so OnFinish can absorb the
	// completion into the built-base snapshot (see Profile.AbsorbFinish).
	started map[int64]int64
}

// NewEASY returns plain EASY backfilling.
func NewEASY() *EASY { return &EASY{} }

// NewEASYWindows returns EASY that respects announced outages and
// accepted advance reservations.
func NewEASYWindows() *EASY { return &EASY{Windows: true} }

// Name implements Scheduler. Legacy configurations keep their legacy
// names; parameterized ones name themselves by their canonical spec.
//
//schedlint:coldpath reporting: result labeling, once per run
func (e *EASY) Name() string {
	switch {
	case e.Reserve > 1 && e.Windows:
		return fmt.Sprintf("easy(reserve=%d, window)", e.Reserve)
	case e.Reserve > 1:
		return fmt.Sprintf("easy(reserve=%d)", e.Reserve)
	case e.Windows:
		return "easy+win"
	}
	return "easy"
}

// Queued implements QueueReporter.
func (e *EASY) Queued() []*core.Job { return append([]*core.Job(nil), e.queue...) }

// OnSubmit implements Scheduler.
func (e *EASY) OnSubmit(ctx Context, j *core.Job) {
	e.queue = append(e.queue, j)
	e.estq = append(e.estq, ctx.Estimate(j))
	e.schedule(ctx)
}

// OnFinish implements Scheduler.
func (e *EASY) OnFinish(ctx Context, j *core.Job) {
	if end, ok := e.started[j.ID]; ok {
		delete(e.started, j.ID)
		e.scratch.AbsorbFinish(ctx, end, j.Size)
	}
	e.schedule(ctx)
}

// OnChange implements Scheduler.
func (e *EASY) OnChange(ctx Context) { e.schedule(ctx) }

// markStarted records the expected end mirrored into the profile for a
// job this scheduler just started, keyed for OnFinish absorption.
func (e *EASY) markStarted(id, expEnd int64) {
	if e.started == nil {
		e.started = make(map[int64]int64) //schedlint:allow allocfree one-time map spine for the started-job index
	}
	e.started[id] = expEnd //schedlint:allow allocfree amortized map growth: one insert per started job
}

// profile builds the availability profile EASY consults. Without
// Windows, only running jobs count (classic EASY is oblivious to
// outages it has not been told about); both arms go through the
// sorted-merge kernel, so the windowless build gets the same snapshot
// restores and build stamps as the windowed one.
func (e *EASY) profile(ctx Context) *Profile {
	if e.Windows {
		return BuildProfileInto(&e.scratch, ctx)
	}
	return BuildRunningProfileInto(&e.scratch, ctx)
}

func (e *EASY) schedule(ctx Context) {
	now := ctx.Now()
	// One profile per scheduling pass; job starts are mirrored into it
	// with Take so it stays current without rebuilding (rebuilding per
	// candidate makes window-heavy runs quadratic).
	p := e.profile(ctx)

	// Phase 1: start jobs FCFS from the head while they fit. A cached
	// shadow strictly in the future proves the head cannot start now —
	// the machine free count tracks the profile's first segment, so a
	// blocked earliest-fit implies FitsAt(now) is false — and the proof
	// survives shrink-only rebuilds (same grow stamp: the earliest fit
	// only moves later), so the whole phase is a no-op without touching
	// the fit kernels. Windows mode only: the windowless head check is
	// CanStart alone, which a future earliest fit does not bound (the
	// blocking segment may lie beyond now even when the head fits now).
	headBlocked := e.Windows && len(e.queue) > 0 && e.shadowOK && !p.Mutated() &&
		e.shadowHead == e.queue[0].ID && e.shadowVal > now &&
		(e.shadowStamp == p.Stamp() || e.shadowGrow == p.GrowStamp()) &&
		e.shadowSize == e.queue[0].Size && e.shadowEst == e.estq[0]
	for !headBlocked && len(e.queue) > 0 {
		head := e.queue[0]
		est := e.estq[0]
		if !e.canStartNow(ctx, p, head, est) {
			break
		}
		ctx.Start(head, head.Size)
		p.TakeStarted(ctx, now, now+est, head.Size)
		e.markStarted(head.ID, now+est)
		e.queue = e.queue[1:]
		e.estq = e.estq[1:]
		e.queueGen++
	}
	if len(e.queue) <= 1 {
		return
	}
	if e.Reserve > 1 {
		e.scheduleDeep(ctx, p, now)
		return
	}

	// Phase 2: the head is blocked. Compute its reservation from the
	// profile, then backfill later jobs that do not delay it.
	head := e.queue[0]
	headEst := e.estq[0]
	var shadow int64
	if e.shadowOK && !p.Mutated() && e.shadowStamp == p.Stamp() &&
		e.shadowHead == head.ID && e.shadowEst == headEst &&
		e.shadowSize == head.Size && e.shadowVal >= now {
		shadow = e.shadowVal
	} else {
		after := now
		if e.shadowOK && e.shadowGrow == p.GrowStamp() &&
			e.shadowHead == head.ID && e.shadowEst == headEst &&
			e.shadowSize == head.Size && e.shadowVal != maxFuture &&
			e.shadowVal > now {
			// The base changed but only by losing capacity (a start, a
			// claim, a surfaced window): no hole can have appeared before
			// the cached reservation, so resume the search there instead
			// of rescanning the profile from now.
			after = e.shadowVal
		}
		shadow = p.EarliestFit(after, headEst, head.Size)
		if shadow < 0 {
			// The head can never fit (bigger than the machine after
			// failures); skip backfill gating against it.
			shadow = maxFuture
		}
		// Cache only computations against the pristine base — a profile
		// already carrying this pass's starts is not reproducible next
		// pass.
		e.shadowOK = !p.Mutated()
		if e.shadowOK {
			e.shadowStamp, e.shadowHead = p.Stamp(), head.ID
			e.shadowGrow = p.GrowStamp()
			e.shadowEst, e.shadowSize, e.shadowVal = headEst, head.Size, shadow
		}
	}
	// Processors left over for backfill at the shadow time.
	extra := p.FreeAt(shadow) - head.Size

	i := 1
	if e.sweepOK && !p.Mutated() && e.sweepLen <= len(e.queue) {
		if e.sweepStamp == p.Stamp() {
			i = e.sweepLen
		} else if e.sweepGrow == p.GrowStamp() && e.sweepShadow == shadow &&
			e.sweepExtra == extra && now < e.sweepUntil {
			// Shrink-only rebuilds since the memo (same grow stamp) left
			// the profile pointwise at or below the recorded one from now
			// on, the shadow gates compare against identical bounds, and
			// no capacity rise has fallen due yet — so every recorded
			// rejection still holds: FitsAt slides right over
			// non-increasing capacity and the machine free count tracks
			// the profile's first segment. See the sweep memo field docs.
			i = e.sweepLen
		}
	}
	for i < len(e.queue) {
		j := e.queue[i]
		est := e.estq[i]
		fitsBefore := now+est <= shadow
		fitsBeside := j.Size <= extra
		// The shadow gates are integer compares; test them before the
		// capacity/profile checks so candidates that could not backfill
		// anyway (the bulk of a congested queue) cost nothing. Pure
		// predicates both ways, so the conjunction order is free.
		if (fitsBefore || fitsBeside) && e.canStartNow(ctx, p, j, est) {
			ctx.Start(j, j.Size)
			p.TakeStarted(ctx, now, now+est, j.Size)
			e.markStarted(j.ID, now+est)
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			e.estq = append(e.estq[:i], e.estq[i+1:]...)
			e.queueGen++
			if !fitsBefore {
				extra -= j.Size
			}
			continue
		}
		i++
	}
	// Record the sweep frontier so the next pass over the same base only
	// looks at jobs that arrived after it. Starts absorbed by
	// TakeStarted leave p unmutated under a fresh stamp, and the memo
	// stays sound across them: a candidate rejected mid-pass only
	// hardens against the end-of-pass state (Take never adds capacity,
	// CanStart's free count only falls within a pass, and both FitsAt
	// and the shadow gates are monotone false-ward as now advances over
	// a fixed stamp). Only reservation carves — which scheduleDeep does,
	// this path never — leave the profile genuinely mutated.
	if e.sweepOK = !p.Mutated(); e.sweepOK {
		e.sweepStamp = p.Stamp()
		e.sweepLen = len(e.queue)
		e.sweepGrow = p.GrowStamp()
		e.sweepShadow = shadow
		e.sweepExtra = extra
		e.sweepUntil = p.NextCapacityRise()
	}
}

// scheduleDeep is the Reserve > 1 backfill pass: the first Reserve
// waiting jobs are walked conservative-style — started when their
// earliest fit is now, otherwise their future slot is carved into the
// profile as a reservation — and jobs beyond the depth may start only
// where they fit under the profile immediately, so no protected job is
// ever delayed. Depth 1 degenerates to classic EASY (handled by the
// shadow-time path above); depth >= queue length is conservative
// backfilling.
//
// The walk runs through the reservation ledger: a pass over an
// unchanged base with an intact queue prefix resumes at the first
// unwalked job (or skips entirely when there is none) instead of
// re-deriving every reservation; see resvLedger for the validity proof.
func (e *EASY) scheduleDeep(ctx Context, p *Profile, now int64) {
	i := 0
	if !e.DisableLedger && e.ledger.resumable(ctx, p, now, e.queue, e.queueGen) {
		if debugchecks.Enabled {
			e.ledger.verifyResume(ctx, e.Windows, e.queue, e.Reserve, now)
		}
		if len(e.queue) == len(e.ledger.entries) {
			// Pass-skip: every queued job was walked against this very
			// base and nothing relevant has changed — reservations would
			// re-derive identically and sweep rejections only harden.
			return
		}
		i = len(e.ledger.entries)
		e.ledger.restore(p, now)
	} else {
		e.ledger.beginPass()
	}
	gen := e.queueGen
	for i < len(e.queue) {
		j := e.queue[i]
		est := e.estq[i]
		if i < e.Reserve {
			start := p.EarliestFit(now, est, j.Size)
			if start == now && ctx.CanStart(j, j.Size) {
				ctx.Start(j, j.Size)
				p.TakeStarted(ctx, now, now+est, j.Size)
				e.markStarted(j.ID, now+est)
				e.queue = append(e.queue[:i], e.queue[i+1:]...)
				e.estq = append(e.estq[:i], e.estq[i+1:]...)
				e.queueGen++
				continue
			}
			if start >= 0 {
				// Protect this job: backfill below must fit around it.
				p.Take(start, start+est, j.Size)
			}
			e.ledger.add(j, est, start)
			i++
			continue
		}
		if ctx.CanStart(j, j.Size) && p.FitsAt(now, est, j.Size) {
			ctx.Start(j, j.Size)
			p.TakeStarted(ctx, now, now+est, j.Size)
			e.markStarted(j.ID, now+est)
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			e.estq = append(e.estq[:i], e.estq[i+1:]...)
			e.queueGen++
			continue
		}
		e.ledger.add(j, est, ledgerSwept)
		i++
	}
	// A start anywhere in the pass shifted queue positions and poisoned
	// the recorded walk (it also changed the running set, so the next
	// build re-stamps regardless). Only an all-blocked pass commits.
	if !e.DisableLedger && e.queueGen == gen {
		e.ledger.commit(ctx, p, e.queueGen)
	} else {
		e.ledger.ok = false
	}
}

// canStartNow checks capacity plus, in Windows mode, that the job would
// not collide with a future capacity hole it is required to respect.
// p is the pass's working profile (already reflecting this pass's
// starts); est is the caller's ctx.Estimate(j), threaded through so the
// sweep pays one estimate lookup per candidate, not two.
func (e *EASY) canStartNow(ctx Context, p *Profile, j *core.Job, est int64) bool {
	// In Windows mode the job must fit under the profile for its whole
	// estimated duration starting now (otherwise it would collide with a
	// window). FitsAt answers exactly EarliestFit(now, ...) == now, but
	// bails at the first too-full segment instead of scanning on for a
	// later hole this check would discard anyway — and it runs before
	// the machine walk, since in a congested pass it is the commoner
	// rejection. Both predicates are pure, so the order is free.
	if e.Windows && !p.FitsAt(ctx.Now(), est, j.Size) {
		return false
	}
	return ctx.CanStart(j, j.Size)
}

const maxFuture = int64(1) << 60

// Conservative is conservative backfilling: every queued job gets a
// reservation, and a job may backfill only if it delays no earlier
// reservation. This implementation rebuilds the full profile on every
// event and walks the queue in arrival order, which reproduces the
// algorithm's guarantee directly: job i's start never trails the
// estimate-based promise made at its submittal.
type Conservative struct {
	// Windows folds outages/reservations into the profile.
	Windows bool
	// DisableLedger turns off the resumable-pass reservation ledger,
	// forcing every pass to re-derive every reservation from scratch.
	// Decisions are identical either way — the ledger resumes the exact
	// deterministic arrival-order walk — so the switch exists only for
	// the equivalence property tests and the quadratic-vs-incremental
	// ablation benchmarks.
	DisableLedger bool

	queue []*core.Job
	// estq caches ctx.Estimate per queued job, index-aligned with queue
	// (see the EASY field of the same name): one interface call per
	// arrival instead of one per candidate per pass.
	estq []int64
	// scratch is the per-pass working profile, reused across passes.
	scratch Profile
	// ledger records the reservation walk for resumption; queueGen
	// counts queue removals (starts), the ledger's proof that the queue
	// it walked is still a prefix of the one it sees.
	ledger   resvLedger
	queueGen uint64
	// started maps running job ID -> the expected end mirrored into the
	// profile at start, for OnFinish absorption (see Profile.AbsorbFinish).
	started map[int64]int64
}

// NewConservative returns conservative backfilling.
func NewConservative() *Conservative { return &Conservative{} }

// NewConservativeWindows returns the outage/reservation-aware variant.
func NewConservativeWindows() *Conservative { return &Conservative{Windows: true} }

// Name implements Scheduler.
func (c *Conservative) Name() string {
	if c.Windows {
		return "cons+win"
	}
	return "cons"
}

// Queued implements QueueReporter.
func (c *Conservative) Queued() []*core.Job { return append([]*core.Job(nil), c.queue...) }

// OnSubmit implements Scheduler.
func (c *Conservative) OnSubmit(ctx Context, j *core.Job) {
	c.queue = append(c.queue, j)
	c.estq = append(c.estq, ctx.Estimate(j))
	c.schedule(ctx)
}

// OnFinish implements Scheduler.
func (c *Conservative) OnFinish(ctx Context, j *core.Job) {
	if end, ok := c.started[j.ID]; ok {
		delete(c.started, j.ID)
		c.scratch.AbsorbFinish(ctx, end, j.Size)
	}
	c.schedule(ctx)
}

// OnChange implements Scheduler.
func (c *Conservative) OnChange(ctx Context) { c.schedule(ctx) }

func (c *Conservative) schedule(ctx Context) {
	now := ctx.Now()
	var p *Profile
	if c.Windows {
		p = BuildProfileInto(&c.scratch, ctx)
	} else {
		p = BuildRunningProfileInto(&c.scratch, ctx)
	}

	// Resume the recorded walk when the base and queue prefix are
	// provably unchanged (see resvLedger): only jobs that arrived after
	// the last committed pass need evaluation, and a pass with no new
	// arrivals is a provable no-op.
	from := 0
	if !c.DisableLedger && c.ledger.resumable(ctx, p, now, c.queue, c.queueGen) {
		if debugchecks.Enabled {
			c.ledger.verifyResume(ctx, c.Windows, c.queue, len(c.ledger.entries), now)
		}
		if len(c.queue) == len(c.ledger.entries) {
			return
		}
		from = len(c.ledger.entries)
		c.ledger.restore(p, now)
	} else {
		c.ledger.beginPass()
	}

	gen := c.queueGen
	kept := c.queue[:from]
	keptEst := c.estq[:from]
	for qi := from; qi < len(c.queue); qi++ {
		j := c.queue[qi]
		est := c.estq[qi]
		start := p.EarliestFit(now, est, j.Size)
		if start == now && ctx.CanStart(j, j.Size) {
			ctx.Start(j, j.Size)
			// Its processors are busy until its expected end; reflect
			// that for the jobs behind it.
			p.TakeStarted(ctx, now, now+est, j.Size)
			if c.started == nil {
				c.started = make(map[int64]int64) //schedlint:allow allocfree one-time map spine for the started-job index
			}
			c.started[j.ID] = now + est //schedlint:allow allocfree amortized map growth: one insert per started job
			c.queueGen++
			continue
		}
		if start < 0 {
			// Larger than the (possibly degraded) machine: hold it.
			kept = append(kept, j)
			keptEst = append(keptEst, est)
			c.ledger.add(j, est, start)
			continue
		}
		// Reserve: later jobs must not delay this one.
		p.Take(start, start+est, j.Size)
		kept = append(kept, j)
		keptEst = append(keptEst, est)
		c.ledger.add(j, est, start)
	}
	c.queue = kept
	c.estq = keptEst
	// A pass that started a job commits nothing: positions shifted and
	// the running set changed, so the next build re-stamps anyway.
	if !c.DisableLedger && c.queueGen == gen {
		c.ledger.commit(ctx, p, c.queueGen)
	} else {
		c.ledger.ok = false
	}
}
