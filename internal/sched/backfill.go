package sched

import (
	"fmt"

	"parsched/internal/core"
)

func init() {
	Register(Family{
		Name: "easy",
		Doc:  "EASY (aggressive) backfilling",
		Params: []Param{
			{Name: "window", Kind: BoolParam,
				Doc: "respect announced outages and accepted advance reservations"},
			{Name: "reserve", Kind: IntParam, Default: "1",
				Doc: "reservation depth: blocked queue-head jobs guaranteed not to be delayed (1 = classic EASY; large = conservative)"},
		},
		Aliases: map[string]string{
			"easy+win":  "easy(window)",
			"easy+mold": "easy(mold)",
		},
		New: func(a Args) (Scheduler, error) {
			r := a.Int("reserve")
			if r < 1 {
				return nil, fmt.Errorf("reserve must be >= 1, got %d", r)
			}
			return &EASY{Windows: a.Bool("window"), Reserve: r}, nil
		},
	})
	Register(Family{
		Name: "cons",
		Doc:  "conservative backfilling (every queued job gets a reservation)",
		Params: []Param{
			{Name: "window", Kind: BoolParam,
				Doc: "respect announced outages and accepted advance reservations"},
		},
		Aliases: map[string]string{"cons+win": "cons(window)"},
		New: func(a Args) (Scheduler, error) {
			return &Conservative{Windows: a.Bool("window")}, nil
		},
	})
}

// EASY is aggressive backfilling as introduced on the Argonne SP-1
// (EASY) and analyzed by Feitelson & Weil: jobs run FCFS, but when the
// head of the queue cannot start, a reservation ("shadow time") is
// computed for it from the running jobs' expected completions, and any
// later job may start immediately if it does not delay that
// reservation — either because it ends before the shadow time or
// because it fits in the processors left over at the shadow time.
//
// The paper's Section 3 singles out backfilling as the scheduler family
// that reservations for metacomputing extend ("A simple approach may be
// an extension of backfilling"): with Windows=true, announced outages
// and accepted reservations become capacity reductions in the shadow
// computation, giving the reservation-aware/outage-aware variant.
type EASY struct {
	// Windows folds Outages() and Reservations() into the availability
	// profile, making the scheduler drain for known capacity holes.
	Windows bool
	// Reserve is the reservation depth: how many blocked jobs at the
	// head of the queue are guaranteed not to be delayed by backfill.
	// 0 or 1 is classic EASY (only the head is protected); a depth of
	// the whole queue reproduces conservative backfilling. Built from
	// specs like "easy(reserve=2)".
	Reserve int

	queue []*core.Job
	// scratch is the per-pass working profile, reused across scheduling
	// passes so a pass costs no profile allocations.
	scratch Profile
	// Shadow-time cache: the head's reservation recomputes identically
	// while the profile base is unchanged (same build stamp, no Take
	// mirrored into it), the head job is the same, and the cached start
	// has not fallen due. EarliestFit found no earlier hole last pass,
	// and the profile has only aged, so none can have appeared.
	shadowOK    bool
	shadowStamp uint64
	shadowHead  int64
	shadowEst   int64
	shadowSize  int
	shadowVal   int64
	// Swept-queue memo: after a phase-2 sweep that started nothing, a
	// later pass over the same profile base (same stamp, no Take
	// mirrored into it — a start anywhere would have changed the running
	// set and forced a new stamp) re-rejects every job it already swept:
	// now only advances, so now+est <= shadow only gets falser; FitsAt
	// over an unchanged profile can flip true to false but never back;
	// and the machine state cannot change without a rebuild. Only jobs
	// queued behind sweepLen need evaluation.
	sweepOK    bool
	sweepStamp uint64
	sweepLen   int
}

// NewEASY returns plain EASY backfilling.
func NewEASY() *EASY { return &EASY{} }

// NewEASYWindows returns EASY that respects announced outages and
// accepted advance reservations.
func NewEASYWindows() *EASY { return &EASY{Windows: true} }

// Name implements Scheduler. Legacy configurations keep their legacy
// names; parameterized ones name themselves by their canonical spec.
//
//schedlint:coldpath reporting: result labeling, once per run
func (e *EASY) Name() string {
	switch {
	case e.Reserve > 1 && e.Windows:
		return fmt.Sprintf("easy(reserve=%d, window)", e.Reserve)
	case e.Reserve > 1:
		return fmt.Sprintf("easy(reserve=%d)", e.Reserve)
	case e.Windows:
		return "easy+win"
	}
	return "easy"
}

// Queued implements QueueReporter.
func (e *EASY) Queued() []*core.Job { return append([]*core.Job(nil), e.queue...) }

// OnSubmit implements Scheduler.
func (e *EASY) OnSubmit(ctx Context, j *core.Job) {
	e.queue = append(e.queue, j)
	e.schedule(ctx)
}

// OnFinish implements Scheduler.
func (e *EASY) OnFinish(ctx Context, _ *core.Job) { e.schedule(ctx) }

// OnChange implements Scheduler.
func (e *EASY) OnChange(ctx Context) { e.schedule(ctx) }

// profile builds the availability profile EASY consults. Without
// Windows, only running jobs count (classic EASY is oblivious to
// outages it has not been told about).
func (e *EASY) profile(ctx Context) *Profile {
	if e.Windows {
		return BuildProfileInto(&e.scratch, ctx)
	}
	now := ctx.Now()
	p := e.scratch.Reset(now, ctx.FreeProcs())
	for _, r := range ctx.Running() {
		p.Release(overdueClamp(now, r.ExpEnd), r.Size)
	}
	return p
}

func (e *EASY) schedule(ctx Context) {
	now := ctx.Now()
	// One profile per scheduling pass; job starts are mirrored into it
	// with Take so it stays current without rebuilding (rebuilding per
	// candidate makes window-heavy runs quadratic).
	p := e.profile(ctx)

	// Phase 1: start jobs FCFS from the head while they fit.
	for len(e.queue) > 0 {
		head := e.queue[0]
		if !e.canStartNow(ctx, p, head) {
			break
		}
		ctx.Start(head, head.Size)
		p.Take(now, now+ctx.Estimate(head), head.Size)
		e.queue = e.queue[1:]
	}
	if len(e.queue) <= 1 {
		return
	}
	if e.Reserve > 1 {
		e.scheduleDeep(ctx, p, now)
		return
	}

	// Phase 2: the head is blocked. Compute its reservation from the
	// profile, then backfill later jobs that do not delay it.
	head := e.queue[0]
	headEst := ctx.Estimate(head)
	var shadow int64
	if e.shadowOK && !p.Mutated() && e.shadowStamp == p.Stamp() &&
		e.shadowHead == head.ID && e.shadowEst == headEst &&
		e.shadowSize == head.Size && e.shadowVal >= now {
		shadow = e.shadowVal
	} else {
		shadow = p.EarliestFit(now, headEst, head.Size)
		if shadow < 0 {
			// The head can never fit (bigger than the machine after
			// failures); skip backfill gating against it.
			shadow = maxFuture
		}
		// Cache only computations against the pristine base — a profile
		// already carrying this pass's starts is not reproducible next
		// pass.
		e.shadowOK = !p.Mutated()
		if e.shadowOK {
			e.shadowStamp, e.shadowHead = p.Stamp(), head.ID
			e.shadowEst, e.shadowSize, e.shadowVal = headEst, head.Size, shadow
		}
	}
	// Processors left over for backfill at the shadow time.
	extra := p.FreeAt(shadow) - head.Size

	i := 1
	if e.sweepOK && e.sweepStamp == p.Stamp() && !p.Mutated() && e.sweepLen <= len(e.queue) {
		i = e.sweepLen
	}
	for i < len(e.queue) {
		j := e.queue[i]
		est := ctx.Estimate(j)
		fitsBefore := now+est <= shadow
		fitsBeside := j.Size <= extra
		// The shadow gates are integer compares; test them before the
		// capacity/profile checks so candidates that could not backfill
		// anyway (the bulk of a congested queue) cost nothing. Pure
		// predicates both ways, so the conjunction order is free.
		if (fitsBefore || fitsBeside) && e.canStartNow(ctx, p, j) {
			ctx.Start(j, j.Size)
			p.Take(now, now+est, j.Size)
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			if !fitsBefore {
				extra -= j.Size
			}
			continue
		}
		i++
	}
	// Record a fruitless sweep (p unmutated means neither this loop nor
	// phase 1 started anything) so the next pass over the same base only
	// looks at jobs that arrived after it.
	if e.sweepOK = !p.Mutated(); e.sweepOK {
		e.sweepStamp = p.Stamp()
		e.sweepLen = len(e.queue)
	}
}

// scheduleDeep is the Reserve > 1 backfill pass: the first Reserve
// waiting jobs are walked conservative-style — started when their
// earliest fit is now, otherwise their future slot is carved into the
// profile as a reservation — and jobs beyond the depth may start only
// where they fit under the profile immediately, so no protected job is
// ever delayed. Depth 1 degenerates to classic EASY (handled by the
// shadow-time path above); depth >= queue length is conservative
// backfilling.
func (e *EASY) scheduleDeep(ctx Context, p *Profile, now int64) {
	i := 0
	for i < len(e.queue) {
		j := e.queue[i]
		est := ctx.Estimate(j)
		if i < e.Reserve {
			start := p.EarliestFit(now, est, j.Size)
			if start == now && ctx.CanStart(j, j.Size) {
				ctx.Start(j, j.Size)
				p.Take(now, now+est, j.Size)
				e.queue = append(e.queue[:i], e.queue[i+1:]...)
				continue
			}
			if start >= 0 {
				// Protect this job: backfill below must fit around it.
				p.Take(start, start+est, j.Size)
			}
			i++
			continue
		}
		if ctx.CanStart(j, j.Size) && p.FitsAt(now, est, j.Size) {
			ctx.Start(j, j.Size)
			p.Take(now, now+est, j.Size)
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			continue
		}
		i++
	}
}

// canStartNow checks capacity plus, in Windows mode, that the job would
// not collide with a future capacity hole it is required to respect.
// p is the pass's working profile (already reflecting this pass's
// starts).
func (e *EASY) canStartNow(ctx Context, p *Profile, j *core.Job) bool {
	// In Windows mode the job must fit under the profile for its whole
	// estimated duration starting now (otherwise it would collide with a
	// window). FitsAt answers exactly EarliestFit(now, ...) == now, but
	// bails at the first too-full segment instead of scanning on for a
	// later hole this check would discard anyway — and it runs before
	// the machine walk, since in a congested pass it is the commoner
	// rejection. Both predicates are pure, so the order is free.
	if e.Windows && !p.FitsAt(ctx.Now(), ctx.Estimate(j), j.Size) {
		return false
	}
	return ctx.CanStart(j, j.Size)
}

const maxFuture = int64(1) << 60

// Conservative is conservative backfilling: every queued job gets a
// reservation, and a job may backfill only if it delays no earlier
// reservation. This implementation rebuilds the full profile on every
// event and walks the queue in arrival order, which reproduces the
// algorithm's guarantee directly: job i's start never trails the
// estimate-based promise made at its submittal.
type Conservative struct {
	// Windows folds outages/reservations into the profile.
	Windows bool

	queue []*core.Job
	// scratch is the per-pass working profile, reused across passes.
	scratch Profile
}

// NewConservative returns conservative backfilling.
func NewConservative() *Conservative { return &Conservative{} }

// NewConservativeWindows returns the outage/reservation-aware variant.
func NewConservativeWindows() *Conservative { return &Conservative{Windows: true} }

// Name implements Scheduler.
func (c *Conservative) Name() string {
	if c.Windows {
		return "cons+win"
	}
	return "cons"
}

// Queued implements QueueReporter.
func (c *Conservative) Queued() []*core.Job { return append([]*core.Job(nil), c.queue...) }

// OnSubmit implements Scheduler.
func (c *Conservative) OnSubmit(ctx Context, j *core.Job) {
	c.queue = append(c.queue, j)
	c.schedule(ctx)
}

// OnFinish implements Scheduler.
func (c *Conservative) OnFinish(ctx Context, _ *core.Job) { c.schedule(ctx) }

// OnChange implements Scheduler.
func (c *Conservative) OnChange(ctx Context) { c.schedule(ctx) }

func (c *Conservative) schedule(ctx Context) {
	now := ctx.Now()
	var p *Profile
	if c.Windows {
		p = BuildProfileInto(&c.scratch, ctx)
	} else {
		p = c.scratch.Reset(now, ctx.FreeProcs())
		for _, r := range ctx.Running() {
			p.Release(overdueClamp(now, r.ExpEnd), r.Size)
		}
	}

	kept := c.queue[:0]
	for _, j := range c.queue {
		est := ctx.Estimate(j)
		start := p.EarliestFit(now, est, j.Size)
		if start == now && ctx.CanStart(j, j.Size) {
			ctx.Start(j, j.Size)
			// Its processors are busy until its expected end; reflect
			// that for the jobs behind it.
			p.Take(now, now+est, j.Size)
			continue
		}
		if start < 0 {
			// Larger than the (possibly degraded) machine: hold it.
			kept = append(kept, j)
			continue
		}
		// Reserve: later jobs must not delay this one.
		p.Take(start, start+est, j.Size)
		kept = append(kept, j)
	}
	c.queue = kept
}
