//go:build debugchecks

package sched

// Negative control for the ledger dual-run: deliberately corrupt a
// committed ledger entry and assert verifyResume notices before the
// scheduler acts on the poisoned record. A cross-validation that never
// fires is indistinguishable from one that is wired to nothing; CI
// runs this under -tags debugchecks to prove the alarm is live.

import (
	"strings"
	"testing"
)

// ledgerResumeScenario drives a Conservative to a committed,
// resumable ledger: one job fills the machine, a second gets a
// far-future reservation (the fruitless pass commits), and the clock
// advances without reaching the reservation. The next submit must
// take the resume path — which, under debugchecks, replays the
// recorded prefix from scratch first.
func ledgerResumeScenario(t *testing.T) (*mockContext, *Conservative) {
	t.Helper()
	m := newMock(8)
	c := NewConservative()
	c.OnSubmit(m, job(1, 0, 8, 100))
	if !m.startedSet()[1] {
		t.Fatal("scenario: job 1 should start immediately")
	}
	c.OnSubmit(m, job(2, 0, 4, 50))
	if m.startedSet()[2] {
		t.Fatal("scenario: job 2 should be blocked behind job 1")
	}
	if !c.ledger.ok || len(c.ledger.entries) != 1 {
		t.Fatalf("scenario: fruitless pass should commit 1 entry, ledger ok=%v entries=%d",
			c.ledger.ok, len(c.ledger.entries))
	}
	m.advance(10)
	return m, c
}

// mustPanic runs fn and asserts it panics with a message mentioning
// the dual-run.
func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s: corrupted ledger entry went undetected", what)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "ledger dual-run") {
			panic(r) // not ours: re-raise
		}
	}()
	fn()
}

func TestLedgerCorruptionTripsDualRun(t *testing.T) {
	// Control: an intact ledger resumes without tripping and the new
	// arrival is walked normally. If this fails the corruption subtests
	// below prove nothing — the resume path was never reached.
	t.Run("intact", func(t *testing.T) {
		m, c := ledgerResumeScenario(t)
		c.OnSubmit(m, job(3, 10, 2, 30))
		if len(c.ledger.entries) != 2 {
			t.Fatalf("resume should extend the walk to 2 entries, got %d", len(c.ledger.entries))
		}
	})

	t.Run("corrupt-start", func(t *testing.T) {
		m, c := ledgerResumeScenario(t)
		c.ledger.entries[0].start -= 5
		mustPanic(t, "recorded start", func() { c.OnSubmit(m, job(3, 10, 2, 30)) })
	})

	t.Run("corrupt-estimate", func(t *testing.T) {
		m, c := ledgerResumeScenario(t)
		c.ledger.entries[0].est += 60
		mustPanic(t, "recorded estimate", func() { c.OnSubmit(m, job(3, 10, 2, 30)) })
	})

	t.Run("corrupt-snapshot", func(t *testing.T) {
		m, c := ledgerResumeScenario(t)
		c.ledger.frees[len(c.ledger.frees)-1]--
		mustPanic(t, "profile snapshot", func() { c.OnSubmit(m, job(3, 10, 2, 30)) })
	})
}
