// Package model defines the common interface and shared machinery for
// statistical workload models. The paper (Section 2.1) surveys the
// state of the art in rigid-job models — Feitelson '96, Jann '97,
// Lublin '99, Downey '97 — and this repository implements all four as
// subpackages, plus a naive guesswork baseline. All models emit
// core.Workloads that can be written as standard workload files.
//
// Each model owns its marginal distributions; this package provides the
// pieces they share: load calibration (turning a target offered load
// into an interarrival scale), daily-cycle arrival modulation, identity
// assignment (Zipf-popular users and applications), power-of-two size
// rounding, and user runtime-estimate synthesis.
package model

import (
	"math"
	"sort"

	"parsched/internal/core"
	"parsched/internal/stats"
)

// Config carries the knobs every model understands.
type Config struct {
	// MaxNodes is the machine size the workload targets.
	MaxNodes int
	// Jobs is how many jobs to generate.
	Jobs int
	// Seed makes generation reproducible.
	Seed int64
	// Load is the target offered load (0 < Load < ~1.5). Zero means
	// "the model's natural arrival rate". Models calibrate their
	// interarrival scale so that total work / (span * MaxNodes) ≈ Load.
	Load float64
	// Users and Apps bound the identity space (defaults 64 and 32).
	Users int
	// Apps is the number of distinct applications.
	Apps int
	// MaxRuntime caps runtimes (seconds); 0 means the model default.
	MaxRuntime int64
	// EstimateFactor controls how badly users overestimate runtimes:
	// estimates are runtime * (1 + Exp(mean=EstimateFactor)), rounded
	// up. Zero disables estimates (schedulers then see perfect ones via
	// EstimateOrRuntime). A typical production value is 1–4.
	EstimateFactor float64
	// Memory enables the Section 2.2 memory extension: jobs draw a
	// per-processor memory demand (used and requested KB) from a
	// log-normal whose location grows with log2(size), following the
	// LANL CM-5 observation [17] that larger jobs use more memory per
	// processor. Zero values leave memory fields unset.
	Memory bool
	// MemMeanKB is the median per-processor memory of a serial job in
	// KB (default 32 MB) when Memory is on.
	MemMeanKB int64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.MaxNodes == 0 {
		c.MaxNodes = 128
	}
	if c.Jobs == 0 {
		c.Jobs = 1000
	}
	if c.Users == 0 {
		c.Users = 64
	}
	if c.Apps == 0 {
		c.Apps = 32
	}
	if c.MaxRuntime == 0 {
		c.MaxRuntime = 36 * 3600
	}
	if c.MemMeanKB == 0 {
		c.MemMeanKB = 32 * 1024 // 32 MB median per processor
	}
	return c
}

// Model generates synthetic workloads.
type Model interface {
	// Name identifies the model in tables and CLIs.
	Name() string
	// Generate produces cfg.Jobs jobs on a cfg.MaxNodes machine.
	Generate(cfg Config) *core.Workload
}

// Generator is the template all concrete models instantiate: a model
// supplies per-job size/runtime sampling and this driver handles
// arrivals, identities, estimates, and assembly. SampleJob returns the
// size and runtime of the next job; it may also return extra jobs
// (repeated runs) which the driver spaces closely.
type Generator struct {
	ModelName string
	// SampleJob draws one (size, runtime) pair.
	SampleJob func(rng *stats.RNG, cfg Config) (size int, runtime int64)
	// Decorate optionally post-processes each job (e.g. attach speedup
	// models or structures). May be nil.
	Decorate func(rng *stats.RNG, cfg Config, j *core.Job)
	// DailyCycle enables diurnal arrival-rate modulation.
	DailyCycle bool
}

// Name implements Model.
func (g *Generator) Name() string { return g.ModelName }

// Generate implements Model.
func (g *Generator) Generate(cfg Config) *core.Workload {
	cfg = cfg.withDefaults()
	rng := stats.NewRNG(cfg.Seed)
	sizeRng := rng.Fork()
	arrRng := rng.Fork()
	idRng := rng.Fork()
	estRng := rng.Fork()
	decRng := rng.Fork()

	// Pre-sample to estimate mean area for load calibration.
	meanArea := g.estimateMeanArea(cfg)
	meanGap := 3600.0 // natural default: one job per hour
	if cfg.Load > 0 {
		// load = meanArea / (gap * nodes)  =>  gap = meanArea/(load*nodes)
		meanGap = meanArea / (cfg.Load * float64(cfg.MaxNodes))
	}

	w := &core.Workload{Name: g.ModelName, MaxNodes: cfg.MaxNodes}
	userPop := stats.NewZipf(cfg.Users, 1.1)
	appPop := stats.NewZipf(cfg.Apps, 1.2)

	t := int64(0)
	for i := 0; i < cfg.Jobs; i++ {
		size, runtime := g.SampleJob(sizeRng, cfg)
		if size < 1 {
			size = 1
		}
		if size > cfg.MaxNodes {
			size = cfg.MaxNodes
		}
		if runtime < 1 {
			runtime = 1
		}
		if runtime > cfg.MaxRuntime {
			runtime = cfg.MaxRuntime
		}
		gap := nextGap(arrRng, meanGap, t, g.DailyCycle)
		t += gap
		j := &core.Job{
			ID:        int64(i + 1),
			Submit:    t,
			Size:      size,
			Runtime:   runtime,
			User:      int64(userPop.Sample(idRng)),
			App:       int64(appPop.Sample(idRng)),
			Group:     1,
			Queue:     1,
			Partition: 1,
		}
		j.Group = 1 + j.User%8 // a few groups, correlated with users
		if cfg.EstimateFactor > 0 {
			j.Estimate = SynthesizeEstimate(estRng, runtime, cfg.EstimateFactor, cfg.MaxRuntime)
		}
		if cfg.Memory {
			used, req := SynthesizeMemory(estRng, size, cfg.MemMeanKB)
			j.MemPerProc = used
			j.ReqMemPerProc = req
		}
		if g.Decorate != nil {
			g.Decorate(decRng, cfg, j)
		}
		w.Jobs = append(w.Jobs, j)
	}
	w.SortBySubmit()
	return w
}

// estimateMeanArea samples (size, runtime) pairs to estimate the mean
// processor-seconds per job, used for load calibration.
func (g *Generator) estimateMeanArea(cfg Config) float64 {
	rng := stats.NewRNG(cfg.Seed ^ 0x5ca1ab1e)
	const n = 3000
	var sum float64
	for i := 0; i < n; i++ {
		size, runtime := g.SampleJob(rng, cfg)
		if size < 1 {
			size = 1
		}
		if size > cfg.MaxNodes {
			size = cfg.MaxNodes
		}
		if runtime < 1 {
			runtime = 1
		}
		if runtime > cfg.MaxRuntime {
			runtime = cfg.MaxRuntime
		}
		sum += float64(size) * float64(runtime)
	}
	return sum / n
}

// nextGap draws the next interarrival gap. With a daily cycle, gaps are
// modulated so that arrivals cluster in working hours: the instantaneous
// rate at second-of-day s is scaled by cycleWeight(s).
func nextGap(rng *stats.RNG, meanGap float64, now int64, daily bool) int64 {
	base := stats.Exponential{Lambda: 1 / meanGap}.Sample(rng)
	if daily {
		sod := float64((now % 86400))
		base /= cycleWeight(sod)
	}
	g := int64(math.Round(base))
	if g < 1 {
		g = 1
	}
	return g
}

// cycleWeight is a smooth diurnal modulation with a daytime peak
// (roughly 8:00–18:00) about 3.5x the overnight trough, normalized to
// integrate to ~1 over the day so the daily job count stays calibrated.
func cycleWeight(secondOfDay float64) float64 {
	h := secondOfDay / 3600
	// Raised cosine centred on 13:00.
	w := 1 + 0.85*math.Cos((h-13)/24*2*math.Pi)
	return w
}

// RoundPow2 rounds n to the nearest power of two (ties go down), at
// least 1. Production logs are dominated by power-of-two sizes, a
// regularity every cited model reproduces.
func RoundPow2(n int) int {
	if n <= 1 {
		return 1
	}
	l := math.Log2(float64(n))
	lo := 1 << int(math.Floor(l))
	hi := lo * 2
	if n-lo <= hi-n {
		return lo
	}
	return hi
}

// SynthesizeEstimate produces a user runtime estimate: the runtime
// inflated by a random overestimation factor and rounded up to a
// quarter hour, mimicking the coarse estimates users give batch
// systems. The result is at least runtime and at most maxRuntime.
func SynthesizeEstimate(rng *stats.RNG, runtime int64, factor float64, maxRuntime int64) int64 {
	over := 1 + stats.Exponential{Lambda: 1 / factor}.Sample(rng)
	est := float64(runtime) * over
	const quarter = 900
	est = math.Ceil(est/quarter) * quarter
	e := int64(est)
	if e < runtime {
		e = runtime
	}
	if maxRuntime > 0 && e > maxRuntime {
		e = maxRuntime
	}
	return e
}

// SynthesizeMemory draws (used, requested) per-processor memory in KB
// for a job of the given size: log-normal used memory whose median
// grows ~15% per doubling of job size, and a requested figure padded by
// a uniform 1–2x safety factor rounded up to a power-of-two KB count
// (users request round numbers). This implements the memory extension
// of paper Section 2.2 pending real usage data ("there is only little
// data about actual memory usage patterns [17]").
func SynthesizeMemory(rng *stats.RNG, size int, medianKB int64) (used, req int64) {
	growth := math.Pow(1.15, math.Log2(float64(size)+1))
	median := float64(medianKB) * growth
	u := stats.LogNormal{Mu: math.Log(median), Sigma: 0.8}.Sample(rng)
	if u < 1 {
		u = 1
	}
	used = int64(u)
	pad := 1 + rng.Float64()
	r := float64(used) * pad
	// Round the request up to a power of two KB.
	p := int64(1)
	for float64(p) < r {
		p *= 2
	}
	return used, p
}

// Marginals extracts the three marginal samples (interarrival gaps,
// sizes, runtimes) used to compare workloads and models (experiment E9,
// the paper's co-plot comparison [58] reduced to K-S distances).
func Marginals(w *core.Workload) (gaps, sizes, runtimes []float64) {
	for i, j := range w.Jobs {
		if i > 0 {
			gaps = append(gaps, float64(j.Submit-w.Jobs[i-1].Submit))
		}
		sizes = append(sizes, float64(j.Size))
		runtimes = append(runtimes, float64(j.Runtime))
	}
	return gaps, sizes, runtimes
}

// Pow2Fraction reports the fraction of jobs whose size is a power of
// two, a headline statistic of production workloads.
func Pow2Fraction(w *core.Workload) float64 {
	if len(w.Jobs) == 0 {
		return 0
	}
	n := 0
	for _, j := range w.Jobs {
		if j.Size&(j.Size-1) == 0 {
			n++
		}
	}
	return float64(n) / float64(len(w.Jobs))
}

// SerialFraction reports the fraction of single-processor jobs.
func SerialFraction(w *core.Workload) float64 {
	if len(w.Jobs) == 0 {
		return 0
	}
	n := 0
	for _, j := range w.Jobs {
		if j.Size == 1 {
			n++
		}
	}
	return float64(n) / float64(len(w.Jobs))
}

// SizeRuntimeCorrelation returns the Pearson correlation between
// log2(size) and log(runtime), the size/runtime dependence the models
// differ on.
func SizeRuntimeCorrelation(w *core.Workload) float64 {
	var xs, ys []float64
	for _, j := range w.Jobs {
		xs = append(xs, math.Log2(float64(j.Size)))
		ys = append(ys, math.Log(float64(j.Runtime)+1))
	}
	return stats.Correlation(xs, ys)
}

// SortedSizes returns the distinct sizes in the workload, ascending —
// a convenience for tests and reports.
func SortedSizes(w *core.Workload) []int {
	seen := map[int]bool{}
	for _, j := range w.Jobs {
		seen[j.Size] = true
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}
