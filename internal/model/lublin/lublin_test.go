package lublin

import (
	"math"
	"testing"

	"parsched/internal/model"
	"parsched/internal/stats"
)

func TestDefaultParamsPublishedConstants(t *testing.T) {
	p := DefaultParams()
	// The hyper-gamma runtime constants and fractions follow the
	// published parameterization; lock them down.
	if p.A1 != 4.2 || p.B1 != 0.94 || p.A2 != 312 || p.B2 != 0.03 {
		t.Fatalf("runtime constants changed: %+v", p)
	}
	if p.SerialProb != 0.244 {
		t.Fatalf("serial probability: %v", p.SerialProb)
	}
	if p.PA != -0.0054 || p.PB != 0.78 {
		t.Fatalf("size-dependent mixing constants: %v %v", p.PA, p.PB)
	}
}

func TestSizeDistributionShape(t *testing.T) {
	s := &sampler{p: DefaultParams()}
	rng := stats.NewRNG(1)
	serial, pow2 := 0, 0
	const n = 20000
	for i := 0; i < n; i++ {
		size := s.sampleSize(rng, 128)
		if size < 1 || size > 128 {
			t.Fatalf("size %d out of range", size)
		}
		if size == 1 {
			serial++
		}
		if size&(size-1) == 0 {
			pow2++
		}
	}
	if f := float64(serial) / n; math.Abs(f-0.244) > 0.02 {
		t.Errorf("serial fraction %v, want ~0.244", f)
	}
	if f := float64(pow2) / n; f < 0.6 {
		t.Errorf("power-of-two fraction %v, want > 0.6", f)
	}
}

func TestRuntimeCorrelatesWithSize(t *testing.T) {
	s := &sampler{p: DefaultParams()}
	rng := stats.NewRNG(2)
	meanRT := func(size int) float64 {
		var sum float64
		const n = 5000
		for i := 0; i < n; i++ {
			sum += float64(s.sampleRuntime(rng, size))
		}
		return sum / n
	}
	small := meanRT(1)
	large := meanRT(100)
	if large <= small {
		t.Errorf("runtime should grow with size: size1=%v size100=%v", small, large)
	}
}

func TestRuntimeRange(t *testing.T) {
	s := &sampler{p: DefaultParams()}
	rng := stats.NewRNG(3)
	for i := 0; i < 20000; i++ {
		rt := s.sampleRuntime(rng, 1+rng.Intn(128))
		if rt < 1 || rt > 1e7 {
			t.Fatalf("runtime %d outside guard rails", rt)
		}
	}
}

func TestSmallMachineSanity(t *testing.T) {
	// UMed exceeds log2(maxNodes) on tiny machines; the sampler must
	// still produce in-range sizes.
	w := Default().Generate(model.Config{MaxNodes: 4, Jobs: 500, Seed: 4, Load: 0.5})
	for _, j := range w.Jobs {
		if j.Size < 1 || j.Size > 4 {
			t.Fatalf("size %d on 4-node machine", j.Size)
		}
	}
}

func TestDailyCycleEnabled(t *testing.T) {
	// The Lublin model is the one with the diurnal cycle: at high
	// arrival rates its arrivals must cluster in working hours clearly
	// more than the uniform baseline of 10/24.
	w := Default().Generate(model.Config{MaxNodes: 64, Jobs: 20000, Seed: 5, Load: 1.5})
	inDay := 0
	for _, j := range w.Jobs {
		h := (j.Submit % 86400) / 3600
		if h >= 8 && h < 18 {
			inDay++
		}
	}
	frac := float64(inDay) / float64(len(w.Jobs))
	const uniform = 10.0 / 24
	if frac < uniform+0.05 {
		t.Errorf("daytime arrival fraction %v, want clearly above the uniform %v", frac, uniform)
	}
}
