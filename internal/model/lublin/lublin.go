// Package lublin implements the rigid-job workload model of Lublin
// (MS thesis, Hebrew University, 1999; later Lublin & Feitelson, JPDC
// 2003) [46 in the paper] — the model the paper singles out as
// "relatively representative of multiple workloads" per the co-plot
// analysis of Talby et al. [58].
//
// Structure, following the published model:
//
//   - A job is serial with probability SerialProb; otherwise its
//     log2(size) is drawn from a two-stage uniform distribution, and the
//     result is rounded to a power of two with probability Pow2Prob;
//   - Runtimes follow a hyper-gamma distribution whose mixing
//     probability depends linearly on the job size, producing the
//     size/runtime correlation;
//   - Interarrival times are gamma distributed and modulated by a
//     strong daily cycle.
//
// The hyper-gamma runtime constants (a1=4.2, b1=0.94, a2=312, b2=0.03,
// p = -0.0054·size + 0.78) and the serial/power-of-two fractions follow
// the published parameterization; the remaining constants are
// calibrated to reproduce the published moments (see DESIGN.md).
package lublin

import (
	"math"

	"parsched/internal/model"
	"parsched/internal/stats"
)

// Params are the model constants.
type Params struct {
	// SerialProb is the fraction of single-processor jobs.
	SerialProb float64
	// Pow2Prob is the probability a parallel size is rounded to a
	// power of two.
	Pow2Prob float64
	// ULow, UMed, UProb define the two-stage uniform over log2(size):
	// with probability UProb the value is uniform on [UMed, log2(P)],
	// otherwise uniform on [ULow, UMed].
	ULow, UMed, UProb float64
	// Runtime hyper-gamma: Gamma(A1,B1) with probability p, else
	// Gamma(A2,B2), where p = PA*size + PB clamped to [PMin, PMax].
	A1, B1, A2, B2 float64
	PA, PB         float64
	PMin, PMax     float64
}

// DefaultParams returns the published parameterization.
func DefaultParams() Params {
	return Params{
		SerialProb: 0.244,
		Pow2Prob:   0.576,
		ULow:       0.8,
		UMed:       4.5,
		UProb:      0.86,
		A1:         4.2, B1: 0.94,
		A2: 312, B2: 0.03,
		PA: -0.0054, PB: 0.78,
		PMin: 0.05, PMax: 0.95,
	}
}

// New returns the Lublin '99 model with the given parameters.
func New(p Params) model.Model {
	s := &sampler{p: p}
	return &model.Generator{
		ModelName:  "lublin99",
		SampleJob:  s.sample,
		DailyCycle: true,
	}
}

// Default returns the model with DefaultParams.
func Default() model.Model { return New(DefaultParams()) }

type sampler struct{ p Params }

func (s *sampler) sample(rng *stats.RNG, cfg model.Config) (int, int64) {
	size := s.sampleSize(rng, cfg.MaxNodes)
	rt := s.sampleRuntime(rng, size)
	return size, rt
}

func (s *sampler) sampleSize(rng *stats.RNG, maxNodes int) int {
	if rng.Bool(s.p.SerialProb) {
		return 1
	}
	uhi := math.Log2(float64(maxNodes))
	med := s.p.UMed
	if med > uhi-0.5 {
		med = uhi / 2 // keep the two stages sane on small machines
	}
	l2 := stats.TwoStageUniform{
		Lo: s.p.ULow, Med: med, Hi: uhi, Prob: s.p.UProb,
	}.Sample(rng)
	size := int(math.Round(math.Pow(2, l2)))
	if rng.Bool(s.p.Pow2Prob) {
		size = model.RoundPow2(size)
	}
	if size < 2 {
		size = 2
	}
	if size > maxNodes {
		size = maxNodes
	}
	return size
}

func (s *sampler) sampleRuntime(rng *stats.RNG, size int) int64 {
	p := s.p.PA*float64(size) + s.p.PB
	if p < s.p.PMin {
		p = s.p.PMin
	}
	if p > s.p.PMax {
		p = s.p.PMax
	}
	// Note the inversion: with probability p the *short* gamma branch
	// is used; large jobs (small p) favour the long branch.
	hg := stats.HyperGamma{
		P:  p,
		G1: stats.Gamma{Alpha: s.p.A1, Beta: s.p.B1},
		G2: stats.Gamma{Alpha: s.p.A2, Beta: s.p.B2},
	}
	// The published model works in log space: the hyper-gamma samples
	// ln(runtime).
	lnRT := hg.Sample(rng)
	rt := math.Exp(lnRT)
	if rt < 1 {
		rt = 1
	}
	if rt > 1e7 {
		rt = 1e7
	}
	return int64(rt)
}
