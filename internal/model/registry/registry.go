// Package registry enumerates all workload models by name, for CLIs and
// experiment harnesses that select models from flags or sweep over all
// of them.
package registry

import (
	"fmt"
	"sort"

	"parsched/internal/model"
	"parsched/internal/model/downey"
	"parsched/internal/model/feitelson"
	"parsched/internal/model/jann"
	"parsched/internal/model/lublin"
	"parsched/internal/model/naive"
)

// New returns a fresh instance of the named model. Models are stateful
// generators, so callers get a new instance per use.
func New(name string) (model.Model, error) {
	switch name {
	case "feitelson96", "feitelson":
		return feitelson.Default(), nil
	case "jann97", "jann":
		return jann.Default(), nil
	case "lublin99", "lublin":
		return lublin.Default(), nil
	case "downey97", "downey":
		return downey.Default(), nil
	case "naive":
		return naive.Default(), nil
	default:
		return nil, fmt.Errorf("unknown workload model %q (have %v)", name, Names())
	}
}

// Names lists the canonical model names, sorted.
func Names() []string {
	names := []string{"feitelson96", "jann97", "lublin99", "downey97", "naive"}
	sort.Strings(names)
	return names
}

// All returns a fresh instance of every model, in Names() order.
func All() []model.Model {
	var ms []model.Model
	for _, n := range Names() {
		m, err := New(n)
		if err != nil {
			panic(err) // unreachable: Names and New are in sync
		}
		ms = append(ms, m)
	}
	return ms
}

// Cited returns the four measurement-based models the paper cites
// (excluding the naive baseline).
func Cited() []model.Model {
	return []model.Model{
		feitelson.Default(), jann.Default(), lublin.Default(), downey.Default(),
	}
}
