// Package registry_test runs the shared invariant suite over every
// model: this is where the per-model behavioural checks live so each
// model is exercised through the same lens.
package registry

import (
	"math"
	"testing"

	"parsched/internal/core"
	"parsched/internal/model"
	"parsched/internal/stats"
	"parsched/internal/swf"
)

func TestNewKnownAndUnknown(t *testing.T) {
	for _, n := range Names() {
		m, err := New(n)
		if err != nil || m == nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		if m.Name() != n {
			t.Errorf("Name() = %q, want %q", m.Name(), n)
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("unknown model should error")
	}
}

func TestAliases(t *testing.T) {
	for _, alias := range []string{"lublin", "feitelson", "jann", "downey"} {
		if _, err := New(alias); err != nil {
			t.Errorf("alias %q rejected: %v", alias, err)
		}
	}
}

func TestAllAndCited(t *testing.T) {
	if got := len(All()); got != 5 {
		t.Fatalf("All() = %d models", got)
	}
	if got := len(Cited()); got != 4 {
		t.Fatalf("Cited() = %d models", got)
	}
}

// cfg is the shared generation config for the invariant suite.
var cfg = model.Config{MaxNodes: 128, Jobs: 3000, Seed: 11, Load: 0.7, EstimateFactor: 1.5}

// generate builds one workload per model.
func generateAll(t *testing.T) map[string]*core.Workload {
	t.Helper()
	out := map[string]*core.Workload{}
	for _, m := range All() {
		out[m.Name()] = m.Generate(cfg)
	}
	return out
}

func TestEveryModelProducesValidWorkloads(t *testing.T) {
	for name, w := range generateAll(t) {
		if len(w.Jobs) != cfg.Jobs {
			t.Errorf("%s: %d jobs, want %d", name, len(w.Jobs), cfg.Jobs)
		}
		if err := w.Validate(); err != nil {
			t.Errorf("%s: invalid workload: %v", name, err)
		}
		for _, j := range w.Jobs {
			if j.Size < 1 || j.Size > cfg.MaxNodes {
				t.Fatalf("%s: job size %d out of range", name, j.Size)
			}
			if j.Runtime < 1 || j.Runtime > cfg.MaxRuntime && cfg.MaxRuntime > 0 {
				t.Fatalf("%s: runtime %d out of range", name, j.Runtime)
			}
			if j.Estimate < j.Runtime {
				t.Fatalf("%s: estimate below runtime", name)
			}
		}
	}
}

func TestEveryModelRoundTripsThroughSWF(t *testing.T) {
	for name, w := range generateAll(t) {
		log := core.ToSWF(w)
		if vs := swf.Errors(swf.Validate(log)); len(vs) != 0 {
			t.Errorf("%s: SWF validation errors: %v (first of %d)", name, vs[0], len(vs))
			continue
		}
		back, err := core.FromSWF(log)
		if err != nil {
			t.Errorf("%s: FromSWF: %v", name, err)
			continue
		}
		if len(back.Jobs) != len(w.Jobs) {
			t.Errorf("%s: job count changed in round trip", name)
		}
	}
}

func TestEveryModelHitsTargetLoad(t *testing.T) {
	for name, w := range generateAll(t) {
		got := w.OfferedLoad()
		if math.Abs(got-cfg.Load)/cfg.Load > 0.35 {
			t.Errorf("%s: offered load %v, target %v", name, got, cfg.Load)
		}
	}
}

func TestEveryModelDeterministic(t *testing.T) {
	for _, name := range Names() {
		m1, _ := New(name)
		m2, _ := New(name)
		a := m1.Generate(cfg)
		b := m2.Generate(cfg)
		for i := range a.Jobs {
			if a.Jobs[i].Submit != b.Jobs[i].Submit ||
				a.Jobs[i].Size != b.Jobs[i].Size ||
				a.Jobs[i].Runtime != b.Jobs[i].Runtime {
				t.Errorf("%s: same-seed generation diverged at job %d", name, i)
				break
			}
		}
	}
}

func TestMeasurementModelsShowPow2Structure(t *testing.T) {
	ws := generateAll(t)
	for _, name := range []string{"feitelson96", "jann97", "lublin99"} {
		if f := model.Pow2Fraction(ws[name]); f < 0.5 {
			t.Errorf("%s: power-of-two fraction %v, want > 0.5", name, f)
		}
	}
	// The naive baseline must NOT show this structure: on a 128-node
	// machine only 8 of 128 sizes are powers of two.
	if f := model.Pow2Fraction(ws["naive"]); f > 0.2 {
		t.Errorf("naive: power-of-two fraction %v, want < 0.2", f)
	}
}

func TestLublinSerialFraction(t *testing.T) {
	ws := generateAll(t)
	f := model.SerialFraction(ws["lublin99"])
	if math.Abs(f-0.244) > 0.06 {
		t.Errorf("lublin serial fraction = %v, want ~0.244", f)
	}
}

func TestSizeRuntimeCorrelationSign(t *testing.T) {
	ws := generateAll(t)
	// Feitelson and Lublin encode positive size/runtime correlation.
	for _, name := range []string{"feitelson96", "lublin99"} {
		if c := model.SizeRuntimeCorrelation(ws[name]); c <= 0.02 {
			t.Errorf("%s: size/runtime correlation %v, want positive", name, c)
		}
	}
	// Naive has none by construction.
	if c := model.SizeRuntimeCorrelation(ws["naive"]); math.Abs(c) > 0.08 {
		t.Errorf("naive: correlation %v, want ~0", c)
	}
}

func TestDowneyEmitsMoldableJobs(t *testing.T) {
	m, _ := New("downey97")
	w := m.Generate(cfg)
	moldable := 0
	for _, j := range w.Jobs {
		if j.Class == core.Moldable {
			moldable++
			if j.Speedup == nil {
				t.Fatal("moldable job without speedup model")
			}
			if j.MaxSize != cfg.MaxNodes || j.MinSize != 1 {
				t.Fatalf("moldable bounds wrong: %+v", j)
			}
		}
	}
	if moldable != len(w.Jobs) {
		t.Fatalf("%d/%d jobs moldable; Downey default should be all", moldable, len(w.Jobs))
	}
}

func TestDowneyMoldableRuntimeScales(t *testing.T) {
	m, _ := New("downey97")
	w := m.Generate(model.Config{MaxNodes: 128, Jobs: 200, Seed: 9, Load: 0.5})
	checked := 0
	for _, j := range w.Jobs {
		if j.Size >= 4 {
			half := j.RuntimeOn(j.Size / 2)
			if half < j.Runtime {
				t.Fatalf("halving processors should not speed up job: %d -> %d", j.Runtime, half)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no jobs large enough to check")
	}
}

func TestRuntimeDistributionsDiffer(t *testing.T) {
	// Sanity: the models should be distinguishable — K-S distance
	// between naive and lublin runtimes must be substantial.
	ws := generateAll(t)
	_, _, rtNaive := model.Marginals(ws["naive"])
	_, _, rtLublin := model.Marginals(ws["lublin99"])
	if d := stats.KSStatistic(rtNaive, rtLublin); d < 0.15 {
		t.Errorf("naive vs lublin runtime K-S = %v, expected clear separation", d)
	}
}

func TestFeitelsonRepetition(t *testing.T) {
	m, _ := New("feitelson96")
	w := m.Generate(model.Config{MaxNodes: 128, Jobs: 2000, Seed: 13, Load: 0.6})
	// Count consecutive identical (size, runtime) pairs: the repetition
	// mechanism should produce clearly more than chance.
	repeats := 0
	for i := 1; i < len(w.Jobs); i++ {
		if w.Jobs[i].Size == w.Jobs[i-1].Size && w.Jobs[i].Runtime == w.Jobs[i-1].Runtime {
			repeats++
		}
	}
	if repeats < 100 {
		t.Errorf("only %d repeated jobs in 2000; repetition mechanism inert", repeats)
	}
}

func TestJannBucketsRespectMachine(t *testing.T) {
	m, _ := New("jann97")
	small := m.Generate(model.Config{MaxNodes: 8, Jobs: 500, Seed: 17, Load: 0.5})
	for _, j := range small.Jobs {
		if j.Size > 8 {
			t.Fatalf("size %d exceeds 8-node machine", j.Size)
		}
	}
}
