package model

import (
	"math"
	"testing"

	"parsched/internal/core"
	"parsched/internal/stats"
)

// constModel is a trivial model for driver tests.
func constModel(size int, rt int64) *Generator {
	return &Generator{
		ModelName: "const",
		SampleJob: func(*stats.RNG, Config) (int, int64) { return size, rt },
	}
}

func TestGeneratorBasics(t *testing.T) {
	m := constModel(8, 100)
	w := m.Generate(Config{MaxNodes: 64, Jobs: 500, Seed: 1})
	if len(w.Jobs) != 500 {
		t.Fatalf("got %d jobs", len(w.Jobs))
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, j := range w.Jobs {
		if j.Size != 8 || j.Runtime != 100 {
			t.Fatalf("job fields wrong: %+v", j)
		}
		if j.User < 1 || j.App < 1 || j.Group < 1 {
			t.Fatalf("identities must be natural: %+v", j)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	cfg := Config{MaxNodes: 64, Jobs: 200, Seed: 42, Load: 0.6}
	a := constModel(4, 60).Generate(cfg)
	b := constModel(4, 60).Generate(cfg)
	for i := range a.Jobs {
		if a.Jobs[i].Submit != b.Jobs[i].Submit || a.Jobs[i].User != b.Jobs[i].User {
			t.Fatalf("same seed diverged at job %d", i)
		}
	}
	c := constModel(4, 60).Generate(Config{MaxNodes: 64, Jobs: 200, Seed: 43, Load: 0.6})
	diff := 0
	for i := range a.Jobs {
		if a.Jobs[i].Submit != c.Jobs[i].Submit {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical arrivals")
	}
}

func TestLoadCalibration(t *testing.T) {
	for _, target := range []float64{0.3, 0.7, 1.0} {
		m := constModel(8, 1000)
		w := m.Generate(Config{MaxNodes: 64, Jobs: 4000, Seed: 7, Load: target})
		got := w.OfferedLoad()
		if math.Abs(got-target)/target > 0.15 {
			t.Errorf("target load %v, offered %v", target, got)
		}
	}
}

func TestClampingToMachine(t *testing.T) {
	m := constModel(1<<20, 100) // absurd size gets clamped
	w := m.Generate(Config{MaxNodes: 32, Jobs: 10, Seed: 1})
	for _, j := range w.Jobs {
		if j.Size != 32 {
			t.Fatalf("size not clamped: %d", j.Size)
		}
	}
}

func TestEstimatesWhenEnabled(t *testing.T) {
	m := constModel(4, 500)
	w := m.Generate(Config{MaxNodes: 64, Jobs: 300, Seed: 3, EstimateFactor: 2})
	over := 0
	for _, j := range w.Jobs {
		if j.Estimate < j.Runtime {
			t.Fatalf("estimate %d below runtime %d", j.Estimate, j.Runtime)
		}
		if j.Estimate%900 != 0 {
			t.Fatalf("estimate %d not rounded to 15 min", j.Estimate)
		}
		if j.Estimate > j.Runtime {
			over++
		}
	}
	if over < 200 {
		t.Fatalf("only %d/300 jobs overestimate; expected most", over)
	}
}

func TestNoEstimatesByDefault(t *testing.T) {
	w := constModel(4, 500).Generate(Config{MaxNodes: 64, Jobs: 10, Seed: 3})
	for _, j := range w.Jobs {
		if j.Estimate != 0 {
			t.Fatal("estimates must be off by default")
		}
	}
}

func TestRoundPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 2, 5: 4, 6: 4, 7: 8, 12: 8, 13: 16, 100: 128, 96: 64}
	for in, want := range cases {
		if got := RoundPow2(in); got != want {
			t.Errorf("RoundPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestRoundPow2Property(t *testing.T) {
	for n := 1; n < 3000; n++ {
		p := RoundPow2(n)
		if p&(p-1) != 0 {
			t.Fatalf("RoundPow2(%d) = %d is not a power of two", n, p)
		}
		if p < n/2 || p > 2*n {
			t.Fatalf("RoundPow2(%d) = %d too far", n, p)
		}
	}
}

func TestDailyCycleClustersArrivals(t *testing.T) {
	day := &Generator{ModelName: "d", SampleJob: func(*stats.RNG, Config) (int, int64) { return 1, 10 }, DailyCycle: true}
	flat := &Generator{ModelName: "f", SampleJob: func(*stats.RNG, Config) (int, int64) { return 1, 10 }}
	cfg := Config{MaxNodes: 4, Jobs: 20000, Seed: 5, Load: 0.01}

	frac := func(w *core.Workload) float64 {
		inDay := 0
		for _, j := range w.Jobs {
			h := (j.Submit % 86400) / 3600
			if h >= 8 && h < 18 {
				inDay++
			}
		}
		return float64(inDay) / float64(len(w.Jobs))
	}
	fd := frac(day.Generate(cfg))
	ff := frac(flat.Generate(cfg))
	if fd < ff+0.1 {
		t.Fatalf("daily cycle should concentrate arrivals: day=%v flat=%v", fd, ff)
	}
}

func TestCycleWeightMeanNearOne(t *testing.T) {
	sum := 0.0
	const n = 86400
	for s := 0; s < n; s++ {
		sum += cycleWeight(float64(s))
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("cycle weight mean = %v, want ~1", mean)
	}
}

func TestMarginals(t *testing.T) {
	w := &core.Workload{MaxNodes: 8, Jobs: []*core.Job{
		{ID: 1, Submit: 0, Size: 2, Runtime: 10},
		{ID: 2, Submit: 5, Size: 4, Runtime: 20},
		{ID: 3, Submit: 15, Size: 8, Runtime: 30},
	}}
	gaps, sizes, rts := Marginals(w)
	if len(gaps) != 2 || gaps[0] != 5 || gaps[1] != 10 {
		t.Fatalf("gaps = %v", gaps)
	}
	if len(sizes) != 3 || len(rts) != 3 {
		t.Fatal("marginal lengths wrong")
	}
}

func TestFractionHelpers(t *testing.T) {
	w := &core.Workload{Jobs: []*core.Job{
		{Size: 1}, {Size: 2}, {Size: 3}, {Size: 4},
	}}
	if f := Pow2Fraction(w); f != 0.75 {
		t.Fatalf("pow2 fraction = %v", f)
	}
	if f := SerialFraction(w); f != 0.25 {
		t.Fatalf("serial fraction = %v", f)
	}
	if Pow2Fraction(&core.Workload{}) != 0 || SerialFraction(&core.Workload{}) != 0 {
		t.Fatal("empty workload fractions should be 0")
	}
}

func TestSynthesizeEstimateBounds(t *testing.T) {
	rng := stats.NewRNG(1)
	for i := 0; i < 1000; i++ {
		est := SynthesizeEstimate(rng, 1000, 2, 7200)
		if est < 1000 || est > 7200 {
			t.Fatalf("estimate %d out of bounds", est)
		}
	}
}

func TestSortedSizes(t *testing.T) {
	w := &core.Workload{Jobs: []*core.Job{{Size: 8}, {Size: 2}, {Size: 8}}}
	got := SortedSizes(w)
	if len(got) != 2 || got[0] != 2 || got[1] != 8 {
		t.Fatalf("sizes = %v", got)
	}
}
