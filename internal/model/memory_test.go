package model

import (
	"math"
	"testing"

	"parsched/internal/stats"
)

func TestSynthesizeMemoryShape(t *testing.T) {
	rng := stats.NewRNG(1)
	for i := 0; i < 5000; i++ {
		used, req := SynthesizeMemory(rng, 1+rng.Intn(128), 32*1024)
		if used < 1 {
			t.Fatalf("used memory %d", used)
		}
		if req < used {
			t.Fatalf("request %d below usage %d", req, used)
		}
		if req&(req-1) != 0 {
			t.Fatalf("request %d not a power of two KB", req)
		}
	}
}

func TestSynthesizeMemoryGrowsWithSize(t *testing.T) {
	rng := stats.NewRNG(2)
	mean := func(size int) float64 {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			u, _ := SynthesizeMemory(rng, size, 32*1024)
			sum += float64(u)
		}
		return sum / n
	}
	small, large := mean(1), mean(128)
	if large <= small {
		t.Errorf("per-proc memory should grow with size: %v -> %v", small, large)
	}
	// Growth is moderate (~15%/doubling over 7 doublings ≈ 2.7x), not
	// explosive.
	if large > 8*small {
		t.Errorf("memory growth too steep: %v -> %v", small, large)
	}
}

func TestGeneratorMemoryExtension(t *testing.T) {
	m := constModel(8, 100)
	off := m.Generate(Config{MaxNodes: 64, Jobs: 50, Seed: 3})
	for _, j := range off.Jobs {
		if j.MemPerProc != 0 || j.ReqMemPerProc != 0 {
			t.Fatal("memory fields set without Memory flag")
		}
	}
	on := m.Generate(Config{MaxNodes: 64, Jobs: 200, Seed: 3, Memory: true})
	for _, j := range on.Jobs {
		if j.MemPerProc < 1 || j.ReqMemPerProc < j.MemPerProc {
			t.Fatalf("memory fields wrong: used=%d req=%d", j.MemPerProc, j.ReqMemPerProc)
		}
	}
}

func TestMemoryMedianScale(t *testing.T) {
	rng := stats.NewRNG(4)
	var xs []float64
	for i := 0; i < 20000; i++ {
		u, _ := SynthesizeMemory(rng, 1, 32*1024)
		xs = append(xs, float64(u))
	}
	s := stats.Summarize(xs)
	// Median of the serial-job distribution ≈ the configured median
	// (x1.15^1 size growth for size 1 -> log2(2)=1 doubling).
	want := 32 * 1024 * math.Pow(1.15, 1)
	if math.Abs(s.Median-want)/want > 0.10 {
		t.Errorf("median %v, want ~%v", s.Median, want)
	}
}
