// Package jann implements the rigid-job workload model of Jann,
// Pattnaik, Franke, Wang, Skovira & Riodan, "Modeling of Workload in
// MPPs" (JSSPP 1997) [38 in the paper].
//
// Jann et al. fit hyper-Erlang distributions of common order to the
// interarrival times and service times of the Cornell Theory Center
// SP2 trace, separately for each job-size range (1, 2, 3–4, 5–8, ...,
// powers-of-two buckets up to the machine size). This package
// reproduces that structure: sizes are drawn from a bucket popularity
// vector, then the bucket's own hyper-Erlang service-time distribution
// is sampled, and a size within the bucket is chosen (first element —
// the power of two — with high probability).
//
// The published paper tabulates dozens of fitted coefficients per
// trace; this implementation ships a representative parameter table
// that reproduces the qualitative moments (bucket popularity declining
// with size, service-time mean and CV growing with size, CV > 1
// throughout). The substitution is recorded in DESIGN.md.
package jann

import (
	"math"

	"parsched/internal/model"
	"parsched/internal/stats"
)

// Bucket is one job-size range with its fitted service-time
// distribution.
type Bucket struct {
	// Lo and Hi bound the sizes in the bucket (inclusive).
	Lo, Hi int
	// Weight is the bucket's relative popularity.
	Weight float64
	// Service is the hyper-Erlang service-time distribution (seconds).
	Service stats.HyperErlang
	// Pow2Prob is the probability the job takes the bucket's power of
	// two (Lo) rather than a uniform size inside the bucket.
	Pow2Prob float64
}

// Params is the bucket table.
type Params struct {
	Buckets []Bucket
}

// DefaultParams builds the bucket table for a machine of maxNodes
// processors. Buckets follow the powers of two; service times grow
// with the bucket index with CV ≈ 2–4, matching the hyper-Erlang fits'
// qualitative shape.
func DefaultParams(maxNodes int) Params {
	var ps Params
	lo := 1
	idx := 0
	for lo <= maxNodes {
		hi := lo*2 - 1
		if hi > maxNodes {
			hi = maxNodes
		}
		// Popularity declines roughly geometrically with bucket index,
		// with a bump for serial jobs.
		weight := math.Pow(0.72, float64(idx))
		if lo == 1 {
			weight *= 1.6
		}
		// Service time: two Erlang-2 branches; the long branch grows
		// with size (bigger jobs run longer at CTC).
		shortMean := 300.0 * (1 + 0.35*float64(idx))
		longMean := 7200.0 * (1 + 0.55*float64(idx))
		svc := stats.HyperErlang{
			Branches: []stats.Erlang{
				{K: 2, Lambda: 2 / shortMean},
				{K: 2, Lambda: 2 / longMean},
			},
			Probs: []float64{0.65, 0.35},
		}
		ps.Buckets = append(ps.Buckets, Bucket{
			Lo: lo, Hi: hi, Weight: weight, Service: svc, Pow2Prob: 0.7,
		})
		lo *= 2
		idx++
	}
	return ps
}

// New returns a Jann '97 model with the given bucket table.
func New(p Params) model.Model {
	s := &sampler{p: p}
	return &model.Generator{
		ModelName: "jann97",
		SampleJob: s.sample,
	}
}

// Default returns the model with the default table for cfg.MaxNodes.
// Because the table depends on the machine size, Default builds it
// lazily at first sample.
func Default() model.Model {
	s := &sampler{}
	return &model.Generator{
		ModelName: "jann97",
		SampleJob: s.sample,
	}
}

type sampler struct {
	p     Params
	built int // machine size the lazy table was built for
	cum   []float64
}

func (s *sampler) sample(rng *stats.RNG, cfg model.Config) (int, int64) {
	if len(s.p.Buckets) == 0 || (s.built != 0 && s.built != cfg.MaxNodes) {
		s.p = DefaultParams(cfg.MaxNodes)
		s.built = cfg.MaxNodes
		s.cum = nil
	}
	if s.cum == nil {
		total := 0.0
		for _, b := range s.p.Buckets {
			total += b.Weight //schedlint:allow floatsum normalization over a fixed small bucket table, not a job population
		}
		acc := 0.0
		s.cum = make([]float64, len(s.p.Buckets))
		for i, b := range s.p.Buckets {
			acc += b.Weight / total //schedlint:allow floatsum CDF prefix sum; sequential by construction
			s.cum[i] = acc
		}
	}

	u := rng.Float64()
	bi := len(s.p.Buckets) - 1
	for i, c := range s.cum {
		if u < c {
			bi = i
			break
		}
	}
	b := s.p.Buckets[bi]

	size := b.Lo
	if b.Hi > b.Lo && !rng.Bool(b.Pow2Prob) {
		size = b.Lo + rng.Intn(b.Hi-b.Lo+1)
	}
	rt := b.Service.Sample(rng)
	if rt < 1 {
		rt = 1
	}
	return size, int64(rt)
}
