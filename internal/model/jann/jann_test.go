package jann

import (
	"testing"

	"parsched/internal/model"
	"parsched/internal/stats"
)

func TestDefaultParamsBuckets(t *testing.T) {
	p := DefaultParams(128)
	// Buckets follow powers of two: 1, 2-3, 4-7, ..., 128 -> 8 buckets.
	if len(p.Buckets) != 8 {
		t.Fatalf("buckets = %d", len(p.Buckets))
	}
	if p.Buckets[0].Lo != 1 || p.Buckets[7].Lo != 128 {
		t.Fatalf("bucket bounds wrong: %+v", p.Buckets)
	}
	for i := 1; i < len(p.Buckets); i++ {
		if p.Buckets[i].Weight >= p.Buckets[i-1].Weight && i > 1 {
			t.Fatalf("bucket popularity should decline: %v", p.Buckets)
		}
	}
}

func TestServiceTimeGrowsWithBucket(t *testing.T) {
	p := DefaultParams(128)
	first := p.Buckets[0].Service.Mean()
	last := p.Buckets[len(p.Buckets)-1].Service.Mean()
	if last <= first {
		t.Fatalf("service mean should grow with size: %v -> %v", first, last)
	}
}

func TestServiceTimeHighCV(t *testing.T) {
	// Hyper-Erlang fits have CV > 1 (mixture of short and long).
	p := DefaultParams(64)
	rng := stats.NewRNG(1)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = p.Buckets[3].Service.Sample(rng)
	}
	s := stats.Summarize(xs)
	if s.CV <= 1 {
		t.Errorf("service CV %v, want > 1", s.CV)
	}
}

func TestSamplerRespectsBuckets(t *testing.T) {
	m := Default()
	w := m.Generate(model.Config{MaxNodes: 32, Jobs: 2000, Seed: 2, Load: 0.5})
	for _, j := range w.Jobs {
		if j.Size < 1 || j.Size > 32 {
			t.Fatalf("size %d out of machine", j.Size)
		}
	}
}

func TestLazyTableRebuildOnMachineChange(t *testing.T) {
	m := Default()
	small := m.Generate(model.Config{MaxNodes: 8, Jobs: 200, Seed: 3, Load: 0.5})
	for _, j := range small.Jobs {
		if j.Size > 8 {
			t.Fatalf("size %d on 8-node machine", j.Size)
		}
	}
	// Same model instance, bigger machine: table must rebuild.
	big := m.Generate(model.Config{MaxNodes: 128, Jobs: 2000, Seed: 3, Load: 0.5})
	seen128 := false
	for _, j := range big.Jobs {
		if j.Size > 8 {
			seen128 = true
		}
	}
	if !seen128 {
		t.Fatal("model stuck on the small machine's bucket table")
	}
}

func TestCustomBucketTable(t *testing.T) {
	p := Params{Buckets: []Bucket{{
		Lo: 4, Hi: 4, Weight: 1, Pow2Prob: 1,
		Service: stats.HyperErlang{
			Branches: []stats.Erlang{{K: 1, Lambda: 0.01}},
			Probs:    []float64{1},
		},
	}}}
	w := New(p).Generate(model.Config{MaxNodes: 16, Jobs: 100, Seed: 4, Load: 0.5})
	for _, j := range w.Jobs {
		if j.Size != 4 {
			t.Fatalf("custom table ignored: size %d", j.Size)
		}
	}
}
