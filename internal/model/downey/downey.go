// Package downey implements the workload model of Downey, "A Parallel
// Workload Model and Its Implications for Processor Allocation" (HPDC
// 1997) [13 in the paper] — the flexible-job model the paper cites for
// describing "the total computation and the speedup function, instead
// of the required number of processors and runtime".
//
// Downey's observations, reproduced here:
//
//   - Cumulative (sequential) lifetimes are log-uniform over several
//     orders of magnitude;
//   - A job's average parallelism A is log-uniform between 1 and the
//     machine size;
//   - The variance-of-parallelism parameter sigma is uniform on
//     [0, SigmaMax];
//   - The speedup function S(n; A, sigma) is Downey's piecewise model
//     (implemented as core.DowneySpeedup).
//
// The model can emit either moldable jobs (Class=Moldable, carrying the
// speedup model, size = a default allocation the scheduler may change)
// or their rigid projection (size fixed at the default allocation).
package downey

import (
	"math"

	"parsched/internal/core"
	"parsched/internal/model"
	"parsched/internal/stats"
)

// Params are the model constants.
type Params struct {
	// MinWork and MaxWork bound the log-uniform sequential work
	// (processor-seconds on one processor).
	MinWork, MaxWork float64
	// SigmaMax bounds the uniform sigma.
	SigmaMax float64
	// Moldable controls whether jobs carry their speedup model and the
	// Moldable class (true) or are frozen rigid at the default
	// allocation (false).
	Moldable bool
	// AllocFraction is the default allocation as a fraction of A
	// (1.0 allocates exactly the average parallelism).
	AllocFraction float64
}

// DefaultParams follows the published ranges: lifetimes spanning
// seconds to days, sigma in [0,2].
func DefaultParams() Params {
	return Params{
		MinWork:       60,  // one minute
		MaxWork:       4e6, // ~46 processor-days
		SigmaMax:      2,
		Moldable:      true,
		AllocFraction: 1,
	}
}

// New returns a Downey '97 model.
func New(p Params) model.Model {
	s := &sampler{p: p}
	return &model.Generator{
		ModelName: "downey97",
		SampleJob: s.sample,
		Decorate:  s.decorate,
	}
}

// Default returns the model with DefaultParams.
func Default() model.Model { return New(DefaultParams()) }

type sampler struct {
	p Params
	// carried between sample and decorate for the same job
	lastA     float64
	lastSigma float64
	lastWork  float64
}

func (s *sampler) sample(rng *stats.RNG, cfg model.Config) (int, int64) {
	work := stats.LogUniform{Lo: s.p.MinWork, Hi: s.p.MaxWork}.Sample(rng)
	A := stats.LogUniform{Lo: 1, Hi: float64(cfg.MaxNodes)}.Sample(rng)
	sigma := stats.Uniform{Lo: 0, Hi: s.p.SigmaMax}.Sample(rng)

	s.lastA, s.lastSigma, s.lastWork = A, sigma, work

	// Default allocation: AllocFraction of the average parallelism,
	// rounded to a power of two (allocation practice at the sites
	// Downey studied).
	n := int(math.Round(A * s.p.AllocFraction))
	if n < 1 {
		n = 1
	}
	n = model.RoundPow2(n)
	if n > cfg.MaxNodes {
		n = cfg.MaxNodes
	}

	sp := core.DowneySpeedup{A: A, Sigma: sigma}
	rt := work / sp.Speedup(n)
	if rt < 1 {
		rt = 1
	}
	return n, int64(rt)
}

func (s *sampler) decorate(rng *stats.RNG, cfg model.Config, j *core.Job) {
	if !s.p.Moldable {
		return
	}
	j.Class = core.Moldable
	j.Speedup = core.DowneySpeedup{A: s.lastA, Sigma: s.lastSigma}
	j.MinSize = 1
	j.MaxSize = cfg.MaxNodes
}
