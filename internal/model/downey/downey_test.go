package downey

import (
	"math"
	"testing"

	"parsched/internal/core"
	"parsched/internal/model"
)

func TestMoldableJobsCarrySpeedup(t *testing.T) {
	w := Default().Generate(model.Config{MaxNodes: 128, Jobs: 500, Seed: 1, Load: 0.6})
	for _, j := range w.Jobs {
		if j.Class != core.Moldable {
			t.Fatalf("job %d not moldable", j.ID)
		}
		d, ok := j.Speedup.(core.DowneySpeedup)
		if !ok {
			t.Fatalf("job %d speedup type %T", j.ID, j.Speedup)
		}
		if d.A < 1 || d.A > 128 {
			t.Fatalf("average parallelism %v out of range", d.A)
		}
		if d.Sigma < 0 || d.Sigma > 2 {
			t.Fatalf("sigma %v outside [0,2]", d.Sigma)
		}
	}
}

func TestRigidVariant(t *testing.T) {
	p := DefaultParams()
	p.Moldable = false
	w := New(p).Generate(model.Config{MaxNodes: 128, Jobs: 200, Seed: 2, Load: 0.6})
	for _, j := range w.Jobs {
		if j.Class != core.Rigid || j.Speedup != nil {
			t.Fatalf("rigid variant leaked flexibility: %+v", j)
		}
	}
}

func TestSizesArePowersOfTwo(t *testing.T) {
	w := Default().Generate(model.Config{MaxNodes: 128, Jobs: 1000, Seed: 3, Load: 0.6})
	for _, j := range w.Jobs {
		if j.Size&(j.Size-1) != 0 {
			t.Fatalf("allocation %d not a power of two", j.Size)
		}
	}
}

func TestLifetimesSpanOrders(t *testing.T) {
	// Log-uniform work: the runtime spread must cover several orders of
	// magnitude.
	w := Default().Generate(model.Config{
		MaxNodes: 128, Jobs: 3000, Seed: 4, Load: 0.6, MaxRuntime: 1 << 40,
	})
	minRT, maxRT := int64(math.MaxInt64), int64(0)
	for _, j := range w.Jobs {
		if j.Runtime < minRT {
			minRT = j.Runtime
		}
		if j.Runtime > maxRT {
			maxRT = j.Runtime
		}
	}
	if float64(maxRT)/float64(minRT) < 1000 {
		t.Errorf("runtime spread %d..%d too narrow for log-uniform lifetimes", minRT, maxRT)
	}
}

func TestRuntimeConsistentWithSpeedup(t *testing.T) {
	// The recorded (size, runtime) pair must satisfy runtime =
	// work/speedup(size): RuntimeOn(size) == Runtime by construction,
	// and total work is recoverable.
	w := Default().Generate(model.Config{MaxNodes: 128, Jobs: 300, Seed: 5, Load: 0.6})
	for _, j := range w.Jobs {
		if j.RuntimeOn(j.Size) != j.Runtime {
			t.Fatalf("job %d: RuntimeOn(own size) != runtime", j.ID)
		}
		// Doubling processors never slows a moldable job down.
		if j.Size*2 <= 128 && j.RuntimeOn(j.Size*2) > j.Runtime {
			t.Fatalf("job %d slows down with more processors", j.ID)
		}
	}
}
