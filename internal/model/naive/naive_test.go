package naive

import (
	"math"
	"testing"

	"parsched/internal/model"
)

func TestUniformSizes(t *testing.T) {
	w := Default().Generate(model.Config{MaxNodes: 64, Jobs: 20000, Seed: 1, Load: 0.5})
	counts := make([]int, 65)
	for _, j := range w.Jobs {
		if j.Size < 1 || j.Size > 64 {
			t.Fatalf("size %d out of range", j.Size)
		}
		counts[j.Size]++
	}
	// Uniform: every size present, no size dominating.
	for s := 1; s <= 64; s++ {
		if counts[s] == 0 {
			t.Fatalf("size %d never generated", s)
		}
		if float64(counts[s]) > 3*20000.0/64 {
			t.Fatalf("size %d overrepresented: %d", s, counts[s])
		}
	}
}

func TestExponentialRuntimes(t *testing.T) {
	w := New(Params{MeanRuntime: 1800}).Generate(model.Config{
		MaxNodes: 64, Jobs: 20000, Seed: 2, Load: 0.5, MaxRuntime: 1 << 30,
	})
	var sum float64
	for _, j := range w.Jobs {
		sum += float64(j.Runtime)
	}
	mean := sum / float64(len(w.Jobs))
	if math.Abs(mean-1800)/1800 > 0.05 {
		t.Errorf("mean runtime %v, want ~1800", mean)
	}
}
