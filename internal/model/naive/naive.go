// Package naive is the guesswork baseline the paper says evaluations
// had to rely on "a mere five years ago": uniform job sizes and
// exponential runtimes, with no power-of-two structure, no size/runtime
// correlation, and no daily cycle. It exists to be compared against the
// measurement-based models (experiment E9) and loses to all of them.
package naive

import (
	"parsched/internal/model"
	"parsched/internal/stats"
)

// Params are the baseline constants.
type Params struct {
	// MeanRuntime is the exponential runtime mean in seconds.
	MeanRuntime float64
}

// DefaultParams uses a one-hour mean runtime.
func DefaultParams() Params { return Params{MeanRuntime: 3600} }

// New returns the naive model.
func New(p Params) model.Model {
	return &model.Generator{
		ModelName: "naive",
		SampleJob: func(rng *stats.RNG, cfg model.Config) (int, int64) {
			size := 1 + rng.Intn(cfg.MaxNodes)
			rt := stats.Exponential{Lambda: 1 / p.MeanRuntime}.Sample(rng)
			if rt < 1 {
				rt = 1
			}
			return size, int64(rt)
		},
	}
}

// Default returns the model with DefaultParams.
func Default() model.Model { return New(DefaultParams()) }
