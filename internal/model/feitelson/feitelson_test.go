package feitelson

import (
	"testing"

	"parsched/internal/model"
	"parsched/internal/stats"
)

func TestSizeEmphasis(t *testing.T) {
	st := &state{p: DefaultParams()}
	rng := stats.NewRNG(1)
	counts := map[int]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[st.sampleSize(rng, 128)]++
	}
	// Small sizes dominate (harmonic) and powers of two dominate their
	// neighbourhoods.
	if counts[1] < counts[16] {
		t.Errorf("size 1 (%d) should be more common than 16 (%d)", counts[1], counts[16])
	}
	if counts[8] < counts[7]+counts[9] {
		t.Errorf("power-of-two 8 (%d) should beat neighbours 7+9 (%d)",
			counts[8], counts[7]+counts[9])
	}
	// Full-machine jobs exist (the FullMachineProb mass).
	if counts[128] == 0 {
		t.Error("no full-machine jobs generated")
	}
}

func TestRuntimeSizeCorrelation(t *testing.T) {
	st := &state{p: DefaultParams()}
	rng := stats.NewRNG(2)
	mean := func(size int) float64 {
		var sum float64
		const n = 8000
		for i := 0; i < n; i++ {
			sum += float64(st.sampleRuntime(rng, size))
		}
		return sum / n
	}
	if mean(64) <= mean(1) {
		t.Errorf("large jobs should run longer: size1=%v size64=%v", mean(1), mean(64))
	}
}

func TestRepetitionMechanism(t *testing.T) {
	st := &state{p: DefaultParams()}
	rng := stats.NewRNG(3)
	cfg := model.Config{MaxNodes: 128, MaxRuntime: 1 << 30}
	repeats := 0
	var lastS int
	var lastR int64
	const n = 10000
	for i := 0; i < n; i++ {
		s, r := st.sample(rng, cfg)
		if i > 0 && s == lastS && r == lastR {
			repeats++
		}
		lastS, lastR = s, r
	}
	if repeats < n/20 {
		t.Errorf("only %d/%d consecutive repeats; repetition mechanism inert", repeats, n)
	}
}

func TestNoRepetitionWhenDisabled(t *testing.T) {
	p := DefaultParams()
	p.RepeatProb = 0
	st := &state{p: p}
	rng := stats.NewRNG(4)
	cfg := model.Config{MaxNodes: 128, MaxRuntime: 1 << 30}
	repeats := 0
	var lastS int
	var lastR int64
	for i := 0; i < 5000; i++ {
		s, r := st.sample(rng, cfg)
		if i > 0 && s == lastS && r == lastR {
			repeats++
		}
		lastS, lastR = s, r
	}
	// Chance collisions only.
	if repeats > 100 {
		t.Errorf("%d repeats with RepeatProb=0", repeats)
	}
}

func TestGenerateThroughDriver(t *testing.T) {
	w := Default().Generate(model.Config{MaxNodes: 64, Jobs: 800, Seed: 5, Load: 0.7})
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}
