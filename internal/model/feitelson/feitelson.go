// Package feitelson implements the rigid-job workload model of
// Feitelson, "Packing Schemes for Gang Scheduling" (JSSPP 1996) [18 in
// the paper], one of the models the paper cites as the state of the art
// for generating "rectangular" jobs.
//
// The model's signature features, reproduced here:
//
//   - Job sizes follow a harmonic-like distribution (small jobs are
//     common) with strong extra emphasis on powers of two and on
//     "interesting" sizes like the full machine;
//   - Runtimes are drawn from a hyper-exponential whose long branch is
//     more likely for larger jobs, creating the observed positive
//     correlation between size and runtime;
//   - Jobs are resubmitted: each generated job is repeated a random
//     number of times (most jobs run once, some run many times),
//     modeling the re-run behaviour seen in production logs.
package feitelson

import (
	"math"

	"parsched/internal/model"
	"parsched/internal/stats"
)

// Params are the tunable constants of the model. Defaults follow the
// published model's shape; see DESIGN.md for the calibration note.
type Params struct {
	// Pow2Prob is the probability that a sampled size is rounded to a
	// power of two.
	Pow2Prob float64
	// FullMachineProb is the probability mass given to full-machine jobs.
	FullMachineProb float64
	// HarmonicS is the exponent of the harmonic size distribution
	// (P(n) ∝ 1/n^s).
	HarmonicS float64
	// MeanShort and MeanLong are the two runtime branches (seconds).
	MeanShort, MeanLong float64
	// LongProbBase is the probability of the long branch for a serial
	// job; it grows with log2(size) up to LongProbMax.
	LongProbBase, LongProbMax float64
	// RepeatProb is the probability that a job is a repeat of the
	// previous distinct job (geometric repetition).
	RepeatProb float64
}

// DefaultParams returns the standard parameterization.
func DefaultParams() Params {
	return Params{
		Pow2Prob:        0.8,
		FullMachineProb: 0.02,
		HarmonicS:       1.3,
		MeanShort:       600,   // 10 minutes
		MeanLong:        12600, // 3.5 hours
		LongProbBase:    0.25,
		LongProbMax:     0.75,
		RepeatProb:      0.35,
	}
}

// New returns the Feitelson '96 model with the given parameters.
func New(p Params) model.Model {
	st := &state{p: p}
	return &model.Generator{
		ModelName: "feitelson96",
		SampleJob: st.sample,
	}
}

// Default returns the model with DefaultParams.
func Default() model.Model { return New(DefaultParams()) }

// state carries the repetition memory between SampleJob calls.
type state struct {
	p        Params
	zipf     *stats.Zipf // lazily built for the current machine size
	zipfFor  int
	lastSize int
	lastRT   int64
	repeats  int
}

func (s *state) sample(rng *stats.RNG, cfg model.Config) (int, int64) {
	// Repetition: emit the previous job again with geometric
	// probability, modeling users re-running the same program.
	if s.repeats > 0 {
		s.repeats--
		return s.lastSize, s.lastRT
	}

	size := s.sampleSize(rng, cfg.MaxNodes)
	rt := s.sampleRuntime(rng, size)

	s.lastSize, s.lastRT = size, rt
	if rng.Bool(s.p.RepeatProb) {
		// Geometric number of additional runs (at least 1 more).
		n := 1
		for rng.Bool(s.p.RepeatProb) && n < 50 {
			n++
		}
		s.repeats = n
	}
	return size, rt
}

func (s *state) sampleSize(rng *stats.RNG, maxNodes int) int {
	if rng.Bool(s.p.FullMachineProb) {
		return maxNodes
	}
	if s.zipf == nil || s.zipfFor != maxNodes {
		s.zipf = stats.NewZipf(maxNodes, s.p.HarmonicS)
		s.zipfFor = maxNodes
	}
	size := int(s.zipf.Sample(rng))
	if rng.Bool(s.p.Pow2Prob) {
		size = model.RoundPow2(size)
	}
	if size > maxNodes {
		size = maxNodes
	}
	return size
}

func (s *state) sampleRuntime(rng *stats.RNG, size int) int64 {
	// The long branch becomes more likely as size grows: this yields
	// the positive size/runtime correlation of the published model.
	pLong := s.p.LongProbBase + (s.p.LongProbMax-s.p.LongProbBase)*
		math.Log2(float64(size)+1)/10
	if pLong > s.p.LongProbMax {
		pLong = s.p.LongProbMax
	}
	var mean float64
	if rng.Bool(pLong) {
		mean = s.p.MeanLong
	} else {
		mean = s.p.MeanShort
	}
	rt := stats.Exponential{Lambda: 1 / mean}.Sample(rng)
	if rt < 1 {
		rt = 1
	}
	return int64(rt)
}
