package predict

import (
	"testing"

	"parsched/internal/core"
	"parsched/internal/model"
	"parsched/internal/model/lublin"
	"parsched/internal/sched"
	"parsched/internal/sim"
)

func j(size int, est int64) *core.Job {
	return &core.Job{ID: 1, Size: size, Runtime: est, Estimate: est, User: 1}
}

func TestZero(t *testing.T) {
	var p Zero
	if p.Predict(j(4, 100), 0) != 0 {
		t.Fatal("zero predictor must predict 0")
	}
	p.Observe(j(4, 100), 500) // no-op, no panic
}

func TestRecentWindow(t *testing.T) {
	p := NewRecent(3)
	if p.Predict(j(1, 10), 0) != 0 {
		t.Fatal("cold start should predict 0")
	}
	p.Observe(j(1, 10), 100)
	p.Observe(j(1, 10), 200)
	if got := p.Predict(j(1, 10), 0); got != 150 {
		t.Fatalf("predict = %d, want 150", got)
	}
	p.Observe(j(1, 10), 300)
	p.Observe(j(1, 10), 400) // pushes 100 out
	if got := p.Predict(j(1, 10), 0); got != 300 {
		t.Fatalf("predict = %d, want 300", got)
	}
}

func TestEWMA(t *testing.T) {
	p := NewEWMA(0.5)
	p.Observe(nil, 100)
	if p.Predict(nil, 0) != 100 {
		t.Fatal("first observation should seed the average")
	}
	p.Observe(nil, 200)
	if p.Predict(nil, 0) != 150 {
		t.Fatalf("predict = %d, want 150", p.Predict(nil, 0))
	}
}

func TestEWMABadAlphaDefaults(t *testing.T) {
	if NewEWMA(-1).Alpha != 0.2 || NewEWMA(2).Alpha != 0.2 {
		t.Fatal("invalid alpha should default")
	}
}

func TestCategorySeparatesClasses(t *testing.T) {
	p := NewCategory()
	small, big := j(1, 60), j(64, 36000)
	p.Observe(small, 10)
	p.Observe(big, 10000)
	if got := p.Predict(small, 0); got != 10 {
		t.Fatalf("small predict = %d", got)
	}
	if got := p.Predict(big, 0); got != 10000 {
		t.Fatalf("big predict = %d", got)
	}
	// Unknown category falls back on global mean.
	mid := j(8, 600)
	if got := p.Predict(mid, 0); got != (10+10000)/2 {
		t.Fatalf("fallback predict = %d", got)
	}
}

func TestEvaluatorErrorAccounting(t *testing.T) {
	ev := NewEvaluator(NewRecent(10))
	ev.Feed(j(1, 10), 0, 100) // predicted 0, truth 100: |err| 100
	ev.Feed(j(1, 10), 1, 100) // predicted 100, truth 100: err 0
	if ev.N() != 2 {
		t.Fatalf("n = %d", ev.N())
	}
	if ev.MAE() != 50 {
		t.Fatalf("MAE = %v", ev.MAE())
	}
	if ev.RMSE() <= ev.MAE() {
		t.Fatalf("RMSE %v should exceed MAE %v here", ev.RMSE(), ev.MAE())
	}
	if ev.NormalizedMAE() != 0.5 {
		t.Fatalf("NMAE = %v", ev.NormalizedMAE())
	}
}

// TestPredictorsOnRealTrace runs a simulation and checks the learned
// predictors beat the zero baseline on a loaded machine.
func TestPredictorsOnRealTrace(t *testing.T) {
	w := lublin.Default().Generate(model.Config{
		MaxNodes: 64, Jobs: 1200, Seed: 21, Load: 0.95, EstimateFactor: 1,
	})
	res, err := sim.Run(w, sched.NewEASY(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}

	evalFor := func(p Predictor) *Evaluator {
		ev := NewEvaluator(p)
		jobsByID := map[int64]*core.Job{}
		for _, jb := range w.Jobs {
			jobsByID[jb.ID] = jb
		}
		for _, o := range res.Outcomes {
			if o.Start < 0 {
				continue
			}
			ev.Feed(jobsByID[o.JobID], o.Submit, o.Wait())
		}
		return ev
	}

	zero := evalFor(Zero{})
	recent := evalFor(NewRecent(25))
	cat := evalFor(NewCategory())
	if zero.N() < 1000 {
		t.Fatalf("too few observations: %d", zero.N())
	}
	if zero.MAE() == 0 {
		t.Skip("workload produced no waiting; cannot compare predictors")
	}
	if recent.MAE() >= zero.MAE() {
		t.Errorf("recent-window MAE %v should beat zero %v", recent.MAE(), zero.MAE())
	}
	if cat.MAE() >= zero.MAE() {
		t.Errorf("category MAE %v should beat zero %v", cat.MAE(), zero.MAE())
	}
}

func TestPredictorNames(t *testing.T) {
	for _, p := range []Predictor{Zero{}, NewRecent(5), NewEWMA(0.3), NewCategory()} {
		if p.Name() == "" {
			t.Fatal("empty predictor name")
		}
	}
}
