// Package predict implements queue-wait-time predictors, the
// information source Section 3.1 of the paper says meta-schedulers
// need: "work on supercomputer queue time prediction [15,57,31] could
// be used to provide this information. However, the results obtained
// for queue time predictions are still relatively inaccurate."
//
// Three estimator families are provided, in increasing sophistication:
// a recent-window mean, exponential smoothing, and the
// category-template approach of Gibbons / Smith-Taylor-Foster (group
// history by similar jobs, predict from the category's statistics).
// An evaluator measures prediction error against simulation outcomes,
// which is exactly experiment E7.
package predict

import (
	"fmt"
	"math"

	"parsched/internal/core"
)

// Predictor estimates how long a job will wait in a machine's queue.
// Observe feeds back truth as jobs start; predictors are online
// learners, mirroring how the cited systems retrain on history.
type Predictor interface {
	Name() string
	// Predict returns the predicted wait in seconds for job j arriving
	// now. Cold-start predictors return their prior (usually 0).
	Predict(j *core.Job, now int64) int64
	// Observe records an actual outcome: job j waited wait seconds.
	Observe(j *core.Job, wait int64)
}

// Zero always predicts zero wait — the "no information" baseline a
// meta-scheduler without prediction effectively uses.
type Zero struct{}

// Name implements Predictor.
func (Zero) Name() string { return "zero" }

// Predict implements Predictor.
func (Zero) Predict(*core.Job, int64) int64 { return 0 }

// Observe implements Predictor.
func (Zero) Observe(*core.Job, int64) {}

// Recent predicts the mean of the last N observed waits, regardless of
// job attributes.
type Recent struct {
	N      int
	window []int64
}

// NewRecent returns a sliding-window predictor over n observations.
func NewRecent(n int) *Recent {
	if n < 1 {
		n = 1
	}
	return &Recent{N: n}
}

// Name implements Predictor.
func (r *Recent) Name() string { return fmt.Sprintf("recent%d", r.N) }

// Predict implements Predictor.
func (r *Recent) Predict(*core.Job, int64) int64 {
	if len(r.window) == 0 {
		return 0
	}
	var sum int64
	for _, w := range r.window {
		sum += w
	}
	return sum / int64(len(r.window))
}

// Observe implements Predictor.
func (r *Recent) Observe(_ *core.Job, wait int64) {
	r.window = append(r.window, wait)
	if len(r.window) > r.N {
		r.window = r.window[1:]
	}
}

// EWMA predicts an exponentially weighted moving average of waits.
type EWMA struct {
	Alpha float64
	value float64
	warm  bool
}

// NewEWMA returns an exponential-smoothing predictor (alpha in (0,1]).
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	return &EWMA{Alpha: alpha}
}

// Name implements Predictor.
func (e *EWMA) Name() string { return fmt.Sprintf("ewma%.2g", e.Alpha) }

// Predict implements Predictor.
func (e *EWMA) Predict(*core.Job, int64) int64 {
	return int64(e.value)
}

// Observe implements Predictor.
func (e *EWMA) Observe(_ *core.Job, wait int64) {
	if !e.warm {
		e.value = float64(wait)
		e.warm = true
		return
	}
	e.value = e.Alpha*float64(wait) + (1-e.Alpha)*e.value
}

// Category groups jobs into templates by size class and estimate class
// and keeps running mean waits per template — the historical-profiler
// approach of Gibbons [31] and Smith et al. [57]. Jobs fall back on a
// global mean until their category has data.
type Category struct {
	cats   map[string]*catStat
	global catStat
}

type catStat struct {
	n   int64
	sum int64
}

func (c *catStat) mean() int64 {
	if c.n == 0 {
		return 0
	}
	return c.sum / c.n
}

// NewCategory returns the category-template predictor.
func NewCategory() *Category {
	return &Category{cats: map[string]*catStat{}}
}

// Name implements Predictor.
func (c *Category) Name() string { return "category" }

// key buckets a job: size in powers of two, estimate in decades.
func (c *Category) key(j *core.Job) string {
	sizeBucket := 0
	for s := j.Size; s > 1; s /= 2 {
		sizeBucket++
	}
	est := j.EstimateOrRuntime()
	estBucket := 0
	for e := est; e >= 10; e /= 10 {
		estBucket++
	}
	return fmt.Sprintf("s%d-e%d", sizeBucket, estBucket)
}

// Predict implements Predictor.
func (c *Category) Predict(j *core.Job, _ int64) int64 {
	if st, ok := c.cats[c.key(j)]; ok && st.n > 0 {
		return st.mean()
	}
	return c.global.mean()
}

// Observe implements Predictor.
func (c *Category) Observe(j *core.Job, wait int64) {
	k := c.key(j)
	st, ok := c.cats[k]
	if !ok {
		st = &catStat{}
		c.cats[k] = st
	}
	st.n++
	st.sum += wait
	c.global.n++
	c.global.sum += wait
}

// Evaluator accumulates prediction error as (prediction, truth) pairs
// stream in chronologically.
type Evaluator struct {
	Predictor Predictor
	n         int64
	absErr    float64
	sqErr     float64
	meanTruth float64
}

// NewEvaluator wraps a predictor.
func NewEvaluator(p Predictor) *Evaluator { return &Evaluator{Predictor: p} }

// Feed predicts for the job, then reveals the truth and lets the
// predictor learn. It returns the prediction made.
func (ev *Evaluator) Feed(j *core.Job, now int64, actualWait int64) int64 {
	pred := ev.Predictor.Predict(j, now)
	ev.n++
	d := float64(pred - actualWait)
	ev.absErr += math.Abs(d)
	ev.sqErr += d * d
	ev.meanTruth += float64(actualWait)
	ev.Predictor.Observe(j, actualWait)
	return pred
}

// N returns how many pairs were fed.
func (ev *Evaluator) N() int64 { return ev.n }

// MAE is the mean absolute error in seconds.
func (ev *Evaluator) MAE() float64 {
	if ev.n == 0 {
		return 0
	}
	return ev.absErr / float64(ev.n)
}

// RMSE is the root mean squared error in seconds.
func (ev *Evaluator) RMSE() float64 {
	if ev.n == 0 {
		return 0
	}
	return math.Sqrt(ev.sqErr / float64(ev.n))
}

// NormalizedMAE is MAE divided by the mean actual wait — the relative
// inaccuracy figure the paper's Section 3.1 complains about.
func (ev *Evaluator) NormalizedMAE() float64 {
	if ev.n == 0 || ev.meanTruth == 0 {
		return 0
	}
	return ev.absErr / ev.meanTruth
}
