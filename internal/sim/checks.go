package sim

import (
	"fmt"

	"parsched/internal/debugchecks"
)

// verifyRunOrder cross-validates the runOrder mirror against the
// running set: same membership, strictly sorted by runBefore
// ((ExpEnd, job ID) — the order Running() promises). It is called
// after every insertRunning/removeRunning when the debugchecks build
// tag is set; the O(n)-per-transition cost is why it is not on by
// default.
func (sm *Instance) verifyRunOrder() {
	if len(sm.runOrder) != len(sm.running) {
		panic(fmt.Sprintf("sim: runOrder has %d entries, running set has %d",
			len(sm.runOrder), len(sm.running)))
	}
	for i, rs := range sm.runOrder {
		if got := sm.running[rs.job.ID]; got != rs {
			panic(fmt.Sprintf("sim: runOrder entry %d (job %d) diverges from the running set",
				i, rs.job.ID))
		}
		if i > 0 && !runBefore(sm.runOrder[i-1], rs) {
			panic(fmt.Sprintf(
				"sim: runOrder not sorted at %d: job %d (expEnd %d) before job %d (expEnd %d)",
				i, sm.runOrder[i-1].job.ID, sm.runOrder[i-1].expEnd, rs.job.ID, rs.expEnd))
		}
	}
}

// assertRunOrder is the shared guard: a no-op unless the debugchecks
// build tag is set (Enabled is a constant, so the call compiles away).
func (sm *Instance) assertRunOrder() {
	if debugchecks.Enabled {
		sm.verifyRunOrder()
	}
}
