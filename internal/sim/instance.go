package sim

import (
	"fmt"
	"math"
	"sort"

	"parsched/internal/cluster"
	"parsched/internal/core"
	"parsched/internal/des"
	"parsched/internal/metrics"
	"parsched/internal/sched"
)

// Instance is one machine + machine scheduler living on a shared event
// engine. The single-machine entry point Run wraps one Instance; the
// metacomputing layer (internal/meta) places several Instances on one
// engine and routes jobs between them — the Figure 1 architecture.
type Instance struct {
	// Name labels the machine (site name in grids).
	Name string

	engine   *des.Engine
	machine  *cluster.Machine
	schedule sched.Scheduler
	opts     Options

	running  map[int64]*runState
	outcomes map[int64]*metrics.Outcome
	// outcomeArena hands out Outcome structs in blocks, so a million-job
	// replay performs thousands of outcome allocations, not millions. At
	// most one partially-used block is in flight, so streaming replays
	// with pruning stay O(1): a block is reclaimed once its outcomes are.
	outcomeArena []metrics.Outcome
	// runOrder mirrors running, kept sorted by (ExpEnd, job ID): the
	// order Running() promises. It is maintained incrementally on every
	// start/finish/kill instead of being re-sorted per scheduler
	// callback. ExpEnd is fixed at start time (rate changes alter the
	// actual finish event, not the scheduler-visible estimate), so
	// membership changes are the only mutations.
	runOrder []*runState
	// runBuf, outBuf, resvBuf are reused return buffers for Running(),
	// Outages(), and Reservations(); each is valid only until the next
	// call — schedulers consume them within a single callback.
	runBuf  []sched.RunningJob
	outBuf  []sched.Window
	resvBuf []sched.Window
	// runBufEpoch marks the runEpoch runBuf was last rebuilt at: while
	// it matches, Running() returns the buffer as-is (its contents are a
	// pure function of runOrder). Both start at zero, which is consistent:
	// until the first insert bumps runEpoch, the running set is empty and
	// the nil buffer is exactly right.
	runBufEpoch uint64
	// rsPool recycles runState structs between jobs so a start costs no
	// allocation in steady state.
	rsPool []*runState
	// victimBuf is the reused victim accumulator for applyNodeEvents,
	// so an outage batch costs no allocation. Valid only within one
	// batch.
	victimBuf []int64
	// dependents maps predecessor ID -> dependent jobs awaiting it.
	dependents map[int64][]*core.Job

	outageWins []timedWindow
	resvWins   []timedWindow
	// outStartSorted/resvStartSorted record that the window lists are
	// ascending by Start (true for generated outage logs and reservation
	// calendars, which are built chronologically). While a list stays
	// sorted, visibleWindows can reslice its expired prefix and bound its
	// hidden suffix in O(visible) instead of rescanning the whole list.
	outStartSorted  bool
	resvStartSorted bool
	// outMemoUntil/resvMemoUntil memoize the visibleWindows scans:
	// outBuf/resvBuf are still exactly what a fresh scan would produce
	// while now stays below the mark (no window expires, crosses the
	// planning horizon, or reaches its announcement before then).
	// Zeroed whenever a window is added.
	outMemoUntil  int64
	resvMemoUntil int64
	// winEpoch stamps the visible window sets: it advances exactly when
	// outBuf/resvBuf contents (can) change — on every window addition
	// and every memo-expiry rescan. Profile builders compare stamps
	// instead of window lists.
	winEpoch uint64
	// runEpoch stamps the running set the same way: it advances on every
	// runOrder membership change (the only mutations — ExpEnd is fixed at
	// start) and on every node up/down batch, so equal stamps mean
	// Running() would repeat itself AND the machine's node-level state is
	// unchanged. The topology bump is deliberate over-invalidation: a
	// balanced down/up batch can leave the free count and running set
	// intact while still changing which nodes (and how much per-node
	// memory) CanStart sees, so any decision memo keyed on the stamp must
	// be discarded. The contract is one-directional — equal stamps
	// guarantee nothing changed; unequal stamps promise nothing.
	runEpoch uint64
	// submitEpoch counts OnSubmit dispatches (fresh submittals and
	// kill-requeues alike) — the sched.QueueEpoch stamp that lets a
	// scheduler's reservation ledger prove its walked queue is a strict
	// prefix of the current one without comparing elements.
	submitEpoch uint64

	resvResults []ReservationOutcome
	nextResvID  int64

	// pruneFinal deletes a job's outcome entry the moment its final
	// outcome is emitted (completion or permanent drop). RunStream sets
	// it under DiscardOutcomes: observers have already seen the outcome,
	// nothing reads it later, and keeping it would make the outcome map
	// grow with the trace — the one O(jobs) structure left in a
	// streaming replay. The map then holds only in-flight jobs.
	pruneFinal bool

	// FinishHook, when set, observes every final job termination
	// (completion or permanent drop). Used by meta-schedulers.
	FinishHook func(j *core.Job, o metrics.Outcome)
	// StartHook observes every job start (final or not). Used by
	// wait-time predictors, which learn from observed waits.
	StartHook func(j *core.Job, submit, start int64)
}

type timedWindow struct {
	win       sched.Window
	announced int64
}

// NewInstance creates a machine of maxNodes nodes (heterogeneous if
// opts.NodeMem is set) scheduled by s, attached to engine.
func NewInstance(engine *des.Engine, name string, maxNodes int, s sched.Scheduler, opts Options) (*Instance, error) {
	var machine *cluster.Machine
	if opts.NodeMem != nil {
		if len(opts.NodeMem) != maxNodes {
			return nil, fmt.Errorf("sim: NodeMem has %d entries for %d nodes", len(opts.NodeMem), maxNodes) //schedlint:allow allocfree setup error path: once per instance, before any event fires
		}
		machine = cluster.NewHeterogeneous(opts.NodeMem)
	} else {
		machine = cluster.New(maxNodes, 1<<50)
	}
	return &Instance{
		Name:       name,
		engine:     engine,
		machine:    machine,
		schedule:   s,
		opts:       opts,
		running:    map[int64]*runState{},        //schedlint:allow allocfree setup: instance maps built once per run
		outcomes:   map[int64]*metrics.Outcome{}, //schedlint:allow allocfree setup: instance maps built once per run
		dependents: map[int64][]*core.Job{},      //schedlint:allow allocfree setup: instance maps built once per run

		// Empty window lists are trivially Start-sorted; appends clear
		// the flags on the first out-of-order window.
		outStartSorted:  true,
		resvStartSorted: true,
	}, nil
}

// Scheduler returns the attached scheduler.
func (sm *Instance) Scheduler() sched.Scheduler { return sm.schedule }

// Machine exposes the cluster (read-mostly; used by tests and meta).
func (sm *Instance) Machine() *cluster.Machine { return sm.machine }

// SubmitAt schedules job j to arrive at time t.
//
//schedlint:hotpath entry point: arrival injection for materialized replays
func (sm *Instance) SubmitAt(j *core.Job, t int64) {
	sm.engine.At(t, des.PriorityArrival, func() { sm.submit(j, t) })
}

// SubmitNow delivers job j immediately (valid during event callbacks;
// used by meta-schedulers dispatching at decision time).
func (sm *Instance) SubmitNow(j *core.Job) {
	sm.submit(j, sm.engine.Now())
}

// AwaitPredecessor registers j to be submitted ThinkTime seconds after
// its predecessor (by workload job ID) terminates on this instance.
func (sm *Instance) AwaitPredecessor(j *core.Job) {
	sm.dependents[j.PrecedingJob] = append(sm.dependents[j.PrecedingJob], j)
}

// QueueLen reports the scheduler's backlog if it exposes one.
func (sm *Instance) QueueLen() int {
	if qr, ok := sm.schedule.(sched.QueueReporter); ok {
		return len(qr.Queued())
	}
	return 0
}

// QueuedWork reports the processor-seconds of estimated work waiting in
// the queue — the load signal simple meta-schedulers use.
func (sm *Instance) QueuedWork() int64 {
	var total int64
	if qr, ok := sm.schedule.(sched.QueueReporter); ok {
		for _, j := range qr.Queued() {
			total += int64(j.Size) * sm.Estimate(j)
		}
	}
	for _, rs := range sm.running {
		rem := rs.expEnd - sm.engine.Now()
		if rem > 0 {
			total += int64(rs.size) * rem
		}
	}
	return total
}

// Outcome returns the outcome recorded for job id, if any.
func (sm *Instance) Outcome(id int64) (metrics.Outcome, bool) {
	o, ok := sm.outcomes[id]
	if !ok {
		return metrics.Outcome{}, false
	}
	return *o, true
}

// Outcomes returns copies of all outcomes recorded so far, in job-ID
// order for determinism.
func (sm *Instance) Outcomes() []metrics.Outcome {
	ids := make([]int64, 0, len(sm.outcomes))
	for id := range sm.outcomes {
		ids = append(ids, id)
	}
	sortIDs(ids)
	out := make([]metrics.Outcome, 0, len(ids))
	for _, id := range ids {
		out = append(out, *sm.outcomes[id])
	}
	return out
}

// RunningStart returns the start time of a currently running job
// (second return false if not running).
func (sm *Instance) RunningStart(id int64) (int64, bool) {
	rs, ok := sm.running[id]
	if !ok {
		return 0, false
	}
	return rs.start, true
}

// ReservationOutcomes returns the reservation grant results so far.
func (sm *Instance) ReservationOutcomes() []ReservationOutcome {
	return append([]ReservationOutcome(nil), sm.resvResults...)
}

// AnnounceOutage makes an outage window visible to the scheduler from
// the current instant (the sim.Run wrapper schedules these from the
// outage log).
func (sm *Instance) announceOutage(win sched.Window, announced int64) {
	if n := len(sm.outageWins); n > 0 && win.Start < sm.outageWins[n-1].win.Start {
		sm.outStartSorted = false
	}
	sm.outageWins = append(sm.outageWins, timedWindow{win: win, announced: announced})
	sm.outMemoUntil = 0
	sm.winEpoch++
	sm.notifyChange()
}

// CanReserve reports whether an advance reservation request is feasible
// against the current availability profile (running jobs' estimated
// completions plus already-accepted windows). Meta-schedulers call this
// before Reserve.
func (sm *Instance) CanReserve(r sched.Reservation) bool {
	if r.Procs > sm.machine.Total() {
		return false
	}
	p := sched.BuildProfile(sm)
	start := p.EarliestFit(r.Start, r.End-r.Start, r.Procs)
	return start == r.Start
}

// Reserve accepts an advance reservation: it becomes visible to the
// scheduler immediately, claims its processors at Start (recording
// whether the claim succeeded), and releases them at End. The returned
// ID identifies the reservation in outcomes.
func (sm *Instance) Reserve(r sched.Reservation) int64 {
	if r.ID == 0 {
		sm.nextResvID++
		r.ID = sm.nextResvID
	}
	now := sm.engine.Now()
	if n := len(sm.resvWins); n > 0 && r.Start < sm.resvWins[n-1].win.Start {
		sm.resvStartSorted = false
	}
	sm.resvWins = append(sm.resvWins, timedWindow{
		win:       sched.Window{Start: r.Start, End: r.End, Procs: r.Procs},
		announced: now,
	})
	sm.resvMemoUntil = 0
	sm.winEpoch++
	sm.engine.At(r.Start, des.PriorityOutage, func() { sm.claimReservation(r) })
	sm.notifyChange()
	return r.ID
}

// ---------------------------------------------------------------------
// internals (shared with sim.Run)

// submit delivers a job to the scheduler, recording its effective
// submittal time (feedback shifts it relative to the workload file).
func (sm *Instance) submit(j *core.Job, effective int64) {
	if len(sm.outcomeArena) == 0 {
		sm.outcomeArena = make([]metrics.Outcome, 256) //schedlint:allow allocfree arena refill: one allocation per 256 submits
	}
	o := &sm.outcomeArena[0]
	sm.outcomeArena = sm.outcomeArena[1:]
	*o = metrics.Outcome{
		JobID: j.ID, User: j.User, Submit: effective,
		Start: -1, End: -1, Size: j.Size, Runtime: j.Runtime,
	}
	sm.outcomes[j.ID] = o
	sm.submitEpoch++
	sm.callback(func() { sm.schedule.OnSubmit(sm, j) })
}

// callback wraps scheduler invocations (a single funnel point so that
// tracing or invariant checks can be attached in one place).
func (sm *Instance) callback(f func()) { f() }

// emit streams one outcome to the registered observers. finishJob and
// the permanent-drop path call it at event time; collect flushes the
// residual (never-terminated) outcomes at the end of the run.
func (sm *Instance) emit(o metrics.Outcome) {
	for _, ob := range sm.opts.Observers {
		ob.Observe(o)
	}
}

// recordSample snapshots the machine for the time-series observers.
func (sm *Instance) recordSample(obs []SampleObserver) {
	util := 0.0
	if up := sm.machine.Up(); up > 0 {
		util = float64(sm.machine.InUse()) / float64(up)
	}
	s := metrics.Sample{
		Time:        sm.engine.Now(),
		Utilization: util,
		Queued:      sm.QueueLen(),
		Running:     len(sm.running),
		Backlog:     sm.QueuedWork(),
	}
	for _, ob := range obs {
		ob.ObserveSample(s)
	}
}

func (sm *Instance) notifyChange() {
	sm.callback(func() { sm.schedule.OnChange(sm) })
}

// applyNodeEvents processes a batch of same-instant node transitions,
// killing victims after all transitions are applied and notifying the
// scheduler once.
func (sm *Instance) applyNodeEvents(downs, ups []int) {
	// Batches are a handful of nodes, so deduplicating victims by linear
	// scan beats a map (and reusing the buffer keeps the outage path
	// allocation-free).
	ids := sm.victimBuf[:0]
	for _, n := range downs {
		victim := sm.machine.SetDown(n)
		if victim != cluster.NoOwner && victim < reservationOwner && !containsID(ids, victim) {
			ids = append(ids, victim)
		}
	}
	for _, n := range ups {
		sm.machine.SetUp(n)
	}
	sortIDs(ids)
	for _, id := range ids {
		sm.killJob(id)
	}
	sm.victimBuf = ids[:0]
	// Node transitions change which nodes are up even when the free
	// count and running set come out unchanged (a balanced down/up batch
	// with no victims), and per-node state is exactly what CanStart
	// consults under memory-aware placement. Advance the running-set
	// stamp so profile snapshots and decision memos keyed on it rebuild;
	// batches are rare, so the forced O(running) refresh is noise.
	sm.runEpoch++
	sm.notifyChange()
}

func containsID(ids []int64, id int64) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

func sortIDs(ids []int64) {
	for i := 1; i < len(ids); i++ {
		for k := i; k > 0 && ids[k-1] > ids[k]; k-- {
			ids[k-1], ids[k] = ids[k], ids[k-1]
		}
	}
}

// killJob handles a job whose node failed: release its allocation,
// cancel its completion, account the lost work, and resubmit it (the
// paper: "Any job running on that node would have to be restarted").
func (sm *Instance) killJob(id int64) {
	rs, ok := sm.running[id]
	if !ok {
		return
	}
	now := sm.engine.Now()
	sm.machine.ReleaseQuiet(id)
	sm.engine.Cancel(rs.finish)
	delete(sm.running, id)
	sm.removeRunning(rs)

	o := sm.outcomes[id]
	o.Restarts++
	o.LostWork += int64(rs.size) * (now - rs.start)

	job := rs.job
	sm.recycleRunState(rs)
	if sm.opts.DropKilled || o.Restarts > MaxRestarts {
		o.Dropped = true
		o.Start, o.End = -1, -1
		sm.releaseDependents(job)
		sm.emit(*o)
		if sm.FinishHook != nil {
			sm.FinishHook(job, *o)
		}
		if sm.pruneFinal {
			delete(sm.outcomes, id)
		}
		sm.callback(func() { sm.schedule.OnFinish(sm, job) })
		return
	}
	// Restart from scratch: hand the job back to the scheduler.
	sm.submitEpoch++
	sm.callback(func() { sm.schedule.OnSubmit(sm, job) })
}

// claimReservation allocates the reserved processors at start time.
func (sm *Instance) claimReservation(r sched.Reservation) {
	owner := reservationOwner + r.ID
	ok := sm.machine.Claim(owner, r.Procs, 0)
	sm.resvResults = append(sm.resvResults, ReservationOutcome{Reservation: r, Granted: ok})
	if ok {
		sm.engine.At(r.End, des.PriorityOutage, func() {
			sm.machine.ReleaseQuiet(owner)
			sm.notifyChange()
		})
	}
	sm.notifyChange()
}

// ---------------------------------------------------------------------
// sched.Context implementation

// Now implements sched.Context.
func (sm *Instance) Now() int64 { return sm.engine.Now() }

// TotalProcs implements sched.Context.
func (sm *Instance) TotalProcs() int { return sm.machine.Up() }

// FreeProcs implements sched.Context.
func (sm *Instance) FreeProcs() int { return sm.machine.Free() }

// CanStart implements sched.Context.
func (sm *Instance) CanStart(j *core.Job, size int) bool {
	if size < 1 {
		return false
	}
	return sm.machine.CanAllocate(size, sm.memNeed(j))
}

func (sm *Instance) memNeed(j *core.Job) int64 {
	if !sm.opts.MemAware || j.ReqMemPerProc <= 0 {
		return 0
	}
	return j.ReqMemPerProc
}

// Start implements sched.Context.
func (sm *Instance) Start(j *core.Job, size int) {
	if _, dup := sm.running[j.ID]; dup {
		panic(fmt.Sprintf("sim: job %d started twice", j.ID)) //schedlint:allow allocfree panic path: scheduler contract violation, unreachable in a correct simulation
	}
	if !sm.machine.Claim(j.ID, size, sm.memNeed(j)) {
		panic(fmt.Sprintf("sim: scheduler started job %d (size %d) without capacity", j.ID, size)) //schedlint:allow allocfree panic path: scheduler contract violation, unreachable in a correct simulation
	}
	now := sm.engine.Now()
	actual := j.RuntimeOn(size)
	rs := sm.allocRunState()
	fire := rs.fire
	*rs = runState{
		job: j, size: size, start: now,
		expEnd:     now + sm.Estimate(j),
		remaining:  float64(actual),
		rate:       1,
		lastUpdate: now,
		fire:       fire,
	}
	rs.finish = sm.engine.At(now+actual, des.PriorityFinish, sm.fireFor(rs))
	sm.running[j.ID] = rs
	sm.insertRunning(rs)
	if sm.StartHook != nil {
		sm.StartHook(j, sm.outcomes[j.ID].Submit, now)
	}
}

// StartShared implements sched.Context.
func (sm *Instance) StartShared(j *core.Job, rate float64) {
	if _, dup := sm.running[j.ID]; dup {
		panic(fmt.Sprintf("sim: job %d started twice", j.ID)) //schedlint:allow allocfree panic path: scheduler contract violation, unreachable in a correct simulation
	}
	now := sm.engine.Now()
	rs := sm.allocRunState()
	fire := rs.fire
	*rs = runState{
		job: j, size: j.Size, start: now,
		expEnd:     now + sm.Estimate(j),
		shared:     true,
		remaining:  float64(j.Runtime),
		rate:       0,
		lastUpdate: now,
		fire:       fire,
	}
	sm.running[j.ID] = rs
	sm.insertRunning(rs)
	if sm.StartHook != nil {
		sm.StartHook(j, sm.outcomes[j.ID].Submit, now)
	}
	if rate > 0 {
		sm.setRate(rs, rate)
	}
}

// SetRate implements sched.Context.
func (sm *Instance) SetRate(j *core.Job, rate float64) {
	rs, ok := sm.running[j.ID]
	if !ok || !rs.shared {
		panic(fmt.Sprintf("sim: SetRate on non-shared or unknown job %d", j.ID)) //schedlint:allow allocfree panic message; the formatting only runs on the way down
	}
	sm.setRate(rs, rate)
}

func (sm *Instance) setRate(rs *runState, rate float64) {
	now := sm.engine.Now()
	// Account progress at the old rate.
	rs.remaining -= float64(now-rs.lastUpdate) * rs.rate
	if rs.remaining < 0 {
		rs.remaining = 0
	}
	rs.lastUpdate = now
	rs.rate = rate
	sm.engine.Cancel(rs.finish)
	if rate <= 0 {
		return
	}
	dur := int64(math.Ceil(rs.remaining / rate))
	if dur < 0 {
		dur = 0
	}
	rs.finish = sm.engine.At(now+dur, des.PriorityFinish, sm.fireFor(rs))
}

// fireFor returns rs's cached finish callback, creating it on first
// use. The closure captures the runState, not a job ID: by the time it
// fires, rs still describes the job whose finish was scheduled (a
// terminated job's event is always either fired or cancelled before
// the runState returns to the pool).
func (sm *Instance) fireFor(rs *runState) func() {
	if rs.fire == nil {
		rs.fire = func() { sm.finishJob(rs.job.ID) }
	}
	return rs.fire
}

// RunningEpoch implements sched.RunEpoch.
func (sm *Instance) RunningEpoch() uint64 { return sm.runEpoch }

// SubmitEpoch implements sched.QueueEpoch.
func (sm *Instance) SubmitEpoch() uint64 { return sm.submitEpoch }

// Running implements sched.Context. The returned slice is a reused
// buffer, valid only until the next Running() call on this instance.
func (sm *Instance) Running() []sched.RunningJob {
	if sm.runBufEpoch == sm.runEpoch {
		return sm.runBuf
	}
	sm.runBuf = sm.runBuf[:0]
	for _, rs := range sm.runOrder {
		sm.runBuf = append(sm.runBuf, sched.RunningJob{Job: rs.job, Size: rs.size, Start: rs.start, ExpEnd: rs.expEnd})
	}
	sm.runBufEpoch = sm.runEpoch
	return sm.runBuf
}

// allocRunState takes a runState from the pool, or allocates one. The
// caller overwrites every field.
func (sm *Instance) allocRunState() *runState {
	if n := len(sm.rsPool); n > 0 {
		rs := sm.rsPool[n-1]
		sm.rsPool[n-1] = nil
		sm.rsPool = sm.rsPool[:n-1]
		return rs
	}
	return &runState{}
}

// recycleRunState returns a terminated job's state to the pool. Only
// call once every read of rs (including scheduler callbacks that might
// observe it) has completed. The cached finish closure survives the
// reset — it is bound to the struct, not the departing job.
func (sm *Instance) recycleRunState(rs *runState) {
	fire := rs.fire
	*rs = runState{}
	rs.fire = fire
	sm.rsPool = append(sm.rsPool, rs)
}

// runBefore is the (ExpEnd, job ID) order of runOrder — the contract
// Running() documents.
func runBefore(a, b *runState) bool {
	if a.expEnd != b.expEnd {
		return a.expEnd < b.expEnd
	}
	return a.job.ID < b.job.ID
}

// insertRunning places rs into runOrder at its sorted position.
func (sm *Instance) insertRunning(rs *runState) {
	i := sort.Search(len(sm.runOrder), func(k int) bool { return runBefore(rs, sm.runOrder[k]) })
	sm.runOrder = append(sm.runOrder, nil)
	copy(sm.runOrder[i+1:], sm.runOrder[i:])
	sm.runOrder[i] = rs
	sm.runEpoch++
	sm.assertRunOrder()
}

// removeRunning deletes rs from runOrder. rs must be present; its sort
// key is immutable after insertion, so binary search finds it exactly.
func (sm *Instance) removeRunning(rs *runState) {
	i := sort.Search(len(sm.runOrder), func(k int) bool { return !runBefore(sm.runOrder[k], rs) })
	if i >= len(sm.runOrder) || sm.runOrder[i] != rs {
		panic(fmt.Sprintf("sim: job %d missing from running order", rs.job.ID)) //schedlint:allow allocfree panic path: double-start guard, unreachable in a correct simulation
	}
	copy(sm.runOrder[i:], sm.runOrder[i+1:])
	sm.runOrder[len(sm.runOrder)-1] = nil
	sm.runOrder = sm.runOrder[:len(sm.runOrder)-1]
	sm.runEpoch++
	sm.assertRunOrder()
}

// Estimate implements sched.Context.
func (sm *Instance) Estimate(j *core.Job) int64 {
	if sm.opts.PerfectEstimates {
		return j.Runtime
	}
	return j.EstimateOrRuntime()
}

// Outages implements sched.Context. The returned slice is a reused
// buffer, valid only until the next Outages() call on this instance.
func (sm *Instance) Outages() []sched.Window {
	now := sm.engine.Now()
	if now >= sm.outMemoUntil {
		sm.outageWins, sm.outBuf, sm.outMemoUntil = visibleWindows(sm.outageWins, sm.outBuf[:0], now, sm.outStartSorted)
		sm.winEpoch++
	}
	return sm.outBuf
}

// Reservations implements sched.Context. The returned slice is a
// reused buffer, valid only until the next Reservations() call.
func (sm *Instance) Reservations() []sched.Window {
	now := sm.engine.Now()
	if now >= sm.resvMemoUntil {
		sm.resvWins, sm.resvBuf, sm.resvMemoUntil = visibleWindows(sm.resvWins, sm.resvBuf[:0], now, sm.resvStartSorted)
		sm.winEpoch++
	}
	return sm.resvBuf
}

// WindowsEpoch implements sched.WindowEpoch: it refreshes both window
// memos for the current instant and returns the stamp. Equal stamps
// across calls guarantee Outages() and Reservations() would return
// element-identical slices, letting profile builders reuse window work
// without re-reading the sets.
func (sm *Instance) WindowsEpoch() uint64 {
	now := sm.engine.Now()
	if now >= sm.outMemoUntil {
		sm.outageWins, sm.outBuf, sm.outMemoUntil = visibleWindows(sm.outageWins, sm.outBuf[:0], now, sm.outStartSorted)
		sm.winEpoch++
	}
	if now >= sm.resvMemoUntil {
		sm.resvWins, sm.resvBuf, sm.resvMemoUntil = visibleWindows(sm.resvWins, sm.resvBuf[:0], now, sm.resvStartSorted)
		sm.winEpoch++
	}
	return sm.winEpoch
}

// PlanningHorizon bounds how far ahead capacity windows are exposed to
// schedulers. Windows starting beyond it cannot affect any job that
// could start now (estimates are capped far below it), and pruning them
// keeps profile building linear in the relevant future rather than in
// the whole reservation calendar.
const PlanningHorizon = 14 * 86400

// visibleWindows appends the currently scheduler-visible windows to buf
// (announced, not yet ended, within the planning horizon) and returns
// the filtered source list: windows whose End has passed are compacted
// out permanently, since simulation time only moves forward. The
// relative order of surviving windows — and therefore of the visible
// output — is preserved.
//
// The third result is the memo bound: the earliest future instant the
// visible set can change on its own — a visible window expiring, or a
// hidden one reaching its announcement or the planning horizon. Until
// then (and absent new windows) buf stays exact and callers skip the
// rescan entirely.
func visibleWindows(wins []timedWindow, buf []sched.Window, now int64, startSorted bool) ([]timedWindow, []sched.Window, int64) {
	until := int64(1) << 62
	if startSorted {
		return visibleWindowsSorted(wins, buf, now)
	}
	kept := 0
	for _, tw := range wins {
		if tw.win.End <= now {
			continue // expired for good
		}
		wins[kept] = tw
		kept++
		if tw.announced <= now && tw.win.Start <= now+PlanningHorizon {
			buf = append(buf, tw.win)
			if tw.win.End < until {
				until = tw.win.End
			}
		} else {
			// Hidden for now; it surfaces at its announcement or when
			// the horizon reaches its start, whichever is later. (A
			// hidden window expiring changes nothing visible, so its
			// End does not bound the memo.)
			at := tw.win.Start - PlanningHorizon
			if tw.announced > at {
				at = tw.announced
			}
			if at < until {
				until = at
			}
		}
	}
	return wins[:kept], buf, until
}

// visibleWindowsSorted is the fast path for Start-sorted window lists —
// the overwhelmingly common case, since outage logs and reservation
// streams arrive in chronological order. Sortedness buys two things the
// generic scan cannot have: the beyond-horizon suffix is located with
// one binary search instead of being walked every refresh, and the memo
// bound for that whole suffix collapses to a single conservative term
// (first hidden Start − horizon, ≤ every later surfacing time and > now,
// so the memo stays valid — it only re-scans sooner than strictly
// needed). Visible windows appended to buf are exactly those the
// generic path would append, in the same order, so decisions are
// bit-identical.
//
//schedlint:hotpath every profile rebuild re-derives its visible window set here
func visibleWindowsSorted(wins []timedWindow, buf []sched.Window, now int64) ([]timedWindow, []sched.Window, int64) {
	until := int64(1) << 62
	lo := 0
	for lo < len(wins) && wins[lo].win.End <= now {
		lo++ // expired prefix: Start-sorted lists retire mostly from the front
	}
	wins = wins[lo:]
	hi := sort.Search(len(wins), func(i int) bool { return wins[i].win.Start > now+PlanningHorizon })
	if hi < len(wins) {
		// One bound covers the whole hidden suffix: the first hidden
		// window surfaces no earlier than Start-H, and every later one
		// no earlier than that (Starts ascend). Announcement times can
		// only push surfacing later, never earlier.
		if at := wins[hi].win.Start - PlanningHorizon; at < until {
			until = at
		}
	}
	kept := 0
	for i := 0; i < hi; i++ {
		tw := wins[i]
		if tw.win.End <= now {
			continue // expired for good
		}
		if kept != i {
			wins[kept] = tw
		}
		kept++
		if tw.announced <= now {
			buf = append(buf, tw.win)
			if tw.win.End < until {
				until = tw.win.End
			}
		} else if tw.announced < until {
			// In-horizon but not yet announced; surfaces at announcement.
			until = tw.announced
		}
	}
	n := len(wins)
	if kept < hi {
		copy(wins[kept:], wins[hi:])
	}
	return wins[:n-(hi-kept)], buf, until
}

// finishJob completes a running job.
func (sm *Instance) finishJob(id int64) {
	rs, ok := sm.running[id]
	if !ok {
		return
	}
	now := sm.engine.Now()
	if !rs.shared {
		sm.machine.ReleaseQuiet(id)
	}
	delete(sm.running, id)
	sm.removeRunning(rs)

	o := sm.outcomes[id]
	o.Start = rs.start
	o.End = now
	o.Size = rs.size
	o.Runtime = now - rs.start
	if rs.shared {
		// For time-shared jobs the dedicated-equivalent runtime is the
		// job's nominal work, not the stretched wall-clock.
		o.Runtime = rs.job.Runtime
	}
	job := rs.job
	sm.recycleRunState(rs)
	sm.releaseDependents(job)
	sm.emit(*o)
	if sm.FinishHook != nil {
		sm.FinishHook(job, *o)
	}
	if sm.pruneFinal {
		delete(sm.outcomes, id)
	}
	sm.callback(func() { sm.schedule.OnFinish(sm, job) })
}

// releaseDependents schedules the submittal of feedback jobs waiting on
// j's termination, ThinkTime seconds from now.
func (sm *Instance) releaseDependents(j *core.Job) {
	now := sm.engine.Now()
	for _, dep := range sm.dependents[j.ID] {
		dep := dep
		at := now + dep.ThinkTime
		sm.engine.At(at, des.PriorityArrival, func() { sm.submit(dep, at) })
	}
	delete(sm.dependents, j.ID)
}
