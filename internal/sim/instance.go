package sim

import (
	"fmt"
	"math"

	"parsched/internal/cluster"
	"parsched/internal/core"
	"parsched/internal/des"
	"parsched/internal/metrics"
	"parsched/internal/sched"
)

// Instance is one machine + machine scheduler living on a shared event
// engine. The single-machine entry point Run wraps one Instance; the
// metacomputing layer (internal/meta) places several Instances on one
// engine and routes jobs between them — the Figure 1 architecture.
type Instance struct {
	// Name labels the machine (site name in grids).
	Name string

	engine   *des.Engine
	machine  *cluster.Machine
	schedule sched.Scheduler
	opts     Options

	running  map[int64]*runState
	outcomes map[int64]*metrics.Outcome
	// dependents maps predecessor ID -> dependent jobs awaiting it.
	dependents map[int64][]*core.Job

	outageWins []timedWindow
	resvWins   []timedWindow

	resvResults []ReservationOutcome
	nextResvID  int64

	// FinishHook, when set, observes every final job termination
	// (completion or permanent drop). Used by meta-schedulers.
	FinishHook func(j *core.Job, o metrics.Outcome)
	// StartHook observes every job start (final or not). Used by
	// wait-time predictors, which learn from observed waits.
	StartHook func(j *core.Job, submit, start int64)
}

type timedWindow struct {
	win       sched.Window
	announced int64
}

// NewInstance creates a machine of maxNodes nodes (heterogeneous if
// opts.NodeMem is set) scheduled by s, attached to engine.
func NewInstance(engine *des.Engine, name string, maxNodes int, s sched.Scheduler, opts Options) (*Instance, error) {
	var machine *cluster.Machine
	if opts.NodeMem != nil {
		if len(opts.NodeMem) != maxNodes {
			return nil, fmt.Errorf("sim: NodeMem has %d entries for %d nodes", len(opts.NodeMem), maxNodes)
		}
		machine = cluster.NewHeterogeneous(opts.NodeMem)
	} else {
		machine = cluster.New(maxNodes, 1<<50)
	}
	return &Instance{
		Name:       name,
		engine:     engine,
		machine:    machine,
		schedule:   s,
		opts:       opts,
		running:    map[int64]*runState{},
		outcomes:   map[int64]*metrics.Outcome{},
		dependents: map[int64][]*core.Job{},
	}, nil
}

// Scheduler returns the attached scheduler.
func (sm *Instance) Scheduler() sched.Scheduler { return sm.schedule }

// Machine exposes the cluster (read-mostly; used by tests and meta).
func (sm *Instance) Machine() *cluster.Machine { return sm.machine }

// SubmitAt schedules job j to arrive at time t.
func (sm *Instance) SubmitAt(j *core.Job, t int64) {
	sm.engine.At(t, des.PriorityArrival, func() { sm.submit(j, t) })
}

// SubmitNow delivers job j immediately (valid during event callbacks;
// used by meta-schedulers dispatching at decision time).
func (sm *Instance) SubmitNow(j *core.Job) {
	sm.submit(j, sm.engine.Now())
}

// AwaitPredecessor registers j to be submitted ThinkTime seconds after
// its predecessor (by workload job ID) terminates on this instance.
func (sm *Instance) AwaitPredecessor(j *core.Job) {
	sm.dependents[j.PrecedingJob] = append(sm.dependents[j.PrecedingJob], j)
}

// QueueLen reports the scheduler's backlog if it exposes one.
func (sm *Instance) QueueLen() int {
	if qr, ok := sm.schedule.(sched.QueueReporter); ok {
		return len(qr.Queued())
	}
	return 0
}

// QueuedWork reports the processor-seconds of estimated work waiting in
// the queue — the load signal simple meta-schedulers use.
func (sm *Instance) QueuedWork() int64 {
	var total int64
	if qr, ok := sm.schedule.(sched.QueueReporter); ok {
		for _, j := range qr.Queued() {
			total += int64(j.Size) * sm.Estimate(j)
		}
	}
	for _, rs := range sm.running {
		rem := rs.expEnd - sm.engine.Now()
		if rem > 0 {
			total += int64(rs.size) * rem
		}
	}
	return total
}

// Outcome returns the outcome recorded for job id, if any.
func (sm *Instance) Outcome(id int64) (metrics.Outcome, bool) {
	o, ok := sm.outcomes[id]
	if !ok {
		return metrics.Outcome{}, false
	}
	return *o, true
}

// Outcomes returns copies of all outcomes recorded so far, in job-ID
// order for determinism.
func (sm *Instance) Outcomes() []metrics.Outcome {
	ids := make([]int64, 0, len(sm.outcomes))
	for id := range sm.outcomes {
		ids = append(ids, id)
	}
	sortIDs(ids)
	out := make([]metrics.Outcome, 0, len(ids))
	for _, id := range ids {
		out = append(out, *sm.outcomes[id])
	}
	return out
}

// RunningStart returns the start time of a currently running job
// (second return false if not running).
func (sm *Instance) RunningStart(id int64) (int64, bool) {
	rs, ok := sm.running[id]
	if !ok {
		return 0, false
	}
	return rs.start, true
}

// ReservationOutcomes returns the reservation grant results so far.
func (sm *Instance) ReservationOutcomes() []ReservationOutcome {
	return append([]ReservationOutcome(nil), sm.resvResults...)
}

// AnnounceOutage makes an outage window visible to the scheduler from
// the current instant (the sim.Run wrapper schedules these from the
// outage log).
func (sm *Instance) announceOutage(win sched.Window, announced int64) {
	sm.outageWins = append(sm.outageWins, timedWindow{win: win, announced: announced})
	sm.notifyChange()
}

// CanReserve reports whether an advance reservation request is feasible
// against the current availability profile (running jobs' estimated
// completions plus already-accepted windows). Meta-schedulers call this
// before Reserve.
func (sm *Instance) CanReserve(r sched.Reservation) bool {
	if r.Procs > sm.machine.Total() {
		return false
	}
	p := sched.BuildProfile(sm)
	start := p.EarliestFit(r.Start, r.End-r.Start, r.Procs)
	return start == r.Start
}

// Reserve accepts an advance reservation: it becomes visible to the
// scheduler immediately, claims its processors at Start (recording
// whether the claim succeeded), and releases them at End. The returned
// ID identifies the reservation in outcomes.
func (sm *Instance) Reserve(r sched.Reservation) int64 {
	if r.ID == 0 {
		sm.nextResvID++
		r.ID = sm.nextResvID
	}
	now := sm.engine.Now()
	sm.resvWins = append(sm.resvWins, timedWindow{
		win:       sched.Window{Start: r.Start, End: r.End, Procs: r.Procs},
		announced: now,
	})
	sm.engine.At(r.Start, des.PriorityOutage, func() { sm.claimReservation(r) })
	sm.notifyChange()
	return r.ID
}

// ---------------------------------------------------------------------
// internals (shared with sim.Run)

// submit delivers a job to the scheduler, recording its effective
// submittal time (feedback shifts it relative to the workload file).
func (sm *Instance) submit(j *core.Job, effective int64) {
	sm.outcomes[j.ID] = &metrics.Outcome{
		JobID: j.ID, User: j.User, Submit: effective,
		Start: -1, End: -1, Size: j.Size, Runtime: j.Runtime,
	}
	sm.callback(func() { sm.schedule.OnSubmit(sm, j) })
}

// callback wraps scheduler invocations (a single funnel point so that
// tracing or invariant checks can be attached in one place).
func (sm *Instance) callback(f func()) { f() }

func (sm *Instance) notifyChange() {
	sm.callback(func() { sm.schedule.OnChange(sm) })
}

// applyNodeEvents processes a batch of same-instant node transitions,
// killing victims after all transitions are applied and notifying the
// scheduler once.
func (sm *Instance) applyNodeEvents(downs, ups []int) {
	victims := map[int64]bool{}
	for _, n := range downs {
		victim := sm.machine.SetDown(n)
		if victim != cluster.NoOwner && victim < reservationOwner {
			victims[victim] = true
		}
	}
	for _, n := range ups {
		sm.machine.SetUp(n)
	}
	ids := make([]int64, 0, len(victims))
	for id := range victims {
		ids = append(ids, id)
	}
	sortIDs(ids)
	for _, id := range ids {
		sm.killJob(id)
	}
	sm.notifyChange()
}

func sortIDs(ids []int64) {
	for i := 1; i < len(ids); i++ {
		for k := i; k > 0 && ids[k-1] > ids[k]; k-- {
			ids[k-1], ids[k] = ids[k], ids[k-1]
		}
	}
}

// killJob handles a job whose node failed: release its allocation,
// cancel its completion, account the lost work, and resubmit it (the
// paper: "Any job running on that node would have to be restarted").
func (sm *Instance) killJob(id int64) {
	rs, ok := sm.running[id]
	if !ok {
		return
	}
	now := sm.engine.Now()
	sm.machine.Release(id)
	sm.engine.Cancel(rs.finish)
	delete(sm.running, id)

	o := sm.outcomes[id]
	o.Restarts++
	o.LostWork += int64(rs.size) * (now - rs.start)

	if sm.opts.DropKilled || o.Restarts > MaxRestarts {
		o.Dropped = true
		o.Start, o.End = -1, -1
		sm.releaseDependents(rs.job)
		if sm.FinishHook != nil {
			sm.FinishHook(rs.job, *o)
		}
		sm.callback(func() { sm.schedule.OnFinish(sm, rs.job) })
		return
	}
	// Restart from scratch: hand the job back to the scheduler.
	sm.callback(func() { sm.schedule.OnSubmit(sm, rs.job) })
}

// claimReservation allocates the reserved processors at start time.
func (sm *Instance) claimReservation(r sched.Reservation) {
	owner := reservationOwner + r.ID
	_, ok := sm.machine.Allocate(owner, r.Procs, 0)
	sm.resvResults = append(sm.resvResults, ReservationOutcome{Reservation: r, Granted: ok})
	if ok {
		sm.engine.At(r.End, des.PriorityOutage, func() {
			sm.machine.Release(owner)
			sm.notifyChange()
		})
	}
	sm.notifyChange()
}

// ---------------------------------------------------------------------
// sched.Context implementation

// Now implements sched.Context.
func (sm *Instance) Now() int64 { return sm.engine.Now() }

// TotalProcs implements sched.Context.
func (sm *Instance) TotalProcs() int { return sm.machine.Up() }

// FreeProcs implements sched.Context.
func (sm *Instance) FreeProcs() int { return sm.machine.Free() }

// CanStart implements sched.Context.
func (sm *Instance) CanStart(j *core.Job, size int) bool {
	if size < 1 {
		return false
	}
	return sm.machine.CanAllocate(size, sm.memNeed(j))
}

func (sm *Instance) memNeed(j *core.Job) int64 {
	if !sm.opts.MemAware || j.ReqMemPerProc <= 0 {
		return 0
	}
	return j.ReqMemPerProc
}

// Start implements sched.Context.
func (sm *Instance) Start(j *core.Job, size int) {
	if _, dup := sm.running[j.ID]; dup {
		panic(fmt.Sprintf("sim: job %d started twice", j.ID))
	}
	if _, ok := sm.machine.Allocate(j.ID, size, sm.memNeed(j)); !ok {
		panic(fmt.Sprintf("sim: scheduler started job %d (size %d) without capacity", j.ID, size))
	}
	now := sm.engine.Now()
	actual := j.RuntimeOn(size)
	rs := &runState{
		job: j, size: size, start: now,
		expEnd:     now + sm.Estimate(j),
		remaining:  float64(actual),
		rate:       1,
		lastUpdate: now,
	}
	rs.finish = sm.engine.At(now+actual, des.PriorityFinish, func() { sm.finishJob(j.ID) })
	sm.running[j.ID] = rs
	if sm.StartHook != nil {
		sm.StartHook(j, sm.outcomes[j.ID].Submit, now)
	}
}

// StartShared implements sched.Context.
func (sm *Instance) StartShared(j *core.Job, rate float64) {
	if _, dup := sm.running[j.ID]; dup {
		panic(fmt.Sprintf("sim: job %d started twice", j.ID))
	}
	now := sm.engine.Now()
	rs := &runState{
		job: j, size: j.Size, start: now,
		expEnd:     now + sm.Estimate(j),
		shared:     true,
		remaining:  float64(j.Runtime),
		rate:       0,
		lastUpdate: now,
	}
	sm.running[j.ID] = rs
	if sm.StartHook != nil {
		sm.StartHook(j, sm.outcomes[j.ID].Submit, now)
	}
	if rate > 0 {
		sm.setRate(rs, rate)
	}
}

// SetRate implements sched.Context.
func (sm *Instance) SetRate(j *core.Job, rate float64) {
	rs, ok := sm.running[j.ID]
	if !ok || !rs.shared {
		panic(fmt.Sprintf("sim: SetRate on non-shared or unknown job %d", j.ID))
	}
	sm.setRate(rs, rate)
}

func (sm *Instance) setRate(rs *runState, rate float64) {
	now := sm.engine.Now()
	// Account progress at the old rate.
	rs.remaining -= float64(now-rs.lastUpdate) * rs.rate
	if rs.remaining < 0 {
		rs.remaining = 0
	}
	rs.lastUpdate = now
	rs.rate = rate
	sm.engine.Cancel(rs.finish)
	if rate <= 0 {
		return
	}
	dur := int64(math.Ceil(rs.remaining / rate))
	if dur < 0 {
		dur = 0
	}
	id := rs.job.ID
	rs.finish = sm.engine.At(now+dur, des.PriorityFinish, func() { sm.finishJob(id) })
}

// Running implements sched.Context.
func (sm *Instance) Running() []sched.RunningJob {
	out := make([]sched.RunningJob, 0, len(sm.running))
	for _, rs := range sm.running {
		out = append(out, sched.RunningJob{Job: rs.job, Size: rs.size, Start: rs.start, ExpEnd: rs.expEnd})
	}
	sortRunning(out)
	return out
}

// Estimate implements sched.Context.
func (sm *Instance) Estimate(j *core.Job) int64 {
	if sm.opts.PerfectEstimates {
		return j.Runtime
	}
	return j.EstimateOrRuntime()
}

// Outages implements sched.Context.
func (sm *Instance) Outages() []sched.Window {
	return sm.visibleWindows(sm.outageWins)
}

// Reservations implements sched.Context.
func (sm *Instance) Reservations() []sched.Window {
	return sm.visibleWindows(sm.resvWins)
}

// PlanningHorizon bounds how far ahead capacity windows are exposed to
// schedulers. Windows starting beyond it cannot affect any job that
// could start now (estimates are capped far below it), and pruning them
// keeps profile building linear in the relevant future rather than in
// the whole reservation calendar.
const PlanningHorizon = 14 * 86400

func (sm *Instance) visibleWindows(wins []timedWindow) []sched.Window {
	now := sm.engine.Now()
	var out []sched.Window
	for _, tw := range wins {
		if tw.announced <= now && tw.win.End > now && tw.win.Start <= now+PlanningHorizon {
			out = append(out, tw.win)
		}
	}
	return out
}

// finishJob completes a running job.
func (sm *Instance) finishJob(id int64) {
	rs, ok := sm.running[id]
	if !ok {
		return
	}
	now := sm.engine.Now()
	if !rs.shared {
		sm.machine.Release(id)
	}
	delete(sm.running, id)

	o := sm.outcomes[id]
	o.Start = rs.start
	o.End = now
	o.Size = rs.size
	o.Runtime = now - rs.start
	if rs.shared {
		// For time-shared jobs the dedicated-equivalent runtime is the
		// job's nominal work, not the stretched wall-clock.
		o.Runtime = rs.job.Runtime
	}
	sm.releaseDependents(rs.job)
	if sm.FinishHook != nil {
		sm.FinishHook(rs.job, *o)
	}
	sm.callback(func() { sm.schedule.OnFinish(sm, rs.job) })
}

// releaseDependents schedules the submittal of feedback jobs waiting on
// j's termination, ThinkTime seconds from now.
func (sm *Instance) releaseDependents(j *core.Job) {
	now := sm.engine.Now()
	for _, dep := range sm.dependents[j.ID] {
		dep := dep
		at := now + dep.ThinkTime
		sm.engine.At(at, des.PriorityArrival, func() { sm.submit(dep, at) })
	}
	delete(sm.dependents, j.ID)
}

func sortRunning(rs []sched.RunningJob) {
	// Insertion sort keeps this allocation-free for the common small
	// running sets; determinism comes from the (ExpEnd, ID) key.
	for i := 1; i < len(rs); i++ {
		for k := i; k > 0; k-- {
			a, b := &rs[k-1], &rs[k]
			if a.ExpEnd < b.ExpEnd || (a.ExpEnd == b.ExpEnd && a.Job.ID <= b.Job.ID) {
				break
			}
			rs[k-1], rs[k] = rs[k], rs[k-1]
		}
	}
}
