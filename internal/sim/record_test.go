package sim

import (
	"testing"

	"parsched/internal/core"
	"parsched/internal/model"
	"parsched/internal/model/lublin"
	"parsched/internal/outage"
	"parsched/internal/sched"
	"parsched/internal/swf"
)

func TestRecordSWFBasic(t *testing.T) {
	w := lublin.Default().Generate(model.Config{
		MaxNodes: 64, Jobs: 400, Seed: 31, Load: 0.8, EstimateFactor: 2,
	})
	res, err := Run(w, sched.NewEASY(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	log := RecordSWF(w, res)
	if vs := swf.Errors(swf.Validate(log)); len(vs) != 0 {
		t.Fatalf("recorded log violates the standard: %v (of %d)", vs[0], len(vs))
	}
	if len(log.Summaries()) != 400 {
		t.Fatalf("summaries = %d", len(log.Summaries()))
	}
	// Wait times are now real (scheduler outputs), unlike workload SWF.
	withWait := 0
	for _, r := range log.Summaries() {
		if r.Wait > 0 {
			withWait++
		}
	}
	if withWait == 0 {
		t.Fatal("no recorded waits at load 0.8; recording lost schedule information")
	}
}

func TestRecordSWFRoundTripsThroughAnalysis(t *testing.T) {
	// The §3.3 chain: simulate → record → clean → re-analyze with the
	// standard tooling.
	w := lublin.Default().Generate(model.Config{
		MaxNodes: 64, Jobs: 300, Seed: 37, Load: 0.7,
	})
	res, err := Run(w, sched.NewFCFS(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	log := RecordSWF(w, res)
	clean, _ := swf.Clean(log)
	back, err := core.FromSWF(clean)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != 300 {
		t.Fatalf("re-analysis sees %d jobs", len(back.Jobs))
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRecordSWFKilledJobsBecomePartials(t *testing.T) {
	// A job killed once by an outage must appear as: summary line with
	// the summed runtime, one code-2 partial, one code-3 final.
	w := wl(8, [3]int64{0, 4, 1000})
	olog := &outage.Log{Records: []outage.Record{
		{ID: 1, Announced: 500, Start: 500, End: 600, Kind: outage.CPUFailure, Nodes: []int64{0}},
	}}
	res, err := Run(w, sched.NewFCFS(), Options{Outages: olog})
	if err != nil {
		t.Fatal(err)
	}
	log := RecordSWF(w, res)
	if vs := swf.Errors(swf.Validate(log)); len(vs) != 0 {
		t.Fatalf("multi-line record invalid: %v", vs)
	}
	if len(log.Records) != 3 {
		t.Fatalf("records = %d, want summary + 2 partials", len(log.Records))
	}
	sum, p1, p2 := log.Records[0], log.Records[1], log.Records[2]
	if sum.Status != swf.StatusCompleted {
		t.Fatalf("summary status %v", sum.Status)
	}
	if p1.Status != swf.StatusPartial || p2.Status != swf.StatusPartialLastOK {
		t.Fatalf("partial codes %v %v", p1.Status, p2.Status)
	}
	if sum.RunTime != p1.RunTime+p2.RunTime {
		t.Fatalf("summary runtime %d != partials %d+%d", sum.RunTime, p1.RunTime, p2.RunTime)
	}
	// The killed attempt ran 500 s before the failure.
	if p1.RunTime != 500 {
		t.Fatalf("killed attempt runtime %d, want 500", p1.RunTime)
	}
}

func TestRecordSWFFeedbackReordering(t *testing.T) {
	// Closed-loop runs reorder effective submits; the recorded log must
	// still be submit-sorted and valid.
	w := wl(8, [3]int64{0, 8, 100}, [3]int64{5, 8, 50}, [3]int64{10, 8, 30})
	w.Jobs[1].PrecedingJob = 1 // job 2 now submits at 100+think
	w.Jobs[1].ThinkTime = 500
	res, err := Run(w, sched.NewFCFS(), Options{Feedback: true})
	if err != nil {
		t.Fatal(err)
	}
	log := RecordSWF(w, res)
	if vs := swf.Errors(swf.Validate(log)); len(vs) != 0 {
		t.Fatalf("feedback-recorded log invalid: %v", vs)
	}
	var prev int64
	for _, r := range log.Records {
		if r.Submit >= 0 && r.Submit < prev {
			t.Fatal("records not submit-sorted")
		}
		if r.Submit >= 0 {
			prev = r.Submit
		}
	}
}
